# Fan-out broadcast (paper Section IX's profiling workload).
assume np >= 3
if id == 0 then
  x := 42
  for i := 1 to np - 1 do
    send x -> i
  end
else
  recv y <- 0
  print y
end
