# Send-first shift: analyze with `psdf -nonblocking` for the aggregated
# single-step match (Section X extension).
assume np >= 3
if id <= np - 2 then
  send x -> id + 1
end
if id >= 1 then
  recv y <- id - 1
end
