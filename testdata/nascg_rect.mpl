# NAS-CG transpose exchange on a rectangular (ncols = 2*nrows) grid.
assume nrows >= 1
assume ncols == 2 * nrows
assume np == 2 * nrows * nrows
send x -> id % 2 + 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows))
recv y <- id % 2 + 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows))
