# max-class: precision
# origin: sweep sub-seed 181000514, minimized to 8 statements (128 checks)
# finding: precision: analysis gave up (⊤): no send-receive match possible; blocked: n9[recv y <- 0][2..2]; widening failed: no common bound expressions: set [0..1]@n11 vs [3..np - 1]@n11; widening failed: no common bound expressions: set [3..np - 1]@n10 vs [0..1]@n10; set [0..1]@n11 vs [3..np - 1]@n11
t1 := 0
if id == 0 then
  for i := 2 to 2 do
  end
else
  if id >= 2 then
    if id <= 2 then
      recv y <- 0 : tag1
    end
  end
end
while t3 < 1 do
  t3 := 1
end
