# max-class: ok
# origin: hand-minimized from sweep sub-seed 181000514 (pre-fix); the
# decorated guarded shift drove AddMatch/normalizeMatches to fold two
# distinct match records through a contradictory witness class (one bound
# carrying both constants 2 and 3 after a graph widen staled an enriched
# witness), silently erasing the pipeline's last hop — a clean final with
# missing communication. Fixed by skipping folds through contradictory
# classes; the program must stay exact at every checked np.
assume np >= 4
assert np >= 4
print np + np
if id == 0 then
  send 22 -> id + 1
elif id >= 1 then
  if id <= np - 2 then
    recv y <- id - 1
    send y -> id + 1
  else
    recv y <- id - 1
  end
end
var t1
t1 := np + 7
