# max-class: precision
# origin: sweep sub-seed 520001561, minimized to 8 statements (157 checks)
# finding: precision@np=4: gave up (⊤) and no final admits np=4: no send-receive match possible; blocked: n3[sendrecv 29 -> 3, y <- 3][1], n7[send 3 -> id + 3][0]; stale match witness survived widening: match n7->n9 [{-26,0}..0] -> [{-23,3}..3]
if id == 1 then
  sendrecv 29 -> 3, y <- 3 : tag1
else
  if id == 3 then
    sendrecv 8 -> 1, y <- 1 : tag1
  end
end
if id <= 0 then
  send 3 -> id + 3
end
if id >= 3 then
  recv y <- id - 3
end
