# max-class: precision
# origin: sweep sub-seed 557001672, minimized to 12 statements (149 checks)
# finding: precision@np=4: gave up (⊤) and no final admits np=4: stale match witness survived widening: match n17->n14 [{np - 2,2}..np - 1] -> [{np - 4,0}..0]
assume np >= 4
if id == 0 then
  for i := 1 to np - 1 do
    send id -> i
    recv y <- i
  end
else
  recv y <- 0
  send y -> 0
end
if id == 0 then
  for i := 2 to np - 1 do
    recv y <- i
  end
else
  if id >= 2 then
    send np -> 0
  end
end
