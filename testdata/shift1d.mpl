# 1-D nearest-neighbor shift (paper Figs 7/8): three process roles.
assume np >= 4
if id == 0 then
  send x -> id + 1
elif id <= np - 2 then
  recv y <- id - 1
  send x -> id + 1
else
  recv y <- id - 1
end
