# NAS-CG transpose exchange on a square process grid (paper Fig 6).
assume nrows >= 1
assume np == nrows * nrows
send x -> (id % nrows) * nrows + id / nrows
recv y <- (id % nrows) * nrows + id / nrows
