# Fuzz seed: sendrecv shift with modular neighbors and a tag channel.
assume np >= 4
sendrecv id -> (id + 1) % np, w <- (id + np - 1) % np : tag1
print w
