# Fuzz seed: nested rank conditionals with mixed channels and negation.
assume np >= 5
if id == 0 then
  send -7 -> np - 1 : tag2
elif id == np - 1 then
  recv z <- 0 : tag2
  if z <= 0 then
    send z -> 1
  end
elif id == 1 then
  recv q <- np - 1
end
