# Fuzz seed: while loop guarded by an environment symbol.
assume np >= 2
assume rounds >= 1
k := 0
while k < rounds do
  if id == 0 then
    send k -> 1
  elif id == 1 then
    recv t <- 0
  end
  k := k + 1
end
