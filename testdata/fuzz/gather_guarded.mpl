# Fuzz seed: all-to-root gather with guarded roles and an assert.
assume np >= 3
assert np >= 3
if id >= 1 then
  send id * id -> 0
else
  for i := 1 to np - 1 do
    recv acc <- i
  end
  print acc
end
