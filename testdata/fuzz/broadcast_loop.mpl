# Fuzz seed: root broadcast over a counted loop (loop + arithmetic dest).
assume np >= 3
if id == 0 then
  for i := 1 to np - 1 do
    send i * 2 -> i
  end
else
  recv v <- 0
  print v
end
