# Two-process exchange with constant propagation (paper Fig 2).
assume np >= 3
if id == 0 then
  x := 5
  send x -> 1
  recv y <- 1
  print y
elif id == 1 then
  recv y <- 0
  send y -> 0
  print y
end
