# Exchange-with-root from the mdcask molecular dynamics code (paper Fig 1/5):
# the root sends a message to and receives a message from every other process.
assume np >= 4
if id == 0 then
  for i := 1 to np - 1 do
    send x -> i
    recv y <- i
  end
else
  recv y <- 0
  send y -> 0
end
