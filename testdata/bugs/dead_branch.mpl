# Seeded bug: the branch condition `id >= np` is false for every process,
# so the assignment is unreachable for every np.
# Expected lint: PSDF-W006 (unreachable-code) on the assignment.
assume np >= 2
if id >= np then
  x := 1
end
print np
