# Seeded bug: unguarded 1-D shift. Every process sends right and receives
# from the left, but nothing stops process np-1 from targeting rank np.
# Expected lint: PSDF-E004 (rank-out-of-bounds) on the send.
assume np >= 2
send x -> id + 1
recv y <- id - 1
