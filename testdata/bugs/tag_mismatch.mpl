# Seeded bug: the matched send/receive pair disagrees on the message tag.
# Expected lint: PSDF-E003 (tag-mismatch) on the send, noting the receive.
assume np >= 2
if id == 0 then
  send x -> 1 : halo
elif id == 1 then
  recv y <- 0 : data
end
