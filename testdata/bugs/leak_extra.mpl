# Seeded bug: rank 0 sends a message nobody ever receives.
# Expected lint: PSDF-E001 (message-leak) on the send.
assume np >= 2
if id == 0 then
  send x -> 1
end
