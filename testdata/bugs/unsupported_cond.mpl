# Seeded bug: the branch condition multiplies id with itself, which is
# outside the affine fragment the analysis can split process sets on.
# Expected lint: PSDF-E005 (analysis-gave-up) with a blame trace.
assume np >= 2
if id * id == 0 then
  x := 1
end
print np
