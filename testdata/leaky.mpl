# Buggy broadcast: the root sends one extra message nobody receives.
assume np >= 3
if id == 0 then
  for i := 1 to np - 1 do
    send x -> i
  end
  send x -> 1
else
  recv y <- 0
end
