// Command psdf-run executes an MPL program on the concrete message-passing
// simulator for a fixed process count, reporting the delivered messages,
// print output, leaks and deadlocks — the ground truth the static analysis
// is validated against. With -analyze it instead runs the static analysis
// itself, accepting several programs at once and analyzing them on a
// bounded worker pool (core.AnalyzeAll), one workload per core by default.
//
// Usage:
//
//	psdf-run -np N [-env k=v,k=v] [-rendezvous] program.mpl
//	psdf-run -analyze [-parallel n] [-workers n] [-schedule s] [-nonblocking] program.mpl [more.mpl ...]
//
// -parallel bounds how many programs are analyzed at once; -workers sets
// the number of goroutines driving the worklist inside each analysis
// (the parallel intra-analysis engine), and -schedule its visit order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/sim"
	"repro/internal/verify"
)

func main() {
	var (
		np          = flag.Int("np", 4, "number of processes")
		envFlag     = flag.String("env", "", "comma-separated symbol bindings, e.g. nrows=3,ncols=6")
		rendezvous  = flag.Bool("rendezvous", false, "blocking (rendezvous) sends instead of buffered FIFO channels")
		events      = flag.Bool("events", true, "print delivered messages")
		analyze     = flag.Bool("analyze", false, "run the static analysis instead of the simulator (accepts multiple programs)")
		parallel    = flag.Int("parallel", 0, "with -analyze: worker bound (0 = one per CPU, 1 = sequential)")
		nonblocking = flag.Bool("nonblocking", false, "with -analyze: enable the Section X non-blocking send extension")
		workers     = flag.Int("workers", 1, "with -analyze: worker goroutines inside each analysis (parallel worklist engine)")
		schedule    = flag.String("schedule", "", "with -analyze: worklist order (fifo, lifo or shape; default fifo)")
		failOnFind  = flag.Bool("fail-on-findings", false, "exit nonzero on verification findings (analyze) or leaks/assert failures (simulate)")
	)
	flag.Parse()
	if *analyze {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: psdf-run -analyze [flags] program.mpl [more.mpl ...]")
			flag.PrintDefaults()
			os.Exit(2)
		}
		if err := runAnalyses(flag.Args(), *parallel, *nonblocking, *workers, *schedule, *failOnFind); err != nil {
			fmt.Fprintln(os.Stderr, "psdf-run:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psdf-run [flags] program.mpl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *np, *envFlag, *rendezvous, *events, *failOnFind); err != nil {
		fmt.Fprintln(os.Stderr, "psdf-run:", err)
		os.Exit(1)
	}
}

func parseEnv(s string) (map[string]int64, error) {
	env := map[string]int64{}
	if s == "" {
		return env, nil
	}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad env binding %q", pair)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(kv[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad env value %q: %v", pair, err)
		}
		env[strings.TrimSpace(kv[0])] = v
	}
	return env, nil
}

// buildCFG parses and checks one program file.
func buildCFG(path string) (*cfg.Graph, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := parser.Parse(path, string(src))
	if err != nil {
		return nil, err
	}
	if _, err := sem.Check(prog); err != nil {
		return nil, err
	}
	return cfg.Build(prog), nil
}

// runAnalyses statically analyzes every program through the bounded worker
// pool and prints each topology. Every job gets its own matcher (matcher
// instrumentation and memo tables are not race-safe to share).
func runAnalyses(paths []string, parallelism int, nonblocking bool, workers int, schedule string, failOnFind bool) error {
	jobs := make([]core.Job, 0, len(paths))
	for _, path := range paths {
		g, err := buildCFG(path)
		if err != nil {
			return err
		}
		jobs = append(jobs, core.Job{
			Name: path,
			G:    g,
			Opts: core.Options{
				Matcher:          cartesian.New(core.ScanInvariants(g)),
				NonBlockingSends: nonblocking,
				Workers:          workers,
				Schedule:         schedule,
			},
		})
	}
	results := core.AnalyzeAll(jobs, parallelism)
	failed := false
	findings := 0
	for i, jr := range results {
		if jr.Err != nil {
			failed = true
			fmt.Printf("%s: ERROR %v\n", jr.Name, jr.Err)
			continue
		}
		res := jr.Res
		fmt.Printf("%s: clean=%v configs=%d steps=%d matches=%d (%v)\n",
			jr.Name, res.Clean(), res.Configs, res.Steps, len(res.Matches), jr.Elapsed.Round(time.Microsecond))
		for _, m := range res.Matches {
			fmt.Printf("  n%d%s -> n%d%s\n", m.SendNode, m.Sender, m.RecvNode, m.Receiver)
		}
		for _, t := range res.Tops {
			fmt.Printf("  TOP: %s\n", t.TopWhy)
		}
		if failOnFind {
			// AnalyzeAll returns results in input order.
			vr := verify.Check(jobs[i].G, res)
			for _, f := range vr.Findings {
				fmt.Printf("  FINDING %s: %s\n", f.Kind, f.Message)
			}
			findings += len(vr.Findings)
		}
	}
	if failed {
		return fmt.Errorf("one or more analyses failed")
	}
	if findings > 0 {
		return fmt.Errorf("%d verification finding(s)", findings)
	}
	return nil
}

func run(path string, np int, envFlag string, rendezvous, events, failOnFind bool) error {
	env, err := parseEnv(envFlag)
	if err != nil {
		return err
	}
	g, err := buildCFG(path)
	if err != nil {
		return err
	}
	res, err := sim.Run(g, np, sim.Options{Env: env, Rendezvous: rendezvous})
	if err != nil {
		return err
	}
	fmt.Printf("np=%d steps=%d messages=%d\n", res.NP, res.Steps, len(res.Events))
	if events {
		for _, e := range res.Events {
			fmt.Printf("  %3d -> %3d   (send n%d -> recv n%d)\n", e.Sender, e.Receiver, e.SendNode, e.RecvNode)
		}
	}
	for _, p := range res.Prints {
		fmt.Printf("  proc %d prints %d (n%d)\n", p.Proc, p.Value, p.Node)
	}
	for _, f := range res.Failures {
		fmt.Printf("  ASSERT FAILED on proc %d at n%d: %s\n", f.Proc, f.Node, f.Cond)
	}
	for _, l := range res.Leaked {
		fmt.Printf("  LEAKED message from proc %d (send n%d, addressed to %d)\n", l.Sender, l.SendNode, l.Receiver)
	}
	if res.Deadlocked {
		return fmt.Errorf("deadlock: processes %v blocked", res.Blocked)
	}
	if failOnFind && (len(res.Leaked) > 0 || len(res.Failures) > 0) {
		return fmt.Errorf("%d leaked message(s), %d assertion failure(s)", len(res.Leaked), len(res.Failures))
	}
	return nil
}
