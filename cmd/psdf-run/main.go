// Command psdf-run executes an MPL program on the concrete message-passing
// simulator for a fixed process count, reporting the delivered messages,
// print output, leaks and deadlocks — the ground truth the static analysis
// is validated against. With -analyze it instead runs the static analysis
// itself, accepting several programs at once and analyzing them on a
// bounded worker pool (core.AnalyzeAll), one workload per core by default.
//
// Usage:
//
//	psdf-run -np N [-env k=v,k=v] [-rendezvous] program.mpl
//	psdf-run -analyze [-parallel n] [-workers n] [-schedule s] [-nonblocking]
//	         [-trace out.json] [-trace-jsonl out.jsonl] [-metrics]
//	         [-metrics-out m.prom] [-http addr] [-http-linger]
//	         [-log level] [-log-format f] [-stall-timeout d] [-stall-dump f]
//	         [-force-stall] [-flight-buffer n] [-pprof-labels]
//	         [-profile] [-profile-out p.json]
//	         program.mpl [more.mpl ...]
//
// -parallel bounds how many programs are analyzed at once; -workers sets
// the number of goroutines driving the worklist inside each analysis
// (the parallel intra-analysis engine), and -schedule its visit order.
//
// Observability: -trace writes a Chrome trace-event file (load it at
// https://ui.perfetto.dev or summarize it with `psdf trace`); -trace-jsonl
// writes the same spans as JSON lines with nanosecond precision. -metrics
// prints the unified metrics registry in Prometheus text format after the
// run (-metrics-out writes it to a file instead). -log/-log-format enable
// structured (slog) engine lifecycle logging on stderr.
//
// -http serves the live introspection mux while the analyses run:
// /metrics (Prometheus), /statusz (progress snapshot JSON),
// /statusz/stream (the same as SSE), /flightz (flight recorder) and
// /debug/pprof. -http-linger keeps the listener serving after the analyses
// finish (POST /quitquitquit to exit). -stall-timeout arms a per-analysis
// no-progress watchdog that dumps the flight recorder to -stall-dump;
// -force-stall holds each (converged) analysis open until its watchdog
// fires, smoke-testing that path deterministically. -pprof-labels tags
// analysis goroutines (job, worker, phase) for CPU-profile attribution.
// -profile attaches the source-attribution profiler (internal/prof) to
// each analysis and prints its hottest source lines; -profile-out writes
// the combined psdf-profile/1 JSON report, renderable as a heat listing,
// ranked hotspots or folded flamegraph stacks with `psdf profile`.
// Tracing, logging and profiling only observe: analysis results are
// byte-identical with them on or off.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/prof"
	"repro/internal/sem"
	"repro/internal/sim"
	"repro/internal/verify"
)

func main() {
	var (
		np          = flag.Int("np", 4, "number of processes")
		envFlag     = flag.String("env", "", "comma-separated symbol bindings, e.g. nrows=3,ncols=6")
		rendezvous  = flag.Bool("rendezvous", false, "blocking (rendezvous) sends instead of buffered FIFO channels")
		events      = flag.Bool("events", true, "print delivered messages")
		analyze     = flag.Bool("analyze", false, "run the static analysis instead of the simulator (accepts multiple programs)")
		parallel    = flag.Int("parallel", 0, "with -analyze: worker bound (0 = one per CPU, 1 = sequential)")
		nonblocking = flag.Bool("nonblocking", false, "with -analyze: enable the Section X non-blocking send extension")
		workers     = flag.Int("workers", 1, "with -analyze: worker goroutines inside each analysis (parallel worklist engine)")
		schedule    = flag.String("schedule", "", "with -analyze: worklist order (fifo, lifo or shape; default fifo)")
		failOnFind  = flag.Bool("fail-on-findings", false, "exit nonzero on verification findings (analyze) or leaks/assert failures (simulate)")
		traceOut    = flag.String("trace", "", "with -analyze: write a Chrome trace-event file (Perfetto-loadable)")
		traceJSONL  = flag.String("trace-jsonl", "", "with -analyze: write the span trace as JSON lines")
		metricsFlag = flag.Bool("metrics", false, "with -analyze: print the metrics registry (Prometheus text) after the run")
		metricsOut  = flag.String("metrics-out", "", "with -analyze: write the metrics registry to this file")
		httpAddr    = flag.String("http", "", "with -analyze: serve the introspection mux (/metrics, /statusz, /statusz/stream, /flightz, /debug/pprof) on this address during the run")
		httpLinger  = flag.Bool("http-linger", false, "with -analyze -http: keep the listener serving after the analyses finish (POST /quitquitquit to exit)")
		logLevel    = flag.String("log", "off", "structured log level: off, debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		stallTO     = flag.Duration("stall-timeout", 0, "with -analyze: per-analysis no-progress watchdog deadline (0 disables); firing dumps the flight recorder")
		stallDump   = flag.String("stall-dump", "", "with -analyze: write flight-recorder dumps to this file (default stderr)")
		forceStall  = flag.Bool("force-stall", false, "with -analyze: hold each analysis open until its stall watchdog fires (smoke-tests the stall path; requires -stall-timeout)")
		flightBuf   = flag.Int("flight-buffer", 4096, "with -analyze: flight-recorder ring capacity in events")
		pprofLabels = flag.Bool("pprof-labels", false, "with -analyze: attach pprof goroutine labels (job, worker, phase) to analysis goroutines and the HSM prover")
		profile     = flag.Bool("profile", false, "with -analyze: profile each analysis and print its hottest source lines")
		profileOut  = flag.String("profile-out", "", "with -analyze: write the combined source-attribution profile as psdf-profile/1 JSON (render with `psdf profile`)")
	)
	flag.Parse()
	if *analyze {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: psdf-run -analyze [flags] program.mpl [more.mpl ...]")
			flag.PrintDefaults()
			os.Exit(2)
		}
		if *forceStall && *stallTO <= 0 {
			fmt.Fprintln(os.Stderr, "psdf-run: -force-stall requires -stall-timeout > 0")
			os.Exit(2)
		}
		cfg := analyzeConfig{
			parallelism: *parallel,
			nonblocking: *nonblocking,
			workers:     *workers,
			schedule:    *schedule,
			failOnFind:  *failOnFind,
			traceOut:    *traceOut,
			traceJSONL:  *traceJSONL,
			metrics:     *metricsFlag,
			metricsOut:  *metricsOut,
			httpAddr:    *httpAddr,
			httpLinger:  *httpLinger,
			logLevel:    *logLevel,
			logFormat:   *logFormat,
			stallTO:     *stallTO,
			stallDump:   *stallDump,
			forceStall:  *forceStall,
			flightBuf:   *flightBuf,
			pprofLabels: *pprofLabels,
			profile:     *profile || *profileOut != "",
			profileOut:  *profileOut,
		}
		if err := runAnalyses(flag.Args(), cfg); err != nil {
			fmt.Fprintln(os.Stderr, "psdf-run:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psdf-run [flags] program.mpl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *np, *envFlag, *rendezvous, *events, *failOnFind); err != nil {
		fmt.Fprintln(os.Stderr, "psdf-run:", err)
		os.Exit(1)
	}
}

func parseEnv(s string) (map[string]int64, error) {
	env := map[string]int64{}
	if s == "" {
		return env, nil
	}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad env binding %q", pair)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(kv[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad env value %q: %v", pair, err)
		}
		env[strings.TrimSpace(kv[0])] = v
	}
	return env, nil
}

// buildCFG parses and checks one program file, returning the CFG and the
// source text (embedded in profile reports for self-contained listings).
func buildCFG(path string) (*cfg.Graph, string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	prog, err := parser.Parse(path, string(src))
	if err != nil {
		return nil, "", err
	}
	if _, err := sem.Check(prog); err != nil {
		return nil, "", err
	}
	return cfg.Build(prog), string(src), nil
}

// analyzeConfig carries the -analyze mode flags.
type analyzeConfig struct {
	parallelism int
	nonblocking bool
	workers     int
	schedule    string
	failOnFind  bool
	traceOut    string
	traceJSONL  string
	metrics     bool
	metricsOut  string
	httpAddr    string
	httpLinger  bool
	logLevel    string
	logFormat   string
	stallTO     time.Duration
	stallDump   string
	forceStall  bool
	flightBuf   int
	pprofLabels bool
	profile     bool
	profileOut  string
}

// runAnalyses statically analyzes every program through the bounded worker
// pool and prints each topology plus its phase and match-memo breakdown.
// Every job gets its own matcher (matcher instrumentation and memo tables
// are not race-safe to share); the tracer and metrics registry are shared
// (race-safe), with per-job pid/label attribution.
func runAnalyses(paths []string, c analyzeConfig) error {
	logger, err := obs.NewLogger(os.Stderr, c.logLevel, c.logFormat)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if c.traceOut != "" || c.traceJSONL != "" {
		tracer = obs.NewTracer()
	}
	var reg *obs.Registry
	if c.metrics || c.metricsOut != "" || c.httpAddr != "" {
		reg = obs.NewRegistry()
	}
	var tracker *obs.ProgressTracker
	if c.httpAddr != "" {
		tracker = obs.NewProgressTracker()
	}
	var rec *obs.FlightRecorder
	if c.stallTO > 0 || c.httpAddr != "" {
		rec = obs.NewFlightRecorder(c.flightBuf)
	}
	// The watchdog's stall dump goes to -stall-dump (created up front so a
	// dump mid-run cannot fail on open) or stderr.
	var stallDumpW io.Writer
	if c.stallTO > 0 {
		stallDumpW = os.Stderr
		if c.stallDump != "" {
			f, err := os.Create(c.stallDump)
			if err != nil {
				return err
			}
			defer f.Close()
			stallDumpW = f
		}
	}
	quitCh := make(chan struct{})
	if c.httpAddr != "" {
		var quit func()
		if c.httpLinger {
			var once sync.Once
			quit = func() { once.Do(func() { close(quitCh) }) }
		}
		mux := obs.NewHTTPMux(reg, tracker, rec, quit)
		go func() {
			if err := http.ListenAndServe(c.httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "psdf-run: http:", err)
			}
		}()
	}

	jobs := make([]core.Job, 0, len(paths))
	matchers := make([]*cartesian.Matcher, 0, len(paths))
	var profilers []*prof.Profiler
	var sources []string
	laneNames := map[int]string{}
	for i, path := range paths {
		g, src, err := buildCFG(path)
		if err != nil {
			return err
		}
		m := cartesian.New(core.ScanInvariants(g))
		m.SetObs(tracer, i+1)
		if c.pprofLabels {
			m.Prover().ProfileLabels = true
		}
		matchers = append(matchers, m)
		laneNames[i+1] = path
		if reg != nil {
			core.RegisterMatchMemoMetrics(reg, m.Memo(), path)
		}
		// One profiler per job: commits are per-analysis, and merging across
		// programs would blur the per-source attribution.
		var pr *prof.Profiler
		if c.profile {
			pr = prof.New()
		}
		profilers = append(profilers, pr)
		sources = append(sources, src)
		jobs = append(jobs, core.Job{
			Name: path,
			G:    g,
			Opts: core.Options{
				Matcher:          m,
				NonBlockingSends: c.nonblocking,
				Workers:          c.workers,
				Schedule:         c.schedule,
				Tracer:           tracer,
				Metrics:          reg,
				TracePID:         i + 1,
				Name:             path,
				Log:              logger,
				Progress:         tracker,
				FlightRecorder:   rec,
				StallTimeout:     c.stallTO,
				StallDump:        stallDumpW,
				ForceStall:       c.forceStall,
				ProfileLabels:    c.pprofLabels,
				Profiler:         pr,
			},
		})
	}
	results := core.AnalyzeAll(jobs, c.parallelism)
	if tracer != nil {
		// With one retaining tracer shared across jobs, each JobResult's
		// Phases snapshots the shared totals; recover per-job breakdowns
		// from the retained events instead.
		byPid := obs.TotalsByPid(tracer.Events())
		for i := range results {
			if ph := byPid[i+1]; ph != nil {
				results[i].Phases = ph
			}
		}
	}
	failed := false
	findings := 0
	for i, jr := range results {
		if jr.Err != nil {
			failed = true
			fmt.Printf("%s: ERROR %v\n", jr.Name, jr.Err)
			continue
		}
		res := jr.Res
		fmt.Printf("%s: clean=%v configs=%d steps=%d matches=%d (%v)\n",
			jr.Name, res.Clean(), res.Configs, res.Steps, len(res.Matches), jr.Wall.Round(time.Microsecond))
		for _, m := range res.Matches {
			fmt.Printf("  n%d%s -> n%d%s\n", m.SendNode, m.Sender, m.RecvNode, m.Receiver)
		}
		for _, t := range res.Tops {
			fmt.Printf("  TOP: %s\n", t.TopWhy)
		}
		if ph := formatPhases(jr.Phases, jr.Wall); ph != "" {
			fmt.Printf("  phases: %s\n", ph)
		}
		memo := matchers[i].Memo()
		if memo.HitCount()+memo.MissCount() > 0 {
			fmt.Printf("  match-memo: %d hits / %d misses (%.0f%% hit rate), %d entries\n",
				memo.HitCount(), memo.MissCount(), 100*memo.HitRate(), memo.Len())
		}
		if c.failOnFind {
			// AnalyzeAll returns results in input order.
			vr := verify.Check(jobs[i].G, res)
			for _, f := range vr.Findings {
				fmt.Printf("  FINDING %s: %s\n", f.Kind, f.Message)
			}
			findings += len(vr.Findings)
		}
		if profilers[i] != nil {
			rep := profilers[i].Report(jr.Name, sources[i])
			fmt.Printf("  profile: %d steps %.2fms stepped, %d widen failures, %d give-ups\n",
				rep.Totals.Steps, float64(rep.Totals.StepNs)/1e6, rep.Totals.WidenFailures, rep.Totals.GiveUps)
			var top strings.Builder
			rep.WriteTop(&top, 3)
			for _, line := range strings.Split(strings.TrimRight(top.String(), "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
	}
	if err := writeObsOutputs(tracer, reg, laneNames, c); err != nil {
		return err
	}
	if c.profileOut != "" {
		reps := make([]*prof.Report, 0, len(results))
		for i, jr := range results {
			if profilers[i] == nil || jr.Err != nil {
				continue
			}
			reps = append(reps, profilers[i].Report(jr.Name, sources[i]))
		}
		f, err := os.Create(c.profileOut)
		if err != nil {
			return err
		}
		if err := prof.WriteJSON(f, reps); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("profile: %d report(s) -> %s (render with `psdf profile %s`)\n",
			len(reps), c.profileOut, c.profileOut)
	}
	if c.httpAddr != "" && c.httpLinger {
		fmt.Fprintf(os.Stderr, "psdf-run: lingering on %s (POST /quitquitquit to exit)\n", c.httpAddr)
		<-quitCh
	}
	if failed {
		return fmt.Errorf("one or more analyses failed")
	}
	if findings > 0 {
		return fmt.Errorf("%d verification finding(s)", findings)
	}
	return nil
}

// writeObsOutputs flushes the trace and metrics artifacts selected by the
// flags.
func writeObsOutputs(tracer *obs.Tracer, reg *obs.Registry, laneNames map[int]string, c analyzeConfig) error {
	if tracer != nil {
		evs := tracer.Events()
		if c.traceOut != "" {
			f, err := os.Create(c.traceOut)
			if err != nil {
				return err
			}
			if err := obs.WriteChromeTrace(f, evs, laneNames); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace: %d events -> %s (load at https://ui.perfetto.dev or run `psdf trace %s`)\n",
				len(evs), c.traceOut, c.traceOut)
		}
		if c.traceJSONL != "" {
			f, err := os.Create(c.traceJSONL)
			if err != nil {
				return err
			}
			if err := obs.WriteJSONL(f, evs); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if reg != nil && c.metricsOut != "" {
		f, err := os.Create(c.metricsOut)
		if err != nil {
			return err
		}
		if err := reg.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if reg != nil && c.metrics {
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// formatPhases renders a job's phase totals as "phase dur (count)" pairs,
// heaviest first, skipping the enclosing analyze span (it spans the whole
// job and would read as 100%).
func formatPhases(totals obs.PhaseTotals, wall time.Duration) string {
	type pt struct {
		name string
		obs.PhaseStat
	}
	var ps []pt
	for name, st := range totals {
		if name == obs.PhaseAnalyze.String() || st.Count == 0 {
			continue
		}
		ps = append(ps, pt{name, st})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Total != ps[j].Total {
			return ps[i].Total > ps[j].Total
		}
		return ps[i].name < ps[j].name
	})
	var parts []string
	for _, p := range ps {
		parts = append(parts, fmt.Sprintf("%s %v (%d)", p.name, p.Total.Round(time.Microsecond), p.Count))
	}
	return strings.Join(parts, ", ")
}

func run(path string, np int, envFlag string, rendezvous, events, failOnFind bool) error {
	env, err := parseEnv(envFlag)
	if err != nil {
		return err
	}
	g, _, err := buildCFG(path)
	if err != nil {
		return err
	}
	res, err := sim.Run(g, np, sim.Options{Env: env, Rendezvous: rendezvous})
	if err != nil {
		return err
	}
	fmt.Printf("np=%d steps=%d messages=%d\n", res.NP, res.Steps, len(res.Events))
	if events {
		for _, e := range res.Events {
			fmt.Printf("  %3d -> %3d   (send n%d -> recv n%d)\n", e.Sender, e.Receiver, e.SendNode, e.RecvNode)
		}
	}
	for _, p := range res.Prints {
		fmt.Printf("  proc %d prints %d (n%d)\n", p.Proc, p.Value, p.Node)
	}
	for _, f := range res.Failures {
		fmt.Printf("  ASSERT FAILED on proc %d at n%d: %s\n", f.Proc, f.Node, f.Cond)
	}
	for _, l := range res.Leaked {
		fmt.Printf("  LEAKED message from proc %d (send n%d, addressed to %d)\n", l.Sender, l.SendNode, l.Receiver)
	}
	if res.Deadlocked {
		return fmt.Errorf("deadlock: processes %v blocked", res.Blocked)
	}
	if failOnFind && (len(res.Leaked) > 0 || len(res.Failures) > 0) {
		return fmt.Errorf("%d leaked message(s), %d assertion failure(s)", len(res.Leaked), len(res.Failures))
	}
	return nil
}
