// Command psdf-run executes an MPL program on the concrete message-passing
// simulator for a fixed process count, reporting the delivered messages,
// print output, leaks and deadlocks — the ground truth the static analysis
// is validated against.
//
// Usage:
//
//	psdf-run -np N [-env k=v,k=v] [-rendezvous] program.mpl
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cfg"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/sim"
)

func main() {
	var (
		np         = flag.Int("np", 4, "number of processes")
		envFlag    = flag.String("env", "", "comma-separated symbol bindings, e.g. nrows=3,ncols=6")
		rendezvous = flag.Bool("rendezvous", false, "blocking (rendezvous) sends instead of buffered FIFO channels")
		events     = flag.Bool("events", true, "print delivered messages")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psdf-run [flags] program.mpl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *np, *envFlag, *rendezvous, *events); err != nil {
		fmt.Fprintln(os.Stderr, "psdf-run:", err)
		os.Exit(1)
	}
}

func parseEnv(s string) (map[string]int64, error) {
	env := map[string]int64{}
	if s == "" {
		return env, nil
	}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad env binding %q", pair)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(kv[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad env value %q: %v", pair, err)
		}
		env[strings.TrimSpace(kv[0])] = v
	}
	return env, nil
}

func run(path string, np int, envFlag string, rendezvous, events bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := parser.Parse(path, string(src))
	if err != nil {
		return err
	}
	if _, err := sem.Check(prog); err != nil {
		return err
	}
	env, err := parseEnv(envFlag)
	if err != nil {
		return err
	}
	g := cfg.Build(prog)
	res, err := sim.Run(g, np, sim.Options{Env: env, Rendezvous: rendezvous})
	if err != nil {
		return err
	}
	fmt.Printf("np=%d steps=%d messages=%d\n", res.NP, res.Steps, len(res.Events))
	if events {
		for _, e := range res.Events {
			fmt.Printf("  %3d -> %3d   (send n%d -> recv n%d)\n", e.Sender, e.Receiver, e.SendNode, e.RecvNode)
		}
	}
	for _, p := range res.Prints {
		fmt.Printf("  proc %d prints %d (n%d)\n", p.Proc, p.Value, p.Node)
	}
	for _, f := range res.Failures {
		fmt.Printf("  ASSERT FAILED on proc %d at n%d: %s\n", f.Proc, f.Node, f.Cond)
	}
	for _, l := range res.Leaked {
		fmt.Printf("  LEAKED message from proc %d (send n%d, addressed to %d)\n", l.Sender, l.SendNode, l.Receiver)
	}
	if res.Deadlocked {
		return fmt.Errorf("deadlock: processes %v blocked", res.Blocked)
	}
	return nil
}
