// Command psdf-bench regenerates the paper's evaluation tables: for every
// figure and table in the CGO 2009 paper's evaluation, it runs the
// corresponding workload through the analysis (and the baselines) and
// prints the paper-reported value next to the measured one. The experiment
// ids match DESIGN.md's per-experiment index.
//
// Usage:
//
//	psdf-bench [-exp id] [-parallel n] [-bench-dir dir]
//	                            run one experiment (fig2, fig5, fig6, fig7,
//	                            table1, profile, storage, scaling,
//	                            precision, verify, stencil, aggregation,
//	                            parallel, engine) or all (default). With
//	                            all, -parallel bounds how many experiments
//	                            run concurrently (0 = one per CPU,
//	                            1 = serial). Every spec that runs also
//	                            writes a machine-readable BENCH_<spec>.json
//	                            (wall time + obs phase breakdown) under
//	                            -bench-dir (default: current directory).
//	psdf-bench -engine-workers 1,2,4,8 [-engine-out BENCH_engine_workers.json]
//	                            benchmark the parallel worklist engine at
//	                            each worker count (testing.Benchmark) and
//	                            write the machine-readable results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/benchhist"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	parallel := flag.Int("parallel", 0, "worker bound for -exp all (0 = one per CPU, 1 = sequential)")
	benchDir := flag.String("bench-dir", ".", "directory for the per-spec BENCH_<spec>.json records")
	engineWorkers := flag.String("engine-workers", "", "comma-separated worker counts (e.g. 1,2,4,8): benchmark the parallel worklist engine and write machine-readable results")
	engineOut := flag.String("engine-out", "BENCH_engine_workers.json", "output path for -engine-workers results")
	logLevel := flag.String("log", "off", "structured log level: off, debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf-bench:", err)
		os.Exit(2)
	}

	if *engineWorkers != "" {
		if err := runEngineBench(*engineWorkers, *engineOut); err != nil {
			fmt.Fprintln(os.Stderr, "psdf-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "all" {
		logStart(logger, "all")
		start := time.Now()
		tables, recs, err := experiments.RunAll(*parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psdf-bench:", err)
			os.Exit(1)
		}
		logDone(logger, "all", start, len(recs))
		for _, t := range tables {
			fmt.Println(t)
		}
		for _, rec := range recs {
			if err := writeBenchRecord(*benchDir, rec); err != nil {
				fmt.Fprintln(os.Stderr, "psdf-bench:", err)
				os.Exit(1)
			}
		}
		return
	}
	logStart(logger, *exp)
	start := time.Now()
	t, rec, err := experiments.RunSpec(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf-bench:", err)
		os.Exit(1)
	}
	logDone(logger, *exp, start, 1)
	fmt.Println(t)
	if err := writeBenchRecord(*benchDir, rec); err != nil {
		fmt.Fprintln(os.Stderr, "psdf-bench:", err)
		os.Exit(1)
	}
}

// logStart / logDone bracket an experiment run in the structured log (no-ops
// when -log is off).
func logStart(lg *slog.Logger, spec string) {
	if lg != nil {
		lg.Info("experiment started", "spec", spec)
	}
}

func logDone(lg *slog.Logger, spec string, start time.Time, specs int) {
	if lg != nil {
		lg.Info("experiment finished", "spec", spec,
			"elapsed_ms", time.Since(start).Milliseconds(), "specs", specs)
	}
}

// writeBenchRecord persists one experiment's benchmark record as
// BENCH_<spec>.json: wall time plus the obs phase breakdown aggregated over
// every analysis the experiment ran. The write is atomic (temp file +
// rename) so a crashed or interrupted run never leaves a truncated record
// for downstream tooling to trip over.
func writeBenchRecord(dir string, rec *experiments.SpecResult) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+rec.Spec+".json")
	if err := benchhist.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (wall %dms, %d phases)\n", path, rec.WallNs/1e6, len(rec.Phases))
	return nil
}

// engineBenchRecord is one machine-readable benchmark measurement of the
// parallel worklist engine.
type engineBenchRecord struct {
	Workload    string `json:"workload"`
	Workers     int    `json:"workers"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// engineBenchFile is the versioned envelope written to -engine-out. The
// schema_version field lets longitudinal tooling reject records from a
// different layout rather than silently misreading them.
type engineBenchFile struct {
	SchemaVersion int                 `json:"schema_version"`
	Records       []engineBenchRecord `json:"records"`
}

// runEngineBench benchmarks the intra-analysis engine at each requested
// worker count on the wide-frontier workloads and writes the results as
// JSON (one record per workload x worker count).
func runEngineBench(spec, outPath string) error {
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -engine-workers entry %q", f)
		}
		counts = append(counts, n)
	}
	ws := []*bench.Workload{bench.Fig7Shift(), bench.Stencil1D(), bench.TransposeSquare(), bench.TransposeRect()}
	var recs []engineBenchRecord
	for _, w := range ws {
		for _, workers := range counts {
			w, workers := w, workers
			var failure error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, g := w.Parse()
					m := cartesian.New(core.ScanInvariants(g))
					res, err := core.Analyze(g, core.Options{Matcher: m, Workers: workers})
					if err != nil {
						failure = err
						b.FailNow()
					}
					if !res.Clean() {
						failure = fmt.Errorf("analysis not clean: %v", res.TopReasons())
						b.FailNow()
					}
				}
			})
			if failure != nil {
				return fmt.Errorf("%s workers=%d: %w", w.Name, workers, failure)
			}
			rec := engineBenchRecord{
				Workload:    w.Name,
				Workers:     workers,
				Iterations:  r.N,
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			recs = append(recs, rec)
			fmt.Printf("%-18s workers=%d  %12d ns/op  %8d B/op  %6d allocs/op\n",
				rec.Workload, rec.Workers, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
		}
	}
	data, err := json.MarshalIndent(engineBenchFile{
		SchemaVersion: experiments.BenchSchemaVersion,
		Records:       recs,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := benchhist.WriteFileAtomic(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d records)\n", outPath, len(recs))
	return nil
}
