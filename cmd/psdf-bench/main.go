// Command psdf-bench regenerates the paper's evaluation tables: for every
// figure and table in the CGO 2009 paper's evaluation, it runs the
// corresponding workload through the analysis (and the baselines) and
// prints the paper-reported value next to the measured one. The experiment
// ids match DESIGN.md's per-experiment index.
//
// Usage:
//
//	psdf-bench [-exp id] [-parallel n]
//	                            run one experiment (fig2, fig5, fig6, fig7,
//	                            table1, profile, storage, scaling,
//	                            precision, verify, stencil, aggregation,
//	                            parallel) or all (default). With all,
//	                            -parallel bounds how many experiments run
//	                            concurrently (0 = one per CPU, 1 = serial).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	parallel := flag.Int("parallel", 0, "worker bound for -exp all (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	byID := map[string]func() (*experiments.Table, error){
		"fig2":        experiments.Fig2,
		"fig5":        experiments.Fig5,
		"fig6":        experiments.Fig6,
		"fig7":        experiments.Fig7,
		"table1":      experiments.TableI,
		"profile":     experiments.ProfileSectionIX,
		"storage":     experiments.Storage,
		"scaling":     experiments.Scaling,
		"precision":   experiments.Precision,
		"verify":      experiments.VerifyExp,
		"stencil":     experiments.Stencil,
		"aggregation": experiments.Aggregation,
		"parallel":    experiments.ParallelDriver,
	}

	if *exp == "all" {
		tables, err := experiments.AllParallel(*parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psdf-bench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		return
	}
	builder, ok := byID[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "psdf-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	t, err := builder()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf-bench:", err)
		os.Exit(1)
	}
	fmt.Println(t)
}
