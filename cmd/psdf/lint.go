package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/lint"
	"repro/internal/source"
)

// lintVersion is reported in the SARIF tool descriptor.
const lintVersion = "0.1.0"

// runLint implements the `psdf lint` subcommand: run the diagnostic passes
// over one or more MPL programs and render the findings. Exit codes: 0 no
// error-severity findings, 1 findings (or a file failed to analyze), 2 usage.
func runLint(args []string) int {
	fs := flag.NewFlagSet("psdf lint", flag.ExitOnError)
	var (
		format   = fs.String("format", "text", "output format: text, json or sarif")
		client   = fs.String("client", "cartesian", "client analysis: symbolic or cartesian")
		nonBlock = fs.Bool("nonblocking", false, "non-blocking sends (Section X aggregation extension)")
		strict   = fs.Bool("strict-bounds", false, "also report rank-bounds targets that could not be proved (PSDF-W004)")
		summary  = fs.Bool("summary", false, "print a per-file rank-bounds summary to stderr")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: psdf lint [flags] program.mpl [more.mpl ...]")
		fs.PrintDefaults()
		fmt.Fprintln(os.Stderr, "\npasses:")
		for _, p := range lint.Passes() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", p.Name, p.Doc)
		}
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "psdf lint: unknown format %q (want text, json or sarif)\n", *format)
		return 2
	}

	var all []diag.Diagnostic
	files := map[string]*source.File{}
	failed := false
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psdf lint:", err)
			failed = true
			continue
		}
		opts := core.Options{NonBlockingSends: *nonBlock}
		if *client == "symbolic" {
			opts.Matcher = &symbolic.Matcher{}
		} else if *client != "cartesian" {
			fmt.Fprintf(os.Stderr, "psdf lint: unknown client %q\n", *client)
			return 2
		}
		tgt, err := lint.Load(path, string(src), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdf lint: %s: %v\n", path, err)
			failed = true
			continue
		}
		rep := lint.Run(tgt, lint.Options{Strict: *strict})
		all = append(all, rep.Diags...)
		files[tgt.Path] = tgt.File
		if *summary {
			s := rep.Bounds
			fmt.Fprintf(os.Stderr, "%s: bounds total=%d proven=%d proven-by-match=%d violated=%d unknown=%d non-affine=%d\n",
				path, s.Total, s.Proven, s.ProvenByMatch, s.Violated, s.Unknown, s.NonAffine)
		}
	}
	diag.Sort(all)

	var err error
	switch *format {
	case "text":
		diag.WriteText(os.Stdout, files, all)
	case "json":
		err = diag.WriteJSON(os.Stdout, all)
	case "sarif":
		err = diag.WriteSARIF(os.Stdout, lintVersion, all)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf lint:", err)
		return 1
	}
	if failed || diag.HasErrors(all) {
		return 1
	}
	return 0
}
