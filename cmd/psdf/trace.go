package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
)

// runTrace implements `psdf trace`: summarize a span trace written by
// `psdf-run -analyze -trace` (Chrome trace-event format) or -trace-jsonl
// (JSON lines) into a per-phase / per-configuration cost table, or validate
// it with -check.
func runTrace(args []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	var (
		top      = fs.Int("top", 10, "hottest configurations to list (0 = none)")
		check    = fs.Bool("check", false, "validate the trace (well-formed nesting, coverage) and exit nonzero on problems")
		minCover = fs.Float64("min-coverage", 0.95, "with -check: minimum self-time coverage of the engine-lane extent")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: psdf trace [-top n] [-check [-min-coverage f]] trace.json ...")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}
	exit := 0
	for _, path := range fs.Args() {
		evs, err := readTrace(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdf trace: %s: %v\n", path, err)
			exit = 1
			continue
		}
		if *check {
			if probs := obs.Check(evs, *minCover); len(probs) > 0 {
				fmt.Printf("%s: INVALID (%d problem(s))\n", path, len(probs))
				for _, p := range probs {
					fmt.Printf("  %s\n", p)
				}
				exit = 1
				continue
			}
			s := obs.Summarize(evs)
			fmt.Printf("%s: ok (%d events, wall %v, coverage %.1f%%)\n",
				path, s.Events, s.Wall.Round(time.Microsecond), 100*s.Coverage)
			continue
		}
		printSummary(path, obs.Summarize(evs), *top)
	}
	return exit
}

// readTrace loads a trace in either supported format: Chrome trace-event
// JSON arrays (what -trace writes) or JSON lines (what -trace-jsonl
// writes), picked by the file's first non-space byte.
func readTrace(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var first [1]byte
	for {
		n, err := f.Read(first[:])
		if n > 0 {
			switch first[0] {
			case ' ', '\t', '\n', '\r':
				continue
			}
			break
		}
		if err == io.EOF {
			return nil, fmt.Errorf("empty trace file")
		}
		if err == nil {
			// A (0, nil) read is legal for an io.Reader; error out rather
			// than spin.
			err = io.ErrNoProgress
		}
		return nil, err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if first[0] == '[' {
		return obs.ReadChromeTrace(f)
	}
	return obs.ReadJSONL(f)
}

func printSummary(path string, s obs.Summary, top int) {
	fmt.Printf("%s: %d events, wall %v, self-time coverage %.1f%%\n",
		filepath.Clean(path), s.Events, s.Wall.Round(time.Microsecond), 100*s.Coverage)
	fmt.Printf("  %-14s %8s %12s %12s %7s\n", "phase", "count", "self", "inclusive", "self%")
	for _, pc := range s.Phases {
		pct := 0.0
		if s.SelfSum > 0 {
			pct = 100 * float64(pc.Self) / float64(s.SelfSum)
		}
		fmt.Printf("  %-14s %8d %12v %12v %6.1f%%\n",
			pc.Phase, pc.Count, pc.Self.Round(time.Microsecond),
			pc.Inclusive.Round(time.Microsecond), pct)
	}
	if top <= 0 || len(s.HotKeys) == 0 {
		return
	}
	fmt.Printf("  hottest configurations (self time):\n")
	for i, kc := range s.HotKeys {
		if i >= top {
			fmt.Printf("    ... %d more\n", len(s.HotKeys)-top)
			break
		}
		fmt.Printf("    %2d. %10v  %5d spans  %s\n",
			i+1, kc.Self.Round(time.Microsecond), kc.Count, flattenKey(kc.Key, 100))
	}
}

// flattenKey renders a (possibly multi-line) configuration shape key on one
// line, truncated for the table.
func flattenKey(key string, max int) string {
	k := strings.Join(strings.Fields(strings.ReplaceAll(key, "\n", " ")), " ")
	if len(k) > max {
		k = k[:max-3] + "..."
	}
	return k
}
