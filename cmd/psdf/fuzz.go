package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/benchhist"
	"repro/internal/differ"
	"repro/internal/gen"
)

// runFuzz is the differential-soundness sweep: generate N programs from a
// fixed seed, triage each against the explicit-state oracle, optionally
// minimize every divergence, and exit nonzero when any finding reaches the
// gate class. `psdf fuzz -seed 1 -n 2000` is the CI acceptance gate.
func runFuzz(args []string) int {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	var (
		seed    = fs.Int64("seed", 1, "base sweep seed (program i uses sub-seed seed+i*1000003)")
		n       = fs.Int("n", 100, "number of programs to generate and triage")
		nps     = fs.String("np", "", "comma-separated oracle process counts (default 2..6)")
		workers = fs.String("workers", "", "comma-separated parallel-engine worker counts (default 2,8)")
		buggy   = fs.Float64("buggy", 0, "fraction of programs generated with a deliberate defect")
		shrink  = fs.Bool("shrink", false, "minimize each divergent program (class-preserving ddmin)")
		out     = fs.String("out", "", "directory to write divergent programs (and minimized repros) to")
		gate    = fs.String("gate", "error", "fail the sweep when a finding reaches this class (error|engine|soundness|precision)")
		verbose = fs.Bool("v", false, "log every program as it is triaged")
		in      = fs.String("in", "", "triage (and with -shrink, minimize) one MPL file instead of sweeping")
		sumOut  = fs.String("summary-out", "", "write the sweep summary as JSON (benchhist.FuzzSweep) for `psdf bench record -fuzz-summary`")
		profOut = fs.String("profile-out", "", "profile every sequential reference run, print the ranked per-construct precision attribution, and write it as JSON")
	)
	lf := addLogFlags(fs)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: psdf fuzz [-seed S] [-n N] [-np 2,3,4] [-shrink] [-out dir] [-gate class]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	gateClass, err := differ.ParseClass(*gate)
	if err != nil || gateClass <= differ.ClassSkipped {
		fmt.Fprintf(os.Stderr, "psdf fuzz: bad -gate %q (want precision, error, engine or soundness)\n", *gate)
		return 2
	}
	do := differ.Options{}
	if do.Core.Log, err = lf.logger(); err != nil {
		fmt.Fprintf(os.Stderr, "psdf fuzz: %v\n", err)
		return 2
	}
	if do.NPs, err = parseIntList(*nps); err != nil {
		fmt.Fprintf(os.Stderr, "psdf fuzz: bad -np: %v\n", err)
		return 2
	}
	if do.Workers, err = parseIntList(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "psdf fuzz: bad -workers: %v\n", err)
		return 2
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "psdf fuzz: %v\n", err)
			return 2
		}
	}

	if *in != "" {
		src, err := os.ReadFile(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdf fuzz: %v\n", err)
			return 2
		}
		f := differ.Check(string(src), do)
		fmt.Printf("%s: %s\n", *in, f)
		if *shrink && f.Class > differ.ClassSkipped {
			sr, err := differ.Shrink(string(src), differ.ShrinkOptions{Differ: do})
			if err != nil {
				fmt.Fprintf(os.Stderr, "psdf fuzz: shrink: %v\n", err)
				return 2
			}
			fmt.Printf("minimized to %d statements (%d checks), finding now: %s\n%s",
				sr.Stmts, sr.Checks, sr.Finding, sr.Src)
		}
		if f.Class >= gateClass {
			return 1
		}
		return 0
	}

	so := differ.SweepOptions{Seed: *seed, N: *n, BuggyFraction: *buggy, Differ: do, Attribute: *profOut != ""}
	if *verbose {
		so.Progress = func(i int, p gen.Program, f *differ.Finding) {
			fmt.Printf("program %4d (seed %d, %v): %s\n", i, differ.ProgramSeed(*seed, i), p.Families, f)
		}
	}
	res := differ.Sweep(so)

	failed := false
	for _, f := range res.Findings {
		if f.Finding.Class >= gateClass {
			failed = true
		}
		if f.Finding.Class >= gateClass || *out != "" {
			fmt.Printf("program %d (seed %d): %s\n", f.Index, f.Seed, f.Finding)
		}
		if *out != "" {
			base := filepath.Join(*out, fmt.Sprintf("%04d_%s", f.Index, f.Finding.Class))
			header := fmt.Sprintf("# max-class: %s\n# origin: psdf fuzz -seed %d (program %d, sub-seed %d)\n# finding: %s\n",
				f.Finding.Class, *seed, f.Index, f.Seed, f.Finding)
			if err := os.WriteFile(base+".mpl", []byte(header+f.Program.Src), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "psdf fuzz: %v\n", err)
				return 2
			}
			if *shrink {
				sr, err := differ.Shrink(f.Program.Src, differ.ShrinkOptions{Differ: do})
				if err != nil {
					fmt.Fprintf(os.Stderr, "psdf fuzz: shrink program %d: %v\n", f.Index, err)
					continue
				}
				minHeader := header + fmt.Sprintf("# minimized: %d statements, %d checks, finding now: %s\n",
					sr.Stmts, sr.Checks, sr.Finding)
				if err := os.WriteFile(base+".min.mpl", []byte(minHeader+sr.Src), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "psdf fuzz: %v\n", err)
					return 2
				}
				fmt.Printf("  minimized to %d statements (%d checks)\n", sr.Stmts, sr.Checks)
			}
		}
	}
	fmt.Printf("fuzz sweep: %d programs: ok=%d precision=%d skipped=%d soundness=%d engine=%d error=%d (precision rate %.1f%%)\n",
		res.Programs, res.Count(differ.ClassOK), res.Count(differ.ClassPrecision), res.Count(differ.ClassSkipped),
		res.Count(differ.ClassSoundness), res.Count(differ.ClassEngine), res.Count(differ.ClassError),
		100*res.PrecisionRate())
	if res.Attribution != nil {
		res.Attribution.WriteTable(os.Stdout)
		f, err := os.Create(*profOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdf fuzz: %v\n", err)
			return 2
		}
		if err := res.Attribution.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "psdf fuzz: %v\n", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "psdf fuzz: %v\n", err)
			return 2
		}
	}
	if *sumOut != "" {
		summary := benchhist.FuzzSweep{
			Seed:      *seed,
			Programs:  res.Programs,
			OK:        res.Count(differ.ClassOK),
			Skipped:   res.Count(differ.ClassSkipped),
			Precision: res.Count(differ.ClassPrecision),
			Errors:    res.Count(differ.ClassError),
			Engine:    res.Count(differ.ClassEngine),
			Soundness: res.Count(differ.ClassSoundness),
		}
		if res.Attribution != nil {
			for _, cs := range res.Attribution.Rows() {
				summary.Constructs = append(summary.Constructs, benchhist.FuzzConstruct{
					Construct:     cs.Construct,
					Programs:      cs.Programs,
					WidenFailures: cs.WidenFailures,
					GiveUps:       cs.GiveUps,
					TopDemotions:  cs.TopDemotions,
					TopPair:       cs.TopPair(),
				})
			}
		}
		data, err := json.MarshalIndent(&summary, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdf fuzz: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*sumOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "psdf fuzz: %v\n", err)
			return 2
		}
	}
	if failed {
		fmt.Printf("FAIL: findings at or above class %s\n", gateClass)
		return 1
	}
	return 0
}

// parseIntList parses "2,3,4" into []int; empty input yields nil (defaults).
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
