package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchhist"
	"repro/internal/experiments"
)

// runBench implements `psdf bench`: the longitudinal regression
// observability workflow over BENCH_HISTORY.jsonl.
//
//	psdf bench record  measure the experiments registry (N samples per
//	                   spec) plus the per-workload precision fingerprints
//	                   and append one commit-anchored entry to the history
//	psdf bench diff    statistically compare two entries (Mann–Whitney
//	                   over timings, exact facet equality over
//	                   fingerprints)
//	psdf bench check   the CI gate: diff baseline vs latest and exit
//	                   nonzero on precision changes (and, with
//	                   -fail-on-time, on significant slowdowns)
//	psdf bench report  render the whole recorded trajectory as markdown
func runBench(args []string) int {
	if len(args) < 1 {
		benchUsage()
		return 2
	}
	switch args[0] {
	case "record":
		return benchRecord(args[1:])
	case "diff":
		return benchDiff(args[1:])
	case "check":
		return benchCheck(args[1:])
	case "report":
		return benchReport(args[1:])
	case "-h", "-help", "--help", "help":
		benchUsage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "psdf bench: unknown subcommand %q\n", args[0])
		benchUsage()
		return 2
	}
}

func benchUsage() {
	fmt.Fprintln(os.Stderr, `usage: psdf bench <subcommand> [flags]

subcommands:
  record  run the experiments registry -sample times, capture precision
          fingerprints, and append a commit-anchored entry to the history
  diff    statistically compare two history entries
  check   CI gate: compare baseline vs latest, exit nonzero past thresholds
  report  render the recorded trajectory as markdown

run 'psdf bench <subcommand> -h' for flags`)
}

// gitHead returns the current commit SHA, or "" when not in a git checkout
// (the entry then records "unknown" and diffs still work by index).
func gitHead() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func hostFingerprint() benchhist.Host {
	return benchhist.Host{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

func benchRecord(args []string) int {
	fs := flag.NewFlagSet("bench record", flag.ExitOnError)
	var (
		samples  = fs.Int("sample", 5, "repetitions per spec (timing samples)")
		history  = fs.String("history", "BENCH_HISTORY.jsonl", "history file to append to")
		parallel = fs.Int("parallel", 1, "specs in flight per repetition (1 = serial, the stable-timing default; 0 = one per CPU)")
		commit   = fs.String("commit", "", "commit SHA to anchor the entry to (default: git rev-parse HEAD)")
		note     = fs.String("note", "", "free-form annotation stored on the entry")
		expList  = fs.String("exp", "", "comma-separated spec ids to record (default: all)")
		scalingW = fs.String("scaling-workers", "2,4,8", "comma-separated worker counts for the engine scaling capture (empty = skip)")
		scalingR = fs.Int("scaling-reps", 3, "repetitions per (workload, workers) scaling point; best-of wins")
		fuzzSum  = fs.String("fuzz-summary", "", "attach a differential-fuzz sweep summary JSON (from `psdf fuzz -summary-out`) to the entry")
	)
	lf := addLogFlags(fs)
	_ = fs.Parse(args)
	logger, err := lf.logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench record:", err)
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "psdf bench record: unexpected arguments", fs.Args())
		return 2
	}
	var ids []string
	if *expList != "" {
		for _, id := range strings.Split(*expList, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	sha := *commit
	if sha == "" {
		if sha = gitHead(); sha == "" {
			sha = "unknown"
		}
	}
	if min := benchhist.MinSamplesForAlpha(benchhist.DefaultThresholds().Alpha); *samples < min {
		fmt.Fprintf(os.Stderr, "psdf bench record: note: %d samples cannot reach significance at alpha %.2f (needs >= %d); timing diffs against this entry will report \"no change\"\n",
			*samples, benchhist.DefaultThresholds().Alpha, min)
	}

	start := time.Now()
	if logger != nil {
		logger.Info("bench record start", "samples", *samples, "parallel", *parallel, "commit", sha)
	}
	sampled, err := experiments.RunSampled(ids, *samples, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench record:", err)
		return 1
	}
	fps, err := experiments.CaptureFingerprints(experiments.FingerprintOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench record:", err)
		return 1
	}
	var fuzz *benchhist.FuzzSweep
	if *fuzzSum != "" {
		data, err := os.ReadFile(*fuzzSum)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psdf bench record:", err)
			return 2
		}
		fuzz = &benchhist.FuzzSweep{}
		if err := json.Unmarshal(data, fuzz); err != nil {
			fmt.Fprintf(os.Stderr, "psdf bench record: %s: %v\n", *fuzzSum, err)
			return 2
		}
		if fuzz.Programs <= 0 {
			fmt.Fprintf(os.Stderr, "psdf bench record: %s: summary records no programs\n", *fuzzSum)
			return 2
		}
	}
	var scaling map[string]*benchhist.WorkerScaling
	if *scalingW != "" {
		counts, err := parseWorkerCounts(*scalingW)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psdf bench record:", err)
			return 2
		}
		if scaling, err = experiments.MeasureWorkerScaling(counts, *scalingR); err != nil {
			fmt.Fprintln(os.Stderr, "psdf bench record:", err)
			return 1
		}
	}

	entry := &benchhist.Entry{
		SchemaVersion: benchhist.SchemaVersion,
		Commit:        sha,
		Time:          time.Now().UTC(),
		Note:          *note,
		Host:          hostFingerprint(),
		Samples:       *samples,
		Specs:         map[string]*benchhist.SpecTiming{},
		Fingerprints:  fps,
		Scaling:       scaling,
		Fuzz:          fuzz,
	}
	for _, s := range sampled {
		st := benchhist.NewSpecTiming(s.Title, s.WallNs, s.Phases)
		st.AllocsPerOp, st.BytesPerOp = s.AllocsPerOp, s.BytesPerOp
		entry.Specs[s.ID] = st
	}
	if err := benchhist.Append(*history, entry); err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench record:", err)
		return 1
	}
	if logger != nil {
		logger.Info("bench record done", "history", *history, "specs", len(entry.Specs),
			"fingerprints", len(fps), "elapsed", time.Since(start))
	}
	fmt.Printf("recorded %s entry for %s: %d specs x %d samples, %d fingerprints (%v total)\n",
		*history, entry.ShortCommit(), len(entry.Specs), *samples, len(fps), time.Since(start).Round(time.Millisecond))
	for _, s := range sampled {
		st := entry.Specs[s.ID]
		allocs := ""
		if st.HasAllocs() {
			allocs = fmt.Sprintf("  %d allocs/op  %s/op", st.AllocsPerOp, humanBytes(st.BytesPerOp))
		}
		fmt.Printf("  %-14s median %12v  stddev %10v  (%d samples)%s\n",
			s.ID, time.Duration(st.MedianNs).Round(time.Microsecond),
			time.Duration(st.StddevNs).Round(time.Microsecond), len(st.WallNs), allocs)
	}
	for _, name := range sortedScalingNames(scaling) {
		ws := scaling[name]
		w := ws.MaxWorkers()
		fmt.Printf("  scaling %-14s %12v at 1 worker, %v at %d (%.2fx)\n",
			name, time.Duration(ws.NsPerOp[1]).Round(time.Microsecond),
			time.Duration(ws.NsPerOp[w]).Round(time.Microsecond), w, ws.Speedup[w])
	}
	if fuzz != nil {
		fmt.Printf("  fuzz sweep seed %d: %d programs, ok=%d precision=%d (%.1f%%) soundness=%d engine=%d error=%d\n",
			fuzz.Seed, fuzz.Programs, fuzz.OK, fuzz.Precision, 100*fuzz.PrecisionRate(),
			fuzz.Soundness, fuzz.Engine, fuzz.Errors)
	}
	return 0
}

// parseWorkerCounts parses a "2,4,8"-style worker-count list.
func parseWorkerCounts(spec string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -scaling-workers entry %q", f)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func sortedScalingNames(scaling map[string]*benchhist.WorkerScaling) []string {
	names := make([]string, 0, len(scaling))
	for n := range scaling {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// humanBytes renders a byte count with a binary-prefix unit.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func benchDiff(args []string) int {
	fs := flag.NewFlagSet("bench diff", flag.ExitOnError)
	var (
		history  = fs.String("history", "BENCH_HISTORY.jsonl", "history file to read")
		oldSel   = fs.String("old", "-2", "old entry selector (index, negative from end, commit prefix, 'baseline', 'latest')")
		newSel   = fs.String("new", "latest", "new entry selector")
		alpha    = fs.Float64("alpha", 0.05, "Mann–Whitney significance level")
		minDelta = fs.Float64("min-delta", 0.05, "minimum |relative median change| to flag")
		markdown = fs.Bool("markdown", false, "render the report as markdown")
	)
	lf := addLogFlags(fs)
	_ = fs.Parse(args)
	logger, err := lf.logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench diff:", err)
		return 2
	}
	if logger != nil {
		logger.Info("bench diff", "history", *history, "old", *oldSel, "new", *newSel)
	}
	r, err := diffReport(*history, *oldSel, *newSel, benchhist.Thresholds{Alpha: *alpha, MinDelta: *minDelta})
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench diff:", err)
		return 1
	}
	if *markdown {
		fmt.Print(r.Markdown())
	} else {
		fmt.Print(r)
	}
	return 0
}

// diffReport reads the history, resolves the selectors and builds the
// statistical comparison.
func diffReport(history, oldSel, newSel string, th benchhist.Thresholds) (*benchhist.Report, error) {
	entries, err := benchhist.Read(history)
	if err != nil {
		return nil, err
	}
	if len(entries) < 2 && oldSel != newSel {
		return nil, fmt.Errorf("%s has %d entr%s; need two to diff (run `psdf bench record` on both commits)",
			history, len(entries), map[bool]string{true: "y", false: "ies"}[len(entries) == 1])
	}
	oldE, oldIdx, err := benchhist.Select(entries, oldSel)
	if err != nil {
		return nil, fmt.Errorf("old selector: %w", err)
	}
	newE, newIdx, err := benchhist.Select(entries, newSel)
	if err != nil {
		return nil, fmt.Errorf("new selector: %w", err)
	}
	r := benchhist.Diff(oldE, newE, th)
	r.OldIndex, r.NewIndex = oldIdx, newIdx
	return r, nil
}

func benchCheck(args []string) int {
	fs := flag.NewFlagSet("bench check", flag.ExitOnError)
	var (
		history      = fs.String("history", "BENCH_HISTORY.jsonl", "history file to read")
		baseline     = fs.String("baseline", "baseline", "baseline entry selector (default: the oldest entry)")
		target       = fs.String("new", "latest", "entry under test")
		alpha        = fs.Float64("alpha", 0.05, "Mann–Whitney significance level")
		minDelta     = fs.Float64("min-delta", 0.05, "minimum |relative median change| to flag")
		failOnTime   = fs.Bool("fail-on-time", false, "fail (not just warn) on significant same-host slowdowns")
		failOnAllocs = fs.Bool("fail-on-allocs", false, "fail (not just warn) on allocs/op regressions past -max-alloc-delta")
		maxAlloc     = fs.Float64("max-alloc-delta", 0.20, "relative allocs/op growth past which a spec regresses")
		minSpeedup   = fs.Float64("min-speedup", 0, "warn when the entry under test's engine speedup at its highest recorded worker count falls below this ratio (0 = off)")
	)
	lf := addLogFlags(fs)
	_ = fs.Parse(args)
	logger, err := lf.logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench check:", err)
		return 2
	}
	r, err := diffReport(*history, *baseline, *target,
		benchhist.Thresholds{Alpha: *alpha, MinDelta: *minDelta, MaxAllocDelta: *maxAlloc})
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench check:", err)
		return 1
	}
	fmt.Print(r)
	failures, warnings := r.GateWith(benchhist.GatePolicy{FailOnTime: *failOnTime, FailOnAllocs: *failOnAllocs})
	if *minSpeedup > 0 {
		// Warn-level by design: the ratio depends on the host, so a drop is
		// a prompt to look, never a red build.
		entries, err := benchhist.Read(*history)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psdf bench check:", err)
			return 1
		}
		newE, _, err := benchhist.Select(entries, *target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psdf bench check:", err)
			return 1
		}
		if len(newE.Scaling) == 0 {
			warnings = append(warnings, fmt.Sprintf("-min-speedup %.2f set but entry %s carries no scaling capture", *minSpeedup, newE.ShortCommit()))
		}
		warnings = append(warnings, newE.MinSpeedupWarnings(*minSpeedup)...)
	}
	for _, w := range warnings {
		fmt.Printf("WARN: %s\n", w)
	}
	for _, f := range failures {
		fmt.Printf("FAIL: %s\n", f)
	}
	if logger != nil {
		logger.Info("bench check gated", "failures", len(failures), "warnings", len(warnings))
	}
	if len(failures) > 0 {
		fmt.Printf("bench check: FAILED (%d failure(s), %d warning(s))\n", len(failures), len(warnings))
		return 1
	}
	fmt.Printf("bench check: ok (%d warning(s))\n", len(warnings))
	return 0
}

func benchReport(args []string) int {
	fs := flag.NewFlagSet("bench report", flag.ExitOnError)
	var (
		history = fs.String("history", "BENCH_HISTORY.jsonl", "history file to read")
		out     = fs.String("out", "", "write the markdown report to a file instead of stdout")
	)
	lf := addLogFlags(fs)
	_ = fs.Parse(args)
	logger, err := lf.logger()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench report:", err)
		return 2
	}
	entries, err := benchhist.Read(*history)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench report:", err)
		return 1
	}
	if logger != nil {
		logger.Info("bench report", "history", *history, "entries", len(entries))
	}
	md := trajectoryMarkdown(*history, entries)
	if *out == "" {
		fmt.Print(md)
		return 0
	}
	if err := benchhist.WriteFileAtomic(*out, []byte(md), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "psdf bench report:", err)
		return 1
	}
	fmt.Printf("wrote %s (%d entries)\n", *out, len(entries))
	return 0
}

// trajectoryMarkdown renders the full history: one row per entry per spec
// (median wall), plus the fingerprint deltas between consecutive entries.
func trajectoryMarkdown(path string, entries []*benchhist.Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Bench trajectory: %s\n\n%d entries.\n\n", path, len(entries))

	// Union of spec ids across the trajectory, sorted.
	ids := map[string]bool{}
	for _, e := range entries {
		for id := range e.Specs {
			ids[id] = true
		}
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)

	b.WriteString("## Timing trajectory (median wall per entry)\n\n| spec |")
	for i, e := range entries {
		fmt.Fprintf(&b, " #%d `%s` |", i, e.ShortCommit())
	}
	b.WriteString("\n|---|")
	for range entries {
		b.WriteString("---:|")
	}
	b.WriteString("\n")
	for _, id := range sorted {
		fmt.Fprintf(&b, "| %s |", id)
		for _, e := range entries {
			if st := e.Specs[id]; st != nil {
				fmt.Fprintf(&b, " %v |", time.Duration(st.MedianNs).Round(time.Microsecond))
			} else {
				b.WriteString(" - |")
			}
		}
		b.WriteString("\n")
	}

	// Allocation trajectory, shown once any entry carries alloc data
	// (entries recorded before the fields existed render as "-").
	anyAllocs := false
	for _, e := range entries {
		for _, st := range e.Specs {
			if st.HasAllocs() {
				anyAllocs = true
			}
		}
	}
	if anyAllocs {
		b.WriteString("\n## Allocation trajectory (allocs/op per entry)\n\n| spec |")
		for i, e := range entries {
			fmt.Fprintf(&b, " #%d `%s` |", i, e.ShortCommit())
		}
		b.WriteString("\n|---|")
		for range entries {
			b.WriteString("---:|")
		}
		b.WriteString("\n")
		for _, id := range sorted {
			fmt.Fprintf(&b, "| %s |", id)
			for _, e := range entries {
				if st := e.Specs[id]; st.HasAllocs() {
					fmt.Fprintf(&b, " %d (%s) |", st.AllocsPerOp, humanBytes(st.BytesPerOp))
				} else {
					b.WriteString(" - |")
				}
			}
			b.WriteString("\n")
		}
	}

	// Differential-fuzz trajectory, shown once any entry carries a sweep
	// summary: the precision-loss rate over generated programs is the
	// broad-coverage drift signal the curated fingerprints cannot see.
	anyFuzz := false
	for _, e := range entries {
		if e.Fuzz != nil {
			anyFuzz = true
		}
	}
	if anyFuzz {
		b.WriteString("\n## Differential-fuzz trajectory\n\n")
		b.WriteString("| entry | seed | programs | ok | precision | rate | soundness | engine | error | top construct |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|---|\n")
		for i, e := range entries {
			if e.Fuzz == nil {
				fmt.Fprintf(&b, "| #%d `%s` | - | - | - | - | - | - | - | - | - |\n", i, e.ShortCommit())
				continue
			}
			fz := e.Fuzz
			// The top construct is the profiler's attribution verdict for
			// this sweep: the generated source construct charged with the
			// most widening failures (from `psdf fuzz -profile-out`).
			top := "-"
			if len(fz.Constructs) > 0 {
				c := fz.Constructs[0]
				top = fmt.Sprintf("`%s` (%d fails)", c.Construct, c.WidenFailures)
			}
			fmt.Fprintf(&b, "| #%d `%s` | %d | %d | %d | %d | %.1f%% | %d | %d | %d | %s |\n",
				i, e.ShortCommit(), fz.Seed, fz.Programs, fz.OK, fz.Precision,
				100*fz.PrecisionRate(), fz.Soundness, fz.Engine, fz.Errors, top)
		}
	}

	b.WriteString("\n## Precision trajectory\n\n")
	anyChange := false
	for i := 1; i < len(entries); i++ {
		r := benchhist.Diff(entries[i-1], entries[i], benchhist.DefaultThresholds())
		if !r.PrecisionChanged() {
			continue
		}
		anyChange = true
		fmt.Fprintf(&b, "### #%d `%s` → #%d `%s`\n\n", i-1, entries[i-1].ShortCommit(), i, entries[i].ShortCommit())
		for _, fd := range r.Fingerprints {
			if !fd.PrecisionChanged() {
				continue
			}
			switch {
			case fd.Added:
				fmt.Fprintf(&b, "- `%s`: added\n", fd.Workload)
			case fd.Removed:
				fmt.Fprintf(&b, "- `%s`: removed\n", fd.Workload)
			default:
				fmt.Fprintf(&b, "- `%s`: %s\n", fd.Workload, strings.Join(fd.Changed, "; "))
			}
		}
		b.WriteString("\n")
	}
	if !anyChange {
		b.WriteString("No precision-fingerprint changes across the recorded trajectory.\n")
	}
	return b.String()
}
