package main

import (
	"flag"
	"log/slog"
	"os"

	"repro/internal/obs"
)

// logFlags is the shared -log/-log-format registration: every psdf
// subcommand (and the top-level flag set) accepts the same pair with the
// same defaults and help text, so the flags cannot drift per command.
type logFlags struct {
	level  *string
	format *string
}

// addLogFlags registers -log and -log-format on fs.
func addLogFlags(fs *flag.FlagSet) logFlags {
	return logFlags{
		level:  fs.String("log", "off", "structured log level: off, debug, info, warn or error"),
		format: fs.String("log-format", "text", "structured log format: text or json"),
	}
}

// logger builds the stderr logger the flags describe (nil when -log off).
func (lf logFlags) logger() (*slog.Logger, error) {
	return obs.NewLogger(os.Stderr, *lf.level, *lf.format)
}
