// Command psdf runs the communication-sensitive static dataflow analysis
// on an MPL program: it parses, type-checks, builds the CFG, analyzes the
// pCFG with the chosen client analysis, and reports the communication
// topology plus any verification findings.
//
// Usage:
//
//	psdf [flags] program.mpl
//	psdf lint [-format text|json|sarif] [-strict-bounds] program.mpl ...
//	psdf trace [-top n] [-check] trace.json ...
//	psdf bench record|diff|check|report [flags]
//	psdf fuzz [-seed S] [-n N] [-np 2,3] [-shrink] [-out dir] [-gate class]
//	psdf profile [-format text|json|folded] [-top n] (report.json | program.mpl) ...
//
// The profile subcommand renders source-attributed analysis profiles:
// per-statement step time, configurations spawned, joins, widenings and
// widening failures (with the failing bound-expression pair), give-ups,
// ⊤ demotions, match-memo misses and HSM prover time, mapped back onto
// the MPL source as a heat listing, JSON report, or folded flamegraph
// stacks. It reads psdf-profile/1 JSON written by `psdf-run
// -profile-out`, or profiles .mpl programs in place.
//
// The lint subcommand runs the coded diagnostic passes (message leaks,
// deadlocks, tag mismatches, rank bounds, ⊤-blame, dead code) and exits
// nonzero when error-severity findings exist.
//
// The fuzz subcommand is the differential-soundness sweep: it generates
// deterministic random MPL programs, triages each against the
// explicit-state oracle (sequential and parallel engines), optionally
// minimizes divergences with a class-preserving delta-debugging shrinker,
// and exits nonzero when any finding reaches the gate class. CI runs
// `psdf fuzz -seed 1 -n 2000` as the acceptance gate: zero soundness or
// engine findings allowed.
//
// The trace subcommand summarizes a span trace written by `psdf-run
// -analyze -trace` into a per-phase / per-configuration cost table, or
// validates it with -check.
//
// The bench subcommand maintains the longitudinal regression history
// (BENCH_HISTORY.jsonl): record appends a commit-anchored entry with
// multi-sample timings and per-workload precision fingerprints, diff
// statistically compares two entries (Mann–Whitney over timings, exact
// equality over fingerprints), check is the CI gate (exit nonzero on
// precision changes), and report renders the trajectory as markdown.
//
// Flags:
//
//	-client symbolic|cartesian   client analysis (default cartesian)
//	-backend array|map           constraint-graph storage (default array)
//	-dot                         print the topology as Graphviz dot
//	-cfg                         print the CFG as Graphviz dot and exit
//	-trace                       log every analysis step to stderr
//	-verify                      run the error-detection pass (default on)
//	-stats                       print analysis statistics
//	-log level                   structured engine logs on stderr (off, debug,
//	                             info, warn, error)
//	-log-format text|json        structured log encoding
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cfg"
	"repro/internal/cg"
	"repro/internal/clients/cartesian"
	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/topology"
	"repro/internal/verify"
)

func main() {
	// Subcommand dispatch: `psdf lint ...` runs the diagnostics passes; the
	// bare flag form keeps its original behavior.
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		os.Exit(runLint(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		os.Exit(runTrace(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		os.Exit(runBench(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "fuzz" {
		os.Exit(runFuzz(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "profile" {
		os.Exit(runProfile(os.Args[2:]))
	}
	var (
		client   = flag.String("client", "cartesian", "client analysis: symbolic or cartesian")
		backend  = flag.String("backend", "array", "constraint-graph backend: array or map")
		dot      = flag.Bool("dot", false, "print the topology as Graphviz dot")
		cfgDot   = flag.Bool("cfg", false, "print the CFG as Graphviz dot and exit")
		trace    = flag.Bool("trace", false, "log analysis steps to stderr")
		doVerify = flag.Bool("verify", true, "run the error-detection pass")
		stats    = flag.Bool("stats", false, "print analysis statistics")
		nonBlock = flag.Bool("nonblocking", false, "non-blocking sends (Section X aggregation extension)")
		pcfgDot  = flag.Bool("pcfg", false, "print the explored pCFG as Graphviz dot")
	)
	lf := addLogFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psdf [flags] program.mpl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *client, *backend, *lf.level, *lf.format, *dot, *cfgDot, *trace, *doVerify, *stats, *nonBlock, *pcfgDot); err != nil {
		fmt.Fprintln(os.Stderr, "psdf:", err)
		os.Exit(1)
	}
}

func run(path, client, backend, logLevel, logFormat string, dot, cfgDot, trace, doVerify, stats, nonBlock, pcfgDot bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := parser.Parse(path, string(src))
	if err != nil {
		return err
	}
	if _, err := sem.Check(prog); err != nil {
		return err
	}
	g := cfg.Build(prog)
	if cfgDot {
		fmt.Print(g.Dot(path))
		return nil
	}

	logger, err := obs.NewLogger(os.Stderr, logLevel, logFormat)
	if err != nil {
		return err
	}

	var cgStats cg.Stats
	opts := core.Options{
		CGOpts:           cg.Options{Stats: &cgStats},
		NonBlockingSends: nonBlock,
		Name:             path,
		Log:              logger,
	}
	switch backend {
	case "array":
		opts.CGOpts.Backend = cg.ArrayBackend
	case "map":
		opts.CGOpts.Backend = cg.MapBackend
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}
	switch client {
	case "symbolic":
		opts.Matcher = &symbolic.Matcher{}
	case "cartesian":
		opts.Matcher = cartesian.New(core.ScanInvariants(g))
	default:
		return fmt.Errorf("unknown client %q", client)
	}
	if trace {
		opts.Trace = os.Stderr
	}

	res, err := core.Analyze(g, opts)
	if err != nil {
		return err
	}

	if pcfgDot {
		fmt.Print(res.PCFGDot(path))
		return nil
	}
	rep := topology.Build(g, res)
	if dot {
		fmt.Print(rep.Dot(path))
	} else {
		fmt.Print(rep)
	}
	for _, p := range res.Prints {
		if p.Known {
			fmt.Printf("  print at n%d on %s always outputs %d\n", p.Node, p.Range, p.Val)
		}
	}
	if doVerify {
		vr := verify.Check(g, res)
		fmt.Println(vr)
	}
	if stats {
		fmt.Printf("stats: %d pCFG nodes, %d steps, %d widenings, %d incremental closures (avg %.1f vars), %d joins\n",
			res.Configs, res.Steps, res.Widenings, cgStats.IncrClosures(), cgStats.AvgIncrVars(), cgStats.Joins())
	}
	if !res.Clean() {
		return fmt.Errorf("analysis incomplete: %v", res.TopReasons())
	}
	return nil
}
