package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/prof"
	"repro/internal/sem"
)

// runProfile implements `psdf profile`: it renders source-attributed
// analysis profiles either from saved psdf-profile/1 JSON reports (as
// written by `psdf-run -profile-out` or `psdf profile -format json`) or
// by profiling fresh MPL programs in place.
func runProfile(args []string) int {
	fs := flag.NewFlagSet("psdf profile", flag.ExitOnError)
	var (
		format  = fs.String("format", "text", "output format: text (heat listing), json (psdf-profile/1) or folded (flamegraph stacks)")
		out     = fs.String("out", "", "write output to this file instead of stdout")
		top     = fs.Int("top", 0, "with -format text, rank only the n hottest source lines instead of the full listing")
		workers = fs.Int("workers", 1, "analysis worker goroutines when profiling .mpl inputs (1 = sequential, exact attribution)")
		check   = fs.Bool("check", false, "validate JSON report inputs against the psdf-profile/1 schema and exit")
	)
	lf := addLogFlags(fs)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: psdf profile [flags] (report.json | program.mpl) ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	logger, err := lf.logger()
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdf profile: %v\n", err)
		return 2
	}

	var jobs []*prof.Report
	for _, path := range fs.Args() {
		if strings.HasSuffix(path, ".json") {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "psdf profile: %v\n", err)
				return 2
			}
			reps, err := prof.ReadJSON(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "psdf profile: %s: %v\n", path, err)
				return 2
			}
			jobs = append(jobs, reps...)
			continue
		}
		if *check {
			fmt.Fprintf(os.Stderr, "psdf profile: -check takes JSON reports, got %s\n", path)
			return 2
		}
		rep, err := profileProgram(path, *workers, logger)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdf profile: %s: %v\n", path, err)
			return 2
		}
		jobs = append(jobs, rep)
	}
	if *check {
		fmt.Printf("psdf profile: %d report(s) valid\n", len(jobs))
		return 0
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdf profile: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := renderProfiles(w, jobs, *format, *top); err != nil {
		fmt.Fprintf(os.Stderr, "psdf profile: %v\n", err)
		return 2
	}
	return 0
}

// profileProgram analyzes one MPL source file with a profiler attached
// and returns its source-attributed report.
func profileProgram(path string, workers int, logger *slog.Logger) (*prof.Report, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := parser.Parse(path, string(src))
	if err != nil {
		return nil, err
	}
	if _, err := sem.Check(prog); err != nil {
		return nil, err
	}
	g := cfg.Build(prog)
	p := prof.New()
	if _, err := core.Analyze(g, core.Options{
		Matcher:  cartesian.New(core.ScanInvariants(g)),
		Workers:  workers,
		Name:     path,
		Log:      logger,
		Profiler: p,
	}); err != nil {
		return nil, err
	}
	return p.Report(path, string(src)), nil
}

// renderProfiles writes the collected reports in the requested format.
func renderProfiles(w io.Writer, jobs []*prof.Report, format string, top int) error {
	switch format {
	case "json":
		return prof.WriteJSON(w, jobs)
	case "folded":
		for _, rep := range jobs {
			if err := rep.WriteFolded(w); err != nil {
				return err
			}
		}
		return nil
	case "text":
		for i, rep := range jobs {
			if i > 0 {
				fmt.Fprintln(w)
			}
			if top > 0 {
				rep.WriteTop(w, top)
				continue
			}
			if err := rep.WriteListing(w); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q (want text, json or folded)", format)
	}
}
