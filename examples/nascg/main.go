// nascg reproduces the paper's Section VIII evaluation target: the NAS-CG
// transpose exchange over a 2-D cartesian process grid, in both the square
// (ncols = nrows) and rectangular (ncols = 2*nrows) configurations. The
// simple var+c matcher cannot handle these expressions; the HSM-based
// cartesian client proves the permutation.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/clients/cartesian"
	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/validate"
)

func main() {
	for _, w := range []*bench.Workload{bench.TransposeSquare(), bench.TransposeRect()} {
		fmt.Printf("== %s ==\n%s\n", w.Name, w.Src)
		_, g := w.Parse()

		// The Section VII client alone gives up on grid expressions.
		simple, err := core.Analyze(g, core.Options{Matcher: &symbolic.Matcher{}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("symbolic client (Section VII): clean=%v", simple.Clean())
		if !simple.Clean() {
			fmt.Printf("  (gives up: %v)", simple.TopReasons())
		}
		fmt.Println()

		// The HSM client (Section VIII) proves identity + surjectivity.
		m := cartesian.New(core.ScanInvariants(g))
		res, err := core.Analyze(g, core.Options{Matcher: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cartesian client (Section VIII): clean=%v, HSM proofs=%d\n", res.Clean(), m.HSMMatchCount())
		for _, match := range res.Matches {
			fmt.Printf("  exchange: %s -> %s\n", match.Sender, match.Receiver)
		}

		// Cross-check against a concrete grid.
		scale := 3
		if err := validate.Check(g, res, w.NPFor(scale), w.Env(scale)); err != nil {
			log.Fatalf("validation: %v", err)
		}
		fmt.Printf("validated against the simulator at np=%d\n\n", w.NPFor(scale))
	}
}
