// stencil reproduces the paper's Figures 7/8 and Section VIII-C: the 1-D
// nearest-neighbor exchange with its 2d+1 = 3 process roles. The analysis
// summarizes the whole pipeline with three set-level matches valid for
// every np, including one discovered by parametric widening (there is no
// program variable tracking the pipeline's progress).
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	w := bench.Stencil1D()
	fmt.Println("program (d=1 nearest-neighbor exchange, 3 roles):")
	fmt.Println(w.Src)

	_, g := w.Parse()
	res, err := core.Analyze(g, core.Options{Matcher: cartesian.New(core.ScanInvariants(g))})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Clean() {
		log.Fatalf("analysis gave up: %v", res.TopReasons())
	}
	fmt.Print(topology.Build(g, res))

	// Show the concrete wavefront the summary covers, for one np.
	fmt.Println()
	fmt.Println("concrete run at np=6:")
	r, err := sim.Run(g, 6, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range r.Events {
		dir := "->"
		if e.Receiver < e.Sender {
			dir = "<-"
		}
		fmt.Printf("  %d %s %d\n", e.Sender, dir, e.Receiver)
	}

	// The higher-dimensional variants run concretely (the paper, like this
	// reproduction, demonstrates the symbolic analysis for d=1).
	for d := 2; d <= 3; d++ {
		wd := bench.StencilDim(d, 3)
		_, gd := wd.Parse()
		rd, err := sim.Run(gd, wd.NPFor(0), sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("d=%d stencil on a 3^%d grid: %d messages, deadlock=%v\n",
			d, d, len(rd.Events), rd.Deadlocked)
	}
}
