// mdcask reproduces the paper's Section I motivation: the exchange-with-root
// loop from the mdcask molecular dynamics code (ASCI Purple suite) is
// detected as a broadcast plus a gather, which a communication-optimizing
// compiler could replace with native collective operations.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	w := bench.Fig5ExchangeRoot()
	fmt.Println("program (mdcask exchange-with-root):")
	fmt.Println(w.Src)

	_, g := w.Parse()
	res, err := core.Analyze(g, core.Options{Matcher: cartesian.New(core.ScanInvariants(g))})
	if err != nil {
		log.Fatal(err)
	}
	rep := topology.Build(g, res)
	fmt.Print(rep)

	if rep.Overall == topology.ExchangeWithRoot {
		fmt.Println()
		fmt.Println("optimization opportunity (paper Section I): process 0 exchanges a")
		fmt.Println("message with every other process, which scales poorly on sparse")
		fmt.Println("networks; the detected pattern can be condensed into")
		fmt.Println("  MPI_Bcast(root=0)  +  MPI_Gather(root=0)")

		// Estimate the point-to-point cost the collectives replace.
		for _, np := range []int{8, 64, 512} {
			r, err := sim.Run(g, np, sim.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  np=%4d: %4d point-to-point messages -> 2 collectives\n", np, len(r.Events))
		}
	}
}
