// Quickstart: parse a small message-passing program, run the parallel
// dataflow analysis with an unbounded process count, and print the detected
// communication topology together with the constant-propagation facts —
// the paper's Figure 2 end to end.
package main

import (
	"fmt"
	"log"

	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/topology"
)

const program = `
# Two processes exchange a value initialized to 5 by process 0.
assume np >= 3
if id == 0 then
  x := 5
  send x -> 1
  recv y <- 1
  print y
elif id == 1 then
  recv y <- 0
  send y -> 0
  print y
end
`

func main() {
	// 1. Parse into an AST and build the control-flow graph.
	prog, err := parser.Parse("quickstart.mpl", program)
	if err != nil {
		log.Fatal(err)
	}
	g := cfg.Build(prog)

	// 2. Analyze over the pCFG. The cartesian client subsumes the simple
	// symbolic client, so it is the usual default.
	matcher := cartesian.New(core.ScanInvariants(g))
	res, err := core.Analyze(g, core.Options{Matcher: matcher})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Clean() {
		log.Fatalf("analysis gave up: %v", res.TopReasons())
	}

	// 3. The topology: which sends match which receives, for EVERY np.
	fmt.Print(topology.Build(g, res))

	// 4. Constant propagation across messages: both prints are proven to
	// output 5 without running the program.
	for _, p := range res.Prints {
		if p.Known {
			fmt.Printf("processes %s always print %d\n", p.Range, p.Val)
		}
	}
	fmt.Printf("explored %d pCFG configurations in %d steps\n", res.Configs, res.Steps)
}
