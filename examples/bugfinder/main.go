// bugfinder demonstrates the error-detection client analyses the paper
// motivates in Section I: message leaks (messages sent but never received)
// and inconsistent message types between matched senders and receivers.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/verify"
)

func analyzeAndVerify(name, src string) {
	fmt.Printf("== %s ==\n%s\n", name, src)
	prog, err := parser.Parse(name+".mpl", src)
	if err != nil {
		log.Fatal(err)
	}
	g := cfg.Build(prog)
	res, err := core.Analyze(g, core.Options{Matcher: cartesian.New(core.ScanInvariants(g))})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(verify.Check(g, res))
	fmt.Println()
}

func main() {
	// A correct program: no findings.
	analyzeAndVerify("clean exchange", `
assume np >= 3
if id == 0 then
  send x -> 1 : halo
elif id == 1 then
  recv y <- 0 : halo
end`)

	// The root sends one extra message nobody receives.
	analyzeAndVerify("leaky broadcast", bench.LeakyBroadcast().Src)

	// The matched pair disagrees on the message type.
	analyzeAndVerify("type mismatch", bench.TypeMismatch().Src)

	// A receive whose sender does not exist: potential deadlock.
	analyzeAndVerify("orphan receive", `
assume np >= 3
if id == 0 then
  recv y <- 1
end`)
}
