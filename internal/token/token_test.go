package token

import "testing"

func TestLookup(t *testing.T) {
	cases := map[string]Kind{
		"if":       KwIf,
		"recv":     KwRecv,
		"receive":  KwRecv,
		"sendrecv": KwSendrecv,
		"assume":   KwAssume,
		"true":     KwTrue,
		"foo":      Ident,
		"Send":     Ident, // keywords are case-sensitive
	}
	for lit, want := range cases {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword(KwIf) || !IsKeyword(KwFalse) {
		t.Error("keyword not recognized")
	}
	for _, k := range []Kind{Ident, Int, Plus, EOF, Illegal} {
		if IsKeyword(k) {
			t.Errorf("%v wrongly a keyword", k)
		}
	}
}

func TestStrings(t *testing.T) {
	if Arrow.String() != "->" || LArrow.String() != "<-" || Assign.String() != ":=" {
		t.Error("operator strings wrong")
	}
	if Kind(999).String() == "" {
		t.Error("out-of-range kind has empty string")
	}
}
