// Package token defines the lexical token kinds of MPL, the small
// message-passing language analyzed by this library. MPL mirrors the
// pseudocode used throughout the CGO 2009 paper: integer variables, the
// builtins np and id, structured control flow, and send/receive statements
// whose partner is named by an arithmetic expression.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds.
const (
	Illegal Kind = iota
	EOF

	// Literals and identifiers.
	Ident // x, nrows
	Int   // 42

	// Operators and punctuation.
	Assign    // :=
	Arrow     // ->
	LArrow    // <-
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
	Percent   // %
	Eq        // ==
	Neq       // !=
	Lt        // <
	Le        // <=
	Gt        // >
	Ge        // >=
	AndAnd    // &&
	OrOr      // ||
	Not       // !
	LParen    // (
	RParen    // )
	Comma     // ,
	Semicolon // ;
	Colon     // :

	// Keywords.
	KwVar
	KwIf
	KwThen
	KwElif
	KwElse
	KwEnd
	KwWhile
	KwDo
	KwFor
	KwTo
	KwSend
	KwRecv
	KwSendrecv
	KwPrint
	KwAssume
	KwAssert
	KwSkip
	KwTrue
	KwFalse

	numKinds
)

var kindNames = [...]string{
	Illegal:    "illegal",
	EOF:        "eof",
	Ident:      "ident",
	Int:        "int",
	Assign:     ":=",
	Arrow:      "->",
	LArrow:     "<-",
	Plus:       "+",
	Minus:      "-",
	Star:       "*",
	Slash:      "/",
	Percent:    "%",
	Eq:         "==",
	Neq:        "!=",
	Lt:         "<",
	Le:         "<=",
	Gt:         ">",
	Ge:         ">=",
	AndAnd:     "&&",
	OrOr:       "||",
	Not:        "!",
	LParen:     "(",
	RParen:     ")",
	Comma:      ",",
	Semicolon:  ";",
	Colon:      ":",
	KwVar:      "var",
	KwIf:       "if",
	KwThen:     "then",
	KwElif:     "elif",
	KwElse:     "else",
	KwEnd:      "end",
	KwWhile:    "while",
	KwDo:       "do",
	KwFor:      "for",
	KwTo:       "to",
	KwSend:     "send",
	KwRecv:     "recv",
	KwSendrecv: "sendrecv",
	KwPrint:    "print",
	KwAssume:   "assume",
	KwAssert:   "assert",
	KwSkip:     "skip",
	KwTrue:     "true",
	KwFalse:    "false",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// keywords maps identifier spellings to keyword kinds.
var keywords = map[string]Kind{
	"var":      KwVar,
	"if":       KwIf,
	"then":     KwThen,
	"elif":     KwElif,
	"else":     KwElse,
	"end":      KwEnd,
	"while":    KwWhile,
	"do":       KwDo,
	"for":      KwFor,
	"to":       KwTo,
	"send":     KwSend,
	"recv":     KwRecv,
	"receive":  KwRecv, // accepted alias, matching the paper's pseudocode
	"sendrecv": KwSendrecv,
	"print":    KwPrint,
	"assume":   KwAssume,
	"assert":   KwAssert,
	"skip":     KwSkip,
	"true":     KwTrue,
	"false":    KwFalse,
}

// Lookup returns the keyword kind for an identifier spelling, or Ident.
func Lookup(name string) Kind {
	if k, ok := keywords[name]; ok {
		return k
	}
	return Ident
}

// IsKeyword reports whether k is a keyword kind.
func IsKeyword(k Kind) bool { return k >= KwVar && k < numKinds }
