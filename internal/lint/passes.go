package lint

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/diag"
)

// leakPass reports sends whose messages are provably never received:
// leftover pending sends in final configurations (non-blocking mode) and
// sends blocked forever in give-up configurations (blocking mode).
func leakPass(c *Context) {
	seen := map[int]bool{}
	emit := func(node int, procs, detail string) {
		if seen[node] {
			return
		}
		seen[node] = true
		n := c.G.Node(node)
		if n == nil {
			return
		}
		d := diag.New(diag.CodeMessageLeak, c.Path, n.Span,
			fmt.Sprintf("message sent by processes %s is never received", procs))
		d.Explain = detail
		d.Hint = "check the destination expression and the receiver's guard conditions"
		c.Emit(d)
	}
	for _, fin := range c.Res.Finals {
		for _, p := range fin.Pending {
			emit(p.Node, p.Senders.String(),
				"the program terminates with this message still in flight")
		}
	}
	for _, t := range c.Res.Tops {
		for _, ps := range t.Sets {
			if ps.Blocked && (ps.Node.Kind == cfg.Send || ps.Node.Kind == cfg.SendRecv) {
				emit(ps.Node.ID, ps.Range.String(),
					"no matching receive exists on any path the analysis completed")
			}
		}
	}
}

// deadlockPass reports receives blocked with no possible matching send.
func deadlockPass(c *Context) {
	seen := map[int]bool{}
	for _, t := range c.Res.Tops {
		for _, ps := range t.Sets {
			if !ps.Blocked || ps.Node.Kind != cfg.Recv || seen[ps.Node.ID] {
				continue
			}
			seen[ps.Node.ID] = true
			d := diag.New(diag.CodeDeadlock, c.Path, ps.Node.Span,
				fmt.Sprintf("receive by processes %s has no matching send", ps.Range))
			d.Explain = "the processes block here forever in some execution the analysis explored"
			d.Hint = "check the source expression and that a matching send is reachable"
			c.Emit(d)
		}
	}
}

// tagMismatchPass reports matched send/receive pairs whose message tags
// disagree.
func tagMismatchPass(c *Context) {
	seen := map[[2]int]bool{}
	for _, m := range c.Res.Matches {
		sn, rn := c.G.Node(m.SendNode), c.G.Node(m.RecvNode)
		if sn == nil || rn == nil || sn.Tag == "" || rn.Tag == "" || sn.Tag == rn.Tag {
			continue
		}
		key := [2]int{m.SendNode, m.RecvNode}
		if seen[key] {
			continue
		}
		seen[key] = true
		d := diag.New(diag.CodeTagMismatch, c.Path, sn.Span,
			fmt.Sprintf("send with tag %q matches a receive expecting tag %q", sn.Tag, rn.Tag))
		d.Explain = fmt.Sprintf("the topology matches senders %s with receivers %s, but the tags differ",
			m.Sender, m.Receiver)
		d.Hint = "align the tag annotations on both operations"
		d.Related = append(d.Related, diag.Related{
			Span:    rn.Span,
			Message: fmt.Sprintf("the matching receive expects tag %q", rn.Tag),
		})
		c.Emit(d)
	}
}

// rankBoundsPass reports communication targets the constraint-graph client
// proves out of [0, np-1] (PSDF-E004), and — in strict mode — targets it
// could neither prove nor refute (PSDF-W004). A facet that was matched in a
// clean analysis counts as proven by the match itself.
func rankBoundsPass(c *Context) {
	matched := matchedNodes(c.Res)
	clean := c.Res.Clean()
	for _, g := range groupBounds(c) {
		n := c.G.Node(g.node)
		if n == nil {
			continue
		}
		what := "send destination"
		if g.dir == "src" {
			what = "receive source"
		}
		switch g.status {
		case core.BoundsViolated:
			var witness core.CommBoundsObs
			for _, o := range g.obs {
				if o.Status == core.BoundsViolated {
					witness = o
					break
				}
			}
			d := diag.New(diag.CodeRankBounds, c.Path, n.Span,
				fmt.Sprintf("%s is out of bounds: %s", what, witness.Detail))
			d.Explain = fmt.Sprintf("the constraint-graph client proved the violation for range %s", witness.Range)
			d.Hint = "guard the operation so boundary processes skip it (e.g. `if id <= np - 2 then ... end`)"
			c.Emit(d)
		case core.BoundsProven:
			// fine
		default:
			if clean && matched[fmt.Sprintf("%d|%s", g.node, g.dir)] {
				// The match search found a partner for every process; the
				// facet is in bounds even though the direct proof failed.
				continue
			}
			if !c.Opts.Strict {
				continue
			}
			why := "the needed facts are missing from the dataflow state"
			if g.status == core.BoundsNonAffine {
				why = "the expression is outside the affine difference-constraint fragment"
			}
			d := diag.New(diag.CodeBoundsUnproven, c.Path, n.Span,
				fmt.Sprintf("%s could not be proved inside [0, np-1]", what))
			d.Explain = why
			c.Emit(d)
		}
	}
}

// maxTraceSteps caps the blame-trace related locations per finding.
const maxTraceSteps = 20

// topBlamePass reports give-up configurations not already explained by the
// leak/deadlock passes, pointing at the operation that first widened to ⊤
// and attaching the explored-pCFG path that led there.
func topBlamePass(c *Context) {
	seenWhy := map[string]bool{}
	for _, t := range c.Res.Tops {
		blamedElsewhere := false
		for _, ps := range t.Sets {
			if ps.Blocked && ps.Node.IsComm() {
				blamedElsewhere = true
				break
			}
		}
		if blamedElsewhere || seenWhy[t.TopWhy] {
			continue
		}
		seenWhy[t.TopWhy] = true
		sp := c.NodeSpan(t.TopNode)
		msg := "the analysis gave up and cannot verify this program"
		if t.TopNode > 0 {
			msg = "the analysis gave up at this operation"
		}
		d := diag.New(diag.CodeAnalysisGaveUp, c.Path, sp, msg)
		d.Explain = t.TopWhy
		d.Hint = "restructure the operation (or its guards) into the supported affine fragment"
		for i, e := range c.Res.TraceTo(t.TopKey) {
			if i >= maxTraceSteps {
				d.Related = append(d.Related, diag.Related{
					Message: fmt.Sprintf("... trace truncated after %d steps", maxTraceSteps),
				})
				break
			}
			rel := diag.Related{Message: "step: " + e.Action}
			if id := e.BlameNode(); id > 0 {
				rel.Span = c.NodeSpan(id)
			}
			d.Related = append(d.Related, rel)
		}
		c.Emit(d)
	}
}

// deadCodePass reports user-written statements no process set ever reached.
// It only runs on clean analyses (a give-up leaves reachability unknown) and
// only flags the frontier — unvisited nodes whose predecessors were all
// visited — so one dead branch yields one finding, not one per statement.
func deadCodePass(c *Context) {
	if !c.Res.Clean() || len(c.Res.Visited) == 0 {
		return
	}
	visited := func(n *cfg.Node) bool {
		return n.ID < len(c.Res.Visited) && c.Res.Visited[n.ID]
	}
	for _, n := range c.G.Nodes {
		if visited(n) || n.Synthetic || n.Kind == cfg.Entry || n.Kind == cfg.Exit {
			continue
		}
		frontier := false
		for _, e := range n.Preds {
			if visited(e.From) {
				frontier = true
				break
			}
		}
		if !frontier {
			continue
		}
		d := diag.New(diag.CodeDeadCode, c.Path, n.Span,
			"no process can ever execute this statement")
		d.Explain = "the process set reaching this program point is provably empty for every np"
		d.Hint = "remove the dead code or fix the enclosing guard"
		c.Emit(d)
	}
}
