package lint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/lint"
	"repro/internal/source"
)

var update = flag.Bool("update", false, "rewrite golden lint outputs")

const testdataRoot = "../../testdata"

func loadFile(t *testing.T, path string, opts core.Options) *lint.Target {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Diagnostics use the base name so goldens are location-independent.
	tgt, err := lint.Load(filepath.Base(path), string(src), opts)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	return tgt
}

// render produces the golden text form: the diagnostics plus a summary.
func render(tgt *lint.Target, rep *lint.Report) string {
	var b strings.Builder
	files := map[string]*source.File{tgt.Path: tgt.File}
	diag.WriteText(&b, files, rep.Diags)
	fmt.Fprintf(&b, "-- findings: %d, errors: %v\n", len(rep.Diags), rep.HasErrors())
	s := rep.Bounds
	fmt.Fprintf(&b, "-- bounds: total=%d proven=%d proven-by-match=%d violated=%d unknown=%d non-affine=%d\n",
		s.Total, s.Proven, s.ProvenByMatch, s.Violated, s.Unknown, s.NonAffine)
	return b.String()
}

func checkGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
	}
}

// TestBugCorpusGoldens lints every seeded-bug program and compares the text
// rendering against the checked-in goldens.
func TestBugCorpusGoldens(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(testdataRoot, "bugs", "*.mpl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no bug corpus found: %v", err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".mpl")
		t.Run(name, func(t *testing.T) {
			tgt := loadFile(t, path, core.Options{})
			rep := lint.Run(tgt, lint.Options{})
			golden := filepath.Join(testdataRoot, "golden", "lint", name+".txt")
			checkGolden(t, golden, render(tgt, rep))
		})
	}
}

// TestSARIFGolden pins the SARIF rendering for the off-by-one shift bug.
func TestSARIFGolden(t *testing.T) {
	tgt := loadFile(t, filepath.Join(testdataRoot, "bugs", "offbyone_shift.mpl"), core.Options{})
	rep := lint.Run(tgt, lint.Options{})
	var b strings.Builder
	if err := diag.WriteSARIF(&b, "test", rep.Diags); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join(testdataRoot, "golden", "lint", "offbyone_shift.sarif")
	checkGolden(t, golden, b.String())
}

// TestSeededBugsFlagged asserts each seeded bug yields its expected code
// with a real source location, independent of golden formatting.
func TestSeededBugsFlagged(t *testing.T) {
	cases := []struct {
		file string
		code string
	}{
		{"offbyone_shift.mpl", diag.CodeRankBounds},
		{"tag_mismatch.mpl", diag.CodeTagMismatch},
		{"dead_branch.mpl", diag.CodeDeadCode},
		{"leak_extra.mpl", diag.CodeMessageLeak},
		{"unsupported_cond.mpl", diag.CodeAnalysisGaveUp},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			tgt := loadFile(t, filepath.Join(testdataRoot, "bugs", c.file), core.Options{})
			rep := lint.Run(tgt, lint.Options{})
			for _, d := range rep.Diags {
				if d.Code == c.code {
					if !d.Span.IsValid() {
						t.Errorf("%s finding has no source span: %+v", c.code, d)
					}
					return
				}
			}
			t.Errorf("expected %s, got: %+v", c.code, rep.Diags)
		})
	}
}

// TestCleanProgramsNoFindings lints the known-good testdata programs and
// expects zero findings — including no rank-bounds false positives on the
// guarded shift, the exchange and the NAS-CG patterns.
func TestCleanProgramsNoFindings(t *testing.T) {
	cases := []struct {
		file        string
		nonblocking bool
	}{
		{"shift1d.mpl", false},
		{"exchange.mpl", false},
		{"fanout.mpl", false},
		{"mdcask.mpl", false},
		{"nascg_square.mpl", false},
		{"nascg_rect.mpl", false},
		{"sendfirst_shift.mpl", true},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			tgt := loadFile(t, filepath.Join(testdataRoot, c.file),
				core.Options{NonBlockingSends: c.nonblocking})
			rep := lint.Run(tgt, lint.Options{})
			if len(rep.Diags) != 0 {
				var b strings.Builder
				diag.WriteText(&b, map[string]*source.File{tgt.Path: tgt.File}, rep.Diags)
				t.Errorf("findings on clean program:\n%s", b.String())
			}
			if rep.Bounds.Violated != 0 {
				t.Errorf("bounds violations on clean program: %+v", rep.Bounds)
			}
		})
	}
}

// TestGuardedShiftBoundsProven asserts the constraint-graph client proves
// the guarded shift's targets directly (not merely via matching).
func TestGuardedShiftBoundsProven(t *testing.T) {
	tgt := loadFile(t, filepath.Join(testdataRoot, "shift1d.mpl"), core.Options{})
	rep := lint.Run(tgt, lint.Options{})
	if rep.Bounds.Proven == 0 {
		t.Errorf("no directly proven facets on shift1d: %+v", rep.Bounds)
	}
}

// TestStrictModeWarnsUnproven: strict mode surfaces unproven facets as
// warnings (never errors), and default mode stays silent about them.
func TestStrictModeWarnsUnproven(t *testing.T) {
	// leak_extra's orphan send never matches, so its facet stays unproven
	// unless the constraint graph can prove it — the literal target 1 with
	// np >= 2 is provable, so use a program with an unprovable target.
	src := "assume np >= 2\nif id == 0 then\n  send x -> np - 2\nend\n"
	tgt, err := lint.Load("strict.mpl", src, core.Options{Matcher: &symbolic.Matcher{}})
	if err != nil {
		t.Fatal(err)
	}
	strict := lint.Run(tgt, lint.Options{Strict: true})
	var warned bool
	for _, d := range strict.Diags {
		if d.Code == diag.CodeBoundsUnproven {
			warned = true
			if d.Severity != diag.Warning {
				t.Errorf("W004 severity = %v, want warning", d.Severity)
			}
		}
	}
	if !warned {
		t.Skipf("facet was provable after all: %+v", strict.Bounds)
	}
	lax := lint.Run(tgt, lint.Options{})
	for _, d := range lax.Diags {
		if d.Code == diag.CodeBoundsUnproven {
			t.Error("W004 reported without strict mode")
		}
	}
}

func TestPassesRegistry(t *testing.T) {
	ps := lint.Passes()
	if len(ps) != 6 {
		t.Fatalf("expected 6 passes, got %d", len(ps))
	}
	for _, p := range ps {
		if p.Name == "" || p.Doc == "" || p.Run == nil {
			t.Errorf("incomplete pass registration: %+v", p)
		}
	}
}
