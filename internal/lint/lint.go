// Package lint runs coded diagnostic passes over a completed pCFG dataflow
// analysis. Each pass inspects the analysis result (terminal configurations,
// the communication topology, rank-bounds observations, give-up provenance)
// and emits structured diag.Diagnostics with stable codes and source spans.
// The psdf CLI surfaces the passes as `psdf lint`.
package lint

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// Target is one program prepared for linting: the parsed source plus the
// completed dataflow analysis over its CFG.
type Target struct {
	Path string
	Prog *ast.Program
	File *source.File
	G    *cfg.Graph
	Res  *core.Result
}

// Options configures a lint run.
type Options struct {
	// Strict reports rank-bounds targets that could not be proved in-bounds
	// (PSDF-W004) even when nothing refutes them. Off by default: unproven
	// is common for correct non-affine patterns.
	Strict bool
}

// BoundsSummary aggregates the rank-bounds verdicts per communication facet
// (a send destination or receive source at one CFG node).
type BoundsSummary struct {
	Proven        int // proved in [0, np-1] by the constraint graph
	ProvenByMatch int // not proved directly, but matched in a clean analysis
	Violated      int // provably out of bounds
	Unknown       int // affine but undecided
	NonAffine     int // outside the affine fragment
	Total         int
}

// Report is the outcome of linting one target.
type Report struct {
	Diags  []diag.Diagnostic
	Bounds BoundsSummary
}

// HasErrors reports whether any finding is error-severity.
func (r *Report) HasErrors() bool { return diag.HasErrors(r.Diags) }

// Load parses, checks and analyzes src (named path in diagnostics) and
// returns the lint target. Rank-bounds recording is forced on so the
// rank-bounds pass has observations to work with; when no Matcher is set,
// the CLI-default cartesian client is used. The error covers parse,
// semantic and analysis failures.
func Load(path, src string, coreOpts core.Options) (*Target, error) {
	prog, err := parser.Parse(path, src)
	if err != nil {
		return nil, err
	}
	if _, err := sem.Check(prog); err != nil {
		return nil, err
	}
	g := cfg.Build(prog)
	coreOpts.RecordCommBounds = true
	if coreOpts.Matcher == nil {
		coreOpts.Matcher = cartesian.New(core.ScanInvariants(g))
	}
	res, err := core.Analyze(g, coreOpts)
	if err != nil {
		return nil, err
	}
	return &Target{Path: path, Prog: prog, File: prog.File, G: g, Res: res}, nil
}

// Context is the environment a pass runs in.
type Context struct {
	*Target
	Opts   Options
	report *Report
}

// Emit records a finding.
func (c *Context) Emit(d diag.Diagnostic) {
	c.report.Diags = append(c.report.Diags, d)
}

// NodeSpan returns the source span of a CFG node, or an invalid span for
// unknown ids.
func (c *Context) NodeSpan(id int) source.Span {
	if n := c.G.Node(id); n != nil {
		return n.Span
	}
	return source.Span{}
}

// Pass is one registered lint check.
type Pass struct {
	// Name identifies the pass, e.g. "rank-bounds".
	Name string
	// Doc is a one-line description for `psdf lint` documentation output.
	Doc string
	// Run inspects the context and emits diagnostics.
	Run func(*Context)
}

// passes holds the bundled passes in execution order.
var passes = []Pass{
	{"message-leak", "sends whose messages are never received (PSDF-E001)", leakPass},
	{"deadlock", "receives that may block forever (PSDF-E002)", deadlockPass},
	{"tag-mismatch", "matched operations with differing tags (PSDF-E003)", tagMismatchPass},
	{"rank-bounds", "communication targets outside [0, np-1] (PSDF-E004/W004)", rankBoundsPass},
	{"top-blame", "analysis give-ups with their blame traces (PSDF-E005)", topBlamePass},
	{"dead-code", "statements no process can reach (PSDF-W006)", deadCodePass},
}

// Passes lists the registered passes.
func Passes() []Pass {
	return append([]Pass(nil), passes...)
}

// Run executes every registered pass over the target and returns the sorted
// report.
func Run(t *Target, opts Options) *Report {
	rep := &Report{}
	c := &Context{Target: t, Opts: opts, report: rep}
	rep.Bounds = summarizeBounds(c)
	for _, p := range passes {
		p.Run(c)
	}
	diag.Sort(rep.Diags)
	return rep
}

// boundsGroup is the aggregated verdict for one communication facet.
type boundsGroup struct {
	node     int
	dir      string
	status   core.BoundsStatus // worst observed status
	obs      []core.CommBoundsObs
	viaMatch bool
}

// groupBounds folds the per-range observations into one verdict per
// (node, direction): a single violated range condemns the facet; otherwise
// any undecided range demotes proven to unknown/non-affine.
func groupBounds(c *Context) []boundsGroup {
	byKey := map[string]*boundsGroup{}
	var order []string
	for _, o := range c.Res.CommBounds {
		key := fmt.Sprintf("%d|%s", o.Node, o.Dir)
		g, ok := byKey[key]
		if !ok {
			g = &boundsGroup{node: o.Node, dir: o.Dir, status: core.BoundsProven}
			byKey[key] = g
			order = append(order, key)
		}
		g.obs = append(g.obs, o)
		switch {
		case o.Status == core.BoundsViolated:
			g.status = core.BoundsViolated
		case g.status == core.BoundsViolated:
			// keep
		case o.Status == core.BoundsNonAffine && g.status != core.BoundsUnknown:
			g.status = core.BoundsNonAffine
		case o.Status == core.BoundsUnknown:
			g.status = core.BoundsUnknown
		}
	}
	sort.Strings(order)
	out := make([]boundsGroup, 0, len(order))
	for _, key := range order {
		out = append(out, *byKey[key])
	}
	return out
}

// matchedNodes returns the CFG nodes that participate in the communication
// topology on the relevant side.
func matchedNodes(res *core.Result) map[string]bool {
	m := map[string]bool{}
	for _, match := range res.Matches {
		m[fmt.Sprintf("%d|dest", match.SendNode)] = true
		m[fmt.Sprintf("%d|src", match.RecvNode)] = true
	}
	return m
}

func summarizeBounds(c *Context) BoundsSummary {
	var s BoundsSummary
	matched := matchedNodes(c.Res)
	clean := c.Res.Clean()
	for _, g := range groupBounds(c) {
		s.Total++
		switch g.status {
		case core.BoundsProven:
			s.Proven++
		case core.BoundsViolated:
			s.Violated++
		default:
			if clean && matched[fmt.Sprintf("%d|%s", g.node, g.dir)] {
				s.ProvenByMatch++
			} else if g.status == core.BoundsNonAffine {
				s.NonAffine++
			} else {
				s.Unknown++
			}
		}
	}
	return s
}
