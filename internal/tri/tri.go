// Package tri provides a three-valued logic type used by analyses that must
// distinguish "provably true", "provably false" and "unknown".
package tri

// Bool is a three-valued boolean.
type Bool int

// The three truth values.
const (
	Unknown Bool = iota
	True
	False
)

func (b Bool) String() string {
	switch b {
	case True:
		return "true"
	case False:
		return "false"
	}
	return "unknown"
}

// FromBool lifts a two-valued boolean.
func FromBool(v bool) Bool {
	if v {
		return True
	}
	return False
}

// Not negates, mapping Unknown to Unknown.
func (b Bool) Not() Bool {
	switch b {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// And is three-valued conjunction (False dominates).
func (b Bool) And(o Bool) Bool {
	if b == False || o == False {
		return False
	}
	if b == True && o == True {
		return True
	}
	return Unknown
}

// Or is three-valued disjunction (True dominates).
func (b Bool) Or(o Bool) Bool {
	if b == True || o == True {
		return True
	}
	if b == False && o == False {
		return False
	}
	return Unknown
}
