package tri

import "testing"

func TestTruthTables(t *testing.T) {
	vals := []Bool{True, False, Unknown}
	// Not.
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("Not table wrong")
	}
	// And: False dominates; True identity; else Unknown.
	for _, a := range vals {
		for _, b := range vals {
			got := a.And(b)
			var want Bool
			switch {
			case a == False || b == False:
				want = False
			case a == True && b == True:
				want = True
			default:
				want = Unknown
			}
			if got != want {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, want)
			}
		}
	}
	// Or: True dominates; False identity; else Unknown.
	for _, a := range vals {
		for _, b := range vals {
			got := a.Or(b)
			var want Bool
			switch {
			case a == True || b == True:
				want = True
			case a == False && b == False:
				want = False
			default:
				want = Unknown
			}
			if got != want {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestFromBoolAndString(t *testing.T) {
	if FromBool(true) != True || FromBool(false) != False {
		t.Error("FromBool wrong")
	}
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Error("String wrong")
	}
}

func TestDeMorgan(t *testing.T) {
	vals := []Bool{True, False, Unknown}
	for _, a := range vals {
		for _, b := range vals {
			if a.And(b).Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan fails for %v, %v", a, b)
			}
		}
	}
}
