package lexer

import (
	"testing"

	"repro/internal/source"
	"repro/internal/token"
)

func scan(t *testing.T, src string) ([]Token, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	toks := ScanAll(source.NewFile("t.mpl", src), &diags)
	return toks, &diags
}

func kinds(toks []Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	toks, diags := scan(t, src)
	if diags.HasErrors() {
		t.Fatalf("scan(%q) errors: %v", src, diags.Err())
	}
	want = append(want, token.EOF)
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("scan(%q) = %v, want %v", src, toks, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan(%q)[%d] = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, ":= -> <- + - * / % == != < <= > >= && || ! ( ) , ; :",
		token.Assign, token.Arrow, token.LArrow, token.Plus, token.Minus,
		token.Star, token.Slash, token.Percent, token.Eq, token.Neq,
		token.Lt, token.Le, token.Gt, token.Ge, token.AndAnd, token.OrOr,
		token.Not, token.LParen, token.RParen, token.Comma, token.Semicolon,
		token.Colon)
}

func TestKeywordsAndIdents(t *testing.T) {
	expectKinds(t, "if then else elif end while do for to send recv receive sendrecv print assume assert skip var true false x y2 _tmp",
		token.KwIf, token.KwThen, token.KwElse, token.KwElif, token.KwEnd,
		token.KwWhile, token.KwDo, token.KwFor, token.KwTo, token.KwSend,
		token.KwRecv, token.KwRecv, token.KwSendrecv, token.KwPrint,
		token.KwAssume, token.KwAssert, token.KwSkip, token.KwVar,
		token.KwTrue, token.KwFalse, token.Ident, token.Ident, token.Ident)
}

func TestNumbers(t *testing.T) {
	toks, _ := scan(t, "0 42 123456")
	if toks[0].Lit != "0" || toks[1].Lit != "42" || toks[2].Lit != "123456" {
		t.Errorf("int literals wrong: %v", toks)
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "x # a comment\ny // another\nz", token.Ident, token.Ident, token.Ident)
}

func TestSendStatementTokens(t *testing.T) {
	expectKinds(t, "send x -> id + 1",
		token.KwSend, token.Ident, token.Arrow, token.Ident, token.Plus, token.Int)
}

func TestPositions(t *testing.T) {
	toks, _ := scan(t, "x :=\n  5")
	if p := toks[0].Span.Start; p.Line != 1 || p.Col != 1 {
		t.Errorf("x at %v, want 1:1", p)
	}
	if p := toks[2].Span.Start; p.Line != 2 || p.Col != 3 {
		t.Errorf("5 at %v, want 2:3", p)
	}
}

func TestIllegalCharacters(t *testing.T) {
	toks, diags := scan(t, "x @ y")
	if !diags.HasErrors() {
		t.Fatal("expected error for '@'")
	}
	if toks[1].Kind != token.Illegal {
		t.Errorf("token = %v, want illegal", toks[1])
	}
}

func TestSingleEquals(t *testing.T) {
	_, diags := scan(t, "x = 5")
	if !diags.HasErrors() {
		t.Fatal("expected error for '='")
	}
}

func TestEOFIsSticky(t *testing.T) {
	var diags source.DiagList
	lx := New(source.NewFile("t.mpl", "x"), &diags)
	lx.Next() // x
	for i := 0; i < 3; i++ {
		if tok := lx.Next(); tok.Kind != token.EOF {
			t.Fatalf("Next after end = %v, want EOF", tok)
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := scan(t, "abc 12 +")
	if toks[0].String() != "ident(abc)" {
		t.Errorf("String = %q", toks[0].String())
	}
	if toks[1].String() != "int(12)" {
		t.Errorf("String = %q", toks[1].String())
	}
	if toks[2].String() != "+" {
		t.Errorf("String = %q", toks[2].String())
	}
}
