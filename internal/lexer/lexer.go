// Package lexer converts MPL source text into a token stream.
//
// The scanner is a straightforward byte-at-a-time loop. Comments run from
// '#' or "//" to end of line. Both newlines and semicolons are insignificant
// (MPL statements are keyword-delimited), so the lexer drops all whitespace.
package lexer

import (
	"repro/internal/source"
	"repro/internal/token"
)

// Token is a lexed token with its kind, literal text and source span.
type Token struct {
	Kind token.Kind
	Lit  string
	Span source.Span
}

func (t Token) String() string {
	if t.Kind == token.Ident || t.Kind == token.Int || t.Kind == token.Illegal {
		return t.Kind.String() + "(" + t.Lit + ")"
	}
	return t.Kind.String()
}

// Lexer scans a single source file.
type Lexer struct {
	file  *source.File
	src   string
	pos   int // next byte to read
	diags *source.DiagList
}

// New returns a Lexer over the file, reporting errors to diags.
func New(file *source.File, diags *source.DiagList) *Lexer {
	return &Lexer{file: file, src: file.Content, diags: diags}
}

// ScanAll lexes the file and returns all tokens, ending with an EOF token.
func ScanAll(file *source.File, diags *source.DiagList) []Token {
	lx := New(file, diags)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) spanFrom(start int) source.Span {
	return source.Span{Start: l.file.PosFor(start), End: l.file.PosFor(l.pos)}
}

func (l *Lexer) peek() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool  { return '0' <= c && c <= '9' }
func isLetter(c byte) bool { return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_' }

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isSpace(c):
			l.pos++
		case c == '#', c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

// Next returns the next token, producing EOF forever once input is consumed.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: token.EOF, Span: l.spanFrom(start)}
	}
	c := l.src[l.pos]
	switch {
	case isDigit(c):
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: token.Int, Lit: l.src[start:l.pos], Span: l.spanFrom(start)}
	case isLetter(c):
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		lit := l.src[start:l.pos]
		return Token{Kind: token.Lookup(lit), Lit: lit, Span: l.spanFrom(start)}
	}
	// Operators.
	two := func(k token.Kind) Token {
		l.pos += 2
		return Token{Kind: k, Lit: l.src[start:l.pos], Span: l.spanFrom(start)}
	}
	one := func(k token.Kind) Token {
		l.pos++
		return Token{Kind: k, Lit: l.src[start:l.pos], Span: l.spanFrom(start)}
	}
	switch c {
	case ':':
		if l.peekAt(1) == '=' {
			return two(token.Assign)
		}
		return one(token.Colon)
	case '-':
		if l.peekAt(1) == '>' {
			return two(token.Arrow)
		}
		return one(token.Minus)
	case '<':
		switch l.peekAt(1) {
		case '-':
			return two(token.LArrow)
		case '=':
			return two(token.Le)
		}
		return one(token.Lt)
	case '>':
		if l.peekAt(1) == '=' {
			return two(token.Ge)
		}
		return one(token.Gt)
	case '=':
		if l.peekAt(1) == '=' {
			return two(token.Eq)
		}
		l.pos++
		l.diags.Errorf(l.spanFrom(start), "unexpected '='; use ':=' for assignment or '==' for comparison")
		return Token{Kind: token.Illegal, Lit: "=", Span: l.spanFrom(start)}
	case '!':
		if l.peekAt(1) == '=' {
			return two(token.Neq)
		}
		return one(token.Not)
	case '&':
		if l.peekAt(1) == '&' {
			return two(token.AndAnd)
		}
	case '|':
		if l.peekAt(1) == '|' {
			return two(token.OrOr)
		}
	case '+':
		return one(token.Plus)
	case '*':
		return one(token.Star)
	case '/':
		return one(token.Slash)
	case '%':
		return one(token.Percent)
	case '(':
		return one(token.LParen)
	case ')':
		return one(token.RParen)
	case ',':
		return one(token.Comma)
	case ';':
		return one(token.Semicolon)
	}
	l.pos++
	l.diags.Errorf(l.spanFrom(start), "unexpected character %q", string(c))
	return Token{Kind: token.Illegal, Lit: l.src[start:l.pos], Span: l.spanFrom(start)}
}
