package cg

import (
	"sync/atomic"
	"time"
)

// Stats accumulates closure instrumentation, shared across all graphs
// created from the same Options so an entire analysis run can be profiled.
// All counters are updated atomically, so one Stats may be shared across
// graphs used by concurrent analyses (the AnalyzeAll worker pool); for
// contention-free accounting, give each worker its own Stats and combine
// them with Merge.
type Stats struct {
	fullClosures  atomic.Int64 // number of O(n^3) closure passes
	fullVarsSum   atomic.Int64 // sum of variable counts over those passes
	incrClosures  atomic.Int64 // number of frontier incremental updates
	incrVarsSum   atomic.Int64 // sum of variable counts over those updates
	closureTimeNs atomic.Int64 // total wall time inside closure code
	// fullClosuresAvoided counts closure-preserving structural updates —
	// frontier edge propagation, row/column projection (Forget/Drop), bound
	// shifting — each of which restores or preserves closure without an
	// O(n^3) Floyd-Warshall pass.
	fullClosuresAvoided atomic.Int64
	// State-maintenance accounting beyond closure: joins, widenings and
	// graph copies, the other costs of keeping the dataflow state at each
	// pCFG node consistent (the paper's Section IX "92.5%" covers all of
	// this).
	joins          atomic.Int64
	joinVarsSum    atomic.Int64
	maintainTimeNs atomic.Int64 // join + widen + materialization wall time
	// Copy-on-write accounting: clones that stayed O(1) reference bumps and
	// the shared matrices that were eventually materialized by a write.
	clonesAvoided       atomic.Int64
	cowMaterializations atomic.Int64
	// Arena accounting: matrix acquisitions served from the size-class
	// sync.Pool vs freshly allocated.
	arenaHits   atomic.Int64
	arenaMisses atomic.Int64
	// Parallel-engine accounting: canonical-key serializations served from
	// the per-state cache vs rebuilt, worklist pushes coalesced into an
	// already-queued configuration (re-visits the scheduler saved), and
	// configuration-table shard lock acquisitions that had to wait.
	keyCacheHits    atomic.Int64
	keyCacheMisses  atomic.Int64
	schedCoalesced  atomic.Int64
	shardContention atomic.Int64
	// Sharded-scheduler accounting: pops a worker stole from another
	// worker's home shard, and lock acquisitions saved by committing a
	// step's same-shard revisions (table writes and scheduler pushes) in
	// one critical section instead of one per successor.
	schedSteals  atomic.Int64
	batchedSaved atomic.Int64
}

// FullClosures returns the number of O(n^3) closure passes.
func (s *Stats) FullClosures() int64 { return s.fullClosures.Load() }

// IncrClosures returns the number of frontier incremental updates.
func (s *Stats) IncrClosures() int64 { return s.incrClosures.Load() }

// FullClosuresAvoided returns how many closure-preserving updates (frontier
// propagation, projection, shifting) ran instead of an O(n^3) full pass.
func (s *Stats) FullClosuresAvoided() int64 { return s.fullClosuresAvoided.Load() }

// Joins returns the number of join/widen operations.
func (s *Stats) Joins() int64 { return s.joins.Load() }

// ClonesAvoided returns how many Clone calls stayed O(1) reference bumps
// instead of deep matrix copies.
func (s *Stats) ClonesAvoided() int64 { return s.clonesAvoided.Load() }

// CoWMaterializations returns how many shared matrices were deep-copied on
// first write.
func (s *Stats) CoWMaterializations() int64 { return s.cowMaterializations.Load() }

// ArenaHits returns how many matrix acquisitions reused a pooled arena.
func (s *Stats) ArenaHits() int64 { return s.arenaHits.Load() }

// ArenaMisses returns how many matrix acquisitions had to allocate.
func (s *Stats) ArenaMisses() int64 { return s.arenaMisses.Load() }

// KeyCacheHits returns how many FullKey/ShapeKey requests were served from
// the per-state key cache.
func (s *Stats) KeyCacheHits() int64 { return s.keyCacheHits.Load() }

// KeyCacheMisses returns how many FullKey/ShapeKey requests rebuilt the key.
func (s *Stats) KeyCacheMisses() int64 { return s.keyCacheMisses.Load() }

// KeyCacheHitRate returns the fraction of key requests served from cache.
func (s *Stats) KeyCacheHitRate() float64 {
	h, m := s.keyCacheHits.Load(), s.keyCacheMisses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// SchedCoalesced returns how many worklist pushes were absorbed into an
// already-queued configuration — re-visits the scheduler saved.
func (s *Stats) SchedCoalesced() int64 { return s.schedCoalesced.Load() }

// ShardContention returns how many shard lock acquisitions found the lock
// already held (parallel engine only).
func (s *Stats) ShardContention() int64 { return s.shardContention.Load() }

// SchedSteals returns how many scheduler pops were served from a shard
// other than the popping worker's home shard (work stealing).
func (s *Stats) SchedSteals() int64 { return s.schedSteals.Load() }

// BatchedSaved returns how many lock acquisitions the batched shard-commit
// path saved by folding a step's same-shard revisions into one critical
// section.
func (s *Stats) BatchedSaved() int64 { return s.batchedSaved.Load() }

// AddKeyCacheHits bumps the key-cache hit counter. Safe on a nil receiver.
func (s *Stats) AddKeyCacheHits(n int64) {
	if s != nil {
		s.keyCacheHits.Add(n)
	}
}

// AddKeyCacheMisses bumps the key-cache miss counter. Safe on a nil receiver.
func (s *Stats) AddKeyCacheMisses(n int64) {
	if s != nil {
		s.keyCacheMisses.Add(n)
	}
}

// AddSchedCoalesced bumps the coalesced-push counter. Safe on a nil receiver.
func (s *Stats) AddSchedCoalesced(n int64) {
	if s != nil {
		s.schedCoalesced.Add(n)
	}
}

// AddShardContention bumps the shard-contention counter. Safe on a nil
// receiver.
func (s *Stats) AddShardContention(n int64) {
	if s != nil {
		s.shardContention.Add(n)
	}
}

// AddSchedSteals bumps the work-stealing counter. Safe on a nil receiver.
func (s *Stats) AddSchedSteals(n int64) {
	if s != nil {
		s.schedSteals.Add(n)
	}
}

// AddBatchedSaved bumps the batched-commit savings counter. Safe on a nil
// receiver.
func (s *Stats) AddBatchedSaved(n int64) {
	if s != nil {
		s.batchedSaved.Add(n)
	}
}

// ClosureTime returns total wall time inside closure code.
func (s *Stats) ClosureTime() time.Duration { return time.Duration(s.closureTimeNs.Load()) }

// MaintainTime returns join + widen + materialization wall time.
func (s *Stats) MaintainTime() time.Duration { return time.Duration(s.maintainTimeNs.Load()) }

// AvgJoinVars returns the mean variable count per join/widen.
func (s *Stats) AvgJoinVars() float64 {
	if s.joins.Load() == 0 {
		return 0
	}
	return float64(s.joinVarsSum.Load()) / float64(s.joins.Load())
}

// MaintenanceTime returns all time spent keeping dataflow state consistent
// (closure plus join/widen/materialization).
func (s *Stats) MaintenanceTime() time.Duration { return s.ClosureTime() + s.MaintainTime() }

// AvgFullVars returns the mean variable count per full closure.
func (s *Stats) AvgFullVars() float64 {
	if s.fullClosures.Load() == 0 {
		return 0
	}
	return float64(s.fullVarsSum.Load()) / float64(s.fullClosures.Load())
}

// AvgIncrVars returns the mean variable count per incremental update.
func (s *Stats) AvgIncrVars() float64 {
	if s.incrClosures.Load() == 0 {
		return 0
	}
	return float64(s.incrVarsSum.Load()) / float64(s.incrClosures.Load())
}

// Merge folds the counters of o into s (the sharded-and-merged pattern for
// per-worker stats).
func (s *Stats) Merge(o *Stats) {
	s.fullClosures.Add(o.fullClosures.Load())
	s.fullVarsSum.Add(o.fullVarsSum.Load())
	s.incrClosures.Add(o.incrClosures.Load())
	s.incrVarsSum.Add(o.incrVarsSum.Load())
	s.closureTimeNs.Add(o.closureTimeNs.Load())
	s.fullClosuresAvoided.Add(o.fullClosuresAvoided.Load())
	s.joins.Add(o.joins.Load())
	s.joinVarsSum.Add(o.joinVarsSum.Load())
	s.maintainTimeNs.Add(o.maintainTimeNs.Load())
	s.clonesAvoided.Add(o.clonesAvoided.Load())
	s.cowMaterializations.Add(o.cowMaterializations.Load())
	s.arenaHits.Add(o.arenaHits.Load())
	s.arenaMisses.Add(o.arenaMisses.Load())
	s.keyCacheHits.Add(o.keyCacheHits.Load())
	s.keyCacheMisses.Add(o.keyCacheMisses.Load())
	s.schedCoalesced.Add(o.schedCoalesced.Load())
	s.shardContention.Add(o.shardContention.Load())
	s.schedSteals.Add(o.schedSteals.Load())
	s.batchedSaved.Add(o.batchedSaved.Load())
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.fullClosures.Store(0)
	s.fullVarsSum.Store(0)
	s.incrClosures.Store(0)
	s.incrVarsSum.Store(0)
	s.closureTimeNs.Store(0)
	s.fullClosuresAvoided.Store(0)
	s.joins.Store(0)
	s.joinVarsSum.Store(0)
	s.maintainTimeNs.Store(0)
	s.clonesAvoided.Store(0)
	s.cowMaterializations.Store(0)
	s.arenaHits.Store(0)
	s.arenaMisses.Store(0)
	s.keyCacheHits.Store(0)
	s.keyCacheMisses.Store(0)
	s.schedCoalesced.Store(0)
	s.shardContention.Store(0)
	s.schedSteals.Store(0)
	s.batchedSaved.Store(0)
}
