package cg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestCloneCoWIndependence checks that a clone and its original stay
// logically independent through every mutating operation, on both backends.
func TestCloneCoWIndependence(t *testing.T) {
	for _, backend := range []Backend{ArrayBackend, MapBackend} {
		t.Run(backend.String(), func(t *testing.T) {
			g := New(Options{Backend: backend})
			g.SetConst("x", 5)
			g.AddLE("y", "x", 3)
			snapshot := g.String()

			// Mutating the clone must not change the original.
			c := g.Clone()
			c.AddLE("x", "y", -1)
			c.SetConst("z", 7)
			if g.String() != snapshot {
				t.Fatalf("original changed by clone mutation:\n%s\nwant\n%s", g.String(), snapshot)
			}
			if g.HasVar("z") {
				t.Fatal("original gained clone's variable")
			}

			// Mutating the original must not change an untouched clone.
			c2 := g.Clone()
			cs := c2.String()
			g.AddLE("w", "x", 0)
			g.Rename("y", "yy")
			if c2.String() != cs {
				t.Fatalf("clone changed by original mutation:\n%s\nwant\n%s", c2.String(), cs)
			}

			// Forget/Drop/Shift on one side stay private too.
			c3 := g.Clone()
			c3.Forget("x")
			c3.Shift("w", 4)
			c3.Drop("yy")
			if !g.HasVar("yy") {
				t.Fatal("Drop on clone removed original's variable")
			}
			if v, ok := g.ConstVal("x"); !ok || v != 5 {
				t.Fatalf("original lost x=5 after clone Forget: %v %v", v, ok)
			}
		})
	}
}

// TestCloneStatsCounters checks the CoW instrumentation: O(1) clones are
// counted, and only writes to still-shared graphs materialize.
func TestCloneStatsCounters(t *testing.T) {
	var st Stats
	g := New(Options{Stats: &st})
	g.SetConst("x", 1)
	base := st.CoWMaterializations()

	c := g.Clone()
	if st.ClonesAvoided() != 1 {
		t.Fatalf("ClonesAvoided = %d, want 1", st.ClonesAvoided())
	}
	c.AddLE("x", "y", 2) // first write on a shared graph: materializes
	if got := st.CoWMaterializations() - base; got != 1 {
		t.Fatalf("CoWMaterializations = %d, want 1", got)
	}
	c.AddLE("y", "x", 5) // already private: no further materialization
	if got := st.CoWMaterializations() - base; got != 1 {
		t.Fatalf("CoWMaterializations after private write = %d, want 1", got)
	}
	// g is the sole owner again (c re-referenced its own storage), so a
	// write to g must not copy either.
	g.AddLE("x", "z", 3)
	if got := st.CoWMaterializations() - base; got != 2 {
		// g still saw refs>1 from the moment the clone was taken until c
		// materialized; depending on order one more copy is allowed.
		t.Logf("note: %d materializations (g wrote while still shared)", got)
	}
}

// applyRandomOps replays a deterministic random op sequence against g,
// returning intermediate clones so CoW sharing is exercised mid-sequence.
func applyRandomOps(g *Graph, rng *rand.Rand, n int) []*Graph {
	vars := func(i int) string { return fmt.Sprintf("v%d", i) }
	var clones []*Graph
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // AddLE dominates real workloads
			x, y := vars(rng.Intn(12)), vars(rng.Intn(12))
			g.AddLE(x, y, int64(rng.Intn(21)-5))
		case 5:
			g.SetConst(vars(rng.Intn(12)), int64(rng.Intn(9)))
		case 6:
			old := vars(rng.Intn(12))
			nw := fmt.Sprintf("r%d", i)
			if g.HasVar(old) && !g.HasVar(nw) {
				g.Rename(old, nw)
				g.Rename(nw, old) // rename back to keep both sides aligned
			}
		case 7:
			g.Shift(vars(rng.Intn(12)), int64(rng.Intn(7)-3))
		case 8:
			g.Forget(vars(rng.Intn(12)))
		case 9:
			clones = append(clones, g.Clone())
		}
	}
	return clones
}

// TestBackendParityRandom replays identical random AddLE/rename/shift/
// forget/clone/join sequences against the array and map backends and
// asserts the closed matrices agree, so the CoW rewrite cannot silently
// diverge the two storage strategies.
func TestBackendParityRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			build := func(backend Backend) (*Graph, *Graph, []*Graph) {
				rng := rand.New(rand.NewSource(seed))
				a := New(Options{Backend: backend})
				b := New(Options{Backend: backend})
				ca := applyRandomOps(a, rng, 60)
				cb := applyRandomOps(b, rng, 60)
				return a, b, append(ca, cb...)
			}
			aArr, bArr, cArr := build(ArrayBackend)
			aMap, bMap, cMap := build(MapBackend)

			check := func(what string, x, y *Graph) {
				t.Helper()
				if x.Consistent() != y.Consistent() {
					t.Fatalf("%s: consistency differs: array %v, map %v", what, x.Consistent(), y.Consistent())
				}
				if x.Consistent() && !Equal(x, y) {
					t.Fatalf("%s: closed matrices differ\narray:\n%s\nmap:\n%s", what, x, y)
				}
			}
			check("graph a", aArr, aMap)
			check("graph b", bArr, bMap)
			if len(cArr) != len(cMap) {
				t.Fatalf("clone count differs: %d vs %d", len(cArr), len(cMap))
			}
			for i := range cArr {
				check(fmt.Sprintf("clone %d", i), cArr[i], cMap[i])
			}
			if aArr.Consistent() && bArr.Consistent() {
				check("join", Join(aArr, bArr), Join(aMap, bMap))
				check("widen", Widen(aArr, bArr), Widen(aMap, bMap))
			}
		})
	}
}

// TestStatsConcurrentMerge drives independent graphs sharing one Stats
// record from many goroutines (what core.AnalyzeAll does with a suite-wide
// stats record); run under -race this proves the counters are race-safe.
func TestStatsConcurrentMerge(t *testing.T) {
	var st Stats
	var wg sync.WaitGroup
	const workers = 8
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			g := New(Options{Stats: &st, Backend: Backend(w % 2)})
			for i := 0; i < 50; i++ {
				g.AddLE(fmt.Sprintf("a%d", i%7), fmt.Sprintf("b%d", i%5), int64(i))
				c := g.Clone()
				c.AddLE("x", fmt.Sprintf("a%d", i%7), 1)
				g = Join(g, c)
			}
			g.FullClose()
		}(w)
	}
	wg.Wait()
	if st.ClonesAvoided() == 0 || st.IncrClosures() == 0 || st.Joins() == 0 || st.FullClosures() != workers {
		t.Fatalf("stats not aggregated: clones=%d incr=%d joins=%d full=%d",
			st.ClonesAvoided(), st.IncrClosures(), st.Joins(), st.FullClosures())
	}

	// Sharded-and-merged aggregation must match too.
	var a, b Stats
	g := New(Options{Stats: &a})
	g.AddLE("x", "y", 1)
	h := New(Options{Stats: &b})
	h.AddLE("x", "y", 1)
	a.Merge(&b)
	if a.IncrClosures() != 2 {
		t.Fatalf("Merge: IncrClosures = %d, want 2", a.IncrClosures())
	}
}
