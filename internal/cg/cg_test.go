package cg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func backends() []Options {
	return []Options{{Backend: ArrayBackend}, {Backend: MapBackend}}
}

func TestBasicEntailment(t *testing.T) {
	for _, opts := range backends() {
		g := New(opts)
		g.AddLE("x", "y", 3) // x <= y + 3
		g.AddLE("y", "z", 2) // y <= z + 2
		if !g.Entails("x", "z", 5) {
			t.Errorf("[%v] x <= z+5 not entailed", opts.Backend)
		}
		if g.Entails("x", "z", 4) {
			t.Errorf("[%v] x <= z+4 wrongly entailed", opts.Backend)
		}
		if g.Entails("z", "x", 100) {
			t.Errorf("[%v] z <= x+100 wrongly entailed (no info)", opts.Backend)
		}
	}
}

func TestConstants(t *testing.T) {
	for _, opts := range backends() {
		g := New(opts)
		g.SetConst("x", 5)
		g.AddEq("y", "x", 2)
		if v, ok := g.ConstVal("x"); !ok || v != 5 {
			t.Errorf("[%v] x = %d,%v", opts.Backend, v, ok)
		}
		if v, ok := g.ConstVal("y"); !ok || v != 7 {
			t.Errorf("[%v] y = %d,%v", opts.Backend, v, ok)
		}
		if _, ok := g.ConstVal("unknown"); ok {
			t.Errorf("[%v] unknown var has const", opts.Backend)
		}
	}
}

func TestInconsistency(t *testing.T) {
	for _, opts := range backends() {
		g := New(opts)
		g.AddLE("x", "y", -1) // x < y
		ok := g.AddLE("y", "x", -1)
		if ok || g.Consistent() {
			t.Errorf("[%v] cycle x<y<x not detected", opts.Backend)
		}
		// Inconsistent graphs entail everything.
		if !g.Entails("a", "b", -100) {
			t.Errorf("[%v] inconsistent graph should entail all", opts.Backend)
		}
	}
}

func TestSelfEdge(t *testing.T) {
	g := NewDefault()
	if !g.AddLE("x", "x", 0) || !g.AddLE("x", "x", 5) {
		t.Error("x <= x + c (c>=0) should be fine")
	}
	if g.AddLE("x", "x", -1) {
		t.Error("x <= x - 1 should be inconsistent")
	}
}

func TestEqualWitnesses(t *testing.T) {
	g := NewDefault()
	g.SetConst("i", 1)
	g.AddEq("j", "i", 0)
	ws := g.EqualWitnesses("j")
	// j = $0 + 1 and j = i.
	if len(ws) != 2 {
		t.Fatalf("witnesses = %v", ws)
	}
	if ws[0].Var != ZeroVar || ws[0].C != 1 {
		t.Errorf("w0 = %v", ws[0])
	}
	if ws[1].Var != "i" || ws[1].C != 0 {
		t.Errorf("w1 = %v", ws[1])
	}
}

func TestForget(t *testing.T) {
	g := NewDefault()
	g.AddLE("x", "y", 1)
	g.AddLE("y", "z", 1)
	g.Forget("y")
	// x <= z + 2 was entailed through y and must survive projection.
	if !g.Entails("x", "z", 2) {
		t.Error("transitive fact lost by Forget")
	}
	if _, ok := g.DiffBound("x", "y"); ok {
		t.Error("constraint on forgotten var survives")
	}
	if _, ok := g.DiffBound("y", "z"); ok {
		t.Error("constraint on forgotten var survives")
	}
}

func TestShift(t *testing.T) {
	g := NewDefault()
	g.SetConst("i", 1)
	g.AddLE("i", "np", -1)
	g.Shift("i", 1) // i := i + 1
	if v, ok := g.ConstVal("i"); !ok || v != 2 {
		t.Errorf("after shift i = %d,%v, want 2", v, ok)
	}
	if !g.Entails("i", "np", 0) {
		t.Error("i <= np lost after shift")
	}
	if g.Entails("i", "np", -1) {
		t.Error("i <= np-1 should no longer hold exactly")
	}
}

func TestRename(t *testing.T) {
	g := NewDefault()
	g.SetConst("a", 3)
	g.Rename("a", "b")
	if v, ok := g.ConstVal("b"); !ok || v != 3 {
		t.Errorf("b = %d,%v", v, ok)
	}
	if g.HasVar("a") {
		t.Error("old name survives")
	}
}

func TestCloneIndependence(t *testing.T) {
	for _, opts := range backends() {
		g := New(opts)
		g.SetConst("x", 1)
		c := g.Clone()
		c.SetConst("y", 2)
		if g.HasVar("y") {
			t.Errorf("[%v] clone mutated original", opts.Backend)
		}
		if v, ok := c.ConstVal("x"); !ok || v != 1 {
			t.Errorf("[%v] clone lost x", opts.Backend)
		}
	}
}

func TestJoin(t *testing.T) {
	a := NewDefault()
	a.SetConst("x", 1)
	b := NewDefault()
	b.SetConst("x", 3)
	j := Join(a, b)
	// Join keeps only common facts: 1 <= x <= 3.
	if !j.Entails("x", ZeroVar, 3) {
		t.Error("x <= 3 lost")
	}
	if !j.Entails(ZeroVar, "x", -1) {
		t.Error("x >= 1 lost")
	}
	if _, ok := j.ConstVal("x"); ok {
		t.Error("join should not pin x")
	}
}

func TestJoinWithBottom(t *testing.T) {
	a := NewDefault()
	a.SetConst("x", 1)
	bot := NewDefault()
	bot.MarkInconsistent()
	j := Join(a, bot)
	if v, ok := j.ConstVal("x"); !ok || v != 1 {
		t.Errorf("join with bottom lost info: x=%d,%v", v, ok)
	}
	j2 := Join(bot, a)
	if v, ok := j2.ConstVal("x"); !ok || v != 1 {
		t.Errorf("join with bottom (flipped) lost info: x=%d,%v", v, ok)
	}
}

func TestWiden(t *testing.T) {
	a := NewDefault()
	a.SetConst("i", 1)
	a.AddLE("i", "np", -1)
	b := NewDefault()
	b.SetConst("i", 2)
	b.AddLE("i", "np", -1)
	w := Widen(a, b)
	// Stable: i >= 1 (b has i >= 2 which implies i >= 1), i <= np - 1.
	if !w.Entails(ZeroVar, "i", -1) {
		t.Error("i >= 1 lost in widening")
	}
	if !w.Entails("i", "np", -1) {
		t.Error("i <= np-1 lost in widening")
	}
	// Unstable: i <= 1 must be dropped.
	if w.Entails("i", ZeroVar, 1) {
		t.Error("i <= 1 survived widening")
	}
}

func TestWideningTerminates(t *testing.T) {
	cur := NewDefault()
	cur.SetConst("i", 0)
	for k := 1; k < 100; k++ {
		next := NewDefault()
		next.SetConst("i", int64(k))
		widened := Widen(cur, next)
		if Equal(widened, cur) {
			return // stabilized
		}
		cur = widened
	}
	t.Error("widening did not stabilize in 100 steps")
}

func TestLeqAndEqual(t *testing.T) {
	a := NewDefault()
	a.SetConst("x", 1)
	b := NewDefault()
	b.AddLE("x", ZeroVar, 5)
	if !Leq(a, b) {
		t.Error("x=1 should entail x<=5")
	}
	if Leq(b, a) {
		t.Error("x<=5 should not entail x=1")
	}
	if !Equal(a, a.Clone()) {
		t.Error("graph not equal to own clone")
	}
	if Equal(a, b) {
		t.Error("different graphs equal")
	}
}

func TestStats(t *testing.T) {
	var st Stats
	g := New(Options{Stats: &st})
	g.AddLE("a", "b", 1)
	g.AddLE("b", "c", 1)
	g.FullClose()
	if st.IncrClosures() != 2 {
		t.Errorf("IncrClosures = %d, want 2", st.IncrClosures())
	}
	if st.FullClosures() != 1 {
		t.Errorf("FullClosures = %d, want 1", st.FullClosures())
	}
	if st.AvgIncrVars() <= 0 || st.AvgFullVars() <= 0 {
		t.Error("avg vars not recorded")
	}
	st.Reset()
	if st.IncrClosures() != 0 || st.ClosureTime() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestString(t *testing.T) {
	g := NewDefault()
	g.SetConst("x", 5)
	g.AddLE("i", "np", -1)
	s := g.String()
	if !strings.Contains(s, "x = 5") {
		t.Errorf("String = %q, missing x = 5", s)
	}
	if !strings.Contains(s, "i <= np - 1") {
		t.Errorf("String = %q, missing i <= np - 1", s)
	}
	bot := NewDefault()
	bot.MarkInconsistent()
	if bot.String() != "inconsistent" {
		t.Errorf("bottom String = %q", bot.String())
	}
	if NewDefault().String() != "true" {
		t.Errorf("empty String = %q", NewDefault().String())
	}
}

// bruteClose computes shortest paths by repeated relaxation for the oracle.
func bruteClose(n int, edges map[[2]int]int64) map[[2]int]int64 {
	d := map[[2]int]int64{}
	get := func(i, j int) int64 {
		if i == j {
			if v, ok := d[[2]int{i, j}]; ok {
				return v
			}
			return 0
		}
		if v, ok := d[[2]int{i, j}]; ok {
			return v
		}
		return Inf
	}
	for k, v := range edges {
		d[k] = v
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if get(i, k) < Inf && get(k, j) < Inf && get(i, k)+get(k, j) < get(i, j) {
						d[[2]int{i, j}] = get(i, k) + get(k, j)
						changed = true
					}
				}
			}
		}
		// Stop early on negative cycle; caller checks diagonal.
		for i := 0; i < n; i++ {
			if get(i, i) < 0 {
				return d
			}
		}
	}
	return d
}

func TestQuickIncrementalMatchesBrute(t *testing.T) {
	// Property: incrementally maintained closure equals the brute-force
	// shortest-path closure on random constraint sets, on both backends.
	names := []string{"v0", "v1", "v2", "v3", "v4"}
	cfg := &quick.Config{MaxCount: 120}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, opts := range backends() {
			g := New(opts)
			for _, nm := range names {
				g.AddVar(nm)
			}
			edges := map[[2]int]int64{}
			nEdges := r.Intn(10) + 1
			consistent := true
			for e := 0; e < nEdges && consistent; e++ {
				i, j := r.Intn(5), r.Intn(5)
				if i == j {
					continue
				}
				c := int64(r.Intn(11) - 3)
				if old, ok := edges[[2]int{i, j}]; !ok || c < old {
					edges[[2]int{i, j}] = c
				}
				consistent = g.AddLE(names[i], names[j], c)
			}
			oracle := bruteClose(5, edges)
			negCycle := false
			for i := 0; i < 5; i++ {
				if v, ok := oracle[[2]int{i, i}]; ok && v < 0 {
					negCycle = true
				}
			}
			if negCycle {
				if g.Consistent() {
					return false
				}
				continue
			}
			if !g.Consistent() {
				return false
			}
			for i := 0; i < 5; i++ {
				for j := 0; j < 5; j++ {
					if i == j {
						continue
					}
					want, okWant := oracle[[2]int{i, j}]
					got, okGot := g.DiffBound(names[i], names[j])
					if okWant != okGot || (okWant && want != got && want < Inf) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIsUpperBound(t *testing.T) {
	// Property: Join(a,b) is entailed by both a and b.
	names := []string{"v0", "v1", "v2"}
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() *Graph {
			g := NewDefault()
			for e := 0; e < r.Intn(5)+1; e++ {
				i, j := r.Intn(3), r.Intn(3)
				if i == j {
					continue
				}
				g.AddLE(names[i], names[j], int64(r.Intn(7)-1))
			}
			return g
		}
		a, b := mk(), mk()
		j := Join(a, b)
		return Leq(a, j) && Leq(b, j)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBackendsAgree(t *testing.T) {
	// The two storage backends must compute identical results.
	r := rand.New(rand.NewSource(7))
	names := []string{"a", "b", "c", "d", "e", "f"}
	ga := New(Options{Backend: ArrayBackend})
	gm := New(Options{Backend: MapBackend})
	for e := 0; e < 25; e++ {
		i, j := r.Intn(6), r.Intn(6)
		if i == j {
			continue
		}
		c := int64(r.Intn(9))
		ra := ga.AddLE(names[i], names[j], c)
		rm := gm.AddLE(names[i], names[j], c)
		if ra != rm {
			t.Fatalf("backends disagree on AddLE result at step %d", e)
		}
	}
	for _, x := range names {
		for _, y := range names {
			ba, oka := ga.DiffBound(x, y)
			bm, okm := gm.DiffBound(x, y)
			if oka != okm || (oka && ba != bm) {
				t.Errorf("DiffBound(%s,%s): array=%d,%v map=%d,%v", x, y, ba, oka, bm, okm)
			}
		}
	}
}

func TestRenameConflictPanics(t *testing.T) {
	g := NewDefault()
	g.AddVar("a")
	g.AddVar("b")
	defer func() {
		if recover() == nil {
			t.Error("Rename onto existing name did not panic")
		}
	}()
	g.Rename("a", "b")
}
