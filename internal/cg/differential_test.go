package cg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Differential suite for the flat constraint-graph core: replay identical
// randomized op sequences through the map backend (the reference
// implementation) and the flat array backend, asserting after every single
// op that the two agree on Consistent, on randomly probed DiffBound
// queries, and on randomly probed Entails queries. Any divergence in the
// frontier incremental closure, the flat-specialized Forget/Drop/Shift, or
// the arena recycling path shows up as a probe mismatch with the seed and
// step that produced it.

// diffOp is one randomized mutation applied identically to both backends.
type diffOp struct {
	kind    int
	x, y    string
	c       int64
	cloneID int
}

// genSequence derives a deterministic op sequence from rng. Variables are
// drawn from a pool of 10 names so Drop/Forget/Rename keep hitting live
// slots; constants stay small so inconsistency arises in a realistic
// fraction of sequences without dominating them.
func genSequence(rng *rand.Rand, n int) []diffOp {
	v := func() string { return fmt.Sprintf("q%d", rng.Intn(10)) }
	ops := make([]diffOp, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(12); k {
		case 0, 1, 2, 3, 4: // AddLE dominates real workloads
			ops = append(ops, diffOp{kind: 0, x: v(), y: v(), c: int64(rng.Intn(19) - 4)})
		case 5: // AddEq
			ops = append(ops, diffOp{kind: 1, x: v(), y: v(), c: int64(rng.Intn(9) - 4)})
		case 6: // SetConst
			ops = append(ops, diffOp{kind: 2, x: v(), c: int64(rng.Intn(9))})
		case 7: // Forget
			ops = append(ops, diffOp{kind: 3, x: v()})
		case 8: // Drop
			ops = append(ops, diffOp{kind: 4, x: v()})
		case 9: // Shift
			ops = append(ops, diffOp{kind: 5, x: v(), c: int64(rng.Intn(7) - 3)})
		case 10: // Rename to a fresh name and back (keeps the pools aligned)
			ops = append(ops, diffOp{kind: 6, x: v(), y: fmt.Sprintf("rn%d", i)})
		case 11: // Clone (retained, checked and released at the end)
			ops = append(ops, diffOp{kind: 7, cloneID: i})
		}
	}
	return ops
}

// apply runs one op against g, returning a retained clone for kind 7.
func (op diffOp) apply(g *Graph) *Graph {
	switch op.kind {
	case 0:
		g.AddLE(op.x, op.y, op.c)
	case 1:
		g.AddEq(op.x, op.y, op.c)
	case 2:
		g.SetConst(op.x, op.c)
	case 3:
		g.Forget(op.x)
	case 4:
		g.Drop(op.x)
	case 5:
		g.Shift(op.x, op.c)
	case 6:
		if g.HasVar(op.x) && !g.HasVar(op.y) {
			g.Rename(op.x, op.y)
			g.Rename(op.y, op.x)
		}
	case 7:
		return g.Clone()
	}
	return nil
}

// probeAgree asserts that flat and ref agree on consistency and on nProbe
// randomly chosen DiffBound/Entails queries. The probe rng is independent
// of the op rng so adding probes never perturbs the sequence under test.
func probeAgree(t *testing.T, flat, ref *Graph, prng *rand.Rand, nProbe int, ctx string) {
	t.Helper()
	if fc, rc := flat.Consistent(), ref.Consistent(); fc != rc {
		t.Fatalf("%s: Consistent: flat=%v map=%v", ctx, fc, rc)
	}
	v := func() string { return fmt.Sprintf("q%d", prng.Intn(10)) }
	for p := 0; p < nProbe; p++ {
		x, y := v(), v()
		fb, fok := flat.DiffBound(x, y)
		rb, rok := ref.DiffBound(x, y)
		if fok != rok || (fok && fb != rb) {
			t.Fatalf("%s: DiffBound(%s,%s): flat=(%d,%v) map=(%d,%v)", ctx, x, y, fb, fok, rb, rok)
		}
		c := int64(prng.Intn(13) - 6)
		if fe, re := flat.Entails(x, y, c), ref.Entails(x, y, c); fe != re {
			t.Fatalf("%s: Entails(%s,%s,%d): flat=%v map=%v", ctx, x, y, c, fe, re)
		}
	}
}

// TestDifferentialFlatVsMap replays >=10k randomized sequences through
// both backends, probing agreement after every op. This is the primary
// correctness harness for the flat core rewrite.
func TestDifferentialFlatVsMap(t *testing.T) {
	sequences := 10000
	opsPer := 24
	if testing.Short() {
		sequences = 500
	}
	for seed := 0; seed < sequences; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		ops := genSequence(rng, opsPer)
		prng := rand.New(rand.NewSource(int64(seed) ^ 0x5DEECE66D))

		flat := New(Options{Backend: ArrayBackend})
		ref := New(Options{Backend: MapBackend})
		type retained struct {
			flat, ref *Graph
			step      int
		}
		var clones []retained
		for step, op := range ops {
			fc := op.apply(flat)
			rc := op.apply(ref)
			if (fc == nil) != (rc == nil) {
				t.Fatalf("seed %d step %d: clone asymmetry", seed, step)
			}
			if fc != nil {
				clones = append(clones, retained{fc, rc, step})
			}
			probeAgree(t, flat, ref, prng, 3, fmt.Sprintf("seed %d step %d (op %d)", seed, step, op.kind))
		}
		// Retained clones must still agree with each other (CoW snapshots
		// survive later mutations of their parent), then release them so
		// the arena path is exercised under churn.
		for _, c := range clones {
			probeAgree(t, c.flat, c.ref, prng, 3, fmt.Sprintf("seed %d clone@%d", seed, c.step))
			c.flat.Release()
		}
		if flat.Consistent() && ref.Consistent() && !Equal(flat, ref) {
			t.Fatalf("seed %d: final closed matrices differ\nflat:\n%s\nmap:\n%s", seed, flat, ref)
		}
		flat.Release()
	}
}

// TestDifferentialCloneCoWRace shares clones of one flat graph across
// goroutines that concurrently read (DiffBound/Entails/String), mutate
// their private clone (forcing CoW materialization out of the shared
// store), and release it back to the arena. Run under -race this pins the
// copy-before-release ordering in materialize and the atomic refcounts.
func TestDifferentialCloneCoWRace(t *testing.T) {
	base := New(Options{Backend: ArrayBackend})
	for i := 0; i < 12; i++ {
		base.AddLE(fmt.Sprintf("q%d", i), fmt.Sprintf("q%d", (i+1)%12), int64(i%5))
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for iter := 0; iter < 200; iter++ {
				c := base.Clone()
				// Reads against the shared store race with other
				// goroutines' materializations of their own clones.
				x := fmt.Sprintf("q%d", rng.Intn(12))
				y := fmt.Sprintf("q%d", rng.Intn(12))
				c.DiffBound(x, y)
				c.Entails(x, y, 3)
				// First write triggers CoW; further writes are private.
				c.AddLE(x, y, int64(rng.Intn(5)))
				c.Forget(y)
				_ = c.String()
				c.Release()
			}
		}(w)
	}
	wg.Wait()
	if !base.Consistent() {
		t.Fatalf("shared base mutated by a clone")
	}
}
