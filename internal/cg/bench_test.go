package cg

import (
	"fmt"
	"testing"
)

// buildGraph returns a closed graph with n variables and a band of
// constraints, sized like the paper's profile (~60 vars).
func buildGraph(n int, backend Backend) *Graph {
	g := New(Options{Backend: backend})
	for i := 0; i < n; i++ {
		g.AddLE(fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", (i+1)%n), int64(i%7)+1)
	}
	return g
}

// BenchmarkClone measures state forking: with copy-on-write this is an O(1)
// reference bump regardless of backend or variable count.
func BenchmarkClone(b *testing.B) {
	for _, backend := range []Backend{ArrayBackend, MapBackend} {
		b.Run(backend.String(), func(b *testing.B) {
			g := buildGraph(60, backend)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = g.Clone()
			}
		})
	}
}

// BenchmarkCloneMutate measures the full fork-then-write path: the clone's
// first AddLE pays the deferred copy (materialization) plus the incremental
// closure.
func BenchmarkCloneMutate(b *testing.B) {
	for _, backend := range []Backend{ArrayBackend, MapBackend} {
		b.Run(backend.String(), func(b *testing.B) {
			g := buildGraph(60, backend)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := g.Clone()
				c.AddLE("v1", "v2", 1)
			}
		})
	}
}

// BenchmarkAddLE measures the incremental O(n^2) closure on a private graph.
func BenchmarkAddLE(b *testing.B) {
	for _, backend := range []Backend{ArrayBackend, MapBackend} {
		b.Run(backend.String(), func(b *testing.B) {
			g := buildGraph(60, backend)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.AddLE("v3", "v7", int64(i%5)+1)
			}
		})
	}
}

// BenchmarkJoin measures the pointwise-max join of two closed graphs.
func BenchmarkJoin(b *testing.B) {
	for _, backend := range []Backend{ArrayBackend, MapBackend} {
		b.Run(backend.String(), func(b *testing.B) {
			x := buildGraph(60, backend)
			y := buildGraph(60, backend)
			y.AddLE("v5", "v9", 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = Join(x, y)
			}
		})
	}
}

// BenchmarkCloneMutateArena measures the steady-state clone -> CoW
// materialize -> release cycle: with the size-class arena, the matrix a
// materialization needs comes back from the pool the previous release fed,
// so the per-cycle allocation cost collapses to the Graph header.
func BenchmarkCloneMutateArena(b *testing.B) {
	g := buildGraph(60, ArrayBackend)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := g.Clone()
		c.AddLE("v1", "v2", 1)
		c.Release()
	}
}
