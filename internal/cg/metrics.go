package cg

import "repro/internal/obs"

// RegisterMetrics exposes the constraint-graph instrumentation counters on
// reg, labelled with the caller's job label (obs.Labels("job", ...)). All
// series are function-backed: a render reads the live atomic counters, so
// the same registration serves both the final post-run snapshot and the
// mid-run -http metrics listener. Safe on a nil Stats (no-op).
func (s *Stats) RegisterMetrics(reg *obs.Registry, job string) {
	if s == nil || reg == nil {
		return
	}
	counter := func(name, help string, fn func() int64) {
		reg.CounterFuncVec(name, help, job, func() float64 { return float64(fn()) })
	}
	counter("psdf_cg_full_closures_total", "full transitive-closure recomputations", s.FullClosures)
	counter("psdf_cg_incr_closures_total", "incremental closure maintenance updates", s.IncrClosures)
	counter("psdf_cg_full_closures_avoided_total", "closure-preserving updates that skipped an O(n^3) pass", s.FullClosuresAvoided)
	counter("psdf_cg_arena_hits_total", "matrix acquisitions served from the size-class arena pool", s.ArenaHits)
	counter("psdf_cg_arena_misses_total", "matrix acquisitions that had to allocate", s.ArenaMisses)
	counter("psdf_cg_joins_total", "constraint-graph join operations", s.Joins)
	counter("psdf_cg_clones_avoided_total", "state clones avoided by copy-on-write", s.ClonesAvoided)
	counter("psdf_cg_cow_materializations_total", "copy-on-write materializations (shared storage actually copied)", s.CoWMaterializations)
	counter("psdf_cg_key_cache_hits_total", "shape-key cache hits", s.KeyCacheHits)
	counter("psdf_cg_key_cache_misses_total", "shape-key cache misses", s.KeyCacheMisses)
	counter("psdf_cg_sched_coalesced_total", "worklist pushes coalesced into an already-queued visit", s.SchedCoalesced)
	counter("psdf_cg_shard_contention_total", "contended configuration-table shard acquisitions", s.ShardContention)
	counter("psdf_cg_sched_steals_total", "scheduler pops stolen from a non-home shard", s.SchedSteals)
	counter("psdf_cg_batched_saved_total", "lock acquisitions saved by batched shard commits", s.BatchedSaved)
	counter("psdf_cg_closure_ns_total", "nanoseconds spent in full closures", func() int64 { return int64(s.ClosureTime()) })
	counter("psdf_cg_maintain_ns_total", "nanoseconds spent in incremental closure maintenance", func() int64 { return int64(s.MaintainTime()) })
}
