package cg

import (
	"sync"
	"sync/atomic"
)

// store is one reference-counted storage generation shared by all graphs
// cloned from each other since the last materialization: the slot table
// (slot -> atom) plus the closed difference matrix. The array backend keeps
// a single flat stride×stride []int64 (row-major, Inf = no constraint) so a
// materialization is one copy and closure loops walk contiguous memory; the
// map backend keeps the paper's "STL container" analogue for the storage
// ablation. Shared stores are never written — every mutation goes through
// Graph.materialize first — so any number of clones may read concurrently.
type store struct {
	refs  atomic.Int32
	atoms []Atom // slot -> atom, swap-with-last on Drop
	// Array backend: mat[i*stride+j] bounds slot_i - slot_j; only the
	// len(atoms)×len(atoms) top-left region is meaningful (addSlot
	// re-initializes the new row/column, so pooled matrices need no wipe).
	stride int
	mat    []int64
	// Map backend: missing key = Inf off-diagonal, 0 on the diagonal.
	sparse map[int64]int64
	// Incremental-closure frontier scratch, private to the writing graph.
	srcs, tgts []int32
}

func pairKey(i, j int) int64 { return int64(i)<<32 | int64(j) }

// minStride is the smallest flat matrix edge; strides grow by doubling, so
// the sync.Pool arenas are keyed by power-of-two size class.
const minStride = 8

// numClasses bounds the pooled size classes (minStride << (numClasses-1) =
// 16M variables; anything larger falls through to plain allocation).
const numClasses = 22

var flatPool [numClasses]sync.Pool

// strideFor returns the power-of-two stride covering n slots.
func strideFor(n int) int {
	s := minStride
	for s < n {
		s <<= 1
	}
	return s
}

// classFor returns the pool class of a power-of-two stride.
func classFor(stride int) int {
	c := 0
	for s := minStride; s < stride; s <<= 1 {
		c++
	}
	return c
}

// acquireFlat returns a private (refs=1) array-backend store with capacity
// for at least n slots, reusing a pooled arena of the right size class when
// one is available.
func acquireFlat(n int, st *Stats) *store {
	stride := strideFor(n)
	c := classFor(stride)
	if c < numClasses {
		if v := flatPool[c].Get(); v != nil {
			s := v.(*store)
			s.refs.Store(1)
			s.atoms = s.atoms[:0]
			if st != nil {
				st.arenaHits.Add(1)
			}
			return s
		}
	}
	if st != nil {
		st.arenaMisses.Add(1)
	}
	s := &store{stride: stride, mat: make([]int64, stride*stride)}
	s.refs.Store(1)
	return s
}

// newSparse returns a private map-backend store. Map stores are not pooled:
// the map backend exists as the ablation's slow comparison point.
func newSparse() *store {
	s := &store{sparse: map[int64]int64{}}
	s.refs.Store(1)
	return s
}

// release drops one reference; the last reference returns the arena to its
// size-class pool. Callers must not touch the store afterwards.
func (s *store) release() {
	if s == nil || s.refs.Add(-1) != 0 {
		return
	}
	s.recycle()
}

// recycle puts an unreferenced flat store back in its pool (map stores just
// fall to the garbage collector).
func (s *store) recycle() {
	if s.mat == nil {
		return
	}
	if c := classFor(s.stride); c < numClasses {
		flatPool[c].Put(s)
	}
}

// slot returns the slot index of atom a, or -1. A linear scan over the
// compact atom slice beats a per-store map here: slot counts are small
// (tens of variables), the scan touches one cache line per 16 atoms, and —
// unlike a map — the slice costs one bulk copy, zero rehashing and zero
// per-entry allocations on every materialization.
func (s *store) slot(a Atom) int {
	for i, x := range s.atoms {
		if x == a {
			return i
		}
	}
	return -1
}

// get returns the bound on slot_i - slot_j.
func (s *store) get(i, j int) int64 {
	if s.mat != nil {
		return s.mat[i*s.stride+j]
	}
	if v, ok := s.sparse[pairKey(i, j)]; ok {
		return v
	}
	if i == j {
		return 0
	}
	return Inf
}

// set writes the bound on slot_i - slot_j.
func (s *store) set(i, j int, v int64) {
	if s.mat != nil {
		s.mat[i*s.stride+j] = v
		return
	}
	if v >= Inf && i != j {
		delete(s.sparse, pairKey(i, j))
		return
	}
	s.sparse[pairKey(i, j)] = v
}

// addSlot appends a slot for atom a (unconstrained: Inf row/column, 0
// diagonal) and returns its index. The caller must hold the store
// privately.
func (s *store) addSlot(a Atom, st *Stats) int {
	n := len(s.atoms)
	if s.mat != nil {
		if n == s.stride {
			s.grow(st)
		}
		row := s.mat[n*s.stride : n*s.stride+n+1]
		for k := range row {
			row[k] = Inf
		}
		for i := 0; i < n; i++ {
			s.mat[i*s.stride+n] = Inf
		}
		row[n] = 0
	}
	s.atoms = append(s.atoms, a)
	return n
}

// grow doubles the matrix stride in place, recycling the outgrown arena.
func (s *store) grow(st *Stats) {
	oldMat, oldStride := s.mat, s.stride
	s.stride = oldStride * 2
	s.mat = acquireMat(s.stride, st)
	n := len(s.atoms)
	for i := 0; i < n; i++ {
		copy(s.mat[i*s.stride:i*s.stride+n], oldMat[i*oldStride:i*oldStride+n])
	}
	husk := &store{stride: oldStride, mat: oldMat}
	husk.recycle()
}

// acquireMat returns a bare stride×stride matrix, stealing one from the
// pool when possible.
func acquireMat(stride int, st *Stats) []int64 {
	if c := classFor(stride); c < numClasses {
		if v := flatPool[c].Get(); v != nil {
			if st != nil {
				st.arenaHits.Add(1)
			}
			return v.(*store).mat
		}
	}
	if st != nil {
		st.arenaMisses.Add(1)
	}
	return make([]int64, stride*stride)
}
