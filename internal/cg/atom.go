package cg

import "sync"

// Atom is a process-wide interned variable name. Graphs store atoms, not
// strings, so the hot closure/entailment paths never hash or compare string
// contents; the one string hash per name happens at the interner, once per
// process. Atoms are dense (0, 1, 2, ...) in first-intern order, and
// AtomZero — the distinguished ZeroVar — is always atom 0.
type Atom uint32

// atomTab is the process-wide symbol table. It only grows; names are never
// removed, so a snapshot of the names slice taken under the read lock stays
// valid forever (appends may move the backing array, but every atom already
// interned indexes into the snapshot).
var atomTab = struct {
	sync.RWMutex
	ids   map[string]Atom
	names []string
}{ids: map[string]Atom{}}

// AtomZero is the interned ZeroVar ($0), fixed at atom 0 by init order.
var AtomZero = Intern(ZeroVar)

// Intern returns the atom for name, assigning the next dense id on first
// sight. Safe for concurrent use.
func Intern(name string) Atom {
	atomTab.RLock()
	a, ok := atomTab.ids[name]
	atomTab.RUnlock()
	if ok {
		return a
	}
	atomTab.Lock()
	defer atomTab.Unlock()
	if a, ok := atomTab.ids[name]; ok {
		return a
	}
	a = Atom(len(atomTab.names))
	atomTab.names = append(atomTab.names, name)
	atomTab.ids[name] = a
	return a
}

// LookupAtom returns the atom for name without interning it, so read-only
// queries against arbitrary strings do not grow the symbol table.
func LookupAtom(name string) (Atom, bool) {
	atomTab.RLock()
	a, ok := atomTab.ids[name]
	atomTab.RUnlock()
	return a, ok
}

// String returns the interned name.
func (a Atom) String() string {
	atomTab.RLock()
	n := atomTab.names[a]
	atomTab.RUnlock()
	return n
}

// atomNames returns a read snapshot of the name table. Every atom interned
// before the call indexes validly into the returned slice.
func atomNames() []string {
	atomTab.RLock()
	n := atomTab.names
	atomTab.RUnlock()
	return n
}
