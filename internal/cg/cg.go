// Package cg implements constraint graphs: conjunctions of difference
// inequalities x <= y + c over named integer variables, the dataflow state
// representation of the paper's Section VII client analysis (following CLR
// ch. 25.5 and Shaham et al).
//
// The graph is kept transitively closed so entailment queries are O(1)
// lookups. Closure is maintained two ways, mirroring the two variants
// profiled in the paper's Section IX:
//
//   - a full O(n^3) Floyd-Warshall pass (FullClose), and
//   - an O(n^2) incremental update applied when a single constraint is
//     added to an already-closed graph (AddLE).
//
// Both are instrumented (invocation counts, variable counts, wall time) so
// the benchmark harness can regenerate the paper's profile. Two storage
// backends are provided — a dense array matrix and a Go map — reproducing
// the paper's observation that container-based storage is much slower than
// arrays for this workload.
package cg

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Inf is the internal "no constraint" bound. It is kept far from the int64
// limits so additions cannot overflow.
const Inf = math.MaxInt64 / 4

// ZeroVar is the distinguished variable fixed at 0; constraints against it
// encode unary bounds (x <= c is x - ZeroVar <= c).
const ZeroVar = "$0"

// Backend selects the storage strategy for the closed difference matrix.
type Backend int

// Available backends.
const (
	// ArrayBackend stores bounds in a dense [][]int64 matrix.
	ArrayBackend Backend = iota
	// MapBackend stores bounds in a Go map keyed by variable pair — the
	// "STL container" analogue from the paper's Section IX discussion.
	MapBackend
)

func (b Backend) String() string {
	switch b {
	case ArrayBackend:
		return "array"
	case MapBackend:
		return "map"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// Stats accumulates closure instrumentation, shared across all graphs
// created from the same Options so an entire analysis run can be profiled.
// All counters are updated atomically, so one Stats may be shared across
// graphs used by concurrent analyses (the AnalyzeAll worker pool); for
// contention-free accounting, give each worker its own Stats and combine
// them with Merge.
type Stats struct {
	fullClosures  atomic.Int64 // number of O(n^3) closure passes
	fullVarsSum   atomic.Int64 // sum of variable counts over those passes
	incrClosures  atomic.Int64 // number of O(n^2) incremental updates
	incrVarsSum   atomic.Int64 // sum of variable counts over those updates
	closureTimeNs atomic.Int64 // total wall time inside closure code
	// State-maintenance accounting beyond closure: joins, widenings and
	// graph copies, the other costs of keeping the dataflow state at each
	// pCFG node consistent (the paper's Section IX "92.5%" covers all of
	// this).
	joins          atomic.Int64
	joinVarsSum    atomic.Int64
	maintainTimeNs atomic.Int64 // join + widen + materialization wall time
	// Copy-on-write accounting: clones that stayed O(1) reference bumps and
	// the shared matrices that were eventually materialized by a write.
	clonesAvoided       atomic.Int64
	cowMaterializations atomic.Int64
	// Parallel-engine accounting: canonical-key serializations served from
	// the per-state cache vs rebuilt, worklist pushes coalesced into an
	// already-queued configuration (re-visits the scheduler saved), and
	// configuration-table shard lock acquisitions that had to wait.
	keyCacheHits    atomic.Int64
	keyCacheMisses  atomic.Int64
	schedCoalesced  atomic.Int64
	shardContention atomic.Int64
}

// FullClosures returns the number of O(n^3) closure passes.
func (s *Stats) FullClosures() int64 { return s.fullClosures.Load() }

// IncrClosures returns the number of O(n^2) incremental updates.
func (s *Stats) IncrClosures() int64 { return s.incrClosures.Load() }

// Joins returns the number of join/widen operations.
func (s *Stats) Joins() int64 { return s.joins.Load() }

// ClonesAvoided returns how many Clone calls stayed O(1) reference bumps
// instead of deep matrix copies.
func (s *Stats) ClonesAvoided() int64 { return s.clonesAvoided.Load() }

// CoWMaterializations returns how many shared matrices were deep-copied on
// first write.
func (s *Stats) CoWMaterializations() int64 { return s.cowMaterializations.Load() }

// KeyCacheHits returns how many FullKey/ShapeKey requests were served from
// the per-state key cache.
func (s *Stats) KeyCacheHits() int64 { return s.keyCacheHits.Load() }

// KeyCacheMisses returns how many FullKey/ShapeKey requests rebuilt the key.
func (s *Stats) KeyCacheMisses() int64 { return s.keyCacheMisses.Load() }

// KeyCacheHitRate returns the fraction of key requests served from cache.
func (s *Stats) KeyCacheHitRate() float64 {
	h, m := s.keyCacheHits.Load(), s.keyCacheMisses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// SchedCoalesced returns how many worklist pushes were absorbed into an
// already-queued configuration — re-visits the scheduler saved.
func (s *Stats) SchedCoalesced() int64 { return s.schedCoalesced.Load() }

// ShardContention returns how many shard lock acquisitions found the lock
// already held (parallel engine only).
func (s *Stats) ShardContention() int64 { return s.shardContention.Load() }

// AddKeyCacheHits bumps the key-cache hit counter. Safe on a nil receiver.
func (s *Stats) AddKeyCacheHits(n int64) {
	if s != nil {
		s.keyCacheHits.Add(n)
	}
}

// AddKeyCacheMisses bumps the key-cache miss counter. Safe on a nil receiver.
func (s *Stats) AddKeyCacheMisses(n int64) {
	if s != nil {
		s.keyCacheMisses.Add(n)
	}
}

// AddSchedCoalesced bumps the coalesced-push counter. Safe on a nil receiver.
func (s *Stats) AddSchedCoalesced(n int64) {
	if s != nil {
		s.schedCoalesced.Add(n)
	}
}

// AddShardContention bumps the shard-contention counter. Safe on a nil
// receiver.
func (s *Stats) AddShardContention(n int64) {
	if s != nil {
		s.shardContention.Add(n)
	}
}

// ClosureTime returns total wall time inside closure code.
func (s *Stats) ClosureTime() time.Duration { return time.Duration(s.closureTimeNs.Load()) }

// MaintainTime returns join + widen + materialization wall time.
func (s *Stats) MaintainTime() time.Duration { return time.Duration(s.maintainTimeNs.Load()) }

// AvgJoinVars returns the mean variable count per join/widen.
func (s *Stats) AvgJoinVars() float64 {
	if s.joins.Load() == 0 {
		return 0
	}
	return float64(s.joinVarsSum.Load()) / float64(s.joins.Load())
}

// MaintenanceTime returns all time spent keeping dataflow state consistent
// (closure plus join/widen/materialization).
func (s *Stats) MaintenanceTime() time.Duration { return s.ClosureTime() + s.MaintainTime() }

// AvgFullVars returns the mean variable count per full closure.
func (s *Stats) AvgFullVars() float64 {
	if s.fullClosures.Load() == 0 {
		return 0
	}
	return float64(s.fullVarsSum.Load()) / float64(s.fullClosures.Load())
}

// AvgIncrVars returns the mean variable count per incremental update.
func (s *Stats) AvgIncrVars() float64 {
	if s.incrClosures.Load() == 0 {
		return 0
	}
	return float64(s.incrVarsSum.Load()) / float64(s.incrClosures.Load())
}

// Merge folds the counters of o into s (the sharded-and-merged pattern for
// per-worker stats).
func (s *Stats) Merge(o *Stats) {
	s.fullClosures.Add(o.fullClosures.Load())
	s.fullVarsSum.Add(o.fullVarsSum.Load())
	s.incrClosures.Add(o.incrClosures.Load())
	s.incrVarsSum.Add(o.incrVarsSum.Load())
	s.closureTimeNs.Add(o.closureTimeNs.Load())
	s.joins.Add(o.joins.Load())
	s.joinVarsSum.Add(o.joinVarsSum.Load())
	s.maintainTimeNs.Add(o.maintainTimeNs.Load())
	s.clonesAvoided.Add(o.clonesAvoided.Load())
	s.cowMaterializations.Add(o.cowMaterializations.Load())
	s.keyCacheHits.Add(o.keyCacheHits.Load())
	s.keyCacheMisses.Add(o.keyCacheMisses.Load())
	s.schedCoalesced.Add(o.schedCoalesced.Load())
	s.shardContention.Add(o.shardContention.Load())
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.fullClosures.Store(0)
	s.fullVarsSum.Store(0)
	s.incrClosures.Store(0)
	s.incrVarsSum.Store(0)
	s.closureTimeNs.Store(0)
	s.joins.Store(0)
	s.joinVarsSum.Store(0)
	s.maintainTimeNs.Store(0)
	s.clonesAvoided.Store(0)
	s.cowMaterializations.Store(0)
	s.keyCacheHits.Store(0)
	s.keyCacheMisses.Store(0)
	s.schedCoalesced.Store(0)
	s.shardContention.Store(0)
}

// Options configures graph construction.
type Options struct {
	Backend Backend
	Stats   *Stats // optional shared instrumentation
}

// Graph is a transitively closed difference-constraint store. The zero
// value is not usable; call New.
//
// Graphs are copy-on-write: Clone is an O(1) reference bump that shares the
// variable table and the closed matrix with the original, and the first
// mutating operation on either graph (AddLE, Forget, Drop, Shift, Rename,
// FullClose) materializes a private copy. Shared storage is never written,
// so any number of clones may be read concurrently; each individual graph
// is still single-writer, as before.
type Graph struct {
	opts       Options
	names      []string
	ids        map[string]int
	dense      [][]int64       // ArrayBackend
	sparse     map[int64]int64 // MapBackend; missing key = Inf
	consistent bool
	cow        *cowRef // sharing record for names/ids/dense/sparse
	// ver counts content mutations of this graph struct. Callers that cache
	// renderings derived from the graph (core.State's canonical keys) pair
	// it with the graph's identity to detect staleness. Clone copies the
	// current version; the clone and the original then version
	// independently.
	ver uint64
}

// cowRef counts the graphs sharing one storage generation. The count is
// atomic so clones handed to different analysis goroutines (the AnalyzeAll
// driver) materialize safely.
type cowRef struct{ refs atomic.Int32 }

func newCowRef() *cowRef {
	c := &cowRef{}
	c.refs.Store(1)
	return c
}

func pairKey(i, j int) int64 { return int64(i)<<32 | int64(j) }

// New returns an empty, consistent graph containing only ZeroVar.
func New(opts Options) *Graph {
	g := &Graph{opts: opts, ids: map[string]int{}, consistent: true, cow: newCowRef()}
	if opts.Backend == MapBackend {
		g.sparse = map[int64]int64{}
	}
	g.intern(ZeroVar)
	return g
}

// NewDefault returns a graph with the array backend and no shared stats.
func NewDefault() *Graph { return New(Options{}) }

// materialize gives g private storage before a mutation. A graph whose
// storage is unshared mutates in place; a shared one deep-copies the
// variable table and matrix first (the deferred cost of an earlier O(1)
// Clone).
func (g *Graph) materialize() {
	// Every content mutation passes through here before writing, so this is
	// the one place (plus the AddLE/MarkInconsistent early-outs that flip
	// consistency without touching storage) that advances the version.
	g.ver++
	if g.cow.refs.Load() == 1 {
		return
	}
	start := time.Now()
	names := append(make([]string, 0, len(g.names)), g.names...)
	ids := make(map[string]int, len(g.ids))
	for k, v := range g.ids {
		ids[k] = v
	}
	if g.opts.Backend == ArrayBackend {
		dense := make([][]int64, len(g.dense))
		for i, row := range g.dense {
			dense[i] = append(make([]int64, 0, len(row)), row...)
		}
		g.dense = dense
	} else {
		sparse := make(map[int64]int64, len(g.sparse))
		for k, v := range g.sparse {
			sparse[k] = v
		}
		g.sparse = sparse
	}
	g.names, g.ids = names, ids
	g.cow.refs.Add(-1)
	g.cow = newCowRef()
	if st := g.opts.Stats; st != nil {
		st.cowMaterializations.Add(1)
		st.maintainTimeNs.Add(int64(time.Since(start)))
	}
}

// intern returns the id for name, adding the variable if needed.
func (g *Graph) intern(name string) int {
	if id, ok := g.ids[name]; ok {
		return id
	}
	g.materialize()
	id := len(g.names)
	g.names = append(g.names, name)
	g.ids[name] = id
	if g.opts.Backend == ArrayBackend {
		for i := range g.dense {
			g.dense[i] = append(g.dense[i], Inf)
		}
		row := make([]int64, id+1)
		for j := range row {
			row[j] = Inf
		}
		g.dense = append(g.dense, row)
		g.dense[id][id] = 0
	}
	return id
}

func (g *Graph) get(i, j int) int64 {
	if i == j {
		if g.opts.Backend == ArrayBackend {
			return g.dense[i][j]
		}
		if v, ok := g.sparse[pairKey(i, j)]; ok {
			return v
		}
		return 0
	}
	if g.opts.Backend == ArrayBackend {
		return g.dense[i][j]
	}
	if v, ok := g.sparse[pairKey(i, j)]; ok {
		return v
	}
	return Inf
}

func (g *Graph) set(i, j int, v int64) {
	if g.opts.Backend == ArrayBackend {
		g.dense[i][j] = v
		return
	}
	if v >= Inf && i != j {
		delete(g.sparse, pairKey(i, j))
		return
	}
	g.sparse[pairKey(i, j)] = v
}

// NumVars returns the number of interned variables (including ZeroVar).
func (g *Graph) NumVars() int { return len(g.names) }

// Vars returns all variable names except ZeroVar, sorted.
func (g *Graph) Vars() []string {
	out := make([]string, 0, len(g.names)-1)
	for _, n := range g.names {
		if n != ZeroVar {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// HasVar reports whether name has been interned.
func (g *Graph) HasVar(name string) bool {
	_, ok := g.ids[name]
	return ok
}

// Consistent reports whether the constraints are satisfiable.
func (g *Graph) Consistent() bool { return g.consistent }

// MarkInconsistent forces the graph into the unsatisfiable state.
func (g *Graph) MarkInconsistent() {
	g.consistent = false
	g.ver++
}

// Version returns the mutation counter for this graph struct. Paired with
// the *Graph identity it tells cached-key holders whether the graph has
// changed since the key was built.
func (g *Graph) Version() uint64 { return g.ver }

// StatsHandle returns the shared instrumentation sink, or nil.
func (g *Graph) StatsHandle() *Stats { return g.opts.Stats }

// AddVar ensures name is present (unconstrained if new).
func (g *Graph) AddVar(name string) { g.intern(name) }

// AddLE adds the constraint x <= y + c (x - y <= c), maintaining closure
// with the O(n^2) incremental algorithm. Either side may be ZeroVar.
// Returns false if the constraint makes the graph inconsistent.
func (g *Graph) AddLE(x, y string, c int64) bool {
	if !g.consistent {
		return false
	}
	i, j := g.intern(x), g.intern(y)
	if i == j {
		if c < 0 {
			g.consistent = false
			g.ver++
		}
		return g.consistent
	}
	if g.get(i, j) <= c {
		return true // already entailed
	}
	// Inconsistency: existing bound j - i <= d with c + d < 0.
	if d := g.get(j, i); d < Inf && c+d < 0 {
		g.consistent = false
		g.ver++
		return false
	}
	g.materialize()
	g.set(i, j, c)
	g.incrementalClose(i, j)
	return g.consistent
}

// AddEq adds x = y + c.
func (g *Graph) AddEq(x, y string, c int64) bool {
	return g.AddLE(x, y, c) && g.AddLE(y, x, -c)
}

// SetConst adds x = c.
func (g *Graph) SetConst(x string, c int64) bool { return g.AddEq(x, ZeroVar, c) }

// incrementalClose restores closure after tightening edge (i,j): for every
// pair (a,b), a->i->j->b may now be shorter. O(n^2).
func (g *Graph) incrementalClose(i, j int) {
	start := time.Now()
	n := len(g.names)
	w := g.get(i, j)
	for a := 0; a < n; a++ {
		dai := g.get(a, i)
		if dai >= Inf {
			continue
		}
		through := dai + w
		for b := 0; b < n; b++ {
			djb := g.get(j, b)
			if djb >= Inf {
				continue
			}
			cand := through + djb
			if cand < g.get(a, b) {
				g.set(a, b, cand)
				if a == b && cand < 0 {
					g.consistent = false
				}
			}
		}
	}
	if st := g.opts.Stats; st != nil {
		st.incrClosures.Add(1)
		st.incrVarsSum.Add(int64(n))
		st.closureTimeNs.Add(int64(time.Since(start)))
	}
}

// FullClose recomputes the transitive closure with Floyd-Warshall, O(n^3).
// Needed after bulk edits (Join, Widen do not require it; Forget uses it).
func (g *Graph) FullClose() {
	start := time.Now()
	g.materialize()
	n := len(g.names)
	for k := 0; k < n; k++ {
		for a := 0; a < n; a++ {
			dak := g.get(a, k)
			if dak >= Inf {
				continue
			}
			for b := 0; b < n; b++ {
				dkb := g.get(k, b)
				if dkb >= Inf {
					continue
				}
				if cand := dak + dkb; cand < g.get(a, b) {
					g.set(a, b, cand)
				}
			}
		}
	}
	for a := 0; a < n; a++ {
		if g.get(a, a) < 0 {
			g.consistent = false
		}
	}
	if st := g.opts.Stats; st != nil {
		st.fullClosures.Add(1)
		st.fullVarsSum.Add(int64(n))
		st.closureTimeNs.Add(int64(time.Since(start)))
	}
}

// DiffBound returns the tightest known bound on x - y, with ok=false when
// unconstrained or either variable is unknown.
func (g *Graph) DiffBound(x, y string) (int64, bool) {
	i, okx := g.ids[x]
	j, oky := g.ids[y]
	if !okx || !oky {
		return 0, false
	}
	b := g.get(i, j)
	if b >= Inf {
		return 0, false
	}
	return b, true
}

// Entails reports whether the graph implies x <= y + c. An inconsistent
// graph entails everything.
func (g *Graph) Entails(x, y string, c int64) bool {
	if !g.consistent {
		return true
	}
	if x == y {
		return c >= 0
	}
	b, ok := g.DiffBound(x, y)
	return ok && b <= c
}

// EntailsLT reports whether the graph implies x < y + c.
func (g *Graph) EntailsLT(x, y string, c int64) bool { return g.Entails(x, y, c-1) }

// ConstVal returns the exact known value of x, if the graph pins it.
func (g *Graph) ConstVal(x string) (int64, bool) {
	hi, ok1 := g.DiffBound(x, ZeroVar)
	lo, ok2 := g.DiffBound(ZeroVar, x)
	if ok1 && ok2 && hi == -lo {
		return hi, true
	}
	return 0, false
}

// EqualWitnesses returns, for variable x, every pair (y, c) with the graph
// entailing x = y + c, including (ZeroVar, v) when x has a known constant
// value. x itself is excluded. Results are sorted by variable name.
func (g *Graph) EqualWitnesses(x string) []Witness {
	i, ok := g.ids[x]
	if !ok || !g.consistent {
		return nil
	}
	var out []Witness
	for j, name := range g.names {
		if j == i {
			continue
		}
		up := g.get(i, j)
		down := g.get(j, i)
		if up < Inf && down < Inf && up == -down {
			out = append(out, Witness{Var: name, C: up})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Var < out[b].Var })
	return out
}

// Witness records the fact x = Var + C for some subject variable x.
type Witness struct {
	Var string
	C   int64
}

// ForEachBound calls fn for every finite off-diagonal bound x - y <= c in
// the closed graph, in deterministic (interning) order.
func (g *Graph) ForEachBound(fn func(x, y string, c int64)) {
	n := len(g.names)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if b := g.get(i, j); b < Inf {
				fn(g.names[i], g.names[j], b)
			}
		}
	}
}

// Forget removes all constraints mentioning x while preserving everything
// entailed between other variables (the graph is already closed, so simply
// resetting x's row and column is a sound projection).
func (g *Graph) Forget(x string) {
	i, ok := g.ids[x]
	if !ok {
		return
	}
	g.materialize()
	n := len(g.names)
	for a := 0; a < n; a++ {
		if a != i {
			g.set(i, a, Inf)
			g.set(a, i, Inf)
		}
	}
	g.set(i, i, 0)
}

// Drop removes variable x entirely from the graph (Forget plus deletion of
// the slot). All other constraints are preserved.
func (g *Graph) Drop(x string) {
	i, ok := g.ids[x]
	if !ok || x == ZeroVar {
		return
	}
	g.Forget(x) // materializes
	last := len(g.names) - 1
	if g.opts.Backend == ArrayBackend {
		if i != last {
			lastName := g.names[last]
			for a := 0; a < len(g.names); a++ {
				g.dense[a][i] = g.dense[a][last]
				g.dense[i][a] = g.dense[last][a]
			}
			g.dense[i][i] = g.dense[last][last]
			g.names[i] = lastName
			g.ids[lastName] = i
		}
		g.dense = g.dense[:last]
		for a := range g.dense {
			g.dense[a] = g.dense[a][:last]
		}
	} else {
		delete(g.sparse, pairKey(i, i))
		if i != last {
			lastName := g.names[last]
			for a := 0; a < len(g.names); a++ {
				if v, ok := g.sparse[pairKey(a, last)]; ok {
					delete(g.sparse, pairKey(a, last))
					if a == last {
						g.sparse[pairKey(i, i)] = v
					} else {
						g.sparse[pairKey(a, i)] = v
					}
				}
				if v, ok := g.sparse[pairKey(last, a)]; ok {
					delete(g.sparse, pairKey(last, a))
					if a != last {
						g.sparse[pairKey(i, a)] = v
					}
				}
			}
			g.names[i] = lastName
			g.ids[lastName] = i
		}
	}
	g.names = g.names[:last]
	delete(g.ids, x)
}

// Shift applies the invertible assignment x := x + k: every bound involving
// x moves by k. Closure is preserved.
func (g *Graph) Shift(x string, k int64) {
	i, ok := g.ids[x]
	if !ok {
		g.intern(x)
		return
	}
	g.materialize()
	n := len(g.names)
	for a := 0; a < n; a++ {
		if a == i {
			continue
		}
		if b := g.get(i, a); b < Inf {
			g.set(i, a, b+k)
		}
		if b := g.get(a, i); b < Inf {
			g.set(a, i, b-k)
		}
	}
}

// Rename changes variable old to new (new must not exist yet).
func (g *Graph) Rename(old, new string) {
	if old == new {
		return
	}
	i, ok := g.ids[old]
	if !ok {
		return
	}
	if _, exists := g.ids[new]; exists {
		panic(fmt.Sprintf("cg: Rename target %q already exists", new))
	}
	g.materialize()
	delete(g.ids, old)
	g.ids[new] = i
	g.names[i] = new
}

// Clone returns a logical copy sharing Options (and therefore Stats).
// Cloning is O(1): the variable table and matrix storage are shared
// copy-on-write between the original and the clone, and the first mutating
// operation on either side materializes a private copy (see materialize).
func (g *Graph) Clone() *Graph {
	g.cow.refs.Add(1)
	if st := g.opts.Stats; st != nil {
		st.clonesAvoided.Add(1)
	}
	return &Graph{
		opts:       g.opts,
		names:      g.names,
		ids:        g.ids,
		dense:      g.dense,
		sparse:     g.sparse,
		consistent: g.consistent,
		cow:        g.cow,
	}
}

// alignVars makes both graphs contain the union of their variables.
func alignVars(a, b *Graph) {
	for _, n := range a.names {
		b.intern(n)
	}
	for _, n := range b.names {
		a.intern(n)
	}
}

// Join returns the least upper bound (convex hull) of a and b: pointwise
// maximum of the closed matrices. If either side is inconsistent the other
// is returned (bottom is the identity of join).
func Join(a, b *Graph) *Graph {
	if !a.consistent {
		return b.Clone()
	}
	if !b.consistent {
		return a.Clone()
	}
	start := time.Now()
	defer func() {
		if st := a.opts.Stats; st != nil {
			st.joins.Add(1)
			st.joinVarsSum.Add(int64(len(a.names)))
			st.maintainTimeNs.Add(int64(time.Since(start)))
		}
	}()
	ra, rb := a.Clone(), b.Clone()
	alignVars(ra, rb)
	ra.materialize()
	n := len(ra.names)
	for i := 0; i < n; i++ {
		ji := rb.ids[ra.names[i]]
		for j := 0; j < n; j++ {
			jj := rb.ids[ra.names[j]]
			va := ra.get(i, j)
			vb := rb.get(ji, jj)
			if vb > va {
				ra.set(i, j, vb)
			}
		}
	}
	// Pointwise max of closed matrices is closed; no re-closure needed.
	return ra
}

// Widen returns a widened with b: bounds of a that b does not respect are
// dropped to Inf, guaranteeing a finite ascending chain. The result is not
// re-closed (closing after widening would defeat termination).
func Widen(a, b *Graph) *Graph {
	if !a.consistent {
		return b.Clone()
	}
	if !b.consistent {
		return a.Clone()
	}
	start := time.Now()
	defer func() {
		if st := a.opts.Stats; st != nil {
			st.joins.Add(1)
			st.joinVarsSum.Add(int64(len(a.names)))
			st.maintainTimeNs.Add(int64(time.Since(start)))
		}
	}()
	ra, rb := a.Clone(), b.Clone()
	alignVars(ra, rb)
	ra.materialize()
	n := len(ra.names)
	for i := 0; i < n; i++ {
		ji := rb.ids[ra.names[i]]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			jj := rb.ids[ra.names[j]]
			if rb.get(ji, jj) > ra.get(i, j) {
				ra.set(i, j, Inf)
			}
		}
	}
	return ra
}

// Leq reports whether a entails all constraints of b (a is at least as
// precise, i.e. a ⊑ b in the may-analysis lattice ordered by precision).
func Leq(a, b *Graph) bool {
	if !a.consistent {
		return true
	}
	if !b.consistent {
		return false
	}
	for i, ni := range b.names {
		for j, nj := range b.names {
			if i == j {
				continue
			}
			vb := b.get(i, j)
			if vb >= Inf {
				continue
			}
			ia, oki := a.ids[ni]
			ja, okj := a.ids[nj]
			if !oki || !okj || a.get(ia, ja) > vb {
				return false
			}
		}
	}
	return true
}

// Equal reports mutual entailment over the union of variables.
func Equal(a, b *Graph) bool { return Leq(a, b) && Leq(b, a) }

// String renders all non-trivial constraints, sorted, e.g.
// "i <= np - 1; x = 5".
func (g *Graph) String() string {
	if !g.consistent {
		return "inconsistent"
	}
	var parts []string
	n := len(g.names)
	done := map[[2]int]bool{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || done[[2]int{i, j}] {
				continue
			}
			up := g.get(i, j)
			if up >= Inf {
				continue
			}
			down := g.get(j, i)
			if down < Inf && down == -up {
				done[[2]int{j, i}] = true
				parts = append(parts, renderEq(g.names[i], g.names[j], up))
			} else {
				parts = append(parts, renderLE(g.names[i], g.names[j], up))
			}
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, "; ")
}

func renderEq(x, y string, c int64) string {
	if y == ZeroVar {
		return fmt.Sprintf("%s = %d", x, c)
	}
	if x == ZeroVar {
		return renderEq(y, ZeroVar, -c)
	}
	switch {
	case c == 0:
		return fmt.Sprintf("%s = %s", x, y)
	case c > 0:
		return fmt.Sprintf("%s = %s + %d", x, y, c)
	default:
		return fmt.Sprintf("%s = %s - %d", x, y, -c)
	}
}

func renderLE(x, y string, c int64) string {
	if y == ZeroVar {
		return fmt.Sprintf("%s <= %d", x, c)
	}
	if x == ZeroVar {
		return fmt.Sprintf("%s >= %d", y, -c)
	}
	switch {
	case c == 0:
		return fmt.Sprintf("%s <= %s", x, y)
	case c > 0:
		return fmt.Sprintf("%s <= %s + %d", x, y, c)
	default:
		return fmt.Sprintf("%s <= %s - %d", x, y, -c)
	}
}
