// Package cg implements constraint graphs: conjunctions of difference
// inequalities x <= y + c over named integer variables, the dataflow state
// representation of the paper's Section VII client analysis (following CLR
// ch. 25.5 and Shaham et al).
//
// The graph is kept transitively closed so entailment queries are O(1)
// lookups. Closure is maintained two ways, mirroring the two variants
// profiled in the paper's Section IX:
//
//   - a full O(n^3) Floyd-Warshall pass (FullClose), and
//   - a changed-frontier incremental update applied when a single
//     constraint is added to an already-closed graph (AddLE): the affected
//     sources (rows whose bound to the new edge's head tightened) are
//     crossed only with the affected targets, so an insertion that changes
//     little does O(changed) work instead of O(n^2).
//
// Both are instrumented (invocation counts, variable counts, wall time) so
// the benchmark harness can regenerate the paper's profile. Two storage
// backends are provided — a single flat []int64 matrix and a Go map —
// reproducing the paper's observation that container-based storage is much
// slower than arrays for this workload. Variable names are interned
// process-wide into dense Atom ids (see atom.go); per-graph state is a
// compact slot table over atoms plus the matrix, both arena-pooled (see
// store.go).
package cg

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Inf is the internal "no constraint" bound. It is kept far from the int64
// limits so additions cannot overflow.
const Inf = math.MaxInt64 / 4

// ZeroVar is the distinguished variable fixed at 0; constraints against it
// encode unary bounds (x <= c is x - ZeroVar <= c).
const ZeroVar = "$0"

// Backend selects the storage strategy for the closed difference matrix.
type Backend int

// Available backends.
const (
	// ArrayBackend stores bounds in one flat stride-indexed []int64 matrix.
	ArrayBackend Backend = iota
	// MapBackend stores bounds in a Go map keyed by variable pair — the
	// "STL container" analogue from the paper's Section IX discussion.
	MapBackend
)

func (b Backend) String() string {
	switch b {
	case ArrayBackend:
		return "array"
	case MapBackend:
		return "map"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// Options configures graph construction.
type Options struct {
	Backend Backend
	Stats   *Stats // optional shared instrumentation
}

// Graph is a transitively closed difference-constraint store. The zero
// value is not usable; call New.
//
// Graphs are copy-on-write: Clone is an O(1) reference bump that shares the
// slot table and the closed matrix with the original, and the first
// mutating operation on either graph (AddLE, Forget, Drop, Shift, Rename,
// FullClose) materializes a private copy. Shared storage is never written,
// so any number of clones may be read concurrently; each individual graph
// is still single-writer, as before.
//
// A graph whose lifetime is over may be returned to the storage arena with
// Release; this is an optimization, not an obligation — an unreleased graph
// is simply collected by the GC.
type Graph struct {
	opts       Options
	s          *store
	consistent bool
	// ver counts content mutations of this graph struct. Callers that cache
	// renderings derived from the graph (core.State's canonical keys) pair
	// it with the graph's identity to detect staleness. Clone copies the
	// current version; the clone and the original then version
	// independently.
	ver uint64
}

// New returns an empty, consistent graph containing only ZeroVar.
func New(opts Options) *Graph {
	g := &Graph{opts: opts, consistent: true}
	if opts.Backend == MapBackend {
		g.s = newSparse()
	} else {
		g.s = acquireFlat(1, opts.Stats)
	}
	g.s.addSlot(AtomZero, opts.Stats)
	return g
}

// NewDefault returns a graph with the array backend and no shared stats.
func NewDefault() *Graph { return New(Options{}) }

// Release returns the graph's storage to the size-class arena once the last
// graph sharing it is released. The graph must not be used afterwards
// (every operation will panic loudly rather than corrupt a recycled
// arena). Release is idempotent and safe on nil.
func (g *Graph) Release() {
	if g == nil || g.s == nil {
		return
	}
	g.s.release()
	g.s = nil
}

// materialize gives g private storage before a mutation. A graph whose
// storage is unshared mutates in place; a shared one copies the slot table
// and matrix first (the deferred cost of an earlier O(1) Clone) — for the
// array backend that copy is a single memcpy of the active rows into an
// arena-pooled matrix.
func (g *Graph) materialize() {
	// Every content mutation passes through here before writing, so this is
	// the one place (plus the AddLE/MarkInconsistent early-outs that flip
	// consistency without touching storage) that advances the version.
	g.ver++
	s := g.s
	if s.refs.Load() == 1 {
		return
	}
	start := time.Now()
	n := len(s.atoms)
	var ns *store
	if s.mat != nil {
		ns = acquireFlat(n, g.opts.Stats)
		if ns.stride == s.stride {
			copy(ns.mat, s.mat[:n*s.stride])
		} else {
			for i := 0; i < n; i++ {
				copy(ns.mat[i*ns.stride:i*ns.stride+n], s.mat[i*s.stride:i*s.stride+n])
			}
		}
	} else {
		ns = newSparse()
		for k, v := range s.sparse {
			ns.sparse[k] = v
		}
	}
	ns.atoms = append(ns.atoms[:0], s.atoms...)
	g.s = ns
	// Copy strictly before dropping the old reference: the decrement may
	// recycle the shared arena into the pool.
	s.release()
	if st := g.opts.Stats; st != nil {
		st.cowMaterializations.Add(1)
		st.maintainTimeNs.Add(int64(time.Since(start)))
	}
}

// slotIntern returns the slot for atom a, adding the variable if needed.
func (g *Graph) slotIntern(a Atom) int {
	if i := g.s.slot(a); i >= 0 {
		return i
	}
	g.materialize()
	return g.s.addSlot(a, g.opts.Stats)
}

// NumVars returns the number of interned variables (including ZeroVar).
func (g *Graph) NumVars() int { return len(g.s.atoms) }

// Vars returns all variable names except ZeroVar, sorted.
func (g *Graph) Vars() []string {
	names := atomNames()
	out := make([]string, 0, len(g.s.atoms)-1)
	for _, a := range g.s.atoms {
		if a != AtomZero {
			out = append(out, names[a])
		}
	}
	sort.Strings(out)
	return out
}

// HasVar reports whether name has been interned into this graph.
func (g *Graph) HasVar(name string) bool {
	a, ok := LookupAtom(name)
	return ok && g.s.slot(a) >= 0
}

// HasVarA reports whether atom a has a slot in this graph.
func (g *Graph) HasVarA(a Atom) bool { return g.s.slot(a) >= 0 }

// Consistent reports whether the constraints are satisfiable.
func (g *Graph) Consistent() bool { return g.consistent }

// MarkInconsistent forces the graph into the unsatisfiable state.
func (g *Graph) MarkInconsistent() {
	g.consistent = false
	g.ver++
}

// Version returns the mutation counter for this graph struct. Paired with
// the *Graph identity it tells cached-key holders whether the graph has
// changed since the key was built.
func (g *Graph) Version() uint64 { return g.ver }

// StatsHandle returns the shared instrumentation sink, or nil.
func (g *Graph) StatsHandle() *Stats { return g.opts.Stats }

// AddVar ensures name is present (unconstrained if new).
func (g *Graph) AddVar(name string) { g.slotIntern(Intern(name)) }

// AddVarA ensures atom a is present (unconstrained if new).
func (g *Graph) AddVarA(a Atom) { g.slotIntern(a) }

// AddLE adds the constraint x <= y + c (x - y <= c), maintaining closure
// with the changed-frontier incremental algorithm. Either side may be
// ZeroVar. Returns false if the constraint makes the graph inconsistent.
func (g *Graph) AddLE(x, y string, c int64) bool {
	return g.AddLEA(Intern(x), Intern(y), c)
}

// AddLEA is AddLE over interned atoms — the allocation-free hot path.
func (g *Graph) AddLEA(x, y Atom, c int64) bool {
	if !g.consistent {
		return false
	}
	i, j := g.slotIntern(x), g.slotIntern(y)
	if i == j {
		if c < 0 {
			g.consistent = false
			g.ver++
		}
		return g.consistent
	}
	if g.s.get(i, j) <= c {
		return true // already entailed
	}
	// Inconsistency: existing bound j - i <= d with c + d < 0.
	if d := g.s.get(j, i); d < Inf && c+d < 0 {
		g.consistent = false
		g.ver++
		return false
	}
	g.materialize()
	g.s.set(i, j, c)
	g.incrementalClose(i, j)
	return g.consistent
}

// AddEq adds x = y + c.
func (g *Graph) AddEq(x, y string, c int64) bool {
	return g.AddEqA(Intern(x), Intern(y), c)
}

// AddEqA adds x = y + c over interned atoms.
func (g *Graph) AddEqA(x, y Atom, c int64) bool {
	return g.AddLEA(x, y, c) && g.AddLEA(y, x, -c)
}

// SetConst adds x = c.
func (g *Graph) SetConst(x string, c int64) bool { return g.AddEqA(Intern(x), AtomZero, c) }

// SetConstA adds x = c over an interned atom.
func (g *Graph) SetConstA(x Atom, c int64) bool { return g.AddEqA(x, AtomZero, c) }

// incrementalClose restores closure after tightening edge (i,j) with the
// changed-edge frontier: first the column of j is updated, collecting the
// affected sources (rows a whose a->i->j path beats the old a->j bound);
// then the row of i symmetrically, collecting affected targets; finally
// only sources × targets are crossed. On a closed matrix any pair (a,b) not
// in that cross product already satisfies d(a,b) <= d(a,i)+w+d(j,b), so the
// pruned pass restores full closure while touching only what changed.
func (g *Graph) incrementalClose(i, j int) {
	start := time.Now()
	s := g.s
	n := len(s.atoms)
	w := s.get(i, j)
	srcs, tgts := s.srcs[:0], s.tgts[:0]
	if s.mat != nil {
		mat, stride := s.mat, s.stride
		for a := 0; a < n; a++ {
			if a == i {
				continue
			}
			dai := mat[a*stride+i]
			if dai >= Inf {
				continue
			}
			if v := dai + w; v < mat[a*stride+j] {
				mat[a*stride+j] = v
				if a == j && v < 0 {
					g.consistent = false
				}
				srcs = append(srcs, int32(a))
			}
		}
		rowI := mat[i*stride : i*stride+n]
		rowJ := mat[j*stride : j*stride+n]
		if g.consistent {
			for b := 0; b < n; b++ {
				if b == j {
					continue
				}
				djb := rowJ[b]
				if djb >= Inf {
					continue
				}
				if v := w + djb; v < rowI[b] {
					rowI[b] = v
					if b == i && v < 0 {
						g.consistent = false
					}
					tgts = append(tgts, int32(b))
				}
			}
		}
		if g.consistent {
			for _, a32 := range srcs {
				a := int(a32)
				through := mat[a*stride+i] + w
				rowA := mat[a*stride : a*stride+n]
				for _, b32 := range tgts {
					b := int(b32)
					if v := through + rowJ[b]; v < rowA[b] {
						rowA[b] = v
						if a == b && v < 0 {
							g.consistent = false
						}
					}
				}
			}
		}
	} else {
		for a := 0; a < n; a++ {
			if a == i {
				continue
			}
			dai := s.get(a, i)
			if dai >= Inf {
				continue
			}
			if v := dai + w; v < s.get(a, j) {
				s.set(a, j, v)
				if a == j && v < 0 {
					g.consistent = false
				}
				srcs = append(srcs, int32(a))
			}
		}
		if g.consistent {
			for b := 0; b < n; b++ {
				if b == j {
					continue
				}
				djb := s.get(j, b)
				if djb >= Inf {
					continue
				}
				if v := w + djb; v < s.get(i, b) {
					s.set(i, b, v)
					if b == i && v < 0 {
						g.consistent = false
					}
					tgts = append(tgts, int32(b))
				}
			}
		}
		if g.consistent {
			for _, a32 := range srcs {
				a := int(a32)
				through := s.get(a, i) + w
				for _, b32 := range tgts {
					b := int(b32)
					if v := through + s.get(j, b); v < s.get(a, b) {
						s.set(a, b, v)
						if a == b && v < 0 {
							g.consistent = false
						}
					}
				}
			}
		}
	}
	s.srcs, s.tgts = srcs, tgts
	if st := g.opts.Stats; st != nil {
		st.incrClosures.Add(1)
		st.incrVarsSum.Add(int64(n))
		st.fullClosuresAvoided.Add(1)
		st.closureTimeNs.Add(int64(time.Since(start)))
	}
}

// FullClose recomputes the transitive closure with Floyd-Warshall, O(n^3).
// Needed after bulk edits (Join, Widen, Forget and Drop all preserve
// closure and do not require it).
func (g *Graph) FullClose() {
	start := time.Now()
	g.materialize()
	s := g.s
	n := len(s.atoms)
	if s.mat != nil {
		mat, stride := s.mat, s.stride
		for k := 0; k < n; k++ {
			rowK := mat[k*stride : k*stride+n]
			for a := 0; a < n; a++ {
				dak := mat[a*stride+k]
				if dak >= Inf {
					continue
				}
				rowA := mat[a*stride : a*stride+n]
				for b := 0; b < n; b++ {
					dkb := rowK[b]
					if dkb >= Inf {
						continue
					}
					if v := dak + dkb; v < rowA[b] {
						rowA[b] = v
					}
				}
			}
		}
	} else {
		for k := 0; k < n; k++ {
			for a := 0; a < n; a++ {
				dak := s.get(a, k)
				if dak >= Inf {
					continue
				}
				for b := 0; b < n; b++ {
					dkb := s.get(k, b)
					if dkb >= Inf {
						continue
					}
					if v := dak + dkb; v < s.get(a, b) {
						s.set(a, b, v)
					}
				}
			}
		}
	}
	for a := 0; a < n; a++ {
		if s.get(a, a) < 0 {
			g.consistent = false
		}
	}
	if st := g.opts.Stats; st != nil {
		st.fullClosures.Add(1)
		st.fullVarsSum.Add(int64(n))
		st.closureTimeNs.Add(int64(time.Since(start)))
	}
}

// DiffBound returns the tightest known bound on x - y, with ok=false when
// unconstrained or either variable is unknown.
func (g *Graph) DiffBound(x, y string) (int64, bool) {
	ax, okx := LookupAtom(x)
	ay, oky := LookupAtom(y)
	if !okx || !oky {
		return 0, false
	}
	return g.DiffBoundA(ax, ay)
}

// DiffBoundA is DiffBound over interned atoms.
func (g *Graph) DiffBoundA(x, y Atom) (int64, bool) {
	i := g.s.slot(x)
	j := g.s.slot(y)
	if i < 0 || j < 0 {
		return 0, false
	}
	b := g.s.get(i, j)
	if b >= Inf {
		return 0, false
	}
	return b, true
}

// Entails reports whether the graph implies x <= y + c. An inconsistent
// graph entails everything.
func (g *Graph) Entails(x, y string, c int64) bool {
	if !g.consistent {
		return true
	}
	if x == y {
		return c >= 0
	}
	b, ok := g.DiffBound(x, y)
	return ok && b <= c
}

// EntailsA is Entails over interned atoms.
func (g *Graph) EntailsA(x, y Atom, c int64) bool {
	if !g.consistent {
		return true
	}
	if x == y {
		return c >= 0
	}
	b, ok := g.DiffBoundA(x, y)
	return ok && b <= c
}

// EntailsLT reports whether the graph implies x < y + c.
func (g *Graph) EntailsLT(x, y string, c int64) bool { return g.Entails(x, y, c-1) }

// ConstVal returns the exact known value of x, if the graph pins it.
func (g *Graph) ConstVal(x string) (int64, bool) {
	a, ok := LookupAtom(x)
	if !ok {
		return 0, false
	}
	return g.ConstValA(a)
}

// ConstValA is ConstVal over an interned atom.
func (g *Graph) ConstValA(x Atom) (int64, bool) {
	hi, ok1 := g.DiffBoundA(x, AtomZero)
	lo, ok2 := g.DiffBoundA(AtomZero, x)
	if ok1 && ok2 && hi == -lo {
		return hi, true
	}
	return 0, false
}

// EqualWitnesses returns, for variable x, every pair (y, c) with the graph
// entailing x = y + c, including (ZeroVar, v) when x has a known constant
// value. x itself is excluded. Results are sorted by variable name.
func (g *Graph) EqualWitnesses(x string) []Witness {
	a, ok := LookupAtom(x)
	if !ok || !g.consistent {
		return nil
	}
	i := g.s.slot(a)
	if i < 0 {
		return nil
	}
	names := atomNames()
	var out []Witness
	for j := range g.s.atoms {
		if j == i {
			continue
		}
		up := g.s.get(i, j)
		down := g.s.get(j, i)
		if up < Inf && down < Inf && up == -down {
			// Insertion sort by name as witnesses arrive: the lists are
			// tiny and this avoids sort.Slice's closure + reflect.Swapper
			// allocations on a very hot path (bound enrichment).
			w := Witness{Var: names[g.s.atoms[j]], C: up}
			pos := len(out)
			for pos > 0 && out[pos-1].Var > w.Var {
				pos--
			}
			out = append(out, Witness{})
			copy(out[pos+1:], out[pos:])
			out[pos] = w
		}
	}
	return out
}

// Witness records the fact x = Var + C for some subject variable x.
type Witness struct {
	Var string
	C   int64
}

// ForEachBound calls fn for every finite off-diagonal bound x - y <= c in
// the closed graph, in deterministic (slot) order.
func (g *Graph) ForEachBound(fn func(x, y string, c int64)) {
	names := atomNames()
	atoms := g.s.atoms
	g.ForEachBoundA(func(i, j int32, c int64) {
		fn(names[atoms[i]], names[atoms[j]], c)
	})
}

// ForEachBoundA calls fn for every finite off-diagonal bound, identifying
// variables by slot index (g.s.atoms maps slots to atoms); the string-free
// variant used by bulk copies.
func (g *Graph) ForEachBoundA(fn func(i, j int32, c int64)) {
	s := g.s
	n := len(s.atoms)
	if s.mat != nil {
		for i := 0; i < n; i++ {
			row := s.mat[i*s.stride : i*s.stride+n]
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if b := row[j]; b < Inf {
					fn(int32(i), int32(j), b)
				}
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if b := s.get(i, j); b < Inf {
				fn(int32(i), int32(j), b)
			}
		}
	}
}

// AtomAt returns the atom occupying slot i (for ForEachBoundA callers).
func (g *Graph) AtomAt(i int32) Atom { return g.s.atoms[i] }

// Forget removes all constraints mentioning x while preserving everything
// entailed between other variables (the graph is already closed, so simply
// resetting x's row and column is a sound projection that needs no
// re-closure).
func (g *Graph) Forget(x string) {
	if a, ok := LookupAtom(x); ok {
		g.ForgetA(a)
	}
}

// ForgetA is Forget over an interned atom.
func (g *Graph) ForgetA(x Atom) {
	i := g.s.slot(x)
	if i < 0 {
		return
	}
	g.materialize()
	s := g.s
	n := len(s.atoms)
	if s.mat != nil {
		row := s.mat[i*s.stride : i*s.stride+n]
		for a := range row {
			row[a] = Inf
		}
		for a := 0; a < n; a++ {
			s.mat[a*s.stride+i] = Inf
		}
		row[i] = 0
	} else {
		for a := 0; a < n; a++ {
			if a != i {
				s.set(i, a, Inf)
				s.set(a, i, Inf)
			}
		}
		s.set(i, i, 0)
	}
	if st := g.opts.Stats; st != nil {
		st.fullClosuresAvoided.Add(1)
	}
}

// Drop removes variable x entirely from the graph (Forget plus deletion of
// the slot, filled by swapping in the last slot). All other constraints are
// preserved without re-closure.
func (g *Graph) Drop(x string) {
	if a, ok := LookupAtom(x); ok {
		g.DropA(a)
	}
}

// DropA is Drop over an interned atom.
func (g *Graph) DropA(x Atom) {
	if x == AtomZero {
		return
	}
	if g.s.slot(x) < 0 {
		return
	}
	g.ForgetA(x) // materializes
	s := g.s
	i := s.slot(x)
	last := len(s.atoms) - 1
	if s.mat != nil {
		if i != last {
			for a := 0; a <= last; a++ {
				s.mat[a*s.stride+i] = s.mat[a*s.stride+last]
				s.mat[i*s.stride+a] = s.mat[last*s.stride+a]
			}
			s.mat[i*s.stride+i] = s.mat[last*s.stride+last]
			s.atoms[i] = s.atoms[last]
		}
	} else {
		delete(s.sparse, pairKey(i, i))
		if i != last {
			for a := 0; a <= last; a++ {
				if v, ok := s.sparse[pairKey(a, last)]; ok {
					delete(s.sparse, pairKey(a, last))
					if a == last {
						s.sparse[pairKey(i, i)] = v
					} else {
						s.sparse[pairKey(a, i)] = v
					}
				}
				if v, ok := s.sparse[pairKey(last, a)]; ok {
					delete(s.sparse, pairKey(last, a))
					if a != last {
						s.sparse[pairKey(i, a)] = v
					}
				}
			}
			s.atoms[i] = s.atoms[last]
		}
	}
	s.atoms = s.atoms[:last]
	if st := g.opts.Stats; st != nil {
		st.fullClosuresAvoided.Add(1)
	}
}

// Shift applies the invertible assignment x := x + k: every bound involving
// x moves by k. Closure is preserved.
func (g *Graph) Shift(x string, k int64) { g.ShiftA(Intern(x), k) }

// ShiftA is Shift over an interned atom.
func (g *Graph) ShiftA(x Atom, k int64) {
	i := g.s.slot(x)
	if i < 0 {
		g.slotIntern(x)
		return
	}
	g.materialize()
	s := g.s
	n := len(s.atoms)
	if s.mat != nil {
		row := s.mat[i*s.stride : i*s.stride+n]
		for a := 0; a < n; a++ {
			if a == i {
				continue
			}
			if b := row[a]; b < Inf {
				row[a] = b + k
			}
			if b := s.mat[a*s.stride+i]; b < Inf {
				s.mat[a*s.stride+i] = b - k
			}
		}
	} else {
		for a := 0; a < n; a++ {
			if a == i {
				continue
			}
			if b := s.get(i, a); b < Inf {
				s.set(i, a, b+k)
			}
			if b := s.get(a, i); b < Inf {
				s.set(a, i, b-k)
			}
		}
	}
}

// Rename changes variable old to new (new must not exist yet).
func (g *Graph) Rename(old, new string) {
	if old == new {
		return
	}
	a, ok := LookupAtom(old)
	if !ok || g.s.slot(a) < 0 {
		return
	}
	g.RenameA(a, Intern(new))
}

// RenameA is Rename over interned atoms.
func (g *Graph) RenameA(old, new Atom) {
	if old == new {
		return
	}
	i := g.s.slot(old)
	if i < 0 {
		return
	}
	if g.s.slot(new) >= 0 {
		panic(fmt.Sprintf("cg: Rename target %q already exists", new.String()))
	}
	g.materialize()
	g.s.atoms[i] = new
}

// Clone returns a logical copy sharing Options (and therefore Stats).
// Cloning is O(1): the slot table and matrix storage are shared
// copy-on-write between the original and the clone, and the first mutating
// operation on either side materializes a private copy (see materialize).
func (g *Graph) Clone() *Graph {
	g.s.refs.Add(1)
	if st := g.opts.Stats; st != nil {
		st.clonesAvoided.Add(1)
	}
	return &Graph{opts: g.opts, s: g.s, consistent: g.consistent, ver: g.ver}
}

// alignVars makes both graphs contain the union of their variables.
func alignVars(a, b *Graph) {
	for _, at := range a.s.atoms {
		b.slotIntern(at)
	}
	for _, at := range b.s.atoms {
		a.slotIntern(at)
	}
}

// slotMap fills dst with, for each slot of a, the corresponding slot in b
// (both graphs must already contain the same variables, e.g. after
// alignVars).
func slotMap(a, b *Graph, dst []int32) []int32 {
	dst = dst[:0]
	for _, at := range a.s.atoms {
		dst = append(dst, int32(b.s.slot(at)))
	}
	return dst
}

// Join returns the least upper bound (convex hull) of a and b: pointwise
// maximum of the closed matrices. If either side is inconsistent the other
// is returned (bottom is the identity of join).
func Join(a, b *Graph) *Graph {
	if !a.consistent {
		return b.Clone()
	}
	if !b.consistent {
		return a.Clone()
	}
	start := time.Now()
	defer func() {
		if st := a.opts.Stats; st != nil {
			st.joins.Add(1)
			st.joinVarsSum.Add(int64(len(a.s.atoms)))
			st.maintainTimeNs.Add(int64(time.Since(start)))
		}
	}()
	ra, rb := a.Clone(), b.Clone()
	alignVars(ra, rb)
	ra.materialize()
	n := len(ra.s.atoms)
	ra.s.srcs = slotMap(ra, rb, ra.s.srcs)
	other := ra.s.srcs
	for i := 0; i < n; i++ {
		ji := int(other[i])
		for j := 0; j < n; j++ {
			va := ra.s.get(i, j)
			vb := rb.s.get(ji, int(other[j]))
			if vb > va {
				ra.s.set(i, j, vb)
			}
		}
	}
	rb.Release()
	// Pointwise max of closed matrices is closed; no re-closure needed.
	return ra
}

// Widen returns a widened with b: bounds of a that b does not respect are
// dropped to Inf, guaranteeing a finite ascending chain. The result is not
// re-closed (closing after widening would defeat termination).
func Widen(a, b *Graph) *Graph {
	if !a.consistent {
		return b.Clone()
	}
	if !b.consistent {
		return a.Clone()
	}
	start := time.Now()
	defer func() {
		if st := a.opts.Stats; st != nil {
			st.joins.Add(1)
			st.joinVarsSum.Add(int64(len(a.s.atoms)))
			st.maintainTimeNs.Add(int64(time.Since(start)))
		}
	}()
	ra, rb := a.Clone(), b.Clone()
	alignVars(ra, rb)
	ra.materialize()
	n := len(ra.s.atoms)
	ra.s.srcs = slotMap(ra, rb, ra.s.srcs)
	other := ra.s.srcs
	for i := 0; i < n; i++ {
		ji := int(other[i])
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if rb.s.get(ji, int(other[j])) > ra.s.get(i, j) {
				ra.s.set(i, j, Inf)
			}
		}
	}
	rb.Release()
	return ra
}

// Leq reports whether a entails all constraints of b (a is at least as
// precise, i.e. a ⊑ b in the may-analysis lattice ordered by precision).
func Leq(a, b *Graph) bool {
	if !a.consistent {
		return true
	}
	if !b.consistent {
		return false
	}
	bs := b.s
	n := len(bs.atoms)
	for i := 0; i < n; i++ {
		ia := a.s.slot(bs.atoms[i])
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			vb := bs.get(i, j)
			if vb >= Inf {
				continue
			}
			if ia < 0 {
				return false
			}
			ja := a.s.slot(bs.atoms[j])
			if ja < 0 || a.s.get(ia, ja) > vb {
				return false
			}
		}
	}
	return true
}

// Equal reports mutual entailment over the union of variables.
func Equal(a, b *Graph) bool { return Leq(a, b) && Leq(b, a) }

// String renders all non-trivial constraints, sorted, e.g.
// "i <= np - 1; x = 5".
func (g *Graph) String() string {
	if !g.consistent {
		return "inconsistent"
	}
	names := atomNames()
	atoms := g.s.atoms
	var parts []string
	n := len(atoms)
	done := map[[2]int]bool{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || done[[2]int{i, j}] {
				continue
			}
			up := g.s.get(i, j)
			if up >= Inf {
				continue
			}
			down := g.s.get(j, i)
			if down < Inf && down == -up {
				done[[2]int{j, i}] = true
				parts = append(parts, renderEq(names[atoms[i]], names[atoms[j]], up))
			} else {
				parts = append(parts, renderLE(names[atoms[i]], names[atoms[j]], up))
			}
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, "; ")
}

func renderEq(x, y string, c int64) string {
	if y == ZeroVar {
		return fmt.Sprintf("%s = %d", x, c)
	}
	if x == ZeroVar {
		return renderEq(y, ZeroVar, -c)
	}
	switch {
	case c == 0:
		return fmt.Sprintf("%s = %s", x, y)
	case c > 0:
		return fmt.Sprintf("%s = %s + %d", x, y, c)
	default:
		return fmt.Sprintf("%s = %s - %d", x, y, -c)
	}
}

func renderLE(x, y string, c int64) string {
	if y == ZeroVar {
		return fmt.Sprintf("%s <= %d", x, c)
	}
	if x == ZeroVar {
		return fmt.Sprintf("%s >= %d", y, -c)
	}
	switch {
	case c == 0:
		return fmt.Sprintf("%s <= %s", x, y)
	case c > 0:
		return fmt.Sprintf("%s <= %s + %d", x, y, c)
	default:
		return fmt.Sprintf("%s <= %s - %d", x, y, -c)
	}
}
