package cg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDropRemovesVariable(t *testing.T) {
	for _, opts := range backends() {
		g := New(opts)
		g.AddLE("a", "b", 1)
		g.AddLE("b", "c", 2)
		g.Drop("b")
		if g.HasVar("b") {
			t.Errorf("[%v] dropped var still present", opts.Backend)
		}
		// Transitive fact survives (graph was closed before the drop).
		if !g.Entails("a", "c", 3) {
			t.Errorf("[%v] a <= c+3 lost by Drop", opts.Backend)
		}
		// Re-adding the name starts fresh.
		g.AddVar("b")
		if _, ok := g.DiffBound("a", "b"); ok {
			t.Errorf("[%v] recreated var carries stale bounds", opts.Backend)
		}
	}
}

func TestDropZeroVarIgnored(t *testing.T) {
	g := NewDefault()
	g.SetConst("x", 5)
	g.Drop(ZeroVar)
	if v, ok := g.ConstVal("x"); !ok || v != 5 {
		t.Error("dropping ZeroVar must be a no-op")
	}
}

func TestDropLastAndMiddle(t *testing.T) {
	for _, opts := range backends() {
		g := New(opts)
		for _, v := range []string{"a", "b", "c", "d"} {
			g.AddVar(v)
		}
		g.AddLE("a", "d", 7)
		g.Drop("d") // last slot
		g.Drop("a") // middle slot after swap
		if g.HasVar("a") || g.HasVar("d") {
			t.Errorf("[%v] drop incomplete", opts.Backend)
		}
		if !g.HasVar("b") || !g.HasVar("c") {
			t.Errorf("[%v] unrelated vars lost", opts.Backend)
		}
	}
}

func TestQuickDropPreservesOthers(t *testing.T) {
	names := []string{"v0", "v1", "v2", "v3", "v4"}
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, opts := range backends() {
			g := New(opts)
			for e := 0; e < 12; e++ {
				i, j := r.Intn(5), r.Intn(5)
				if i == j {
					continue
				}
				g.AddLE(names[i], names[j], int64(r.Intn(9)))
			}
			victim := names[r.Intn(5)]
			// Record all bounds not involving the victim.
			type key struct{ x, y string }
			want := map[key]int64{}
			g.ForEachBound(func(x, y string, c int64) {
				if x != victim && y != victim {
					want[key{x, y}] = c
				}
			})
			g.Drop(victim)
			got := map[key]int64{}
			g.ForEachBound(func(x, y string, c int64) {
				got[key{x, y}] = c
			})
			if len(got) != len(want) {
				return false
			}
			for k, v := range want {
				if got[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestForEachBoundDeterministic(t *testing.T) {
	g := NewDefault()
	g.AddLE("b", "a", 1)
	g.AddLE("a", "c", 2)
	var first, second []string
	g.ForEachBound(func(x, y string, c int64) { first = append(first, x+y) })
	g.ForEachBound(func(x, y string, c int64) { second = append(second, x+y) })
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("bounds %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Error("ForEachBound order not deterministic")
		}
	}
}
