// External test package: the drivers under test need the client matchers,
// and clients import core, so an internal test would cycle.
package core_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
)

// suiteJobs builds one AnalyzeAll job per paper workload, each with its own
// matcher and stats record.
func suiteJobs(ws []*bench.Workload) ([]core.Job, []*cg.Stats, []*cartesian.Matcher) {
	jobs := make([]core.Job, len(ws))
	stats := make([]*cg.Stats, len(ws))
	matchers := make([]*cartesian.Matcher, len(ws))
	for i, w := range ws {
		_, g := w.Parse()
		stats[i] = &cg.Stats{}
		matchers[i] = cartesian.New(core.ScanInvariants(g))
		jobs[i] = core.Job{
			Name: w.Name,
			G:    g,
			Opts: core.Options{
				Matcher: matchers[i],
				CGOpts:  cg.Options{Stats: stats[i]},
			},
		}
	}
	return jobs, stats, matchers
}

func topologyKey(res *core.Result) string {
	out := ""
	for _, m := range res.Matches {
		out += fmt.Sprintf("n%d%s->n%d%s;", m.SendNode, m.Sender, m.RecvNode, m.Receiver)
	}
	return out
}

// TestAnalyzeAllMatchesSequential runs the full workload suite once
// sequentially and once on the pool and asserts identical outcomes.
func TestAnalyzeAllMatchesSequential(t *testing.T) {
	ws := bench.All()
	seqJobs, _, _ := suiteJobs(ws)
	parJobs, _, _ := suiteJobs(ws)
	seq := core.AnalyzeAll(seqJobs, 1)
	par := core.AnalyzeAll(parJobs, 4)
	if len(seq) != len(ws) || len(par) != len(ws) {
		t.Fatalf("result count: seq %d, par %d, want %d", len(seq), len(par), len(ws))
	}
	for i := range ws {
		if seq[i].Err != nil {
			t.Fatalf("%s: sequential error: %v", seq[i].Name, seq[i].Err)
		}
		if par[i].Err != nil {
			t.Fatalf("%s: parallel error: %v", par[i].Name, par[i].Err)
		}
		if par[i].Name != ws[i].Name {
			t.Errorf("result %d out of order: %s", i, par[i].Name)
		}
		sk, pk := topologyKey(seq[i].Res), topologyKey(par[i].Res)
		if sk != pk {
			t.Errorf("%s: topology differs:\nseq: %s\npar: %s", ws[i].Name, sk, pk)
		}
		if seq[i].Res.Clean() != par[i].Res.Clean() {
			t.Errorf("%s: clean differs", ws[i].Name)
		}
	}
}

// TestAnalyzeAllSharedStats shares one atomic stats record across all
// concurrent jobs; under -race this exercises the satellite requirement
// that cg.Stats is data-race-safe.
func TestAnalyzeAllSharedStats(t *testing.T) {
	ws := bench.All()
	shared := &cg.Stats{}
	jobs := make([]core.Job, len(ws))
	for i, w := range ws {
		_, g := w.Parse()
		jobs[i] = core.Job{
			Name: w.Name,
			G:    g,
			Opts: core.Options{
				Matcher: cartesian.New(core.ScanInvariants(g)),
				CGOpts:  cg.Options{Stats: shared},
			},
		}
	}
	for _, jr := range core.AnalyzeAll(jobs, 0) {
		if jr.Err != nil {
			t.Fatalf("%s: %v", jr.Name, jr.Err)
		}
	}
	if shared.ClonesAvoided() == 0 || shared.IncrClosures() == 0 {
		t.Fatalf("shared stats empty: clones=%d incr=%d", shared.ClonesAvoided(), shared.IncrClosures())
	}
}

// TestClonesAvoidedOnEveryWorkload is the acceptance criterion: the CoW
// Clone must avoid eager copies on every paper workload.
func TestClonesAvoidedOnEveryWorkload(t *testing.T) {
	ws := bench.All()
	jobs, stats, _ := suiteJobs(ws)
	for i, jr := range core.AnalyzeAll(jobs, 0) {
		if jr.Err != nil {
			t.Fatalf("%s: %v", jr.Name, jr.Err)
		}
		avoided, mat := stats[i].ClonesAvoided(), stats[i].CoWMaterializations()
		if avoided <= 0 {
			t.Errorf("%s: ClonesAvoided = %d, want > 0", ws[i].Name, avoided)
		}
		if mat > avoided {
			t.Errorf("%s: more materializations (%d) than clones (%d)", ws[i].Name, mat, avoided)
		}
	}
}

// TestMatchCacheHits demonstrates a cache-hit rate > 0 for repeated
// send-receive match queries: the transpose workload poses the same HSM
// self-match query on every loop revisit.
func TestMatchCacheHits(t *testing.T) {
	w := bench.TransposeSquare()
	_, g := w.Parse()
	m := cartesian.New(core.ScanInvariants(g))
	if _, err := core.Analyze(g, core.Options{Matcher: m}); err != nil {
		t.Fatal(err)
	}
	// The single analysis already repeats queries across the join/widen
	// revisits of the loop head; re-analyzing with the same matcher must
	// hit for every query of the second run.
	missesAfterFirst := m.Memo().MissCount()
	if _, err := core.Analyze(g, core.Options{Matcher: m}); err != nil {
		t.Fatal(err)
	}
	memo := m.Memo()
	if memo.HitCount() == 0 {
		t.Fatalf("no cache hits: hits=%d misses=%d", memo.HitCount(), memo.MissCount())
	}
	if memo.MissCount() != missesAfterFirst {
		t.Errorf("second identical analysis missed the cache: %d -> %d misses", missesAfterFirst, memo.MissCount())
	}
	if memo.HitRate() <= 0 {
		t.Errorf("HitRate = %v, want > 0", memo.HitRate())
	}
	if p := m.Prover(); p.CacheHits == 0 && memo.HitCount() == 0 {
		t.Error("neither matcher memo nor prover cache hit")
	}
}

// BenchmarkMatchCacheHit measures a memoized whole-set HSM match query
// against the cold-prover baseline path.
func BenchmarkMatchCacheHit(b *testing.B) {
	w := bench.TransposeSquare()
	_, g := w.Parse()
	m := cartesian.New(core.ScanInvariants(g))
	if _, err := core.Analyze(g, core.Options{Matcher: m}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(g, core.Options{Matcher: m}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Memo().HitRate()*100, "cache-hit-%")
}
