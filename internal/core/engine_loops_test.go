package core_test

import (
	"strings"
	"testing"
)

// Fig 5 / Fig 1 (mdcask): exchange with root. Process 0 loops over every
// other process, sending then receiving; others receive then send back.
const fig5Src = `
assume np >= 4
if id == 0 then
  for i := 1 to np - 1 do
    send x -> i
    recv y <- i
  end
else
  recv y <- 0
  send y -> 0
end
`

func TestFig5ExchangeWithRoot(t *testing.T) {
	res, g := analyze(t, fig5Src)
	if !res.Clean() {
		t.Fatalf("analysis not clean: tops=%v", res.TopReasons())
	}
	pairs := matchPairs(res, g)
	want := [][2]string{
		{"send x -> i", "recv y <- 0"},
		{"send y -> 0", "recv y <- i"},
	}
	for _, w := range want {
		if !pairs[w] {
			t.Errorf("missing match %v; have %v", w, pairs)
		}
	}
	if len(res.Matches) != 2 {
		t.Errorf("got %d matches, want 2: %v", len(res.Matches), res.Matches)
	}
	// The root broadcast must cover workers [1..np-1]: the receiver range
	// of the root's send spans all non-root processes.
	var rootSend string
	for _, m := range res.Matches {
		if g.Node(m.SendNode).Label() == "send x -> i" {
			rootSend = m.Receiver.String()
		}
	}
	if !coversWorkers(rootSend) {
		t.Errorf("root send receivers = %q, want a range covering [1..np-1]", rootSend)
	}
}

// coversWorkers accepts [1..np - 1] in its direct or variable-witness form.
func coversWorkers(s string) bool {
	return s == "[1..np - 1]" || (strings.HasPrefix(s, "[1..") && strings.Contains(s, "np - 1"))
}

// Fig 7: one-dimensional nearest-neighbor shift. Expected matches (Fig 8):
// [0]->[1], [1..np-3]->[2..np-2], [np-2]->[np-1].
const fig7Src = `
assume np >= 4
if id == 0 then
  send x -> id + 1
elif id <= np - 2 then
  recv y <- id - 1
  send x -> id + 1
else
  recv y <- id - 1
end
`

func TestFig7Shift(t *testing.T) {
	res, g := analyze(t, fig7Src)
	if !res.Clean() {
		t.Fatalf("analysis not clean: tops=%v", res.TopReasons())
	}
	// Fig 8 reports three set-level matches over two distinct send nodes
	// (process 0's and the middle set's) and two recv nodes (middle, last).
	if len(res.Matches) != 3 {
		t.Fatalf("got %d matches, want 3: %v", len(res.Matches), res.Matches)
	}
	sendNodes := map[int]bool{}
	recvNodes := map[int]bool{}
	ranges := map[string]bool{}
	for _, m := range res.Matches {
		sendNodes[m.SendNode] = true
		recvNodes[m.RecvNode] = true
		ranges[m.Sender.String()+"->"+m.Receiver.String()] = true
	}
	if len(sendNodes) != 2 || len(recvNodes) != 2 {
		t.Errorf("distinct send/recv nodes = %d/%d, want 2/2: %v", len(sendNodes), len(recvNodes), res.Matches)
	}
	// Fig 8's exact set-level matches.
	for _, want := range []string{
		"[0]->[1]",
		"[1..np - 3]->[2..np - 2]",
		"[np - 2]->[np - 1]",
	} {
		if !ranges[want] {
			t.Errorf("missing Fig 8 match %q; have %v", want, ranges)
		}
	}
	// The final configuration must be fully general: all processes merged
	// back into [0..np-1] at the exit.
	foundGeneral := false
	for _, f := range res.Finals {
		if len(f.Sets) == 1 && f.Sets[0].Range.String() == "[0..np - 1]" {
			foundGeneral = true
		}
	}
	if !foundGeneral {
		t.Errorf("no general final configuration; finals: %v", res.Finals)
	}
	_ = g
}
