package core_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/parser"
)

// analyze parses and analyzes src with the symbolic matcher.
func analyze(t *testing.T, src string) (*core.Result, *cfg.Graph) {
	t.Helper()
	prog, err := parser.Parse("test.mpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := cfg.Build(prog)
	res, err := core.Analyze(g, core.Options{Matcher: &symbolic.Matcher{}})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res, g
}

// matchPairs extracts (sendNode, recvNode) label pairs from the topology.
func matchPairs(res *core.Result, g *cfg.Graph) map[[2]string]bool {
	out := map[[2]string]bool{}
	for _, m := range res.Matches {
		out[[2]string{g.Node(m.SendNode).Label(), g.Node(m.RecvNode).Label()}] = true
	}
	return out
}

const fig2Src = `
assume np >= 3
if id == 0 then
  x := 5
  send x -> 1
  recv y <- 1
  print y
elif id == 1 then
  recv y <- 0
  send y -> 0
  print y
end
`

func TestFig2Exchange(t *testing.T) {
	res, g := analyze(t, fig2Src)
	if !res.Clean() {
		t.Fatalf("analysis not clean: tops=%v", res.TopReasons())
	}
	pairs := matchPairs(res, g)
	want := [][2]string{
		{"send x -> 1", "recv y <- 0"},
		{"send y -> 0", "recv y <- 1"},
	}
	for _, w := range want {
		if !pairs[w] {
			t.Errorf("missing match %v; have %v", w, pairs)
		}
	}
	if len(res.Matches) != 2 {
		t.Errorf("got %d matches, want 2: %v", len(res.Matches), res.Matches)
	}
	// Constant propagation: both print sites observe y = 5 (the paper's
	// Fig 2 walkthrough; the merged exit state afterwards loses the
	// constant, exactly as Fig 2(c) shows with x=?, y=?).
	if len(res.Finals) == 0 {
		t.Fatal("no final configurations")
	}
	if len(res.Prints) != 2 {
		t.Fatalf("print observations = %v, want 2", res.Prints)
	}
	for _, p := range res.Prints {
		if !p.Known || p.Val != 5 {
			t.Errorf("print at n%d on %s: val=%d known=%v, want 5", p.Node, p.Range, p.Val, p.Known)
		}
	}
}

func TestSequentialNoComm(t *testing.T) {
	res, _ := analyze(t, "x := 1\ny := x + 2\nprint y")
	if !res.Clean() {
		t.Fatalf("tops: %v", res.TopReasons())
	}
	if len(res.Matches) != 0 {
		t.Errorf("unexpected matches: %v", res.Matches)
	}
	fin := res.Finals[0]
	if len(fin.Sets) != 1 {
		t.Fatalf("final sets = %v", fin.Sets)
	}
	v := core.PV(fin.Sets[0].ID, "y")
	if val, ok := fin.G.ConstVal(v); !ok || val != 3 {
		t.Errorf("y = %d,%v, want 3", val, ok)
	}
	if fin.Sets[0].Range.String() != "[0..np - 1]" {
		t.Errorf("range = %v", fin.Sets[0].Range)
	}
}

func TestBranchUniformUnknown(t *testing.T) {
	// A branch on unconstrained data forks the configuration; both paths
	// must reach the end and merge into clean finals.
	res, _ := analyze(t, `
if x < 5 then
  y := 1
else
  y := 2
end
print y`)
	if !res.Clean() {
		t.Fatalf("tops: %v", res.TopReasons())
	}
	if len(res.Matches) != 0 {
		t.Errorf("matches: %v", res.Matches)
	}
}

func TestDeadlockGoesTop(t *testing.T) {
	// Process 0 receives from 1, but 1 never sends: the framework must
	// give up with ⊤ rather than fabricate a match.
	res, _ := analyze(t, `
assume np >= 2
if id == 0 then
  recv y <- 1
end
`)
	if len(res.Tops) == 0 {
		t.Fatal("expected a ⊤ configuration for the deadlock")
	}
}

func TestMismatchedPartnersGoTop(t *testing.T) {
	// 0 sends to 1, but 1 expects a message from 2.
	res, _ := analyze(t, `
assume np >= 3
if id == 0 then
  send x -> 1
elif id == 1 then
  recv y <- 2
end
`)
	if len(res.Tops) == 0 {
		t.Fatal("expected ⊤ for mismatched partners")
	}
}
