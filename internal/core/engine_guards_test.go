package core_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/parser"
)

// The step budget stops runaway analyses with an explicit ⊤ rather than
// hanging.
func TestMaxStepsGuard(t *testing.T) {
	prog, err := parser.Parse("t.mpl", fig5Src)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(prog)
	res, err := core.Analyze(g, core.Options{Matcher: &symbolic.Matcher{}, MaxSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.TopReasons() {
		if strings.Contains(r, "step budget") {
			found = true
		}
	}
	if !found {
		t.Errorf("step budget not reported: %v", res.TopReasons())
	}
}

// A visit budget of 1 forces immediate non-convergence on any loop.
func TestMaxVisitsGuard(t *testing.T) {
	prog, err := parser.Parse("t.mpl", fig5Src)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(prog)
	res, err := core.Analyze(g, core.Options{Matcher: &symbolic.Matcher{}, MaxVisits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Error("expected non-convergence with MaxVisits=1")
	}
}

// The set-count guard converts fragmentation into a diagnosable ⊤.
func TestMaxSetsGuard(t *testing.T) {
	prog, err := parser.Parse("t.mpl", fig7Src)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(prog)
	res, err := core.Analyze(g, core.Options{Matcher: &symbolic.Matcher{}, MaxSets: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.TopReasons() {
		if strings.Contains(r, "fragmented") {
			found = true
		}
	}
	if !found {
		t.Errorf("fragmentation guard not reported: %v", res.TopReasons())
	}
}

// Missing matcher is a configuration error, not a panic.
func TestMissingMatcher(t *testing.T) {
	prog, _ := parser.Parse("t.mpl", "x := 1")
	g := cfg.Build(prog)
	if _, err := core.Analyze(g, core.Options{}); err == nil {
		t.Error("nil matcher accepted")
	}
}

// Trace output narrates the exploration.
func TestTraceOutput(t *testing.T) {
	prog, _ := parser.Parse("t.mpl", fig2Src)
	g := cfg.Build(prog)
	var buf bytes.Buffer
	res, err := core.Analyze(g, core.Options{Matcher: &symbolic.Matcher{}, Trace: &buf})
	if err != nil || !res.Clean() {
		t.Fatalf("%v %v", err, res.TopReasons())
	}
	out := buf.String()
	if !strings.Contains(out, "new") || !strings.Contains(out, "[0..np - 1]") {
		t.Errorf("trace missing content:\n%s", out)
	}
}

// The pCFG dot rendering includes configurations and a highlighted match.
func TestPCFGDot(t *testing.T) {
	prog, _ := parser.Parse("t.mpl", fig2Src)
	g := cfg.Build(prog)
	res, err := core.Analyze(g, core.Options{Matcher: &symbolic.Matcher{}})
	if err != nil {
		t.Fatal(err)
	}
	dot := res.PCFGDot("fig2")
	for _, w := range []string{"digraph", "start", "match", "color=blue"} {
		if !strings.Contains(dot, w) {
			t.Errorf("pCFG dot missing %q", w)
		}
	}
}
