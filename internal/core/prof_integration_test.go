package core_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/prof"
	"repro/internal/sem"
)

// TestProfilerDoesNotPerturb is the profiler's overhead contract: with a
// profiler attached, the sequential and parallel engines must produce
// byte-identical results to the unprofiled baseline on every paper
// workload, and the profiled step count must equal the engine's own.
func TestProfilerDoesNotPerturb(t *testing.T) {
	for _, w := range bench.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, g := w.Parse()
			want := signature(analyzeWith(t, g, core.Options{}))
			for _, workers := range []int{1, 4} {
				p := prof.New()
				_, g := w.Parse()
				res, err := core.Analyze(g, core.Options{
					Matcher:  cartesian.New(core.ScanInvariants(g)),
					Workers:  workers,
					Profiler: p,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if workers == 1 {
					if got := signature(res); got != want {
						t.Errorf("workers=1 profiled run diverged:\n got: %s\nwant: %s", got, want)
					}
				} else if got := topoSignature(res); got != topoSignature(analyzeWith(t, g, core.Options{Workers: workers})) {
					t.Errorf("workers=%d profiled run diverged", workers)
				}
				rep := p.Report(w.Name, w.Src)
				if rep.Totals.Steps != int64(res.Steps) {
					t.Errorf("workers=%d: profiled steps = %d, engine steps = %d",
						workers, rep.Totals.Steps, res.Steps)
				}
				if rep.Totals.StepNs <= 0 {
					t.Errorf("workers=%d: no step time recorded", workers)
				}
				if len(rep.Nodes) == 0 {
					t.Errorf("workers=%d: empty node profile", workers)
				}
			}
		})
	}
}

// TestProfilerSequentialDeterminism: two profiled sequential runs of the
// same program render byte-identical reports (modulo timing fields, which
// are zeroed for the comparison) — the property the fuzz-sweep
// attribution's reproducibility rests on.
func TestProfilerSequentialDeterminism(t *testing.T) {
	w := bench.Fig7Shift()
	run := func() *prof.Report {
		_, g := w.Parse()
		p := prof.New()
		if _, err := core.Analyze(g, core.Options{
			Matcher:  cartesian.New(core.ScanInvariants(g)),
			Profiler: p,
		}); err != nil {
			t.Fatal(err)
		}
		rep := p.Report(w.Name, w.Src)
		for i := range rep.Nodes {
			rep.Nodes[i].StepNs = 0
			rep.Nodes[i].MatchNs = 0
			rep.Nodes[i].ProverNs = 0
		}
		rep.Totals.StepNs, rep.Totals.MatchNs, rep.Totals.ProverNs = 0, 0, 0
		return rep
	}
	var a, b bytes.Buffer
	if err := prof.WriteJSON(&a, []*prof.Report{run()}); err != nil {
		t.Fatal(err)
	}
	if err := prof.WriteJSON(&b, []*prof.Report{run()}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("profiled runs differ:\n--- a\n%s\n--- b\n%s", a.String(), b.String())
	}
}

// TestProfilerRecordsWideningFailures: on the minimized precision repro
// from the differential fuzzer, the profiler must attribute the widening
// failures (with a bound-expression pair) and the resulting give-up.
func TestProfilerRecordsWideningFailures(t *testing.T) {
	src, err := os.ReadFile("../../testdata/diffbugs/widen_mismatch_broadcast.mpl")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse("widen_mismatch_broadcast.mpl", string(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sem.Check(prog); err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(prog)
	p := prof.New()
	res, err := core.Analyze(g, core.Options{
		Matcher:  cartesian.New(core.ScanInvariants(g)),
		Profiler: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Fatal("repro unexpectedly analyzed clean; the profiler assertions below are vacuous")
	}
	rep := p.Report("widen_mismatch_broadcast.mpl", string(src))
	if rep.Totals.WidenFailures == 0 {
		t.Errorf("no widening failures profiled on a widening-failure repro: %+v", rep.Totals)
	}
	if len(rep.WidenFailures) == 0 {
		t.Fatal("no widening-failure detail rows")
	}
	found := false
	for _, wf := range rep.WidenFailures {
		if wf.OldBound != "" && wf.NewBound != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no failing bound-expression pair captured: %+v", rep.WidenFailures)
	}
	if rep.Totals.GiveUps == 0 {
		t.Errorf("give-up not profiled: %+v", rep.Totals)
	}
}

// TestProgressProverLane is the prover-lane attribution coverage: a
// workload whose matching needs HSM set-equality searches must surface
// prover searches and time in the /statusz snapshot and final summary.
func TestProgressProverLane(t *testing.T) {
	w := bench.TransposeSquare()
	_, g := w.Parse()
	m := cartesian.New(core.ScanInvariants(g))
	// Force every decision through the searcher: with the prover memo
	// disabled, repeated queries re-search instead of hitting the cache,
	// so the lane is deterministically non-empty even if the match memo
	// absorbs most traffic.
	m.Prover().DisableCache = true
	tracker := obs.NewProgressTracker()
	if _, err := core.Analyze(g, core.Options{
		Matcher:  m,
		TracePID: 7,
		Progress: tracker,
	}); err != nil {
		t.Fatal(err)
	}
	snaps := tracker.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %+v", snaps)
	}
	final := snaps[0]
	if !final.Done {
		t.Errorf("final snapshot not done: %+v", final)
	}
	if final.ProverSearches == 0 {
		t.Errorf("prover lane empty in final summary: %+v", final)
	}
	if final.ProverNs <= 0 {
		t.Errorf("prover time not attributed: %+v", final)
	}
	if got, want := final.ProverSearches, m.ProverSearches(); got != want {
		t.Errorf("snapshot searches = %d, matcher reports %d", got, want)
	}
	var buf bytes.Buffer
	if err := tracker.WriteStatusz(&buf); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"prover_searches"`, `"prover_ns"`} {
		if !strings.Contains(buf.String(), field) {
			t.Errorf("/statusz payload missing %s:\n%s", field, buf.String())
		}
	}
}
