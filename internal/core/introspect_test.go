// External test package: building real matchers requires the client
// packages, which import core.
package core_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
)

// lockedBuf is an io.Writer safe to hand to the engine's StallDump and read
// after Analyze returns (the dump happens on the watchdog goroutine).
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestForcedStallDumpsOnce drives the full stall path deterministically:
// ForceStall pins the watchdog's progress reading at zero, so the watchdog
// must fire after StallTimeout and dump the flight recorder exactly once —
// while the analysis result stays correct and clean.
func TestForcedStallDumpsOnce(t *testing.T) {
	_, g := bench.Stencil1D().Parse()
	var dump lockedBuf
	res := analyzeWith(t, g, core.Options{
		Workers:        4,
		StallTimeout:   50 * time.Millisecond,
		ForceStall:     true,
		FlightRecorder: obs.NewFlightRecorder(1024),
		StallDump:      &dump,
	})
	if !res.Clean() {
		t.Fatalf("forced stall must not perturb the analysis: %v", res.TopReasons())
	}
	out := dump.String()
	if out == "" {
		t.Fatal("forced stall produced no flight-recorder dump")
	}
	if n := strings.Count(out, `"kind":"dump"`); n != 1 {
		t.Errorf("want exactly 1 dump marker event, got %d\n%s", n, out)
	}
	if n := strings.Count(out, `"kind":"stall"`); n != 1 {
		t.Errorf("want exactly 1 stall event, got %d", n)
	}
	// The recorder must carry the recent scheduler/step/commit history.
	for _, kind := range []string{`"kind":"dequeue"`, `"kind":"step"`, `"kind":"commit"`} {
		if !strings.Contains(out, kind) {
			t.Errorf("dump missing %s events:\n%s", kind, out)
		}
	}
	// Every line is one JSON event; seqs are dense, so the dump is bounded
	// by the ring capacity.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) > 1024 {
		t.Errorf("dump exceeds ring capacity: %d lines", len(lines))
	}
}

// TestWatchdogQuietOnWorkloads runs every paper workload under a generous
// watchdog on both engines and asserts it never fires: real convergence is
// progress, and a healthy run must not produce a dump.
func TestWatchdogQuietOnWorkloads(t *testing.T) {
	for _, w := range bench.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				_, g := w.Parse()
				var dump lockedBuf
				res := analyzeWith(t, g, core.Options{
					Workers:        workers,
					StallTimeout:   time.Minute,
					FlightRecorder: obs.NewFlightRecorder(256),
					StallDump:      &dump,
				})
				if res == nil {
					t.Fatalf("workers=%d: nil result", workers)
				}
				if out := dump.String(); out != "" {
					t.Errorf("workers=%d: watchdog fired on a healthy run:\n%s", workers, out)
				}
			}
		})
	}
}

// TestProgressTrackerLiveAndFinal samples /statusz-style progress snapshots
// concurrently with an 8-worker analysis: the visited counters must be
// monotonically nondecreasing across samples, and the final snapshot must
// agree with the analysis result.
func TestProgressTrackerLiveAndFinal(t *testing.T) {
	_, g := bench.TransposeRect().Parse()
	tracker := obs.NewProgressTracker()
	done := make(chan *core.Result, 1)
	go func() {
		res := analyzeWith(t, g, core.Options{
			Workers:  8,
			Progress: tracker,
			TracePID: 1,
			Name:     "transpose-rect",
		})
		done <- res
	}()

	var lastSteps, lastConfigs, lastWiden int64
	samples := 0
	sample := func() {
		for _, p := range tracker.Snapshot() {
			if p.Job != 1 {
				continue
			}
			samples++
			if p.Steps < lastSteps || p.Configs < lastConfigs || p.Widenings < lastWiden {
				t.Errorf("progress went backwards: steps %d->%d configs %d->%d widenings %d->%d",
					lastSteps, p.Steps, lastConfigs, p.Configs, lastWiden, p.Widenings)
			}
			lastSteps, lastConfigs, lastWiden = p.Steps, p.Configs, p.Widenings
			if p.Pending < 0 || p.Queued < 0 {
				t.Errorf("negative frontier: pending=%d queued=%d", p.Pending, p.Queued)
			}
		}
	}
	var res *core.Result
	for res == nil {
		select {
		case res = <-done:
		default:
			sample()
		}
	}
	// A fast convergence can beat the first live sample to the sampler
	// registration; the final snapshot flows through the same Snapshot
	// path, so fold it into the monotonicity run rather than flaking.
	if samples == 0 {
		sample()
	}
	if samples == 0 {
		t.Fatal("never observed a progress snapshot")
	}

	snap := tracker.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("want 1 job in final snapshot, got %d", len(snap))
	}
	final := snap[0]
	if !final.Done {
		t.Error("final snapshot not marked done")
	}
	if final.Steps != int64(res.Steps) || final.Configs != int64(res.Configs) || final.Widenings != int64(res.Widenings) {
		t.Errorf("final snapshot (steps=%d configs=%d widenings=%d) disagrees with result (steps=%d configs=%d widenings=%d)",
			final.Steps, final.Configs, final.Widenings, res.Steps, res.Configs, res.Widenings)
	}
	if final.Pending != 0 || final.Queued != 0 || final.ShardQueued != nil {
		t.Errorf("final snapshot still shows frontier: pending=%d queued=%d shards=%v",
			final.Pending, final.Queued, final.ShardQueued)
	}
	if final.Name != "transpose-rect" || final.Workers != 8 {
		t.Errorf("final snapshot labels wrong: name=%q workers=%d", final.Name, final.Workers)
	}
}

// TestIntrospectionDisabledIdentical: with every introspection option unset
// the engine must produce byte-identical results to a fully instrumented
// run — observability only observes.
func TestIntrospectionDisabledIdentical(t *testing.T) {
	_, g := bench.Fig7Shift().Parse()
	plain := analyzeWith(t, g, core.Options{Workers: 4})
	_, g2 := bench.Fig7Shift().Parse()
	var dump lockedBuf
	instrumented := analyzeWith(t, g2, core.Options{
		Workers:        4,
		Progress:       obs.NewProgressTracker(),
		FlightRecorder: obs.NewFlightRecorder(128),
		StallTimeout:   time.Minute,
		StallDump:      &dump,
		ProfileLabels:  true,
	})
	if got, want := signature(instrumented), signature(plain); got != want {
		t.Errorf("instrumentation changed the result:\n got: %s\nwant: %s", got, want)
	}
}
