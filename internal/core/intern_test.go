package core

import (
	"sync"
	"testing"
)

func TestInternerDenseIDs(t *testing.T) {
	in := newInterner()
	a := in.intern("alpha")
	b := in.intern("beta")
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d, %d; want dense 0, 1", a, b)
	}
	if got := in.intern("alpha"); got != a {
		t.Fatalf("re-intern = %d, want %d", got, a)
	}
	if in.keyOf(b) != "beta" || in.size() != 2 {
		t.Fatalf("keyOf/size wrong: %q, %d", in.keyOf(b), in.size())
	}
}

func TestInternerConcurrent(t *testing.T) {
	in := newInterner()
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[i%len(keys)]
				if in.keyOf(in.intern(k)) != k {
					t.Error("intern/keyOf mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
	if in.size() != len(keys) {
		t.Fatalf("size = %d, want %d", in.size(), len(keys))
	}
}

func TestRingQueueFIFOAndCompaction(t *testing.T) {
	q := &ringQueue{}
	for i := uint64(0); i < 500; i++ {
		q.push(i)
		if i%2 == 1 { // drain in pairs to force head movement
			for j := i - 1; j <= i; j++ {
				got, ok := q.pop()
				if !ok || got != j {
					t.Fatalf("pop = %d,%v; want %d", got, ok, j)
				}
			}
		}
	}
	if q.size() != 0 {
		t.Fatalf("size = %d, want 0", q.size())
	}
	if len(q.buf) >= 500 {
		t.Fatalf("popped prefix retained: len(buf) = %d", len(q.buf))
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
}

func TestLIFOQueue(t *testing.T) {
	q := &lifoQueue{}
	q.push(1)
	q.push(2)
	q.push(3)
	for _, want := range []uint64{3, 2, 1} {
		got, ok := q.pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v; want %d", got, ok, want)
		}
	}
}

func TestShapeQueuePopsSmallestKey(t *testing.T) {
	in := newInterner()
	q := &shapeQueue{keyOf: in.keyOf}
	ids := []uint64{in.intern("m"), in.intern("a"), in.intern("z"), in.intern("b")}
	for _, id := range ids {
		q.push(id)
	}
	var got []string
	for {
		id, ok := q.pop()
		if !ok {
			break
		}
		got = append(got, in.keyOf(id))
	}
	want := "a,b,m,z"
	if joined := joinStrings(got); joined != want {
		t.Fatalf("pop order = %s, want %s", joined, want)
	}
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

func TestSchedulerCoalescesAndTerminates(t *testing.T) {
	s := newScheduler(ScheduleFIFO, nil, 4, nil)
	s.push(1)
	s.push(1) // coalesced: still queued
	id, ok := s.pop(0)
	if !ok || id != 1 {
		t.Fatalf("pop = %d,%v", id, ok)
	}
	s.push(1) // running: marks dirty
	s.done(1) // dirty: requeued
	id, ok = s.pop(0)
	if !ok || id != 1 {
		t.Fatalf("requeue pop = %d,%v", id, ok)
	}
	s.done(1)
	if _, ok := s.pop(0); ok {
		t.Fatal("pop after fixpoint should report done")
	}
}

func TestSchedulerStealsAcrossShards(t *testing.T) {
	s := newScheduler(ScheduleFIFO, nil, 4, nil)
	// ids 1,2,3 land on shards 1,2,3; a worker homed on shard 0 must steal
	// all of them, then observe the fixpoint.
	s.pushShard(1, []uint64{1})
	s.pushShard(2, []uint64{2})
	s.pushShard(3, []uint64{3})
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		id, ok := s.pop(0)
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		seen[id] = true
		s.done(id)
	}
	if len(seen) != 3 {
		t.Fatalf("stole %d distinct ids, want 3", len(seen))
	}
	if _, ok := s.pop(0); ok {
		t.Fatal("pop after fixpoint should report done")
	}
}

func TestSchedulerBatchPush(t *testing.T) {
	s := newScheduler(ScheduleFIFO, nil, 2, nil)
	// One batch of same-shard ids (shard 0 owns even ids with mask 1).
	s.pushShard(0, []uint64{0, 2, 4, 2}) // duplicate 2 coalesces
	if got := s.liveDepth(); got != 3 {
		t.Fatalf("liveDepth = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		id, ok := s.pop(0)
		if !ok || id%2 != 0 {
			t.Fatalf("pop %d = %d,%v", i, id, ok)
		}
		s.done(id)
	}
	if _, ok := s.pop(0); ok {
		t.Fatal("pop after fixpoint should report done")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := newScheduler(ScheduleFIFO, nil, 4, nil)
	s.push(7)
	s.stop()
	if _, ok := s.pop(0); ok {
		t.Fatal("pop after stop should fail")
	}
}
