package core

import (
	"fmt"
	"regexp"

	"repro/internal/cg"
	"repro/internal/procset"
	"repro/internal/sym"
)

// Widening parameters ("wp<n>", canonicalized to "k<n>") and frozen-value
// twins ("fz<n>", canonicalized to "f<n>") are existential helper variables
// minted with globally unique names. Two analysis lineages reaching the
// same pCFG node mint different names for the same role, which would make
// their states incomparable and the fixpoint diverge. CanonicalizeParams
// renames them by order of first appearance in the state's canonical
// rendering, so equivalent states become syntactically equal.

var helperVarRe = regexp.MustCompile(`^(wp|fz|k|f)\d+$`)

func isHelperVar(v string) bool { return helperVarRe.MatchString(v) }

// CanonicalizeParams renames helper variables to canonical names and drops
// stale ones from the constraint graph. It returns the applied renaming so
// callers can translate names they hold (e.g. the table entry's widening
// parameter).
func (st *State) CanonicalizeParams() map[string]string {
	st.sortCanonical()
	st.sortPending()
	var order []string
	seen := map[string]bool{}
	note := func(e sym.Expr) {
		for _, v := range e.Vars() {
			if isHelperVar(v) && !seen[v] {
				seen[v] = true
				order = append(order, v)
			}
		}
	}
	scanBound := func(b procset.Bound) {
		for _, a := range b.Atoms() {
			note(a)
		}
	}
	scanSet := func(s procset.Set) { scanBound(s.LB); scanBound(s.UB) }
	for _, p := range st.Sets {
		scanSet(p.Range)
	}
	for _, m := range st.Matches {
		scanSet(m.Sender)
		scanSet(m.Receiver)
	}
	for _, p := range st.Pending {
		scanSet(p.Senders)
		if p.Shape == PendFan {
			scanSet(p.Dests)
		}
		note(p.Offset)
		if p.ValOK {
			note(p.Val)
		}
	}
	// Desired canonical names in appearance order.
	mapping := map[string]string{}
	nk, nf := 0, 0
	for _, v := range order {
		var want string
		if v[0] == 'f' { // fz<n> or f<n>
			want = fmt.Sprintf("f%d", nf)
			nf++
		} else { // wp<n> or k<n>
			want = fmt.Sprintf("k%d", nk)
			nk++
		}
		mapping[v] = want
	}
	// Drop stale helper variables (present in G but unused by any bound).
	dropped := false
	for _, v := range st.G.Vars() {
		if isHelperVar(v) && !seen[v] {
			st.G.Drop(v)
			dropped = true
		}
	}
	if dropped {
		st.dirtyKeys()
	}
	// Identity mapping: nothing to do.
	identity := true
	for from, to := range mapping {
		if from != to {
			identity = false
		}
	}
	if identity {
		return mapping
	}
	st.dirtyKeys()
	// Two-phase rename in the constraint graph (deterministic order).
	for i, from := range order {
		if st.G.HasVar(from) {
			st.G.Rename(from, fmt.Sprintf("$p%d", i))
		}
	}
	for i, from := range order {
		if st.G.HasVar(fmt.Sprintf("$p%d", i)) {
			st.G.Rename(fmt.Sprintf("$p%d", i), mapping[from])
		}
	}
	// Substitute in ranges, matches and pendings (simultaneous).
	env := map[string]sym.Expr{}
	for from, to := range mapping {
		if from != to {
			env[from] = sym.Var(to)
		}
	}
	if len(env) > 0 {
		st.ownMatches()
		st.ownPending()
		for _, p := range st.Sets {
			p.Range = p.Range.SubstAll(env)
		}
		for _, m := range st.Matches {
			m.Sender = m.Sender.SubstAll(env)
			m.Receiver = m.Receiver.SubstAll(env)
		}
		for _, p := range st.Pending {
			p.Senders = p.Senders.SubstAll(env)
			if p.Shape == PendFan {
				p.Dests = p.Dests.SubstAll(env)
			}
			p.Offset = sym.SubstAll(p.Offset, env)
			if p.ValOK {
				p.Val = sym.SubstAll(p.Val, env)
			}
		}
	}
	return mapping
}

// ResolveHelpers rewrites helper variables in a terminal state's ranges and
// match records to equality witnesses over program symbols (constants, np,
// grid sizes), so reported topology ranges are meaningful outside the
// analysis (e.g. [k0] with k0 = np-2 becomes [np-2]).
func (st *State) ResolveHelpers() {
	for changed := true; changed; {
		changed = false
		used := map[string]bool{}
		note := func(e sym.Expr) {
			for _, v := range e.Vars() {
				if isHelperVar(v) {
					used[v] = true
				}
			}
		}
		for _, p := range st.Sets {
			for _, a := range p.Range.LB.Atoms() {
				note(a)
			}
			for _, a := range p.Range.UB.Atoms() {
				note(a)
			}
		}
		for _, m := range st.Matches {
			for _, b := range []procset.Bound{m.Sender.LB, m.Sender.UB, m.Receiver.LB, m.Receiver.UB} {
				for _, a := range b.Atoms() {
					note(a)
				}
			}
		}
		for v := range used {
			for _, w := range st.G.EqualWitnesses(v) {
				if w.Var == cg.ZeroVar {
					st.SubstEverywhere(v, sym.Const(w.C))
					changed = true
					break
				}
				if !isHelperVar(w.Var) && w.Var[0] != '$' && !isPSVar(w.Var) {
					st.SubstEverywhere(v, sym.VarPlus(w.Var, w.C))
					changed = true
					break
				}
			}
			if changed {
				break
			}
		}
	}
	// Project residual helpers out of the constraint graph. A helper that no
	// bound references after resolution is a leftover existential witness of
	// the particular join/widen pairing order that built the state; whether
	// one was ever minted depends on that order, so keeping its constraints
	// in G would make the rendered terminal state schedule-dependent. The
	// graph is kept transitively closed, so dropping a row projects the
	// variable out while preserving every consequence among the survivors.
	used := map[string]bool{}
	note := func(e sym.Expr) {
		for _, v := range e.Vars() {
			if isHelperVar(v) {
				used[v] = true
			}
		}
	}
	scanSet := func(s procset.Set) {
		for _, a := range s.LB.Atoms() {
			note(a)
		}
		for _, a := range s.UB.Atoms() {
			note(a)
		}
	}
	for _, p := range st.Sets {
		scanSet(p.Range)
	}
	for _, m := range st.Matches {
		scanSet(m.Sender)
		scanSet(m.Receiver)
	}
	for _, p := range st.Pending {
		scanSet(p.Senders)
		if p.Shape == PendFan {
			scanSet(p.Dests)
		}
		note(p.Offset)
		if p.ValOK {
			note(p.Val)
		}
	}
	dropped := false
	for _, v := range st.G.Vars() {
		if isHelperVar(v) && !used[v] {
			st.G.Drop(v)
			dropped = true
		}
	}
	if dropped {
		st.dirtyKeys()
	}
}

func isPSVar(v string) bool {
	return len(v) > 2 && v[0] == 'p' && v[1] == 's' && containsDot(v)
}

func containsDot(v string) bool {
	for i := 0; i < len(v); i++ {
		if v[i] == '.' {
			return true
		}
	}
	return false
}
