package core

// Rank-bounds observations: while the engine runs, every process set that
// reaches a communication operation can have its partner expression checked
// against the valid rank interval [0, np-1] using the Section VII
// constraint-graph client. The observations accumulate on the Result and
// feed the lint rank-bounds pass, which flags the classic unguarded
// `send x -> id + 1` boundary bug with a proof witness instead of waiting
// for the match search to fail.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/cg"
	"repro/internal/sym"
)

// BoundsStatus classifies one rank-bounds observation.
type BoundsStatus int

// Bounds statuses.
const (
	// BoundsUnknown: the target is affine in id but neither containment in
	// [0, np-1] nor a violation is provable from the dataflow state.
	BoundsUnknown BoundsStatus = iota
	// BoundsProven: every process in the range targets a rank in [0, np-1].
	BoundsProven
	// BoundsViolated: some process in the range provably targets a rank
	// outside [0, np-1].
	BoundsViolated
	// BoundsNonAffine: the target expression is outside the affine fragment
	// (division, modulus, products of variables); the difference-constraint
	// client cannot reason about it directly.
	BoundsNonAffine
)

func (s BoundsStatus) String() string {
	switch s {
	case BoundsUnknown:
		return "unknown"
	case BoundsProven:
		return "proven"
	case BoundsViolated:
		return "violated"
	case BoundsNonAffine:
		return "non-affine"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// CommBoundsObs is one rank-bounds observation: a process set at a
// communication node, the direction checked (send destination or receive
// source), and the verdict with a human-readable witness.
type CommBoundsObs struct {
	Node   int    // CFG node of the communication operation
	Dir    string // "dest" (send/sendrecv target) or "src" (recv/sendrecv source)
	Range  string // the process range that was positioned at the node
	Status BoundsStatus
	Detail string // witness or reason, e.g. "process np - 1 targets np"
}

func (o CommBoundsObs) String() string {
	return fmt.Sprintf("n%d %s %s %s: %s", o.Node, o.Dir, o.Range, o.Status, o.Detail)
}

// EntailsLE reports whether the constraint graph proves l <= r for affine
// symbolic expressions. It handles the difference-constraint fragment:
// constants, single variables and two-variable differences with unit
// coefficients (everything else returns false, i.e. "not provable").
func (st *State) EntailsLE(l, r sym.Expr) bool {
	d := sym.Sub(r, l) // need d >= 0
	var pos, neg string
	var c int64
	for _, t := range d.Terms() {
		switch {
		case len(t.Vars) == 0:
			c += t.Coef
		case len(t.Vars) == 1 && t.Coef == 1 && pos == "":
			pos = t.Vars[0]
		case len(t.Vars) == 1 && t.Coef == -1 && neg == "":
			neg = t.Vars[0]
		default:
			return false
		}
	}
	// pos - neg + c >= 0  <=>  neg <= pos + c.
	switch {
	case pos == "" && neg == "":
		return c >= 0
	case neg == "":
		return st.G.Entails(cg.ZeroVar, pos, c)
	case pos == "":
		return st.G.Entails(neg, cg.ZeroVar, c)
	}
	return st.G.Entails(neg, pos, c)
}

// CheckCommBounds decides whether the partner expression expr executed by
// set ps stays inside [0, np-1] for every process in the set's range. The
// expression is translated with id mapped to the IDMarker symbol; the check
// then substitutes the range's bound atoms for id at the extreme ends
// (minimum and maximum of an affine function over an interval are attained
// at the endpoints).
func (st *State) CheckCommBounds(ps *ProcSet, dir string, expr ast.Expr) CommBoundsObs {
	obs := CommBoundsObs{Node: ps.Node.ID, Dir: dir, Range: ps.Range.String()}
	e, ok := st.AffineExprID(ps, expr)
	if !ok {
		obs.Status = BoundsNonAffine
		obs.Detail = "target expression is outside the affine fragment"
		return obs
	}
	// Extract the coefficient of id; the rest must stay affine.
	var a int64
	for _, t := range e.Terms() {
		uses := false
		for _, v := range t.Vars {
			if v == IDMarker {
				uses = true
			}
		}
		if !uses {
			continue
		}
		if len(t.Vars) != 1 {
			obs.Status = BoundsNonAffine
			obs.Detail = "target multiplies id with another variable"
			return obs
		}
		a += t.Coef
	}
	rng := ps.Range.Enrich(st.Ctx())
	loAtoms, hiAtoms := rng.LB.Atoms(), rng.UB.Atoms()
	if a < 0 {
		// Decreasing in id: the minimum is at the upper end of the range.
		loAtoms, hiAtoms = hiAtoms, loAtoms
	}
	if a == 0 {
		// The target does not depend on id; evaluate e itself once.
		loAtoms, hiAtoms = []sym.Expr{sym.Zero}, []sym.Expr{sym.Zero}
	}
	verb := "sends to"
	if dir == "src" {
		verb = "receives from"
	}
	npTop := sym.VarPlus("np", -1)
	loOK, hiOK := false, false
	for _, atom := range loAtoms {
		v := sym.Subst(e, IDMarker, atom)
		if st.EntailsLE(sym.Zero, v) {
			loOK = true
			break
		}
	}
	for _, atom := range hiAtoms {
		v := sym.Subst(e, IDMarker, atom)
		if st.EntailsLE(v, npTop) {
			hiOK = true
			break
		}
	}
	if loOK && hiOK {
		obs.Status = BoundsProven
		obs.Detail = fmt.Sprintf("every process in %s targets a rank in [0, np - 1]", obs.Range)
		return obs
	}
	// A violation needs a witness end: some endpoint provably below 0 or at
	// or above np.
	for _, atom := range hiAtoms {
		v := sym.Subst(e, IDMarker, atom)
		if st.EntailsLE(sym.Var("np"), v) {
			obs.Status = BoundsViolated
			obs.Detail = fmt.Sprintf("process %s %s %s, beyond the last rank np - 1", atom, verb, v)
			return obs
		}
	}
	for _, atom := range loAtoms {
		v := sym.Subst(e, IDMarker, atom)
		if st.EntailsLE(v, sym.Const(-1)) {
			obs.Status = BoundsViolated
			obs.Detail = fmt.Sprintf("process %s %s %s, below rank 0", atom, verb, v)
			return obs
		}
	}
	obs.Status = BoundsUnknown
	obs.Detail = fmt.Sprintf("cannot prove the target stays in [0, np - 1] for %s", obs.Range)
	return obs
}

// recordCommBounds checks and records the rank-bounds observations for a
// process set positioned at a communication node (both facets of sendrecv).
func (e *engine) recordCommBounds(st *State, ps *ProcSet) {
	dest, src := commFacets(ps.Node)
	if dest != nil {
		e.addBoundsObs(st.CheckCommBounds(ps, "dest", dest))
	}
	if src != nil {
		e.addBoundsObs(st.CheckCommBounds(ps, "src", src))
	}
}

func (e *engine) addBoundsObs(obs CommBoundsObs) {
	key := fmt.Sprintf("%d|%s|%d|%s|%s", obs.Node, obs.Dir, obs.Status, obs.Range, obs.Detail)
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	if e.obsSeen[key] {
		return
	}
	e.obsSeen[key] = true
	e.res.CommBounds = append(e.res.CommBounds, obs)
}

// ---------------------------------------------------------------------------
// ⊤-blame traces

// TraceTo reconstructs a shortest explored-pCFG path from the initial
// configuration to the configuration with the given shape key, as the
// sequence of edges taken. It returns nil when the key was never reached.
// Used by the ⊤-blame diagnostics to show how the analysis arrived at the
// configuration that gave up.
func (r *Result) TraceTo(target string) []PCFGEdge {
	if target == "" {
		return nil
	}
	adj := map[string][]PCFGEdge{}
	for _, e := range r.Edges {
		adj[e.From] = append(adj[e.From], e)
	}
	for _, edges := range adj {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].To != edges[j].To {
				return edges[i].To < edges[j].To
			}
			return edges[i].Action < edges[j].Action
		})
	}
	prev := map[string]PCFGEdge{}
	seen := map[string]bool{"": true}
	queue := []string{""}
	for len(queue) > 0 && !seen[target] {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			prev[e.To] = e
			queue = append(queue, e.To)
		}
	}
	if !seen[target] {
		return nil
	}
	var path []PCFGEdge
	for cur := target; cur != ""; {
		e, ok := prev[cur]
		if !ok {
			break
		}
		path = append(path, e)
		cur = e.From
	}
	// Reverse into forward order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// BlameNode extracts the CFG node a pCFG action label refers to, or -1.
// Action labels render nodes as "n<id>[...]", "block n<id>", "match
// n<id>->n<id>" and similar.
func (e PCFGEdge) BlameNode() int {
	s := e.Action
	i := strings.IndexByte(s, 'n')
	for i >= 0 {
		j := i + 1
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j > i+1 {
			id := 0
			for _, c := range s[i+1 : j] {
				id = id*10 + int(c-'0')
			}
			return id
		}
		next := strings.IndexByte(s[i+1:], 'n')
		if next < 0 {
			return -1
		}
		i += 1 + next
	}
	return -1
}
