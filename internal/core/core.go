// Package core implements the paper's parallel dataflow analysis framework
// over parallel control-flow graphs (pCFGs, Sections IV-VI).
//
// A pCFG node is a tuple of (process set, CFG node) pairs; the analysis
// walks an abstract configuration graph in which each configuration holds:
//
//   - a list of symbolic process sets, each positioned at a CFG node and
//     possibly blocked on a communication operation,
//   - a constraint-graph dataflow state over per-set variable namespaces
//     (the Section VII client state), and
//   - the send-receive matches established so far.
//
// The engine (engine.go) performs the paper's propagate step: transfer
// functions for unblocked sets, process-set splitting at id-dependent
// branches, send-receive matching through a pluggable Matcher (Section VII's
// symbolic matcher, Section VIII's HSM-based cartesian matcher), set merging,
// and widening with the bound-atom intersection of Section VII-D extended by
// parametric generalization. ⊤ marks analysis give-up, exactly as the
// framework prescribes when no match can be made.
package core

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/cg"
	"repro/internal/procset"
	"repro/internal/sym"
	"repro/internal/tri"
)

// PV builds the namespaced constraint-graph variable for per-set variable
// name on process set id, e.g. PV(0, "x") == "ps0.x".
func PV(id int, name string) string { return fmt.Sprintf("ps%d.%s", id, name) }

// pvPrefix returns the namespace prefix of a set.
func pvPrefix(id int) string { return fmt.Sprintf("ps%d.", id) }

// ProcSet is one symbolic process set within a configuration: the paper's
// (process set id, CFG node) tuple element plus its pSets entry.
type ProcSet struct {
	ID      int         // stable identifier within a state lineage
	Node    *cfg.Node   // CFG node the set is about to execute
	Range   procset.Set // the processes represented
	Blocked bool        // true when waiting at a communication operation
	// Approx marks a set whose range is an over-approximation. Only sets
	// that have terminated (reached Exit) may be approximate: they never
	// participate in matching, so exactness (required by Section VI) is
	// preserved where it matters.
	Approx bool
}

func (p *ProcSet) String() string {
	b := ""
	if p.Blocked {
		b = "*"
	}
	if p.Approx {
		b += "~"
	}
	return fmt.Sprintf("%s@n%d%s", p.Range, p.Node.ID, b)
}

// AllProcs returns the full range [0..np-1].
func AllProcs() procset.Set {
	return procset.Range(sym.Zero, sym.VarPlus("np", -1))
}

// Match records an established send-receive match: the communication edge
// between two CFG nodes together with the symbolic process ranges involved.
// Accumulated matches form the application's communication topology.
type Match struct {
	SendNode int
	RecvNode int
	Sender   procset.Set
	Receiver procset.Set
}

func (m *Match) String() string {
	return fmt.Sprintf("n%d%s -> n%d%s", m.SendNode, m.Sender, m.RecvNode, m.Receiver)
}

// State is one abstract configuration (a pCFG node plus its dataflow state).
type State struct {
	Sets    []*ProcSet
	G       *cg.Graph
	Matches []*Match
	// Pending holds in-flight aggregated sends (the non-blocking send
	// extension; see pending.go).
	Pending []*PendingSend
	Top     bool
	TopWhy  string
	// TopNode is the CFG node blamed for the give-up (0 = unknown; node 0
	// is Entry, which never causes ⊤). TopKey is the shape key of the
	// configuration the give-up transition left from. Both are provenance
	// only: they never enter FullKey/ShapeKey, so they cannot affect
	// fixpoint detection or the parallel/sequential equivalence of keys.
	TopNode int
	TopKey  string
	nextID  int
	// nextFrozen numbers frozen-variable twins minted by pending sends.
	nextFrozen int
	// assigned marks program variables that are written somewhere (by an
	// assignment or a receive). Variables never written hold the same value
	// on every process (their input/default value), so they are treated as
	// global symbols rather than per-set variables.
	assigned map[string]bool
	// sharedMatches/sharedPending mark the Matches/Pending slices (and their
	// elements) as shared copy-on-write with another State produced by Clone.
	// Mutators call ownMatches/ownPending before writing elements or
	// appending; read-only uses and canonical in-place re-sorts (which keep
	// the same element set) need no copy.
	sharedMatches bool
	sharedPending bool
	// Canonical-key cache: FullKey/ShapeKey serializations are expensive
	// (sorts plus a full constraint-graph rendering), and the engine asks
	// for them on every table revisit. A cached key is valid while the
	// configuration content is unchanged: constraint-graph changes are
	// tracked by (graph identity, graph version); Sets/Matches/Pending/Top
	// changes by explicit dirtyKeys calls in the State-level mutators.
	// Clone deliberately does not copy the cache — transfer functions
	// mutate fresh clones through direct field writes that bypass
	// dirtyKeys, so clones must start cold.
	ckFull  keyCache
	ckShape keyCache
}

// keyCache is one cached canonical-key rendering, stamped with the graph
// identity and version it was built against.
type keyCache struct {
	key  string
	ok   bool
	g    *cg.Graph
	gVer uint64
}

// valid reports whether the cached key is still trustworthy for graph g.
func (c *keyCache) valid(g *cg.Graph) bool {
	return c.ok && c.g == g && c.gVer == g.Version()
}

// store records a freshly built key against the current graph state.
func (c *keyCache) store(key string, g *cg.Graph) {
	*c = keyCache{key: key, ok: true, g: g, gVer: g.Version()}
}

// dirtyKeys invalidates the cached canonical keys. Every State method that
// changes key-relevant content (Sets, Matches, Pending, Top) must call it;
// constraint-graph mutations are caught by the graph version instead.
func (st *State) dirtyKeys() {
	st.ckFull.ok = false
	st.ckShape.ok = false
}

// SetAssignedVars installs the set of program variables that are written
// anywhere in the program (collected from the CFG by the engine).
func (st *State) SetAssignedVars(m map[string]bool) { st.assigned = m }

// varName resolves a program variable reference for set psID: written
// variables live in the set's namespace; never-written ones are global.
func (st *State) varName(psID int, name string) string {
	if st.assigned == nil || st.assigned[name] {
		return PV(psID, name)
	}
	return name
}

// NewState builds the initial configuration: one set holding all processes
// [0..np-1] at the CFG entry, with np >= 1 known.
func NewState(entry *cfg.Node, opts cg.Options) *State {
	g := cg.New(opts)
	g.AddLE(cg.ZeroVar, "np", -1) // np >= 1
	all := AllProcs()
	return &State{
		Sets:   []*ProcSet{{ID: 0, Node: entry, Range: all}},
		G:      g,
		nextID: 1,
	}
}

// Ctx returns the procset comparison context for this state.
func (st *State) Ctx() procset.Ctx { return procset.Ctx{G: st.G} }

// Clone copies the configuration. The constraint graph, the match list and
// the pending-send list are shared copy-on-write: cg.Graph.Clone is an O(1)
// reference bump, and Matches/Pending keep pointing at the original records
// until either side mutates them (see ownMatches/ownPending). Only the small
// Sets slice is copied eagerly — its elements are written by almost every
// transfer function, so laziness would not pay.
func (st *State) Clone() *State {
	st.sharedMatches = true
	st.sharedPending = true
	ns := &State{
		G:             st.G.Clone(),
		Top:           st.Top,
		TopWhy:        st.TopWhy,
		TopNode:       st.TopNode,
		TopKey:        st.TopKey,
		nextID:        st.nextID,
		nextFrozen:    st.nextFrozen,
		Matches:       st.Matches,
		Pending:       st.Pending,
		assigned:      st.assigned,
		sharedMatches: true,
		sharedPending: true,
	}
	ns.Sets = make([]*ProcSet, len(st.Sets))
	for i, p := range st.Sets {
		cp := *p
		ns.Sets[i] = &cp
	}
	return ns
}

// Release returns the state's constraint-graph storage to the cg arena
// pool. Call only when the state is provably dead — a discarded step
// snapshot, a superseded table entry, a failed match attempt; the graph
// must not be touched afterwards. Storage still shared with live clones
// stays alive (cg reference counting), so Release is always safe on a
// state nothing else aliases. Safe on nil and on graphless ⊤ states.
func (st *State) Release() {
	if st == nil || st.G == nil {
		return
	}
	st.G.Release()
	st.G = nil
}

// ownMatches materializes a private copy of the match list (deep: elements
// included) if it is still shared with a clone. Must be called before any
// write to st.Matches or a *Match reached through it.
func (st *State) ownMatches() {
	if !st.sharedMatches {
		return
	}
	out := make([]*Match, len(st.Matches))
	for i, m := range st.Matches {
		cm := *m
		out[i] = &cm
	}
	st.Matches = out
	st.sharedMatches = false
}

// ownPending materializes a private copy of the pending-send list (deep) if
// it is still shared with a clone. Must be called before any write to
// st.Pending or a *PendingSend reached through it.
func (st *State) ownPending() {
	if !st.sharedPending {
		return
	}
	st.Pending = clonePendings(st.Pending)
	st.sharedPending = false
}

// FreshID allocates a new process-set identifier.
func (st *State) FreshID() int {
	id := st.nextID
	st.nextID++
	return id
}

// Set returns the process set with the given ID, or nil.
func (st *State) Set(id int) *ProcSet {
	for _, p := range st.Sets {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// MarkTop sends the configuration to ⊤ with a reason (the framework's
// give-up transition).
func (st *State) MarkTop(why string) {
	st.dirtyKeys()
	st.Top = true
	if st.TopWhy == "" {
		st.TopWhy = why
	}
}

// MarkTopAt is MarkTop with blame: it additionally records the CFG node
// whose operation triggered the give-up (first blame wins, like TopWhy).
func (st *State) MarkTopAt(n *cfg.Node, why string) {
	prev := st.TopWhy
	st.MarkTop(why)
	if prev == "" && n != nil {
		st.TopNode = n.ID
	}
}

// namespaceVars returns all constraint-graph variables in set id's
// namespace.
func (st *State) namespaceVars(id int) []string {
	prefix := pvPrefix(id)
	var out []string
	for _, v := range st.G.Vars() {
		if strings.HasPrefix(v, prefix) {
			out = append(out, v)
		}
	}
	return out
}

// CopyNamespace duplicates every constraint involving set from's variables
// into set to's namespace, preserving relations with globals and other sets.
// Used when a process set splits: the new subset inherits the old state
// (the paper's splitPSet).
func (st *State) CopyNamespace(from, to int) {
	fromPrefix, toPrefix := pvPrefix(from), pvPrefix(to)
	rename := func(v string) string {
		if strings.HasPrefix(v, fromPrefix) {
			return toPrefix + strings.TrimPrefix(v, fromPrefix)
		}
		return v
	}
	type bound struct {
		x, y string
		c    int64
	}
	var toAdd []bound
	st.G.ForEachBound(func(x, y string, c int64) {
		nx, ny := rename(x), rename(y)
		if nx != x || ny != y {
			toAdd = append(toAdd, bound{nx, ny, c})
		}
	})
	for _, b := range toAdd {
		st.G.AddLE(b.x, b.y, b.c)
	}
}

// DropNamespace removes all of set id's variables from the graph.
func (st *State) DropNamespace(id int) {
	for _, v := range st.namespaceVars(id) {
		st.G.Drop(v)
	}
}

// SplitSet splits ps into two subsets with the given ranges; ps keeps first,
// and a fresh set receives second (with a copied namespace). Returns the new
// set. Both remain at ps's node with ps's blocked flag.
func (st *State) SplitSet(ps *ProcSet, first, second procset.Set) *ProcSet {
	st.dirtyKeys()
	nid := st.FreshID()
	st.CopyNamespace(ps.ID, nid)
	ps.Range = first
	np := &ProcSet{ID: nid, Node: ps.Node, Range: second, Blocked: ps.Blocked}
	st.Sets = append(st.Sets, np)
	return np
}

// RemoveSet deletes the set with the given id (discovered empty), forgetting
// its namespace.
func (st *State) RemoveSet(id int) {
	st.dirtyKeys()
	st.invalidateNamespace(id)
	st.DropNamespace(id)
	for i, p := range st.Sets {
		if p.ID == id {
			st.Sets = append(st.Sets[:i], st.Sets[i+1:]...)
			return
		}
	}
}

// MergeSets merges set b into set a (both must be at the same CFG node with
// adjacent ranges, checked by the caller). The merged dataflow state is the
// join of "a's view" and "b's view renamed to a" — each variable keeps only
// facts valid for both subsets.
func (st *State) MergeSets(a, b *ProcSet, merged procset.Set) {
	st.dirtyKeys()
	// Ranges and matches may reference per-set variables whose facts the
	// merge will weaken or drop (e.g. the root's loop counter i with i = np
	// at the loop exit); rewrite them to equality witnesses first.
	st.invalidateNamespace(a.ID)
	st.invalidateNamespace(b.ID)
	// View 1: project away b.
	g1 := st.G.Clone()
	for _, v := range namespaceVarsOf(g1, b.ID) {
		g1.Forget(v)
	}
	// View 2: project away a, rename b -> a.
	g2 := st.G.Clone()
	for _, v := range namespaceVarsOf(g2, a.ID) {
		g2.Forget(v)
	}
	bPrefix, aPrefix := pvPrefix(b.ID), pvPrefix(a.ID)
	for _, v := range namespaceVarsOf(g2, b.ID) {
		target := aPrefix + strings.TrimPrefix(v, bPrefix)
		if g2.HasVar(target) {
			// Target was just forgotten (unconstrained): copy b's bounds
			// onto it and drop the source.
			copyBounds(g2, v, target)
			g2.Drop(v)
		} else {
			g2.Rename(v, target)
		}
	}
	old := st.G
	st.G = cg.Join(g1, g2)
	g1.Release()
	g2.Release()
	old.Release()
	a.Range = merged
	// Range atoms referencing b's variables must be rewritten before b's
	// namespace disappears; Enrich already ran during merge checks.
	st.removeSetKeepingRanges(b.ID)
}

func (st *State) removeSetKeepingRanges(id int) {
	st.dirtyKeys()
	for i, p := range st.Sets {
		if p.ID == id {
			st.Sets = append(st.Sets[:i], st.Sets[i+1:]...)
			break
		}
	}
	st.DropNamespace(id)
}

func namespaceVarsOf(g *cg.Graph, id int) []string {
	prefix := pvPrefix(id)
	var out []string
	for _, v := range g.Vars() {
		if strings.HasPrefix(v, prefix) {
			out = append(out, v)
		}
	}
	return out
}

// copyBounds copies all constraints of variable from onto variable to.
func copyBounds(g *cg.Graph, from, to string) {
	type bound struct {
		x, y string
		c    int64
	}
	var toAdd []bound
	g.ForEachBound(func(x, y string, c int64) {
		switch {
		case x == from && y != to:
			toAdd = append(toAdd, bound{to, y, c})
		case y == from && x != to:
			toAdd = append(toAdd, bound{x, to, c})
		}
	})
	for _, b := range toAdd {
		g.AddLE(b.x, b.y, b.c)
	}
}

// ---------------------------------------------------------------------------
// Canonical ordering, shape keys, alignment

var psVarRe = regexp.MustCompile(`ps\d+\.`)

// anonRangeKey renders a range with set prefixes erased, for stable
// tie-breaking independent of set IDs.
func anonRangeKey(s procset.Set) string {
	return psVarRe.ReplaceAllString(s.String(), "ps.")
}

// sortCanonical orders sets by (CFG node, blocked, anonymized range).
func (st *State) sortCanonical() {
	// Fast path: strictly increasing node IDs determine the order on
	// their own — no ties, nothing to sort. This is the overwhelmingly
	// common case (sortCanonical runs on every step and every key-cache
	// miss), and it skips both the sort machinery and the per-comparison
	// anonymized range keys below.
	inOrder := true
	for i := 1; i < len(st.Sets); i++ {
		if st.Sets[i-1].Node.ID >= st.Sets[i].Node.ID {
			inOrder = false
			break
		}
	}
	if inOrder {
		return
	}
	// Ties on node ID need the anonymized range key, which runs a regexp
	// replace — compute each at most once, not once per comparison.
	keys := make(map[*ProcSet]string, len(st.Sets))
	rangeKey := func(p *ProcSet) string {
		k, ok := keys[p]
		if !ok {
			k = anonRangeKey(p.Range)
			keys[p] = k
		}
		return k
	}
	sort.SliceStable(st.Sets, func(i, j int) bool {
		a, b := st.Sets[i], st.Sets[j]
		if a.Node.ID != b.Node.ID {
			return a.Node.ID < b.Node.ID
		}
		if a.Blocked != b.Blocked {
			return !a.Blocked
		}
		return rangeKey(a) < rangeKey(b)
	})
}

// ShapeKey identifies the pCFG node this configuration occupies: the sorted
// multiset of (CFG node, blocked) pairs.
func (st *State) ShapeKey() string {
	if st.Top {
		return "TOP"
	}
	if st.ckShape.valid(st.G) {
		st.G.StatsHandle().AddKeyCacheHits(1)
		return st.ckShape.key
	}
	st.G.StatsHandle().AddKeyCacheMisses(1)
	st.sortCanonical()
	st.sortPending()
	parts := make([]string, len(st.Sets))
	for i, p := range st.Sets {
		b := ""
		if p.Blocked {
			b = "*"
		}
		parts[i] = fmt.Sprintf("n%d%s", p.Node.ID, b)
	}
	key := strings.Join(parts, "|")
	for _, p := range st.Pending {
		key += fmt.Sprintf("|p%d%s", p.Node, p.Shape)
	}
	st.ckShape.store(key, st.G)
	return key
}

// FullKey identifies the configuration including ranges, dataflow state and
// matches; used for fixpoint detection.
func (st *State) FullKey() string {
	if st.Top {
		return "TOP:" + st.TopWhy
	}
	if st.ckFull.valid(st.G) {
		st.G.StatsHandle().AddKeyCacheHits(1)
		return st.ckFull.key
	}
	st.G.StatsHandle().AddKeyCacheMisses(1)
	st.sortCanonical()
	var b strings.Builder
	for _, p := range st.Sets {
		fmt.Fprintf(&b, "%s@n%d", p.Range.StringAll(), p.Node.ID)
		if p.Blocked {
			b.WriteString("*")
		}
		if p.Approx {
			b.WriteString("~")
		}
		b.WriteString("|")
	}
	b.WriteString("#")
	b.WriteString(st.G.String())
	b.WriteString("#")
	for _, m := range st.Matches {
		b.WriteString(m.String())
		b.WriteString(";")
	}
	st.sortPending()
	for _, p := range st.Pending {
		b.WriteString(p.String())
		if p.ValOK {
			fmt.Fprintf(&b, "=%s", p.Val)
		}
		b.WriteString(";")
	}
	key := b.String()
	st.ckFull.store(key, st.G)
	return key
}

// AlignTo renames st's set IDs positionally onto ref's (both must share the
// same ShapeKey and be canonically sorted). Ranges, matches and the
// constraint graph are rewritten consistently.
func (st *State) AlignTo(ref *State) {
	st.sortCanonical()
	ref.sortCanonical()
	if len(st.Sets) != len(ref.Sets) {
		return
	}
	mapping := map[int]int{}
	identical := true
	for i := range st.Sets {
		mapping[st.Sets[i].ID] = ref.Sets[i].ID
		if st.Sets[i].ID != ref.Sets[i].ID {
			identical = false
		}
	}
	if identical {
		return
	}
	st.renameSets(mapping)
}

// renameSets applies a simultaneous set-ID renaming.
func (st *State) renameSets(mapping map[int]int) {
	st.dirtyKeys()
	// Two-phase variable rename through temporaries to avoid collisions.
	var renames [][2]string
	for from, to := range mapping {
		if from == to {
			continue
		}
		fromPrefix, toPrefix := pvPrefix(from), pvPrefix(to)
		for _, v := range st.namespaceVars(from) {
			renames = append(renames, [2]string{v, toPrefix + strings.TrimPrefix(v, fromPrefix)})
		}
	}
	sort.Slice(renames, func(i, j int) bool { return renames[i][0] < renames[j][0] })
	for i, r := range renames {
		st.G.Rename(r[0], fmt.Sprintf("$tmp%d", i))
	}
	for i, r := range renames {
		st.G.Rename(fmt.Sprintf("$tmp%d", i), r[1])
	}
	// Substitution environment for range atoms.
	env := map[string]sym.Expr{}
	for _, r := range renames {
		env[r[0]] = sym.Var(r[1])
	}
	for _, p := range st.Sets {
		if to, ok := mapping[p.ID]; ok {
			p.ID = to
		}
		p.Range = p.Range.SubstAll(env)
	}
	st.ownMatches()
	for _, m := range st.Matches {
		m.Sender = m.Sender.SubstAll(env)
		m.Receiver = m.Receiver.SubstAll(env)
	}
	if st.nextID <= maxID(st.Sets) {
		st.nextID = maxID(st.Sets) + 1
	}
}

func maxID(sets []*ProcSet) int {
	m := 0
	for _, p := range sets {
		if p.ID > m {
			m = p.ID
		}
	}
	return m
}

// SubstEverywhere rewrites a variable in all ranges and match records (used
// by invertible assignments and widening-parameter shifts).
func (st *State) SubstEverywhere(name string, repl sym.Expr) {
	st.dirtyKeys()
	for _, p := range st.Sets {
		if p.Range.Uses(name) {
			p.Range = p.Range.Subst(name, repl)
		}
	}
	for i := 0; i < len(st.Matches); i++ {
		m := st.Matches[i]
		if !m.Sender.Uses(name) && !m.Receiver.Uses(name) {
			continue
		}
		st.ownMatches()
		m = st.Matches[i]
		if m.Sender.Uses(name) {
			m.Sender = m.Sender.Subst(name, repl)
		}
		if m.Receiver.Uses(name) {
			m.Receiver = m.Receiver.Subst(name, repl)
		}
	}
	for i := 0; i < len(st.Pending); i++ {
		p := st.Pending[i]
		uses := p.Senders.Uses(name) ||
			(p.Shape == PendFan && p.Dests.Uses(name)) ||
			p.Offset.Uses(name) ||
			(p.ValOK && p.Val.Uses(name))
		if !uses {
			continue
		}
		st.ownPending()
		p = st.Pending[i]
		if p.Senders.Uses(name) {
			p.Senders = p.Senders.Subst(name, repl)
		}
		if p.Shape == PendFan && p.Dests.Uses(name) {
			p.Dests = p.Dests.Subst(name, repl)
		}
		if p.Offset.Uses(name) {
			p.Offset = sym.Subst(p.Offset, name, repl)
		}
		if p.ValOK && p.Val.Uses(name) {
			p.Val = sym.Subst(p.Val, name, repl)
		}
	}
}

// EnrichEverywhere expands all range bounds with constraint-graph equality
// witnesses (done before widening so the atom intersection can succeed).
func (st *State) EnrichEverywhere() {
	st.dirtyKeys()
	ctx := st.Ctx()
	st.ownMatches()
	st.ownPending()
	for _, p := range st.Sets {
		p.Range = p.Range.Enrich(ctx)
	}
	for _, m := range st.Matches {
		m.Sender = m.Sender.Enrich(ctx)
		m.Receiver = m.Receiver.Enrich(ctx)
	}
	for _, p := range st.Pending {
		p.Senders = p.Senders.Enrich(ctx)
		if p.Shape == PendFan {
			p.Dests = p.Dests.Enrich(ctx)
		}
	}
}

// AddMatch records a send-receive match, folding it into an existing record
// for the same CFG node pair when the ranges union cleanly (in either
// direction — forward pipelines accumulate upward, backward ones downward).
func (st *State) AddMatch(sendNode, recvNode int, sender, receiver procset.Set) {
	st.dirtyKeys()
	st.ownMatches()
	ctx := st.Ctx()
	sender = sender.Enrich(ctx)
	receiver = receiver.Enrich(ctx)
	for _, m := range st.Matches {
		if m.SendNode != sendNode || m.RecvNode != recvNode {
			continue
		}
		mS := m.Sender.Enrich(ctx)
		mR := m.Receiver.Enrich(ctx)
		// A contradictory witness class proves anything (both fold checks
		// below pick atoms existentially), so folding through one can erase
		// a genuinely different communication — the differential fuzzer
		// caught a bounded gather losing its last sender this way after a
		// graph widen staled a witness. Keep the record as an independent
		// append instead; the combine path unions records soundly.
		if ctx.ContradictorySet(mS) || ctx.ContradictorySet(mR) ||
			ctx.ContradictorySet(sender) || ctx.ContradictorySet(receiver) {
			continue
		}
		// Same-range re-match (loop fixpoint): keep as is.
		if mS.SameRange(ctx, sender) == tri.True && mR.SameRange(ctx, receiver) == tri.True {
			return
		}
		su, ok1 := mS.UnionAdjacent(ctx, sender)
		ru, ok2 := mR.UnionAdjacent(ctx, receiver)
		if ok1 && ok2 {
			m.Sender, m.Receiver = su, ru
			return
		}
		su, ok1 = sender.UnionAdjacent(ctx, mS)
		ru, ok2 = receiver.UnionAdjacent(ctx, mR)
		if ok1 && ok2 {
			m.Sender, m.Receiver = su, ru
			return
		}
	}
	st.Matches = append(st.Matches, &Match{SendNode: sendNode, RecvNode: recvNode, Sender: sender, Receiver: receiver})
	sort.SliceStable(st.Matches, func(i, j int) bool {
		if st.Matches[i].SendNode != st.Matches[j].SendNode {
			return st.Matches[i].SendNode < st.Matches[j].SendNode
		}
		return st.Matches[i].RecvNode < st.Matches[j].RecvNode
	})
}

func (st *State) String() string {
	if st.Top {
		return "⊤ (" + st.TopWhy + ")"
	}
	var parts []string
	for _, p := range st.Sets {
		parts = append(parts, p.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
