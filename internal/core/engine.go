package core

import (
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/cg"
	"repro/internal/obs"
	"repro/internal/procset"
	"repro/internal/prof"
	"repro/internal/sym"
	"repro/internal/tri"
)

// Worklist schedule names accepted by Options.Schedule.
const (
	// ScheduleFIFO visits configurations breadth-first in discovery order
	// (the default; Workers=1 with this schedule reproduces the classic
	// sequential worklist exactly).
	ScheduleFIFO = "fifo"
	// ScheduleLIFO explores depth-first: loop bodies reach their local
	// fixpoint before sibling configurations are expanded.
	ScheduleLIFO = "lifo"
	// ScheduleShape pops the lexicographically smallest shape key first,
	// grouping configurations of the same control region so queued
	// revisions coalesce into fewer visits.
	ScheduleShape = "shape"
)

// Options configures the pCFG analysis engine.
type Options struct {
	// Matcher is the client analysis's send-receive matcher (required).
	Matcher Matcher
	// CGOpts selects the constraint-graph backend and instrumentation.
	CGOpts cg.Options
	// JoinVisits is how many revisits of a pCFG shape use plain join before
	// switching to widening (default 12). The join ladder must run long
	// enough for stable relations (e.g. between widening parameters and np)
	// to separate from genuinely growing bounds before widening drops the
	// latter.
	JoinVisits int
	// MaxVisits bounds revisits of one shape before giving up (default 64).
	MaxVisits int
	// MaxSteps bounds total propagate steps (default 100000).
	MaxSteps int
	// MaxSets bounds the process sets per configuration before the
	// analysis gives up (default 24); fragmentation beyond this indicates
	// a pattern outside the client's abstraction.
	MaxSets int
	// NonBlockingSends enables the Section X extension: sends do not block;
	// they aggregate into pending-send records that receivers later match.
	// Patterns that send before receiving (all-to-one-then-back, send-first
	// stencils) then need no pipeline analysis.
	NonBlockingSends bool
	// Trace receives step-by-step analysis logging when non-nil.
	Trace io.Writer
	// Workers is the number of goroutines driving the worklist (default 1:
	// the sequential engine). With Workers > 1 the configuration table is
	// sharded and workers step snapshots of distinct configurations
	// concurrently; the Matcher must then be safe for concurrent use (the
	// bundled clients are).
	Workers int
	// Schedule selects the worklist order: ScheduleFIFO (default),
	// ScheduleLIFO or ScheduleShape. Any other value is an error.
	Schedule string
	// RecordCommBounds enables rank-bounds observations: every process set
	// reaching a communication operation has its partner expression checked
	// against [0, np-1] with the constraint-graph client, and the verdicts
	// accumulate in Result.CommBounds (for the lint rank-bounds pass). Off
	// by default — the checks cost extra entailment queries per comm site.
	RecordCommBounds bool
	// Shards is the configuration-table shard count for the parallel
	// engine, rounded up to a power of two (default 32). Smaller values
	// increase lock contention; useful in tests to stress the locking.
	Shards int
	// Tracer receives a span per engine phase (step, transfer, match,
	// split, insert, join, widen, give-up commit, finish; plus dequeue on
	// the parallel path) when non-nil. Tracing only observes — results are
	// byte-identical with it on or off — and the nil default costs nothing.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the engine's counters and gauges:
	// final step/widening/config counts, interned-key count, per-shard
	// table sizes, and (parallel path) live + high-water scheduler
	// queue-depth and pending gauges.
	Metrics *obs.Registry
	// TracePID labels this analysis's spans and metric series when several
	// jobs share one tracer or registry (AnalyzeAll assigns input position
	// + 1 when zero).
	TracePID int
	// Name labels this analysis in structured logs, progress snapshots and
	// pprof labels (AnalyzeAll copies the Job name when empty).
	Name string
	// Log, when non-nil, receives the engine's structured lifecycle events
	// (start, convergence, stall, budget exhaustion) with per-analysis
	// attributes. Nil disables logging at the cost of one pointer check.
	Log *slog.Logger
	// Progress, when non-nil, receives this analysis's live progress
	// sampler (and, after convergence, its final snapshot) keyed by
	// TracePID — the backing store of the /statusz surface. Sampling reads
	// only atomics, mutex-protected counters and brief shard-lock queue
	// sizes, so it never stalls the fixpoint.
	Progress *obs.ProgressTracker
	// FlightRecorder, when non-nil, continuously records recent scheduler,
	// step and commit events into a bounded ring buffer for post-mortem
	// dumps (stall watchdog, step-budget abort).
	FlightRecorder *obs.FlightRecorder
	// StallTimeout, when positive, arms a no-progress watchdog over the
	// fixpoint: if steps, widenings and configuration discovery all stand
	// still for this long, the watchdog logs the stall and dumps the
	// flight recorder to StallDump. Observation only — the run continues.
	StallTimeout time.Duration
	// StallDump receives the flight-recorder dump (JSON lines, single
	// write) when the watchdog fires or the step budget aborts the run.
	StallDump io.Writer
	// ForceStall pins the watchdog's progress reading to zero and holds
	// the (converged) run open until the watchdog fires: the deterministic
	// smoke path for the stall machinery. Requires StallTimeout > 0.
	ForceStall bool
	// ProfileLabels attaches runtime/pprof goroutine labels (psdf_job,
	// psdf_worker, psdf_phase) to the parallel workers and the finish
	// post-pass, so CPU profiles attribute samples per analysis and phase.
	ProfileLabels bool
	// Profiler, when non-nil, collects the source-attribution profile:
	// per-CFG-node step time, spawned configurations, matcher/memo/prover
	// cost, joins, widenings and their failing bound pairs, give-ups and ⊤
	// demotions. Workers record into private per-tid lanes (no hot-path
	// synchronization); the engine commits the merged lanes into the
	// profiler once, after convergence. Nil costs one pointer check.
	Profiler *prof.Profiler
	// onRevision, when non-nil, observes every canonicalized successor
	// state the sequential engine delivers to the configuration table,
	// keyed by shape. Recording hook for the arrival-order permutation
	// suite (installed via WithRevisionHook in tests).
	onRevision func(key string, st *State)
}

// parallelJoinVisits is the join→widen rung the parallel engine defaults
// to (Options.JoinVisits overrides it). See the resolution in Analyze for
// why coalesced delivery makes the sequential default an over-delay.
const parallelJoinVisits = 3

func (o *Options) joinVisits() int {
	if o.JoinVisits <= 0 {
		return 12
	}
	return o.JoinVisits
}

func (o *Options) maxVisits() int {
	if o.MaxVisits <= 0 {
		return 64
	}
	return o.MaxVisits
}

func (o *Options) maxSets() int {
	if o.MaxSets <= 0 {
		return 24
	}
	return o.MaxSets
}

func (o *Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 100000
	}
	return o.MaxSteps
}

func (o *Options) workers() int {
	if o.Workers <= 1 {
		return 1
	}
	return o.Workers
}

func (o *Options) shardCount() int {
	n := o.Shards
	if n <= 0 {
		n = 32
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (o *Options) schedule() (string, error) {
	switch o.Schedule {
	case "", ScheduleFIFO:
		return ScheduleFIFO, nil
	case ScheduleLIFO:
		return ScheduleLIFO, nil
	case ScheduleShape:
		return ScheduleShape, nil
	}
	return "", fmt.Errorf("core: unknown Options.Schedule %q (want %q, %q or %q)",
		o.Schedule, ScheduleFIFO, ScheduleLIFO, ScheduleShape)
}

// PCFGEdge is one explored pCFG edge: a transition between configurations.
type PCFGEdge struct {
	From, To string // shape keys
	Action   string
}

// Result is the outcome of the analysis.
type Result struct {
	// Matches is the communication topology: the union of send-receive
	// matches over all terminal configurations.
	Matches []*Match
	// Finals are the configurations where every process set reached Exit.
	Finals []*State
	// Tops are the give-up configurations with their reasons.
	Tops []*State
	// Configs counts distinct pCFG nodes (configuration shapes) explored.
	Configs int
	// Edges are the explored pCFG edges.
	Edges []PCFGEdge
	// Steps counts propagate invocations; Widenings counts widen events.
	Steps     int
	Widenings int
	// Prints records what the analysis knows at each print site: the
	// constant-propagation observations of the Fig 2 client.
	Prints []PrintObs
	// Visited, indexed by CFG node ID, marks nodes some non-empty process
	// set reached during exploration. Unvisited non-synthetic nodes are
	// dead code (when the analysis completed cleanly).
	Visited []bool
	// CommBounds holds the rank-bounds observations collected when
	// Options.RecordCommBounds is set.
	CommBounds []CommBoundsObs
}

// PrintObs is a dataflow fact observed at a print statement: the printing
// process range and the printed value when the analysis pins it.
type PrintObs struct {
	Node  int    // CFG node of the print
	Range string // printing process set
	Val   int64  // known constant value
	Known bool   // false when the value is not a compile-time constant
}

// PCFGDot renders the explored pCFG (configurations and transitions) as a
// Graphviz digraph; matching transitions are highlighted.
func (r *Result) PCFGDot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	ids := map[string]int{}
	nodeID := func(key string) int {
		if id, ok := ids[key]; ok {
			return id
		}
		id := len(ids)
		ids[key] = id
		label := key
		if label == "" {
			label = "start"
		}
		fmt.Fprintf(&b, "  c%d [label=%q];\n", id, label)
		return id
	}
	seen := map[string]bool{}
	for _, e := range r.Edges {
		k := e.From + ">" + e.To + ">" + e.Action
		if seen[k] {
			continue
		}
		seen[k] = true
		from := nodeID(e.From)
		to := nodeID(e.To)
		style := ""
		if strings.HasPrefix(e.Action, "match") || strings.HasPrefix(e.Action, "pending-match") ||
			strings.HasPrefix(e.Action, "self-match") || strings.HasPrefix(e.Action, "exchange") {
			style = ", style=bold, color=blue"
		}
		fmt.Fprintf(&b, "  c%d -> c%d [label=%q%s];\n", from, to, e.Action, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// Clean reports whether the analysis completed without giving up anywhere.
func (r *Result) Clean() bool { return len(r.Tops) == 0 && len(r.Finals) > 0 }

// TopReasons lists the distinct give-up reasons.
func (r *Result) TopReasons() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range r.Tops {
		if !seen[t.TopWhy] {
			seen[t.TopWhy] = true
			out = append(out, t.TopWhy)
		}
	}
	sort.Strings(out)
	return out
}

type tableEntry struct {
	st *State
	// rev is the entry's revision-chain length: how many state-changing
	// revisions (combines whose result differed from the previous entry
	// state) have been committed. It is a property of the joined abstract
	// state itself, not of message traffic — re-deliveries and stale
	// re-steps whose information the entry already holds do not advance
	// it — so the join→widen ladder and the give-up threshold keyed off it
	// fire identically for any revision arrival order.
	rev        int
	widenParam string
	// seen records the full keys of every state delivered to (or committed
	// on) this entry. The entry only ascends, so each of those states stays
	// below it forever: a re-delivery with a key in this set — the parallel
	// engine's stale-re-step churn — is dropped before the combine runs.
	// Beyond saving the combine, this keeps the widen rung reductive on
	// duplicates (cg.Widen against an already-absorbed state is not a
	// representation no-op, so without the filter duplicate traffic could
	// advance the revision chain).
	seen map[string]struct{}
	// paramMints counts fresh widening parameters anchored at this key; a
	// key that keeps needing new parameters is not converging.
	paramMints int
	// stuckTops are the give-up (⊤) successors produced by this entry's most
	// recent step, replaced wholesale on every re-step. They are not merged
	// into the table during the run: a ⊤ verdict derived from an entry
	// version that is later revised is transient — the revised entry may
	// step past the dead end — so give-ups become real only at convergence,
	// when finish() commits the verdicts of the final entry versions
	// (commitStuckTops). Without the deferral a parallel worker stepping a
	// stale intermediate version could permanently poison the result with a
	// ⊤ the sequential engine never sees.
	stuckTops []succ
}

// tableShard is one lock-striped slice of the configuration table, indexed
// by interned shape-key ids. The sequential engine uses the shards as plain
// maps (no locking); the parallel engine locks a shard around entry reads,
// snapshots and revisions.
type tableShard struct {
	mu sync.Mutex
	m  map[uint64]*tableEntry
}

type engine struct {
	g         *cfg.Graph
	opts      Options
	in        *interner
	shards    []tableShard
	shardMask uint64
	inv       *Invariants
	res       *Result
	resMu     sync.Mutex // guards res.Edges, res.Prints and Trace output
	nParam    atomic.Int64
	steps     atomic.Int64
	widenings atomic.Int64
	giveUps   atomic.Int64
	budgetHit atomic.Bool
	parallel  bool
	started   time.Time
	dumpOnce  sync.Once
	// visited marks CFG nodes some non-empty process set was positioned at
	// in a reachable configuration (indexed by node ID; used by the
	// dead-code lint pass). Atomic because parallel workers normalize
	// concurrently.
	visited []atomic.Bool
	// obsMu/obsSeen dedupe rank-bounds observations across revisits.
	obsMu   sync.Mutex
	obsSeen map[string]bool

	// Sequential path (Workers == 1).
	queue      workQueue
	inWork     map[uint64]bool
	seqDepthHW int // queue-depth high-water mark

	// Parallel path (Workers > 1).
	sched *scheduler

	// Source-attribution profiler (nil when Options.Profiler is nil):
	// per-tid private counter lanes merged into Options.Profiler once at
	// commit, after all workers have joined. profMemo/profProver expose
	// the matcher's cumulative memo-miss and prover-search counters so
	// per-callsite deltas can be attributed; both are optional client
	// capabilities discovered by interface assertion (keeping core free of
	// a client/hsm dependency, same pattern as sampleProgress).
	prof       *prof.Lanes
	profMemo   *MatchMemo
	profProver func() (searches, ns int64)
}

func (e *engine) shard(id uint64) *tableShard { return &e.shards[id&e.shardMask] }

func (e *engine) stats() *cg.Stats { return e.opts.CGOpts.Stats }

// span opens a phase span on this engine's trace lane (tid 0 is the
// sequential engine / driver goroutine; parallel workers use 1..Workers).
// Free when Options.Tracer is nil.
func (e *engine) span(tid int, ph obs.Phase, key string) obs.Span {
	return e.opts.Tracer.Begin(e.opts.TracePID, tid, ph, key)
}

// profNow reads the clock only when profiling is on; the zero time is the
// disabled sentinel consumed by profStep.
func (e *engine) profNow() time.Time {
	if e.prof == nil {
		return time.Time{}
	}
	return time.Now()
}

// profStep records one step event against node on the caller's lane.
func (e *engine) profStep(tid, node int, t0 time.Time, spawned int) {
	if e.prof == nil {
		return
	}
	e.prof.Step(tid, node, time.Since(t0).Nanoseconds(), spawned)
}

// matchProbe captures the matcher-shared counters around one Matcher call
// so the deltas can be attributed to the calling site. A stack value: the
// disabled path allocates nothing and costs one pointer check per end.
type matchProbe struct {
	t0       time.Time
	misses   int
	searches int64
	proverNs int64
}

func (e *engine) profMatchStart() matchProbe {
	if e.prof == nil {
		return matchProbe{}
	}
	var pr matchProbe
	if e.profMemo != nil {
		pr.misses = e.profMemo.MissCount()
	}
	if e.profProver != nil {
		pr.searches, pr.proverNs = e.profProver()
	}
	pr.t0 = time.Now()
	return pr
}

func (e *engine) profMatchEnd(tid, node int, pr matchProbe, matched bool) {
	if e.prof == nil {
		return
	}
	ns := time.Since(pr.t0).Nanoseconds()
	var misses, searches, proverNs int64
	if e.profMemo != nil {
		misses = int64(e.profMemo.MissCount() - pr.misses)
	}
	if e.profProver != nil {
		s, n := e.profProver()
		searches, proverNs = s-pr.searches, n-pr.proverNs
	}
	e.prof.Match(tid, node, ns, misses, searches, proverNs, matched)
}

// blameNode picks a deterministic attribution node for combine events:
// the smallest non-exit node some process set is positioned at. Unlike
// firstActiveNode it must not reorder st.Sets — it runs between AlignTo
// and combine, where the positional alignment of entry.st and the
// incoming state is load-bearing.
func blameNode(st *State) int {
	best := -1
	for _, p := range st.Sets {
		if p.Node.Kind == cfg.Exit {
			continue
		}
		if best < 0 || p.Node.ID < best {
			best = p.Node.ID
		}
	}
	if best >= 0 {
		return best
	}
	if len(st.Sets) > 0 {
		return st.Sets[0].Node.ID
	}
	return 0
}

// Analyze runs the parallel dataflow analysis over the program's CFG.
func Analyze(g *cfg.Graph, opts Options) (*Result, error) {
	if opts.Matcher == nil {
		return nil, fmt.Errorf("core: Options.Matcher is required")
	}
	schedule, err := opts.schedule()
	if err != nil {
		return nil, err
	}
	if opts.Schedule == "" && opts.workers() > 1 {
		// State-derived revision counters make every schedule
		// equivalence-safe (the converged result is interleaving- and
		// order-independent by construction), so the parallel engine is free
		// to default to the depth-first order: it reaches each
		// configuration's widest pending state soonest, which shortens the
		// realized revision chains and lets the coalescing scheduler absorb
		// the most stale traffic. Sequential runs keep FIFO — the classic
		// worklist order the paper's step counts are quoted against.
		schedule = ScheduleLIFO
	}
	if opts.JoinVisits == 0 && opts.workers() > 1 {
		// The parallel engine's revision chains are built from coalesced
		// deliveries: one revision reaching a table entry is the join of
		// every successor produced since the entry was last stepped, so a
		// single chain link carries what the sequential engine spreads over
		// roughly frontier-width many links. Counting the sequential default
		// of 12 links before the widen rung therefore over-delays widening
		// by about that factor; three coalesced joins carry the same
		// information. Two is too few: on the stencil workloads the
		// parametric range widening (atom-intersection failure minting a
		// fresh bound parameter) can then fire before enough lineages have
		// joined, and while the rung itself is order-independent, the chain
		// *content* at rung time is not — a 300-iteration race-detector
		// sweep showed rare spurious ⊤ verdicts at 2 and none at 3. The
		// rung is still a pure function of the joined states (arrival order
		// cannot move it), and the equivalence and arrival-order stress
		// suites hold the converged results byte-identical to the
		// sequential engine's across every workload and worker count.
		opts.JoinVisits = parallelJoinVisits
	}
	e := &engine{
		g:       g,
		opts:    opts,
		in:      newInterner(),
		shards:  make([]tableShard, opts.shardCount()),
		inv:     NewInvariants(),
		res:     &Result{},
		visited: make([]atomic.Bool, len(g.Nodes)),
		obsSeen: map[string]bool{},
		started: time.Now(),
	}
	e.shardMask = uint64(len(e.shards) - 1)
	for i := range e.shards {
		e.shards[i].m = map[uint64]*tableEntry{}
	}
	if opts.Profiler != nil {
		// opts.workers() is an upper bound: runParallel may clamp the
		// worker count to GOMAXPROCS, which only leaves lanes idle.
		e.prof = opts.Profiler.NewLanes(opts.workers(), len(g.Nodes))
		if mp, ok := opts.Matcher.(interface{ Memo() *MatchMemo }); ok {
			e.profMemo = mp.Memo()
		}
		if pp, ok := opts.Matcher.(interface {
			ProverSearches() int64
			ProverSearchNs() int64
		}); ok {
			e.profProver = func() (int64, int64) { return pp.ProverSearches(), pp.ProverSearchNs() }
		}
	}
	// Pre-scan assume statements for global invariants (np = nrows*ncols
	// etc.) so the HSM matcher has them from the start.
	for _, n := range g.Nodes {
		if n.Kind == cfg.Assume {
			e.inv.Collect(n.Cond)
		}
	}
	init := NewState(g.Entry, opts.CGOpts)
	init.SetAssignedVars(assignedVars(g))
	InjectAffineConsequences(init.G, e.inv)
	e.normalize(init)
	e.logStart(schedule)
	wd := e.armWatchdog()
	if opts.workers() > 1 {
		e.runParallel(init, schedule)
	} else {
		e.runSequential(init, schedule)
	}
	e.settleWatchdog(wd)
	if e.budgetHit.Load() {
		if lg := e.opts.Log; lg != nil {
			lg.Error("analysis aborted: step budget exhausted",
				"job", e.opts.TracePID, "name", e.jobLabel(), "max_steps", opts.maxSteps())
		}
		e.dumpFlight("step-budget")
	}
	e.withProfileLabels("finish", -1, e.finish)
	e.finishProgress()
	// Lanes are quiescent here (workers joined, finish post-pass done), so
	// the merge reads them without synchronization.
	opts.Profiler.Commit(g, e.prof)
	e.logDone()
	if opts.Metrics != nil {
		e.publishMetrics()
	}
	return e.res, nil
}

// runSequential is the single-goroutine fixpoint loop: pop an id, step the
// table state, insert the successors. With the FIFO queue it visits
// configurations in exactly the order the classic string-keyed worklist
// did (ids are assigned densely in first-insert order).
func (e *engine) runSequential(init *State, schedule string) {
	e.queue = newQueue(schedule, e.in)
	e.inWork = map[uint64]bool{}
	// The sequential queue is driver-goroutine-private, so the sampler
	// exposes only the race-safe counters (steps, configs, ladder); the
	// queue-depth fields stay zero on this path.
	e.registerProgress(false)
	e.insert("", init, "start", 0)
	for {
		id, ok := e.queue.pop()
		if !ok {
			break
		}
		if int(e.steps.Load()) >= e.opts.maxSteps() {
			e.budgetHit.Store(true)
			break
		}
		e.inWork[id] = false
		entry := e.shard(id).m[id]
		if entry == nil {
			continue
		}
		st := entry.st
		if st.Top || e.allAtExit(st) {
			continue
		}
		e.steps.Add(1)
		key := e.in.keyOf(id)
		e.rec().Record("step", e.opts.TracePID, 0, key, "")
		sp := e.span(0, obs.PhaseStep, key)
		var tops []succ
		for _, sa := range e.step(st, 0, key) {
			if sa.st.Top {
				tops = append(tops, sa)
				continue
			}
			e.insert(key, sa.st, sa.action, 0)
		}
		entry.stuckTops = tops
		sp.End()
	}
}

// finish derives the result from the converged table: a deterministic
// post-pass shared by the sequential and parallel engines. Terminal
// configurations are classified by inspection (an entry widened after
// first being visited keeps its shape, so all-at-exit and Top are stable
// properties of the final entry), helper parameters are resolved, and
// every output slice is sorted by content so the result is independent of
// table iteration and — in the parallel case — worker interleaving.
func (e *engine) finish() {
	sp := e.span(0, obs.PhaseFinish, "")
	defer sp.End()
	gsp := e.span(0, obs.PhaseGiveupCommit, "")
	e.commitStuckTops()
	gsp.End()
	configs := 0
	for si := range e.shards {
		configs += len(e.shards[si].m)
		for _, entry := range e.shards[si].m {
			if entry.st.Top {
				e.res.Tops = append(e.res.Tops, entry.st)
			} else if e.allAtExit(entry.st) {
				e.res.Finals = append(e.res.Finals, entry.st)
			}
		}
	}
	if e.budgetHit.Load() {
		e.res.Tops = append(e.res.Tops, &State{Top: true, TopWhy: "step budget exhausted"})
	}
	// Certify each final before publishing it: every match witness class
	// must be coherent (all atoms provably equal under the final G). A
	// stale witness — enriched under a constraint that a later join/widen
	// weakened — can survive to the terminal state without being provably
	// contradictory, e.g. {np - 2, 2} under np >= 4, which is wrong for
	// np >= 5. Downstream consumers pick atoms from the class arbitrarily,
	// so an incoherent final silently misreports the topology; demote it
	// to ⊤ instead (a sound over-approximation, reported as imprecision).
	finals := e.res.Finals[:0]
	for _, fin := range e.res.Finals {
		fin.ResolveHelpers()
		if why, node := incoherentMatch(fin); why != "" {
			fin.Top = true
			fin.TopWhy = "stale match witness survived widening: " + why
			e.res.Tops = append(e.res.Tops, fin)
			e.prof.TopDemotion(0, node)
			continue
		}
		finals = append(finals, fin)
	}
	e.res.Finals = finals
	sort.Slice(e.res.Finals, func(i, j int) bool { return e.res.Finals[i].FullKey() < e.res.Finals[j].FullKey() })
	sort.Slice(e.res.Tops, func(i, j int) bool { return e.res.Tops[i].TopWhy < e.res.Tops[j].TopWhy })
	e.res.Configs = configs
	e.res.Steps = int(e.steps.Load())
	e.res.Widenings = int(e.widenings.Load())
	e.res.Visited = make([]bool, len(e.visited))
	for i := range e.visited {
		e.res.Visited[i] = e.visited[i].Load()
	}
	sort.Slice(e.res.CommBounds, func(i, j int) bool {
		a, b := e.res.CommBounds[i], e.res.CommBounds[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Dir != b.Dir {
			return a.Dir < b.Dir
		}
		if a.Status != b.Status {
			return a.Status < b.Status
		}
		if a.Range != b.Range {
			return a.Range < b.Range
		}
		return a.Detail < b.Detail
	})
	if e.parallel {
		// Edge and print discovery order depends on the interleaving; sort
		// for run-to-run stability.
		sort.Slice(e.res.Edges, func(i, j int) bool {
			a, b := e.res.Edges[i], e.res.Edges[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Action < b.Action
		})
		sort.Slice(e.res.Prints, func(i, j int) bool {
			a, b := e.res.Prints[i], e.res.Prints[j]
			if a.Node != b.Node {
				return a.Node < b.Node
			}
			if a.Range != b.Range {
				return a.Range < b.Range
			}
			return a.Val < b.Val
		})
	}
	e.collectMatches()
}

// commitStuckTops merges the deferred give-up successors of still-stuck
// entries into the table. During the run a ⊤ successor is only recorded on
// its source entry (tableEntry.stuckTops), so it becomes real only if the
// source's final converged version still produces it. Sources are ordered
// by shape key — not by interned id, which in the parallel engine depends
// on the interleaving — so the surviving ⊤ state (all ⊤ states share the
// one "TOP" table key) is deterministic.
func (e *engine) commitStuckTops() {
	type stuckSrc struct {
		fromKey string
		succs   []succ
	}
	var srcs []stuckSrc
	for si := range e.shards {
		for id, entry := range e.shards[si].m {
			if len(entry.stuckTops) > 0 {
				srcs = append(srcs, stuckSrc{e.in.keyOf(id), entry.stuckTops})
			}
		}
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].fromKey < srcs[j].fromKey })
	for _, s := range srcs {
		for _, sa := range s.succs {
			if sa.st.TopKey == "" {
				sa.st.TopKey = s.fromKey
			}
			key := sa.st.ShapeKey()
			e.recordEdge(s.fromKey, key, sa.action)
			id := e.in.intern(key)
			if sh := e.shard(id); sh.m[id] == nil {
				sh.m[id] = &tableEntry{st: sa.st}
				e.giveUps.Add(1)
				e.prof.GiveUp(0, sa.st.TopNode)
				e.rec().Record("giveup", e.opts.TracePID, 0, key, "stuck: "+sa.action)
			}
		}
	}
}

// incoherentMatch returns a description of the first match record of st
// whose witness classes are not certified coherent under st's final
// constraint graph (plus the send node to blame for profiling), or "" if
// every record checks out. Emptiness is not an excuse: proving a range
// empty through an incoherent class uses the same unreliable atom-picking
// the check exists to reject.
func incoherentMatch(st *State) (string, int) {
	ctx := st.Ctx()
	for _, m := range st.Matches {
		if !ctx.CoherentSet(m.Sender) || !ctx.CoherentSet(m.Receiver) {
			return fmt.Sprintf("match n%d->n%d %s -> %s", m.SendNode, m.RecvNode,
				m.Sender.StringAll(), m.Receiver.StringAll()), m.SendNode
		}
	}
	return "", 0
}

// collectMatches unions match records over terminal configurations (finals
// first; top configurations contribute when no final exists).
func (e *engine) collectMatches() {
	sources := e.res.Finals
	if len(sources) == 0 {
		for _, t := range e.res.Tops {
			sources = append(sources, t)
		}
	}
	seen := map[string]bool{}
	for _, st := range sources {
		ctx := st.Ctx()
		for _, m := range st.Matches {
			// Skip artifacts whose ranges are provably empty in this
			// terminal state (e.g. the last pipeline stage under the final
			// value of a widening parameter).
			if m.Sender.Empty(ctx) == tri.True || m.Receiver.Empty(ctx) == tri.True {
				continue
			}
			// Finals have already been enriched and helper-resolved.
			cm := *m
			k := cm.String()
			if !seen[k] {
				seen[k] = true
				e.res.Matches = append(e.res.Matches, &cm)
			}
		}
	}
	sort.Slice(e.res.Matches, func(i, j int) bool {
		a, b := e.res.Matches[i], e.res.Matches[j]
		if a.SendNode != b.SendNode {
			return a.SendNode < b.SendNode
		}
		if a.RecvNode != b.RecvNode {
			return a.RecvNode < b.RecvNode
		}
		return a.String() < b.String()
	})
}

func (e *engine) tracef(format string, args ...any) {
	if e.opts.Trace != nil {
		e.resMu.Lock()
		fmt.Fprintf(e.opts.Trace, format+"\n", args...)
		e.resMu.Unlock()
	}
}

// assignedVars collects program variables written anywhere in the CFG.
func assignedVars(g *cfg.Graph) map[string]bool {
	out := map[string]bool{}
	for _, n := range g.Nodes {
		switch n.Kind {
		case cfg.Assign:
			out[n.AssignName] = true
		case cfg.Recv, cfg.SendRecv:
			out[n.RecvName] = true
		}
	}
	return out
}

// firstActiveNode picks a representative non-exit node of a configuration
// for ⊤ blame (canonical order keeps the choice deterministic).
func firstActiveNode(st *State) int {
	st.sortCanonical()
	for _, p := range st.Sets {
		if p.Node.Kind != cfg.Exit {
			return p.Node.ID
		}
	}
	if len(st.Sets) > 0 {
		return st.Sets[0].Node.ID
	}
	return 0
}

func (e *engine) allAtExit(st *State) bool {
	for _, p := range st.Sets {
		if p.Node.Kind != cfg.Exit {
			return false
		}
	}
	return len(st.Sets) > 0
}

type succ struct {
	st     *State
	action string
}

// insert merges a successor configuration into the table, joining/widening
// on revisit, and schedules it (sequential path).
func (e *engine) insert(fromKey string, st *State, action string, tid int) {
	if !st.Top && len(st.Sets) == 0 {
		// Unreachable configuration (inconsistent constraints): drop.
		st.Release()
		return
	}
	st.CanonicalizeParams()
	key := st.ShapeKey()
	if e.opts.onRevision != nil {
		e.opts.onRevision(key, st.Clone())
	}
	sp := e.span(tid, obs.PhaseInsert, key)
	defer sp.End()
	e.recordEdge(fromKey, key, action)
	id := e.in.intern(key)
	sh := e.shard(id)
	entry := sh.m[id]
	if entry == nil {
		sh.m[id] = &tableEntry{st: st}
		e.push(id)
		e.tracef("new    %-40s %s", key, st)
		return
	}
	if e.reviseEntry(entry, st, key, tid) {
		e.push(id)
	}
}

// reviseEntry merges incoming state st into an existing table entry,
// advancing the join→widen ladder, and reports whether the entry changed
// and must be rescheduled. The ladder is driven by entry.rev, which counts
// state-changing revisions only: a revision whose combine result equals
// the current entry state (a re-delivery, or a re-step of a stale
// snapshot whose successors the entry already absorbed) leaves the ladder
// untouched. That makes join→widen escalation and the give-up threshold a
// pure function of the sequence of distinct entry states — identical for
// any revision arrival order — so the sequential and parallel engines
// share one counting rule with no interleaving-dependent carve-outs. In
// the parallel engine the caller holds the entry's shard lock; concurrent
// snapshot holders of the previous entry state are protected by
// copy-on-write (the revision never writes storage shared with a clone in
// place).
func (e *engine) reviseEntry(entry *tableEntry, st *State, key string, tid int) bool {
	if entry.st.Top {
		// ⊤ absorbs every revision; nothing to count, nothing to reschedule.
		st.Release()
		return false
	}
	if st.Top {
		old := entry.st
		entry.st = st
		old.Release()
		return true
	}
	fk := st.FullKey()
	before := entry.st.FullKey()
	if _, dup := entry.seen[fk]; dup || fk == before {
		// fk == before matters when the entry was just created and seen is
		// still empty: combining a state with itself is not a representation
		// no-op (multi-atom bounds normalize under G), so without the check
		// a self-delivery would advance the revision chain.
		st.Release()
		return false
	}
	if entry.seen == nil {
		entry.seen = make(map[string]struct{}, 8)
	}
	entry.seen[fk] = struct{}{}
	entry.seen[before] = struct{}{}
	st.AlignTo(entry.st)
	combinePhase := obs.PhaseJoin
	if entry.rev >= e.opts.joinVisits() {
		combinePhase = obs.PhaseWiden
	}
	// blameNode (not firstActiveNode) on purpose: the attribution must not
	// reorder entry.st.Sets between AlignTo and combine.
	e.prof.Combine(tid, blameNode(entry.st), combinePhase == obs.PhaseWiden)
	csp := e.span(tid, combinePhase, key)
	widened := e.combine(entry, st, tid)
	csp.End()
	if widened.Top {
		if widened.TopKey == "" {
			widened.TopKey = key
		}
		old := entry.st
		entry.st = widened
		old.Release()
		st.Release()
		return true
	}
	remap := widened.CanonicalizeParams()
	after := widened.FullKey()
	if after == before {
		// Absorbed without change: the ladder does not advance, and the
		// canonicalization remap is dropped along with the discarded trial
		// state. Applying the remap here would orphan the widening
		// parameter — the remap describes renames inside widened, while
		// entry.st keeps its current names.
		widened.Release()
		st.Release()
		return false
	}
	// A state-changing revision: the remap must follow the committed state,
	// and the revision chain grows. A chain that outruns MaxVisits is not
	// converging — give up deterministically, on the chain length alone.
	if to, ok := remap[entry.widenParam]; ok {
		entry.widenParam = to
	}
	entry.rev++
	if entry.rev > e.opts.maxVisits() {
		e.giveUps.Add(1)
		e.rec().Record("giveup", e.opts.TracePID, tid, key, "widening did not converge")
		old := entry.st
		entry.st = &State{Top: true, TopWhy: "widening did not converge at " + key,
			TopNode: firstActiveNode(old), TopKey: key}
		e.prof.GiveUp(tid, entry.st.TopNode)
		old.Release()
		widened.Release()
		st.Release()
		return true
	}
	e.widenings.Add(1)
	entry.seen[after] = struct{}{}
	old := entry.st
	entry.st = widened
	old.Release()
	st.Release()
	e.tracef("widen  %-40s %s", key, widened)
	return true
}

func (e *engine) push(id uint64) {
	if e.inWork[id] {
		e.stats().AddSchedCoalesced(1)
		return
	}
	e.inWork[id] = true
	e.queue.push(id)
	if d := e.queue.size(); d > e.seqDepthHW {
		e.seqDepthHW = d
	}
}

// recordEdge appends an explored pCFG edge (res.Edges is shared across
// workers in the parallel engine).
func (e *engine) recordEdge(from, to, action string) {
	e.resMu.Lock()
	e.res.Edges = append(e.res.Edges, PCFGEdge{From: from, To: to, Action: action})
	e.resMu.Unlock()
}

// ---------------------------------------------------------------------------
// Combining states at a shared pCFG node (join / widen, Section VII-D)

type nodePair struct{ s, r int }

// combine merges incoming state nw into the table entry's state. tid
// identifies the caller's profiler lane only.
func (e *engine) combine(entry *tableEntry, nw *State, tid int) *State {
	return e.combineRetry(entry, nw, 4, tid)
}

func (e *engine) combineRetry(entry *tableEntry, nw *State, retries int, tid int) *State {
	old := entry.st
	old.EnrichEverywhere()
	nw.EnrichEverywhere()

	// First attempt plain bound-atom intersection on all ranges.
	widenedSets := make([]procset.Set, len(old.Sets))
	approx := make([]bool, len(old.Sets))
	var failing []int
	for i := range old.Sets {
		if old.Sets[i].Approx || nw.Sets[i].Approx {
			// Approximate (terminated) sets widen to the full range.
			widenedSets[i] = AllProcs()
			approx[i] = true
			continue
		}
		w, ok := old.Sets[i].Range.Widen(nw.Sets[i].Range)
		if ok {
			widenedSets[i] = w
		} else if old.Sets[i].Node.Kind == cfg.Exit {
			widenedSets[i] = AllProcs()
			approx[i] = true
		} else {
			failing = append(failing, i)
		}
	}
	// Match widening: align by node pair. A state can carry SEVERAL records
	// for one node pair — AddMatch appends a fresh record whenever the new
	// ranges don't union cleanly with the existing ones — so the alignment
	// groups records into per-pair lists. (A map keyed by the bare pair
	// silently dropped all but one record here, erasing real communication
	// from the joined state: a soundness hole the differential fuzzer
	// caught on a bounded gather followed by a compute loop.) Each side's
	// list is first re-normalized under the current context — unions that
	// failed at AddMatch time often succeed once the graphs have joined —
	// then joined element-wise; any residual shape mismatch is a widening
	// failure like a non-intersecting bound, never a drop.
	oldM := map[nodePair][]*Match{}
	for _, m := range old.Matches {
		k := nodePair{m.SendNode, m.RecvNode}
		oldM[k] = normalizeMatches(old.Ctx(), append(oldM[k], m))
	}
	nwM := map[nodePair][]*Match{}
	var pairOrder []nodePair
	for _, m := range nw.Matches {
		k := nodePair{m.SendNode, m.RecvNode}
		if _, ok := nwM[k]; !ok {
			pairOrder = append(pairOrder, k)
		}
		nwM[k] = normalizeMatches(nw.Ctx(), append(nwM[k], m))
	}
	for _, m := range old.Matches {
		k := nodePair{m.SendNode, m.RecvNode}
		if _, ok := nwM[k]; !ok && !containsKey(pairOrder, k) {
			pairOrder = append(pairOrder, k)
		}
	}
	var matchFail []nodePair
	var mergedMatches []*Match
	for _, k := range pairOrder {
		om, nm := oldM[k], nwM[k]
		switch {
		case len(om) == 0 || len(nm) == 0:
			// Present on one side only: keep those records verbatim (the
			// join over-approximates both inputs).
			for _, m := range append(om, nm...) {
				cm := *m
				mergedMatches = append(mergedMatches, &cm)
			}
		case len(om) == len(nm):
			sortMatches(om)
			sortMatches(nm)
			merged := make([]*Match, 0, len(om))
			ok := true
			for i := range om {
				ws, ok1 := om[i].Sender.Widen(nm[i].Sender)
				wr, ok2 := om[i].Receiver.Widen(nm[i].Receiver)
				if !ok1 || !ok2 {
					ok = false
					break
				}
				merged = append(merged, &Match{SendNode: k.s, RecvNode: k.r, Sender: ws, Receiver: wr})
			}
			if ok {
				mergedMatches = append(mergedMatches, merged...)
			} else {
				matchFail = append(matchFail, k)
			}
		default:
			matchFail = append(matchFail, k)
		}
	}

	// Pending-send widening (same shape key implies aligned records).
	old.sortPending()
	nw.sortPending()
	pendFail := len(old.Pending) != len(nw.Pending)
	widenedPend := make([]*PendingSend, 0, len(old.Pending))
	if !pendFail {
		for i := range old.Pending {
			po, pn := old.Pending[i], nw.Pending[i]
			if po.Node != pn.Node || po.Shape != pn.Shape || !sym.Equal(po.Offset, pn.Offset) {
				pendFail = true
				break
			}
			ws, okS := po.Senders.Widen(pn.Senders)
			wd, okD := procset.Set{}, true
			if po.Shape == PendFan {
				wd, okD = po.Dests.Widen(pn.Dests)
			}
			if !okS || !okD {
				pendFail = true
				break
			}
			cp := *po
			cp.Senders = ws
			if po.Shape == PendFan {
				cp.Dests = wd
			}
			cp.ValOK = po.ValOK && pn.ValOK && sym.Equal(po.Val, pn.Val)
			widenedPend = append(widenedPend, &cp)
		}
	}

	if len(failing) > 0 || len(matchFail) > 0 || pendFail {
		nw2, ok := e.parametricWiden(entry, old, nw)
		if retries <= 0 || !ok {
			var detail []string
			for _, i := range failing {
				detail = append(detail, fmt.Sprintf("set %s vs %s", old.Sets[i], nw.Sets[i]))
			}
			if pendFail {
				detail = append(detail, fmt.Sprintf("pending %v vs %v", old.Pending, nw.Pending))
			}
			for _, k := range matchFail {
				var oldR, newR string
				for _, om := range old.Matches {
					if om.SendNode == k.s && om.RecvNode == k.r {
						oldR = om.String()
					}
				}
				for _, m := range nw.Matches {
					if m.SendNode == k.s && m.RecvNode == k.r {
						newR = m.String()
					}
				}
				detail = append(detail, fmt.Sprintf("match %s vs %s", oldR, newR))
			}
			blame := 0
			if len(failing) > 0 {
				blame = old.Sets[failing[0]].Node.ID
			}
			if e.prof != nil {
				// Profiler-only blame: when only matches failed, fall back
				// to the failing pair's send node (TopNode itself stays on
				// the established failing-set rule).
				pnode := blame
				if len(failing) == 0 && len(matchFail) > 0 {
					pnode = matchFail[0].s
				}
				var fa, fb string
				if pa, pb, okb := firstFailingBound(old, nw); okb {
					fa, fb = pa.String(), pb.String()
				} else if len(detail) > 0 {
					fb = detail[0]
				}
				e.prof.WidenFail(tid, pnode, fa, fb)
			}
			return &State{Top: true, TopWhy: "widening failed: no common bound expressions: " + strings.Join(detail, "; "),
				TopNode: blame}
		}
		// Retry after parametric generalization. nw2 is an intermediate
		// trial state; the recursion only reads it.
		res := e.combineRetry(entry, nw2, retries-1, tid)
		nw2.Release()
		return res
	}

	out := old.Clone()
	for i := range out.Sets {
		out.Sets[i].Range = widenedSets[i]
		out.Sets[i].Blocked = old.Sets[i].Blocked
		out.Sets[i].Approx = approx[i]
	}
	// Fresh slices with fresh elements: no longer shared with old.
	out.Pending = widenedPend
	out.sharedPending = false
	out.Matches = nil
	out.sharedMatches = false
	for _, m := range mergedMatches {
		out.Matches = append(out.Matches, m)
	}
	sortMatches(out.Matches)
	cloned := out.G
	if entry.rev < e.opts.joinVisits() {
		out.G = cg.Join(old.G, nw.G)
	} else {
		// Textbook widening form: old ∇ (old ⊔ nw), never old ∇ nw. Widening
		// directly against the incoming graph drops every bound of old the
		// newcomer happens not to entail — so a stale or narrow delivery
		// (routine under parallel re-step churn) could erase constraints a
		// join would have kept, making the widened state depend on which
		// revision reached the widen rung first. Widening against the join
		// only discards bounds the newcomer genuinely outgrew.
		joined := cg.Join(old.G, nw.G)
		out.G = cg.Widen(old.G, joined)
		joined.Release()
	}
	// The clone's graph was only a placeholder; return its reference to the
	// arena now that the join/widen result replaced it.
	cloned.Release()
	if nw.nextID > out.nextID {
		out.nextID = nw.nextID
	}
	return out
}

func containsKey(ks []nodePair, k nodePair) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

// sortMatches orders match records deterministically: by node pair, then by
// rendered ranges (several records can legally share a pair).
func sortMatches(ms []*Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].SendNode != ms[j].SendNode {
			return ms[i].SendNode < ms[j].SendNode
		}
		if ms[i].RecvNode != ms[j].RecvNode {
			return ms[i].RecvNode < ms[j].RecvNode
		}
		if s1, s2 := ms[i].Sender.String(), ms[j].Sender.String(); s1 != s2 {
			return s1 < s2
		}
		return ms[i].Receiver.String() < ms[j].Receiver.String()
	})
}

// normalizeMatches collapses same-pair records that union cleanly under ctx.
// AddMatch appends a separate record when the union is not provable at record
// time; once the constraint graphs have joined, those unions often become
// provable, and collapsing them first keeps the element-wise widen in
// combineRetry aligned. Records are copied before mutation; survivors keep
// input order.
func normalizeMatches(ctx procset.Ctx, ms []*Match) []*Match {
	if len(ms) < 2 {
		return ms
	}
	out := make([]*Match, len(ms))
	for i, m := range ms {
		cm := *m
		out[i] = &cm
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(out) && !changed; i++ {
			for j := i + 1; j < len(out) && !changed; j++ {
				a, b := out[i], out[j]
				// Same guard as AddMatch: a contradictory witness class
				// proves anything, so folding through one may erase a
				// genuinely distinct record.
				if ctx.ContradictorySet(a.Sender) || ctx.ContradictorySet(a.Receiver) ||
					ctx.ContradictorySet(b.Sender) || ctx.ContradictorySet(b.Receiver) {
					continue
				}
				if a.Sender.SameRange(ctx, b.Sender) == tri.True && a.Receiver.SameRange(ctx, b.Receiver) == tri.True {
					out = append(out[:j], out[j+1:]...)
					changed = true
					continue
				}
				if su, ok1 := a.Sender.UnionAdjacent(ctx, b.Sender); ok1 {
					if ru, ok2 := a.Receiver.UnionAdjacent(ctx, b.Receiver); ok2 {
						a.Sender, a.Receiver = su, ru
						out = append(out[:j], out[j+1:]...)
						changed = true
						continue
					}
				}
				if su, ok1 := b.Sender.UnionAdjacent(ctx, a.Sender); ok1 {
					if ru, ok2 := b.Receiver.UnionAdjacent(ctx, a.Receiver); ok2 {
						a.Sender, a.Receiver = su, ru
						out = append(out[:j], out[j+1:]...)
						changed = true
					}
				}
			}
		}
	}
	return out
}

// parametricWiden introduces (or advances) the widening parameter for this
// pCFG node so that bounds advancing by a uniform stride per iteration gain
// a common symbolic atom (the generalization that yields Fig 8's set-level
// matches without a program loop variable). It may mutate old and returns a
// replacement for nw on success.
func (e *engine) parametricWiden(entry *tableEntry, old, nw *State) (*State, bool) {
	// First try the shift interpretation on the key's established
	// parameter: the new state's k corresponds to old k ± 1 (one pipeline
	// step later/earlier).
	if k := entry.widenParam; k != "" && nw.G.HasVar(k) && old.G.HasVar(k) {
		for _, delta := range []int64{1, -1} {
			trial := nw.Clone()
			trial.G.Shift(k, delta)
			trial.SubstEverywhere(k, sym.VarPlus(k, -delta))
			trial.EnrichEverywhere()
			if !e.sameFailure(old, trial) {
				return trial, true
			}
			trial.Release()
		}
	}
	// An incoming state from a lineage that never saw the parameter (e.g.
	// the original concrete loop entry): anchor the EXISTING parameter in
	// it rather than minting an alias, so the widened key stabilizes.
	if k := entry.widenParam; k != "" && old.G.HasVar(k) && !nw.G.HasVar(k) {
		oldPrim, newPrim, ok := firstFailingBound(old, nw)
		if ok {
			vOld, cOld, ok1 := splitVarPlusConst(oldPrim)
			vNew, cNew, ok2 := splitVarPlusConst(newPrim)
			if ok1 && ok2 {
				trial := nw.Clone()
				if vOld == k {
					// old bound = k + cOld, so seed k = newPrim - cOld.
					trial.G.AddEq(k, vNew, cNew-cOld)
				} else {
					trial.G.AddEq(k, vNew, cNew)
				}
				trial.EnrichEverywhere()
				old.EnrichEverywhere()
				if !e.sameFailure(old, trial) {
					return trial, true
				}
				trial.Release()
			}
		}
	}
	// Anchor fresh parameters to failing bounds: for each failing pair,
	// mint k with k = bound_old in old and k = bound_new in new; enrichment
	// then inserts the common atom (k + c) into every failing bound related
	// to the anchor through the constraint graph — constant bounds via the
	// zero variable, var-relative bounds via their shared base variable.
	// Several independent bound families may each need their own anchor.
	trial := nw.Clone()
	var prevOld, prevNew sym.Expr
	for tries := 0; tries < 6; tries++ {
		oldPrim, newPrim, ok := firstFailingBound(old, trial)
		if !ok {
			trial.Release()
			return nil, false
		}
		if tries > 0 && sym.Equal(oldPrim, prevOld) && sym.Equal(newPrim, prevNew) {
			// The anchor did not help this bound; give up.
			trial.Release()
			return nil, false
		}
		prevOld, prevNew = oldPrim, newPrim
		vOld, cOld, ok1 := splitVarPlusConst(oldPrim)
		vNew, cNew, ok2 := splitVarPlusConst(newPrim)
		if !ok1 || !ok2 {
			trial.Release()
			return nil, false
		}
		if entry.paramMints >= 8 {
			// Parameter anchoring is not converging for this key.
			trial.Release()
			return nil, false
		}
		entry.paramMints++
		k := fmt.Sprintf("wp%d", e.nParam.Add(1)-1)
		entry.widenParam = k
		old.G.AddEq(k, vOld, cOld)
		trial.G.AddEq(k, vNew, cNew)
		old.EnrichEverywhere()
		trial.EnrichEverywhere()
		if !e.sameFailure(old, trial) {
			return trial, true
		}
	}
	trial.Release()
	return nil, false
}

// firstFailingBound locates the primary atoms of the first bound pair whose
// atom intersection is empty.
func firstFailingBound(old, nw *State) (a, b sym.Expr, ok bool) {
	for i := range old.Sets {
		or, nr := old.Sets[i].Range, nw.Sets[i].Range
		for _, pair := range [][2]procset.Bound{{or.LB, nr.LB}, {or.UB, nr.UB}} {
			if !boundsIntersect(pair[0], pair[1]) {
				return pair[0].Primary(), pair[1].Primary(), true
			}
		}
	}
	for _, m := range nw.Matches {
		for _, om := range old.Matches {
			if om.SendNode != m.SendNode || om.RecvNode != m.RecvNode {
				continue
			}
			for _, pair := range [][2]procset.Bound{
				{om.Sender.LB, m.Sender.LB}, {om.Sender.UB, m.Sender.UB},
				{om.Receiver.LB, m.Receiver.LB}, {om.Receiver.UB, m.Receiver.UB},
			} {
				if !boundsIntersect(pair[0], pair[1]) {
					return pair[0].Primary(), pair[1].Primary(), true
				}
			}
		}
	}
	if len(old.Pending) == len(nw.Pending) {
		for i := range old.Pending {
			po, pn := old.Pending[i], nw.Pending[i]
			pairs := [][2]procset.Bound{
				{po.Senders.LB, pn.Senders.LB}, {po.Senders.UB, pn.Senders.UB},
			}
			if po.Shape == PendFan {
				pairs = append(pairs,
					[2]procset.Bound{po.Dests.LB, pn.Dests.LB},
					[2]procset.Bound{po.Dests.UB, pn.Dests.UB})
			}
			for _, pair := range pairs {
				if !boundsIntersect(pair[0], pair[1]) {
					return pair[0].Primary(), pair[1].Primary(), true
				}
			}
		}
	}
	return sym.Zero, sym.Zero, false
}

// commonDelta finds the uniform per-iteration advance (+1 or -1) of all
// bounds whose atom intersection failed.
func (e *engine) commonDelta(old, nw *State) (int64, bool) {
	posOK, negOK := true, true
	any := false
	check := func(a, b procset.Set) {
		for _, pair := range [][2]procset.Bound{{a.LB, b.LB}, {a.UB, b.UB}} {
			if boundsIntersect(pair[0], pair[1]) {
				continue
			}
			any = true
			if !advancesBy(pair[0], pair[1], 1) {
				posOK = false
			}
			if !advancesBy(pair[0], pair[1], -1) {
				negOK = false
			}
		}
	}
	for i := range old.Sets {
		check(old.Sets[i].Range, nw.Sets[i].Range)
	}
	for _, m := range nw.Matches {
		for _, om := range old.Matches {
			if om.SendNode == m.SendNode && om.RecvNode == m.RecvNode {
				check(om.Sender, m.Sender)
				check(om.Receiver, m.Receiver)
			}
		}
	}
	if len(old.Pending) == len(nw.Pending) {
		for i := range old.Pending {
			check(old.Pending[i].Senders, nw.Pending[i].Senders)
			if old.Pending[i].Shape == PendFan {
				check(old.Pending[i].Dests, nw.Pending[i].Dests)
			}
		}
	}
	switch {
	case !any:
		return 0, false
	case posOK:
		return 1, true
	case negOK:
		return -1, true
	}
	return 0, false
}

// sameFailure reports whether range widening would still fail.
func (e *engine) sameFailure(old, nw *State) bool {
	for i := range old.Sets {
		if _, ok := old.Sets[i].Range.Widen(nw.Sets[i].Range); !ok {
			return true
		}
	}
	if len(old.Pending) != len(nw.Pending) {
		return true
	}
	for i := range old.Pending {
		po, pn := old.Pending[i], nw.Pending[i]
		if _, ok := po.Senders.Widen(pn.Senders); !ok {
			return true
		}
		if po.Shape == PendFan {
			if _, ok := po.Dests.Widen(pn.Dests); !ok {
				return true
			}
		}
	}
	for _, m := range nw.Matches {
		for _, om := range old.Matches {
			if om.SendNode == m.SendNode && om.RecvNode == m.RecvNode {
				if _, ok := om.Sender.Widen(m.Sender); !ok {
					return true
				}
				if _, ok := om.Receiver.Widen(m.Receiver); !ok {
					return true
				}
			}
		}
	}
	return false
}

func boundsIntersect(a, b procset.Bound) bool {
	return a.Intersect(b).IsValid()
}

// advancesBy reports whether some atom of b equals some atom of a plus
// delta.
func advancesBy(a, b procset.Bound, delta int64) bool {
	for _, aa := range a.Atoms() {
		for _, bb := range b.Atoms() {
			if d, ok := sym.Cmp(bb, aa); ok && d == delta {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Propagate: one analysis step (Fig 4's propagate)

// step computes the successor configurations of st. tid and key identify
// the worker lane and configuration for phase tracing only.
func (e *engine) step(st *State, tid int, key string) []succ {
	// 1. An unblocked set at a sequential node advances (transfer function).
	st.sortCanonical()
	for _, ps := range st.Sets {
		if ps.Blocked || ps.Node.Kind == cfg.Exit {
			continue
		}
		if ps.Node.IsComm() {
			if e.opts.NonBlockingSends && ps.Node.Kind == cfg.Send {
				sp := e.span(tid, obs.PhaseTransfer, key)
				t0 := e.profNow()
				out := e.issueSendStep(st, ps.ID)
				e.profStep(tid, ps.Node.ID, t0, len(out))
				sp.End()
				return out
			}
			continue
		}
		sp := e.span(tid, obs.PhaseTransfer, key)
		t0 := e.profNow()
		out := e.advanceSet(st, ps.ID)
		e.profStep(tid, ps.Node.ID, t0, len(out))
		sp.End()
		return out
	}
	t0 := e.profNow()
	out := e.stepBlocked(st, len(st.Sets)+1, tid, key)
	if e.prof != nil {
		e.profStep(tid, firstBlockedNode(st), t0, len(out))
	}
	return out
}

// firstBlockedNode returns the first blocked set's node in canonical
// order (st is already sorted when step reaches the blocked path), the
// first set's node otherwise — the attribution anchor for blocked steps.
func firstBlockedNode(st *State) int {
	for _, p := range st.Sets {
		if p.Blocked {
			return p.Node.ID
		}
	}
	if len(st.Sets) > 0 {
		return st.Sets[0].Node.ID
	}
	return 0
}

// stepBlocked handles a configuration whose sets are all blocked or at
// exit: matching, self-matching, emptiness case-splits, then ⊤. depth
// bounds nested emptiness splits.
func (e *engine) stepBlocked(st *State, depth, tid int, key string) []succ {
	msp := e.span(tid, obs.PhaseMatch, key)
	// 2a. Satisfy receives from pending (non-blocking) sends.
	if s, ok := e.tryPendingMatches(st, tid); ok {
		msp.End()
		return s
	}
	// 2b. Match blocked sends to receives.
	if s, ok := e.tryMatches(st, tid); ok {
		msp.End()
		return s
	}
	// 3. Self-matches (permutation exchanges).
	if s, ok := e.trySelfMatches(st, tid); ok {
		msp.End()
		return s
	}
	msp.End()
	// 4. Case-split on possibly-empty blocked sets.
	ssp := e.span(tid, obs.PhaseSplit, key)
	if s, ok := e.tryEmptinessSplit(st, depth, tid, key); ok {
		ssp.End()
		return s
	}
	ssp.End()
	// 5. Stuck: the framework gives up with ⊤.
	ns := st.Clone()
	var blocked []string
	var first *cfg.Node
	for _, p := range ns.Sets {
		if p.Blocked {
			if first == nil {
				first = p.Node
			}
			blocked = append(blocked, nodeDesc(p.Node)+p.Range.String())
		}
	}
	ns.MarkTopAt(first, "no send-receive match possible; blocked: "+strings.Join(blocked, ", "))
	return []succ{{ns, "give-up"}}
}

// advanceSet executes the node of set id, returning successor states.
func (e *engine) advanceSet(st *State, id int) []succ {
	ns := st.Clone()
	ps := ns.Set(id)
	node := ps.Node
	switch node.Kind {
	case cfg.Entry, cfg.Skip:
		advance(ps)
	case cfg.Assign:
		ns.ApplyAssign(ps, node.AssignName, node.AssignRhs)
		advance(ps)
	case cfg.Print:
		e.recordPrint(ns, ps, node)
		advance(ps)
	case cfg.Assume:
		ns.GlobalAssume(ps, node.Cond, e.inv)
		advance(ps)
	case cfg.Assert:
		// Assertions are checked by the verifier; the analysis may assume
		// them (they hold in non-aborting executions).
		ns.AssumeCond(ps, node.Cond, false)
		advance(ps)
	case cfg.Branch:
		return e.branchSet(ns, ps)
	default:
		ns.MarkTopAt(node, "unexpected node kind "+node.Kind.String())
	}
	e.normalize(ns)
	return []succ{{ns, nodeDesc(node)}}
}

// recordPrint captures the constant-propagation fact at a print site.
func (e *engine) recordPrint(ns *State, ps *ProcSet, node *cfg.Node) {
	obs := PrintObs{Node: node.ID, Range: ps.Range.String()}
	if expr, ok := ns.AffineExpr(ps, node.Arg); ok {
		if c, isConst := expr.IsConst(); isConst {
			obs.Val, obs.Known = c, true
		} else if v, c2, okd := expr.AsVarPlusConst(); okd && v != "" {
			if base, okc := ns.G.ConstVal(v); okc {
				obs.Val, obs.Known = base+c2, true
			}
		}
	}
	e.resMu.Lock()
	defer e.resMu.Unlock()
	for _, p := range e.res.Prints {
		if p == obs {
			return
		}
	}
	e.res.Prints = append(e.res.Prints, obs)
}

// branchSet handles a conditional: id-dependent conditions split the set;
// uniform conditions either resolve or fork the configuration.
func (e *engine) branchSet(ns *State, ps *ProcSet) []succ {
	return e.branchSetDepth(ns, ps, 4)
}

func (e *engine) branchSetDepth(ns *State, ps *ProcSet, depth int) []succ {
	node := ps.Node
	tN, fN := node.SuccBranch()
	usesID := ast.UsesIdent(node.Cond, "id")
	singleton := ns.Ctx()
	isSingle := ps.Range.IsSingleton(singleton) == tri.True

	if usesID && !isSingle {
		if op, pivot, ok := ns.idComparison(ps, node.Cond); ok {
			yes, no, ok2 := SplitByIDCond(ns.Ctx(), op, ps.Range, pivot)
			if ok2 {
				return e.applyIDSplit(ns, ps, yes, no, tN, fN)
			}
			// Exact splitting needs the pivot's order against the range
			// bounds; fork the configuration on the first unresolved
			// comparison and retry each side with the extra fact.
			if depth > 0 {
				if out, ok3 := e.forkOnBoundCmp(ns, ps, pivot, depth); ok3 {
					return out
				}
			}
		}
		ns.MarkTopAt(node, fmt.Sprintf("unsupported id-dependent condition: %s on %s [G: %s]", node.Cond, ps.Range, ns.G))
		return []succ{{ns, "give-up"}}
	}

	switch ns.EvalCond(ps, node.Cond) {
	case tri.True:
		ps.Node = tN
		ps.Blocked = false
		ns.AssumeCond(ps, node.Cond, false)
		e.normalize(ns)
		return []succ{{ns, nodeDesc(node) + "=true"}}
	case tri.False:
		ps.Node = fN
		ps.Blocked = false
		ns.AssumeCond(ps, node.Cond, true)
		e.normalize(ns)
		return []succ{{ns, nodeDesc(node) + "=false"}}
	default:
		// Fork the configuration: both branches possible.
		alt := ns.Clone()
		ps.Node = tN
		ps.Blocked = false
		ns.AssumeCond(ps, node.Cond, false)
		e.normalize(ns)
		ap := alt.Set(ps.ID)
		ap.Node = fN
		ap.Blocked = false
		alt.AssumeCond(ap, node.Cond, true)
		e.normalize(alt)
		return []succ{{ns, nodeDesc(node) + "=true?"}, {alt, nodeDesc(node) + "=false?"}}
	}
}

// forkOnBoundCmp case-splits the configuration on an unresolved comparison
// between the branch pivot and one of the set's range bounds, then retries
// the branch on both sides.
func (e *engine) forkOnBoundCmp(ns *State, ps *ProcSet, pivot sym.Expr, depth int) ([]succ, bool) {
	ctx := ns.Ctx()
	pv, pc, okP := splitVarPlusConst(pivot)
	if !okP {
		return nil, false
	}
	rng := ps.Range.Enrich(ctx)
	for _, b := range []procset.Bound{rng.LB, rng.UB} {
		bnd := procset.NewBound(pivot)
		if ctx.LeqBound(bnd, b, 0) != tri.Unknown && ctx.LeqBound(b, bnd, 0) != tri.Unknown {
			continue
		}
		bv, bc, okB := splitVarPlusConst(b.Primary())
		if !okB {
			continue
		}
		// Side A: pivot <= bound; side B: bound <= pivot - 1.
		nsA := ns.Clone()
		nsA.G.AddLE(pv, bv, bc-pc)
		nsB := ns.Clone()
		nsB.G.AddLE(bv, pv, pc-bc-1)
		var out []succ
		if nsA.G.Consistent() {
			out = append(out, e.branchSetDepth(nsA, nsA.Set(ps.ID), depth-1)...)
		} else {
			nsA.Release()
		}
		if nsB.G.Consistent() {
			out = append(out, e.branchSetDepth(nsB, nsB.Set(ps.ID), depth-1)...)
		} else {
			nsB.Release()
		}
		if len(out) > 0 {
			return out, true
		}
	}
	return nil, false
}

// applyIDSplit distributes the yes/no sub-ranges of an id-dependent branch
// over the true/false successors, dropping provably empty pieces.
func (e *engine) applyIDSplit(ns *State, ps *ProcSet, yes, no []procset.Set, tN, fN *cfg.Node) []succ {
	ctx := ns.Ctx()
	type piece struct {
		rng  procset.Set
		node *cfg.Node
	}
	var pieces []piece
	for _, r := range yes {
		if r.IsValid() && r.Empty(ctx) != tri.True {
			pieces = append(pieces, piece{r, tN})
		}
	}
	for _, r := range no {
		if r.IsValid() && r.Empty(ctx) != tri.True {
			pieces = append(pieces, piece{r, fN})
		}
	}
	if len(pieces) == 0 {
		// Entire set vanished (inconsistent range): drop it.
		ns.RemoveSet(ps.ID)
		e.normalize(ns)
		return []succ{{ns, "empty-split"}}
	}
	// First piece reuses ps; the rest are fresh sets with copied state.
	ps.Range = pieces[0].rng
	ps.Node = pieces[0].node
	ps.Blocked = false
	for _, pc := range pieces[1:] {
		np := ns.SplitSet(ps, ps.Range, pc.rng)
		np.Node = pc.node
		np.Blocked = false
	}
	e.normalize(ns)
	return []succ{{ns, nodeDesc(ps.Node) + "-idsplit"}}
}

// ---------------------------------------------------------------------------
// Matching

// commFacets returns the destination (send side) and source (recv side)
// expressions a blocked set offers.
func commFacets(n *cfg.Node) (dest ast.Expr, src ast.Expr) {
	switch n.Kind {
	case cfg.Send:
		return n.Dest, nil
	case cfg.Recv:
		return nil, n.Src
	case cfg.SendRecv:
		return n.Dest, n.Src
	}
	return nil, nil
}

// issueSendStep records a non-blocking send and advances the issuing set;
// unsupported destination expressions fall back to the blocking treatment.
func (e *engine) issueSendStep(st *State, id int) []succ {
	ns := st.Clone()
	ps := ns.Set(id)
	node := ps.Node
	if ns.IssueSend(ps, node) {
		advance(ps)
		e.normalize(ns)
		return []succ{{ns, fmt.Sprintf("issue n%d", node.ID)}}
	}
	ps.Blocked = true
	e.normalize(ns)
	return []succ{{ns, fmt.Sprintf("block n%d", node.ID)}}
}

// tryPendingMatches satisfies a blocked receive from an in-flight pending
// send, respecting per-channel FIFO order conservatively.
func (e *engine) tryPendingMatches(st *State, tid int) ([]succ, bool) {
	for _, r := range st.Sets {
		if !r.Blocked || r.Node.Kind != cfg.Recv {
			continue
		}
		src, ok := st.AffineExprID(r, r.Node.Src)
		if !ok {
			continue
		}
		for idx := range st.Pending {
			ns := st.Clone()
			nr := ns.Set(r.ID)
			pm, ok := ns.MatchPending(nr, src, idx)
			if !ok {
				ns.Release()
				continue
			}
			if e.fifoConflict(ns, idx, pm) {
				ns.Release()
				continue
			}
			recvNode := nr.Node
			// Release the matched receivers; leftover pieces stay blocked.
			ctx := ns.Ctx()
			nr.Range = pm.RecvMatched
			for _, rr := range pm.RecvRests {
				if !rr.IsValid() || rr.Empty(ctx) == tri.True {
					continue
				}
				rest := ns.SplitSet(nr, pm.RecvMatched, rr)
				rest.Blocked = true
			}
			ns.ReplacePending(idx, pm.PendingRests)
			// Value propagation from the frozen payload.
			rv := PV(nr.ID, recvNode.RecvName)
			ns.invalidateVar(rv)
			ns.G.Forget(rv)
			if pm.Pending.ValOK {
				if w, c, okd := splitVarPlusConst(pm.Pending.Val); okd {
					ns.G.AddEq(rv, w, c)
				}
			}
			if e.prof != nil {
				// Pending delivery needs no Matcher call; count the match
				// against the pending send's node with zero probe deltas.
				e.prof.Match(tid, pm.Pending.Node, 0, 0, 0, 0, true)
			}
			ns.AddMatch(pm.Pending.Node, recvNode.ID, pm.SendersMatched, pm.RecvMatched)
			advance(nr)
			e.normalize(ns)
			return []succ{{ns, fmt.Sprintf("pending-match n%d->n%d", pm.Pending.Node, recvNode.ID)}}, true
		}
	}
	return nil, false
}

// fifoConflict reports whether delivering pending record idx to the matched
// receivers could violate FIFO order: an earlier pending record must not
// possibly carry a message on any of the same (sender, receiver) channels.
func (e *engine) fifoConflict(st *State, idx int, pm *PendingMatch) bool {
	ctx := st.Ctx()
	for i := 0; i < idx; i++ {
		q := st.Pending[i]
		qd := q.DestRange()
		if !qd.IsValid() {
			return true // cannot reason: be conservative
		}
		destOverlap, ok := procset.Intersect(ctx, qd, pm.RecvMatched)
		if !ok {
			return true
		}
		if destOverlap.Empty(ctx) == tri.True {
			continue
		}
		sendOverlap, ok := procset.Intersect(ctx, q.Senders, pm.SendersMatched)
		if !ok {
			return true
		}
		if sendOverlap.Empty(ctx) != tri.True {
			return true
		}
	}
	return false
}

// tryMatches attempts pairwise send-receive matching in deterministic order;
// the first success forms the successor (the framework propagates real
// state only along the matched edge).
func (e *engine) tryMatches(st *State, tid int) ([]succ, bool) {
	for _, sender := range st.Sets {
		if !sender.Blocked || sender.Node.Kind != cfg.Send {
			continue
		}
		for _, receiver := range st.Sets {
			if receiver == sender || !receiver.Blocked || receiver.Node.Kind != cfg.Recv {
				continue
			}
			ns := st.Clone()
			if out, ok := e.applyPairMatch(ns, ns.Set(sender.ID), ns.Set(receiver.ID), tid); ok {
				return out, true
			}
			ns.Release()
		}
	}
	// sendrecv pair exchange between two distinct sets.
	for _, a := range st.Sets {
		if !a.Blocked || a.Node.Kind != cfg.SendRecv {
			continue
		}
		for _, b := range st.Sets {
			if b == a || !b.Blocked || b.Node.Kind != cfg.SendRecv {
				continue
			}
			ns := st.Clone()
			if out, ok := e.applySendRecvPair(ns, ns.Set(a.ID), ns.Set(b.ID), tid); ok {
				return out, true
			}
			ns.Release()
		}
	}
	return nil, false
}

// applyPairMatch matches sender's send against receiver's recv.
func (e *engine) applyPairMatch(ns *State, sender, receiver *ProcSet, tid int) ([]succ, bool) {
	pr := e.profMatchStart()
	plan, ok := e.opts.Matcher.Match(ns, sender, sender.Node.Dest, receiver, receiver.Node.Src)
	e.profMatchEnd(tid, sender.Node.ID, pr, ok)
	if !ok {
		return nil, false
	}
	sendNode, recvNode := sender.Node, receiver.Node
	action := fmt.Sprintf("match n%d->n%d", sendNode.ID, recvNode.ID)

	relSender := e.applyPlanSide(ns, sender, plan.SenderMatched, plan.SenderRests)
	relReceiver := e.applyPlanSide(ns, receiver, plan.RecvMatched, plan.RecvRests)

	// Value propagation: send value -> receiver's variable.
	e.propagateValue(ns, relSender, plan.SenderMatched, sendNode.Value, relReceiver, recvNode.RecvName)

	ns.AddMatch(sendNode.ID, recvNode.ID, plan.SenderMatched, plan.RecvMatched)
	advance(relSender)
	advance(relReceiver)
	e.normalize(ns)
	return []succ{{ns, action}}, true
}

// applySendRecvPair matches two sets blocked on sendrecv against each other
// in both directions; both directions must agree on whole-set matches.
func (e *engine) applySendRecvPair(ns *State, a, b *ProcSet, tid int) ([]succ, bool) {
	pr := e.profMatchStart()
	planAB, ok := e.opts.Matcher.Match(ns, a, a.Node.Dest, b, b.Node.Src)
	e.profMatchEnd(tid, a.Node.ID, pr, ok)
	if !ok || len(planAB.SenderRests) > 0 || len(planAB.RecvRests) > 0 {
		return nil, false
	}
	pr = e.profMatchStart()
	planBA, ok := e.opts.Matcher.Match(ns, b, b.Node.Dest, a, a.Node.Src)
	e.profMatchEnd(tid, b.Node.ID, pr, ok)
	if !ok || len(planBA.SenderRests) > 0 || len(planBA.RecvRests) > 0 {
		return nil, false
	}
	aNode, bNode := a.Node, b.Node
	e.propagateValue(ns, a, planAB.SenderMatched, aNode.Value, b, bNode.RecvName)
	e.propagateValue(ns, b, planBA.SenderMatched, bNode.Value, a, aNode.RecvName)
	ns.AddMatch(aNode.ID, bNode.ID, planAB.SenderMatched, planAB.RecvMatched)
	ns.AddMatch(bNode.ID, aNode.ID, planBA.SenderMatched, planBA.RecvMatched)
	advance(a)
	advance(b)
	e.normalize(ns)
	return []succ{{ns, fmt.Sprintf("exchange n%d<->n%d", aNode.ID, bNode.ID)}}, true
}

// applyPlanSide splits a matched set into its released and still-blocked
// pieces, returning the released set.
func (e *engine) applyPlanSide(ns *State, ps *ProcSet, matched procset.Set, rests []procset.Set) *ProcSet {
	ctx := ns.Ctx()
	ps.Range = matched
	for _, r := range rests {
		if !r.IsValid() || r.Empty(ctx) == tri.True {
			continue
		}
		rest := ns.SplitSet(ps, matched, r)
		rest.Blocked = true // stays at the comm node
	}
	return ps
}

// propagateValue transfers the sent value into the receiver's variable: an
// equality when the payload is a set-constant affine expression (or the
// matched sets are singletons), otherwise the receiver variable is
// invalidated.
func (e *engine) propagateValue(ns *State, sender *ProcSet, senderRange procset.Set, value ast.Expr, receiver *ProcSet, recvVar string) {
	rv := PV(receiver.ID, recvVar)
	ns.invalidateVar(rv)
	ns.G.Forget(rv)
	expr, ok := ns.affineExprRange(sender, senderRange, value)
	if !ok {
		return
	}
	if w, c, okd := splitVarPlusConst(expr); okd {
		ns.G.AddEq(rv, w, c)
	}
}

// markVisited records that some non-empty process set reached a CFG node.
func (e *engine) markVisited(id int) {
	if id >= 0 && id < len(e.visited) {
		e.visited[id].Store(true)
	}
}

// trySelfMatches looks for a set blocked at a send (or sendrecv) whose own
// subsequent receive completes a whole-set permutation exchange — the
// paper's transpose pattern (Section VIII-B), justified by eager buffering.
func (e *engine) trySelfMatches(st *State, tid int) ([]succ, bool) {
	for _, ps := range st.Sets {
		if !ps.Blocked {
			continue
		}
		switch ps.Node.Kind {
		case cfg.SendRecv:
			pr := e.profMatchStart()
			ok := e.opts.Matcher.SelfMatch(st, ps, ps.Node.Dest, ps.Node.Src)
			e.profMatchEnd(tid, ps.Node.ID, pr, ok)
			if ok {
				ns := st.Clone()
				nps := ns.Set(ps.ID)
				e.propagateValue(ns, nps, nps.Range, ps.Node.Value, nps, ps.Node.RecvName)
				ns.AddMatch(ps.Node.ID, ps.Node.ID, nps.Range, nps.Range)
				advance(nps)
				e.normalize(ns)
				return []succ{{ns, fmt.Sprintf("self-exchange n%d", ps.Node.ID)}}, true
			}
		case cfg.Send:
			// Find the next comm node along a straight-line path.
			recvNode, inter := straightLineRecv(ps.Node)
			if recvNode == nil {
				continue
			}
			pr := e.profMatchStart()
			ok := e.opts.Matcher.SelfMatch(st, ps, ps.Node.Dest, recvNode.Src)
			e.profMatchEnd(tid, ps.Node.ID, pr, ok)
			if !ok {
				continue
			}
			ns := st.Clone()
			nps := ns.Set(ps.ID)
			sendNode := nps.Node
			// Advance through intermediate sequential nodes. They are
			// executed inline, so they never surface in a normalized
			// configuration — mark them visited here.
			advance(nps)
			for _, n := range inter {
				if n.Kind == cfg.Assign {
					ns.ApplyAssign(nps, n.AssignName, n.AssignRhs)
				}
				e.markVisited(n.ID)
				nps.Node = n.SuccSeq()
			}
			// Now at recvNode; consume it (visited and bounds-checked like a
			// normalized position, since it never becomes one).
			nps.Node = recvNode
			e.markVisited(recvNode.ID)
			if e.opts.RecordCommBounds {
				e.recordCommBounds(ns, nps)
			}
			e.propagateValue(ns, nps, nps.Range, sendNode.Value, nps, recvNode.RecvName)
			ns.AddMatch(sendNode.ID, recvNode.ID, nps.Range, nps.Range)
			advance(nps)
			e.normalize(ns)
			return []succ{{ns, fmt.Sprintf("self-match n%d->n%d", sendNode.ID, recvNode.ID)}}, true
		}
	}
	return nil, false
}

// straightLineRecv walks sequential successors from a send node until the
// next communication node; it succeeds only when that node is a recv and
// the path is branch-free. Returns the recv node and intermediate nodes.
func straightLineRecv(send *cfg.Node) (*cfg.Node, []*cfg.Node) {
	var inter []*cfg.Node
	n := send.SuccSeq()
	for n != nil {
		switch n.Kind {
		case cfg.Recv:
			return n, inter
		case cfg.Assign, cfg.Print, cfg.Skip, cfg.Assume, cfg.Assert:
			inter = append(inter, n)
			n = n.SuccSeq()
		default:
			return nil, nil
		}
	}
	return nil, nil
}

// tryEmptinessSplit forks the configuration on a blocked set whose range
// may be empty: one branch removes it (adding the emptiness constraint),
// the other assumes it non-empty and immediately continues the blocked-step
// logic under that assumption (so the extra fact is not lost by folding
// back into the same pCFG node).
func (e *engine) tryEmptinessSplit(st *State, depth, tid int, key string) ([]succ, bool) {
	if depth <= 0 {
		return nil, false
	}
	ctx := st.Ctx()
	for _, ps := range st.Sets {
		if !ps.Blocked {
			continue
		}
		if ps.Range.Empty(ctx) != tri.Unknown {
			continue
		}
		lbv, lbc, ok1 := splitVarPlusConst(ps.Range.LB.Primary())
		ubv, ubc, ok2 := splitVarPlusConst(ps.Range.UB.Primary())
		if !ok1 || !ok2 {
			continue
		}
		// Branch A: the set is empty (lb > ub) and disappears.
		emptySt := st.Clone()
		emptySt.G.AddLE(ubv, lbv, lbc-ubc-1) // ub <= lb - 1
		emptySt.RemoveSet(ps.ID)
		e.normalize(emptySt)
		// Branch B: non-empty (lb <= ub); continue stepping inline.
		nonEmpty := st.Clone()
		nonEmpty.G.AddLE(lbv, ubv, ubc-lbc)
		e.normalize(nonEmpty)
		out := []succ{{emptySt, fmt.Sprintf("assume %s empty", ps.Range)}}
		out = append(out, e.stepBlocked(nonEmpty, depth-1, tid, key)...)
		// stepBlocked clones for every successor it returns; the inline
		// continuation state itself is dead.
		nonEmpty.Release()
		return out, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Normalization: blocked flags, empty-set removal, merging

// normalize canonicalizes a configuration after a step: comm nodes block,
// provably empty sets disappear, adjacent sets at the same node merge, and
// invalid ranges force ⊤.
func (e *engine) normalize(st *State) {
	if st.Top {
		return
	}
	if !st.G.Consistent() {
		// Unreachable configuration: model as empty final (no sets). Mark
		// top with a reason to aid debugging; callers treat inconsistent
		// graphs as unreachable.
		st.Sets = nil
		return
	}
	for _, ps := range st.Sets {
		if ps.Node.IsComm() {
			if e.opts.NonBlockingSends && ps.Node.Kind == cfg.Send && !ps.Blocked {
				continue // stays runnable; step() will issue the send
			}
			ps.Blocked = true
		}
	}
	st.dropEmptyPendings()
	ctx := st.Ctx()
	// Remove provably empty sets.
	for i := 0; i < len(st.Sets); {
		if st.Sets[i].Range.Empty(ctx) == tri.True {
			st.RemoveSet(st.Sets[i].ID)
			ctx = st.Ctx()
		} else {
			i++
		}
	}
	if !st.RangesValid() {
		var bad *cfg.Node
		for _, p := range st.Sets {
			if !p.Range.IsValid() {
				bad = p.Node
				break
			}
		}
		st.MarkTopAt(bad, "process-set bounds no longer representable")
		return
	}
	if len(st.Sets) > e.opts.maxSets() {
		st.MarkTopAt(st.Sets[0].Node, fmt.Sprintf("configuration fragmented into %d process sets (limit %d)", len(st.Sets), e.opts.maxSets()))
		return
	}
	// Surviving sets have genuinely reached their nodes: mark them visited
	// and, when enabled, check communication targets against [0, np-1].
	for _, ps := range st.Sets {
		e.markVisited(ps.Node.ID)
		if e.opts.RecordCommBounds && ps.Node.IsComm() {
			e.recordCommBounds(st, ps)
		}
	}
	// Merge same-node adjacent sets (both directions), repeating to a fixed
	// point.
	for changed := true; changed; {
		changed = false
		st.sortCanonical()
	outer:
		for i := 0; i < len(st.Sets); i++ {
			for j := i + 1; j < len(st.Sets); j++ {
				a, b := st.Sets[i], st.Sets[j]
				if a.Node != b.Node || a.Blocked != b.Blocked {
					continue
				}
				ctx := st.Ctx()
				ar := a.Range.Enrich(ctx)
				br := b.Range.Enrich(ctx)
				if !a.Approx && !b.Approx {
					if u, ok := ar.UnionAdjacent(ctx, br); ok {
						st.MergeSets(a, b, u)
						changed = true
						break outer
					}
					if u, ok := br.UnionAdjacent(ctx, ar); ok {
						st.MergeSets(b, a, u)
						changed = true
						break outer
					}
				}
				if a.Node.Kind == cfg.Exit {
					// Terminated sets never match again, so an exact range
					// is not required: merge approximately.
					st.MergeSets(a, b, AllProcs())
					a.Approx = true
					changed = true
					break outer
				}
			}
		}
	}
	if len(st.Sets) == 0 {
		return
	}
	st.sortCanonical()
}
