package core

import (
	"fmt"

	"repro/internal/obs"

	"repro/internal/cg"
)

// publishMetrics exports the converged engine's final counters and gauges
// into Options.Metrics. It runs after finish(), so the result slices and
// high-water marks are settled; series are labelled with the job id
// (Options.TracePID) so several analyses can share one registry.
func (e *engine) publishMetrics() {
	reg := e.opts.Metrics
	job := obs.Labels("job", fmt.Sprintf("%d", e.opts.TracePID))

	reg.NewCounterVec("psdf_engine_steps_total",
		"propagate steps executed", job).Add(e.steps.Load())
	reg.NewCounterVec("psdf_engine_widenings_total",
		"widening events (table entry replaced by a wider state)", job).Add(e.widenings.Load())
	reg.NewGaugeVec("psdf_engine_configs",
		"distinct pCFG configurations explored", job).Set(float64(e.res.Configs))
	reg.NewGaugeVec("psdf_engine_finals",
		"terminal all-at-exit configurations", job).Set(float64(len(e.res.Finals)))
	reg.NewGaugeVec("psdf_engine_tops",
		"give-up configurations in the result", job).Set(float64(len(e.res.Tops)))
	reg.NewGaugeVec("psdf_engine_matches",
		"distinct send-receive matches in the topology", job).Set(float64(len(e.res.Matches)))
	reg.NewGaugeVec("psdf_interned_keys",
		"distinct shape keys interned", job).Set(float64(e.in.size()))

	// Table occupancy per shard: the spread diagnoses shard-mask skew (one
	// hot shard serializes the parallel engine).
	for si := range e.shards {
		n := len(e.shards[si].m)
		reg.NewGaugeVec("psdf_table_shard_entries", "configuration-table entries per shard",
			obs.Labels("job", fmt.Sprintf("%d", e.opts.TracePID), "shard", fmt.Sprintf("%d", si))).
			Set(float64(n))
	}

	// Worklist high-water marks. The parallel scheduler tracks both depth
	// (queued) and pending (queued or running); the sequential queue only
	// has depth.
	if e.parallel {
		depth, pending := e.sched.highWater()
		reg.NewGaugeVec("psdf_sched_queue_depth_max",
			"scheduler queue depth high-water mark", job).SetMax(float64(depth))
		reg.NewGaugeVec("psdf_sched_pending_max",
			"scheduler pending (queued or running) high-water mark", job).SetMax(float64(pending))
	} else {
		reg.NewGaugeVec("psdf_sched_queue_depth_max",
			"scheduler queue depth high-water mark", job).SetMax(float64(e.seqDepthHW))
	}

	if s := e.stats(); s != nil {
		s.RegisterMetrics(reg, job)
	}
}

// RegisterMatchMemoMetrics exposes a MatchMemo's hit/miss counters on reg
// as psdf_match_memo_total{job,result}. Function-backed so a render after
// the run (or from the -http listener mid-run) sees live values.
func RegisterMatchMemoMetrics(reg *obs.Registry, memo *MatchMemo, job string) {
	if reg == nil || memo == nil {
		return
	}
	hit := obs.Labels("job", job, "result", "hit")
	miss := obs.Labels("job", job, "result", "miss")
	reg.CounterFuncVec("psdf_match_memo_total", "match memo lookups", hit,
		func() float64 { return float64(memo.HitCount()) })
	reg.CounterFuncVec("psdf_match_memo_total", "match memo lookups", miss,
		func() float64 { return float64(memo.MissCount()) })
	reg.GaugeFuncVec("psdf_match_memo_entries", "match memo resident entries",
		obs.Labels("job", job), func() float64 { return float64(memo.Len()) })
}

// statsForMetrics is a compile-time assertion that cg.Stats implements the
// registration hook the engine publishes through.
var _ interface {
	RegisterMetrics(*obs.Registry, string)
} = (*cg.Stats)(nil)
