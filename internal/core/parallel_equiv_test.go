// External test package: building real matchers requires the client
// packages, which import core.
package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cfg"
	"repro/internal/cg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/parser"
)

// signature renders everything the analysis promises to keep
// interleaving-independent: terminal configurations, give-up reasons, the
// communication topology and cleanliness.
func signature(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "clean=%v configs=%d\n", res.Clean(), res.Configs)
	for _, f := range res.Finals {
		fmt.Fprintf(&b, "final %s\n", f.FullKey())
	}
	b.WriteString(topoSignature(res))
	return b.String()
}

// topoSignature is the schedule-independent part: a non-FIFO schedule
// reorders the join/widen ladder and may converge to a syntactically
// different (equally sound) final constraint graph, but cleanliness, the
// give-up set and the communication topology must not move.
func topoSignature(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "clean=%v\n", res.Clean())
	for _, t := range res.Tops {
		fmt.Fprintf(&b, "top %s\n", t.TopWhy)
	}
	for _, m := range res.Matches {
		fmt.Fprintf(&b, "match %s\n", m.String())
	}
	return b.String()
}

func analyzeWith(t *testing.T, g *cfg.Graph, opts core.Options) *core.Result {
	t.Helper()
	opts.Matcher = cartesian.New(core.ScanInvariants(g))
	res, err := core.Analyze(g, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

// TestParallelEquivalenceWorkloads checks that the parallel engine and the
// alternative schedules produce byte-identical results to the sequential
// FIFO engine on every paper workload.
func TestParallelEquivalenceWorkloads(t *testing.T) {
	for _, w := range bench.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, g := w.Parse()
			base := analyzeWith(t, g, core.Options{})
			want, wantTopo := signature(base), topoSignature(base)
			for _, workers := range []int{1, 2, 8} {
				for _, sched := range []string{core.ScheduleFIFO, core.ScheduleLIFO, core.ScheduleShape} {
					_, g := w.Parse()
					res := analyzeWith(t, g, core.Options{Workers: workers, Schedule: sched})
					if sched == core.ScheduleFIFO {
						if got := signature(res); got != want {
							t.Errorf("workers=%d schedule=%s diverged:\n got: %s\nwant: %s",
								workers, sched, got, want)
						}
					} else if got := topoSignature(res); got != wantTopo {
						t.Errorf("workers=%d schedule=%s topology diverged:\n got: %s\nwant: %s",
							workers, sched, got, wantTopo)
					}
				}
			}
		})
	}
}

// testdataPrograms loads every program under testdata/ with the analysis
// mode the integration suite uses for it.
func testdataPrograms(t *testing.T) map[string]core.Options {
	t.Helper()
	modes := map[string]core.Options{
		"sendfirst_shift.mpl": {NonBlockingSends: true},
	}
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.mpl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("testdata glob: %v (%d files)", err, len(files))
	}
	out := map[string]core.Options{}
	for _, f := range files {
		out[f] = modes[filepath.Base(f)]
	}
	return out
}

func parseFile(t *testing.T, path string) *cfg.Graph {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	prog, err := parser.Parse(filepath.Base(path), string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return cfg.Build(prog)
}

// TestParallelEquivalenceTestdata extends the equivalence check to the
// repository's example programs, including the non-blocking-send mode.
func TestParallelEquivalenceTestdata(t *testing.T) {
	for path, opts := range testdataPrograms(t) {
		path, opts := path, opts
		t.Run(filepath.Base(path), func(t *testing.T) {
			want := signature(analyzeWith(t, parseFile(t, path), opts))
			for _, workers := range []int{1, 2, 8} {
				o := opts
				o.Workers = workers
				got := signature(analyzeWith(t, parseFile(t, path), o))
				if got != want {
					t.Errorf("workers=%d diverged:\n got: %s\nwant: %s", workers, got, want)
				}
			}
		})
	}
}

// TestParallelSmallShards stresses the shard locking: many workers, only
// two shards, repeated runs. Mainly valuable under -race.
func TestParallelSmallShards(t *testing.T) {
	ws := bench.All()
	for iter := 0; iter < 3; iter++ {
		for _, w := range ws {
			_, g := w.Parse()
			want := signature(analyzeWith(t, g, core.Options{}))
			_, g = w.Parse()
			got := signature(analyzeWith(t, g, core.Options{Workers: 8, Shards: 2}))
			if got != want {
				t.Fatalf("%s (iter %d) diverged:\n got: %s\nwant: %s", w.Name, iter, got, want)
			}
		}
	}
}

// TestParallelStatsPlumbed checks the new instrumentation reaches the
// shared stats record in a parallel run.
func TestParallelStatsPlumbed(t *testing.T) {
	_, g := bench.Stencil1D().Parse()
	stats := &cg.Stats{}
	res := analyzeWith(t, g, core.Options{Workers: 4, CGOpts: cg.Options{Stats: stats}})
	if !res.Clean() {
		t.Fatalf("stencil not clean: %v", res.TopReasons())
	}
	if stats.KeyCacheHits()+stats.KeyCacheMisses() == 0 {
		t.Error("key cache counters never touched")
	}
	if stats.KeyCacheHits() == 0 {
		t.Error("key cache never hit")
	}
}

func TestScheduleValidation(t *testing.T) {
	_, g := bench.Fig2Exchange().Parse()
	m := cartesian.New(core.ScanInvariants(g))
	if _, err := core.Analyze(g, core.Options{Matcher: m, Schedule: "bogus"}); err == nil {
		t.Fatal("expected error for unknown schedule")
	}
}
