package core_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/validate"
)

// analyzeNB parses and analyzes src with non-blocking sends enabled.
func analyzeNB(t *testing.T, src string) (*core.Result, *cfg.Graph) {
	t.Helper()
	prog, err := parser.Parse("nb.mpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := cfg.Build(prog)
	res, err := core.Analyze(g, core.Options{Matcher: &symbolic.Matcher{}, NonBlockingSends: true})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res, g
}

// The send-first shift: with blocking sends this needs the pipeline
// analysis; with the Section X extension the aggregated send matches the
// whole receiver set in one step.
const sendFirstShiftSrc = `
assume np >= 3
if id <= np - 2 then
  send x -> id + 1
end
if id >= 1 then
  recv y <- id - 1
end
`

func TestNonBlockingSendFirstShift(t *testing.T) {
	res, g := analyzeNB(t, sendFirstShiftSrc)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v, want 1 aggregated match", res.Matches)
	}
	m := res.Matches[0]
	if m.Sender.String() != "[0..np - 2]" || m.Receiver.String() != "[1..np - 1]" {
		t.Errorf("match = %v -> %v", m.Sender, m.Receiver)
	}
	for _, np := range []int{3, 5, 11} {
		if err := validate.Check(g, res, np, nil); err != nil {
			t.Errorf("np=%d: %v", np, err)
		}
	}
}

// Fan-out with non-blocking sends: the root's loop aggregates into one
// pending fan, matched set-level by the workers.
const nbFanoutSrc = `
assume np >= 3
if id == 0 then
  x := 7
  for i := 1 to np - 1 do
    send x -> i
  end
else
  recv y <- 0
  print y
end
`

func TestNonBlockingFanout(t *testing.T) {
	res, g := analyzeNB(t, nbFanoutSrc)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v", res.Matches)
	}
	m := res.Matches[0]
	if m.Sender.String() != "[0]" {
		t.Errorf("sender = %v", m.Sender)
	}
	// The frozen payload must still reach the receivers.
	for _, p := range res.Prints {
		if !p.Known || p.Val != 7 {
			t.Errorf("print = %+v, want 7", p)
		}
	}
	for _, np := range []int{3, 6, 9} {
		if err := validate.Check(g, res, np, nil); err != nil {
			t.Errorf("np=%d: %v", np, err)
		}
	}
}

// A fixed-width 2-D stencil (nx = 4 columns, symbolic row count): the
// column shift has stride 4, which the blocking pipeline analysis cannot
// summarize (its widening generalizes unit strides); with aggregated sends
// it is a single set-level match.
const stencil2DSrc = `
assume nx == 4
assume np == 4 * ny
assume ny >= 3
assume np >= 12
if id <= np - 5 then
  send x -> id + 4
end
if id >= 4 then
  recv y <- id - 4
end
`

func TestNonBlockingFixedWidth2DShift(t *testing.T) {
	res, g := analyzeNB(t, stencil2DSrc)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v", res.Matches)
	}
	m := res.Matches[0]
	if m.Sender.String() != "[0..np - 5]" || m.Receiver.String() != "[4..np - 1]" {
		t.Errorf("match = %v -> %v", m.Sender, m.Receiver)
	}
	for _, ny := range []int{3, 5} {
		if err := validate.Check(g, res, 4*ny, map[string]int64{"nx": 4, "ny": int64(ny)}); err != nil {
			t.Errorf("ny=%d: %v", ny, err)
		}
	}
}

// Blocking-mode workloads still analyze identically under the extension
// (recvs block; blocked-send matching still applies when issue fails).
func TestNonBlockingSubsumesBlockingWorkloads(t *testing.T) {
	res, g := analyzeNB(t, fig5Src)
	if !res.Clean() {
		t.Fatalf("fig5 under non-blocking: %v", res.TopReasons())
	}
	if err := validate.Check(g, res, 7, nil); err != nil {
		t.Errorf("fig5 np=7: %v", err)
	}
	res, g = analyzeNB(t, fig7Src)
	if !res.Clean() {
		t.Fatalf("fig7 under non-blocking: %v", res.TopReasons())
	}
	if err := validate.Check(g, res, 9, nil); err != nil {
		t.Errorf("fig7 np=9: %v", err)
	}
}

// An unreceived message is visible as a leftover pending send in the final
// configuration (an exact message-leak witness).
const nbLeakSrc = `
assume np >= 2
if id == 0 then
  send x -> 1
end
`

func TestNonBlockingLeakVisible(t *testing.T) {
	res, _ := analyzeNB(t, nbLeakSrc)
	if len(res.Finals) == 0 {
		t.Fatalf("no finals; tops=%v", res.TopReasons())
	}
	leaks := 0
	for _, f := range res.Finals {
		leaks += len(f.Pending)
	}
	if leaks == 0 {
		t.Error("leftover pending send not reported in finals")
	}
}

// FIFO: two sends on the same channel deliver in order, so the receiver's
// variables reflect the respective payloads.
const nbFIFOSrc = `
assume np >= 2
if id == 0 then
  a := 10
  send a -> 1
  b := 20
  send b -> 1
elif id == 1 then
  recv x <- 0
  recv y <- 0
  print x
  print y
end
`

func TestNonBlockingFIFO(t *testing.T) {
	res, g := analyzeNB(t, nbFIFOSrc)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	want := map[int64]bool{}
	for _, p := range res.Prints {
		if !p.Known {
			t.Errorf("print not constant: %+v", p)
			continue
		}
		want[p.Val] = true
	}
	if !want[10] || !want[20] {
		t.Errorf("prints = %v, want 10 and 20", res.Prints)
	}
	if err := validate.Check(g, res, 4, nil); err != nil {
		t.Errorf("validate: %v", err)
	}
}

// A bidirectional send-first exchange: both directions' sends aggregate
// into separate pending records matched independently.
const nbBidirSrc = `
assume np >= 4
if id <= np - 2 then
  send a -> id + 1
end
if id >= 1 then
  send b -> id - 1
end
if id >= 1 then
  recv x <- id - 1
end
if id <= np - 2 then
  recv y <- id + 1
end
`

func TestNonBlockingBidirectionalExchange(t *testing.T) {
	res, g := analyzeNB(t, nbBidirSrc)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v, want 2 (one per direction)", res.Matches)
	}
	dirs := map[string]bool{}
	for _, m := range res.Matches {
		dirs[m.Sender.String()+"->"+m.Receiver.String()] = true
	}
	if !dirs["[0..np - 2]->[1..np - 1]"] || !dirs["[1..np - 1]->[0..np - 2]"] {
		t.Errorf("directions = %v", dirs)
	}
	for _, np := range []int{4, 9} {
		if err := validate.Check(g, res, np, nil); err != nil {
			t.Errorf("np=%d: %v", np, err)
		}
	}
}

// Two pending fans from different roots are kept apart and matched to the
// correct receivers (src expression selects among pendings).
const nbTwoRootsSrc = `
assume np >= 6
if id == 0 then
  for i := 2 to 3 do
    send a -> i
  end
elif id == 1 then
  for i := 4 to 5 do
    send b -> i
  end
elif id <= 3 then
  recv x <- 0
else
  if id <= 5 then
    recv x <- 1
  end
end
`

func TestNonBlockingTwoFans(t *testing.T) {
	res, g := analyzeNB(t, nbTwoRootsSrc)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v, want 2", res.Matches)
	}
	for _, np := range []int{6, 8} {
		if err := validate.Check(g, res, np, nil); err != nil {
			t.Errorf("np=%d: %v", np, err)
		}
	}
}
