package core

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/cg"
	"repro/internal/parser"
	"repro/internal/procset"
	"repro/internal/sym"
)

func newTestState(t *testing.T) (*State, *cfg.Graph) {
	t.Helper()
	prog, err := parser.Parse("t.mpl", "send x -> 1\nrecv y <- 0")
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(prog)
	st := NewState(g.Entry, cg.Options{})
	return st, g
}

func TestHelperVarDetection(t *testing.T) {
	for _, v := range []string{"wp0", "wp12", "fz3", "k0", "f7"} {
		if !isHelperVar(v) {
			t.Errorf("%q not detected as helper", v)
		}
	}
	for _, v := range []string{"np", "nrows", "ps0.i", "kite", "wp", "fzz1", "x"} {
		if isHelperVar(v) {
			t.Errorf("%q wrongly detected as helper", v)
		}
	}
}

func TestCanonicalizeParamsRenames(t *testing.T) {
	st, _ := newTestState(t)
	st.G.SetConst("wp7", 3)
	st.Sets[0].Range = procset.Range(sym.Const(0), sym.VarPlus("wp7", 0))
	mapping := st.CanonicalizeParams()
	if mapping["wp7"] != "k0" {
		t.Fatalf("mapping = %v", mapping)
	}
	if st.Sets[0].Range.String() != "[0..k0]" {
		t.Errorf("range = %v", st.Sets[0].Range)
	}
	if !st.G.HasVar("k0") || st.G.HasVar("wp7") {
		t.Error("graph not renamed")
	}
	if v, ok := st.G.ConstVal("k0"); !ok || v != 3 {
		t.Errorf("k0 = %d,%v", v, ok)
	}
	// Idempotent.
	m2 := st.CanonicalizeParams()
	if m2["k0"] != "k0" {
		t.Errorf("second canonicalization: %v", m2)
	}
}

func TestCanonicalizeDropsStaleHelpers(t *testing.T) {
	st, _ := newTestState(t)
	st.G.SetConst("wp3", 1) // not referenced by any bound
	st.CanonicalizeParams()
	for _, v := range st.G.Vars() {
		if isHelperVar(v) {
			t.Errorf("stale helper %q survived", v)
		}
	}
}

func TestCanonicalizeTwoParams(t *testing.T) {
	st, _ := newTestState(t)
	st.G.AddEq("wp9", "wp2", 1)
	st.Sets[0].Range = procset.Range(sym.VarPlus("wp9", 0), sym.VarPlus("wp2", 5))
	st.CanonicalizeParams()
	// Appearance order: wp9 (LB) before wp2 (UB).
	if st.Sets[0].Range.String() != "[k0..k1 + 5]" {
		t.Errorf("range = %v", st.Sets[0].Range)
	}
	if !st.G.Entails("k0", "k1", 1) || !st.G.Entails("k1", "k0", -1) {
		t.Error("relation between params lost")
	}
}

func TestResolveHelpersSubstitutesWitness(t *testing.T) {
	st, _ := newTestState(t)
	st.G.AddEq("k0", "np", -3)
	st.Matches = append(st.Matches, &Match{
		SendNode: 1, RecvNode: 2,
		Sender:   procset.Range(sym.Const(1), sym.VarPlus("k0", 0)),
		Receiver: procset.Range(sym.Const(2), sym.VarPlus("k0", 1)),
	})
	st.ResolveHelpers()
	m := st.Matches[0]
	if m.Sender.String() != "[1..np - 3]" || m.Receiver.String() != "[2..np - 2]" {
		t.Errorf("resolved match = %v -> %v", m.Sender, m.Receiver)
	}
}

func TestFreezeConstsAndGlobals(t *testing.T) {
	st, _ := newTestState(t)
	// Globals and constants pass through unchanged.
	e, ok := st.freeze(sym.VarPlus("np", -1))
	if !ok || e.String() != "np - 1" {
		t.Errorf("freeze(np-1) = %v,%v", e, ok)
	}
	// A per-set variable with a known constant folds to the constant.
	st.G.SetConst(PV(0, "i"), 7)
	e, ok = st.freeze(sym.VarPlus(PV(0, "i"), 2))
	if !ok || e.String() != "9" {
		t.Errorf("freeze(ps0.i+2) = %v,%v", e, ok)
	}
	// A per-set variable without a witness gets a frozen twin.
	st.G.AddVar(PV(0, "j"))
	st.G.AddLE(PV(0, "j"), "np", 0)
	e, ok = st.freeze(sym.VarPlus(PV(0, "j"), 0))
	if !ok {
		t.Fatal("freeze failed")
	}
	if !strings.HasPrefix(e.String(), "fz") {
		t.Errorf("frozen form = %v", e)
	}
	// The twin carries the original's constraints via the equality.
	if !st.G.Entails(e.String(), "np", 0) {
		t.Errorf("frozen twin lost relation: %v", st.G)
	}
}

func TestIssueSendAggregatesFan(t *testing.T) {
	st, g := newTestState(t)
	sendNode := g.Entry.SuccSeq()
	ps := st.Sets[0]
	ps.Node = sendNode
	ps.Range = procset.Singleton(sym.Zero)
	st.G.AddLE(cg.ZeroVar, "np", -4)
	st.SetAssignedVars(map[string]bool{"x": true, "i": true})

	// Two sends to consecutive constants aggregate into one fan.
	st.G.SetConst(PV(0, "i"), 1)
	prog, _ := parser.Parse("s.mpl", "send x -> i")
	sn := cfg.Build(prog).Entry.SuccSeq()
	if !st.IssueSend(ps, sn) {
		t.Fatal("first issue failed")
	}
	st.G.Shift(PV(0, "i"), 1) // i := 2
	if !st.IssueSend(ps, sn) {
		t.Fatal("second issue failed")
	}
	if len(st.Pending) != 1 {
		t.Fatalf("pending = %v, want one aggregated fan", st.Pending)
	}
	p := st.Pending[0]
	if p.Shape != PendFan {
		t.Fatalf("shape = %v", p.Shape)
	}
	if got := p.Dests.String(); got != "[1..2]" {
		t.Errorf("dests = %v", got)
	}
}
