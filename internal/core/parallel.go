package core

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Parallel fixpoint driver (Options.Workers > 1).
//
// The pCFG worklist algorithm tolerates stale reads: stepping an outdated
// snapshot of a configuration produces successors that the join/widen
// ladder absorbs, and the scheduler's dirty marking guarantees the
// configuration is revisited after any revision that raced with an
// in-flight step. The one successor kind the ladder cannot absorb is a
// give-up (⊤): once in the table it never goes away, so a ⊤ derived from a
// stale intermediate version would poison the result. Give-up successors
// are therefore deferred — recorded per-entry (tableEntry.stuckTops) and
// overwritten by each re-step — and committed only at convergence, from
// the final entry versions (engine.commitStuckTops). Combined with the
// deterministic finish() post-pass and parameter canonicalization (helper
// names are assigned by appearance order inside each state, not globally),
// the converged Finals, Tops and Matches are independent of worker
// interleaving.

// runParallel spawns the worker pool and blocks until the fixpoint is
// reached (scheduler pending count hits zero) or the step budget aborts
// the run.
func (e *engine) runParallel(init *State, schedule string) {
	e.parallel = true
	e.sched = newScheduler(newQueue(schedule, e.in), e.stats())
	if reg := e.opts.Metrics; reg != nil {
		// Live scheduler gauges, evaluated under the scheduler mutex at
		// render time (for the -http metrics listener; they settle to the
		// final values once the run converges).
		job := obs.Labels("job", fmt.Sprintf("%d", e.opts.TracePID))
		sched := e.sched
		reg.GaugeFuncVec("psdf_sched_queue_depth", "configurations currently queued", job,
			func() float64 { return float64(sched.liveDepth()) })
		reg.GaugeFuncVec("psdf_sched_pending", "configurations queued or running", job,
			func() float64 { return float64(sched.livePending()) })
	}
	e.insertPar("", init, "start", 0)
	var wg sync.WaitGroup
	for w := 0; w < e.opts.workers(); w++ {
		wg.Add(1)
		// Worker lanes are tids 1..Workers; tid 0 is the driver goroutine
		// (finish post-pass and the caller's analyze span).
		go func(tid int) {
			defer wg.Done()
			for {
				dsp := e.span(tid, obs.PhaseDequeue, "")
				id, ok := e.sched.pop()
				dsp.End()
				if !ok {
					return
				}
				e.processPar(id, tid)
				e.sched.done(id)
			}
		}(w + 1)
	}
	wg.Wait()
}

// processPar steps one configuration: snapshot the table state under its
// shard lock, release the lock, run the (expensive) transfer/matching step
// on the private snapshot, then merge the successors. Terminal entries
// (Top or all-at-exit) are left for finish() to classify.
func (e *engine) processPar(id uint64, tid int) {
	fromKey := e.in.keyOf(id)
	sp := e.span(tid, obs.PhaseStep, fromKey)
	defer sp.End()
	sh := e.lockShard(id)
	entry := sh.m[id]
	var snap *State
	if entry != nil && !entry.st.Top && !e.allAtExit(entry.st) {
		snap = entry.st.Clone()
	}
	sh.mu.Unlock()
	if snap == nil {
		return
	}
	if e.steps.Add(1) > int64(e.opts.maxSteps()) {
		e.steps.Add(-1)
		e.budgetHit.Store(true)
		e.sched.stop()
		snap.Release()
		return
	}
	var tops []succ
	for _, sa := range e.step(snap, tid, fromKey) {
		if sa.st.Top {
			tops = append(tops, sa)
			continue
		}
		e.insertPar(fromKey, sa.st, sa.action, tid)
	}
	// step always clones before returning successors, so the private
	// snapshot is dead here and its graph storage can go back to the arena.
	snap.Release()
	// Record this step's give-up verdict on the entry, replacing the
	// previous step's. The scheduler runs at most one step per id at a
	// time, so verdict writes for an id are ordered; a revision that races
	// with this step marks the id dirty, and the requeued re-step
	// overwrites the verdict derived from the stale snapshot.
	sh = e.lockShard(id)
	if entry := sh.m[id]; entry != nil {
		entry.stuckTops = tops
	}
	sh.mu.Unlock()
}

// insertPar merges a successor configuration into the sharded table and
// schedules it. Canonicalization and key rendering happen before the lock
// is taken; only the table-entry revision itself runs under the shard
// lock.
func (e *engine) insertPar(fromKey string, st *State, action string, tid int) {
	if !st.Top && len(st.Sets) == 0 {
		st.Release()
		return
	}
	st.CanonicalizeParams()
	key := st.ShapeKey()
	isp := e.span(tid, obs.PhaseInsert, key)
	defer isp.End()
	e.recordEdge(fromKey, key, action)
	id := e.in.intern(key)
	sh := e.lockShard(id)
	entry := sh.m[id]
	if entry == nil {
		sh.m[id] = &tableEntry{st: st}
		sh.mu.Unlock()
		e.tracef("new    %-40s %s", key, st)
		e.sched.push(id)
		return
	}
	changed := e.reviseEntry(entry, st, key, tid)
	sh.mu.Unlock()
	if changed {
		e.sched.push(id)
	}
}

// lockShard locks the shard owning id, counting contended acquisitions.
func (e *engine) lockShard(id uint64) *tableShard {
	sh := e.shard(id)
	if !sh.mu.TryLock() {
		e.stats().AddShardContention(1)
		sh.mu.Lock()
	}
	return sh
}
