package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Parallel fixpoint driver (Options.Workers > 1).
//
// The pCFG worklist algorithm tolerates stale reads: stepping an outdated
// snapshot of a configuration produces successors that the join/widen
// ladder absorbs, and the scheduler's dirty marking guarantees the
// configuration is revisited after any revision that raced with an
// in-flight step. The one successor kind the ladder cannot absorb is a
// give-up (⊤): once in the table it never goes away, so a ⊤ derived from a
// stale intermediate version would poison the result. Give-up successors
// are therefore deferred — recorded per-entry (tableEntry.stuckTops) and
// overwritten by each re-step — and committed only at convergence, from
// the final entry versions (engine.commitStuckTops). Combined with the
// state-derived revision counters driving the join→widen ladder
// (tableEntry.rev — arrival order cannot shift when widening or give-up
// fires), the deterministic finish() post-pass and parameter
// canonicalization (helper names are assigned by appearance order inside
// each state, not globally), the converged Finals, Tops and Matches are
// independent of worker interleaving.
//
// Successor commits are batched per shard: a step canonicalizes and
// interns all of its successors outside any lock, then revises the
// same-shard ones inside one table-shard critical section and hands the
// changed ids to the matching scheduler shard in one push critical
// section (processPar → commitBatch → scheduler.pushShard).

// runParallel spawns the worker pool and blocks until the fixpoint is
// reached (scheduler pending count hits zero) or the step budget aborts
// the run.
func (e *engine) runParallel(init *State, schedule string) {
	e.parallel = true
	e.sched = newScheduler(schedule, e.in, len(e.shards), e.stats())
	if reg := e.opts.Metrics; reg != nil {
		// Live scheduler gauges, evaluated at render time (for the -http
		// metrics listener; they settle to the final values once the run
		// converges).
		job := obs.Labels("job", fmt.Sprintf("%d", e.opts.TracePID))
		sched := e.sched
		reg.GaugeFuncVec("psdf_sched_queue_depth", "configurations currently queued", job,
			func() float64 { return float64(sched.liveDepth()) })
		reg.GaugeFuncVec("psdf_sched_pending", "configurations queued or running", job,
			func() float64 { return float64(sched.livePending()) })
	}
	e.registerProgress(true)
	e.insertPar("", init, "start", 0)
	// Oversubscribing the machine buys nothing — extra workers just churn
	// through park/wake cycles on the scheduler condvar — so the pool is
	// clamped to GOMAXPROCS. The floor of 2 keeps a parallel request
	// genuinely concurrent even on a single-core host: the equivalence and
	// race suites rely on real interleavings, and the coalescing behavior
	// (the source of the single-core speedup) is identical from 2 workers
	// up — revision counters are state-derived, so the worker count cannot
	// move the result.
	workers := e.opts.workers()
	if max := runtime.GOMAXPROCS(0); workers > max {
		if max < 2 {
			max = 2
		}
		workers = max
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Worker lanes are tids 1..Workers; tid 0 is the driver goroutine
		// (finish post-pass and the caller's analyze span). Home shards are
		// spread evenly so workers drain disjoint queue slices until they
		// have to steal.
		home := w * len(e.shards) / workers
		go func(tid, home int) {
			defer wg.Done()
			e.withProfileLabels("fixpoint", tid, func() { e.workerLoop(tid, home) })
		}(w+1, home)
	}
	wg.Wait()
}

// workerLoop is one parallel worker's drain loop: pop, step, repeat until
// the fixpoint is reached or the run is aborted.
func (e *engine) workerLoop(tid, home int) {
	for {
		dsp := e.span(tid, obs.PhaseDequeue, "")
		id, ok := e.sched.pop(home)
		dsp.End()
		if !ok {
			return
		}
		e.rec().Record("dequeue", e.opts.TracePID, tid, "", "")
		e.processPar(id, tid)
		e.sched.done(id)
	}
}

// prepSucc is a step successor prepared for a batched commit:
// canonicalized, keyed and interned outside any lock.
type prepSucc struct {
	st     *State
	action string
	key    string
	id     uint64
}

// processPar steps one configuration: snapshot the table state under its
// shard lock, release the lock, run the (expensive) transfer/matching step
// on the private snapshot, then commit the successors in per-shard
// batches. Terminal entries (Top or all-at-exit) are left for finish() to
// classify.
func (e *engine) processPar(id uint64, tid int) {
	fromKey := e.in.keyOf(id)
	sp := e.span(tid, obs.PhaseStep, fromKey)
	defer sp.End()
	sh := e.lockShard(id)
	entry := sh.m[id]
	var snap *State
	if entry != nil && !entry.st.Top && !e.allAtExit(entry.st) {
		snap = entry.st.Clone()
	}
	sh.mu.Unlock()
	if snap == nil {
		return
	}
	if e.steps.Add(1) > int64(e.opts.maxSteps()) {
		e.steps.Add(-1)
		e.budgetHit.Store(true)
		e.rec().Record("budget", e.opts.TracePID, tid, fromKey, "step budget exhausted")
		e.sched.stop()
		snap.Release()
		return
	}
	e.rec().Record("step", e.opts.TracePID, tid, fromKey, "")
	// Prepare every successor outside the locks: drop unreachable ones,
	// canonicalize, render the shape key, intern. Edges are collected and
	// appended under one resMu acquisition instead of one per successor.
	var tops []succ
	var preps []prepSucc
	var edges []PCFGEdge
	for _, sa := range e.step(snap, tid, fromKey) {
		if sa.st.Top {
			tops = append(tops, sa)
			continue
		}
		if len(sa.st.Sets) == 0 {
			// Unreachable configuration (inconsistent constraints): drop.
			sa.st.Release()
			continue
		}
		sa.st.CanonicalizeParams()
		key := sa.st.ShapeKey()
		isp := e.span(tid, obs.PhaseInsert, key)
		preps = append(preps, prepSucc{st: sa.st, action: sa.action, key: key, id: e.in.intern(key)})
		edges = append(edges, PCFGEdge{From: fromKey, To: key, Action: sa.action})
		isp.End()
	}
	// step always clones before returning successors, so the private
	// snapshot is dead here and its graph storage can go back to the arena.
	snap.Release()
	if len(edges) > 0 {
		e.resMu.Lock()
		e.res.Edges = append(e.res.Edges, edges...)
		e.resMu.Unlock()
	}
	e.commitBatch(preps, tid)
	// Record this step's give-up verdict on the entry, replacing the
	// previous step's. The scheduler runs at most one step per id at a
	// time, so verdict writes for an id are ordered; a revision that races
	// with this step marks the id dirty, and the requeued re-step
	// overwrites the verdict derived from the stale snapshot.
	sh = e.lockShard(id)
	if entry := sh.m[id]; entry != nil {
		entry.stuckTops = tops
	}
	sh.mu.Unlock()
}

// commitBatch merges a step's prepared successors into the table, one
// critical section per touched shard, then schedules the configurations
// that changed with one scheduler push per shard. Table shards and
// scheduler shards share the id mask, so each commit group maps to
// exactly one scheduler shard.
func (e *engine) commitBatch(preps []prepSucc, tid int) {
	if len(preps) == 0 {
		return
	}
	done := make([]bool, len(preps))
	var changed []uint64
	for i := range preps {
		if done[i] {
			continue
		}
		si := preps[i].id & e.shardMask
		changed = changed[:0]
		csp := e.span(tid, obs.PhaseCommit, preps[i].key)
		sh := e.lockShard(preps[i].id)
		for j := i; j < len(preps); j++ {
			if done[j] || preps[j].id&e.shardMask != si {
				continue
			}
			done[j] = true
			p := preps[j]
			entry := sh.m[p.id]
			if entry == nil {
				sh.m[p.id] = &tableEntry{st: p.st}
				changed = append(changed, p.id)
				e.tracef("new    %-40s %s", p.key, p.st)
				continue
			}
			if e.reviseEntry(entry, p.st, p.key, tid) {
				changed = append(changed, p.id)
			}
		}
		saved := 0
		for j := i + 1; j < len(preps); j++ {
			if done[j] && preps[j].id&e.shardMask == si {
				saved++
			}
		}
		sh.mu.Unlock()
		csp.End()
		if saved > 0 {
			e.stats().AddBatchedSaved(int64(saved))
		}
		if rec := e.rec(); rec != nil {
			rec.Record("commit", e.opts.TracePID, tid, preps[i].key,
				fmt.Sprintf("shard=%d changed=%d", si, len(changed)))
		}
		e.sched.pushShard(si, changed)
	}
}

// insertPar merges a single configuration into the sharded table and
// schedules it — the seed path (batched steps go through commitBatch).
func (e *engine) insertPar(fromKey string, st *State, action string, tid int) {
	if !st.Top && len(st.Sets) == 0 {
		st.Release()
		return
	}
	st.CanonicalizeParams()
	key := st.ShapeKey()
	isp := e.span(tid, obs.PhaseInsert, key)
	defer isp.End()
	e.recordEdge(fromKey, key, action)
	id := e.in.intern(key)
	sh := e.lockShard(id)
	entry := sh.m[id]
	if entry == nil {
		sh.m[id] = &tableEntry{st: st}
		sh.mu.Unlock()
		e.tracef("new    %-40s %s", key, st)
		e.sched.push(id)
		return
	}
	changed := e.reviseEntry(entry, st, key, tid)
	sh.mu.Unlock()
	if changed {
		e.sched.push(id)
	}
}

// lockShard locks the shard owning id, counting contended acquisitions.
func (e *engine) lockShard(id uint64) *tableShard {
	sh := e.shard(id)
	if !sh.mu.TryLock() {
		e.stats().AddShardContention(1)
		sh.mu.Lock()
	}
	return sh
}
