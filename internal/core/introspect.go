package core

// Live engine introspection (DESIGN.md §14): progress sampling for the
// /statusz surface, the stall watchdog over the fixpoint, flight-recorder
// dumps, and pprof goroutine labels. Everything here is nil-guarded and
// opt-in — with Options.Log, Progress, FlightRecorder and StallTimeout all
// unset the engine's hot paths execute exactly as before.

import (
	"context"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
)

// jobLabel names this analysis in logs and pprof labels.
func (e *engine) jobLabel() string {
	if e.opts.Name != "" {
		return e.opts.Name
	}
	return "job-" + strconv.Itoa(e.opts.TracePID)
}

// rec returns the flight recorder (nil when disabled; obs.FlightRecorder
// methods are nil-safe, so call sites only guard when they would otherwise
// build a key or detail string).
func (e *engine) rec() *obs.FlightRecorder { return e.opts.FlightRecorder }

// progressCount is the watchdog's monotone progress reading: propagate
// steps plus widenings plus distinct configurations discovered. Any of the
// three moving means the fixpoint is advancing. With ForceStall the
// reading is pinned to 0, so the watchdog must fire after StallTimeout —
// the deterministic smoke path for the stall machinery.
func (e *engine) progressCount() int64 {
	if e.opts.ForceStall {
		return 0
	}
	return e.steps.Load() + e.widenings.Load() + int64(e.in.size())
}

// sampleProgress builds a point-in-time progress snapshot. Safe to call
// from any goroutine: everything it reads is atomic, mutex-protected, or
// read under a brief shard lock. parallel tells it whether the scheduler
// exists (captured at registration time, before the sampler is published).
func (e *engine) sampleProgress(parallel bool) obs.Progress {
	p := obs.Progress{
		Job:       e.opts.TracePID,
		Name:      e.opts.Name,
		Workers:   e.opts.workers(),
		Steps:     e.steps.Load(),
		Configs:   int64(e.in.size()),
		Widenings: e.widenings.Load(),
		GiveUps:   e.giveUps.Load(),
		ElapsedNs: time.Since(e.started).Nanoseconds(),
	}
	if s := e.stats(); s != nil {
		p.Joins = s.Joins()
		p.Steals = s.SchedSteals()
		p.Coalesced = s.SchedCoalesced()
	}
	if mp, ok := e.opts.Matcher.(interface{ Memo() *MatchMemo }); ok {
		if memo := mp.Memo(); memo != nil {
			p.MemoHits = int64(memo.HitCount())
			p.MemoMisses = int64(memo.MissCount())
			p.MemoHitRate = memo.HitRate()
		}
	}
	// Prover lane: the cartesian matcher keeps these as atomics, so the
	// sampler can read them mid-search (interface-asserted, like Memo).
	if pp, ok := e.opts.Matcher.(interface {
		ProverSearches() int64
		ProverSearchNs() int64
	}); ok {
		p.ProverSearches = pp.ProverSearches()
		p.ProverNs = pp.ProverSearchNs()
	}
	if parallel {
		p.Pending = int64(e.sched.livePending())
		p.Queued = int64(e.sched.liveDepth())
		p.ShardQueued = e.sched.shardDepths()
	}
	return p
}

// registerProgress publishes this analysis's live sampler on the tracker.
// Called from the driver goroutine after the engine's run-mode state
// (scheduler, shards) is fully constructed, so the sampler never observes
// a half-built engine.
func (e *engine) registerProgress(parallel bool) {
	if e.opts.Progress == nil {
		return
	}
	e.opts.Progress.Register(e.opts.TracePID, func() obs.Progress {
		return e.sampleProgress(parallel)
	})
}

// finishProgress replaces the live sampler with the final snapshot (the
// end-of-run totals /statusz keeps serving after convergence).
func (e *engine) finishProgress() {
	if e.opts.Progress == nil {
		return
	}
	final := e.sampleProgress(e.parallel)
	// The run is over: nothing is pending, and the totals are the
	// result's (finish() has already folded the counters into e.res).
	final.Steps = int64(e.res.Steps)
	final.Configs = int64(e.res.Configs)
	final.Widenings = int64(e.res.Widenings)
	final.Pending = 0
	final.Queued = 0
	final.ShardQueued = nil
	e.opts.Progress.Finish(e.opts.TracePID, final)
}

// armWatchdog starts the stall watchdog over the fixpoint when
// Options.StallTimeout is set. The returned watchdog (nil when disabled)
// must be settled with settleWatchdog after the run.
func (e *engine) armWatchdog() *obs.Watchdog {
	if e.opts.StallTimeout <= 0 {
		return nil
	}
	wd := obs.NewWatchdog(e.opts.StallTimeout, e.progressCount, func(rep obs.StallReport) {
		if lg := e.opts.Log; lg != nil {
			lg.Error("analysis stalled: no fixpoint progress within deadline",
				"job", e.opts.TracePID, "name", e.jobLabel(),
				"stalled_ms", rep.Stalled.Milliseconds(),
				"steps", e.steps.Load(), "configs", e.in.size(),
				"widenings", e.widenings.Load())
		}
		e.rec().Record("stall", e.opts.TracePID, 0, "", "no progress for "+rep.Stalled.String())
		e.dumpFlight("stall")
	})
	wd.Start(0)
	return wd
}

// settleWatchdog finishes the watchdog's run. With ForceStall the engine
// holds the (already converged) run open until the watchdog fires, making
// forced-stall smoke tests deterministic: exactly one dump, regardless of
// how fast the workload converged.
func (e *engine) settleWatchdog(wd *obs.Watchdog) {
	if wd == nil {
		return
	}
	if e.opts.ForceStall {
		<-wd.FiredChan()
	}
	wd.Stop()
}

// dumpFlight writes the flight recorder to Options.StallDump at most once
// per analysis — the watchdog and the step-budget abort share the once, so
// a stalled run that then exhausts its budget still produces one dump.
func (e *engine) dumpFlight(reason string) {
	e.dumpOnce.Do(func() {
		rec := e.rec()
		if rec == nil || e.opts.StallDump == nil {
			return
		}
		rec.Record("dump", e.opts.TracePID, 0, "", reason)
		if err := rec.Dump(e.opts.StallDump); err != nil && e.opts.Log != nil {
			e.opts.Log.Error("flight-recorder dump failed", "job", e.opts.TracePID, "err", err)
		}
	})
}

// withProfileLabels runs fn under pprof goroutine labels when
// Options.ProfileLabels is set; otherwise it calls fn directly. worker -1
// omits the worker label (driver-goroutine phases).
func (e *engine) withProfileLabels(phase string, worker int, fn func()) {
	if !e.opts.ProfileLabels {
		fn()
		return
	}
	kv := []string{"psdf_job", e.jobLabel(), "psdf_phase", phase}
	if worker >= 0 {
		kv = append(kv, "psdf_worker", strconv.Itoa(worker))
	}
	pprof.Do(context.Background(), pprof.Labels(kv...), func(context.Context) { fn() })
}

// logStart/logDone are the engine's lifecycle log lines.
func (e *engine) logStart(schedule string) {
	if lg := e.opts.Log; lg != nil {
		lg.Info("analysis started", "job", e.opts.TracePID, "name", e.jobLabel(),
			"workers", e.opts.workers(), "schedule", schedule, "shards", len(e.shards))
	}
}

func (e *engine) logDone() {
	lg := e.opts.Log
	if lg == nil {
		return
	}
	clean := e.res.Clean()
	attrs := []any{"job", e.opts.TracePID, "name", e.jobLabel(),
		"elapsed_ms", time.Since(e.started).Milliseconds(),
		"steps", e.res.Steps, "configs", e.res.Configs,
		"widenings", e.res.Widenings, "give_ups", e.giveUps.Load(),
		"matches", len(e.res.Matches), "clean", clean}
	if clean {
		lg.Info("analysis converged", attrs...)
	} else {
		lg.Warn("analysis converged with give-ups", append(attrs, "top_reasons", e.res.TopReasons())...)
	}
}
