package core_test

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/validate"
)

// analyzeCartHere analyzes with the HSM-capable client.
func analyzeCartHere(t *testing.T, src string) (*core.Result, *cfg.Graph) {
	t.Helper()
	prog, err := parser.Parse("t.mpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := cfg.Build(prog)
	res, err := core.Analyze(g, core.Options{Matcher: cartesian.New(core.ScanInvariants(g))})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res, g
}

// Two distinct sets exchanging via the combined sendrecv statement: the
// pairwise exchange path (applySendRecvPair).
func TestSendRecvPairExchange(t *testing.T) {
	src := `
assume np >= 4
if id <= np / 2 - 1 then
  sendrecv x -> id + np / 2, y <- id + np / 2
else
  sendrecv x -> id - np / 2, y <- id - np / 2
end
`
	// np/2 is not affine for symbolic np, so pin the halves with a helper
	// variable instead.
	src = `
assume np == 2 * half
assume half >= 2
if id <= half - 1 then
  sendrecv x -> id + half, y <- id + half
else
  sendrecv x -> id - half, y <- id - half
end
`
	res, g := analyzeCartHere(t, src)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v, want 2 (both directions)", res.Matches)
	}
	if err := validate.Check(g, res, 8, map[string]int64{"half": 4}); err != nil {
		t.Errorf("validate: %v", err)
	}
}

// A while-loop gather: the root receives from each worker in turn.
func TestGatherLoop(t *testing.T) {
	src := `
assume np >= 4
if id == 0 then
  i := 1
  while i <= np - 1 do
    recv y <- i
    i := i + 1
  end
else
  send x -> 0
end
`
	res, g := analyzeCartHere(t, src)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v", res.Matches)
	}
	m := res.Matches[0]
	if m.Sender.String() != "[1..np - 1]" || m.Receiver.String() != "[0]" {
		t.Errorf("gather match = %v -> %v", m.Sender, m.Receiver)
	}
	for _, np := range []int{4, 9} {
		if err := validate.Check(g, res, np, nil); err != nil {
			t.Errorf("np=%d: %v", np, err)
		}
	}
}

// Nested id conditionals: four roles from two levels of splitting.
func TestNestedIDSplits(t *testing.T) {
	src := `
assume np >= 8
if id <= np - 5 then
  if id == 0 then
    send a -> 1
  elif id == 1 then
    recv b <- 0
  end
else
  if id == np - 1 then
    send c -> np - 2
  elif id == np - 2 then
    recv d <- np - 1
  end
end
`
	res, g := analyzeCartHere(t, src)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v, want 2", res.Matches)
	}
	if err := validate.Check(g, res, 9, nil); err != nil {
		t.Errorf("validate: %v", err)
	}
}

// Asserts are assumed by the analysis (non-aborting executions) and the
// facts they carry refine conditions.
func TestAssertRefinesState(t *testing.T) {
	src := `
assume np >= 2
x := 5
assert x == 5
if x == 5 then
  y := 1
else
  y := 2
end
print y
`
	res, _ := analyzeCartHere(t, src)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	if len(res.Prints) != 1 || !res.Prints[0].Known || res.Prints[0].Val != 1 {
		t.Errorf("prints = %v, want the single value 1", res.Prints)
	}
}

// Without an np lower bound the worker set [1..np-1] may be empty; the
// engine must case-split rather than assume either way.
func TestNoNPAssumption(t *testing.T) {
	src := `
if id == 0 then
  send x -> 1
elif id == 1 then
  recv y <- 0
end
`
	res, g := analyzeCartHere(t, src)
	// The engine case-splits on np: at np = 1 the program really is buggy
	// (process 0 sends to the nonexistent rank 1), so the analysis must
	// flag that world with ⊤ while still covering np >= 2 with clean
	// finals that match the simulator.
	if len(res.Tops) == 0 {
		t.Error("np=1 leak world not flagged")
	}
	if len(res.Finals) == 0 {
		t.Fatal("no finals for the np >= 2 worlds")
	}
	for _, np := range []int{2, 4} {
		if err := validate.Check(g, res, np, nil); err != nil {
			t.Errorf("np=%d: %v", np, err)
		}
	}
}

// Branch conditions over unconstrained data fork the exploration; both
// paths' communications must appear in the topology.
func TestDataDependentBranchBothPaths(t *testing.T) {
	src := `
assume np >= 3
if id == 0 then
  if seed < 10 then
    send x -> 1
  else
    send x -> 2
  end
elif id == 1 then
  if seed < 10 then
    recv y <- 0
  end
elif id == 2 then
  if seed >= 10 then
    recv y <- 0
  end
end
`
	res, _ := analyzeCartHere(t, src)
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 2 {
		t.Errorf("matches = %v, want both branch topologies", res.Matches)
	}
}

// The pCFG record of the exploration is available for inspection.
func TestPCFGEdgesRecorded(t *testing.T) {
	res, _ := analyzeCartHere(t, `
assume np >= 3
if id == 0 then
  send x -> 1
elif id == 1 then
  recv y <- 0
end`)
	if res.Configs < 4 {
		t.Errorf("configs = %d, want several", res.Configs)
	}
	if len(res.Edges) < res.Configs-1 {
		t.Errorf("edges = %d for %d configs", len(res.Edges), res.Configs)
	}
	foundMatch := false
	for _, e := range res.Edges {
		if strings.HasPrefix(e.Action, "match ") {
			foundMatch = true
		}
	}
	if !foundMatch {
		t.Error("no match edge recorded in the pCFG")
	}
}
