package core

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/obs"
)

// The paper's evaluation analyzes a suite of independent workloads; nothing
// couples their fixpoint computations, so the suite is embarrassingly
// parallel one-workload-per-core. AnalyzeAll is the shared bounded-pool
// driver behind cmd/psdf-bench, cmd/psdf-run and internal/experiments.
//
// Per-job state must not be shared across jobs unless it is race-safe:
// cg.Stats is (atomic counters, so one Stats may aggregate a whole suite),
// but Matchers keep plain instrumentation counters and memo tables, so each
// Job needs its own Matcher instance. The obs types are race-safe, so one
// Tracer or Registry may be shared across jobs (TracePID keeps their spans
// and series apart).

// Job is one unit of work for AnalyzeAll: a CFG plus the analysis options
// to run it with.
type Job struct {
	// Name labels the workload in results (not interpreted).
	Name string
	// G is the program's control-flow graph.
	G *cfg.Graph
	// Opts configures the analysis. Opts.Matcher must not be shared with
	// another concurrently running Job.
	Opts Options
}

// JobResult is the outcome of one Job, in the same position as its input.
type JobResult struct {
	Name string
	Res  *Result
	Err  error
	// Wall is the job's wall-clock analysis time (the analyze span).
	Wall time.Duration
	// Phases is the per-phase time/count breakdown of this job's run. When
	// the caller supplied a shared Opts.Tracer the breakdown covers the
	// whole tracer (all jobs); otherwise AnalyzeAll installs a private
	// aggregate tracer per job and the breakdown is exactly this job's.
	Phases obs.PhaseTotals
}

// AnalyzeAll runs every job through Analyze on a bounded worker pool and
// returns the results in input order. parallelism <= 0 selects
// runtime.NumCPU(); parallelism == 1 degenerates to a sequential loop with
// identical results.
//
// Jobs with Opts.TracePID == 0 get input position + 1, so spans and metric
// series from different jobs stay distinguishable in a shared tracer or
// registry.
func AnalyzeAll(jobs []Job, parallelism int) []JobResult {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	run := func(i int) {
		j := jobs[i]
		opts := j.Opts
		if opts.TracePID == 0 {
			opts.TracePID = i + 1
		}
		if opts.Name == "" {
			opts.Name = j.Name
		}
		tr := opts.Tracer
		perJob := tr == nil
		if perJob {
			// Aggregate-only tracer: phase totals for the result breakdown
			// at near-zero cost, no event retention.
			tr = obs.NewAggregate()
			opts.Tracer = tr
		}
		sp := tr.Begin(opts.TracePID, 0, obs.PhaseAnalyze, j.Name)
		res, err := Analyze(j.G, opts)
		wall := sp.End()
		if err != nil && opts.Log != nil {
			opts.Log.Error("analysis failed", "job", opts.TracePID, "name", j.Name, "err", err)
		}
		results[i] = JobResult{Name: j.Name, Res: res, Err: err, Wall: wall, Phases: tr.Totals()}
	}
	if parallelism <= 1 {
		for i := range jobs {
			run(i)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				run(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
