package core

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/cfg"
)

// The paper's evaluation analyzes a suite of independent workloads; nothing
// couples their fixpoint computations, so the suite is embarrassingly
// parallel one-workload-per-core. AnalyzeAll is the shared bounded-pool
// driver behind cmd/psdf-bench, cmd/psdf-run and internal/experiments.
//
// Per-job state must not be shared across jobs unless it is race-safe:
// cg.Stats is (atomic counters, so one Stats may aggregate a whole suite),
// but Matchers keep plain instrumentation counters and memo tables, so each
// Job needs its own Matcher instance.

// Job is one unit of work for AnalyzeAll: a CFG plus the analysis options
// to run it with.
type Job struct {
	// Name labels the workload in results (not interpreted).
	Name string
	// G is the program's control-flow graph.
	G *cfg.Graph
	// Opts configures the analysis. Opts.Matcher must not be shared with
	// another concurrently running Job.
	Opts Options
}

// JobResult is the outcome of one Job, in the same position as its input.
type JobResult struct {
	Name    string
	Res     *Result
	Err     error
	Elapsed time.Duration
}

// AnalyzeAll runs every job through Analyze on a bounded worker pool and
// returns the results in input order. parallelism <= 0 selects
// runtime.NumCPU(); parallelism == 1 degenerates to a sequential loop with
// identical results.
func AnalyzeAll(jobs []Job, parallelism int) []JobResult {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	run := func(i int) {
		j := jobs[i]
		start := time.Now()
		res, err := Analyze(j.G, j.Opts)
		results[i] = JobResult{Name: j.Name, Res: res, Err: err, Elapsed: time.Since(start)}
	}
	if parallelism <= 1 {
		for i := range jobs {
			run(i)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				run(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
