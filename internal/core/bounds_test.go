package core_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/cg"
	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/sym"
)

// analyzeBounds runs the analysis with rank-bounds recording on.
func analyzeBounds(t *testing.T, src string) (*core.Result, *cfg.Graph) {
	t.Helper()
	prog, err := parser.Parse("test.mpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := cfg.Build(prog)
	res, err := core.Analyze(g, core.Options{Matcher: &symbolic.Matcher{}, RecordCommBounds: true})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res, g
}

func TestEntailsLE(t *testing.T) {
	prog, err := parser.Parse("t.mpl", "x := 1\n")
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(prog)
	st := core.NewState(g.Entry, cg.Options{})
	np := sym.Var("np")
	cases := []struct {
		l, r sym.Expr
		want bool
	}{
		{sym.Const(0), sym.Const(3), true},
		{sym.Const(3), sym.Const(0), false},
		{sym.Const(1), np, true},                   // np >= 1 is baked in
		{sym.Const(0), sym.AddConst(np, -1), true}, // np - 1 >= 0
		{sym.Const(2), np, false},                  // np >= 2 not known
		{np, np, true},
		{sym.AddConst(np, -1), np, true},
		{np, sym.AddConst(np, -1), false},
	}
	for _, c := range cases {
		if got := st.EntailsLE(c.l, c.r); got != c.want {
			t.Errorf("EntailsLE(%s, %s) = %v, want %v", c.l, c.r, got, c.want)
		}
	}
}

// Guarded shift: every communication target is provably in [0, np-1].
func TestBoundsProvenGuardedShift(t *testing.T) {
	res, _ := analyzeBounds(t, `
assume np >= 4
if id == 0 then
  send x -> id + 1
elif id <= np - 2 then
  recv y <- id - 1
  send x -> id + 1
else
  recv y <- id - 1
end
`)
	if !res.Clean() {
		t.Fatalf("analysis not clean: %v", res.TopReasons())
	}
	if len(res.CommBounds) == 0 {
		t.Fatal("no rank-bounds observations recorded")
	}
	for _, o := range res.CommBounds {
		if o.Status != core.BoundsProven {
			t.Errorf("observation not proven: %s", o)
		}
	}
}

// Unguarded shift: process np-1 sends to np (dest case) and process 0
// receives from -1 (src case). Each direction needs its own program —
// observations are only recorded at nodes the analysis actually reaches,
// and all processes block at the first communication operation.
func TestBoundsViolatedUnguardedShift(t *testing.T) {
	res, _ := analyzeBounds(t, `
assume np >= 2
send x -> id + 1
recv y <- id - 1
`)
	if !hasViolation(res, "dest") {
		t.Errorf("send dest id+1 on [0..np-1] not flagged; obs: %v", res.CommBounds)
	}
	res, _ = analyzeBounds(t, `
assume np >= 2
recv y <- id - 1
send x -> id + 1
`)
	if !hasViolation(res, "src") {
		t.Errorf("recv src id-1 on [0..np-1] not flagged; obs: %v", res.CommBounds)
	}
}

func hasViolation(res *core.Result, dir string) bool {
	for _, o := range res.CommBounds {
		if o.Status == core.BoundsViolated && o.Dir == dir {
			return true
		}
	}
	return false
}

// A give-up must carry provenance: blamed node, origin key, and a trace.
func TestTopProvenanceAndTrace(t *testing.T) {
	res, g := analyzeBounds(t, `
assume np >= 2
send x -> id + 1
recv y <- id - 1
`)
	if len(res.Tops) == 0 {
		t.Fatal("expected the unguarded shift to reach ⊤")
	}
	top := res.Tops[0]
	if top.TopNode <= 0 {
		t.Fatalf("⊤ state has no blamed node: why=%q", top.TopWhy)
	}
	n := g.Node(top.TopNode)
	if n == nil {
		t.Fatalf("blamed node n%d not in CFG", top.TopNode)
	}
	if !n.IsComm() {
		t.Errorf("blame should land on the blocked comm node, got n%d[%s]", n.ID, n.Label())
	}
	if top.TopKey == "" {
		t.Fatal("⊤ state has no origin key")
	}
	trace := res.TraceTo(top.TopKey)
	if len(trace) == 0 {
		t.Fatalf("no trace to origin %q", top.TopKey)
	}
	if last := trace[len(trace)-1]; last.To != top.TopKey {
		t.Errorf("trace ends at %q, want %q", last.To, top.TopKey)
	}
}

// Nodes behind a provably empty branch are never visited.
func TestVisitedSkipsDeadBranch(t *testing.T) {
	res, g := analyzeBounds(t, `
assume np >= 2
if id >= np then
  x := 1
end
print np
`)
	if !res.Clean() {
		t.Fatalf("analysis not clean: %v", res.TopReasons())
	}
	var assign, print *cfg.Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case cfg.Assign:
			assign = n
		case cfg.Print:
			print = n
		}
	}
	if assign == nil || print == nil {
		t.Fatal("test program shape changed")
	}
	if res.Visited[assign.ID] {
		t.Errorf("dead assign n%d marked visited", assign.ID)
	}
	if !res.Visited[print.ID] {
		t.Errorf("live print n%d not marked visited", print.ID)
	}
}

func TestBlameNodeParsing(t *testing.T) {
	cases := []struct {
		action string
		want   int
	}{
		{"match n5->n12", 5},
		{"n3[send x -> 1]", 3},
		{"block n17", 17},
		{"give-up", -1},
		{"", -1},
		{"no digits here", -1},
	}
	for _, c := range cases {
		e := core.PCFGEdge{Action: c.action}
		if got := e.BlameNode(); got != c.want {
			t.Errorf("BlameNode(%q) = %d, want %d", c.action, got, c.want)
		}
	}
}
