package core

import (
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/cg"
	"repro/internal/procset"
	"repro/internal/sem"
	"repro/internal/sym"
	"repro/internal/tri"
)

// AffineExpr translates an MPL integer expression executed by set ps into a
// symbolic affine form over namespaced constraint-graph variables. The
// builtin id resolves only when the set is a singleton (its value is then
// the range's bound expression). Returns ok=false for non-affine shapes
// (handled by the HSM matcher instead).
func (st *State) AffineExpr(ps *ProcSet, e ast.Expr) (sym.Expr, bool) {
	return st.affineExprRange(ps, ps.Range, e)
}

// affineExprRange is AffineExpr with an explicit range for id resolution
// (used when a matched subset differs from the set's full range).
func (st *State) affineExprRange(ps *ProcSet, rng procset.Set, e ast.Expr) (sym.Expr, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return sym.Const(x.Value), true
	case *ast.Ident:
		switch x.Name {
		case sem.NPVar:
			return sym.Var("np"), true
		case sem.IDVar:
			if rng.IsSingleton(st.Ctx()) == tri.True {
				return rng.LB.Primary(), true
			}
			return sym.Zero, false
		default:
			return sym.Var(st.varName(ps.ID, x.Name)), true
		}
	case *ast.Unary:
		if x.Op != ast.Neg {
			return sym.Zero, false
		}
		v, ok := st.affineExprRange(ps, rng, x.X)
		if !ok {
			return sym.Zero, false
		}
		return sym.Neg(v), true
	case *ast.Binary:
		switch x.Op {
		case ast.Add, ast.Sub:
			l, ok1 := st.affineExprRange(ps, rng, x.L)
			r, ok2 := st.affineExprRange(ps, rng, x.R)
			if !ok1 || !ok2 {
				return sym.Zero, false
			}
			if x.Op == ast.Add {
				return sym.Add(l, r), true
			}
			return sym.Sub(l, r), true
		case ast.Mul:
			l, ok1 := st.affineExprRange(ps, rng, x.L)
			r, ok2 := st.affineExprRange(ps, rng, x.R)
			if !ok1 || !ok2 {
				return sym.Zero, false
			}
			if c, ok := l.IsConst(); ok {
				return sym.Scale(r, c), true
			}
			if c, ok := r.IsConst(); ok {
				return sym.Scale(l, c), true
			}
			return sym.Zero, false
		}
		return sym.Zero, false
	}
	return sym.Zero, false
}

// IDMarker is the distinguished symbol standing for the builtin id inside
// matcher-side affine expressions (AffineExprID).
const IDMarker = "$id"

// AffineExprID translates an MPL expression like AffineExpr, but maps the
// builtin id to the marker symbol IDMarker so matchers can classify the
// expression's dependence on the process rank.
func (st *State) AffineExprID(ps *ProcSet, e ast.Expr) (sym.Expr, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return sym.Const(x.Value), true
	case *ast.Ident:
		switch x.Name {
		case sem.NPVar:
			return sym.Var("np"), true
		case sem.IDVar:
			return sym.Var(IDMarker), true
		default:
			return sym.Var(st.varName(ps.ID, x.Name)), true
		}
	case *ast.Unary:
		if x.Op != ast.Neg {
			return sym.Zero, false
		}
		v, ok := st.AffineExprID(ps, x.X)
		if !ok {
			return sym.Zero, false
		}
		return sym.Neg(v), true
	case *ast.Binary:
		l, ok1 := st.AffineExprID(ps, x.L)
		if !ok1 {
			return sym.Zero, false
		}
		r, ok2 := st.AffineExprID(ps, x.R)
		if !ok2 {
			return sym.Zero, false
		}
		switch x.Op {
		case ast.Add:
			return sym.Add(l, r), true
		case ast.Sub:
			return sym.Sub(l, r), true
		case ast.Mul:
			if c, ok := l.IsConst(); ok {
				return sym.Scale(r, c), true
			}
			if c, ok := r.IsConst(); ok {
				return sym.Scale(l, c), true
			}
		}
		return sym.Zero, false
	}
	return sym.Zero, false
}

// EntailsZero reports whether the constraint graph proves the affine
// expression equal to zero. Handles constants, single variables, and
// two-variable differences with unit coefficients.
func (st *State) EntailsZero(e sym.Expr) bool {
	if e.IsZero() {
		return true
	}
	if c, ok := e.IsConst(); ok {
		return c == 0
	}
	terms := e.Terms()
	var pos, neg string
	var c int64
	for _, t := range terms {
		switch {
		case len(t.Vars) == 0:
			c = t.Coef
		case len(t.Vars) == 1 && t.Coef == 1 && pos == "":
			pos = t.Vars[0]
		case len(t.Vars) == 1 && t.Coef == -1 && neg == "":
			neg = t.Vars[0]
		default:
			return false
		}
	}
	switch {
	case pos != "" && neg != "":
		// pos - neg + c == 0  <=>  pos = neg - c
		return st.G.Entails(pos, neg, -c) && st.G.Entails(neg, pos, c)
	case pos != "":
		return st.G.Entails(pos, cg.ZeroVar, -c) && st.G.Entails(cg.ZeroVar, pos, c)
	case neg != "":
		return st.G.Entails(neg, cg.ZeroVar, c) && st.G.Entails(cg.ZeroVar, neg, -c)
	}
	return false
}

// splitVarPlusConst decomposes an affine sym expression into a
// constraint-graph variable plus constant; constants use ZeroVar.
func splitVarPlusConst(e sym.Expr) (string, int64, bool) {
	v, c, ok := e.AsVarPlusConst()
	if !ok {
		return "", 0, false
	}
	if v == "" {
		return cg.ZeroVar, c, true
	}
	return v, c, true
}

// EvalCond evaluates a boolean condition for set ps, three-valued.
func (st *State) EvalCond(ps *ProcSet, cond ast.Expr) tri.Bool {
	switch x := cond.(type) {
	case *ast.BoolLit:
		return tri.FromBool(x.Value)
	case *ast.Unary:
		if x.Op == ast.LNot {
			return st.EvalCond(ps, x.X).Not()
		}
	case *ast.Binary:
		switch {
		case x.Op == ast.LAnd:
			return st.EvalCond(ps, x.L).And(st.EvalCond(ps, x.R))
		case x.Op == ast.LOr:
			return st.EvalCond(ps, x.L).Or(st.EvalCond(ps, x.R))
		case x.Op.IsComparison():
			l, ok1 := st.AffineExpr(ps, x.L)
			r, ok2 := st.AffineExpr(ps, x.R)
			if !ok1 || !ok2 {
				return tri.Unknown
			}
			return st.evalCmp(x.Op, l, r)
		}
	}
	return tri.Unknown
}

// evalCmp decides l op r from the constraint graph.
func (st *State) evalCmp(op ast.BinOp, l, r sym.Expr) tri.Bool {
	lv, lc, ok1 := splitVarPlusConst(l)
	rv, rc, ok2 := splitVarPlusConst(r)
	if !ok1 || !ok2 {
		// Try the constant difference.
		if d, ok := sym.Cmp(l, r); ok {
			return evalConstCmp(op, d)
		}
		return tri.Unknown
	}
	le := func(x string, xc int64, y string, yc int64, slack int64) tri.Bool {
		// x + xc <= y + yc + slack
		if st.G.Entails(x, y, yc-xc+slack) {
			return tri.True
		}
		if st.G.Entails(y, x, xc-yc-slack-1) {
			return tri.False
		}
		return tri.Unknown
	}
	switch op {
	case ast.Le:
		return le(lv, lc, rv, rc, 0)
	case ast.Lt:
		return le(lv, lc, rv, rc, -1)
	case ast.Ge:
		return le(rv, rc, lv, lc, 0)
	case ast.Gt:
		return le(rv, rc, lv, lc, -1)
	case ast.Eq:
		return le(lv, lc, rv, rc, 0).And(le(rv, rc, lv, lc, 0))
	case ast.Neq:
		return le(lv, lc, rv, rc, 0).And(le(rv, rc, lv, lc, 0)).Not()
	}
	return tri.Unknown
}

func evalConstCmp(op ast.BinOp, d int64) tri.Bool {
	switch op {
	case ast.Le:
		return tri.FromBool(d <= 0)
	case ast.Lt:
		return tri.FromBool(d < 0)
	case ast.Ge:
		return tri.FromBool(d >= 0)
	case ast.Gt:
		return tri.FromBool(d > 0)
	case ast.Eq:
		return tri.FromBool(d == 0)
	case ast.Neq:
		return tri.FromBool(d != 0)
	}
	return tri.Unknown
}

// AssumeCond adds cond (or its negation) for set ps to the constraint graph,
// to the extent it is expressible as difference constraints. Conjunctions
// decompose; negated conjunctions and disjunctions are skipped (sound:
// assuming less).
func (st *State) AssumeCond(ps *ProcSet, cond ast.Expr, negate bool) {
	switch x := cond.(type) {
	case *ast.Unary:
		if x.Op == ast.LNot {
			st.AssumeCond(ps, x.X, !negate)
		}
	case *ast.Binary:
		switch {
		case x.Op == ast.LAnd && !negate:
			st.AssumeCond(ps, x.L, false)
			st.AssumeCond(ps, x.R, false)
		case x.Op == ast.LOr && negate:
			st.AssumeCond(ps, x.L, true)
			st.AssumeCond(ps, x.R, true)
		case x.Op.IsComparison():
			if ast.UsesIdent(x.L, sem.IDVar) || ast.UsesIdent(x.R, sem.IDVar) {
				if ps.Range.IsSingleton(st.Ctx()) != tri.True {
					return // id facts live in the range representation
				}
			}
			l, ok1 := st.AffineExpr(ps, x.L)
			r, ok2 := st.AffineExpr(ps, x.R)
			if !ok1 || !ok2 {
				return
			}
			st.assumeCmp(x.Op, l, r, negate)
		}
	}
}

func (st *State) assumeCmp(op ast.BinOp, l, r sym.Expr, negate bool) {
	if negate {
		switch op {
		case ast.Le:
			op = ast.Gt
		case ast.Lt:
			op = ast.Ge
		case ast.Ge:
			op = ast.Lt
		case ast.Gt:
			op = ast.Le
		case ast.Eq:
			op = ast.Neq
		case ast.Neq:
			op = ast.Eq
		}
	}
	lv, lc, ok1 := splitVarPlusConst(l)
	rv, rc, ok2 := splitVarPlusConst(r)
	if !ok1 || !ok2 {
		return
	}
	switch op {
	case ast.Le: // lv + lc <= rv + rc
		st.G.AddLE(lv, rv, rc-lc)
	case ast.Lt:
		st.G.AddLE(lv, rv, rc-lc-1)
	case ast.Ge:
		st.G.AddLE(rv, lv, lc-rc)
	case ast.Gt:
		st.G.AddLE(rv, lv, lc-rc-1)
	case ast.Eq:
		st.G.AddEq(lv, rv, rc-lc)
	case ast.Neq:
		// Not expressible as a single difference constraint; skip.
	}
}

// idComparison matches conditions of the form "id op e" or "e op id" with a
// set-constant affine e, returning the normalized operator with id on the
// left and the comparison expression.
func (st *State) idComparison(ps *ProcSet, cond ast.Expr) (ast.BinOp, sym.Expr, bool) {
	x, ok := cond.(*ast.Binary)
	if !ok || !x.Op.IsComparison() {
		return 0, sym.Zero, false
	}
	lIsID := isIDIdent(x.L)
	rIsID := isIDIdent(x.R)
	if lIsID == rIsID {
		return 0, sym.Zero, false
	}
	var other ast.Expr
	op := x.Op
	if lIsID {
		other = x.R
	} else {
		other = x.L
		// Flip the comparison so id is on the left.
		switch x.Op {
		case ast.Lt:
			op = ast.Gt
		case ast.Le:
			op = ast.Ge
		case ast.Gt:
			op = ast.Lt
		case ast.Ge:
			op = ast.Le
		}
	}
	if ast.UsesIdent(other, sem.IDVar) {
		return 0, sym.Zero, false
	}
	e, okE := st.AffineExpr(ps, other)
	if !okE {
		return 0, sym.Zero, false
	}
	return op, e, true
}

func isIDIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == sem.IDVar
}

// SplitByIDCond partitions rng into the exact sub-ranges satisfying and
// violating an id-comparison, clamping every piece to rng (a pivot outside
// the range must not enlarge it). Pieces may be empty; ok=false when the
// required bound comparisons are not provable in the context.
func SplitByIDCond(ctx procset.Ctx, op ast.BinOp, rng procset.Set, e sym.Expr) (yes, no []procset.Set, ok bool) {
	rng = rng.Enrich(ctx)
	// below = rng ∩ (-inf, pivot)  and  atAbove = rng ∩ [pivot, +inf).
	splitAt := func(pivot sym.Expr) (procset.Set, procset.Set, bool) {
		below, ok1 := procset.Intersect(ctx, rng, procset.Set{LB: rng.LB, UB: procset.NewBound(sym.AddConst(pivot, -1))})
		atAbove, ok2 := procset.Intersect(ctx, rng, procset.Set{LB: procset.NewBound(pivot), UB: rng.UB})
		return below, atAbove, ok1 && ok2
	}
	switch op {
	case ast.Eq, ast.Neq:
		left, atAbove, ok1 := splitAt(e)
		if !ok1 {
			return nil, nil, false
		}
		mid, ok2 := procset.Intersect(ctx, atAbove, procset.Set{LB: procset.NewBound(e), UB: procset.NewBound(e)})
		right, ok3 := procset.Intersect(ctx, atAbove, procset.Set{LB: procset.NewBound(sym.AddConst(e, 1)), UB: rng.UB})
		if !ok2 || !ok3 {
			return nil, nil, false
		}
		if op == ast.Eq {
			return []procset.Set{mid}, []procset.Set{left, right}, true
		}
		return []procset.Set{left, right}, []procset.Set{mid}, true
	case ast.Lt: // id < e
		lt, ge, ok1 := splitAt(e)
		return []procset.Set{lt}, []procset.Set{ge}, ok1
	case ast.Le: // id <= e  <=>  id < e+1
		lt, ge, ok1 := splitAt(sym.AddConst(e, 1))
		return []procset.Set{lt}, []procset.Set{ge}, ok1
	case ast.Gt: // id > e  <=>  !(id <= e)
		lt, ge, ok1 := splitAt(sym.AddConst(e, 1))
		return []procset.Set{ge}, []procset.Set{lt}, ok1
	case ast.Ge:
		lt, ge, ok1 := splitAt(e)
		return []procset.Set{ge}, []procset.Set{lt}, ok1
	}
	return nil, nil, false
}

// ApplyAssign performs the transfer function for "name := rhs" on set ps.
func (st *State) ApplyAssign(ps *ProcSet, name string, rhs ast.Expr) {
	v := PV(ps.ID, name)
	rhsExpr, ok := st.AffineExpr(ps, rhs)
	if !ok {
		// Unknown value: also invalidate range atoms mentioning v.
		st.invalidateVar(v)
		st.G.Forget(v)
		return
	}
	// Invertible self-update x := x + c?
	if w, c, okd := rhsExpr.AsVarPlusConst(); okd && w == v {
		st.G.Shift(v, c)
		// Occurrences of v in ranges denote the OLD value = new v - c.
		st.SubstEverywhere(v, sym.VarPlus(v, -c))
		return
	}
	if rhsExpr.Uses(v) {
		// Self-referencing but not a plain shift (e.g. x := 2*x).
		st.invalidateVar(v)
		st.G.Forget(v)
		return
	}
	st.invalidateVar(v)
	st.G.Forget(v)
	if w, c, okd := splitVarPlusConst(rhsExpr); okd {
		st.G.AddEq(v, w, c)
	}
}

// invalidateNamespace rewrites range/match atoms referencing any of set
// id's variables to equality witnesses (done before the namespace's facts
// are weakened or dropped).
func (st *State) invalidateNamespace(id int) {
	for _, v := range st.namespaceVars(id) {
		st.invalidateVar(v)
	}
}

// invalidateVar rewrites range/match atoms that mention a variable about to
// lose its value, substituting an equality witness when one exists.
func (st *State) invalidateVar(v string) {
	used := false
	for _, p := range st.Sets {
		if p.Range.Uses(v) {
			used = true
		}
	}
	for _, m := range st.Matches {
		if m.Sender.Uses(v) || m.Receiver.Uses(v) {
			used = true
		}
	}
	for _, p := range st.Pending {
		if p.Senders.Uses(v) || p.Dests.Uses(v) || p.Offset.Uses(v) || (p.ValOK && p.Val.Uses(v)) {
			used = true
		}
	}
	if !used {
		return
	}
	// Prefer an equality witness not involving v.
	for _, w := range st.G.EqualWitnesses(v) {
		repl := sym.VarPlus(w.Var, w.C)
		if w.Var == cg.ZeroVar {
			repl = sym.Const(w.C)
		}
		st.SubstEverywhere(v, repl)
		return
	}
	// No witness: enrich (may add other atoms), then drop atoms using v.
	st.EnrichEverywhere()
	for _, p := range st.Sets {
		p.Range = procset.Set{LB: p.Range.LB.DropUses(v), UB: p.Range.UB.DropUses(v)}
	}
	for _, m := range st.Matches {
		m.Sender = procset.Set{LB: m.Sender.LB.DropUses(v), UB: m.Sender.UB.DropUses(v)}
		m.Receiver = procset.Set{LB: m.Receiver.LB.DropUses(v), UB: m.Receiver.UB.DropUses(v)}
	}
	for _, p := range st.Pending {
		p.Senders = procset.Set{LB: p.Senders.LB.DropUses(v), UB: p.Senders.UB.DropUses(v)}
		if p.Shape == PendFan {
			p.Dests = procset.Set{LB: p.Dests.LB.DropUses(v), UB: p.Dests.UB.DropUses(v)}
		}
	}
}

// RangesValid reports whether all ranges still have representable bounds
// (an invalid bound forces ⊤).
func (st *State) RangesValid() bool {
	for _, p := range st.Sets {
		if !p.Range.IsValid() {
			return false
		}
	}
	return true
}

// GlobalAssume processes an "assume" statement for set ps: affine facts go
// to the constraint graph; multiplicative equalities (np == nrows * ncols,
// ncols == 2 * nrows) are recorded as invariants for the HSM matcher.
func (st *State) GlobalAssume(ps *ProcSet, cond ast.Expr, inv *Invariants) {
	st.AssumeCond(ps, cond, false)
	if inv != nil {
		inv.Collect(cond)
	}
}

// Invariants accumulates non-affine global equalities for the cartesian
// (HSM) matcher, e.g. np = nrows*ncols. Collect locks internally because
// parallel workers may process assume statements concurrently; the maps
// are only read after the run (or before it, by InjectAffineConsequences).
type Invariants struct {
	mu          sync.Mutex
	Subst       map[string]sym.Expr
	LowerBounds map[string]int64
}

// NewInvariants returns an empty invariant store with np >= 1.
func NewInvariants() *Invariants {
	return &Invariants{
		Subst:       map[string]sym.Expr{},
		LowerBounds: map[string]int64{"np": 1},
	}
}

// Collect extracts invariants from an assume condition: var == polynomial
// equalities and var >= c lower bounds, recursing into conjunctions.
func (inv *Invariants) Collect(cond ast.Expr) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	inv.collectLocked(cond)
}

func (inv *Invariants) collectLocked(cond ast.Expr) {
	b, ok := cond.(*ast.Binary)
	if !ok {
		return
	}
	if b.Op == ast.LAnd {
		inv.collectLocked(b.L)
		inv.collectLocked(b.R)
		return
	}
	toPoly := func(e ast.Expr) (sym.Expr, bool) { return astToPoly(e) }
	switch b.Op {
	case ast.Eq:
		if id, ok := b.L.(*ast.Ident); ok && id.Name != sem.IDVar {
			if rhs, ok := toPoly(b.R); ok && !rhs.Uses(id.Name) {
				inv.Subst[id.Name] = rhs
			}
		}
	case ast.Ge:
		if id, ok := b.L.(*ast.Ident); ok && id.Name != sem.IDVar {
			if rhs, ok := toPoly(b.R); ok {
				if c, isC := rhs.IsConst(); isC {
					if cur, exists := inv.LowerBounds[id.Name]; !exists || c > cur {
						inv.LowerBounds[id.Name] = c
					}
				}
			}
		}
	}
}

// InjectAffineConsequences adds difference-constraint consequences of the
// multiplicative invariants to a constraint graph: for name = c * v1...vd
// with known lower bounds L_i >= 1 on each variable, it derives
// name >= c*prod(L) and name >= v_i + (c*prod(L) - L_i) for each factor
// (sound by monotonicity of the monomial above the bounds). This lets the
// Section VII client reason about grid sizes like np = 2*half or
// np = 4*ny that are otherwise invisible to difference constraints.
func InjectAffineConsequences(g *cg.Graph, inv *Invariants) {
	for name, rhs := range inv.Subst {
		terms := rhs.Terms()
		if len(terms) != 1 {
			continue
		}
		t := terms[0]
		if t.Coef <= 0 || len(t.Vars) == 0 {
			continue
		}
		prodL := t.Coef
		ok := true
		for _, v := range t.Vars {
			l := inv.LowerBounds[v]
			if l < 1 {
				ok = false
				break
			}
			prodL *= l
		}
		if !ok {
			continue
		}
		// name >= c*prod(L).
		g.AddLE(cg.ZeroVar, name, -prodL)
		// name - v_i >= prodL - L_i, provided the monomial grows at least
		// as fast as v_i (true when the partial derivative at the bounds,
		// c*prod(L)/L_i, is >= 1).
		seen := map[string]bool{}
		for _, v := range t.Vars {
			if seen[v] {
				continue
			}
			seen[v] = true
			l := inv.LowerBounds[v]
			if prodL/l >= 1 && prodL-l >= 0 {
				g.AddLE(v, name, -(prodL - l))
			}
		}
	}
}

// ScanInvariants walks a CFG collecting the global invariants declared by
// assume statements (used to construct HSM-based matchers before analysis).
func ScanInvariants(g *cfg.Graph) *Invariants {
	inv := NewInvariants()
	for _, n := range g.Nodes {
		if n.Kind == cfg.Assume {
			inv.Collect(n.Cond)
		}
	}
	return inv
}

// astToPoly converts an id-free MPL integer expression to a polynomial
// (division/modulus unsupported).
func astToPoly(e ast.Expr) (sym.Expr, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return sym.Const(x.Value), true
	case *ast.Ident:
		if x.Name == sem.IDVar {
			return sym.Zero, false
		}
		return sym.Var(x.Name), true
	case *ast.Unary:
		if x.Op != ast.Neg {
			return sym.Zero, false
		}
		v, ok := astToPoly(x.X)
		if !ok {
			return sym.Zero, false
		}
		return sym.Neg(v), true
	case *ast.Binary:
		l, ok1 := astToPoly(x.L)
		r, ok2 := astToPoly(x.R)
		if !ok1 || !ok2 {
			return sym.Zero, false
		}
		switch x.Op {
		case ast.Add:
			return sym.Add(l, r), true
		case ast.Sub:
			return sym.Sub(l, r), true
		case ast.Mul:
			return sym.Mul(l, r), true
		}
	}
	return sym.Zero, false
}

// advance moves ps along its unique sequential successor.
func advance(ps *ProcSet) {
	ps.Node = ps.Node.SuccSeq()
	ps.Blocked = false
}

// debugString renders a node action for diagnostics.
func nodeDesc(n *cfg.Node) string { return fmt.Sprintf("n%d[%s]", n.ID, n.Label()) }
