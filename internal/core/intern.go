package core

import "sync"

// interner maps configuration shape keys to compact uint64 ids. The
// fixpoint engine hashes a state's shape key once on insert and from then
// on indexes the configuration table, the worklist and the scheduler by
// the id: comparisons and map probes on 8-byte ids are cheaper than on
// the multi-line key strings, and the parallel engine's sharded table can
// pick a shard with a single mask instead of re-hashing the string.
//
// Ids are assigned densely in first-intern order, so the sequential
// engine's FIFO worklist over ids visits configurations in exactly the
// order the string-keyed worklist did. Safe for concurrent use: lookups
// of already-interned keys take a read lock only.
type interner struct {
	mu   sync.RWMutex
	ids  map[string]uint64
	keys []string
}

func newInterner() *interner {
	return &interner{ids: make(map[string]uint64, 64)}
}

// intern returns the id for key, assigning the next dense id on first use.
func (in *interner) intern(key string) uint64 {
	in.mu.RLock()
	id, ok := in.ids[key]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[key]; ok {
		return id
	}
	id = uint64(len(in.keys))
	in.ids[key] = id
	in.keys = append(in.keys, key)
	return id
}

// keyOf returns the key string interned under id.
func (in *interner) keyOf(id uint64) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.keys[id]
}

// size reports the number of interned keys.
func (in *interner) size() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.keys)
}
