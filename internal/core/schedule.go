package core

import (
	"container/heap"
	"sync"

	"repro/internal/cg"
)

// workQueue orders the ids of configurations awaiting (re)visits. The
// engine guarantees an id is enqueued at most once at a time (the
// worklist's classic "in work" set), so implementations never see
// duplicates.
type workQueue interface {
	push(id uint64)
	pop() (uint64, bool)
	size() int
}

// ringQueue is a FIFO over a slice with an explicit head index. Popping
// advances the head instead of re-slicing, so the backing array's popped
// prefix does not accumulate for the lifetime of the analysis (the old
// `work = work[1:]` loop retained every key string ever queued); once the
// dead prefix dominates the backing array it is compacted away.
type ringQueue struct {
	buf  []uint64
	head int
}

func (q *ringQueue) push(id uint64) {
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, id)
}

func (q *ringQueue) pop() (uint64, bool) {
	if q.head == len(q.buf) {
		return 0, false
	}
	id := q.buf[q.head]
	q.head++
	return id, true
}

func (q *ringQueue) size() int { return len(q.buf) - q.head }

// lifoQueue is a stack: depth-first exploration of the configuration
// space. Reaches fixpoints on loop bodies before exploring siblings.
type lifoQueue struct {
	buf []uint64
}

func (q *lifoQueue) push(id uint64) { q.buf = append(q.buf, id) }

func (q *lifoQueue) pop() (uint64, bool) {
	if len(q.buf) == 0 {
		return 0, false
	}
	id := q.buf[len(q.buf)-1]
	q.buf = q.buf[:len(q.buf)-1]
	return id, true
}

func (q *lifoQueue) size() int { return len(q.buf) }

// shapeQueue pops the lexicographically smallest shape key first. Shape
// keys render the per-node partition of process sets, so neighbouring
// configurations of the same control region sort together: revisits of a
// configuration whose predecessors are still queued tend to be coalesced
// into one visit instead of re-stepping the state once per predecessor.
type shapeQueue struct {
	keyOf func(uint64) string
	ids   []uint64
}

func (q *shapeQueue) Len() int           { return len(q.ids) }
func (q *shapeQueue) Less(i, j int) bool { return q.keyOf(q.ids[i]) < q.keyOf(q.ids[j]) }
func (q *shapeQueue) Swap(i, j int)      { q.ids[i], q.ids[j] = q.ids[j], q.ids[i] }
func (q *shapeQueue) Push(x interface{}) { q.ids = append(q.ids, x.(uint64)) }
func (q *shapeQueue) Pop() interface{} {
	id := q.ids[len(q.ids)-1]
	q.ids = q.ids[:len(q.ids)-1]
	return id
}

func (q *shapeQueue) push(id uint64) { heap.Push(q, id) }

func (q *shapeQueue) pop() (uint64, bool) {
	if len(q.ids) == 0 {
		return 0, false
	}
	return heap.Pop(q).(uint64), true
}

func (q *shapeQueue) size() int { return len(q.ids) }

// newQueue builds the queue backend for a schedule name (validated by
// Options.schedule).
func newQueue(schedule string, in *interner) workQueue {
	switch schedule {
	case ScheduleLIFO:
		return &lifoQueue{}
	case ScheduleShape:
		return &shapeQueue{keyOf: in.keyOf}
	default:
		return &ringQueue{}
	}
}

// Per-configuration scheduler states. A configuration is idle (not
// queued, not being stepped), queued, running on some worker, or running
// with a revision that arrived mid-step (dirty) and therefore needs a
// requeue when the step finishes.
const (
	cfgIdle uint8 = iota
	cfgQueued
	cfgRunning
	cfgRunningDirty
)

// scheduler coordinates the parallel worklist: it owns the queue, tracks
// each configuration's scheduling state, and detects termination. The
// invariant behind the termination detector: pending counts configurations
// that are queued or running; a worker holds its pop "in flight" until it
// calls done, so pending==0 means no configuration can ever become queued
// again — the fixpoint is reached.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       workQueue
	state   map[uint64]uint8
	pending int
	stopped bool
	stats   *cg.Stats
	// High-water marks for the observability gauges: deepest the queue got
	// and most configurations simultaneously queued-or-running.
	depthHW   int
	pendingHW int
}

func newScheduler(q workQueue, stats *cg.Stats) *scheduler {
	s := &scheduler{q: q, state: make(map[uint64]uint8, 64), stats: stats}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push requests a (re)visit of id. Pushes onto an already-queued or
// already-dirty configuration coalesce: the single upcoming visit will
// observe the revised table entry, saving a full step. Pushes onto a
// running configuration mark it dirty so it is requeued after its
// in-flight step (which read a pre-revision snapshot) completes.
func (s *scheduler) push(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	switch s.state[id] {
	case cfgIdle:
		s.state[id] = cfgQueued
		s.pending++
		s.q.push(id)
		if d := s.q.size(); d > s.depthHW {
			s.depthHW = d
		}
		if s.pending > s.pendingHW {
			s.pendingHW = s.pending
		}
		s.cond.Signal()
	case cfgQueued, cfgRunningDirty:
		s.stats.AddSchedCoalesced(1)
	case cfgRunning:
		s.state[id] = cfgRunningDirty
	}
}

// pop blocks until a configuration is available, the fixpoint is reached,
// or the scheduler is stopped. ok=false means the worker should exit.
func (s *scheduler) pop() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return 0, false
		}
		if id, ok := s.q.pop(); ok {
			s.state[id] = cfgRunning
			return id, true
		}
		if s.pending == 0 {
			return 0, false
		}
		s.cond.Wait()
	}
}

// done reports that the step for id finished. A dirty configuration is
// requeued (its in-flight step used a stale snapshot); otherwise it goes
// idle, and if it was the last pending configuration the fixpoint is
// reached and all waiting workers are released.
func (s *scheduler) done(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state[id] == cfgRunningDirty && !s.stopped {
		s.state[id] = cfgQueued
		s.q.push(id)
		if d := s.q.size(); d > s.depthHW {
			s.depthHW = d
		}
		s.cond.Signal()
		return
	}
	s.state[id] = cfgIdle
	s.pending--
	if s.pending == 0 {
		s.cond.Broadcast()
	}
}

// liveDepth reports how many configurations are queued right now (for the
// live metrics gauge).
func (s *scheduler) liveDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.size()
}

// livePending reports how many configurations are queued or running.
func (s *scheduler) livePending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// highWater reports the queue-depth and pending-count high-water marks.
func (s *scheduler) highWater() (depth, pending int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depthHW, s.pendingHW
}

// stop aborts the run (step budget exhausted): workers drain immediately.
func (s *scheduler) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	s.cond.Broadcast()
}
