package core

import (
	"container/heap"
	"sync"
	"sync/atomic"

	"repro/internal/cg"
)

// workQueue orders the ids of configurations awaiting (re)visits. The
// engine guarantees an id is enqueued at most once at a time (the
// worklist's classic "in work" set), so implementations never see
// duplicates.
type workQueue interface {
	push(id uint64)
	pop() (uint64, bool)
	size() int
}

// ringQueue is a FIFO over a slice with an explicit head index. Popping
// advances the head instead of re-slicing, so the backing array's popped
// prefix does not accumulate for the lifetime of the analysis (the old
// `work = work[1:]` loop retained every key string ever queued); once the
// dead prefix dominates the backing array it is compacted away.
type ringQueue struct {
	buf  []uint64
	head int
}

func (q *ringQueue) push(id uint64) {
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, id)
}

func (q *ringQueue) pop() (uint64, bool) {
	if q.head == len(q.buf) {
		return 0, false
	}
	id := q.buf[q.head]
	q.head++
	return id, true
}

func (q *ringQueue) size() int { return len(q.buf) - q.head }

// lifoQueue is a stack: depth-first exploration of the configuration
// space. Reaches fixpoints on loop bodies before exploring siblings.
type lifoQueue struct {
	buf []uint64
}

func (q *lifoQueue) push(id uint64) { q.buf = append(q.buf, id) }

func (q *lifoQueue) pop() (uint64, bool) {
	if len(q.buf) == 0 {
		return 0, false
	}
	id := q.buf[len(q.buf)-1]
	q.buf = q.buf[:len(q.buf)-1]
	return id, true
}

func (q *lifoQueue) size() int { return len(q.buf) }

// shapeQueue pops the lexicographically smallest shape key first. Shape
// keys render the per-node partition of process sets, so neighbouring
// configurations of the same control region sort together: revisits of a
// configuration whose predecessors are still queued tend to be coalesced
// into one visit instead of re-stepping the state once per predecessor.
type shapeQueue struct {
	keyOf func(uint64) string
	ids   []uint64
}

func (q *shapeQueue) Len() int           { return len(q.ids) }
func (q *shapeQueue) Less(i, j int) bool { return q.keyOf(q.ids[i]) < q.keyOf(q.ids[j]) }
func (q *shapeQueue) Swap(i, j int)      { q.ids[i], q.ids[j] = q.ids[j], q.ids[i] }
func (q *shapeQueue) Push(x interface{}) { q.ids = append(q.ids, x.(uint64)) }
func (q *shapeQueue) Pop() interface{} {
	id := q.ids[len(q.ids)-1]
	q.ids = q.ids[:len(q.ids)-1]
	return id
}

func (q *shapeQueue) push(id uint64) { heap.Push(q, id) }

func (q *shapeQueue) pop() (uint64, bool) {
	if len(q.ids) == 0 {
		return 0, false
	}
	return heap.Pop(q).(uint64), true
}

func (q *shapeQueue) size() int { return len(q.ids) }

// newQueue builds the queue backend for a schedule name (validated by
// Options.schedule).
func newQueue(schedule string, in *interner) workQueue {
	switch schedule {
	case ScheduleLIFO:
		return &lifoQueue{}
	case ScheduleShape:
		return &shapeQueue{keyOf: in.keyOf}
	default:
		return &ringQueue{}
	}
}

// Per-configuration scheduler states. A configuration is idle (not
// queued, not being stepped), queued, running on some worker, or running
// with a revision that arrived mid-step (dirty) and therefore needs a
// requeue when the step finishes.
const (
	cfgIdle uint8 = iota
	cfgQueued
	cfgRunning
	cfgRunningDirty
)

// schedShard is one slice of the sharded scheduler: its own queue, state
// map and lock. Scheduler shards are aligned with the configuration-table
// shards (same count, same mask), so a step's batched table commit for one
// table shard feeds exactly one scheduler shard — one push critical
// section per commit critical section.
type schedShard struct {
	mu    sync.Mutex
	q     workQueue
	state map[uint64]uint8
}

// scheduler coordinates the parallel worklist: sharded run queues, a
// per-configuration state machine, and termination detection. The
// invariant behind the termination detector: pending counts configurations
// that are queued or running; a worker holds its pop "in flight" until it
// calls done, so pending==0 means no configuration can ever become queued
// again — the fixpoint is reached. pending and queued are global atomics
// so workers check for termination and emptiness without sweeping shards;
// the per-shard mutexes only serialize same-shard queue and state-map
// operations.
type scheduler struct {
	shards []schedShard
	mask   uint64
	// pending counts configurations queued or running; queued counts
	// configurations sitting in some shard queue right now.
	pending atomic.Int64
	queued  atomic.Int64
	stopped atomic.Bool
	stats   *cg.Stats
	// High-water marks for the observability gauges: deepest the queues got
	// (summed) and most configurations simultaneously queued-or-running.
	depthHW   atomic.Int64
	pendingHW atomic.Int64
	// mu/cond only coordinate worker sleep when no work is visible;
	// sleepers lets pushers skip the lock entirely while every worker is
	// busy (the common case).
	mu       sync.Mutex
	cond     *sync.Cond
	sleepers atomic.Int64
}

func newScheduler(schedule string, in *interner, nshards int, stats *cg.Stats) *scheduler {
	s := &scheduler{shards: make([]schedShard, nshards), mask: uint64(nshards - 1), stats: stats}
	for i := range s.shards {
		s.shards[i].q = newQueue(schedule, in)
		s.shards[i].state = make(map[uint64]uint8, 8)
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// hwMax raises a high-water mark to v (lock-free monotonic max).
func hwMax(hw *atomic.Int64, v int64) {
	for {
		cur := hw.Load()
		if v <= cur || hw.CompareAndSwap(cur, v) {
			return
		}
	}
}

// push requests a (re)visit of one configuration.
func (s *scheduler) push(id uint64) {
	s.pushShard(id&s.mask, []uint64{id})
}

// pushShard requests (re)visits of a batch of configurations, all owned by
// scheduler shard si, under one lock acquisition. Pushes onto an
// already-queued or already-dirty configuration coalesce: the single
// upcoming visit will observe the revised table entry, saving a full step.
// Pushes onto a running configuration mark it dirty so it is requeued
// after its in-flight step (which read a pre-revision snapshot) completes.
func (s *scheduler) pushShard(si uint64, ids []uint64) {
	if len(ids) == 0 || s.stopped.Load() {
		return
	}
	if len(ids) > 1 {
		s.stats.AddBatchedSaved(int64(len(ids) - 1))
	}
	sh := &s.shards[si]
	newly, coalesced := 0, int64(0)
	sh.mu.Lock()
	for _, id := range ids {
		switch sh.state[id] {
		case cfgIdle:
			sh.state[id] = cfgQueued
			sh.q.push(id)
			newly++
		case cfgQueued, cfgRunningDirty:
			coalesced++
		case cfgRunning:
			sh.state[id] = cfgRunningDirty
		}
	}
	sh.mu.Unlock()
	if coalesced > 0 {
		s.stats.AddSchedCoalesced(coalesced)
	}
	if newly == 0 {
		return
	}
	hwMax(&s.pendingHW, s.pending.Add(int64(newly)))
	hwMax(&s.depthHW, s.queued.Add(int64(newly)))
	s.wake()
}

// wake releases sleeping workers after work became visible. The sleepers
// fast path keeps pushes lock-free while all workers are busy; the
// broadcast is taken under mu so a worker between its condition re-check
// and cond.Wait cannot miss it (the pusher blocks on mu until the worker
// is parked).
func (s *scheduler) wake() {
	if s.sleepers.Load() == 0 {
		return
	}
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// pop blocks until a configuration is available, the fixpoint is reached,
// or the scheduler is stopped. ok=false means the worker should exit.
// home is the worker's preferred shard; when it is empty the worker steals
// from the other shards (scanning upward from home).
func (s *scheduler) pop(home int) (uint64, bool) {
	for {
		if s.stopped.Load() {
			return 0, false
		}
		if s.queued.Load() > 0 {
			if id, ok := s.tryPop(home); ok {
				return id, true
			}
			continue
		}
		if s.pending.Load() == 0 {
			return 0, false
		}
		// Nothing queued but steps are in flight: park until a push (or the
		// final done) broadcasts. The condition re-check after registering
		// as a sleeper closes the race against a concurrent pusher: the
		// pusher makes queued>0 visible before reading sleepers, so either
		// it sees this sleeper and broadcasts under mu, or this load sees
		// its work.
		s.mu.Lock()
		s.sleepers.Add(1)
		for s.queued.Load() == 0 && s.pending.Load() > 0 && !s.stopped.Load() {
			s.cond.Wait()
		}
		s.sleepers.Add(-1)
		s.mu.Unlock()
	}
}

// tryPop pops from the home shard, or failing that steals from the first
// non-empty shard above it (wrapping).
func (s *scheduler) tryPop(home int) (uint64, bool) {
	n := len(s.shards)
	for i := 0; i < n; i++ {
		sh := &s.shards[(home+i)%n]
		sh.mu.Lock()
		id, ok := sh.q.pop()
		if ok {
			sh.state[id] = cfgRunning
		}
		sh.mu.Unlock()
		if ok {
			s.queued.Add(-1)
			if i != 0 {
				s.stats.AddSchedSteals(1)
			}
			return id, true
		}
		if s.queued.Load() == 0 {
			break
		}
	}
	return 0, false
}

// done reports that the step for id finished. A dirty configuration is
// requeued (its in-flight step used a stale snapshot); otherwise it goes
// idle, and if it was the last pending configuration the fixpoint is
// reached and all parked workers are released.
func (s *scheduler) done(id uint64) {
	sh := &s.shards[id&s.mask]
	sh.mu.Lock()
	if sh.state[id] == cfgRunningDirty && !s.stopped.Load() {
		sh.state[id] = cfgQueued
		sh.q.push(id)
		sh.mu.Unlock()
		hwMax(&s.depthHW, s.queued.Add(1))
		s.wake()
		return
	}
	sh.state[id] = cfgIdle
	sh.mu.Unlock()
	if s.pending.Add(-1) == 0 {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// liveDepth reports how many configurations are queued right now (for the
// live metrics gauge).
func (s *scheduler) liveDepth() int { return int(s.queued.Load()) }

// shardDepths samples every shard's queue size (one brief lock per shard)
// for the per-shard frontier breakdown in progress snapshots.
func (s *scheduler) shardDepths() []int {
	out := make([]int, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out[i] = sh.q.size()
		sh.mu.Unlock()
	}
	return out
}

// livePending reports how many configurations are queued or running.
func (s *scheduler) livePending() int { return int(s.pending.Load()) }

// highWater reports the queue-depth and pending-count high-water marks.
func (s *scheduler) highWater() (depth, pending int) {
	return int(s.depthHW.Load()), int(s.pendingHW.Load())
}

// stop aborts the run (step budget exhausted): workers drain immediately.
func (s *scheduler) stop() {
	s.stopped.Store(true)
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}
