package core

// Test-only exports: the arrival-order permutation suite lives in the
// external core_test package (building real matchers needs the client
// packages, which import core), so the pieces it drives — the revision
// recording hook and a bare revision-replay harness — are surfaced here.

// WithRevisionHook returns opts with the sequential engine's revision
// recording hook installed: fn observes a private clone of every
// canonicalized successor state delivered to the configuration table,
// keyed by shape.
func WithRevisionHook(opts Options, fn func(key string, st *State)) Options {
	opts.onRevision = fn
	return opts
}

// ReplayResult is the outcome of replaying one key's revision stream into
// a fresh table entry: the converged state's identity and the ladder
// counters the determinism invariant promises are arrival-order
// independent.
type ReplayResult struct {
	FullKey string
	// ResolvedKey is FullKey after the finish()-style helper resolution and
	// projection — the representation the engine actually promises is
	// arrival-order independent (raw FullKey may carry redundant bound
	// atoms naming the same value through different surviving helpers).
	ResolvedKey string
	Rev         int
	Widenings   int64
	Top         bool
	TopWhy      string
	// Terminal marks the configurations whose constraint block is part of
	// the determinism contract: ⊤ verdicts and all-at-exit states (what the
	// engine reports as finals). Intermediate configurations may carry
	// residual process-set aliasing constraints that record the particular
	// combine pairing order; those never surface in results, so only the
	// constraint-free portion of their key is order-invariant.
	Terminal bool
}

// ReplayRevisions feeds states into a fresh table entry exactly the way
// the engine does — the first creates the entry, the rest go through
// reviseEntry — and reports the converged entry. Input states are cloned,
// never consumed.
func ReplayRevisions(opts Options, key string, states []*State) ReplayResult {
	e := &engine{
		opts:    opts,
		in:      newInterner(),
		res:     &Result{},
		obsSeen: map[string]bool{},
	}
	e.shards = make([]tableShard, 1)
	e.shards[0].m = map[uint64]*tableEntry{}
	entry := &tableEntry{st: states[0].Clone()}
	for _, st := range states[1:] {
		e.reviseEntry(entry, st.Clone(), key, 0)
	}
	resolved := entry.st.Clone()
	resolved.ResolveHelpers()
	return ReplayResult{
		FullKey:     entry.st.FullKey(),
		ResolvedKey: resolved.FullKey(),
		Rev:         entry.rev,
		Widenings:   e.widenings.Load(),
		Top:         entry.st.Top,
		TopWhy:      entry.st.TopWhy,
		Terminal:    entry.st.Top || e.allAtExit(entry.st),
	}
}
