package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/cg"
	"repro/internal/procset"
	"repro/internal/sym"
	"repro/internal/tri"
)

// The non-blocking send extension (the paper's Section X): with
// Options.NonBlockingSends enabled, a process set executing a send does not
// block; the message is recorded as a *pending send* in the dataflow state
// and the set advances. Receivers later match against pending sends. A loop
// of sends aggregates into a single pending record whose destination range
// grows (the paper's "aggregated send expressions"), so patterns like
// send-everything-then-receive need no pipeline analysis at all.

// PendShape classifies how a pending send maps senders to destinations.
type PendShape int

// Pending-send shapes.
const (
	// PendShift: every sender s targets s + Offset; destinations are the
	// sender range shifted.
	PendShift PendShape = iota
	// PendFan: a single sender targets each process in Dests (accumulated
	// across loop iterations).
	PendFan
)

func (s PendShape) String() string {
	if s == PendShift {
		return "shift"
	}
	return "fan"
}

// PendingSend is an in-flight aggregated message set.
type PendingSend struct {
	Node    int // CFG node of the send
	Shape   PendShape
	Senders procset.Set
	// Offset is the destination offset for PendShift (frozen: it never
	// changes after issue).
	Offset sym.Expr
	// Dests is the destination range for PendFan.
	Dests procset.Set
	// Val is the frozen payload (valid when ValOK).
	Val   sym.Expr
	ValOK bool
}

// DestRange returns the destination process range.
func (p *PendingSend) DestRange() procset.Set {
	if p.Shape == PendFan {
		return p.Dests
	}
	return p.Senders.OffsetExpr(p.Offset)
}

func (p *PendingSend) String() string {
	switch p.Shape {
	case PendShift:
		return fmt.Sprintf("pend n%d %s+(%s)", p.Node, p.Senders, p.Offset)
	default:
		return fmt.Sprintf("pend n%d %s->%s", p.Node, p.Senders, p.Dests)
	}
}

// clonePendings deep-copies a pending list.
func clonePendings(ps []*PendingSend) []*PendingSend {
	out := make([]*PendingSend, len(ps))
	for i, p := range ps {
		cp := *p
		out[i] = &cp
	}
	return out
}

// freeze replaces per-set variables in an affine expression with frozen
// twins pinned to their current value, so the expression stays meaningful
// after the issuing set's state changes. Returns ok=false if a per-set
// variable cannot be frozen into var+c form.
func (st *State) freeze(e sym.Expr) (sym.Expr, bool) {
	out := e
	for _, v := range out.Vars() {
		if !strings.HasPrefix(v, "ps") || !strings.Contains(v, ".") {
			continue // global or already-frozen symbol
		}
		// Prefer a constant or global witness.
		replaced := false
		if c, ok := st.G.ConstVal(v); ok {
			out = sym.Subst(out, v, sym.Const(c))
			replaced = true
		} else {
			for _, w := range st.G.EqualWitnesses(v) {
				if w.Var == cg.ZeroVar {
					out = sym.Subst(out, v, sym.Const(w.C))
					replaced = true
					break
				}
				if !strings.HasPrefix(w.Var, "ps") {
					out = sym.Subst(out, v, sym.VarPlus(w.Var, w.C))
					replaced = true
					break
				}
			}
		}
		if !replaced {
			// Mint a frozen twin equal to the current value.
			fz := fmt.Sprintf("fz%d", st.nextFrozen)
			st.nextFrozen++
			st.G.AddEq(fz, v, 0)
			out = sym.Subst(out, v, sym.Var(fz))
		}
	}
	if _, _, ok := out.AsVarPlusConst(); !ok {
		if !out.IsAffine() {
			return sym.Zero, false
		}
	}
	return out, true
}

// IssueSend records a non-blocking send by set ps at node n, aggregating
// with an existing pending record when possible. Returns false when the
// destination expression is not supported (the caller falls back to the
// blocking treatment).
func (st *State) IssueSend(ps *ProcSet, n *cfg.Node) bool {
	st.dirtyKeys()
	d, ok := st.AffineExprID(ps, n.Dest)
	if !ok {
		return false
	}
	idCoef := d.Coeff(IDMarker)
	ofs := sym.Sub(d, sym.Scale(sym.Var(IDMarker), idCoef))
	frozenOfs, ok := st.freeze(ofs)
	if !ok {
		return false
	}
	if _, _, isVC := frozenOfs.AsVarPlusConst(); !isVC {
		return false
	}
	var val sym.Expr
	valOK := false
	if ve, ok := st.AffineExpr(ps, n.Value); ok {
		if fv, ok := st.freeze(ve); ok {
			if _, _, isVC := fv.AsVarPlusConst(); isVC {
				val, valOK = fv, true
			}
		}
	}
	ctx := st.Ctx()
	switch idCoef {
	case 1:
		st.ownPending()
		p := &PendingSend{
			Node:    n.ID,
			Shape:   PendShift,
			Senders: ps.Range,
			Offset:  frozenOfs,
			Val:     val,
			ValOK:   valOK,
		}
		// Aggregate with an existing shift record at the same node and
		// offset.
		for _, q := range st.Pending {
			if q.Node == p.Node && q.Shape == PendShift && sym.Equal(q.Offset, p.Offset) {
				if u, ok := q.Senders.UnionAdjacent(ctx, p.Senders); ok {
					q.Senders = u
					q.ValOK = q.ValOK && valOK && sym.Equal(q.Val, val)
					return true
				}
				if u, ok := p.Senders.UnionAdjacent(ctx, q.Senders); ok {
					q.Senders = u
					q.ValOK = q.ValOK && valOK && sym.Equal(q.Val, val)
					return true
				}
			}
		}
		st.Pending = append(st.Pending, p)
		return true
	case 0:
		// A fan requires a singleton sender so each (sender, dest) pair is
		// exact.
		if ps.Range.IsSingleton(ctx) != tri.True {
			return false
		}
		st.ownPending()
		dest := procset.Singleton(frozenOfs).Enrich(ctx)
		p := &PendingSend{
			Node:    n.ID,
			Shape:   PendFan,
			Senders: ps.Range,
			Dests:   dest,
			Val:     val,
			ValOK:   valOK,
		}
		for _, q := range st.Pending {
			if q.Node == p.Node && q.Shape == PendFan && q.Senders.SameRange(ctx, p.Senders) == tri.True {
				if u, ok := q.Dests.Enrich(ctx).UnionAdjacent(ctx, dest); ok {
					q.Dests = u
					q.ValOK = q.ValOK && valOK && sym.Equal(q.Val, val)
					return true
				}
				if u, ok := dest.UnionAdjacent(ctx, q.Dests.Enrich(ctx)); ok {
					q.Dests = u
					q.ValOK = q.ValOK && valOK && sym.Equal(q.Val, val)
					return true
				}
			}
		}
		st.Pending = append(st.Pending, p)
		return true
	}
	return false
}

// PendingMatch describes a receive satisfied from a pending send.
type PendingMatch struct {
	Pending     *PendingSend
	RecvMatched procset.Set
	RecvRests   []procset.Set
	// SendersMatched is the sub-range of the pending senders consumed.
	SendersMatched procset.Set
	// Remaining pending pieces that replace the consumed record.
	PendingRests []*PendingSend
}

// MatchPending attempts to satisfy receiver's blocked receive from pending
// send idx. src is the receiver's source expression.
func (st *State) MatchPending(receiver *ProcSet, src sym.Expr, idx int) (*PendingMatch, bool) {
	p := st.Pending[idx]
	ctx := st.Ctx()
	sID := src.Coeff(IDMarker)
	sOfs := sym.Sub(src, sym.Scale(sym.Var(IDMarker), sID))

	switch p.Shape {
	case PendShift:
		// Receiver must name sender = id + sOfs with sOfs = -Offset.
		if sID != 1 || !st.EntailsZero(sym.Add(sOfs, p.Offset)) {
			return nil, false
		}
		dests := p.DestRange()
		if !dests.IsValid() {
			return nil, false
		}
		inter, ok := procset.Intersect(ctx, dests, receiver.Range)
		if !ok || !inter.IsValid() || inter.Empty(ctx) != tri.False {
			return nil, false
		}
		sendersMatched := inter.OffsetExpr(sym.Neg(p.Offset))
		if !sendersMatched.IsValid() {
			return nil, false
		}
		recvRests, ok := procset.Subtract(ctx, receiver.Range, inter)
		if !ok {
			return nil, false
		}
		senderRests, ok := procset.Subtract(ctx, p.Senders, sendersMatched)
		if !ok {
			return nil, false
		}
		var pendRests []*PendingSend
		for _, r := range senderRests {
			if !r.IsValid() || r.Empty(ctx) == tri.True {
				continue
			}
			cp := *p
			cp.Senders = r
			pendRests = append(pendRests, &cp)
		}
		return &PendingMatch{
			Pending:        p,
			RecvMatched:    inter,
			RecvRests:      recvRests,
			SendersMatched: sendersMatched,
			PendingRests:   pendRests,
		}, true
	case PendFan:
		// Receiver must name the constant sender.
		if sID != 0 {
			return nil, false
		}
		senderExpr := p.Senders.LB.Primary()
		if !st.EntailsZero(sym.Sub(sOfs, senderExpr)) {
			return nil, false
		}
		inter, ok := procset.Intersect(ctx, p.Dests, receiver.Range)
		if !ok || !inter.IsValid() || inter.Empty(ctx) != tri.False {
			return nil, false
		}
		recvRests, ok := procset.Subtract(ctx, receiver.Range, inter)
		if !ok {
			return nil, false
		}
		destRests, ok := procset.Subtract(ctx, p.Dests, inter)
		if !ok {
			return nil, false
		}
		var pendRests []*PendingSend
		for _, r := range destRests {
			if !r.IsValid() || r.Empty(ctx) == tri.True {
				continue
			}
			cp := *p
			cp.Dests = r
			pendRests = append(pendRests, &cp)
		}
		return &PendingMatch{
			Pending:        p,
			RecvMatched:    inter,
			RecvRests:      recvRests,
			SendersMatched: p.Senders,
			PendingRests:   pendRests,
		}, true
	}
	return nil, false
}

// ReplacePending swaps pending record idx for its leftover pieces. The
// result is a fresh slice but keeps the surviving element pointers, so a
// sharedPending flag (if set) must stay set — ownPending still deep-copies
// the elements on the next element write.
func (st *State) ReplacePending(idx int, rests []*PendingSend) {
	st.dirtyKeys()
	out := make([]*PendingSend, 0, len(st.Pending)-1+len(rests))
	out = append(out, st.Pending[:idx]...)
	out = append(out, rests...)
	out = append(out, st.Pending[idx+1:]...)
	st.Pending = out
	st.sortPending()
}

// sortPending keeps pending records in a canonical order. A slice that is
// already in order (the common case after the first sort) is left alone; a
// reorder of a still-shared backing array first re-slices so clones reading
// the same array concurrently (parallel-engine snapshots) never observe the
// swap. Element pointers survive the re-slice, so sharedPending stays set.
func (st *State) sortPending() {
	less := func(a, b *PendingSend) bool {
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Shape != b.Shape {
			return a.Shape < b.Shape
		}
		return anonRangeKey(a.Senders) < anonRangeKey(b.Senders)
	}
	sorted := true
	for i := 1; i < len(st.Pending); i++ {
		if less(st.Pending[i], st.Pending[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	if st.sharedPending {
		st.Pending = append([]*PendingSend(nil), st.Pending...)
	}
	sort.SliceStable(st.Pending, func(i, j int) bool {
		return less(st.Pending[i], st.Pending[j])
	})
}

// dropEmptyPendings removes pending records with provably empty ranges. The
// filter allocates a fresh slice instead of compacting in place: the backing
// array may be shared copy-on-write with a clone (see State.Clone), and an
// in-place shift would corrupt the sharer's view. Element pointers survive,
// so the shared flag is left alone.
func (st *State) dropEmptyPendings() {
	ctx := st.Ctx()
	keep := func(p *PendingSend) bool {
		if !p.Senders.IsValid() || p.Senders.Empty(ctx) == tri.True {
			return false
		}
		if p.Shape == PendFan && (!p.Dests.IsValid() || p.Dests.Empty(ctx) == tri.True) {
			return false
		}
		return true
	}
	n := 0
	for _, p := range st.Pending {
		if keep(p) {
			n++
		}
	}
	if n == len(st.Pending) {
		return
	}
	st.dirtyKeys()
	out := make([]*PendingSend, 0, n)
	for _, p := range st.Pending {
		if keep(p) {
			out = append(out, p)
		}
	}
	st.Pending = out
}
