// External test package: building real matchers requires the client
// packages, which import core.
package core_test

import (
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
)

// recordStreams runs the sequential engine with the revision recording
// hook and returns every configuration key's arrival stream: the
// canonicalized states delivered to its table entry, in delivery order.
func recordStreams(t *testing.T, g *cfg.Graph) map[string][]*core.State {
	t.Helper()
	streams := map[string][]*core.State{}
	opts := core.WithRevisionHook(core.Options{}, func(key string, st *core.State) {
		streams[key] = append(streams[key], st)
	})
	opts.Matcher = cartesian.New(core.ScanInvariants(g))
	if _, err := core.Analyze(g, opts); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return streams
}

// TestRevisionOrderPermutations is the deterministic-widening invariant
// stated as a test, in two parts.
//
// Re-delivery churn: replaying the recorded stream with injected duplicate
// deliveries — the parallel engine's stale-re-step traffic — must leave
// everything byte-identical, including the revision-chain length and the
// widening counter. This is exactly the bug the state-derived counters
// remove: arrival events no longer advance the ladder, only state changes
// do.
//
// Random permutations: the order revisions arrive in changes which chain
// of intermediate states gets realized (delivering the widest state first
// legitimately shortens the chain), so the chain length is not an order
// invariant — but the converged verdict and the resolved converged state
// are, and no order may realize a longer chain than the recorded one (the
// old arrival-counting ladder violated precisely this, letting unlucky
// interleavings widen past MaxVisits into a spurious ⊤). For terminal
// configurations — the ones the engine reports — the whole resolved key
// must match; intermediate configurations may retain residual process-set
// aliasing constraints recording the combine pairing order, so only their
// constraint-free portion (ranges, blocked/approx flags, matches, pending)
// is asserted.
func TestRevisionOrderPermutations(t *testing.T) {
	const trials = 8
	rng := rand.New(rand.NewSource(0x5EED))
	for _, w := range bench.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, g := w.Parse()
			streams := recordStreams(t, g)
			var keys []string
			for key, sts := range streams {
				if len(sts) >= 2 {
					keys = append(keys, key)
				}
			}
			sort.Strings(keys)
			for _, key := range keys {
				states := streams[key]
				base := core.ReplayRevisions(core.Options{}, key, states)

				// Recorded order + duplicate deliveries: byte-identical,
				// counters included.
				for trial := 0; trial < trials/2; trial++ {
					dup := append([]*core.State{}, states...)
					for d := 0; d < 2; d++ {
						at := rng.Intn(len(dup)) + 1
						re := dup[rng.Intn(at)] // re-deliver an already-seen state
						dup = append(dup[:at:at], append([]*core.State{re}, dup[at:]...)...)
					}
					got := core.ReplayRevisions(core.Options{}, key, dup)
					if got != base {
						t.Fatalf("key %s: duplicate delivery perturbed the entry:\n got: %+v\nwant: %+v",
							key, got, base)
					}
				}

				// Random orders: verdict and resolved state identical, chain
				// no longer than the recorded order's.
				for trial := 0; trial < trials; trial++ {
					perm := rng.Perm(len(states))
					shuffled := make([]*core.State, len(states))
					for i, p := range perm {
						shuffled[i] = states[p]
					}
					got := core.ReplayRevisions(core.Options{}, key, shuffled)
					if got.Top != base.Top || got.TopWhy != base.TopWhy {
						t.Fatalf("key %s perm %v flipped the verdict:\n got: %+v\nwant: %+v",
							key, perm, got, base)
					}
					gotKey, wantKey := got.ResolvedKey, base.ResolvedKey
					if !base.Terminal {
						gotKey, wantKey = stripConstraints(gotKey), stripConstraints(wantKey)
					}
					if gotKey != wantKey {
						t.Fatalf("key %s perm %v resolved state diverged:\n got: %s\nwant: %s",
							key, perm, gotKey, wantKey)
					}
					if got.Rev > base.Rev {
						t.Fatalf("key %s perm %v realized a longer chain: rev %d > %d",
							key, perm, got.Rev, base.Rev)
					}
				}
			}
		})
	}
}

// stripConstraints removes the `#...#` constraint-graph block from a full
// key, leaving the ranges, flags, match records and pending sends.
func stripConstraints(key string) string {
	i := strings.Index(key, "#")
	j := strings.LastIndex(key, "#")
	if i < 0 || j <= i {
		return key
	}
	return key[:i] + key[j+1:]
}

// stressIters reads the PSDF_STRESS_ITERS override so CI can bound the
// arrival-order stress budget (and an acceptance run can raise it).
func stressIters(t *testing.T, def int) int {
	if s := os.Getenv("PSDF_STRESS_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad PSDF_STRESS_ITERS %q", s)
		}
		return n
	}
	return def
}

// TestParallelArrivalOrderStress repeatedly runs the parallel engine at
// workers 2/4/8 with a deliberately tiny shard count (maximum lock
// contention and batching pressure) and requires byte-identical signatures
// against the sequential engine on every iteration. The default budget
// keeps `go test` fast; CI and the acceptance stress loop raise it via
// PSDF_STRESS_ITERS.
func TestParallelArrivalOrderStress(t *testing.T) {
	iters := stressIters(t, 3)
	ws := bench.All()
	for iter := 0; iter < iters; iter++ {
		for _, w := range ws {
			_, g := w.Parse()
			want := signature(analyzeWith(t, g, core.Options{}))
			for _, workers := range []int{2, 4, 8} {
				_, g := w.Parse()
				got := signature(analyzeWith(t, g, core.Options{Workers: workers, Shards: 2}))
				if got != want {
					t.Fatalf("%s iter=%d workers=%d diverged:\n got: %s\nwant: %s",
						w.Name, iter, workers, got, want)
				}
			}
		}
	}
}
