package core

import (
	"repro/internal/ast"
	"repro/internal/procset"
)

// MatchPlan describes the outcome of a successful send-receive match
// attempt: the matched sender and receiver sub-ranges and the leftover
// pieces that must remain blocked (the paper's split/release bookkeeping
// returned by matchSendsRecvs).
type MatchPlan struct {
	// SenderMatched is the sub-range of the sender set whose sends matched.
	SenderMatched procset.Set
	// SenderRests are the leftover sender pieces (possibly empty ranges,
	// filtered by the engine).
	SenderRests []procset.Set
	// RecvMatched is the receiver sub-range that matched.
	RecvMatched procset.Set
	// RecvRests are the leftover receiver pieces.
	RecvRests []procset.Set
}

// Matcher is the client-analysis interface of the framework (the underlined
// operations of Fig 4): it decides whether the communication expressions of
// two blocked process sets match, i.e. whether the send expression
// surjectively maps a sender subset onto a receiver subset with
// (recv ∘ send) the identity on the senders.
//
// Implementations: clients/symbolic (Section VII, var+c expressions) and
// clients/cartesian (Section VIII, HSM expressions over grids).
type Matcher interface {
	// Name identifies the client analysis.
	Name() string
	// Match attempts to match the send facet of sender against the receive
	// facet of receiver. dest is sender's partner expression, src is
	// receiver's. Returns a plan on success.
	Match(st *State, sender *ProcSet, dest ast.Expr, receiver *ProcSet, src ast.Expr) (*MatchPlan, bool)
	// SelfMatch proves a whole-set permutation exchange: dest maps ps onto
	// itself bijectively and src inverts it (used for sendrecv and for
	// send-then-recv exchanges such as the NAS-CG transpose).
	SelfMatch(st *State, ps *ProcSet, dest, src ast.Expr) bool
}
