package core

import (
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/procset"
)

// MatchPlan describes the outcome of a successful send-receive match
// attempt: the matched sender and receiver sub-ranges and the leftover
// pieces that must remain blocked (the paper's split/release bookkeeping
// returned by matchSendsRecvs).
type MatchPlan struct {
	// SenderMatched is the sub-range of the sender set whose sends matched.
	SenderMatched procset.Set
	// SenderRests are the leftover sender pieces (possibly empty ranges,
	// filtered by the engine).
	SenderRests []procset.Set
	// RecvMatched is the receiver sub-range that matched.
	RecvMatched procset.Set
	// RecvRests are the leftover receiver pieces.
	RecvRests []procset.Set
}

// Matcher is the client-analysis interface of the framework (the underlined
// operations of Fig 4): it decides whether the communication expressions of
// two blocked process sets match, i.e. whether the send expression
// surjectively maps a sender subset onto a receiver subset with
// (recv ∘ send) the identity on the senders.
//
// Implementations: clients/symbolic (Section VII, var+c expressions) and
// clients/cartesian (Section VIII, HSM expressions over grids).
//
// When an analysis runs with Options.Workers > 1, Match/SelfMatch are
// called concurrently from the worker goroutines, so implementations must
// be safe for concurrent use (the bundled clients are: counters are
// atomic, the match memo locks internally, and the cartesian client
// serializes its HSM prover).
type Matcher interface {
	// Name identifies the client analysis.
	Name() string
	// Match attempts to match the send facet of sender against the receive
	// facet of receiver. dest is sender's partner expression, src is
	// receiver's. Returns a plan on success.
	Match(st *State, sender *ProcSet, dest ast.Expr, receiver *ProcSet, src ast.Expr) (*MatchPlan, bool)
	// SelfMatch proves a whole-set permutation exchange: dest maps ps onto
	// itself bijectively and src inverts it (used for sendrecv and for
	// send-then-recv exchanges such as the NAS-CG transpose).
	SelfMatch(st *State, ps *ProcSet, dest, src ast.Expr) bool
}

// MatchMemo caches send-receive matching decisions. Repeated loop
// iterations and symmetric process-set splits pose the same matching query
// over and over; a client whose decision procedure is a pure function of a
// canonicalized query rendering (e.g. the cartesian client's HSM proofs,
// which depend only on the identity HSMs, the communication expressions and
// the program's global invariants) can answer from the memo instead of
// re-running the search. Only the boolean decision is cached — plans embed
// the querying state's concrete ranges and are rebuilt by the caller.
//
// The zero value is ready to use. Safe for concurrent use: the parallel
// worklist engine (Options.Workers > 1) issues match queries from several
// goroutines against one matcher, so the memo serializes its map accesses
// behind a mutex. The critical section is a map probe — the decision
// procedure itself runs outside it.
type MatchMemo struct {
	// Disable turns the memo off: Lookup always misses (without counting)
	// and Store drops the decision, so every query re-runs the decision
	// procedure. Decisions are unchanged — the memo is transparent — but
	// the hit/miss counters stay at zero. Set before the analysis starts;
	// used by the bench-history precision fixtures to emulate a broken
	// cache path.
	Disable bool

	mu      sync.Mutex
	hits    int
	misses  int
	entries map[string]bool
}

// Lookup returns the cached decision for key and whether one exists,
// maintaining the hit/miss counters.
func (m *MatchMemo) Lookup(key string) (res, ok bool) {
	if m.Disable {
		return false, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	res, ok = m.entries[key]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return res, ok
}

// Store records a decision for key.
func (m *MatchMemo) Store(key string, res bool) {
	if m.Disable {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil {
		m.entries = map[string]bool{}
	}
	m.entries[key] = res
}

// Len reports the number of cached decisions.
func (m *MatchMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// HitCount reports queries answered from the memo.
func (m *MatchMemo) HitCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits
}

// MissCount reports queries that ran the underlying decision procedure.
func (m *MatchMemo) MissCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.misses
}

// HitRate reports the fraction of queries served from the memo.
func (m *MatchMemo) HitRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hits+m.misses == 0 {
		return 0
	}
	return float64(m.hits) / float64(m.hits+m.misses)
}

// MatchKey joins canonical query components into a memo key using a
// separator that cannot occur in expression renderings.
func MatchKey(parts ...string) string { return strings.Join(parts, "\x1f") }
