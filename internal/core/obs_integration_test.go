package core_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestTracingDoesNotPerturb is the observability overhead contract: with a
// retaining tracer and a metrics registry attached, the sequential and
// parallel engines must produce byte-identical results to the untraced
// baseline on every paper workload. Tracing only observes.
func TestTracingDoesNotPerturb(t *testing.T) {
	for _, w := range bench.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, g := w.Parse()
			want := signature(analyzeWith(t, g, core.Options{}))
			for _, workers := range []int{1, 4} {
				tr := obs.NewTracer()
				reg := obs.NewRegistry()
				_, g := w.Parse()
				m := cartesian.New(core.ScanInvariants(g))
				m.SetObs(tr, 1)
				res, err := core.Analyze(g, core.Options{
					Matcher:  m,
					Workers:  workers,
					Tracer:   tr,
					Metrics:  reg,
					TracePID: 1,
					CGOpts:   cg.Options{Stats: &cg.Stats{}},
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := signature(res); got != want {
					t.Errorf("workers=%d traced run diverged:\n got: %s\nwant: %s", workers, got, want)
				}
				if tr.EventCount() == 0 {
					t.Errorf("workers=%d: tracer retained no events", workers)
				}
				evs := tr.Events()
				if probs := obs.Check(evs, 0); len(probs) != 0 {
					t.Errorf("workers=%d: malformed trace: %v", workers, probs)
				}
				totals := tr.Totals()
				if totals[obs.PhaseStep.String()].Count == 0 {
					t.Errorf("workers=%d: no step spans recorded", workers)
				}
				if totals[obs.PhaseFinish.String()].Count != 1 {
					t.Errorf("workers=%d: finish spans = %d, want 1", workers, totals[obs.PhaseFinish.String()].Count)
				}
			}
		})
	}
}

// TestMetricsPublished checks the engine's post-run metrics snapshot: the
// registry renders the step counter, config gauge, scheduler high-water
// marks and the cg instrumentation series.
func TestMetricsPublished(t *testing.T) {
	_, g := bench.Stencil1D().Parse()
	reg := obs.NewRegistry()
	res := analyzeWith(t, g, core.Options{
		Workers: 4, Metrics: reg, TracePID: 7,
		CGOpts: cg.Options{Stats: &cg.Stats{}},
	})
	if !res.Clean() {
		t.Fatalf("not clean: %v", res.TopReasons())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`psdf_engine_steps_total{job="7"}`,
		`psdf_engine_configs{job="7"}`,
		`psdf_interned_keys{job="7"}`,
		`psdf_sched_queue_depth_max{job="7"}`,
		`psdf_sched_pending_max{job="7"}`,
		`psdf_sched_queue_depth{job="7"}`,
		`psdf_table_shard_entries{job="7",shard="0"}`,
		`psdf_cg_joins_total{job="7"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
	// The sequential engine publishes its own queue high-water mark.
	reg2 := obs.NewRegistry()
	_, g2 := bench.Stencil1D().Parse()
	analyzeWith(t, g2, core.Options{Metrics: reg2, TracePID: 1})
	var sb2 strings.Builder
	_ = reg2.WritePrometheus(&sb2)
	if !strings.Contains(sb2.String(), `psdf_sched_queue_depth_max{job="1"}`) {
		t.Error("sequential run missing queue depth high-water metric")
	}
}

// TestAnalyzeAllPhaseBreakdown checks the pool driver's per-job results:
// wall time from the analyze span, a per-job phase breakdown even without a
// caller-supplied tracer, and pid assignment by input position.
func TestAnalyzeAllPhaseBreakdown(t *testing.T) {
	ws := []*bench.Workload{bench.Fig2Exchange(), bench.Fig7Shift()}
	jobs := make([]core.Job, len(ws))
	for i, w := range ws {
		_, g := w.Parse()
		jobs[i] = core.Job{Name: w.Name, G: g, Opts: core.Options{
			Matcher: cartesian.New(core.ScanInvariants(g)),
		}}
	}
	for _, parallelism := range []int{1, 2} {
		for i, jr := range core.AnalyzeAll(jobs, parallelism) {
			if jr.Err != nil {
				t.Fatalf("parallelism=%d %s: %v", parallelism, jr.Name, jr.Err)
			}
			if jr.Wall <= 0 {
				t.Errorf("parallelism=%d %s: Wall = %v", parallelism, jr.Name, jr.Wall)
			}
			an := jr.Phases[obs.PhaseAnalyze.String()]
			if an.Count != 1 || an.Total <= 0 {
				t.Errorf("parallelism=%d %s: analyze phase = %+v", parallelism, jr.Name, an)
			}
			if jr.Phases[obs.PhaseStep.String()].Count == 0 {
				t.Errorf("parallelism=%d %s: no step phase in breakdown", parallelism, jr.Name)
			}
			_ = i
		}
	}
	// A shared retaining tracer distinguishes jobs by pid.
	tr := obs.NewTracer()
	for i := range jobs {
		_, g := ws[i].Parse()
		jobs[i].G = g
		jobs[i].Opts.Matcher = cartesian.New(core.ScanInvariants(g))
		jobs[i].Opts.Tracer = tr
	}
	for _, jr := range core.AnalyzeAll(jobs, 2) {
		if jr.Err != nil {
			t.Fatal(jr.Err)
		}
	}
	pids := map[int]bool{}
	for _, ev := range tr.Events() {
		pids[ev.Pid] = true
	}
	if !pids[1] || !pids[2] {
		t.Errorf("shared tracer pids = %v, want jobs 1 and 2", pids)
	}
}
