package sim

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/parser"
)

func run(t *testing.T, src string, np int, opts Options) *Result {
	t.Helper()
	prog, err := parser.Parse("t.mpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(cfg.Build(prog), np, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestSequential(t *testing.T) {
	res := run(t, "x := 2\ny := x * 3 + 1\nprint y", 3, Options{})
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if len(res.Prints) != 3 {
		t.Fatalf("prints = %v", res.Prints)
	}
	for _, p := range res.Prints {
		if p.Value != 7 {
			t.Errorf("proc %d printed %d, want 7", p.Proc, p.Value)
		}
	}
}

func TestExchange(t *testing.T) {
	res := run(t, `
if id == 0 then
  x := 5
  send x -> 1
  recv y <- 1
  print y
elif id == 1 then
  recv y <- 0
  send y -> 0
  print y
end`, 4, Options{})
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if len(res.Events) != 2 {
		t.Fatalf("events = %v", res.Events)
	}
	if len(res.Prints) != 2 {
		t.Fatalf("prints = %v", res.Prints)
	}
	for _, p := range res.Prints {
		if p.Value != 5 {
			t.Errorf("proc %d printed %d, want 5", p.Proc, p.Value)
		}
	}
}

func TestExchangeWithRoot(t *testing.T) {
	res := run(t, `
if id == 0 then
  for i := 1 to np - 1 do
    send x -> i
    recv y <- i
  end
else
  recv y <- 0
  send y -> 0
end`, 6, Options{})
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	// 2*(np-1) messages.
	if len(res.Events) != 10 {
		t.Fatalf("events = %d, want 10", len(res.Events))
	}
	// Every worker both received from and sent to the root.
	recvFrom0 := map[int]bool{}
	sentTo0 := map[int]bool{}
	for _, e := range res.Events {
		if e.Sender == 0 {
			recvFrom0[e.Receiver] = true
		}
		if e.Receiver == 0 {
			sentTo0[e.Sender] = true
		}
	}
	for w := 1; w < 6; w++ {
		if !recvFrom0[w] || !sentTo0[w] {
			t.Errorf("worker %d missing exchange: recv=%v sent=%v", w, recvFrom0[w], sentTo0[w])
		}
	}
}

func TestShiftPipeline(t *testing.T) {
	for _, mode := range []bool{false, true} {
		res := run(t, `
if id == 0 then
  send x -> id + 1
elif id <= np - 2 then
  recv y <- id - 1
  send x -> id + 1
else
  recv y <- id - 1
end`, 5, Options{Rendezvous: mode})
		if res.Deadlocked {
			t.Fatalf("deadlocked (rendezvous=%v)", mode)
		}
		if len(res.Events) != 4 {
			t.Fatalf("events = %d, want 4 (rendezvous=%v)", len(res.Events), mode)
		}
		for _, e := range res.Events {
			if e.Receiver != e.Sender+1 {
				t.Errorf("shift event %v", e)
			}
		}
	}
}

func TestTransposeBufferedOnly(t *testing.T) {
	src := `
assume np == nrows * nrows
send x -> (id % nrows) * nrows + id / nrows
recv y <- (id % nrows) * nrows + id / nrows`
	env := map[string]int64{"nrows": 3}
	// Buffered (the paper's model): completes.
	res := run(t, src, 9, Options{Env: env})
	if res.Deadlocked {
		t.Fatal("buffered transpose deadlocked")
	}
	if len(res.Events) != 9 {
		t.Fatalf("events = %d, want 9", len(res.Events))
	}
	for _, e := range res.Events {
		wantRecv := (e.Sender%3)*3 + e.Sender/3
		if e.Receiver != wantRecv {
			t.Errorf("event %v: receiver want %d", e, wantRecv)
		}
	}
	// Rendezvous: everyone blocks on send (except self-sends) — deadlock.
	res = run(t, src, 9, Options{Env: env, Rendezvous: true})
	if !res.Deadlocked {
		t.Fatal("rendezvous transpose should deadlock")
	}
}

func TestSendRecvStatement(t *testing.T) {
	res := run(t, `
assume np == nrows * nrows
sendrecv id -> (id % nrows) * nrows + id / nrows, y <- (id % nrows) * nrows + id / nrows
print y`, 4, Options{Env: map[string]int64{"nrows": 2}})
	if res.Deadlocked {
		t.Fatal("sendrecv transpose deadlocked")
	}
	for _, p := range res.Prints {
		want := (p.Proc%2)*2 + p.Proc/2
		if p.Value != int64(want) {
			t.Errorf("proc %d got %d, want transpose %d", p.Proc, p.Value, want)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	res := run(t, `
if id == 0 then
  recv y <- 1
end`, 2, Options{})
	if !res.Deadlocked {
		t.Fatal("deadlock not detected")
	}
	if len(res.Blocked) != 1 || res.Blocked[0] != 0 {
		t.Errorf("blocked = %v", res.Blocked)
	}
}

// TestMultiRankStuckRecv: every non-root rank waits on a message that
// never comes; Blocked must list them all (the differ's skip-triage reads
// this to tell a stuck oracle from a clean one).
func TestMultiRankStuckRecv(t *testing.T) {
	res := run(t, `
if id >= 1 then
  recv y <- 0
end`, 4, Options{})
	if !res.Deadlocked {
		t.Fatal("deadlock not detected")
	}
	if len(res.Blocked) != 3 {
		t.Fatalf("blocked = %v, want ranks 1..3", res.Blocked)
	}
	for i, r := range res.Blocked {
		if r != i+1 {
			t.Errorf("blocked[%d] = %d, want %d", i, r, i+1)
		}
	}
}

// TestRendezvousSendBlocks: under the rendezvous model an unmatched send
// is itself a stuck state — the same program that merely leaks under
// buffered sends deadlocks, with the sender in Blocked and the message
// reported leaked.
func TestRendezvousSendBlocks(t *testing.T) {
	src := `
if id == 0 then
  send x -> 1
end`
	res := run(t, src, 2, Options{})
	if res.Deadlocked {
		t.Fatal("buffered variant must not deadlock")
	}
	res = run(t, src, 2, Options{Rendezvous: true})
	if !res.Deadlocked {
		t.Fatal("rendezvous send did not block")
	}
	if len(res.Blocked) != 1 || res.Blocked[0] != 0 {
		t.Errorf("blocked = %v, want [0]", res.Blocked)
	}
	if len(res.Leaked) != 1 {
		t.Errorf("leaked = %v, want the undelivered message", res.Leaked)
	}
}

// TestSendRecvStuckCycle: a sendrecv whose receive half can never be
// satisfied blocks even though its send half was delivered — partial
// progress is recorded, the rest is a deadlock.
func TestSendRecvStuckCycle(t *testing.T) {
	res := run(t, `
if id == 0 then
  sendrecv 1 -> 1, y <- 1
elif id == 1 then
  recv a <- 0
end`, 2, Options{})
	if !res.Deadlocked {
		t.Fatal("unmatched sendrecv receive half did not deadlock")
	}
	if len(res.Events) != 1 {
		t.Errorf("events = %v, want the delivered send half", res.Events)
	}
	if len(res.Blocked) != 1 || res.Blocked[0] != 0 {
		t.Errorf("blocked = %v, want [0]", res.Blocked)
	}
}

func TestMessageLeak(t *testing.T) {
	res := run(t, `
if id == 0 then
  send x -> 1
end`, 2, Options{})
	if res.Deadlocked {
		t.Fatal("leak should not deadlock with buffered sends")
	}
	if len(res.Leaked) != 1 || res.Leaked[0].Sender != 0 || res.Leaked[0].Receiver != 1 {
		t.Errorf("leaked = %v", res.Leaked)
	}
}

func TestAssertFailure(t *testing.T) {
	res := run(t, "assert np == 3", 2, Options{})
	if len(res.Failures) != 2 {
		t.Errorf("failures = %v, want one per process", res.Failures)
	}
}

func TestFIFOOrder(t *testing.T) {
	res := run(t, `
if id == 0 then
  a := 10
  send a -> 1
  b := 20
  send b -> 1
elif id == 1 then
  recv x <- 0
  recv y <- 0
  print x
  print y
end`, 2, Options{})
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if len(res.Prints) != 2 || res.Prints[0].Value != 10 || res.Prints[1].Value != 20 {
		t.Errorf("FIFO violated: %v", res.Prints)
	}
}

func TestRuntimeErrors(t *testing.T) {
	prog, _ := parser.Parse("t.mpl", "x := 1 / 0")
	if _, err := Run(cfg.Build(prog), 1, Options{}); err == nil {
		t.Error("division by zero not reported")
	}
	prog, _ = parser.Parse("t.mpl", "send x -> np + 5")
	if _, err := Run(cfg.Build(prog), 2, Options{}); err == nil {
		t.Error("invalid rank not reported")
	}
	prog, _ = parser.Parse("t.mpl", "while true do skip end")
	if _, err := Run(cfg.Build(prog), 1, Options{MaxSteps: 100}); err == nil {
		t.Error("step budget not enforced")
	}
	if _, err := Run(cfg.Build(prog), 0, Options{}); err == nil {
		t.Error("np=0 not rejected")
	}
}

func TestInterleavingObliviousness(t *testing.T) {
	// The same program must produce identical match sets under buffered
	// and rendezvous scheduling (when neither deadlocks) — the paper's
	// interleaving-obliviousness property.
	src := `
if id == 0 then
  for i := 1 to np - 1 do
    send x -> i
    recv y <- i
  end
else
  recv y <- 0
  send y -> 0
end`
	a := run(t, src, 5, Options{})
	b := run(t, src, 5, Options{Rendezvous: true})
	if a.Deadlocked || b.Deadlocked {
		t.Fatal("deadlock")
	}
	key := func(evs []Event) map[Event]bool {
		m := map[Event]bool{}
		for _, e := range evs {
			m[e] = true
		}
		return m
	}
	ka, kb := key(a.Events), key(b.Events)
	if len(ka) != len(kb) {
		t.Fatalf("event sets differ: %d vs %d", len(ka), len(kb))
	}
	for e := range ka {
		if !kb[e] {
			t.Errorf("event %v missing under rendezvous", e)
		}
	}
}
