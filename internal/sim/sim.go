// Package sim is a concrete, deterministic interpreter for MPL programs
// with a fixed process count: the runtime counterpart of the execution
// model in Section III (non-blocking sends, deterministic receives, FIFO
// delivery per channel). It records every send-receive match that actually
// happens, so analysis results can be validated against ground truth, and
// serves as the substrate of the model-checking baseline
// (internal/modelcheck).
//
// Because the model is interleaving-oblivious (the paper's appendix), a
// deterministic round-robin schedule observes the same matches as any other
// schedule, so a single run per np suffices.
package sim

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/sem"
)

// Event records one delivered message: the CFG nodes of the send and the
// receive and the concrete ranks involved.
type Event struct {
	SendNode int
	RecvNode int
	Sender   int
	Receiver int
}

// PrintRec records one executed print statement.
type PrintRec struct {
	Proc  int
	Node  int
	Value int64
}

// AssertFailure records a failed assert (or assume) at runtime.
type AssertFailure struct {
	Proc int
	Node int
	Cond string
}

// Result is the outcome of a simulation.
type Result struct {
	NP         int
	Events     []Event
	Prints     []PrintRec
	Failures   []AssertFailure
	Deadlocked bool
	// Blocked lists the ranks stuck at a receive when deadlocked.
	Blocked []int
	// Leaked lists messages sent but never received (message leaks): one
	// entry per undelivered message, identified by sender and send node.
	Leaked []Event
	Steps  int
}

// Options tunes the simulation.
type Options struct {
	// Env provides values for free symbols referenced by the program (e.g.
	// nrows). np and id are always set by the simulator.
	Env map[string]int64
	// Rendezvous makes sends block until their message is received (the
	// analysis-side simplification of Section III). Default is the paper's
	// execution model: non-blocking sends with FIFO channels.
	Rendezvous bool
	// MaxSteps bounds total executed statements (default 1 << 20).
	MaxSteps int
}

type message struct {
	val      int64
	sendNode int
	consumed bool
}

type procState int

const (
	running procState = iota
	blockedRecv
	blockedSend
	done
)

// proc is one simulated process.
type proc struct {
	id      int
	pc      *cfg.Node
	env     map[string]int64
	state   procState
	wantSrc int       // blockedRecv: expected sender
	wantVar string    // blockedRecv: target variable
	recvTag int       // blockedRecv: node id
	sendMsg *message  // blockedSend (rendezvous only): awaiting consumption
	blockAt *cfg.Node // node to resume past once unblocked
}

// channel identifies a directed process pair.
type channel struct{ from, to int }

type machine struct {
	g     *cfg.Graph
	np    int
	procs []*proc
	chans map[channel][]*message
	res   *Result
	opts  Options
}

// Run executes the program on np processes and returns the recorded
// behavior. It returns an error only for malformed programs (e.g. division
// by zero or invalid ranks); deadlocks and assertion failures are reported
// in the Result.
func Run(g *cfg.Graph, np int, opts Options) (*Result, error) {
	if np < 1 {
		return nil, fmt.Errorf("sim: np must be >= 1, got %d", np)
	}
	m := &machine{
		g:     g,
		np:    np,
		chans: map[channel][]*message{},
		res:   &Result{NP: np},
		opts:  opts,
	}
	for i := 0; i < np; i++ {
		env := map[string]int64{sem.NPVar: int64(np), sem.IDVar: int64(i)}
		for k, v := range opts.Env {
			env[k] = v
		}
		m.procs = append(m.procs, &proc{id: i, pc: g.Entry, env: env})
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}

	for {
		progress := false
		allDone := true
		for _, p := range m.procs {
			switch p.state {
			case done:
				continue
			case running:
				allDone = false
				if m.res.Steps >= maxSteps {
					return nil, fmt.Errorf("sim: step budget (%d) exhausted", maxSteps)
				}
				if err := m.stepProc(p); err != nil {
					return nil, err
				}
				m.res.Steps++
				progress = true
			case blockedRecv:
				allDone = false
				if m.tryReceive(p) {
					progress = true
				}
			case blockedSend:
				allDone = false
				if p.sendMsg.consumed {
					p.sendMsg = nil
					m.resume(p)
					progress = true
				}
			}
		}
		if allDone {
			m.collectLeaks()
			return m.res, nil
		}
		if !progress {
			m.res.Deadlocked = true
			for _, p := range m.procs {
				if p.state == blockedRecv || p.state == blockedSend {
					m.res.Blocked = append(m.res.Blocked, p.id)
				}
			}
			m.collectLeaks()
			return m.res, nil
		}
	}
}

// collectLeaks records messages that were sent but never received.
func (m *machine) collectLeaks() {
	for ch, q := range m.chans {
		for _, msg := range q {
			if !msg.consumed {
				m.res.Leaked = append(m.res.Leaked, Event{
					SendNode: msg.sendNode,
					Sender:   ch.from,
					Receiver: ch.to,
					RecvNode: -1,
				})
			}
		}
	}
}

// resume advances a process past the node it blocked at.
func (m *machine) resume(p *proc) {
	p.state = running
	next := p.blockAt.SuccSeq()
	p.blockAt = nil
	p.pc = next
	if next == nil || next.Kind == cfg.Exit {
		p.state = done
	}
}

// tryReceive attempts to satisfy a blocked receive from the FIFO channel.
func (m *machine) tryReceive(p *proc) bool {
	ch := channel{from: p.wantSrc, to: p.id}
	q := m.chans[ch]
	for _, msg := range q {
		if msg.consumed {
			continue
		}
		msg.consumed = true
		p.env[p.wantVar] = msg.val
		m.res.Events = append(m.res.Events, Event{
			SendNode: msg.sendNode,
			RecvNode: p.recvTag,
			Sender:   p.wantSrc,
			Receiver: p.id,
		})
		m.resume(p)
		return true
	}
	return false
}

// send enqueues a message; in rendezvous mode the caller blocks on it.
func (m *machine) send(p *proc, destE, valE ast.Expr, node *cfg.Node) (*message, error) {
	dest, err := evalInt(destE, p.env)
	if err != nil {
		return nil, fmt.Errorf("sim: proc %d at n%d: %w", p.id, node.ID, err)
	}
	if dest < 0 || dest >= int64(m.np) {
		return nil, fmt.Errorf("sim: proc %d sends to invalid rank %d at n%d", p.id, dest, node.ID)
	}
	val, err := evalInt(valE, p.env)
	if err != nil {
		return nil, fmt.Errorf("sim: proc %d at n%d: %w", p.id, node.ID, err)
	}
	msg := &message{val: val, sendNode: node.ID}
	ch := channel{from: p.id, to: int(dest)}
	m.chans[ch] = append(m.chans[ch], msg)
	return msg, nil
}

// stepProc executes one CFG node of a running process.
func (m *machine) stepProc(p *proc) error {
	n := p.pc
	advanceTo := func(next *cfg.Node) {
		p.pc = next
		if next == nil || next.Kind == cfg.Exit {
			p.state = done
		}
	}
	switch n.Kind {
	case cfg.Entry, cfg.Skip:
		advanceTo(n.SuccSeq())
	case cfg.Exit:
		p.state = done
	case cfg.Assign:
		v, err := evalInt(n.AssignRhs, p.env)
		if err != nil {
			return fmt.Errorf("sim: proc %d at n%d: %w", p.id, n.ID, err)
		}
		p.env[n.AssignName] = v
		advanceTo(n.SuccSeq())
	case cfg.Print:
		v, err := evalInt(n.Arg, p.env)
		if err != nil {
			return fmt.Errorf("sim: proc %d at n%d: %w", p.id, n.ID, err)
		}
		m.res.Prints = append(m.res.Prints, PrintRec{Proc: p.id, Node: n.ID, Value: v})
		advanceTo(n.SuccSeq())
	case cfg.Assume, cfg.Assert:
		ok, err := evalBool(n.Cond, p.env)
		if err != nil {
			return fmt.Errorf("sim: proc %d at n%d: %w", p.id, n.ID, err)
		}
		if !ok {
			m.res.Failures = append(m.res.Failures, AssertFailure{Proc: p.id, Node: n.ID, Cond: n.Cond.String()})
		}
		advanceTo(n.SuccSeq())
	case cfg.Branch:
		ok, err := evalBool(n.Cond, p.env)
		if err != nil {
			return fmt.Errorf("sim: proc %d at n%d: %w", p.id, n.ID, err)
		}
		tN, fN := n.SuccBranch()
		if ok {
			advanceTo(tN)
		} else {
			advanceTo(fN)
		}
	case cfg.Send:
		msg, err := m.send(p, n.Dest, n.Value, n)
		if err != nil {
			return err
		}
		if m.opts.Rendezvous {
			p.state = blockedSend
			p.sendMsg = msg
			p.blockAt = n
		} else {
			advanceTo(n.SuccSeq())
		}
	case cfg.Recv:
		src, err := evalInt(n.Src, p.env)
		if err != nil {
			return fmt.Errorf("sim: proc %d at n%d: %w", p.id, n.ID, err)
		}
		if src < 0 || src >= int64(m.np) {
			return fmt.Errorf("sim: proc %d receives from invalid rank %d at n%d", p.id, src, n.ID)
		}
		p.state = blockedRecv
		p.wantSrc = int(src)
		p.wantVar = n.RecvName
		p.recvTag = n.ID
		p.blockAt = n
		m.tryReceive(p)
	case cfg.SendRecv:
		if _, err := m.send(p, n.Dest, n.Value, n); err != nil {
			return err
		}
		src, err := evalInt(n.Src, p.env)
		if err != nil {
			return fmt.Errorf("sim: proc %d at n%d: %w", p.id, n.ID, err)
		}
		if src < 0 || src >= int64(m.np) {
			return fmt.Errorf("sim: proc %d receives from invalid rank %d at n%d", p.id, src, n.ID)
		}
		p.state = blockedRecv
		p.wantSrc = int(src)
		p.wantVar = n.RecvName
		p.recvTag = n.ID
		p.blockAt = n
		m.tryReceive(p)
	default:
		return fmt.Errorf("sim: unhandled node kind %v", n.Kind)
	}
	return nil
}

// evalInt evaluates an integer expression.
func evalInt(e ast.Expr, env map[string]int64) (int64, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, nil
	case *ast.Ident:
		return env[x.Name], nil
	case *ast.Unary:
		if x.Op != ast.Neg {
			return 0, fmt.Errorf("boolean operator in integer context")
		}
		v, err := evalInt(x.X, env)
		return -v, err
	case *ast.Binary:
		l, err := evalInt(x.L, env)
		if err != nil {
			return 0, err
		}
		r, err := evalInt(x.R, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case ast.Add:
			return l + r, nil
		case ast.Sub:
			return l - r, nil
		case ast.Mul:
			return l * r, nil
		case ast.Div:
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return l / r, nil
		case ast.Mod:
			if r == 0 {
				return 0, fmt.Errorf("modulus by zero")
			}
			return l % r, nil
		}
		return 0, fmt.Errorf("boolean operator %v in integer context", x.Op)
	}
	return 0, fmt.Errorf("unsupported expression %T", e)
}

// evalBool evaluates a boolean expression.
func evalBool(e ast.Expr, env map[string]int64) (bool, error) {
	switch x := e.(type) {
	case *ast.BoolLit:
		return x.Value, nil
	case *ast.Unary:
		if x.Op != ast.LNot {
			return false, fmt.Errorf("integer operator in boolean context")
		}
		v, err := evalBool(x.X, env)
		return !v, err
	case *ast.Binary:
		switch {
		case x.Op == ast.LAnd:
			l, err := evalBool(x.L, env)
			if err != nil || !l {
				return false, err
			}
			return evalBool(x.R, env)
		case x.Op == ast.LOr:
			l, err := evalBool(x.L, env)
			if err != nil || l {
				return l, err
			}
			return evalBool(x.R, env)
		case x.Op.IsComparison():
			l, err := evalInt(x.L, env)
			if err != nil {
				return false, err
			}
			r, err := evalInt(x.R, env)
			if err != nil {
				return false, err
			}
			switch x.Op {
			case ast.Eq:
				return l == r, nil
			case ast.Neq:
				return l != r, nil
			case ast.Lt:
				return l < r, nil
			case ast.Le:
				return l <= r, nil
			case ast.Gt:
				return l > r, nil
			case ast.Ge:
				return l >= r, nil
			}
		}
	}
	return false, fmt.Errorf("unsupported boolean expression %T", e)
}
