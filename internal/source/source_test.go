package source

import "testing"

func TestPosForLinesAndCols(t *testing.T) {
	f := NewFile("t.mpl", "ab\ncd\n\nxyz")
	cases := []struct {
		off  int
		line int
		col  int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // '\n' belongs to line 1
		{3, 2, 1}, {5, 2, 3},
		{6, 3, 1},
		{7, 4, 1}, {9, 4, 3}, {10, 4, 4},
	}
	for _, c := range cases {
		p := f.PosFor(c.off)
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("PosFor(%d) = %v, want %d:%d", c.off, p, c.line, c.col)
		}
	}
}

func TestPosForOutOfRange(t *testing.T) {
	f := NewFile("t.mpl", "ab")
	if p := f.PosFor(-1); p.IsValid() {
		t.Errorf("PosFor(-1) = %v, want invalid", p)
	}
	if p := f.PosFor(100); p.Line != 1 || p.Col != 3 {
		t.Errorf("PosFor(100) = %v, want clamped 1:3", p)
	}
}

func TestLine(t *testing.T) {
	f := NewFile("t.mpl", "first\nsecond\nthird")
	if got := f.Line(2); got != "second" {
		t.Errorf("Line(2) = %q, want %q", got, "second")
	}
	if got := f.Line(3); got != "third" {
		t.Errorf("Line(3) = %q, want %q", got, "third")
	}
	if got := f.Line(0); got != "" {
		t.Errorf("Line(0) = %q, want empty", got)
	}
	if got := f.Line(4); got != "" {
		t.Errorf("Line(4) = %q, want empty", got)
	}
	if f.NumLines() != 3 {
		t.Errorf("NumLines = %d, want 3", f.NumLines())
	}
}

func TestPosBefore(t *testing.T) {
	a := Pos{1, 5}
	b := Pos{2, 1}
	c := Pos{1, 6}
	if !a.Before(b) || !a.Before(c) || b.Before(a) {
		t.Errorf("Before ordering wrong: a=%v b=%v c=%v", a, b, c)
	}
}

func TestDiagList(t *testing.T) {
	var l DiagList
	sp := func(line int) Span { return Span{Start: Pos{line, 1}} }
	l.Warnf(sp(3), "later warning")
	l.Errorf(sp(1), "first error")
	l.Notef(sp(2), "a note")

	if !l.HasErrors() {
		t.Fatal("HasErrors = false, want true")
	}
	all := l.All()
	if len(all) != 3 {
		t.Fatalf("len(All) = %d, want 3", len(all))
	}
	if all[0].Message != "first error" || all[2].Message != "later warning" {
		t.Errorf("All not sorted by position: %v", all)
	}
	if err := l.Err(); err == nil {
		t.Error("Err = nil, want error")
	}

	var clean DiagList
	if err := clean.Err(); err != nil {
		t.Errorf("empty DiagList Err = %v, want nil", err)
	}
}

func TestSeverityAndSpanStrings(t *testing.T) {
	if Error.String() != "error" || Warning.String() != "warning" || Note.String() != "note" {
		t.Error("severity strings wrong")
	}
	s := Span{Start: Pos{1, 2}, End: Pos{1, 5}}
	if s.String() != "1:2-1:5" {
		t.Errorf("span string = %q", s.String())
	}
	var zero Span
	if zero.String() != "-" {
		t.Errorf("zero span string = %q", zero.String())
	}
}
