// Package source provides source-file positions, spans and diagnostics
// shared by the MPL frontend (lexer, parser, semantic checker) and by the
// analysis passes that report findings back against program text.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position within a source file, 1-based for both line and column.
// The zero Pos is "no position".
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p refers to an actual location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Before reports whether p precedes q in the file.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Span is a half-open region of source text [Start, End).
type Span struct {
	Start Pos
	End   Pos
}

// IsValid reports whether the span has a valid start position.
func (s Span) IsValid() bool { return s.Start.IsValid() }

func (s Span) String() string {
	if !s.IsValid() {
		return "-"
	}
	if s.End.IsValid() && s.End != s.Start {
		return fmt.Sprintf("%s-%s", s.Start, s.End)
	}
	return s.Start.String()
}

// Severity classifies a diagnostic.
type Severity int

const (
	// Error marks a diagnostic that prevents further processing.
	Error Severity = iota
	// Warning marks a suspicious but non-fatal condition.
	Warning
	// Note attaches supplementary information to a prior diagnostic.
	Note
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Note:
		return "note"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic is a single message tied to a source location.
type Diagnostic struct {
	Severity Severity
	Span     Span
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Span, d.Severity, d.Message)
}

// Error makes Diagnostic satisfy the error interface so a single diagnostic
// can be returned directly where an error is expected.
func (d Diagnostic) Error() string { return d.String() }

// DiagList collects diagnostics produced by a pass.
type DiagList struct {
	diags []Diagnostic
}

// Errorf appends an error diagnostic at span.
func (l *DiagList) Errorf(span Span, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{Error, span, fmt.Sprintf(format, args...)})
}

// Warnf appends a warning diagnostic at span.
func (l *DiagList) Warnf(span Span, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{Warning, span, fmt.Sprintf(format, args...)})
}

// Notef appends a note diagnostic at span.
func (l *DiagList) Notef(span Span, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{Note, span, fmt.Sprintf(format, args...)})
}

// Add appends an already-built diagnostic.
func (l *DiagList) Add(d Diagnostic) { l.diags = append(l.diags, d) }

// All returns the diagnostics in source order (stable for equal positions).
func (l *DiagList) All() []Diagnostic {
	out := make([]Diagnostic, len(l.diags))
	copy(out, l.diags)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Span.Start.Before(out[j].Span.Start)
	})
	return out
}

// HasErrors reports whether any diagnostic has severity Error.
func (l *DiagList) HasErrors() bool {
	for _, d := range l.diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Len returns the number of collected diagnostics.
func (l *DiagList) Len() int { return len(l.diags) }

// Err returns an error summarizing all error diagnostics, or nil when there
// are none. Useful for passes exposing an (T, error) API.
func (l *DiagList) Err() error {
	if !l.HasErrors() {
		return nil
	}
	var b strings.Builder
	n := 0
	for _, d := range l.All() {
		if d.Severity != Error {
			continue
		}
		if n > 0 {
			b.WriteString("; ")
		}
		b.WriteString(d.String())
		n++
	}
	return fmt.Errorf("%s", b.String())
}

// File pairs a file name with its content and precomputed line offsets so
// byte offsets can be translated to positions.
type File struct {
	Name    string
	Content string
	lines   []int // byte offset of the start of each line
}

// NewFile builds a File, indexing line starts.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// PosFor converts a byte offset into a Pos. Offsets past the end of the file
// map to a position just past the last byte.
func (f *File) PosFor(offset int) Pos {
	if offset < 0 {
		return Pos{}
	}
	if offset > len(f.Content) {
		offset = len(f.Content)
	}
	// Binary search for the line containing offset.
	lo, hi := 0, len(f.lines)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.lines[mid] <= offset {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return Pos{Line: lo + 1, Col: offset - f.lines[lo] + 1}
}

// Line returns the text of the 1-based line number, without the newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lines) {
		return ""
	}
	start := f.lines[n-1]
	end := len(f.Content)
	if n < len(f.lines) {
		end = f.lines[n] - 1
	}
	if end < start {
		end = start
	}
	return f.Content[start:end]
}

// NumLines returns the number of lines in the file.
func (f *File) NumLines() int { return len(f.lines) }
