package validate

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/sim"
)

// checkProgram analyzes src with the cartesian client (which subsumes the
// symbolic one) and validates against the simulator at each np.
func checkProgram(t *testing.T, src string, nps []int, env map[string]int64) {
	t.Helper()
	prog, err := parser.Parse("t.mpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := cfg.Build(prog)
	m := cartesian.New(core.ScanInvariants(g))
	res, err := core.Analyze(g, core.Options{Matcher: m})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !res.Clean() {
		t.Fatalf("analysis not clean: %v", res.TopReasons())
	}
	for _, np := range nps {
		if err := Check(g, res, np, env); err != nil {
			t.Errorf("np=%d: %v", np, err)
		}
	}
}

func TestValidateFig2(t *testing.T) {
	checkProgram(t, `
assume np >= 3
if id == 0 then
  x := 5
  send x -> 1
  recv y <- 1
elif id == 1 then
  recv y <- 0
  send y -> 0
end`, []int{3, 4, 7}, nil)
}

func TestValidateFig5(t *testing.T) {
	checkProgram(t, `
assume np >= 4
if id == 0 then
  for i := 1 to np - 1 do
    send x -> i
    recv y <- i
  end
else
  recv y <- 0
  send y -> 0
end`, []int{4, 5, 8, 13}, nil)
}

func TestValidateFig7(t *testing.T) {
	checkProgram(t, `
assume np >= 4
if id == 0 then
  send x -> id + 1
elif id <= np - 2 then
  recv y <- id - 1
  send x -> id + 1
else
  recv y <- id - 1
end`, []int{4, 5, 9, 16}, nil)
}

func TestValidateTranspose(t *testing.T) {
	checkProgram(t, `
assume nrows >= 1
assume np == nrows * nrows
send x -> (id % nrows) * nrows + id / nrows
recv y <- (id % nrows) * nrows + id / nrows`,
		[]int{9}, map[string]int64{"nrows": 3})
}

func TestValidateRectTranspose(t *testing.T) {
	checkProgram(t, `
assume nrows >= 1
assume ncols == 2 * nrows
assume np == 2 * nrows * nrows
send x -> id % 2 + 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows))
recv y <- id % 2 + 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows))`,
		[]int{18}, map[string]int64{"nrows": 3})
}

func TestValidateFanout(t *testing.T) {
	checkProgram(t, `
assume np >= 3
if id == 0 then
  for i := 1 to np - 1 do
    send x -> i
  end
else
  recv y <- 0
end`, []int{3, 4, 9}, nil)
}

func TestCheckRejectsWrongTopology(t *testing.T) {
	// Analyze one program but validate against a different one: the
	// comparison must fail.
	progA, _ := parser.Parse("a.mpl", `
assume np >= 3
if id == 0 then
  send x -> 1
elif id == 1 then
  recv y <- 0
end`)
	gA := cfg.Build(progA)
	resA, err := core.Analyze(gA, core.Options{Matcher: &symbolic.Matcher{}})
	if err != nil || !resA.Clean() {
		t.Fatalf("analyze: %v %v", err, resA.TopReasons())
	}
	progB, _ := parser.Parse("b.mpl", `
assume np >= 3
if id == 0 then
  send x -> 2
elif id == 2 then
  recv y <- 0
end`)
	gB := cfg.Build(progB)
	if err := Check(gB, resA, 4, nil); err == nil {
		t.Error("validation against mismatched program succeeded")
	}
}

func TestPairSetEqual(t *testing.T) {
	a := FromSim([]sim.Event{{SendNode: 1, RecvNode: 2, Sender: 0, Receiver: 1}})
	b := FromSim([]sim.Event{{SendNode: 1, RecvNode: 2, Sender: 0, Receiver: 1}})
	if ok, _ := Equal(a, b); !ok {
		t.Error("identical topologies unequal")
	}
	c := FromSim([]sim.Event{{SendNode: 1, RecvNode: 2, Sender: 0, Receiver: 2}})
	if ok, _ := Equal(a, c); ok {
		t.Error("different topologies equal")
	}
	d := FromSim(nil)
	if ok, _ := Equal(a, d); ok {
		t.Error("empty vs nonempty equal")
	}
}
