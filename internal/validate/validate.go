// Package validate cross-checks static analysis results against the
// concrete simulator: for a given process count, the communication topology
// predicted by the pCFG analysis must concretize to exactly the messages
// the program actually exchanges. This is the soundness harness used by the
// integration tests and the benchmark suite.
package validate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/procset"
	"repro/internal/sim"
	"repro/internal/tri"
)

// PairSet is the concrete communication topology at a fixed np: for each
// (send node, recv node) edge, the participating sender and receiver ranks.
type PairSet struct {
	Senders   map[[2]int]map[int64]bool
	Receivers map[[2]int]map[int64]bool
}

func newPairSet() *PairSet {
	return &PairSet{
		Senders:   map[[2]int]map[int64]bool{},
		Receivers: map[[2]int]map[int64]bool{},
	}
}

func (ps *PairSet) add(edge [2]int, sender, receiver int64) {
	if ps.Senders[edge] == nil {
		ps.Senders[edge] = map[int64]bool{}
		ps.Receivers[edge] = map[int64]bool{}
	}
	ps.Senders[edge][sender] = true
	ps.Receivers[edge][receiver] = true
}

// FromSim builds the concrete topology from simulator events.
func FromSim(events []sim.Event) *PairSet {
	ps := newPairSet()
	for _, e := range events {
		ps.add([2]int{e.SendNode, e.RecvNode}, int64(e.Sender), int64(e.Receiver))
	}
	return ps
}

// FromState concretizes a final analysis state's match records under env.
// Empty-at-this-np records are skipped.
func FromState(st *core.State, env map[string]int64) *PairSet {
	ps := newPairSet()
	for _, m := range st.Matches {
		edge := [2]int{m.SendNode, m.RecvNode}
		senders := m.Sender.ConcreteSlice(env)
		receivers := m.Receiver.ConcreteSlice(env)
		if len(senders) == 0 || len(receivers) == 0 {
			continue // record not active at this np
		}
		if ps.Senders[edge] == nil {
			ps.Senders[edge] = map[int64]bool{}
			ps.Receivers[edge] = map[int64]bool{}
		}
		for _, s := range senders {
			ps.Senders[edge][s] = true
		}
		for _, r := range receivers {
			ps.Receivers[edge][r] = true
		}
	}
	return ps
}

// Equal compares two concrete topologies, returning a description of the
// first difference.
func Equal(a, b *PairSet) (bool, string) {
	for edge, senders := range a.Senders {
		if diff := diffSets(senders, b.Senders[edge]); diff != "" {
			return false, fmt.Sprintf("edge n%d->n%d senders: %s", edge[0], edge[1], diff)
		}
		if diff := diffSets(a.Receivers[edge], b.Receivers[edge]); diff != "" {
			return false, fmt.Sprintf("edge n%d->n%d receivers: %s", edge[0], edge[1], diff)
		}
	}
	for edge := range b.Senders {
		if _, ok := a.Senders[edge]; !ok {
			return false, fmt.Sprintf("edge n%d->n%d missing from first topology", edge[0], edge[1])
		}
	}
	return true, ""
}

func diffSets(a, b map[int64]bool) string {
	var onlyA, onlyB []int64
	for v := range a {
		if !b[v] {
			onlyA = append(onlyA, v)
		}
	}
	for v := range b {
		if !a[v] {
			onlyB = append(onlyB, v)
		}
	}
	if len(onlyA) == 0 && len(onlyB) == 0 {
		return ""
	}
	sort.Slice(onlyA, func(i, j int) bool { return onlyA[i] < onlyA[j] })
	sort.Slice(onlyB, func(i, j int) bool { return onlyB[i] < onlyB[j] })
	return fmt.Sprintf("only-first=%v only-second=%v", onlyA, onlyB)
}

// Check runs the simulator at np (with env for free symbols) and verifies
// that some final analysis configuration consistent with that np
// concretizes to exactly the simulated topology.
func Check(g *cfg.Graph, res *core.Result, np int, env map[string]int64) error {
	fullEnv := map[string]int64{"np": int64(np)}
	for k, v := range env {
		fullEnv[k] = v
	}
	simRes, err := sim.Run(g, np, sim.Options{Env: env})
	if err != nil {
		return fmt.Errorf("validate: simulation failed: %w", err)
	}
	if simRes.Deadlocked {
		return fmt.Errorf("validate: program deadlocks at np=%d", np)
	}
	want := FromSim(simRes.Events)

	var errs []string
	for _, fin := range res.Finals {
		if !consistentWithNP(fin, np, fullEnv) {
			continue
		}
		got := FromState(fin, fullEnv)
		if ok, diff := Equal(got, want); ok {
			return nil
		} else {
			errs = append(errs, diff)
		}
	}
	if len(errs) == 0 {
		return fmt.Errorf("validate: no final configuration consistent with np=%d", np)
	}
	return fmt.Errorf("validate: np=%d: no final matches ground truth: %s", np, strings.Join(errs, "; "))
}

// ConsistentWithNP reports whether the final state's constraints admit the
// given np (and env bindings for other global symbols). Exported for the
// differential-soundness harness (internal/differ), which classifies each
// final's concretization separately instead of requiring one exact match.
func ConsistentWithNP(st *core.State, np int, env map[string]int64) bool {
	return consistentWithNP(st, np, env)
}

// consistentWithNP reports whether the final state's constraints admit the
// given np (and env bindings for other global symbols).
func consistentWithNP(st *core.State, np int, env map[string]int64) bool {
	g := st.G.Clone()
	if !g.SetConst("np", int64(np)) {
		return false
	}
	for k, v := range env {
		if k == "np" {
			continue
		}
		if g.HasVar(k) && !g.SetConst(k, v) {
			return false
		}
	}
	// Ranges must also be non-contradictory: every set's lb <= ub+1.
	ctx := procset.Ctx{G: g}
	for _, p := range st.Sets {
		if p.Range.Empty(ctx) == tri.True && len(st.Sets) == 1 {
			return false
		}
	}
	return g.Consistent()
}
