// Package experiments regenerates the paper's evaluation: one table per
// figure/table/measurement, each reporting the paper's published value next
// to the value measured from this implementation. The experiment ids match
// the per-experiment index in DESIGN.md; EXPERIMENTS.md records a captured
// run.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cfg"
	"repro/internal/cg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/hsm"
	"repro/internal/modelcheck"
	"repro/internal/mpicfg"
	"repro/internal/obs"
	"repro/internal/sym"
	"repro/internal/topology"
	"repro/internal/validate"
	"repro/internal/verify"
)

// Row is one table line: a quantity, what the paper reports, and what this
// implementation measures.
type Row struct {
	Name     string
	Paper    string
	Measured string
}

// Table is one regenerated experiment.
type Table struct {
	ID    string
	Title string
	Rows  []Row
	Notes string
}

func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	w := 0
	for _, r := range t.Rows {
		if len(r.Name) > w {
			w = len(r.Name)
		}
	}
	fmt.Fprintf(&b, "  %-*s | %-38s | %s\n", w, "quantity", "paper", "measured")
	fmt.Fprintf(&b, "  %s-+-%s-+-%s\n", strings.Repeat("-", w), strings.Repeat("-", 38), strings.Repeat("-", 30))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-*s | %-38s | %s\n", w, r.Name, r.Paper, r.Measured)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", t.Notes)
	}
	return b.String()
}

// analysisRun is one instrumented analysis execution. stats is a pointer:
// cg.Stats holds atomic counters and must not be copied.
type analysisRun struct {
	res     *core.Result
	g       *cfg.Graph
	matcher *cartesian.Matcher
	stats   *cg.Stats
	elapsed time.Duration
}

// runAnalysis analyzes a workload with the cartesian client on the given
// constraint-graph backend, collecting closure instrumentation. tr (may be
// nil) aggregates engine phase timings across the spec's analyses.
func runAnalysis(tr *obs.Tracer, w *bench.Workload, backend cg.Backend) (*analysisRun, error) {
	runs, err := runAnalyses(tr, []*bench.Workload{w}, backend, 1)
	if err != nil {
		return nil, err
	}
	return runs[0], nil
}

// runAnalyses analyzes a set of workloads through the core.AnalyzeAll
// bounded worker pool, one matcher and stats record per workload, returning
// instrumented runs in input order. parallelism <= 0 selects one worker per
// CPU; 1 runs sequentially. A shared non-nil tr accumulates engine phase
// totals across every job (the per-spec aggregate written to
// BENCH_<spec>.json); per-job breakdowns, when needed, come from
// core.AnalyzeAll's JobResult.Phases, not from this helper.
func runAnalyses(tr *obs.Tracer, ws []*bench.Workload, backend cg.Backend, parallelism int) ([]*analysisRun, error) {
	runs := make([]*analysisRun, len(ws))
	jobs := make([]core.Job, len(ws))
	for i, w := range ws {
		_, g := w.Parse()
		stats := &cg.Stats{}
		m := cartesian.New(core.ScanInvariants(g))
		runs[i] = &analysisRun{g: g, matcher: m, stats: stats}
		jobs[i] = core.Job{
			Name: w.Name,
			G:    g,
			Opts: core.Options{
				Matcher: m,
				CGOpts:  cg.Options{Backend: backend, Stats: stats},
				Tracer:  tr,
			},
		}
	}
	for i, jr := range core.AnalyzeAll(jobs, parallelism) {
		if jr.Err != nil {
			return nil, fmt.Errorf("%s: %w", jr.Name, jr.Err)
		}
		runs[i].res = jr.Res
		runs[i].elapsed = jr.Wall
	}
	return runs, nil
}

// Fig2 regenerates the Figure 2 walkthrough: constant propagation across a
// two-process exchange plus the detected topology.
func fig2(tr *obs.Tracer) (*Table, error) {
	run, err := runAnalysis(tr, bench.Fig2Exchange(), cg.ArrayBackend)
	if err != nil {
		return nil, err
	}
	res := run.res
	printsAt5 := 0
	for _, p := range res.Prints {
		if p.Known && p.Val == 5 {
			printsAt5++
		}
	}
	rep := topology.Build(run.g, res)
	return &Table{
		ID:    "fig2",
		Title: "Fig 2: constant propagation across an exchange (unbounded np)",
		Rows: []Row{
			{"analysis completes", "yes (fixed point reached)", yesNo(res.Clean())},
			{"both prints proven = 5", "yes", yesNo(printsAt5 == 2)},
			{"topology edges", "2 (0->1, 1->0)", fmt.Sprintf("%d (%s)", len(res.Matches), matchSummary(res))},
			{"pattern", "point-to-point exchange", rep.Overall.String()},
			{"pCFG nodes explored", "(not reported)", fmt.Sprintf("%d", res.Configs)},
		},
	}, nil
}

// Fig5 regenerates the mdcask exchange-with-root analysis: the loop
// invariant process sets and the collective-pattern detection motivating
// Section I.
func fig5(tr *obs.Tracer) (*Table, error) {
	run, err := runAnalysis(tr, bench.Fig5ExchangeRoot(), cg.ArrayBackend)
	if err != nil {
		return nil, err
	}
	res := run.res
	rep := topology.Build(run.g, res)
	bcast, gather := "-", "-"
	for _, e := range rep.Edges {
		switch e.Kind {
		case topology.Broadcast:
			bcast = fmt.Sprintf("%s -> %s", e.Sender, e.Receiver)
		case topology.Gather:
			gather = fmt.Sprintf("%s -> %s", e.Sender, e.Receiver)
		}
	}
	valErr := validate.Check(run.g, res, 9, nil)
	return &Table{
		ID:    "fig5",
		Title: "Figs 1&5: mdcask exchange-with-root (unbounded np)",
		Rows: []Row{
			{"analysis completes", "yes (loop fixed point)", yesNo(res.Clean())},
			{"root send edge", "[0] -> [1..np-1]", bcast},
			{"worker send edge", "[1..np-1] -> [0]", gather},
			{"pattern (Section I claim)", "condensable to broadcast + gather", rep.Overall.String()},
			{"matches simulator (np=9)", "(exact by construction)", errOK(valErr)},
		},
	}, nil
}

// Fig6 regenerates the NAS-CG transpose analysis for both grid shapes.
func fig6(tr *obs.Tracer) (*Table, error) {
	rows := []Row{}
	ws := []*bench.Workload{bench.TransposeSquare(), bench.TransposeRect()}
	runs, err := runAnalyses(tr, ws, cg.ArrayBackend, 0)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		run := runs[i]
		kind := "square (ncols = nrows)"
		scale := 3
		if w.Name == "nascg_rect" {
			kind = "rectangular (ncols = 2*nrows)"
		}
		valErr := validate.Check(run.g, run.res, w.NPFor(scale), w.Env(scale))
		rows = append(rows,
			Row{kind + ": matched", "yes (HSM identity + surjection)", yesNo(run.res.Clean() && len(run.res.Matches) == 1)},
			Row{kind + ": HSM proofs used", ">= 1", fmt.Sprintf("%d", run.matcher.HSMMatchCount())},
			Row{kind + ": matches simulator", "(exact)", errOK(valErr)},
		)
	}
	return &Table{
		ID:    "fig6",
		Title: "Fig 6 / Section VIII-B: NAS-CG transpose over cartesian grids",
		Rows:  rows,
	}, nil
}

// Fig7 regenerates the 1-D nearest-neighbor shift, checking the exact Fig 8
// set-level matches.
func fig7(tr *obs.Tracer) (*Table, error) {
	run, err := runAnalysis(tr, bench.Fig7Shift(), cg.ArrayBackend)
	if err != nil {
		return nil, err
	}
	res := run.res
	have := map[string]bool{}
	for _, m := range res.Matches {
		have[fmt.Sprintf("%s -> %s", m.Sender, m.Receiver)] = true
	}
	row := func(want string) Row {
		return Row{"match " + want, want, yesNo(have[want])}
	}
	valErr := validate.Check(run.g, res, 16, nil)
	return &Table{
		ID:    "fig7",
		Title: "Figs 7&8: 1-D nearest-neighbor shift (unbounded np)",
		Rows: []Row{
			{"analysis completes", "yes", yesNo(res.Clean())},
			row("[0] -> [1]"),
			row("[1..np - 3] -> [2..np - 2]"),
			row("[np - 2] -> [np - 1]"),
			{"total matches", "3", fmt.Sprintf("%d", len(res.Matches))},
			{"matches simulator (np=16)", "(exact)", errOK(valErr)},
		},
		Notes: "the [1..np-3] match is found via parametric widening: no program variable tracks the pipeline position",
	}, nil
}

// TableI verifies the HSM operation examples printed in the paper's Table I
// discussion.
func tableI(tr *obs.Tracer) (*Table, error) {
	ctx := hsm.NewCtx()
	rows := []Row{}
	check := func(name, paper string, got bool) {
		rows = append(rows, Row{name, paper, yesNo(got)})
	}

	// [12:15,2] % 6 = <0,2,4> x 5.
	h := hsm.Run(sym.Const(12), sym.Const(15), sym.Const(2))
	m, err := ctx.Mod(h, sym.Const(6))
	ok := err == nil
	if ok {
		want := []int64{}
		for _, v := range h.Enumerate(nil, 100) {
			want = append(want, v%6)
		}
		got := m.Enumerate(nil, 100)
		ok = len(got) == len(want)
		for i := range want {
			if ok && got[i] != want[i] {
				ok = false
			}
		}
	}
	check("[12:15,2] % 6", "<0,2,4> repeated 5x", ok)

	// [20:6,5] / 10 = <2,2,3,3,4,4>.
	h = hsm.Run(sym.Const(20), sym.Const(6), sym.Const(5))
	d, err := ctx.Div(h, sym.Const(10))
	ok = err == nil && fmt.Sprint(d.Enumerate(nil, 100)) == "[2 2 3 3 4 4]"
	check("[20:6,5] / 10", "<2,2,3,3,4,4>", ok)

	// Adjacency: [[2:3,2]:2,6] = [2:6,2].
	p := hsm.NewProver(ctx)
	p.Tracer = tr
	p.TracePID = 1
	a := hsm.Node(hsm.Run(sym.Const(2), sym.Const(3), sym.Const(2)), sym.Const(2), sym.Const(6))
	b := hsm.Run(sym.Const(2), sym.Const(6), sym.Const(2))
	check("adjacency seq-equality", "[[2:3,2]:2,6] = [2:6,2]", p.SeqEqual(a, b))

	// Interleave: [[2:3,4]:2,2] ~ [2:6,2].
	a = hsm.Node(hsm.Run(sym.Const(2), sym.Const(3), sym.Const(4)), sym.Const(2), sym.Const(2))
	check("interleave set-equality", "<2,6,10,4,8,12> ~ <2,4,6,8,10,12>", p.SetEqual(a, b))

	// Swap: [[1:2,1]:3,10] ~ [[1:3,10]:2,1].
	a = hsm.Node(hsm.Run(sym.Const(1), sym.Const(2), sym.Const(1)), sym.Const(3), sym.Const(10))
	b = hsm.Node(hsm.Run(sym.Const(1), sym.Const(3), sym.Const(10)), sym.Const(2), sym.Const(1))
	check("swap set-equality", "<1,2,11,12,21,22> ~ <1,11,21,2,12,22>", p.SetEqual(a, b))

	// The symbolic square-grid derivation (Section VIII-A).
	nr := sym.Var("nrows")
	gctx := hsm.NewCtx().WithLowerBound("nrows", 1)
	id := hsm.IDRange(sym.Zero, sym.Mul(nr, nr))
	mod, err1 := gctx.Mod(id, nr)
	div, err2 := gctx.Div(id, nr)
	okDeriv := err1 == nil && err2 == nil &&
		mod.String() == "[[0:nrows,1]:nrows,0]" &&
		div.String() == "[[0:nrows,0]:nrows,1]"
	check("id%nrows, id/nrows over [0:nrows^2,1]",
		"[[0:nrows,1]:nrows,0], [[0:nrows,0]:nrows,1]", okDeriv)

	return &Table{ID: "table1", Title: "Table I: HSM operations and equality rules", Rows: rows}, nil
}

// ProfileSectionIX regenerates the Section IX performance profile on the
// fan-out broadcast: where the analysis time goes and how often the two
// closure variants run.
func profileSectionIX(tr *obs.Tracer) (*Table, error) {
	run, err := runAnalysis(tr, bench.Fanout(), cg.ArrayBackend)
	if err != nil {
		return nil, err
	}
	st := run.stats
	share := 0.0
	if run.elapsed > 0 {
		share = 100 * float64(st.MaintenanceTime()) / float64(run.elapsed)
	}
	return &Table{
		ID:    "profile",
		Title: "Section IX: fan-out broadcast analysis profile",
		Rows: []Row{
			{"analysis completes", "yes", yesNo(run.res.Clean())},
			{"total analysis time", "381 s (2.8 GHz Opteron, C++ prototype)", run.elapsed.String()},
			{"time maintaining dataflow state", "351 s = 92.5 %", fmt.Sprintf("%v = %.1f %%", st.MaintenanceTime().Round(time.Microsecond), share)},
			{"O(n^2) incremental closures", "78 calls, avg 66.3 vars", fmt.Sprintf("%d calls, avg %.1f vars", st.IncrClosures(), st.AvgIncrVars())},
			{"joins/widenings (O(n^2) each)", "(within the 92.5 %)", fmt.Sprintf("%d calls, avg %.1f vars", st.Joins(), st.AvgJoinVars())},
			{"O(n^3) full closures", "217 calls, avg 52.3 vars", fmt.Sprintf("%d calls, avg %.1f vars (joins of closed DBMs stay closed)", st.FullClosures(), st.AvgFullVars())},
			{"copy-on-write clones", "(not in paper: this repo's optimization)", fmt.Sprintf("%d O(1) clones, %d materialized on write", st.ClonesAvoided(), st.CoWMaterializations())},
			{"match-cache hit rate", "(not in paper: this repo's optimization)", fmt.Sprintf("%.0f %% of %d HSM match queries", 100*run.matcher.Memo().HitRate(), run.matcher.Memo().HitCount()+run.matcher.Memo().MissCount())},
		},
		Notes: "the paper's 92.5% closure share motivated its improvement list (arrays instead of containers, fewer variables, cheaper closure); this implementation applies those fixes — array DBMs, incremental O(n^2) closure, joins that preserve closure without an O(n^3) pass — which is why the maintenance share collapses from 92.5% to a few percent while call counts stay in the same range as the paper's",
	}, nil
}

// Storage regenerates the Section IX storage observation: array-backed
// constraint graphs versus container (map) backed ones, on a closure
// workload sized like the paper's profile (around 60 variables).
func storage(tr *obs.Tracer) (*Table, error) {
	type edge struct {
		x, y string
		c    int64
	}
	var work []edge
	seed := int64(42)
	next := func() int64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed }
	for i := 0; i < 400; i++ {
		a := int(uint64(next()) % 60)
		b := int(uint64(next()) % 60)
		c := int64(uint64(next()) % 20)
		work = append(work, edge{fmt.Sprintf("v%d", a), fmt.Sprintf("v%d", b), c})
	}
	const reps = 5
	run := func(name string, backend cg.Backend) time.Duration {
		key := "storage/" + name
		asp := tr.Begin(0, 0, obs.PhaseAnalyze, key)
		start := time.Now()
		for r := 0; r < reps; r++ {
			// Each repetition is one closure-maintenance "step": build the
			// ~60-variable graph edge by edge, every AddLE restoring
			// closure incrementally.
			ssp := tr.Begin(0, 0, obs.PhaseStep, key)
			g := cg.New(cg.Options{Backend: backend})
			for _, w := range work {
				g.AddLE(w.x, w.y, w.c)
			}
			ssp.End()
			g.Release()
		}
		wall := time.Since(start)
		asp.End()
		return wall
	}
	tArr := run("array", cg.ArrayBackend)
	tMap := run("map", cg.MapBackend)
	ratio := 0.0
	if tArr > 0 {
		ratio = float64(tMap) / float64(tArr)
	}
	return &Table{
		ID:    "storage",
		Title: "Section IX: constraint-graph storage ablation (arrays vs containers)",
		Rows: []Row{
			{"workload", "~60-variable closure maintenance", fmt.Sprintf("%d constraints x %d reps, 60 vars", len(work), reps)},
			{"array backend", "(paper: proposed fix)", tArr.String()},
			{"map/container backend", "(paper: STL containers, slower; cache misses)", tMap.String()},
			{"container / array slowdown", "> 1x (qualitative claim)", fmt.Sprintf("%.2fx", ratio)},
		},
	}, nil
}

// Scaling regenerates the Section II scaling contrast: explicit-state
// checking grows with np; the pCFG analysis is np-independent.
func scaling(tr *obs.Tracer) (*Table, error) {
	w := bench.Fig5ExchangeRoot()
	run, err := runAnalysis(tr, w, cg.ArrayBackend)
	if err != nil {
		return nil, err
	}
	rows := []Row{
		{"pCFG analysis (any np)", "one analysis covers all np", fmt.Sprintf("%v, %d pCFG nodes", run.elapsed, run.res.Configs)},
	}
	for _, np := range []int{4, 8, 16, 32, 64} {
		start := time.Now()
		mc, err := modelcheck.Check(run.g, np, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			fmt.Sprintf("model check np=%d", np),
			"cost grows with np",
			fmt.Sprintf("%v, %d states", time.Since(start), mc.States),
		})
	}
	return &Table{ID: "scaling", Title: "E8: pCFG analysis vs explicit-state baseline", Rows: rows}, nil
}

// Precision regenerates the MPI-CFG comparison: topology edges per
// workload.
func precision(tr *obs.Tracer) (*Table, error) {
	rows := []Row{}
	ws := bench.All()
	runs, err := runAnalyses(tr, ws, cg.ArrayBackend, 0)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		run := runs[i]
		pcfgEdges := map[[2]int]bool{}
		for _, m := range run.res.Matches {
			pcfgEdges[[2]int{m.SendNode, m.RecvNode}] = true
		}
		base := mpicfg.Analyze(run.g)
		rows = append(rows, Row{
			w.Name,
			"pCFG <= MPI-CFG edges",
			fmt.Sprintf("pCFG %d vs MPI-CFG %d", len(pcfgEdges), len(base.Edges)),
		})
	}
	return &Table{ID: "precision", Title: "E9: topology precision vs the MPI-CFG baseline", Rows: rows}, nil
}

// VerifyExp regenerates the error-detection experiment.
func verifyExp(tr *obs.Tracer) (*Table, error) {
	rows := []Row{}
	ws := []*bench.Workload{bench.LeakyBroadcast(), bench.TypeMismatch()}
	runs, err := runAnalyses(tr, ws, cg.ArrayBackend, 0)
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		run := runs[i]
		rep := verify.Check(run.g, run.res)
		kinds := map[string]int{}
		for _, f := range rep.Findings {
			kinds[f.Kind.String()]++
		}
		rows = append(rows, Row{w.Name, "bug detected", fmt.Sprintf("%v", kinds)})
	}
	return &Table{ID: "verify", Title: "E10: error detection (message leaks, type mismatches)", Rows: rows}, nil
}

// Stencil regenerates the Section VIII-C stencil experiment: the 2d+1 role
// structure and concrete message counts per dimensionality.
func stencil(tr *obs.Tracer) (*Table, error) {
	run, err := runAnalysis(tr, bench.Stencil1D(), cg.ArrayBackend)
	if err != nil {
		return nil, err
	}
	rows := []Row{
		{"d=1 symbolic analysis", "3 roles (2d+1), both shifts matched", fmt.Sprintf("clean=%v, %d topology edges", run.res.Clean(), len(run.res.Matches))},
	}
	for d := 1; d <= 3; d++ {
		w := bench.StencilDim(d, 3)
		_, g := w.Parse()
		mc, err := modelcheck.Check(g, w.NPFor(0), nil)
		if err != nil {
			return nil, err
		}
		want := d * intPow(3, d-1) * 2
		rows = append(rows, Row{
			fmt.Sprintf("d=%d concrete (side=3)", d),
			fmt.Sprintf("%d directional messages", want),
			fmt.Sprintf("%d messages, %d edges", mc.MessageCount(), mc.EdgeCount()),
		})
	}
	return &Table{
		ID:    "stencil",
		Title: "E11 / Section VIII-C: d-dimensional nearest-neighbor stencils",
		Rows:  rows,
		Notes: "the paper demonstrates the d=1 case symbolically (as here); higher d is exercised concretely",
	}, nil
}

// Aggregation regenerates experiment E12: the Section X non-blocking send
// extension. The same send-first programs are analyzed under the blocking
// model (pipeline unrolling + widening, or outright failure for non-unit
// strides) and under aggregation (one set-level match).
func aggregation(tr *obs.Tracer) (*Table, error) {
	rows := []Row{}
	for _, w := range []*bench.Workload{bench.SendFirstShift(), bench.Stencil2DFixedWidth()} {
		_, g := w.Parse()
		// Blocking model (bounded: the stride-4 pipeline is expected to
		// fail, and it must fail quickly).
		mb := cartesian.New(core.ScanInvariants(g))
		startB := time.Now()
		resB, err := core.Analyze(g, core.Options{Matcher: mb, MaxVisits: 16, MaxSteps: 600, Tracer: tr})
		if err != nil {
			return nil, err
		}
		elB := time.Since(startB)
		// Non-blocking extension.
		mn := cartesian.New(core.ScanInvariants(g))
		startN := time.Now()
		resN, err := core.Analyze(g, core.Options{Matcher: mn, NonBlockingSends: true, Tracer: tr})
		if err != nil {
			return nil, err
		}
		elN := time.Since(startN)
		blocking := fmt.Sprintf("clean=%v, %d pCFG nodes, %v", resB.Clean(), resB.Configs, elB.Round(time.Microsecond))
		nonblocking := fmt.Sprintf("clean=%v, %d pCFG nodes, %v", resN.Clean(), resN.Configs, elN.Round(time.Microsecond))
		rows = append(rows,
			Row{w.Name + ": blocking model", "(paper: pipeline analysis or unsupported)", blocking},
			Row{w.Name + ": aggregated sends", "single set-level match (Section X)", nonblocking},
		)
		if !resN.Clean() {
			rows = append(rows, Row{w.Name + ": aggregated clean", "yes", "NO: " + fmt.Sprint(resN.TopReasons())})
		}
		scale := 5
		if err := validate.Check(g, resN, w.NPFor(scale), w.Env(scale)); err != nil {
			rows = append(rows, Row{w.Name + ": validated", "(exact)", "NO: " + err.Error()})
		} else {
			rows = append(rows, Row{w.Name + ": validated", "(exact)", "yes"})
		}
	}
	return &Table{
		ID:    "aggregation",
		Title: "E12 / Section X: aggregated non-blocking sends (implemented future work)",
		Rows:  rows,
		Notes: "the stride-4 column shift is beyond the blocking pipeline's unit-stride widening; aggregation matches it set-level in a handful of pCFG nodes",
	}, nil
}

func intPow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// ParallelDriver regenerates the evaluation suite through core.AnalyzeAll
// twice — sequentially and one-workload-per-core — and reports the wall
// clock, the copy-on-write effectiveness across the whole suite, and that
// the parallel run reproduces the sequential topologies exactly.
func parallelDriver(tr *obs.Tracer) (*Table, error) {
	ws := bench.All()
	startSeq := time.Now()
	seq, err := runAnalyses(tr, ws, cg.ArrayBackend, 1)
	if err != nil {
		return nil, err
	}
	elSeq := time.Since(startSeq)
	workers := runtime.NumCPU()
	startPar := time.Now()
	par, err := runAnalyses(tr, ws, cg.ArrayBackend, workers)
	if err != nil {
		return nil, err
	}
	elPar := time.Since(startPar)
	identical := true
	cowOK := true
	var clones, mats int64
	for i := range ws {
		if matchSummary(seq[i].res) != matchSummary(par[i].res) {
			identical = false
		}
		if par[i].stats.ClonesAvoided() == 0 {
			cowOK = false
		}
		clones += par[i].stats.ClonesAvoided()
		mats += par[i].stats.CoWMaterializations()
	}
	speedup := 0.0
	if elPar > 0 {
		speedup = float64(elSeq) / float64(elPar)
	}
	return &Table{
		ID:    "parallel",
		Title: "Parallel analysis driver: the evaluation suite one-workload-per-core",
		Rows: []Row{
			{"workloads analyzed", "(full suite)", fmt.Sprintf("%d", len(ws))},
			{"sequential wall clock", "(baseline)", elSeq.Round(time.Microsecond).String()},
			{fmt.Sprintf("parallel wall clock (%d workers)", workers), "(lower)", fmt.Sprintf("%v (%.2fx speedup)", elPar.Round(time.Microsecond), speedup)},
			{"parallel == sequential topologies", "yes (analyses are independent)", yesNo(identical)},
			{"CoW clones avoided > 0 on every workload", "yes", yesNo(cowOK)},
			{"suite totals", "(not in paper)", fmt.Sprintf("%d O(1) clones, %d materialized on write", clones, mats)},
		},
		Notes: "workload fixpoints share nothing; cg.Stats is atomic so even a shared stats record would aggregate safely",
	}, nil
}

// Engine regenerates the intra-analysis parallel worklist measurement: one
// analysis driven by 1/2/4/8 workers over the sharded configuration table,
// on the workloads with the widest pCFG frontiers (Fig 7 shift, the 1-D
// stencil and both NAS-CG transposes). Reports wall clock per worker
// count, that every run reproduces the sequential topology, and the new
// scheduler/key-cache instrumentation. Speedup is bounded by the frontier
// width (~2 independent configurations on the shift, ~4 on the stencil)
// and by GOMAXPROCS.
func engineWorklist(tr *obs.Tracer) (*Table, error) {
	ws := []*bench.Workload{bench.Fig7Shift(), bench.Stencil1D(), bench.TransposeSquare(), bench.TransposeRect()}
	var rows []Row
	identical := true
	var coalesced, contention int64
	var hits, misses int64
	for _, w := range ws {
		var baseline string
		var times []string
		for _, workers := range []int{1, 2, 4, 8} {
			_, g := w.Parse()
			stats := &cg.Stats{}
			m := cartesian.New(core.ScanInvariants(g))
			start := time.Now()
			res, err := core.Analyze(g, core.Options{
				Matcher: m,
				CGOpts:  cg.Options{Backend: cg.ArrayBackend, Stats: stats},
				Workers: workers,
				Tracer:  tr,
			})
			el := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", w.Name, workers, err)
			}
			if !res.Clean() {
				return nil, fmt.Errorf("%s workers=%d: not clean: %v", w.Name, workers, res.TopReasons())
			}
			if workers == 1 {
				baseline = matchSummary(res)
			} else if matchSummary(res) != baseline {
				identical = false
			}
			times = append(times, fmt.Sprintf("%dw %v", workers, el.Round(time.Microsecond)))
			coalesced += stats.SchedCoalesced()
			contention += stats.ShardContention()
			hits += stats.KeyCacheHits()
			misses += stats.KeyCacheMisses()
		}
		rows = append(rows, Row{w.Name, "(not in paper)", strings.Join(times, ", ")})
	}
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	rows = append(rows,
		Row{"all runs reproduce sequential topology", "yes", yesNo(identical)},
		Row{"scheduler pushes coalesced (visits saved)", "(not in paper)", fmt.Sprintf("%d", coalesced)},
		Row{"table shard lock contention", "(low)", fmt.Sprintf("%d contended acquisitions", contention)},
		Row{"state key cache hit rate", "(not in paper)", fmt.Sprintf("%.1f%% (%d hits / %d misses)", 100*hitRate, hits, misses)},
	)
	return &Table{
		ID:    "engine",
		Title: "Parallel intra-analysis worklist: one fixpoint, N workers",
		Rows:  rows,
		Notes: fmt.Sprintf("GOMAXPROCS=%d; wall-clock speedup needs both frontier width and real cores", runtime.GOMAXPROCS(0)),
	}, nil
}

// Spec is a runnable experiment: a stable ID (used for -exp selection and
// the BENCH_<id>.json file name) plus its builder, which receives the
// tracer that instruments every analysis run inside the experiment.
type Spec struct {
	ID    string
	build func(tr *obs.Tracer) (*Table, error)
}

// specs lists every experiment in DESIGN.md order.
func specs() []Spec {
	return []Spec{
		{"fig2", fig2},
		{"fig5", fig5},
		{"fig6", fig6},
		{"fig7", fig7},
		{"table1", tableI},
		{"profile", profileSectionIX},
		{"storage", storage},
		{"scaling", scaling},
		{"precision", precision},
		{"verify", verifyExp},
		{"stencil", stencil},
		{"aggregation", aggregation},
		{"parallel", parallelDriver},
		{"engine", engineWorklist},
	}
}

// SpecIDs returns the experiment IDs in DESIGN.md order.
func SpecIDs() []string {
	ss := specs()
	ids := make([]string, len(ss))
	for i, s := range ss {
		ids[i] = s.ID
	}
	return ids
}

// BenchSchemaVersion versions the BENCH_<spec>.json record layout (and the
// BENCH_engine_workers.json envelope). Bump on incompatible field changes
// and document the new layout in EXPERIMENTS.md.
const BenchSchemaVersion = 1

// SpecResult is the stable benchmark record written as BENCH_<spec>.json:
// wall time plus the obs phase breakdown aggregated over every analysis the
// experiment ran.
type SpecResult struct {
	SchemaVersion int             `json:"schema_version"`
	Spec          string          `json:"spec"`
	Title         string          `json:"title"`
	WallNs        int64           `json:"wall_ns"`
	Rows          int             `json:"rows"`
	Phases        obs.PhaseTotals `json:"phases"`
	// Allocs and AllocBytes are the heap allocation count and allocated
	// bytes of this run, from runtime.MemStats deltas. Only populated when
	// the caller ran the spec serially (RunSampled with parallelism 1);
	// process-global deltas are meaningless with specs in flight
	// concurrently, so parallel runs leave them zero.
	Allocs     int64 `json:"allocs,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
}

// RunSpec runs one experiment by ID with an aggregate tracer attached,
// returning both the rendered table and the benchmark record.
func RunSpec(id string) (*Table, *SpecResult, error) {
	for _, s := range specs() {
		if s.ID == id {
			return runSpec(s)
		}
	}
	return nil, nil, fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(SpecIDs(), ", "))
}

func runSpec(s Spec) (*Table, *SpecResult, error) {
	tr := obs.NewAggregate()
	start := time.Now()
	t, err := s.build(tr)
	wall := time.Since(start)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", s.ID, err)
	}
	return t, &SpecResult{
		SchemaVersion: BenchSchemaVersion,
		Spec:          s.ID,
		Title:         t.Title,
		WallNs:        wall.Nanoseconds(),
		Rows:          len(t.Rows),
		Phases:        tr.Totals(),
	}, nil
}

// RunAll runs every experiment with up to parallelism specs in flight (the
// specs are independent), returning tables and records in DESIGN.md order.
// parallelism <= 0 selects one worker per CPU.
func RunAll(parallelism int) ([]*Table, []*SpecResult, error) {
	ss := specs()
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > len(ss) {
		parallelism = len(ss)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	out := make([]*Table, len(ss))
	recs := make([]*SpecResult, len(ss))
	errs := make([]error, len(ss))
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], recs[i], errs[i] = runSpec(ss[i])
			}
		}()
	}
	for i := range ss {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return out, recs, nil
}

// All runs every experiment in DESIGN.md order.
func All() ([]*Table, error) {
	tables, _, err := RunAll(1)
	return tables, err
}

// AllParallel regenerates every experiment with up to parallelism specs in
// flight, returning tables in the usual order. parallelism <= 0 selects one
// worker per CPU.
func AllParallel(parallelism int) ([]*Table, error) {
	tables, _, err := RunAll(parallelism)
	return tables, err
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

func errOK(err error) string {
	if err == nil {
		return "yes"
	}
	return "NO: " + err.Error()
}

func matchSummary(res *core.Result) string {
	var parts []string
	for _, m := range res.Matches {
		parts = append(parts, fmt.Sprintf("%s->%s", m.Sender, m.Receiver))
	}
	return strings.Join(parts, ", ")
}
