package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// SampledSpec is the multi-sample timing measurement of one experiment
// spec: the raw wall-clock of each repetition plus the obs phase breakdown
// captured by the final one. `psdf bench record` turns these into the
// per-spec timing blocks of a benchhist history entry.
type SampledSpec struct {
	ID     string
	Title  string
	WallNs []int64
	// Phases is the aggregate phase breakdown of the last sample (one
	// representative breakdown is enough: phase shares are stable across
	// repetitions; the wall-clock samples carry the variance).
	Phases obs.PhaseTotals
	// AllocsPerOp and BytesPerOp are the mean heap allocations and
	// allocated bytes per repetition, from runtime.MemStats deltas around
	// each sample. Only populated for serial records (parallelism 1);
	// zero otherwise.
	AllocsPerOp int64
	BytesPerOp  int64
}

// RunSampled runs the selected specs (nil or empty = the whole registry)
// `samples` times each and collates per-spec wall-clock samples.
// parallelism bounds how many specs run concurrently within one repetition
// (1 = serial, the right choice when the samples feed timing comparisons;
// 0 = one per CPU). Repetitions are strictly sequential so samples never
// contend with each other.
func RunSampled(ids []string, samples, parallelism int) ([]*SampledSpec, error) {
	if samples < 1 {
		samples = 1
	}
	selected, err := selectSpecs(ids)
	if err != nil {
		return nil, err
	}
	out := make([]*SampledSpec, len(selected))
	for i, s := range selected {
		out[i] = &SampledSpec{ID: s.ID}
	}
	// Per-spec allocation accumulators: sum of per-sample MemStats deltas
	// and the number of samples that carried one (retried samples lose
	// their measurement, so the mean divides by the measured count).
	allocSum := make([]int64, len(selected))
	byteSum := make([]int64, len(selected))
	allocN := make([]int64, len(selected))
	for rep := 0; rep < samples; rep++ {
		// Goroutine labels separate warmup from measured repetitions in CPU
		// profiles captured over a bench run (free when no profile is being
		// taken). The first of several samples warms caches, allocator
		// arenas and branch predictors; its profile shape differs enough to
		// be worth filtering.
		stage := "measured"
		if rep == 0 && samples > 1 {
			stage = "warmup"
		}
		recs, errs := runSpecsOnce(selected, parallelism, stage, rep)
		for i, err := range errs {
			// No retries: the parallel engine's widening ladder is driven by
			// state-derived revision counters, so a spec failure is a real
			// regression and must abort the record immediately.
			if err != nil {
				return nil, fmt.Errorf("sample %d of %s: %w", rep+1, selected[i].ID, err)
			}
			out[i].Title = recs[i].Title
			out[i].WallNs = append(out[i].WallNs, recs[i].WallNs)
			out[i].Phases = recs[i].Phases
			if recs[i].Allocs > 0 {
				allocSum[i] += recs[i].Allocs
				byteSum[i] += recs[i].AllocBytes
				allocN[i]++
			}
		}
	}
	for i := range out {
		if allocN[i] > 0 {
			out[i].AllocsPerOp = allocSum[i] / allocN[i]
			out[i].BytesPerOp = byteSum[i] / allocN[i]
		}
	}
	return out, nil
}

// selectSpecs resolves spec ids against the registry, preserving registry
// order and rejecting unknown ids. nil/empty selects everything.
func selectSpecs(ids []string) ([]Spec, error) {
	all := specs()
	if len(ids) == 0 {
		return all, nil
	}
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	var out []Spec
	for _, s := range all {
		if want[s.ID] {
			out = append(out, s)
			delete(want, s.ID)
		}
	}
	for id := range want {
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
	return out, nil
}

// runSpecsOnce runs each selected spec once with up to parallelism specs in
// flight (<= 0 selects one per CPU), returning per-spec records and errors
// positionally. stage/rep become pprof goroutine labels on each spec run
// (stage "" omits the labels).
func runSpecsOnce(selected []Spec, parallelism int, stage string, rep int) ([]*SpecResult, []error) {
	recs := make([]*SpecResult, len(selected))
	errs := make([]error, len(selected))
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > len(selected) {
		parallelism = len(selected)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	serial := parallelism == 1
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				run := func() {
					if serial {
						// MemStats deltas are process-global, so they are only
						// attributable to a spec when nothing else runs.
						var m0, m1 runtime.MemStats
						runtime.ReadMemStats(&m0)
						_, recs[i], errs[i] = runSpec(selected[i])
						runtime.ReadMemStats(&m1)
						if recs[i] != nil {
							recs[i].Allocs = int64(m1.Mallocs - m0.Mallocs)
							recs[i].AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
						}
					} else {
						_, recs[i], errs[i] = runSpec(selected[i])
					}
				}
				if stage == "" {
					run()
					continue
				}
				// Label construction happens before the MemStats window
				// opens inside run, so the handful of label-set allocations
				// never contaminate the per-spec alloc deltas.
				pprof.Do(context.Background(), pprof.Labels(
					"psdf_spec", selected[i].ID, "psdf_stage", stage,
					"psdf_rep", strconv.Itoa(rep)),
					func(context.Context) { run() })
			}
		}()
	}
	for i := range selected {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return recs, errs
}
