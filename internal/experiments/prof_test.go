package experiments

import "testing"

func BenchmarkEngineSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := RunSpec("engine"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStencilSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := RunSpec("stencil"); err != nil {
			b.Fatal(err)
		}
	}
}
