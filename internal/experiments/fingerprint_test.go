package experiments

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/benchhist"
)

// TestFingerprintDeterministic is the foundation of the precision gate: two
// captures of the same code must agree facet-for-facet, so any inter-commit
// delta is a real behavioral change, never sampling noise.
func TestFingerprintDeterministic(t *testing.T) {
	a, err := CaptureFingerprints(FingerprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CaptureFingerprints(FingerprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("capture sizes differ: %d vs %d", len(a), len(b))
	}
	for name, fa := range a {
		fb := b[name]
		if fb == nil {
			t.Errorf("%s: missing from second capture", name)
			continue
		}
		if diffs := fa.DiffFields(fb); len(diffs) != 0 {
			t.Errorf("%s: fingerprint not deterministic: %v", name, diffs)
		}
	}
}

// TestFingerprintShape sanity-checks that the captured facets carry real
// signal on known workloads.
func TestFingerprintShape(t *testing.T) {
	fps, err := CaptureFingerprints(FingerprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fig2 := fps["fig2_exchange"]
	if fig2 == nil {
		t.Fatal("fig2_exchange not fingerprinted")
	}
	if fig2.Matches != 2 || fig2.Tops != 0 {
		t.Errorf("fig2: matches=%d tops=%d, want 2/0", fig2.Matches, fig2.Tops)
	}
	if fig2.Topology == "" {
		t.Error("fig2: empty topology summary")
	}
	sq := fps["nascg_square"]
	if sq == nil {
		t.Fatal("nascg_square not fingerprinted")
	}
	if sq.HSMMatches == 0 {
		t.Error("nascg_square: expected HSM-proved matches")
	}
	shift := fps["fig7_shift"]
	if shift == nil {
		t.Fatal("fig7_shift not fingerprinted")
	}
	if shift.Widenings == 0 {
		t.Error("fig7_shift: expected parametric widening applications")
	}
	if shift.MemoHits == 0 {
		t.Error("fig7_shift: expected match-memo hits")
	}
}

// TestDegradedPrecisionMovesFingerprint is the acceptance fixture for the
// regression gate: disabling the HSM prover cache path must change the
// fingerprint (cache facets collapse), and the bench gate must fail on the
// delta while identical captures pass.
func TestDegradedPrecisionMovesFingerprint(t *testing.T) {
	clean, err := CaptureFingerprints(FingerprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := CaptureFingerprints(FingerprintOptions{DisableHSMCaches: true})
	if err != nil {
		t.Fatal(err)
	}

	entry := func(fps map[string]*benchhist.Fingerprint) *benchhist.Entry {
		return &benchhist.Entry{
			SchemaVersion: benchhist.SchemaVersion,
			Commit:        "test",
			Specs:         map[string]*benchhist.SpecTiming{},
			Fingerprints:  fps,
		}
	}

	// Identical runs: no change, gate passes.
	same := benchhist.Diff(entry(clean), entry(clean), benchhist.DefaultThresholds())
	if same.PrecisionChanged() {
		t.Fatalf("identical captures reported as changed: %+v", same.Fingerprints)
	}
	if fails, _ := same.Gate(false); len(fails) != 0 {
		t.Fatalf("gate failed on identical captures: %v", fails)
	}

	// Degraded run: at least the cache-heavy workloads must move, and the
	// gate must exit nonzero on the delta.
	r := benchhist.Diff(entry(clean), entry(degraded), benchhist.DefaultThresholds())
	if !r.PrecisionChanged() {
		t.Fatal("disabling the prover cache did not move any fingerprint")
	}
	fails, _ := r.Gate(false)
	if len(fails) == 0 {
		t.Fatal("gate passed despite a precision-fingerprint change")
	}
	// The topology itself must NOT have changed — the cache is transparent
	// to decisions; only the how-it-was-proved facets move.
	for name, fc := range clean {
		if fd := degraded[name]; fd != nil && fc.Topology != fd.Topology {
			t.Errorf("%s: topology changed with cache disabled: %q vs %q", name, fc.Topology, fd.Topology)
		}
	}
}

// TestMaxVisitsDegradationForcesTops exercises the second degradation axis:
// a starved revisit budget must surface as ⊤ configurations and PSDF-E005
// lint findings on a looping workload.
func TestMaxVisitsDegradationForcesTops(t *testing.T) {
	w := bench.Fig5ExchangeRoot()
	clean, err := CaptureFingerprint(w, FingerprintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Tops != 0 {
		t.Fatalf("clean capture has %d tops", clean.Tops)
	}
	starved, err := CaptureFingerprint(w, FingerprintOptions{MaxVisits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if starved.Tops == 0 {
		t.Fatal("MaxVisits=1 did not force any give-up")
	}
	if starved.LintFindings["PSDF-E005"] == 0 {
		t.Errorf("starved capture has no PSDF-E005 lint findings: %v", starved.LintFindings)
	}
	if diffs := clean.DiffFields(starved); len(diffs) == 0 {
		t.Error("starved fingerprint identical to clean one")
	}
}

func TestRunSampled(t *testing.T) {
	ss, err := RunSampled([]string{"fig2", "table1"}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 2 {
		t.Fatalf("got %d specs, want 2", len(ss))
	}
	// Registry order is preserved regardless of request order.
	if ss[0].ID != "fig2" || ss[1].ID != "table1" {
		t.Errorf("spec order: %s, %s", ss[0].ID, ss[1].ID)
	}
	for _, s := range ss {
		if len(s.WallNs) != 3 {
			t.Errorf("%s: %d samples, want 3", s.ID, len(s.WallNs))
		}
		if s.Title == "" {
			t.Errorf("%s: empty title", s.ID)
		}
		for _, w := range s.WallNs {
			if w <= 0 {
				t.Errorf("%s: non-positive wall sample %d", s.ID, w)
			}
		}
	}
	if ss[0].Phases == nil {
		t.Error("fig2: no phase breakdown captured")
	}
	if _, err := RunSampled([]string{"nope"}, 1, 1); err == nil {
		t.Error("unknown spec id accepted")
	}
}
