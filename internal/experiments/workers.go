package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/benchhist"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
)

// scalingWorkloads are the wide-frontier workloads the worker-scaling
// measurement runs on — the same set as the `engine` experiment and the
// psdf-bench -engine-workers sweep, so the three views of engine scaling
// stay comparable.
func scalingWorkloads() []*bench.Workload {
	return []*bench.Workload{bench.Fig7Shift(), bench.Stencil1D(), bench.TransposeSquare(), bench.TransposeRect()}
}

// MeasureWorkerScaling runs the scaling workloads at workers=1 and each
// requested worker count, reps times each, and returns per-workload
// best-of-reps wall times plus speedup ratios against workers=1. Every run
// must be clean and reproduce the sequential topology — a divergence is an
// engine determinism bug, not a measurement artifact, and aborts the
// record. Best-of is deliberate: the minimum over repetitions is the run
// least perturbed by scheduling noise, which is what a ratio of two
// measurements on the same host wants.
func MeasureWorkerScaling(counts []int, reps int) (map[string]*benchhist.WorkerScaling, error) {
	if reps < 1 {
		reps = 1
	}
	all := append([]int{1}, counts...)
	seen := map[int]bool{}
	var sweep []int
	for _, w := range all {
		if w < 1 {
			return nil, fmt.Errorf("bad worker count %d", w)
		}
		if !seen[w] {
			seen[w] = true
			sweep = append(sweep, w)
		}
	}
	sort.Ints(sweep)
	out := map[string]*benchhist.WorkerScaling{}
	for _, w := range scalingWorkloads() {
		ws := &benchhist.WorkerScaling{NsPerOp: map[int]int64{}}
		var baseline string
		for _, workers := range sweep {
			best := int64(0)
			for rep := 0; rep < reps; rep++ {
				_, g := w.Parse()
				m := cartesian.New(core.ScanInvariants(g))
				start := time.Now()
				res, err := core.Analyze(g, core.Options{Matcher: m, Workers: workers})
				el := time.Since(start).Nanoseconds()
				if err != nil {
					return nil, fmt.Errorf("scaling %s workers=%d: %w", w.Name, workers, err)
				}
				if !res.Clean() {
					return nil, fmt.Errorf("scaling %s workers=%d: not clean: %v", w.Name, workers, res.TopReasons())
				}
				if workers == 1 && rep == 0 {
					baseline = matchSummary(res)
				} else if got := matchSummary(res); got != baseline {
					return nil, fmt.Errorf("scaling %s workers=%d: topology diverged from sequential", w.Name, workers)
				}
				if best == 0 || el < best {
					best = el
				}
			}
			ws.NsPerOp[workers] = best
		}
		base := ws.NsPerOp[1]
		for _, workers := range sweep {
			if workers > 1 && ws.NsPerOp[workers] > 0 {
				if ws.Speedup == nil {
					ws.Speedup = map[int]float64{}
				}
				ws.Speedup[workers] = float64(base) / float64(ws.NsPerOp[workers])
			}
		}
		out[w.Name] = ws
	}
	return out, nil
}
