package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/benchhist"
	"repro/internal/cg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/lint"
)

// FingerprintOptions configures precision-fingerprint capture. The zero
// value is the production configuration; the knobs exist so tests (and the
// regression-gate acceptance fixture) can deliberately degrade precision
// and watch the fingerprint move.
type FingerprintOptions struct {
	// DisableHSMCaches turns off the HSM prover cache path — both the
	// match-decision memo in front of the prover (core.MatchMemo) and the
	// prover's own memo table — emulating a broken or disabled cache:
	// decisions stay identical, but the memo_hits/memo_misses facets
	// collapse to zero and prover_proofs climbs as every query re-proves,
	// which the bench gate flags as a precision-fingerprint change.
	DisableHSMCaches bool
	// MaxVisits, when > 0, lowers the engine's revisit budget before a
	// configuration gives up to ⊤. Small values force give-ups on looping
	// workloads — a genuine (soundness-preserving) precision loss: tops,
	// widenings and lint PSDF-E005 counts all move.
	MaxVisits int
}

// CaptureFingerprint analyzes one workload sequentially with the cartesian
// client and distills the run into its precision fingerprint: what was
// proved (matches, topology, clean terminals), what was given up (⊤
// configurations, widenings), how it was proved (simple vs HSM matches,
// cache behavior), and what the lint passes conclude. Sequential analysis
// is deterministic, so two captures of the same code on the same workload
// are facet-for-facet identical; any delta between commits is a real
// behavioral change.
func CaptureFingerprint(w *bench.Workload, opts FingerprintOptions) (*benchhist.Fingerprint, error) {
	prog, g := w.Parse()
	m := cartesian.New(core.ScanInvariants(g))
	if opts.DisableHSMCaches {
		m.Memo().Disable = true
		m.Prover().DisableCache = true
	}
	res, err := core.Analyze(g, core.Options{
		Matcher:          m,
		CGOpts:           cg.Options{Backend: cg.ArrayBackend},
		RecordCommBounds: true,
		MaxVisits:        opts.MaxVisits,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}

	fp := &benchhist.Fingerprint{
		Matches:   len(res.Matches),
		Finals:    len(res.Finals),
		Tops:      len(res.Tops),
		Configs:   res.Configs,
		Steps:     res.Steps,
		Widenings: res.Widenings,
		Topology:  matchSummary(res),

		SimpleMatches: m.SimpleMatches(),
		HSMAttempts:   m.HSMAttemptCount(),
		HSMMatches:    m.HSMMatchCount(),

		MemoHits:        m.Memo().HitCount(),
		MemoMisses:      m.Memo().MissCount(),
		ProverCacheHits: m.Prover().CacheHits,
		ProverProofs:    m.Prover().Proofs,
	}

	// Lint verdicts over the same analysis: finding counts per diagnostic
	// code plus the rank-bounds summary.
	rep := lint.Run(&lint.Target{Path: w.Name + ".mpl", Prog: prog, File: prog.File, G: g, Res: res}, lint.Options{})
	if len(rep.Diags) > 0 {
		fp.LintFindings = map[string]int{}
		for _, d := range rep.Diags {
			fp.LintFindings[d.Code]++
		}
	}
	fp.BoundsProven = rep.Bounds.Proven
	fp.BoundsByMatch = rep.Bounds.ProvenByMatch
	fp.BoundsViol = rep.Bounds.Violated
	fp.BoundsUnknown = rep.Bounds.Unknown
	fp.BoundsNonAff = rep.Bounds.NonAffine
	return fp, nil
}

// CaptureFingerprints captures the precision fingerprint of every workload
// in the evaluation suite (bench.All), keyed by workload name.
func CaptureFingerprints(opts FingerprintOptions) (map[string]*benchhist.Fingerprint, error) {
	out := map[string]*benchhist.Fingerprint{}
	for _, w := range bench.All() {
		fp, err := CaptureFingerprint(w, opts)
		if err != nil {
			return nil, err
		}
		out[w.Name] = fp
	}
	return out, nil
}
