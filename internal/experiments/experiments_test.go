package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsSucceed(t *testing.T) {
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 14 {
		t.Fatalf("tables = %d, want 14", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
		s := tb.String()
		if !strings.Contains(s, "paper") || !strings.Contains(s, "measured") {
			t.Errorf("%s: malformed rendering:\n%s", tb.ID, s)
		}
		// No row may report a failed reproduction.
		for _, r := range tb.Rows {
			if strings.HasPrefix(r.Measured, "NO") {
				t.Errorf("%s: row %q failed: %s", tb.ID, r.Name, r.Measured)
			}
		}
	}
}
