package symbolic

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/procset"
	"repro/internal/sym"
	"repro/internal/tri"
)

// harness builds a State with two blocked process sets at synthetic send
// and recv nodes, plus the given constraint facts.
type harness struct {
	st       *core.State
	sender   *core.ProcSet
	receiver *core.ProcSet
	g        *cfg.Graph
}

func exprOf(t *testing.T, src string) ast.Expr {
	t.Helper()
	prog, err := parser.Parse("e.mpl", "tmp := "+src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return prog.Stmts[0].(*ast.Assign).Rhs
}

// mkHarness builds the two-set state. Ranges are given as (lb, ub) sym
// expressions; facts apply additional constraints.
func mkHarness(t *testing.T, sLB, sUB, rLB, rUB sym.Expr, facts func(*core.State)) *harness {
	t.Helper()
	prog, err := parser.Parse("h.mpl", "send x -> 0\nrecv y <- 0")
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(prog)
	st := core.NewState(g.Entry, coreCGOpts())
	st.G.AddLE(coreZeroVar(), "np", -2) // np >= 2
	sendNode := g.Entry.SuccSeq()
	recvNode := sendNode.SuccSeq()

	all := st.Sets[0]
	all.Node = sendNode
	all.Blocked = true
	all.Range = procset.Set{LB: procset.NewBound(sLB), UB: procset.NewBound(sUB)}
	recvSet := st.SplitSet(all, all.Range, procset.Set{LB: procset.NewBound(rLB), UB: procset.NewBound(rUB)})
	recvSet.Node = recvNode
	recvSet.Blocked = true
	if facts != nil {
		facts(st)
	}
	return &harness{st: st, sender: all, receiver: recvSet, g: g}
}

func TestShiftMatchFullOverlap(t *testing.T) {
	// The paper's shift example (with the constant stride the var+c bound
	// representation supports): senders [0..k] with send -> id + 3,
	// receivers [3..m] with recv <- id - 3 and m = k + 6. All senders
	// match the receiver prefix [3..k+3]; the rest [k+4..m] stays blocked.
	h := mkHarness(t,
		sym.Const(0), sym.Var("k"),
		sym.Const(3), sym.Var("m"),
		func(st *core.State) {
			st.G.AddLE(coreZeroVar(), "k", 0) // k >= 0
			st.G.AddEq("m", "k", 6)           // m = k + 6
		})
	m := &Matcher{}
	plan, ok := m.Match(h.st, h.sender, exprOf(t, "id + 3"), h.receiver, exprOf(t, "id - 3"))
	if !ok {
		t.Fatal("match failed")
	}
	if plan.SenderMatched.String() != "[0..k]" {
		t.Errorf("sender matched = %v", plan.SenderMatched)
	}
	if len(plan.SenderRests) != 0 {
		t.Errorf("sender rests = %v", plan.SenderRests)
	}
	if plan.RecvMatched.String() != "[3..k + 3]" {
		t.Errorf("recv matched = %v", plan.RecvMatched)
	}
	if len(plan.RecvRests) != 1 || plan.RecvRests[0].String() != "[k + 4..m]" {
		t.Errorf("recv rests = %v", plan.RecvRests)
	}
	if m.MatchCount() != 1 || m.AttemptCount() != 1 {
		t.Errorf("instrumentation: %d/%d", m.MatchCount(), m.AttemptCount())
	}
}

func TestShiftMismatchedOffsets(t *testing.T) {
	// send -> id + 1 against recv <- id + 1 composes to id + 2: not the
	// identity, so no match.
	h := mkHarness(t, sym.Const(0), sym.Const(3), sym.Const(1), sym.Const(4), nil)
	m := &Matcher{}
	if _, ok := m.Match(h.st, h.sender, exprOf(t, "id + 1"), h.receiver, exprOf(t, "id + 1")); ok {
		t.Error("non-inverse offsets matched")
	}
}

func TestConstToConstMatch(t *testing.T) {
	// Sender [0] sends to 1; receiver [1..np-1] expects from 0: singleton
	// pair (0 -> 1); receiver splits.
	h := mkHarness(t, sym.Const(0), sym.Const(0), sym.Const(1), sym.VarPlus("np", -1),
		func(st *core.State) { st.G.AddLE(coreZeroVar(), "np", -3) })
	m := &Matcher{}
	plan, ok := m.Match(h.st, h.sender, exprOf(t, "1"), h.receiver, exprOf(t, "0"))
	if !ok {
		t.Fatal("match failed")
	}
	if plan.SenderMatched.String() != "[0]" || plan.RecvMatched.String() != "[1]" {
		t.Errorf("matched = %v -> %v", plan.SenderMatched, plan.RecvMatched)
	}
	if len(plan.RecvRests) != 1 || plan.RecvRests[0].String() != "[2..np - 1]" {
		t.Errorf("rests = %v", plan.RecvRests)
	}
}

func TestConstDestWrongReceiver(t *testing.T) {
	// Sender [0] sends to 5; receiver range is [1..3]: 5 outside.
	h := mkHarness(t, sym.Const(0), sym.Const(0), sym.Const(1), sym.Const(3), nil)
	m := &Matcher{}
	if _, ok := m.Match(h.st, h.sender, exprOf(t, "5"), h.receiver, exprOf(t, "0")); ok {
		t.Error("out-of-range destination matched")
	}
}

func TestVarDestMatch(t *testing.T) {
	// The Fig 5 shape: sender [0] sends to i (i = 2 known); receivers
	// [1..np-1] expect from 0. The receiver {i} is carved out.
	h := mkHarness(t, sym.Const(0), sym.Const(0), sym.Const(1), sym.VarPlus("np", -1),
		func(st *core.State) {
			st.G.AddLE(coreZeroVar(), "np", -4)
			st.G.SetConst(core.PV(0, "i"), 2)
			st.G.AddLE(core.PV(0, "i"), "np", -1)
		})
	m := &Matcher{}
	plan, ok := m.Match(h.st, h.sender, exprOf(t, "i"), h.receiver, exprOf(t, "0"))
	if !ok {
		t.Fatal("match failed")
	}
	if plan.RecvMatched.String() != "[ps0.i]" {
		t.Errorf("recv matched = %v", plan.RecvMatched)
	}
	if len(plan.RecvRests) != 2 {
		t.Errorf("rests = %v", plan.RecvRests)
	}
}

func TestPartialOverlapRejectedWhenUnknown(t *testing.T) {
	// Without ordering facts the intersection cannot be proved: no match
	// (exactness requirement).
	h := mkHarness(t, sym.Var("a"), sym.Var("b"), sym.Var("c"), sym.Var("d"), nil)
	m := &Matcher{}
	if _, ok := m.Match(h.st, h.sender, exprOf(t, "id + 1"), h.receiver, exprOf(t, "id - 1")); ok {
		t.Error("matched with unprovable ranges")
	}
}

func TestNonAffineExpressionsRejected(t *testing.T) {
	h := mkHarness(t, sym.Const(0), sym.Const(3), sym.Const(0), sym.Const(3), nil)
	m := &Matcher{}
	for _, src := range []string{"id * id", "id / 2", "id % 3", "2 * id"} {
		if _, ok := m.Match(h.st, h.sender, exprOf(t, src), h.receiver, exprOf(t, "id")); ok {
			t.Errorf("non-var+c expression %q matched", src)
		}
	}
}

func TestSelfMatchIdentityOnly(t *testing.T) {
	h := mkHarness(t, sym.Const(0), sym.VarPlus("np", -1), sym.Const(0), sym.VarPlus("np", -1), nil)
	m := &Matcher{}
	if !m.SelfMatch(h.st, h.sender, exprOf(t, "id"), exprOf(t, "id")) {
		t.Error("identity self-match failed")
	}
	if m.SelfMatch(h.st, h.sender, exprOf(t, "id + 1"), exprOf(t, "id - 1")) {
		t.Error("shift self-match should fail (not a permutation of the set)")
	}
	if m.SelfMatch(h.st, h.sender, exprOf(t, "0"), exprOf(t, "0")) {
		t.Error("constant self-match should fail")
	}
}

func TestSubtractCases(t *testing.T) {
	ctx := procset.Ctx{}
	whole := procset.Range(sym.Const(0), sym.Const(9))
	// Middle part: two rests.
	rests, ok := subtract(ctx, whole, procset.Range(sym.Const(3), sym.Const(5)))
	if !ok || len(rests) != 2 {
		t.Fatalf("rests = %v, %v", rests, ok)
	}
	if rests[0].String() != "[0..2]" || rests[1].String() != "[6..9]" {
		t.Errorf("rests = %v", rests)
	}
	// Prefix part.
	rests, ok = subtract(ctx, whole, procset.Range(sym.Const(0), sym.Const(4)))
	if !ok || len(rests) != 1 || rests[0].String() != "[5..9]" {
		t.Errorf("prefix rests = %v, %v", rests, ok)
	}
	// Whole part.
	rests, ok = subtract(ctx, whole, whole)
	if !ok || len(rests) != 0 {
		t.Errorf("whole rests = %v, %v", rests, ok)
	}
	// Not contained.
	if _, ok := subtract(ctx, whole, procset.Range(sym.Const(5), sym.Const(15))); ok {
		t.Error("non-subset subtraction succeeded")
	}
}

func TestIntersectHelpers(t *testing.T) {
	ctx := procset.Ctx{}
	a := procset.Range(sym.Const(0), sym.Const(5))
	b := procset.Range(sym.Const(3), sym.Const(9))
	in, ok := intersect(ctx, a, b)
	if !ok || in.String() != "[3..5]" {
		t.Errorf("intersect = %v, %v", in, ok)
	}
	if in.Empty(ctx) != tri.False {
		t.Error("intersection emptiness")
	}
	// Unknown ordering fails.
	c := procset.Range(sym.Var("u"), sym.Var("v"))
	if _, ok := intersect(ctx, a, c); ok {
		t.Error("intersect with unknown bounds succeeded")
	}
}

func coreCGOpts() cg.Options { return cg.Options{} }

func coreZeroVar() string { return cg.ZeroVar }
