// Package symbolic implements the paper's Section VII client analysis: the
// simple symbolic send-receive matcher for message expressions of the form
// var + c (including id + c and plain constants/variables), over process
// sets represented as symbolic ranges backed by constraint graphs.
//
// Matching implements the framework's two conditions (Section VI): the send
// expression surjectively maps the matched sender subset onto the matched
// receiver subset, and the composition of the receive and send expressions
// is the identity on the senders. For var+c expressions this reduces to
// range arithmetic decided by constraint-graph entailment.
package symbolic

import (
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/procset"
	"repro/internal/sym"
	"repro/internal/tri"
)

// Matcher is the Section VII client. The zero value is ready to use; the
// matcher is safe for concurrent use (its instrumentation counters are
// atomic and matching itself only reads the querying state).
type Matcher struct {
	matches  atomic.Int64 // successful match operations (instrumentation)
	attempts atomic.Int64 // match attempts
}

// MatchCount reports successful match operations.
func (m *Matcher) MatchCount() int { return int(m.matches.Load()) }

// AttemptCount reports match attempts.
func (m *Matcher) AttemptCount() int { return int(m.attempts.Load()) }

// Name identifies the client analysis.
func (m *Matcher) Name() string { return "symbolic" }

// classify splits an affine matcher expression e (over IDMarker) into its
// id coefficient and the residual offset expression.
func classify(e sym.Expr) (idCoef int64, offset sym.Expr) {
	idCoef = e.Coeff(core.IDMarker)
	offset = sym.Sub(e, sym.Scale(sym.Var(core.IDMarker), idCoef))
	return idCoef, offset
}

// Match implements core.Matcher.
func (m *Matcher) Match(st *core.State, sender *core.ProcSet, dest ast.Expr, receiver *core.ProcSet, src ast.Expr) (*core.MatchPlan, bool) {
	m.attempts.Add(1)
	d, ok := st.AffineExprID(sender, dest)
	if !ok {
		return nil, false
	}
	s, ok := st.AffineExprID(receiver, src)
	if !ok {
		return nil, false
	}
	dID, dOfs := classify(d)
	sID, sOfs := classify(s)
	if (dID != 0 && dID != 1) || (sID != 0 && sID != 1) {
		return nil, false
	}
	ctx := st.Ctx()
	S, R := sender.Range, receiver.Range

	var plan *core.MatchPlan
	switch {
	case dID == 1 && sID == 1:
		// send -> id + c, recv <- id + c'. Identity needs c + c' = 0.
		if !st.EntailsZero(sym.Add(dOfs, sOfs)) {
			return nil, false
		}
		plan = matchShift(st, ctx, S, R, dOfs)
	case dID == 0 && sID == 1:
		// All matched senders target the constant dOfs; the receiver at
		// dOfs expects sender dOfs + sOfs. Identity forces the matched
		// sender to be that single process.
		target := dOfs
		expectedSender := sym.Add(dOfs, sOfs)
		plan = matchSingletons(st, ctx, S, R, expectedSender, target)
	case dID == 1 && sID == 0:
		// Receivers name a fixed sender sOfs; senders target id + dOfs.
		// Identity: the sender sOfs maps to sOfs + dOfs, which must be the
		// matched receiver.
		expectedSender := sOfs
		target := sym.Add(sOfs, dOfs)
		plan = matchSingletons(st, ctx, S, R, expectedSender, target)
	default: // both constant
		// Identity on the sender singleton {sOfs} requires recv(send(x))=x:
		// the receiver dOfs expects sOfs, and sOfs targets dOfs.
		expectedSender := sOfs
		target := dOfs
		plan = matchSingletons(st, ctx, S, R, expectedSender, target)
	}
	if plan == nil {
		return nil, false
	}
	m.matches.Add(1)
	return plan, true
}

// matchShift handles the id+c / id-c case: the image of the senders is the
// sender range shifted by c; the matched receivers are the intersection of
// that image with the receiver range.
func matchShift(st *core.State, ctx procset.Ctx, S, R procset.Set, c sym.Expr) *core.MatchPlan {
	image := S.OffsetExpr(c)
	if !image.IsValid() {
		return nil
	}
	inter, ok := intersect(ctx, image, R)
	// Matching must be exact (Section VI): the matched subset has to be
	// provably non-empty, otherwise the leftover ranges would not exactly
	// represent the remaining blocked processes. Ambiguous boundary cases
	// are resolved by the engine's emptiness case-split instead.
	if !ok || !inter.IsValid() || inter.Empty(ctx) != tri.False {
		return nil
	}
	matchedSenders := inter.OffsetExpr(sym.Neg(c))
	if !matchedSenders.IsValid() {
		return nil
	}
	sRests, ok := subtract(ctx, S, matchedSenders)
	if !ok {
		return nil
	}
	rRests, ok := subtract(ctx, R, inter)
	if !ok {
		return nil
	}
	return &core.MatchPlan{
		SenderMatched: matchedSenders,
		SenderRests:   sRests,
		RecvMatched:   inter,
		RecvRests:     rRests,
	}
}

// matchSingletons handles the cases where the match pairs a single sender
// process with a single receiver process.
func matchSingletons(st *core.State, ctx procset.Ctx, S, R procset.Set, senderExpr, targetExpr sym.Expr) *core.MatchPlan {
	if _, _, ok := senderExpr.AsVarPlusConst(); !ok {
		return nil
	}
	if _, _, ok := targetExpr.AsVarPlusConst(); !ok {
		return nil
	}
	if S.Contains(ctx, senderExpr) != tri.True {
		return nil
	}
	if R.Contains(ctx, targetExpr) != tri.True {
		return nil
	}
	sm := procset.Singleton(senderExpr)
	rm := procset.Singleton(targetExpr)
	sRests, ok := subtract(ctx, S, sm)
	if !ok {
		return nil
	}
	rRests, ok := subtract(ctx, R, rm)
	if !ok {
		return nil
	}
	return &core.MatchPlan{
		SenderMatched: sm,
		SenderRests:   sRests,
		RecvMatched:   rm,
		RecvRests:     rRests,
	}
}

// intersect and subtract delegate to the shared procset range algebra.
func intersect(ctx procset.Ctx, a, b procset.Set) (procset.Set, bool) {
	return procset.Intersect(ctx, a, b)
}

func subtract(ctx procset.Ctx, whole, part procset.Set) ([]procset.Set, bool) {
	return procset.Subtract(ctx, whole, part)
}

// SelfMatch implements core.Matcher: the symbolic client only proves the
// trivial identity permutation (send -> id matched by recv <- id); richer
// permutations need the cartesian client.
func (m *Matcher) SelfMatch(st *core.State, ps *core.ProcSet, dest, src ast.Expr) bool {
	d, ok := st.AffineExprID(ps, dest)
	if !ok {
		return false
	}
	s, ok := st.AffineExprID(ps, src)
	if !ok {
		return false
	}
	dID, dOfs := classify(d)
	sID, sOfs := classify(s)
	if dID != 1 || sID != 1 {
		return false
	}
	return st.EntailsZero(dOfs) && st.EntailsZero(sOfs)
}

var _ core.Matcher = (*Matcher)(nil)
