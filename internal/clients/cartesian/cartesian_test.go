package cartesian_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/parser"
)

// analyzeCart runs the full analysis with the cartesian client.
func analyzeCart(t *testing.T, src string) (*core.Result, *cfg.Graph, *cartesian.Matcher) {
	t.Helper()
	prog, err := parser.Parse("test.mpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := cfg.Build(prog)
	m := cartesian.New(core.ScanInvariants(g))
	res, err := core.Analyze(g, core.Options{Matcher: m})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res, g, m
}

// Fig 6, square branch: every process exchanges with its transpose in an
// nrows x nrows grid. Modeled with send-then-recv (the engine's self-match
// rule, justified by eager buffering, performs the paper's Section VIII-B
// permutation proof).
const nascgSquareSrc = `
assume nrows >= 1
assume np == nrows * nrows
send x -> (id % nrows) * nrows + id / nrows
recv y <- (id % nrows) * nrows + id / nrows
print y
`

func TestNASCGSquareTranspose(t *testing.T) {
	res, g, m := analyzeCart(t, nascgSquareSrc)
	if !res.Clean() {
		t.Fatalf("analysis not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v, want 1 self-exchange", res.Matches)
	}
	match := res.Matches[0]
	if g.Node(match.SendNode).Kind != cfg.Send || g.Node(match.RecvNode).Kind != cfg.Recv {
		t.Errorf("matched nodes %v -> %v", g.Node(match.SendNode), g.Node(match.RecvNode))
	}
	if match.Sender.String() != "[0..np - 1]" || match.Receiver.String() != "[0..np - 1]" {
		t.Errorf("exchange ranges = %v -> %v, want whole set", match.Sender, match.Receiver)
	}
	if m.HSMMatchCount() == 0 {
		t.Error("expected the HSM prover to perform the match")
	}
}

// Fig 6, rectangular branch (ncols = 2*nrows).
const nascgRectSrc = `
assume nrows >= 1
assume ncols == 2 * nrows
assume np == 2 * nrows * nrows
send x -> id % 2 + 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows))
recv y <- id % 2 + 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows))
`

func TestNASCGRectTranspose(t *testing.T) {
	res, _, m := analyzeCart(t, nascgRectSrc)
	if !res.Clean() {
		t.Fatalf("analysis not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v, want 1", res.Matches)
	}
	if m.HSMMatchCount() == 0 {
		t.Error("expected HSM match")
	}
}

// The combined sendrecv statement also models the exchange.
const sendrecvTransposeSrc = `
assume nrows >= 1
assume np == nrows * nrows
sendrecv x -> (id % nrows) * nrows + id / nrows, y <- (id % nrows) * nrows + id / nrows
`

func TestSendRecvTranspose(t *testing.T) {
	res, _, _ := analyzeCart(t, sendrecvTransposeSrc)
	if !res.Clean() {
		t.Fatalf("analysis not clean: %v", res.TopReasons())
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v, want 1", res.Matches)
	}
}

// The cartesian client still handles everything the symbolic client does.
const fig2Src = `
assume np >= 3
if id == 0 then
  x := 5
  send x -> 1
  recv y <- 1
elif id == 1 then
  recv y <- 0
  send y -> 0
end
`

func TestCartesianSubsumesSymbolic(t *testing.T) {
	res, _, m := analyzeCart(t, fig2Src)
	if !res.Clean() {
		t.Fatalf("tops: %v", res.TopReasons())
	}
	if len(res.Matches) != 2 {
		t.Errorf("matches = %v", res.Matches)
	}
	if m.SimpleMatches() == 0 {
		t.Error("simple matcher should have handled the var+c matches")
	}
	if m.HSMMatchCount() != 0 {
		t.Errorf("HSM matches = %d, want 0", m.HSMMatchCount())
	}
}

// A non-permutation expression must NOT self-match: everyone sending to
// process 0 while trying to receive from 0 deadlocks (except the trivial
// np=1 case) and the analysis reports ⊤.
const badSelfSrc = `
assume np >= 2
send x -> 0
recv y <- 0
`

func TestNonPermutationRejected(t *testing.T) {
	res, _, _ := analyzeCart(t, badSelfSrc)
	if len(res.Tops) == 0 {
		t.Fatal("expected ⊤ for the non-permutation self exchange")
	}
}
