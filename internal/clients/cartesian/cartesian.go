// Package cartesian implements the paper's Section VIII client analysis:
// send-receive matching over cartesian process topologies using
// Hierarchical Sequence Maps. It extends the Section VII symbolic matcher —
// simple var+c patterns are still matched by range arithmetic — with HSM
// proofs of surjectivity (set-equality) and identity (sequence-equality)
// for expressions built from +, -, *, / and % over the process rank, such
// as the NAS-CG transpose and d-dimensional nearest-neighbor stencils.
package cartesian

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/hsm"
	"repro/internal/obs"
	"repro/internal/sym"
)

// Matcher is the Section VIII client analysis. It is safe for concurrent
// use: the embedded symbolic matcher and the match memo are
// concurrency-safe, and the stateful HSM prover (search counters + proof
// cache) runs under proveMu — only actual proof searches serialize, and
// those are rare because repeat queries are answered by the memo without
// touching the prover.
type Matcher struct {
	simple symbolic.Matcher
	ctx    *hsm.Ctx
	prover *hsm.Prover
	// proveMu serializes prover searches (and their Ctx-driven term
	// conversions) across engine workers.
	proveMu sync.Mutex

	// memo caches whole-set HSM match decisions. The HSM proof outcome is a
	// pure function of (identity HSMs, communication expressions, global
	// invariants): the conversions and prover searches never consult the
	// querying state's constraint graph. The identity HSMs are derived from
	// the sets' current ranges by idHSM, so the memo key is built after
	// idHSM succeeds and captures the ranges through the HSM keys; invFP
	// pins the invariants (fixed at construction).
	memo  core.MatchMemo
	invFP string

	// hsmMatches counts matches proved by HSM reasoning (instrumentation:
	// matches the simple client could not handle); hsmAttempts counts HSM
	// match attempts.
	hsmMatches  atomic.Int64
	hsmAttempts atomic.Int64
}

// HSMMatchCount reports matches proved by HSM reasoning.
func (m *Matcher) HSMMatchCount() int { return int(m.hsmMatches.Load()) }

// HSMAttemptCount reports HSM match attempts.
func (m *Matcher) HSMAttemptCount() int { return int(m.hsmAttempts.Load()) }

// New builds a cartesian matcher from the program's global invariants
// (collected with core.ScanInvariants): multiplicative equalities such as
// np = nrows*ncols become HSM normalization substitutions, and declared
// lower bounds discharge positivity side conditions.
func New(inv *core.Invariants) *Matcher {
	ctx := hsm.NewCtx()
	var fp []string
	for name, repl := range inv.Subst {
		ctx.WithInvariant(name, repl)
		fp = append(fp, name+"="+repl.Key())
	}
	for name, lb := range inv.LowerBounds {
		ctx.WithLowerBound(name, lb)
		fp = append(fp, fmt.Sprintf("%s>=%d", name, lb))
	}
	sort.Strings(fp)
	return &Matcher{ctx: ctx, prover: hsm.NewProver(ctx), invFP: strings.Join(fp, ",")}
}

// Name identifies the client analysis.
func (m *Matcher) Name() string { return "cartesian" }

// Prover exposes the underlying HSM prover (instrumentation).
func (m *Matcher) Prover() *hsm.Prover { return m.prover }

// ProverSearches reports the cumulative memo-missing prover searches.
// Safe to call concurrently with an in-flight analysis: the counter is an
// atomic the prover maintains under the search mutex. The engine's
// profiler and progress sampler read it live (interface-asserted, so core
// needs no hsm dependency).
func (m *Matcher) ProverSearches() int64 { return m.prover.Searches.Load() }

// ProverSearchNs reports cumulative wall time inside memo-missing prover
// searches, in nanoseconds. Concurrency-safe like ProverSearches.
func (m *Matcher) ProverSearchNs() int64 { return m.prover.SearchNs.Load() }

// SetObs attaches an observability tracer to the matcher's HSM prover:
// searches that miss the memo emit obs.PhaseProver spans on the prover lane
// of job pid. Call before the analysis starts (the prover is otherwise
// only touched under proveMu).
func (m *Matcher) SetObs(tr *obs.Tracer, pid int) {
	m.prover.Tracer = tr
	m.prover.TracePID = pid
}

// SimpleMatches reports how many matches the embedded Section VII matcher
// handled.
func (m *Matcher) SimpleMatches() int { return m.simple.MatchCount() }

// Memo exposes the match-decision cache (instrumentation).
func (m *Matcher) Memo() *core.MatchMemo { return &m.memo }

// hsmDecision runs the memoized surjectivity + identity proof for a
// whole-set match: send expression dest maps the set denoted by sIDH
// exactly onto the set denoted by rIDH, and composing the receive
// expression src with the send image is the identity on the senders.
func (m *Matcher) hsmDecision(sIDH, rIDH *hsm.HSM, dest, src ast.Expr) bool {
	key := core.MatchKey(m.invFP, sIDH.Key(), rIDH.Key(), dest.String(), src.String())
	if res, ok := m.memo.Lookup(key); ok {
		return res
	}
	m.proveMu.Lock()
	defer m.proveMu.Unlock()
	if res, ok := m.memo.Lookup(key); ok {
		return res // decided by a racing worker while we waited
	}
	res := func() bool {
		hd, err := m.ctx.Convert(dest, sIDH)
		if err != nil {
			return false
		}
		if !m.prover.SetEqual(hd, rIDH) {
			return false
		}
		comp, err := m.ctx.Convert(src, hd)
		if err != nil {
			return false
		}
		return m.prover.SeqEqual(comp, sIDH)
	}()
	m.memo.Store(key, res)
	return res
}

// Match first tries the Section VII symbolic matcher; if the expressions
// are beyond var+c, it attempts a whole-set HSM match: the send expression
// must map the sender set onto exactly the receiver set (set-equality) and
// compose with the receive expression to the identity (sequence-equality).
func (m *Matcher) Match(st *core.State, sender *core.ProcSet, dest ast.Expr, receiver *core.ProcSet, src ast.Expr) (*core.MatchPlan, bool) {
	if plan, ok := m.simple.Match(st, sender, dest, receiver, src); ok {
		return plan, ok
	}
	m.hsmAttempts.Add(1)
	sIDH, ok := m.idHSM(sender)
	if !ok {
		return nil, false
	}
	rIDH, ok := m.idHSM(receiver)
	if !ok {
		return nil, false
	}
	// Surjectivity (the send expression's image is exactly the receiver
	// set) and identity (applying the receive expression to the send image
	// yields each sender back), served from the memo on repeat queries. The
	// plan is rebuilt from the current ranges: the cached decision covers
	// only the proof.
	if !m.hsmDecision(sIDH, rIDH, dest, src) {
		return nil, false
	}
	m.hsmMatches.Add(1)
	return &core.MatchPlan{
		SenderMatched: sender.Range,
		RecvMatched:   receiver.Range,
	}, true
}

// SelfMatch proves a whole-set permutation exchange: dest maps the set onto
// itself (set-equality) with src inverting it (sequence-equality of the
// composition with the identity map) — exactly the paper's Section VIII-B
// transpose proofs.
func (m *Matcher) SelfMatch(st *core.State, ps *core.ProcSet, dest, src ast.Expr) bool {
	if m.simple.SelfMatch(st, ps, dest, src) {
		return true
	}
	m.hsmAttempts.Add(1)
	idh, ok := m.idHSM(ps)
	if !ok {
		return false
	}
	if !m.hsmDecision(idh, idh, dest, src) {
		return false
	}
	m.hsmMatches.Add(1)
	return true
}

// idHSM builds the identity HSM [lb : n, 1] for a process set, requiring
// globally meaningful bounds (no per-set variables) and a provably
// non-empty range.
func (m *Matcher) idHSM(ps *core.ProcSet) (*hsm.HSM, bool) {
	lb, ok := globalAtom(ps.Range.LB)
	if !ok {
		return nil, false
	}
	ub, ok := globalAtom(ps.Range.UB)
	if !ok {
		return nil, false
	}
	n := sym.AddConst(sym.Sub(ub, lb), 1)
	if !m.ctx.ProvePos(n) {
		return nil, false
	}
	return hsm.IDRange(lb, n), true
}

// globalAtom picks a bound atom that references no per-set (ps-prefixed)
// variables, so it is meaningful in the HSM context's global namespace.
func globalAtom(b interface{ Atoms() []sym.Expr }) (sym.Expr, bool) {
	for _, a := range b.Atoms() {
		global := true
		for _, v := range a.Vars() {
			if len(v) >= 2 && v[0] == 'p' && v[1] == 's' {
				global = false
				break
			}
		}
		if global {
			return a, true
		}
	}
	return sym.Zero, false
}

var _ core.Matcher = (*Matcher)(nil)
