// Package mpicfg implements the MPI-CFG baseline from the paper's related
// work (Shires et al, Section II): a sequential analysis that first connects
// every send to every receive and then prunes edges using purely sequential
// information (here: message tags and constant partner expressions that can
// never agree). It over-approximates the communication topology — the
// precision comparison against the pCFG analysis is experiment E9.
package mpicfg

import (
	"repro/internal/ast"
	"repro/internal/cfg"
)

// Edge is a possible send-receive communication edge.
type Edge struct {
	SendNode, RecvNode int
}

// Result is the MPI-CFG approximation of the topology.
type Result struct {
	// Edges are the surviving send->recv edges.
	Edges []Edge
	// Initial is the all-pairs edge count before pruning.
	Initial int
	// PrunedByTag and PrunedByConst count removed edges per rule.
	PrunedByTag   int
	PrunedByConst int
}

// Analyze builds the MPI-CFG communication edges for a program.
func Analyze(g *cfg.Graph) *Result {
	res := &Result{}
	var sends, recvs []*cfg.Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case cfg.Send:
			sends = append(sends, n)
		case cfg.Recv:
			recvs = append(recvs, n)
		case cfg.SendRecv:
			sends = append(sends, n)
			recvs = append(recvs, n)
		}
	}
	for _, s := range sends {
		for _, r := range recvs {
			res.Initial++
			if s.Tag != "" && r.Tag != "" && s.Tag != r.Tag {
				res.PrunedByTag++
				continue
			}
			if provablyDisjoint(s, r) {
				res.PrunedByConst++
				continue
			}
			res.Edges = append(res.Edges, Edge{SendNode: s.ID, RecvNode: r.ID})
		}
	}
	return res
}

// provablyDisjoint applies the sequential pruning rule: when both the send
// destination and the receive source are integer constants, the pair can
// only match if some rank d receives from some rank s consistently — a
// purely local refutation is possible only when the expressions are both
// constant AND mutually exclusive given that a process cannot be two ranks
// at once. With constant dest c and constant src c', the edge is feasible
// for any receiver rank == c whose expected sender == c'; sequential
// analysis cannot refute that, so only syntactically impossible self-sends
// (dest == src == same node's own constant recv...) are pruned. We
// implement the tag-style constant rule the MPI-CFG paper uses: constant
// destination must lie in [0, inf) and constant source likewise; negative
// constants are impossible ranks.
func provablyDisjoint(s, r *cfg.Node) bool {
	if c, ok := constOf(s.Dest); ok && c < 0 {
		return true
	}
	if c, ok := constOf(r.Src); ok && c < 0 {
		return true
	}
	return false
}

func constOf(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.Unary:
		if x.Op == ast.Neg {
			if v, ok := constOf(x.X); ok {
				return -v, true
			}
		}
	}
	return 0, false
}
