package mpicfg

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/parser"
)

func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := parser.Parse("t.mpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(cfg.Build(prog))
}

func TestAllPairs(t *testing.T) {
	// 2 sends x 2 recvs = 4 initial edges, none pruned.
	res := analyzeSrc(t, `
if id == 0 then
  send x -> 1
  send x -> 2
elif id == 1 then
  recv y <- 0
else
  recv y <- 0
end`)
	if res.Initial != 4 || len(res.Edges) != 4 {
		t.Errorf("initial=%d edges=%d, want 4/4", res.Initial, len(res.Edges))
	}
}

func TestTagPruning(t *testing.T) {
	res := analyzeSrc(t, `
if id == 0 then
  send x -> 1 : halo
  send x -> 2 : data
elif id == 1 then
  recv y <- 0 : halo
else
  recv y <- 0 : data
end`)
	if res.Initial != 4 {
		t.Fatalf("initial = %d", res.Initial)
	}
	if res.PrunedByTag != 2 || len(res.Edges) != 2 {
		t.Errorf("prunedByTag=%d edges=%d, want 2/2", res.PrunedByTag, len(res.Edges))
	}
}

func TestNegativeRankPruning(t *testing.T) {
	res := analyzeSrc(t, `
if id == 0 then
  send x -> -1
elif id == 1 then
  recv y <- 0
end`)
	if res.PrunedByConst != 1 || len(res.Edges) != 0 {
		t.Errorf("prunedByConst=%d edges=%d", res.PrunedByConst, len(res.Edges))
	}
}

func TestSendRecvCountsBothWays(t *testing.T) {
	res := analyzeSrc(t, `sendrecv x -> 1, y <- 1`)
	// The sendrecv node acts as both a send and a recv: one self edge.
	if res.Initial != 1 || len(res.Edges) != 1 {
		t.Errorf("initial=%d edges=%d", res.Initial, len(res.Edges))
	}
}

func TestOverApproximation(t *testing.T) {
	// MPI-CFG connects the root's send to BOTH recv sites even though only
	// one can match — the imprecision the pCFG analysis removes.
	res := analyzeSrc(t, `
if id == 0 then
  send x -> 1
elif id == 1 then
  recv y <- 0
else
  recv z <- 5
end`)
	if len(res.Edges) != 2 {
		t.Errorf("edges = %d, want 2 (over-approximate)", len(res.Edges))
	}
}
