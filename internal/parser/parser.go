// Package parser builds MPL abstract syntax trees from source text.
//
// The grammar (EBNF, ignoring whitespace and comments):
//
//	program  = { stmt } .
//	stmt     = "var" ident { "," ident }
//	         | ident ":=" expr
//	         | "if" expr "then" block { "elif" expr "then" block } [ "else" block ] "end"
//	         | "while" expr "do" block "end"
//	         | "for" ident ":=" expr "to" expr "do" block "end"
//	         | "send" expr "->" expr [ ":" ident ]
//	         | "recv" ident "<-" expr [ ":" ident ]
//	         | "sendrecv" expr "->" expr "," ident "<-" expr [ ":" ident ]
//	         | "print" expr | "assume" expr | "assert" expr | "skip" | ";" .
//	expr     = or ;  or = and { "||" and } ;  and = cmp { "&&" cmp } .
//	cmp      = sum [ ("=="|"!="|"<"|"<="|">"|">=") sum ] .
//	sum      = term { ("+"|"-") term } ;  term = unary { ("*"|"/"|"%") unary } .
//	unary    = [ "-" | "!" ] primary ;  primary = int | "true" | "false" | ident | "(" expr ")" .
package parser

import (
	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/source"
	"repro/internal/token"
)

// Parse parses src (named name in diagnostics) into a Program. The returned
// error summarizes all lexical and syntactic diagnostics, if any.
func Parse(name, src string) (*ast.Program, error) {
	file := source.NewFile(name, src)
	var diags source.DiagList
	toks := lexer.ScanAll(file, &diags)
	p := &parser{toks: toks, diags: &diags}
	stmts := p.parseBlock(token.EOF)
	prog := &ast.Program{Stmts: stmts, File: file}
	return prog, diags.Err()
}

// MustParse is Parse for known-good embedded programs; it panics on error.
func MustParse(name, src string) *ast.Program {
	prog, err := Parse(name, src)
	if err != nil {
		panic("parser.MustParse(" + name + "): " + err.Error())
	}
	return prog
}

type parser struct {
	toks  []lexer.Token
	pos   int
	prev  lexer.Token // last consumed token, for full-extent statement spans
	diags *source.DiagList
}

func (p *parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *parser) peek() lexer.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	p.prev = t
	return t
}

// spanTo extends a span from the given start to the end of the last consumed
// token, so statements and operator expressions cover their full source
// extent (diagnostics underline the whole construct, not just its keyword).
func (p *parser) spanTo(start source.Span) source.Span {
	return joinSpans(start, p.prev.Span)
}

// joinSpans covers everything from a's start to b's end.
func joinSpans(a, b source.Span) source.Span {
	if !a.IsValid() {
		return b
	}
	if !b.IsValid() || b.End.Before(a.End) {
		return a
	}
	return source.Span{Start: a.Start, End: b.End}
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) lexer.Token {
	if p.at(k) {
		return p.advance()
	}
	p.diags.Errorf(p.cur().Span, "expected %s, found %s", k, p.cur())
	return lexer.Token{Kind: k, Span: p.cur().Span}
}

// blockEnders lists tokens that terminate a statement block.
func isBlockEnd(k token.Kind) bool {
	switch k {
	case token.EOF, token.KwEnd, token.KwElse, token.KwElif:
		return true
	}
	return false
}

func (p *parser) parseBlock(until token.Kind) []ast.Stmt {
	var stmts []ast.Stmt
	for !p.at(until) && !isBlockEnd(p.cur().Kind) {
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			stmts = append(stmts, s)
		}
		if p.pos == before {
			// Error recovery: ensure forward progress.
			p.advance()
		}
	}
	return stmts
}

func (p *parser) parseStmt() ast.Stmt {
	t := p.cur()
	switch t.Kind {
	case token.Semicolon:
		p.advance()
		return nil
	case token.KwSkip:
		p.advance()
		return &ast.Skip{Sp: t.Span}
	case token.KwVar:
		return p.parseVarDecl()
	case token.Ident:
		return p.parseAssign()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwSend:
		return p.parseSend()
	case token.KwRecv:
		return p.parseRecv()
	case token.KwSendrecv:
		return p.parseSendRecv()
	case token.KwPrint:
		p.advance()
		return &ast.Print{Arg: p.parseExpr(), Sp: p.spanTo(t.Span)}
	case token.KwAssume:
		p.advance()
		return &ast.Assume{Cond: p.parseExpr(), Sp: p.spanTo(t.Span)}
	case token.KwAssert:
		p.advance()
		return &ast.Assert{Cond: p.parseExpr(), Sp: p.spanTo(t.Span)}
	}
	p.diags.Errorf(t.Span, "expected statement, found %s", t)
	return nil
}

func (p *parser) parseVarDecl() ast.Stmt {
	start := p.expect(token.KwVar)
	var names []string
	names = append(names, p.expect(token.Ident).Lit)
	for p.accept(token.Comma) {
		names = append(names, p.expect(token.Ident).Lit)
	}
	return &ast.VarDecl{Names: names, Sp: p.spanTo(start.Span)}
}

func (p *parser) parseAssign() ast.Stmt {
	name := p.expect(token.Ident)
	p.expect(token.Assign)
	rhs := p.parseExpr()
	return &ast.Assign{Name: name.Lit, Rhs: rhs, Sp: p.spanTo(name.Span)}
}

func (p *parser) parseIf() ast.Stmt {
	start := p.expect(token.KwIf)
	cond := p.parseExpr()
	p.expect(token.KwThen)
	then := p.parseBlock(token.KwEnd)
	var els []ast.Stmt
	switch {
	case p.at(token.KwElif):
		// Desugar "elif" into a nested if that shares the final "end".
		elifTok := p.cur()
		p.advance()
		inner := p.parseIfTail(elifTok.Span)
		els = []ast.Stmt{inner}
		return &ast.If{Cond: cond, Then: then, Else: els, Sp: p.spanTo(start.Span)}
	case p.accept(token.KwElse):
		els = p.parseBlock(token.KwEnd)
	}
	p.expect(token.KwEnd)
	return &ast.If{Cond: cond, Then: then, Else: els, Sp: p.spanTo(start.Span)}
}

// parseIfTail parses "expr then block (elif...|else...)? end" after an elif.
func (p *parser) parseIfTail(sp source.Span) ast.Stmt {
	cond := p.parseExpr()
	p.expect(token.KwThen)
	then := p.parseBlock(token.KwEnd)
	var els []ast.Stmt
	switch {
	case p.at(token.KwElif):
		elifTok := p.cur()
		p.advance()
		els = []ast.Stmt{p.parseIfTail(elifTok.Span)}
		return &ast.If{Cond: cond, Then: then, Else: els, Sp: p.spanTo(sp)}
	case p.accept(token.KwElse):
		els = p.parseBlock(token.KwEnd)
	}
	p.expect(token.KwEnd)
	return &ast.If{Cond: cond, Then: then, Else: els, Sp: p.spanTo(sp)}
}

func (p *parser) parseWhile() ast.Stmt {
	start := p.expect(token.KwWhile)
	cond := p.parseExpr()
	p.expect(token.KwDo)
	body := p.parseBlock(token.KwEnd)
	p.expect(token.KwEnd)
	return &ast.While{Cond: cond, Body: body, Sp: p.spanTo(start.Span)}
}

func (p *parser) parseFor() ast.Stmt {
	start := p.expect(token.KwFor)
	name := p.expect(token.Ident)
	p.expect(token.Assign)
	lo := p.parseExpr()
	p.expect(token.KwTo)
	hi := p.parseExpr()
	p.expect(token.KwDo)
	body := p.parseBlock(token.KwEnd)
	p.expect(token.KwEnd)
	return &ast.For{Var: name.Lit, Lo: lo, Hi: hi, Body: body, Sp: p.spanTo(start.Span)}
}

func (p *parser) parseTag() string {
	if p.accept(token.Colon) {
		return p.expect(token.Ident).Lit
	}
	return ""
}

func (p *parser) parseSend() ast.Stmt {
	start := p.expect(token.KwSend)
	val := p.parseExpr()
	p.expect(token.Arrow)
	dest := p.parseExpr()
	return &ast.Send{Value: val, Dest: dest, Tag: p.parseTag(), Sp: p.spanTo(start.Span)}
}

func (p *parser) parseRecv() ast.Stmt {
	start := p.expect(token.KwRecv)
	name := p.expect(token.Ident)
	p.expect(token.LArrow)
	src := p.parseExpr()
	return &ast.Recv{Name: name.Lit, Src: src, Tag: p.parseTag(), Sp: p.spanTo(start.Span)}
}

func (p *parser) parseSendRecv() ast.Stmt {
	start := p.expect(token.KwSendrecv)
	val := p.parseExpr()
	p.expect(token.Arrow)
	dest := p.parseExpr()
	p.expect(token.Comma)
	name := p.expect(token.Ident)
	p.expect(token.LArrow)
	src := p.parseExpr()
	return &ast.SendRecv{Value: val, Dest: dest, Name: name.Lit, Src: src, Tag: p.parseTag(), Sp: p.spanTo(start.Span)}
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing by explicit levels)

func (p *parser) parseExpr() ast.Expr { return p.parseOr() }

func (p *parser) parseOr() ast.Expr {
	l := p.parseAnd()
	for p.at(token.OrOr) {
		p.advance()
		r := p.parseAnd()
		l = &ast.Binary{Op: ast.LOr, L: l, R: r, Sp: joinSpans(l.Span(), r.Span())}
	}
	return l
}

func (p *parser) parseAnd() ast.Expr {
	l := p.parseCmp()
	for p.at(token.AndAnd) {
		p.advance()
		r := p.parseCmp()
		l = &ast.Binary{Op: ast.LAnd, L: l, R: r, Sp: joinSpans(l.Span(), r.Span())}
	}
	return l
}

var cmpOps = map[token.Kind]ast.BinOp{
	token.Eq:  ast.Eq,
	token.Neq: ast.Neq,
	token.Lt:  ast.Lt,
	token.Le:  ast.Le,
	token.Gt:  ast.Gt,
	token.Ge:  ast.Ge,
}

func (p *parser) parseCmp() ast.Expr {
	l := p.parseSum()
	if op, ok := cmpOps[p.cur().Kind]; ok {
		p.advance()
		r := p.parseSum()
		return &ast.Binary{Op: op, L: l, R: r, Sp: joinSpans(l.Span(), r.Span())}
	}
	return l
}

func (p *parser) parseSum() ast.Expr {
	l := p.parseTerm()
	for p.at(token.Plus) || p.at(token.Minus) {
		t := p.advance()
		op := ast.Add
		if t.Kind == token.Minus {
			op = ast.Sub
		}
		r := p.parseTerm()
		l = &ast.Binary{Op: op, L: l, R: r, Sp: joinSpans(l.Span(), r.Span())}
	}
	return l
}

func (p *parser) parseTerm() ast.Expr {
	l := p.parseUnary()
	for p.at(token.Star) || p.at(token.Slash) || p.at(token.Percent) {
		t := p.advance()
		var op ast.BinOp
		switch t.Kind {
		case token.Star:
			op = ast.Mul
		case token.Slash:
			op = ast.Div
		default:
			op = ast.Mod
		}
		r := p.parseUnary()
		l = &ast.Binary{Op: op, L: l, R: r, Sp: joinSpans(l.Span(), r.Span())}
	}
	return l
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.Minus:
		t := p.advance()
		x := p.parseUnary()
		return &ast.Unary{Op: ast.Neg, X: x, Sp: joinSpans(t.Span, x.Span())}
	case token.Not:
		t := p.advance()
		x := p.parseUnary()
		return &ast.Unary{Op: ast.LNot, X: x, Sp: joinSpans(t.Span, x.Span())}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.Int:
		p.advance()
		var v int64
		for _, c := range t.Lit {
			v = v*10 + int64(c-'0')
		}
		return &ast.IntLit{Value: v, Sp: t.Span}
	case token.KwTrue:
		p.advance()
		return &ast.BoolLit{Value: true, Sp: t.Span}
	case token.KwFalse:
		p.advance()
		return &ast.BoolLit{Value: false, Sp: t.Span}
	case token.Ident:
		p.advance()
		return &ast.Ident{Name: t.Lit, Sp: t.Span}
	case token.LParen:
		p.advance()
		e := p.parseExpr()
		p.expect(token.RParen)
		return e
	}
	p.diags.Errorf(t.Span, "expected expression, found %s", t)
	p.advance()
	return &ast.IntLit{Value: 0, Sp: t.Span}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
