package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("t.mpl", src)
	if err != nil {
		t.Fatalf("Parse(%q) error: %v", src, err)
	}
	return prog
}

func TestAssign(t *testing.T) {
	prog := parseOK(t, "x := 5")
	if len(prog.Stmts) != 1 {
		t.Fatalf("got %d statements, want 1", len(prog.Stmts))
	}
	a, ok := prog.Stmts[0].(*ast.Assign)
	if !ok {
		t.Fatalf("stmt = %T, want Assign", prog.Stmts[0])
	}
	if a.Name != "x" {
		t.Errorf("name = %q", a.Name)
	}
	if lit, ok := a.Rhs.(*ast.IntLit); !ok || lit.Value != 5 {
		t.Errorf("rhs = %v", a.Rhs)
	}
}

func TestVarDecl(t *testing.T) {
	prog := parseOK(t, "var x, y, z")
	d := prog.Stmts[0].(*ast.VarDecl)
	if len(d.Names) != 3 || d.Names[2] != "z" {
		t.Errorf("names = %v", d.Names)
	}
}

func TestPrecedence(t *testing.T) {
	cases := map[string]string{
		"x := 1 + 2 * 3":          "1 + 2 * 3",
		"x := (1 + 2) * 3":        "(1 + 2) * 3",
		"x := 1 - 2 - 3":          "1 - 2 - 3", // left associative
		"x := id % nrows * nrows": "id % nrows * nrows",
		"x := a / b / c":          "a / b / c",
	}
	for src, want := range cases {
		prog := parseOK(t, src)
		got := prog.Stmts[0].(*ast.Assign).Rhs.String()
		if got != want {
			t.Errorf("Parse(%q) rhs = %q, want %q", src, got, want)
		}
	}
}

func TestLeftAssociativity(t *testing.T) {
	prog := parseOK(t, "x := 10 - 4 - 3")
	b := prog.Stmts[0].(*ast.Assign).Rhs.(*ast.Binary)
	if b.Op != ast.Sub {
		t.Fatalf("top op = %v", b.Op)
	}
	if _, ok := b.L.(*ast.Binary); !ok {
		t.Errorf("expected left-nested subtraction, got %v", b)
	}
}

func TestIfElse(t *testing.T) {
	prog := parseOK(t, `
if id == 0 then
  x := 1
else
  x := 2
end`)
	s := prog.Stmts[0].(*ast.If)
	if len(s.Then) != 1 || len(s.Else) != 1 {
		t.Fatalf("then=%d else=%d", len(s.Then), len(s.Else))
	}
	if s.Cond.String() != "id == 0" {
		t.Errorf("cond = %q", s.Cond.String())
	}
}

func TestElifDesugar(t *testing.T) {
	prog := parseOK(t, `
if id == 0 then
  x := 1
elif id == 1 then
  x := 2
else
  x := 3
end`)
	outer := prog.Stmts[0].(*ast.If)
	if len(outer.Else) != 1 {
		t.Fatalf("outer else = %v", outer.Else)
	}
	inner, ok := outer.Else[0].(*ast.If)
	if !ok {
		t.Fatalf("inner = %T, want If", outer.Else[0])
	}
	if inner.Cond.String() != "id == 1" || len(inner.Else) != 1 {
		t.Errorf("inner if wrong: cond=%q else=%v", inner.Cond.String(), inner.Else)
	}
}

func TestWhile(t *testing.T) {
	prog := parseOK(t, "while i <= np - 1 do i := i + 1 end")
	w := prog.Stmts[0].(*ast.While)
	if w.Cond.String() != "i <= np - 1" || len(w.Body) != 1 {
		t.Errorf("while = %v %d", w.Cond, len(w.Body))
	}
}

func TestFor(t *testing.T) {
	prog := parseOK(t, "for i := 1 to np - 1 do send x -> i end")
	f := prog.Stmts[0].(*ast.For)
	if f.Var != "i" || f.Lo.String() != "1" || f.Hi.String() != "np - 1" {
		t.Errorf("for header wrong: %v", f)
	}
	if _, ok := f.Body[0].(*ast.Send); !ok {
		t.Errorf("body = %T", f.Body[0])
	}
}

func TestSendRecv(t *testing.T) {
	prog := parseOK(t, `
send x -> id + 1
recv y <- id - 1
receive z <- 0
sendrecv x -> p, y <- p`)
	if s := prog.Stmts[0].(*ast.Send); s.Dest.String() != "id + 1" {
		t.Errorf("send dest = %q", s.Dest.String())
	}
	if r := prog.Stmts[1].(*ast.Recv); r.Name != "y" || r.Src.String() != "id - 1" {
		t.Errorf("recv = %v", r)
	}
	if r := prog.Stmts[2].(*ast.Recv); r.Name != "z" {
		t.Errorf("receive alias failed: %v", r)
	}
	sr := prog.Stmts[3].(*ast.SendRecv)
	if sr.Name != "y" || sr.Dest.String() != "p" || sr.Src.String() != "p" {
		t.Errorf("sendrecv = %v", sr)
	}
}

func TestTags(t *testing.T) {
	prog := parseOK(t, "send x -> 1 : halo\nrecv y <- 0 : halo")
	if s := prog.Stmts[0].(*ast.Send); s.Tag != "halo" {
		t.Errorf("send tag = %q", s.Tag)
	}
	if r := prog.Stmts[1].(*ast.Recv); r.Tag != "halo" {
		t.Errorf("recv tag = %q", r.Tag)
	}
}

func TestAssumeAssertPrintSkip(t *testing.T) {
	prog := parseOK(t, "assume np >= 2\nassert x == 5\nprint x\nskip")
	if _, ok := prog.Stmts[0].(*ast.Assume); !ok {
		t.Errorf("stmt0 = %T", prog.Stmts[0])
	}
	if _, ok := prog.Stmts[1].(*ast.Assert); !ok {
		t.Errorf("stmt1 = %T", prog.Stmts[1])
	}
	if _, ok := prog.Stmts[2].(*ast.Print); !ok {
		t.Errorf("stmt2 = %T", prog.Stmts[2])
	}
	if _, ok := prog.Stmts[3].(*ast.Skip); !ok {
		t.Errorf("stmt3 = %T", prog.Stmts[3])
	}
}

func TestBooleanOps(t *testing.T) {
	prog := parseOK(t, "if a < b && !(c == d) || e >= f then skip end")
	cond := prog.Stmts[0].(*ast.If).Cond.(*ast.Binary)
	if cond.Op != ast.LOr {
		t.Errorf("top op = %v, want ||", cond.Op)
	}
}

func TestUnaryMinus(t *testing.T) {
	prog := parseOK(t, "x := -y + 1")
	rhs := prog.Stmts[0].(*ast.Assign).Rhs.(*ast.Binary)
	if rhs.Op != ast.Add {
		t.Fatalf("op = %v", rhs.Op)
	}
	if _, ok := rhs.L.(*ast.Unary); !ok {
		t.Errorf("left = %T, want Unary", rhs.L)
	}
}

func TestNestedBlocks(t *testing.T) {
	prog := parseOK(t, `
if id == 0 then
  for i := 1 to np - 1 do
    if i % 2 == 0 then
      send x -> i
    end
  end
end`)
	outer := prog.Stmts[0].(*ast.If)
	f := outer.Then[0].(*ast.For)
	inner := f.Body[0].(*ast.If)
	if _, ok := inner.Then[0].(*ast.Send); !ok {
		t.Errorf("deep nesting lost: %T", inner.Then[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"if x then",              // missing end
		"x :=",                   // missing expression
		"send x",                 // missing arrow
		"recv 5 <- 0",            // recv target must be ident
		"for i := 1 do skip end", // missing "to"
		"x := ((1)",              // unbalanced paren
		") x := 1",               // stray token
	}
	for _, src := range bad {
		if _, err := Parse("t.mpl", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestErrorRecoveryFindsMultiple(t *testing.T) {
	_, err := Parse("t.mpl", "x := @\ny := $\n")
	if err == nil {
		t.Fatal("want error")
	}
	// Both bad characters should be reported.
	if !strings.Contains(err.Error(), "1:") || !strings.Contains(err.Error(), "2:") {
		t.Errorf("error does not mention both lines: %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("bad.mpl", "if then")
}

func TestFormatRoundTrip(t *testing.T) {
	src := `assume np >= 3
if id == 0 then
  x := 5
  send x -> 1
else
  recv y <- 0
  print y
end`
	prog := parseOK(t, src)
	formatted := ast.Format(prog.Stmts)
	prog2 := parseOK(t, formatted)
	if got := ast.Format(prog2.Stmts); got != formatted {
		t.Errorf("format not stable:\n%s\nvs\n%s", formatted, got)
	}
}

func TestSemicolonsAllowed(t *testing.T) {
	prog := parseOK(t, "x := 1; y := 2;")
	if len(prog.Stmts) != 2 {
		t.Errorf("got %d stmts, want 2", len(prog.Stmts))
	}
}

func TestFullExtentSpans(t *testing.T) {
	src := "send x + 1 -> id + 1 : tag\nif id == 0 then\n  x := y * 2\nend\n"
	prog := parseOK(t, src)

	// Statement spans cover keyword through last token.
	snd := prog.Stmts[0].(*ast.Send)
	if sp := snd.Span(); sp.Start.Col != 1 || sp.End.Line != 1 || sp.End.Col != 27 {
		t.Errorf("send span = %s, want 1:1-1:27", sp)
	}
	iff := prog.Stmts[1].(*ast.If)
	if sp := iff.Span(); sp.Start.Line != 2 || sp.End.Line != 4 || sp.End.Col != 4 {
		t.Errorf("if span = %s, want 2:1-4:4", sp)
	}
	asn := iff.Then[0].(*ast.Assign)
	if sp := asn.Span(); sp.Start.Col != 3 || sp.End.Col != 13 {
		t.Errorf("assign span = %s, want 3:3-3:13", sp)
	}

	// Expression spans cover both operands, not just the operator token.
	dest := snd.Dest.(*ast.Binary)
	if sp := dest.Span(); sp.Start.Col != 15 || sp.End.Col != 21 {
		t.Errorf("dest expr span = %s, want 1:15-1:21", sp)
	}
	cond := iff.Cond.(*ast.Binary)
	if sp := cond.Span(); sp.Start.Col != 4 || sp.End.Col != 11 {
		t.Errorf("cond span = %s, want 2:4-2:11", sp)
	}
}
