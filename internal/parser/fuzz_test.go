package parser

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
)

// FuzzParse is the parser round-trip property: on any input the parser
// either rejects with an error or produces an AST whose pretty-print
// re-parses to the same pretty-print (Format is a fixpoint of
// Parse∘Format). Panics anywhere in the lexer/parser/formatter fail the
// fuzz run. Seeds come from the curated workloads plus the shared fuzz
// corpus under testdata/fuzz/.
func FuzzParse(f *testing.F) {
	for _, dir := range []string{"../../testdata", "../../testdata/fuzz", "../../testdata/diffbugs"} {
		paths, err := filepath.Glob(filepath.Join(dir, "*.mpl"))
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	f.Add("assume np >= 2\nif id == 0 then\n  send 1 -> 1\nelif id == 1 then\n  recv x <- 0\nend\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz.mpl", src)
		if err != nil {
			return
		}
		printed := ast.Format(prog.Stmts)
		prog2, err := Parse("fuzz2.mpl", printed)
		if err != nil {
			t.Fatalf("pretty-print does not re-parse: %v\n--- source\n%s\n--- printed\n%s", err, src, printed)
		}
		if again := ast.Format(prog2.Stmts); again != printed {
			t.Fatalf("pretty-print is not a fixpoint:\n--- first\n%s\n--- second\n%s", printed, again)
		}
	})
}
