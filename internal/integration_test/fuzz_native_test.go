package integration_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/sem"
)

// FuzzAnalyze is the no-panic property of the full analysis pipeline: any
// semantically valid program, however mangled by the mutator, must either
// analyze or fail with an error — never panic, and never blow the (tight)
// step budget set here. Seeds are generator-derived (the mutator then
// explores around grammatically interesting programs rather than from
// scratch) plus the shared corpus under testdata/fuzz/.
func FuzzAnalyze(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(gen.New(rand.New(rand.NewSource(seed)), gen.Config{}).Src)
		f.Add(gen.New(rand.New(rand.NewSource(seed)), gen.Config{Phases: 2, Decor: 4}).Src)
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "fuzz", "*.mpl"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fuzz.mpl", src)
		if err != nil {
			return
		}
		if _, err := sem.Check(prog); err != nil {
			return
		}
		g := cfg.Build(prog)
		opts := core.Options{
			Matcher:   cartesian.New(core.ScanInvariants(g)),
			MaxVisits: 8,
			MaxSteps:  20000,
		}
		res, err := core.Analyze(g, opts)
		if err == nil && res == nil {
			t.Fatal("Analyze returned nil result without an error")
		}
	})
}
