package integration_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/differ"
	"repro/internal/gen"
)

// The integration fuzz property rides on the shared generator
// (internal/gen) and differential harness (internal/differ): an
// undecorated single-phase program from the classic shape families must
// triage exactly — the analysis stays clean and its concretized topology
// equals the explicit-state oracle at every checked np, under both send
// models. This is the strongest end-to-end property in the suite: any
// unsoundness in matching, splitting, merging or widening shows up as a
// divergence. (Decorated multi-phase programs may legitimately triage as
// precision losses; the differ's own sweep covers those.)
func TestGeneratedFamiliesValidateExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz harness skipped in -short mode")
	}
	families := []gen.Family{
		gen.FamilyPairs, gen.FamilyBroadcast, gen.FamilyShift, gen.FamilyGather,
	}
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		cfg := gen.Config{
			Families: []gen.Family{families[r.Intn(len(families))]},
			Phases:   1,
			Decor:    -1,
		}
		p := gen.New(r, cfg)
		for _, nb := range []bool{false, true} {
			f := differ.Check(p.Src, differ.Options{
				Core: core.Options{NonBlockingSends: nb},
				// The sequential triage is the property; the parallel
				// engines are screened by the differ's own sweep tests.
				SkipEngineCompare: nb,
			})
			if f.Class != differ.ClassOK {
				t.Errorf("seed %d (nb=%v, %v): %s\n%s", seed, nb, p.Families, f, p.Src)
			}
		}
	}
}
