package integration_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/validate"
)

// The fuzz harness generates random-but-deadlock-free message-passing
// programs from structural templates, analyzes them symbolically, and
// requires the topology to concretize exactly to the simulator's ground
// truth. This is the strongest end-to-end property in the suite: any
// unsoundness in matching, splitting, merging or widening shows up as a
// topology mismatch.

// genPairs emits a program where disjoint rank pairs exchange one message
// each (every rank participates in at most one pair, so any schedule is
// deadlock-free).
func genPairs(r *rand.Rand, np int) string {
	ranks := r.Perm(np)
	nPairs := 1 + r.Intn(np/2)
	var b strings.Builder
	fmt.Fprintf(&b, "assume np >= %d\n", np)
	for i := 0; i < nPairs; i++ {
		s, d := ranks[2*i], ranks[2*i+1]
		fmt.Fprintf(&b, "if id == %d then\n  send x -> %d\nend\n", s, d)
		fmt.Fprintf(&b, "if id == %d then\n  recv y <- %d\nend\n", d, s)
	}
	return b.String()
}

// genBroadcast emits a root-to-subrange broadcast with a random root
// outside the range.
func genBroadcast(r *rand.Rand, np int) string {
	lo := 1 + r.Intn(np-2)
	hi := lo + r.Intn(np-lo)
	var b strings.Builder
	fmt.Fprintf(&b, "assume np >= %d\n", np)
	fmt.Fprintf(&b, "if id == 0 then\n  for i := %d to %d do\n    send x -> i\n  end\n", lo, hi)
	fmt.Fprintf(&b, "elif id >= %d then\n  if id <= %d then\n    recv y <- 0\n  end\nend\n", lo, hi)
	return b.String()
}

// genShift emits the paper's Fig 7 shift pattern offset to start at a
// random rank: the first sender, recv-then-send middles, and a final
// receiver. (Send-first orderings under the blocking model are a known
// imprecision — the analysis soundly reports ⊤ — and are exercised by the
// dedicated non-blocking tests instead.)
func genShift(r *rand.Rand, np int) string {
	lo := r.Intn(np - 3)
	var b strings.Builder
	fmt.Fprintf(&b, "assume np >= %d\n", np)
	fmt.Fprintf(&b, "if id == %d then\n  send x -> id + 1\n", lo)
	fmt.Fprintf(&b, "elif id >= %d then\n", lo+1)
	b.WriteString("  if id <= np - 2 then\n    recv y <- id - 1\n    send x -> id + 1\n  else\n    recv y <- id - 1\n  end\nend\n")
	return b.String()
}

// genGather emits a subrange-to-root gather.
func genGather(r *rand.Rand, np int) string {
	lo := 1 + r.Intn(np-2)
	hi := lo + r.Intn(np-lo)
	var b strings.Builder
	fmt.Fprintf(&b, "assume np >= %d\n", np)
	fmt.Fprintf(&b, "if id == 0 then\n  for i := %d to %d do\n    recv y <- i\n  end\n", lo, hi)
	fmt.Fprintf(&b, "elif id >= %d then\n  if id <= %d then\n    send x -> 0\n  end\nend\n", lo, hi)
	return b.String()
}

func TestQuickRandomProgramsValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz harness skipped in -short mode")
	}
	generators := []func(*rand.Rand, int) string{genPairs, genBroadcast, genShift, genGather}
	cfgQ := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np := 6 + r.Intn(5) // 6..10
		gen := generators[r.Intn(len(generators))]
		src := gen(r, np)

		prog, err := parser.Parse("fuzz.mpl", src)
		if err != nil {
			t.Logf("seed %d: parse error: %v\n%s", seed, err, src)
			return false
		}
		g := cfg.Build(prog)
		// Exercise both send models.
		for _, nb := range []bool{false, true} {
			m := cartesian.New(core.ScanInvariants(g))
			res, err := core.Analyze(g, core.Options{Matcher: m, NonBlockingSends: nb})
			if err != nil {
				t.Logf("seed %d (nb=%v): analyze error: %v\n%s", seed, nb, err, src)
				return false
			}
			if !res.Clean() {
				t.Logf("seed %d (nb=%v): not clean: %v\n%s", seed, nb, res.TopReasons(), src)
				return false
			}
			if err := validate.Check(g, res, np, nil); err != nil {
				t.Logf("seed %d (nb=%v): %v\n%s", seed, nb, err, src)
				return false
			}
			// And at a larger np than generated for, where the program's
			// assume still holds.
			if err := validate.Check(g, res, np+3, nil); err != nil {
				t.Logf("seed %d (nb=%v) np+3: %v\n%s", seed, nb, err, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Error(err)
	}
}
