package integration_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the repo's commands into a temp dir.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

func TestCLIPsdfOnTestdata(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf")
	root := repoRoot(t)
	cases := []struct {
		file string
		args []string
		want []string
		fail bool
	}{
		{"mdcask.mpl", nil, []string{"exchange-with-root", "verify: ok"}, false},
		{"shift1d.mpl", nil, []string{"topology: shift", "[1..np - 3]"}, false},
		{"exchange.mpl", nil, []string{"always outputs 5"}, false},
		{"fanout.mpl", []string{"-stats"}, []string{"broadcast", "stats:"}, false},
		{"nascg_square.mpl", nil, []string{"permutation"}, false},
		{"nascg_rect.mpl", nil, []string{"permutation"}, false},
		{"leaky.mpl", nil, []string{"message-leak"}, true},
		{"sendfirst_shift.mpl", []string{"-nonblocking"}, []string{"topology: shift"}, false},
		{"mdcask.mpl", []string{"-client", "symbolic"}, []string{"exchange-with-root"}, false},
		{"mdcask.mpl", []string{"-backend", "map"}, []string{"exchange-with-root"}, false},
		{"mdcask.mpl", []string{"-dot"}, []string{"digraph"}, false},
		{"mdcask.mpl", []string{"-cfg"}, []string{"digraph", "send x -> i"}, false},
	}
	for _, c := range cases {
		args := append(append([]string{}, c.args...), filepath.Join(root, "testdata", c.file))
		out, err := exec.Command(bin, args...).CombinedOutput()
		if c.fail && err == nil {
			t.Errorf("psdf %v: expected nonzero exit", args)
		}
		if !c.fail && err != nil {
			t.Errorf("psdf %v: %v\n%s", args, err, out)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(string(out), w) {
				t.Errorf("psdf %v: output missing %q:\n%s", args, w, out)
			}
		}
	}
}

func TestCLIPsdfRun(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf-run")
	root := repoRoot(t)
	out, err := exec.Command(bin, "-np", "5", filepath.Join(root, "testdata", "mdcask.mpl")).CombinedOutput()
	if err != nil {
		t.Fatalf("psdf-run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "messages=8") {
		t.Errorf("psdf-run output:\n%s", out)
	}
	// Transpose with env bindings.
	out, err = exec.Command(bin, "-np", "9", "-env", "nrows=3",
		filepath.Join(root, "testdata", "nascg_square.mpl")).CombinedOutput()
	if err != nil {
		t.Fatalf("psdf-run transpose: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "messages=9") {
		t.Errorf("psdf-run transpose output:\n%s", out)
	}
	// The leaky program reports the leak but exits zero (no deadlock).
	out, err = exec.Command(bin, "-np", "4", filepath.Join(root, "testdata", "leaky.mpl")).CombinedOutput()
	if err != nil {
		t.Fatalf("psdf-run leaky: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "LEAKED") {
		t.Errorf("psdf-run leaky output:\n%s", out)
	}
}

func TestCLIPsdfBenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf-bench")
	dir := t.TempDir()
	cmd := exec.Command(bin, "-exp", "table1")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("psdf-bench: %v\n%s", err, out)
	}
	for _, w := range []string{"Table I", "paper", "measured", "yes", "wrote BENCH_table1.json"} {
		if !strings.Contains(string(out), w) {
			t.Errorf("psdf-bench output missing %q:\n%s", w, out)
		}
	}
	// The machine-readable record lands in the working directory with the
	// stable schema fields.
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_table1.json"))
	if err != nil {
		t.Fatalf("BENCH_table1.json: %v", err)
	}
	for _, w := range []string{`"spec": "table1"`, `"wall_ns"`, `"rows"`, `"phases"`} {
		if !strings.Contains(string(data), w) {
			t.Errorf("BENCH_table1.json missing %s:\n%s", w, data)
		}
	}
	// Unknown experiment id exits nonzero.
	if _, err := exec.Command(bin, "-exp", "nope").CombinedOutput(); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestCLITraceWorkflow drives the full observability loop: psdf-run
// -analyze -trace writes a Chrome trace and a metrics snapshot, and `psdf
// trace` summarizes and validates the trace.
func TestCLITraceWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	runBin := buildTool(t, "psdf-run")
	psdfBin := buildTool(t, "psdf")
	root := repoRoot(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	jsonl := filepath.Join(dir, "trace.jsonl")
	metrics := filepath.Join(dir, "metrics.prom")

	out, err := exec.Command(runBin, "-analyze",
		"-trace", trace, "-trace-jsonl", jsonl, "-metrics-out", metrics,
		filepath.Join(root, "testdata", "nascg_square.mpl"),
		filepath.Join(root, "testdata", "mdcask.mpl")).CombinedOutput()
	if err != nil {
		t.Fatalf("psdf-run -trace: %v\n%s", err, out)
	}
	for _, w := range []string{"phases:", "match-memo:", "hit rate"} {
		if !strings.Contains(string(out), w) {
			t.Errorf("psdf-run output missing %q:\n%s", w, out)
		}
	}
	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	for _, w := range []string{"psdf_engine_steps_total", "psdf_match_memo_total"} {
		if !strings.Contains(string(prom), w) {
			t.Errorf("metrics snapshot missing %s", w)
		}
	}

	// Summarize both formats.
	for _, path := range []string{trace, jsonl} {
		out, err := exec.Command(psdfBin, "trace", path).CombinedOutput()
		if err != nil {
			t.Fatalf("psdf trace %s: %v\n%s", path, err, out)
		}
		for _, w := range []string{"phase", "transfer", "hottest configurations"} {
			if !strings.Contains(string(out), w) {
				t.Errorf("psdf trace %s missing %q:\n%s", path, w, out)
			}
		}
	}
	// Validation passes on a well-formed trace.
	out, err = exec.Command(psdfBin, "trace", "-check", trace).CombinedOutput()
	if err != nil {
		t.Fatalf("psdf trace -check: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ok (") {
		t.Errorf("psdf trace -check output:\n%s", out)
	}
	// A truncated trace fails validation.
	bad := filepath.Join(dir, "bad.jsonl")
	lines := strings.SplitN(string(mustRead(t, jsonl)), "\n", 3)
	if err := os.WriteFile(bad, []byte(lines[0]+"\n{\"broken\":\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Command(psdfBin, "trace", "-check", bad).CombinedOutput(); err == nil {
		t.Error("psdf trace -check accepted a corrupt trace")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCLIPsdfLint exercises the lint subcommand over the seeded-bug corpus
// and the clean programs: exit codes, format selection, and that every
// seeded bug is flagged with its expected code and a file:line:col span.
func TestCLIPsdfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf")
	root := repoRoot(t)
	bugs := []struct {
		file string
		code string
	}{
		{"offbyone_shift.mpl", "PSDF-E004"},
		{"tag_mismatch.mpl", "PSDF-E003"},
		{"leak_extra.mpl", "PSDF-E001"},
		{"unsupported_cond.mpl", "PSDF-E005"},
	}
	for _, c := range bugs {
		path := filepath.Join(root, "testdata", "bugs", c.file)
		out, err := exec.Command(bin, "lint", path).CombinedOutput()
		if err == nil {
			t.Errorf("psdf lint %s: expected nonzero exit\n%s", c.file, out)
		}
		if !strings.Contains(string(out), c.code) {
			t.Errorf("psdf lint %s: output missing %s:\n%s", c.file, c.code, out)
		}
		if !strings.Contains(string(out), c.file+":") {
			t.Errorf("psdf lint %s: output missing file:line:col location:\n%s", c.file, out)
		}
	}
	// The dead-branch bug is warning-only: findings print but exit is zero.
	out, err := exec.Command(bin, "lint",
		filepath.Join(root, "testdata", "bugs", "dead_branch.mpl")).CombinedOutput()
	if err != nil {
		t.Errorf("psdf lint dead_branch.mpl: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "PSDF-W006") {
		t.Errorf("psdf lint dead_branch.mpl missing PSDF-W006:\n%s", out)
	}
	// Clean programs produce no output and exit zero.
	out, err = exec.Command(bin, "lint",
		filepath.Join(root, "testdata", "shift1d.mpl"),
		filepath.Join(root, "testdata", "exchange.mpl"),
		filepath.Join(root, "testdata", "nascg_square.mpl")).CombinedOutput()
	if err != nil {
		t.Errorf("psdf lint clean: %v\n%s", err, out)
	}
	if len(strings.TrimSpace(string(out))) != 0 {
		t.Errorf("psdf lint clean: unexpected findings:\n%s", out)
	}
	// SARIF output identifies the tool and the rule.
	out, _ = exec.Command(bin, "lint", "-format", "sarif",
		filepath.Join(root, "testdata", "bugs", "tag_mismatch.mpl")).CombinedOutput()
	for _, w := range []string{`"psdf-lint"`, `"2.1.0"`, "PSDF-E003"} {
		if !strings.Contains(string(out), w) {
			t.Errorf("psdf lint sarif missing %s:\n%s", w, out)
		}
	}
	// JSON output carries the rule name.
	out, _ = exec.Command(bin, "lint", "-format", "json",
		filepath.Join(root, "testdata", "bugs", "offbyone_shift.mpl")).CombinedOutput()
	if !strings.Contains(string(out), `"rank-out-of-bounds"`) {
		t.Errorf("psdf lint json missing rule name:\n%s", out)
	}
	// Unknown format is a usage error (exit 2).
	cmd := exec.Command(bin, "lint", "-format", "yaml",
		filepath.Join(root, "testdata", "shift1d.mpl"))
	if err := cmd.Run(); err == nil {
		t.Error("psdf lint -format yaml accepted")
	} else if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() != 2 {
		t.Errorf("psdf lint -format yaml exit = %d, want 2", ee.ExitCode())
	}
}

// TestCLIPsdfRunFailOnFindings covers the flag-gated nonzero exits.
func TestCLIPsdfRunFailOnFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf-run")
	root := repoRoot(t)
	leaky := filepath.Join(root, "testdata", "leaky.mpl")
	// Without the flag the leaky simulation exits zero...
	if out, err := exec.Command(bin, "-np", "4", leaky).CombinedOutput(); err != nil {
		t.Fatalf("psdf-run leaky: %v\n%s", err, out)
	}
	// ...with it, the leak is fatal.
	if _, err := exec.Command(bin, "-np", "4", "-fail-on-findings", leaky).CombinedOutput(); err == nil {
		t.Error("psdf-run -fail-on-findings ignored a leak")
	}
	// Analyze mode: clean program passes, leak fails.
	if out, err := exec.Command(bin, "-analyze", "-fail-on-findings",
		filepath.Join(root, "testdata", "mdcask.mpl")).CombinedOutput(); err != nil {
		t.Errorf("psdf-run -analyze clean: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-analyze", "-fail-on-findings",
		filepath.Join(root, "testdata", "bugs", "leak_extra.mpl")).CombinedOutput()
	if err == nil {
		t.Error("psdf-run -analyze -fail-on-findings ignored a leak")
	}
	if !strings.Contains(string(out), "FINDING") {
		t.Errorf("psdf-run -analyze findings not printed:\n%s", out)
	}
}
