package integration_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the repo's commands into a temp dir.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

func TestCLIPsdfOnTestdata(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf")
	root := repoRoot(t)
	cases := []struct {
		file string
		args []string
		want []string
		fail bool
	}{
		{"mdcask.mpl", nil, []string{"exchange-with-root", "verify: ok"}, false},
		{"shift1d.mpl", nil, []string{"topology: shift", "[1..np - 3]"}, false},
		{"exchange.mpl", nil, []string{"always outputs 5"}, false},
		{"fanout.mpl", []string{"-stats"}, []string{"broadcast", "stats:"}, false},
		{"nascg_square.mpl", nil, []string{"permutation"}, false},
		{"nascg_rect.mpl", nil, []string{"permutation"}, false},
		{"leaky.mpl", nil, []string{"message-leak"}, true},
		{"sendfirst_shift.mpl", []string{"-nonblocking"}, []string{"topology: shift"}, false},
		{"mdcask.mpl", []string{"-client", "symbolic"}, []string{"exchange-with-root"}, false},
		{"mdcask.mpl", []string{"-backend", "map"}, []string{"exchange-with-root"}, false},
		{"mdcask.mpl", []string{"-dot"}, []string{"digraph"}, false},
		{"mdcask.mpl", []string{"-cfg"}, []string{"digraph", "send x -> i"}, false},
	}
	for _, c := range cases {
		args := append(append([]string{}, c.args...), filepath.Join(root, "testdata", c.file))
		out, err := exec.Command(bin, args...).CombinedOutput()
		if c.fail && err == nil {
			t.Errorf("psdf %v: expected nonzero exit", args)
		}
		if !c.fail && err != nil {
			t.Errorf("psdf %v: %v\n%s", args, err, out)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(string(out), w) {
				t.Errorf("psdf %v: output missing %q:\n%s", args, w, out)
			}
		}
	}
}

func TestCLIPsdfRun(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf-run")
	root := repoRoot(t)
	out, err := exec.Command(bin, "-np", "5", filepath.Join(root, "testdata", "mdcask.mpl")).CombinedOutput()
	if err != nil {
		t.Fatalf("psdf-run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "messages=8") {
		t.Errorf("psdf-run output:\n%s", out)
	}
	// Transpose with env bindings.
	out, err = exec.Command(bin, "-np", "9", "-env", "nrows=3",
		filepath.Join(root, "testdata", "nascg_square.mpl")).CombinedOutput()
	if err != nil {
		t.Fatalf("psdf-run transpose: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "messages=9") {
		t.Errorf("psdf-run transpose output:\n%s", out)
	}
	// The leaky program reports the leak but exits zero (no deadlock).
	out, err = exec.Command(bin, "-np", "4", filepath.Join(root, "testdata", "leaky.mpl")).CombinedOutput()
	if err != nil {
		t.Fatalf("psdf-run leaky: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "LEAKED") {
		t.Errorf("psdf-run leaky output:\n%s", out)
	}
}

func TestCLIPsdfBenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf-bench")
	out, err := exec.Command(bin, "-exp", "table1").CombinedOutput()
	if err != nil {
		t.Fatalf("psdf-bench: %v\n%s", err, out)
	}
	for _, w := range []string{"Table I", "paper", "measured", "yes"} {
		if !strings.Contains(string(out), w) {
			t.Errorf("psdf-bench output missing %q:\n%s", w, out)
		}
	}
	// Unknown experiment id exits nonzero.
	if _, err := exec.Command(bin, "-exp", "nope").CombinedOutput(); err == nil {
		t.Error("unknown experiment accepted")
	}
}
