// Package integration_test runs the full pipeline — parse, analyze,
// classify, verify, and validate against the simulator — over every
// workload in the benchmark suite.
package integration_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/modelcheck"
	"repro/internal/mpicfg"
	"repro/internal/topology"
	"repro/internal/validate"
	"repro/internal/verify"
)

func scalesFor(w *bench.Workload) []int {
	if strings.HasPrefix(w.Name, "nascg") {
		return []int{2, 3}
	}
	return []int{4, 7}
}

func TestFullPipelineOnAllWorkloads(t *testing.T) {
	for _, w := range bench.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, g := w.Parse()
			m := cartesian.New(core.ScanInvariants(g))
			res, err := core.Analyze(g, core.Options{Matcher: m})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			if !res.Clean() {
				t.Fatalf("analysis not clean: %v", res.TopReasons())
			}
			// Topology classification matches the expectation.
			rep := topology.Build(g, res)
			if rep.Overall.String() != w.WantPattern {
				t.Errorf("pattern = %v, want %v\n%s", rep.Overall, w.WantPattern, rep)
			}
			// No verification findings on correct programs.
			vr := verify.Check(g, res)
			if !vr.OK() {
				t.Errorf("verify findings on clean program:\n%s", vr)
			}
			// Static topology matches concrete ground truth at each scale.
			for _, scale := range scalesFor(w) {
				np := w.NPFor(scale)
				if err := validate.Check(g, res, np, w.Env(scale)); err != nil {
					t.Errorf("scale %d: %v", scale, err)
				}
			}
		})
	}
}

func TestPrecisionVsMPICFG(t *testing.T) {
	// E9: the pCFG analysis must never report more topology edges than the
	// MPI-CFG baseline (which connects all sends to all receives), and on
	// programs with several distinct communication phases it is strictly
	// more precise.
	strictlyBetter := 0
	for _, w := range bench.All() {
		_, g := w.Parse()
		m := cartesian.New(core.ScanInvariants(g))
		res, err := core.Analyze(g, core.Options{Matcher: m})
		if err != nil || !res.Clean() {
			t.Fatalf("%s: %v %v", w.Name, err, res.TopReasons())
		}
		pcfgEdges := map[[2]int]bool{}
		for _, mt := range res.Matches {
			pcfgEdges[[2]int{mt.SendNode, mt.RecvNode}] = true
		}
		base := mpicfg.Analyze(g)
		if len(pcfgEdges) > len(base.Edges) {
			t.Errorf("%s: pCFG %d edges > MPI-CFG %d", w.Name, len(pcfgEdges), len(base.Edges))
		}
		if len(pcfgEdges) < len(base.Edges) {
			strictlyBetter++
		}
		// Every pCFG edge must appear in the baseline (it over-approximates).
		baseSet := map[[2]int]bool{}
		for _, e := range base.Edges {
			baseSet[[2]int{e.SendNode, e.RecvNode}] = true
		}
		for e := range pcfgEdges {
			if !baseSet[e] {
				t.Errorf("%s: pCFG edge %v missing from MPI-CFG over-approximation", w.Name, e)
			}
		}
	}
	if strictlyBetter == 0 {
		t.Error("pCFG analysis never strictly more precise than MPI-CFG")
	}
}

func TestModelCheckAgreesWithAnalysis(t *testing.T) {
	// E8 sanity: the explicit-state baseline finds exactly the edges the
	// symbolic analysis predicts, for each concrete np.
	for _, w := range bench.All() {
		_, g := w.Parse()
		m := cartesian.New(core.ScanInvariants(g))
		res, err := core.Analyze(g, core.Options{Matcher: m})
		if err != nil || !res.Clean() {
			t.Fatalf("%s: analysis failed", w.Name)
		}
		scale := scalesFor(w)[0]
		mc, err := modelcheck.Check(g, w.NPFor(scale), w.Env(scale))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if mc.Deadlocked {
			t.Fatalf("%s: model check deadlocked", w.Name)
		}
		pcfgEdges := map[[2]int]bool{}
		for _, mt := range res.Matches {
			pcfgEdges[[2]int{mt.SendNode, mt.RecvNode}] = true
		}
		for e := range mc.Edges {
			if !pcfgEdges[e] {
				t.Errorf("%s: concrete edge %v not predicted statically", w.Name, e)
			}
		}
	}
}

func TestVerifyFindsInjectedBugs(t *testing.T) {
	// E10: the verification client reports the leak and the type mismatch.
	_, g := bench.LeakyBroadcast().Parse()
	m := cartesian.New(core.ScanInvariants(g))
	res, err := core.Analyze(g, core.Options{Matcher: m})
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Check(g, res)
	found := false
	for _, f := range rep.Findings {
		if f.Kind == verify.MessageLeak || f.Kind == verify.PotentialDeadlock || f.Kind == verify.AnalysisIncomplete {
			found = true
		}
	}
	if !found {
		t.Errorf("leak not reported:\n%s", rep)
	}

	_, g = bench.TypeMismatch().Parse()
	m = cartesian.New(core.ScanInvariants(g))
	res, err = core.Analyze(g, core.Options{Matcher: m})
	if err != nil {
		t.Fatal(err)
	}
	rep = verify.Check(g, res)
	foundTM := false
	for _, f := range rep.Findings {
		if f.Kind == verify.TypeMismatch {
			foundTM = true
		}
	}
	if !foundTM {
		t.Errorf("type mismatch not reported:\n%s", rep)
	}
}
