package integration_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runWithTimeout executes the command and fails the test if it neither
// exits nor errors within the deadline — the malformed-input contract is
// "error cleanly", never spin or hang.
func runWithTimeout(t *testing.T, d time.Duration, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	type result struct {
		out []byte
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := cmd.CombinedOutput()
		ch <- result{out, err}
	}()
	select {
	case r := <-ch:
		return string(r.out), r.err
	case <-time.After(d):
		_ = cmd.Process.Kill()
		t.Fatalf("%s %v: did not terminate within %v", filepath.Base(bin), args, d)
		return "", nil
	}
}

// TestTraceCheckMalformedInput feeds psdf trace -check inputs a crashed or
// interrupted writer could leave behind. Every case must exit nonzero with
// a diagnostic — no panic, no hang, no zero exit.
func TestTraceCheckMalformedInput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf")
	dir := t.TempDir()
	cases := []struct {
		name string
		data []byte
	}{
		{"empty.json", nil},
		{"truncated.json", []byte(`{"traceEvents":[{"name":"analyze","ph":"B","ts":1`)},
		{"garbage.json", []byte{0x00, 0xff, 0x13, 0x37, 0x00, 0xfe, 'n', 'o', 't', ' ', 'j', 's', 'o', 'n'}},
		{"wrong_shape.json", []byte(`{"traceEvents": 42}`)},
		{"jsonl_truncated.json", []byte("{\"name\":\"a\",\"ph\":\"B\",\"ts\":1}\n{\"name\":\"a\",\"ph\":")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name)
			if err := os.WriteFile(path, c.data, 0o644); err != nil {
				t.Fatal(err)
			}
			out, err := runWithTimeout(t, 10*time.Second, bin, "trace", "-check", path)
			if err == nil {
				t.Errorf("trace -check %s: expected nonzero exit\n%s", c.name, out)
			}
			if strings.Contains(out, "panic:") || strings.Contains(out, "goroutine ") {
				t.Errorf("trace -check %s: panicked:\n%s", c.name, out)
			}
			if strings.TrimSpace(out) == "" {
				t.Errorf("trace -check %s: exited with no diagnostic", c.name)
			}
		})
	}
	// A missing file must also produce a clean diagnostic.
	out, err := runWithTimeout(t, 10*time.Second, bin, "trace", "-check", filepath.Join(dir, "nope.json"))
	if err == nil || strings.Contains(out, "panic:") {
		t.Errorf("trace -check on missing file: err=%v\n%s", err, out)
	}
}

// TestBenchHistoryCLI exercises the record -> diff -> check workflow end to
// end through the psdf binary: two identical records must diff as "no
// change" with identical fingerprints and pass the gate.
func TestBenchHistoryCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf")
	hist := filepath.Join(t.TempDir(), "hist.jsonl")

	// Two records at two "commits". -exp keeps the suite small and fast;
	// fingerprints are always captured for all workloads.
	for i, sha := range []string{"aaaaaaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbbbbbb"} {
		out, err := runWithTimeout(t, 120*time.Second, bin, "bench", "record",
			"-history", hist, "-sample", "4", "-exp", "fig2,table1", "-commit", sha)
		if err != nil {
			t.Fatalf("record %d: %v\n%s", i, err, out)
		}
		if !strings.Contains(out, "recorded") || !strings.Contains(out, "2 specs x 4 samples") {
			t.Fatalf("record %d: unexpected output:\n%s", i, out)
		}
	}

	out, err := runWithTimeout(t, 30*time.Second, bin, "bench", "diff", "-history", hist)
	if err != nil {
		t.Fatalf("diff: %v\n%s", err, out)
	}
	for _, want := range []string{"aaaaaaaaaaaa", "bbbbbbbbbbbb", "fig2", "table1", "verdict",
		"precision fingerprints: identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}

	// Markdown rendering.
	out, err = runWithTimeout(t, 30*time.Second, bin, "bench", "diff", "-history", hist, "-markdown")
	if err != nil {
		t.Fatalf("diff -markdown: %v\n%s", err, out)
	}
	if !strings.Contains(out, "| spec |") {
		t.Errorf("markdown diff missing table header:\n%s", out)
	}

	// Same code at both commits: the gate must pass.
	out, err = runWithTimeout(t, 30*time.Second, bin, "bench", "check", "-history", hist)
	if err != nil {
		t.Fatalf("check: expected exit 0: %v\n%s", err, out)
	}
	if !strings.Contains(out, "bench check: ok") {
		t.Errorf("check output missing ok line:\n%s", out)
	}

	// Trajectory report over the whole history.
	out, err = runWithTimeout(t, 30*time.Second, bin, "bench", "report", "-history", hist)
	if err != nil {
		t.Fatalf("report: %v\n%s", err, out)
	}
	if !strings.Contains(out, "2 entries") || !strings.Contains(out, "No precision-fingerprint changes") {
		t.Errorf("report output unexpected:\n%s", out)
	}
}

// TestBenchHistoryCLIMalformed verifies the reader's contract through the
// CLI: truncated, empty, corrupt and future-versioned history files produce
// clean nonzero exits, never panics or hangs.
func TestBenchHistoryCLIMalformed(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build skipped in -short mode")
	}
	bin := buildTool(t, "psdf")
	dir := t.TempDir()

	valid, err := json.Marshal(map[string]any{
		"schema_version": 1,
		"commit":         "cafebabe",
		"time":           "2026-01-01T00:00:00Z",
		"host":           map[string]any{"os": "linux", "arch": "amd64", "cpus": 1, "go": "go1.24"},
		"samples":        1,
		"specs":          map[string]any{},
		"fingerprints":   map[string]any{},
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty.jsonl", nil, "empty"},
		{"truncated.jsonl", append(append([]byte{}, valid...), []byte("\n{\"schema_version\":1,\"commit\":\"dead")...), "malformed"},
		{"garbage.jsonl", []byte("\x00\xff\x13\x37 not json\n"), "malformed"},
		{"future.jsonl", []byte(`{"schema_version":9999,"commit":"cafebabe"}` + "\n"), "schema_version"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name)
			if err := os.WriteFile(path, c.data, 0o644); err != nil {
				t.Fatal(err)
			}
			for _, sub := range [][]string{
				{"bench", "diff", "-history", path},
				{"bench", "check", "-history", path},
				{"bench", "report", "-history", path},
			} {
				out, err := runWithTimeout(t, 10*time.Second, bin, sub...)
				if err == nil {
					t.Errorf("%v: expected nonzero exit\n%s", sub, out)
				}
				if strings.Contains(out, "panic:") {
					t.Errorf("%v: panicked:\n%s", sub, out)
				}
				if !strings.Contains(out, c.want) {
					t.Errorf("%v: diagnostic missing %q:\n%s", sub, c.want, out)
				}
			}
		})
	}

	// One valid entry: diff needs two and must say so.
	single := filepath.Join(dir, "single.jsonl")
	if err := os.WriteFile(single, append(append([]byte{}, valid...), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runWithTimeout(t, 10*time.Second, bin, "bench", "diff", "-history", single)
	if err == nil {
		t.Errorf("diff on single-entry history: expected nonzero exit\n%s", out)
	}
	if !strings.Contains(out, "need two") {
		t.Errorf("diff on single-entry history: diagnostic missing:\n%s", out)
	}
}
