package integration_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fmtViolation(file string, line int, call string) string {
	return fmt.Sprintf("%s:%d: %s", file, line, call)
}

// TestNoDirectPrintingInLibraries is the logging vet gate: library packages
// (everything under internal/) must not write to stdout or the global
// logger directly. Human-facing printing belongs to cmd/; libraries report
// through return values, the obs structured logger (Options.Log), or an
// explicitly injected io.Writer. The gate parses rather than greps so
// matches in comments and string literals don't false-positive.
func TestNoDirectPrintingInLibraries(t *testing.T) {
	banned := map[string]map[string]bool{
		"fmt": {"Print": true, "Printf": true, "Println": true},
		"log": {
			"Print": true, "Printf": true, "Println": true,
			"Fatal": true, "Fatalf": true, "Fatalln": true,
			"Panic": true, "Panicf": true, "Panicln": true,
		},
	}
	root := filepath.Join(repoRoot(t), "internal")
	fset := token.NewFileSet()
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, src, 0)
		if err != nil {
			return err
		}
		// Map the file's import names so aliased imports (and packages that
		// shadow the names) resolve correctly.
		pkgNames := map[string]string{}
		for _, imp := range f.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if ipath != "fmt" && ipath != "log" {
				continue
			}
			name := ipath
			if imp.Name != nil {
				name = imp.Name.Name
			}
			pkgNames[name] = ipath
		}
		if len(pkgNames) == 0 {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Obj != nil { // id.Obj != nil: a local, not the package
				return true
			}
			if ipath, ok := pkgNames[id.Name]; ok && banned[ipath][sel.Sel.Name] {
				pos := fset.Position(call.Pos())
				rel, _ := filepath.Rel(root, pos.Filename)
				violations = append(violations,
					fmtViolation(rel, pos.Line, id.Name+"."+sel.Sel.Name))
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Errorf("library packages must not print directly (use Options.Log / an injected writer):\n  %s",
			strings.Join(violations, "\n  "))
	}
}
