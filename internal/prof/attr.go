package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// LineRange labels an inclusive 1-based source line range with the
// construct that emitted it (for generated programs: the phase family).
// The generator side converts its own phase records into LineRanges so
// prof stays independent of the generator package.
type LineRange struct {
	Label string
	Start int
	End   int
}

// ConstructStats is one row of the sweep attribution: every precision
// loss the profiler blamed on lines carrying this construct label.
type ConstructStats struct {
	Construct     string           `json:"construct"`
	Programs      int              `json:"programs,omitempty"`
	WidenFailures int64            `json:"widen_failures,omitempty"`
	GiveUps       int64            `json:"give_ups,omitempty"`
	TopDemotions  int64            `json:"top_demotions,omitempty"`
	Pairs         map[string]int64 `json:"pairs,omitempty"`
}

// TopPair returns the most frequent failing bound-expression pair.
func (c *ConstructStats) TopPair() string {
	best, bestN := "", int64(-1)
	for p, n := range c.Pairs {
		if n > bestN || (n == bestN && p < best) {
			best, bestN = p, n
		}
	}
	return best
}

// SweepAttribution aggregates per-construct precision losses across the
// programs of a fuzz sweep. Safe for concurrent Add.
type SweepAttribution struct {
	mu sync.Mutex
	by map[string]*ConstructStats
}

// NewSweepAttribution returns an empty aggregate.
func NewSweepAttribution() *SweepAttribution {
	return &SweepAttribution{by: make(map[string]*ConstructStats)}
}

func labelFor(line int, ranges []LineRange, def string) string {
	for _, r := range ranges {
		if line >= r.Start && line <= r.End {
			return r.Label
		}
	}
	return def
}

// Add folds one profiled program into the aggregate: each node carrying
// precision-loss counters is attributed to the construct whose line range
// contains it (def — conventionally "decor" — when no range matches,
// including synthetic nodes with no span).
func (a *SweepAttribution) Add(rep *Report, ranges []LineRange, def string) {
	if a == nil || rep == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	touched := make(map[string]bool)
	get := func(label string) *ConstructStats {
		cs := a.by[label]
		if cs == nil {
			cs = &ConstructStats{Construct: label, Pairs: make(map[string]int64)}
			a.by[label] = cs
		}
		if !touched[label] {
			touched[label] = true
			cs.Programs++
		}
		return cs
	}
	for i := range rep.Nodes {
		n := &rep.Nodes[i]
		if n.WidenFailures == 0 && n.GiveUps == 0 && n.TopDemotions == 0 {
			continue
		}
		cs := get(labelFor(n.Line, ranges, def))
		cs.WidenFailures += n.WidenFailures
		cs.GiveUps += n.GiveUps
		cs.TopDemotions += n.TopDemotions
	}
	for _, wf := range rep.WidenFailures {
		if wf.OldBound == "" && wf.NewBound == "" {
			continue
		}
		cs := get(labelFor(wf.Line, ranges, def))
		cs.Pairs[wf.OldBound+" vs "+wf.NewBound] += wf.Count
	}
}

// Rows returns the constructs ranked by widening failures, then give-ups,
// then ⊤ demotions, then name — the measured precision-recovery worklist.
func (a *SweepAttribution) Rows() []*ConstructStats {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rows := make([]*ConstructStats, 0, len(a.by))
	for _, cs := range a.by {
		rows = append(rows, cs)
	}
	sort.Slice(rows, func(i, j int) bool {
		x, y := rows[i], rows[j]
		if x.WidenFailures != y.WidenFailures {
			return x.WidenFailures > y.WidenFailures
		}
		if x.GiveUps != y.GiveUps {
			return x.GiveUps > y.GiveUps
		}
		if x.TopDemotions != y.TopDemotions {
			return x.TopDemotions > y.TopDemotions
		}
		return x.Construct < y.Construct
	})
	return rows
}

// WriteTable renders the ranked attribution table.
func (a *SweepAttribution) WriteTable(w io.Writer) {
	rows := a.Rows()
	if len(rows) == 0 {
		fmt.Fprintln(w, "no precision losses attributed")
		return
	}
	fmt.Fprintln(w, "per-construct precision attribution (ranked by widening failures):")
	fmt.Fprintf(w, "  %-24s %8s %10s %8s %6s  %s\n",
		"construct", "programs", "widen-fail", "give-ups", "⊤demo", "top failing pair")
	for _, cs := range rows {
		fmt.Fprintf(w, "  %-24s %8d %10d %8d %6d  %s\n",
			cs.Construct, cs.Programs, cs.WidenFailures, cs.GiveUps, cs.TopDemotions, cs.TopPair())
	}
}

// attributionFile is the on-disk envelope for `psdf fuzz -profile-out`.
type attributionFile struct {
	Schema     string            `json:"schema"`
	Constructs []*ConstructStats `json:"constructs"`
}

// AttrSchema identifies the sweep-attribution JSON format.
const AttrSchema = "psdf-fuzz-attribution/1"

// WriteJSON writes the ranked attribution as an indented JSON document.
func (a *SweepAttribution) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(attributionFile{Schema: AttrSchema, Constructs: a.Rows()})
}
