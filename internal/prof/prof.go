// Package prof is the source-attribution analysis profiler: it aggregates
// engine events (step time, configurations spawned, joins, widenings and
// their failures, give-ups, ⊤ demotions, match-memo misses, HSM prover
// time) onto pCFG nodes and, through their spans, onto MPL source
// constructs.
//
// The collection model mirrors the obs tracer's discipline:
//
//   - A *Profiler is the per-analysis aggregator. core.Options.Profiler
//     carries it into the engine; nil means profiling is off.
//   - The engine asks the profiler for a *Lanes: one private, dense
//     []Counters buffer per worker tid, indexed by CFG node ID. Recording
//     is a plain (non-atomic) add into the caller's own lane — each lane
//     is touched by exactly one goroutine, so there is no contention and
//     no synchronization on the hot path.
//   - All recording methods are nil-safe no-ops, so the disabled path is
//     a single pointer check: 0 allocs/op, proven by
//     BenchmarkProfilerDisabled (the analogue of BenchmarkTracerDisabled).
//   - After the run quiesces (workers joined), the engine commits the
//     lanes: Commit merges every lane under the profiler's mutex and
//     resolves node → source span / kind / synthetic from the CFG.
//
// Reports render three ways: a heat-annotated source listing (text), a
// machine-readable JSON report (schema "psdf-profile/1", embedding the
// program source so it is self-contained), and folded stacks for
// flamegraph/pprof tooling.
package prof

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cfg"
	"repro/internal/source"
)

// Counters is the per-node event aggregate. All counts are totals across
// workers after merge; Ns fields are cumulative wall nanoseconds.
//
// MatchNs includes the memo lookup; ProverNs is the subset of MatchNs
// spent inside memo-missing HSM searches (in parallel runs prover time is
// read from shared matcher counters, so concurrent searches may bleed
// between callsites — exact when Workers <= 1, approximate otherwise).
type Counters struct {
	Steps          int64 `json:"steps,omitempty"`
	StepNs         int64 `json:"step_ns,omitempty"`
	Spawned        int64 `json:"spawned,omitempty"`
	Matches        int64 `json:"matches,omitempty"`
	Matched        int64 `json:"matched,omitempty"`
	MatchNs        int64 `json:"match_ns,omitempty"`
	MemoMisses     int64 `json:"memo_misses,omitempty"`
	ProverSearches int64 `json:"prover_searches,omitempty"`
	ProverNs       int64 `json:"prover_ns,omitempty"`
	Joins          int64 `json:"joins,omitempty"`
	Widenings      int64 `json:"widenings,omitempty"`
	WidenFailures  int64 `json:"widen_failures,omitempty"`
	GiveUps        int64 `json:"give_ups,omitempty"`
	TopDemotions   int64 `json:"top_demotions,omitempty"`
}

func (c *Counters) add(o *Counters) {
	c.Steps += o.Steps
	c.StepNs += o.StepNs
	c.Spawned += o.Spawned
	c.Matches += o.Matches
	c.Matched += o.Matched
	c.MatchNs += o.MatchNs
	c.MemoMisses += o.MemoMisses
	c.ProverSearches += o.ProverSearches
	c.ProverNs += o.ProverNs
	c.Joins += o.Joins
	c.Widenings += o.Widenings
	c.WidenFailures += o.WidenFailures
	c.GiveUps += o.GiveUps
	c.TopDemotions += o.TopDemotions
}

// zero reports whether no event was recorded against the node.
func (c *Counters) zero() bool {
	return c.Steps == 0 && c.Spawned == 0 && c.Matches == 0 &&
		c.Joins == 0 && c.Widenings == 0 && c.WidenFailures == 0 &&
		c.GiveUps == 0 && c.TopDemotions == 0
}

// WidenFailure is one distinct widening failure: the blamed node and the
// first bound-expression pair that admitted no common upper bound.
type WidenFailure struct {
	Node     int    `json:"node"`
	Line     int    `json:"line,omitempty"`
	OldBound string `json:"old_bound,omitempty"`
	NewBound string `json:"new_bound,omitempty"`
	Count    int64  `json:"count"`
}

type failKey struct {
	node     int
	old, new string
}

// Lanes is the engine-side recording surface: per-worker private counter
// buffers. Obtain one via (*Profiler).NewLanes; a nil *Lanes (profiling
// off) makes every method a no-op, so engine call sites need exactly one
// pointer check.
type Lanes struct {
	nodes int
	lanes [][]Counters     // [tid][node]
	fails [][]WidenFailure // [tid] appended details (rare path; alloc OK)
}

// NewLanes sizes a lane set for workers+1 tids (tid 0 is the sequential
// engine / commit path) over nodes CFG nodes. Returns nil when p is nil.
func (p *Profiler) NewLanes(workers, nodes int) *Lanes {
	if p == nil {
		return nil
	}
	l := &Lanes{nodes: nodes, lanes: make([][]Counters, workers+1)}
	for i := range l.lanes {
		l.lanes[i] = make([]Counters, nodes)
	}
	l.fails = make([][]WidenFailure, workers+1)
	return l
}

func (l *Lanes) at(tid, node int) *Counters {
	if tid < 0 || tid >= len(l.lanes) || node < 0 || node >= l.nodes {
		return nil
	}
	return &l.lanes[tid][node]
}

// Step records one engine step at node: elapsed wall time and the number
// of successor configurations it spawned.
func (l *Lanes) Step(tid, node int, ns int64, spawned int) {
	if l == nil {
		return
	}
	if c := l.at(tid, node); c != nil {
		c.Steps++
		c.StepNs += ns
		c.Spawned += int64(spawned)
	}
}

// Match records one client-matcher call attributed to node: elapsed time,
// the match-memo miss delta, the prover search/time deltas, and whether
// the matcher produced a plan.
func (l *Lanes) Match(tid, node int, ns, memoMisses, proverSearches, proverNs int64, matched bool) {
	if l == nil {
		return
	}
	if c := l.at(tid, node); c != nil {
		c.Matches++
		if matched {
			c.Matched++
		}
		c.MatchNs += ns
		c.MemoMisses += memoMisses
		c.ProverSearches += proverSearches
		c.ProverNs += proverNs
	}
}

// Combine records one revision combine at node: a join below the widening
// rung, a widening at or above it.
func (l *Lanes) Combine(tid, node int, widen bool) {
	if l == nil {
		return
	}
	if c := l.at(tid, node); c != nil {
		if widen {
			c.Widenings++
		} else {
			c.Joins++
		}
	}
}

// WidenFail records a widening failure at node with the first failing
// bound-expression pair (empty strings when unavailable).
func (l *Lanes) WidenFail(tid, node int, oldBound, newBound string) {
	if l == nil {
		return
	}
	if c := l.at(tid, node); c != nil {
		c.WidenFailures++
	}
	if tid >= 0 && tid < len(l.fails) {
		l.fails[tid] = append(l.fails[tid], WidenFailure{
			Node: node, OldBound: oldBound, NewBound: newBound, Count: 1,
		})
	}
}

// GiveUp records a committed ⊤ give-up blamed on node.
func (l *Lanes) GiveUp(tid, node int) {
	if l == nil {
		return
	}
	if c := l.at(tid, node); c != nil {
		c.GiveUps++
	}
}

// TopDemotion records a final-state ⊤ demotion (stale match witness)
// blamed on node.
func (l *Lanes) TopDemotion(tid, node int) {
	if l == nil {
		return
	}
	if c := l.at(tid, node); c != nil {
		c.TopDemotions++
	}
}

// nodeInfo is the per-node source resolution captured at commit.
type nodeInfo struct {
	kind      string
	label     string
	synthetic bool
	span      source.Span
}

// Profiler aggregates committed lanes for one analysis (or several: psdf
// profile reuses one profiler across repeated runs of the same graph).
// The zero value is not ready; use New.
type Profiler struct {
	mu      sync.Mutex
	nodes   []Counters
	info    []nodeInfo
	fails   map[failKey]int64
	commits int
}

// New returns an empty profiler. Attach it via core.Options.Profiler.
func New() *Profiler {
	return &Profiler{fails: make(map[failKey]int64)}
}

// Commit merges every lane of l into the profiler and resolves node
// metadata from g. The engine calls it once per analysis, after all
// workers have joined — lanes are quiescent, so reading them unlocked is
// safe; the profiler's own state is mutex-guarded.
func (p *Profiler) Commit(g *cfg.Graph, l *Lanes) {
	if p == nil || l == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.nodes) < l.nodes {
		grown := make([]Counters, l.nodes)
		copy(grown, p.nodes)
		p.nodes = grown
		p.info = make([]nodeInfo, l.nodes)
		for _, n := range g.Nodes {
			if n.ID >= 0 && n.ID < l.nodes {
				p.info[n.ID] = nodeInfo{
					kind:      n.Kind.String(),
					label:     n.Label(),
					synthetic: n.Synthetic,
					span:      n.Span,
				}
			}
		}
	}
	for _, lane := range l.lanes {
		for id := range lane {
			if !lane[id].zero() || lane[id].MatchNs != 0 {
				p.nodes[id].add(&lane[id])
			}
		}
	}
	for _, fs := range l.fails {
		for _, f := range fs {
			p.fails[failKey{f.Node, f.OldBound, f.NewBound}] += f.Count
		}
	}
	p.commits++
}

// Commits returns how many lane sets were merged (one per analysis run).
func (p *Profiler) Commits() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.commits
}

// Report snapshots the profiler into a renderable, serializable report.
// name labels the job (usually the source path); src is the program text
// embedded for self-contained listings (may be empty).
func (p *Profiler) Report(name, src string) *Report {
	r := &Report{Name: name, Source: src}
	if p == nil {
		return r
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for id := range p.nodes {
		c := &p.nodes[id]
		if c.zero() && c.MatchNs == 0 {
			continue
		}
		in := nodeInfo{}
		if id < len(p.info) {
			in = p.info[id]
		}
		np := NodeProfile{
			Node:      id,
			Kind:      in.kind,
			Label:     in.label,
			Synthetic: in.synthetic,
			Counters:  *c,
		}
		if in.span.IsValid() {
			np.Line = in.span.Start.Line
			np.Col = in.span.Start.Col
			np.EndLine = in.span.End.Line
		}
		r.Nodes = append(r.Nodes, np)
		r.Totals.add(c)
	}
	for k, n := range p.fails {
		wf := WidenFailure{Node: k.node, OldBound: k.old, NewBound: k.new, Count: n}
		if k.node >= 0 && k.node < len(p.info) && p.info[k.node].span.IsValid() {
			wf.Line = p.info[k.node].span.Start.Line
		}
		r.WidenFailures = append(r.WidenFailures, wf)
	}
	sort.Slice(r.WidenFailures, func(i, j int) bool {
		a, b := r.WidenFailures[i], r.WidenFailures[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.OldBound != b.OldBound {
			return a.OldBound < b.OldBound
		}
		return a.NewBound < b.NewBound
	})
	return r
}

// String is a one-line summary for logs.
func (r *Report) String() string {
	return fmt.Sprintf("%s: %d nodes, %d steps (%.2fms), %d widenings (%d failed), %d give-ups, %d ⊤ demotions",
		r.Name, len(r.Nodes), r.Totals.Steps, float64(r.Totals.StepNs)/1e6,
		r.Totals.Widenings, r.Totals.WidenFailures, r.Totals.GiveUps, r.Totals.TopDemotions)
}
