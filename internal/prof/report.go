package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/source"
)

// Schema identifies the JSON report format. Consumers (psdf profile, the
// CI smoke check) reject other values.
const Schema = "psdf-profile/1"

// NodeProfile is one pCFG node's aggregate with its source resolution.
type NodeProfile struct {
	Node      int    `json:"node"`
	Kind      string `json:"kind,omitempty"`
	Label     string `json:"label,omitempty"`
	Synthetic bool   `json:"synthetic,omitempty"`
	Line      int    `json:"line,omitempty"`
	Col       int    `json:"col,omitempty"`
	EndLine   int    `json:"end_line,omitempty"`
	Counters
}

// Report is one profiled job: totals, per-node rows, and the distinct
// widening failures ranked by count. Source embeds the analyzed program
// text so listings render without the original file.
type Report struct {
	Name          string         `json:"name"`
	Source        string         `json:"source,omitempty"`
	Totals        Counters       `json:"totals"`
	Nodes         []NodeProfile  `json:"nodes"`
	WidenFailures []WidenFailure `json:"widen_failures"`
}

// reportFile is the on-disk envelope.
type reportFile struct {
	Schema string    `json:"schema"`
	Jobs   []*Report `json:"jobs"`
}

// WriteJSON writes the reports as an indented psdf-profile/1 document.
func WriteJSON(w io.Writer, jobs []*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reportFile{Schema: Schema, Jobs: jobs})
}

// ReadJSON parses and validates a psdf-profile/1 document.
func ReadJSON(r io.Reader) ([]*Report, error) {
	var f reportFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("profile report: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("profile report: schema %q, want %q", f.Schema, Schema)
	}
	for i, job := range f.Jobs {
		if job == nil {
			return nil, fmt.Errorf("profile report: job %d is null", i)
		}
		if job.Name == "" {
			return nil, fmt.Errorf("profile report: job %d has no name", i)
		}
		for _, n := range job.Nodes {
			if n.Node < 0 {
				return nil, fmt.Errorf("profile report: job %q has negative node id %d", job.Name, n.Node)
			}
		}
	}
	return f.Jobs, nil
}

// lineAgg accumulates node counters per source line for the listing.
type lineAgg struct {
	c     Counters
	nodes []int
}

func (r *Report) byLine() map[int]*lineAgg {
	m := make(map[int]*lineAgg)
	for i := range r.Nodes {
		n := &r.Nodes[i]
		a := m[n.Line] // Line 0 collects synthetic/unspanned nodes.
		if a == nil {
			a = &lineAgg{}
			m[n.Line] = a
		}
		a.c.add(&n.Counters)
		a.nodes = append(a.nodes, n.Node)
	}
	return m
}

func heat(ns, max int64) string {
	if max <= 0 || ns <= 0 {
		return "    "
	}
	// Four-step heat ramp over the share of the hottest line.
	switch share := float64(ns) / float64(max); {
	case share >= 0.75:
		return "████"
	case share >= 0.40:
		return "███ "
	case share >= 0.15:
		return "██  "
	default:
		return "█   "
	}
}

func us(ns int64) string {
	if ns == 0 {
		return ""
	}
	return fmt.Sprintf("%.0f", float64(ns)/1e3)
}

func count(n int64) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf("%d", n)
}

// WriteListing renders the heat-annotated source listing: per line, step
// time (µs), steps, spawned configurations, joins/widenings, widening
// failures, and ⊤ events (give-ups + demotions), next to the source text.
func (r *Report) WriteListing(w io.Writer) error {
	lines := r.byLine()
	var maxNs int64
	for ln, a := range lines {
		if ln > 0 && a.c.StepNs > maxNs {
			maxNs = a.c.StepNs
		}
	}
	fmt.Fprintf(w, "== %s ==\n", r.Name)
	fmt.Fprintf(w, "%s  %8s %7s %7s %6s %6s %5s %4s  source\n",
		"    ", "time(µs)", "steps", "spawn", "join", "widen", "fail", "top")
	f := source.NewFile(r.Name, r.Source)
	for ln := 1; ln <= f.NumLines(); ln++ {
		text := f.Line(ln)
		a := lines[ln]
		if a == nil {
			fmt.Fprintf(w, "%s  %8s %7s %7s %6s %6s %5s %4s  %s\n",
				"    ", "", "", "", "", "", "", "", text)
			continue
		}
		c := &a.c
		fmt.Fprintf(w, "%s  %8s %7s %7s %6s %6s %5s %4s  %s\n",
			heat(c.StepNs, maxNs), us(c.StepNs), count(c.Steps), count(c.Spawned),
			count(c.Joins), count(c.Widenings), count(c.WidenFailures),
			count(c.GiveUps+c.TopDemotions), text)
	}
	if a := lines[0]; a != nil && !a.c.zero() {
		c := &a.c
		fmt.Fprintf(w, "%s  %8s %7s %7s %6s %6s %5s %4s  %s\n",
			heat(0, maxNs), us(c.StepNs), count(c.Steps), count(c.Spawned),
			count(c.Joins), count(c.Widenings), count(c.WidenFailures),
			count(c.GiveUps+c.TopDemotions), "(synthetic / no source span)")
	}
	t := &r.Totals
	fmt.Fprintf(w, "totals: %d steps %.2fms, %d matches (%d hit) %.2fms, %d memo misses, %d prover searches %.2fms, %d joins, %d widenings (%d failed), %d give-ups, %d ⊤ demotions\n",
		t.Steps, float64(t.StepNs)/1e6, t.Matches, t.Matched, float64(t.MatchNs)/1e6,
		t.MemoMisses, t.ProverSearches, float64(t.ProverNs)/1e6,
		t.Joins, t.Widenings, t.WidenFailures, t.GiveUps, t.TopDemotions)
	if len(r.WidenFailures) > 0 {
		fmt.Fprintln(w, "widening failures (no common bound expressions):")
		for _, wf := range r.WidenFailures {
			loc := fmt.Sprintf("n%d", wf.Node)
			if wf.Line > 0 {
				loc = fmt.Sprintf("n%d L%d", wf.Node, wf.Line)
			}
			pair := ""
			if wf.OldBound != "" || wf.NewBound != "" {
				pair = fmt.Sprintf("  %s vs %s", wf.OldBound, wf.NewBound)
			}
			fmt.Fprintf(w, "  %6d× %-10s%s\n", wf.Count, loc, pair)
		}
	}
	return nil
}

// WriteTop writes the n hottest source lines by step time.
func (r *Report) WriteTop(w io.Writer, n int) {
	type row struct {
		line int
		agg  *lineAgg
	}
	var rows []row
	for ln, a := range r.byLine() {
		rows = append(rows, row{ln, a})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].agg.c.StepNs != rows[j].agg.c.StepNs {
			return rows[i].agg.c.StepNs > rows[j].agg.c.StepNs
		}
		return rows[i].line < rows[j].line
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	f := source.NewFile(r.Name, r.Source)
	fmt.Fprintf(w, "hotspots (%s):\n", r.Name)
	for _, rw := range rows {
		text := "(synthetic / no source span)"
		if rw.line > 0 {
			text = strings.TrimSpace(f.Line(rw.line))
		}
		fmt.Fprintf(w, "  L%-4d %8sµs %6d steps  %s\n",
			rw.line, us(rw.agg.c.StepNs), rw.agg.c.Steps, text)
	}
}

// WriteFolded emits collapsed stacks (one "frame;frame value" line each)
// consumable by flamegraph.pl / speedscope / pprof -flame converters.
// Values are microseconds. Only the time counters fold: step, match and
// prover; prover time is also inside match time (sub-attribution
// overlaps), so the match frame folds the non-prover remainder.
func (r *Report) WriteFolded(w io.Writer) error {
	for i := range r.Nodes {
		n := &r.Nodes[i]
		frame := fmt.Sprintf("%s;L%d %s n%d", r.Name, n.Line, n.Kind, n.Node)
		if n.Line == 0 {
			frame = fmt.Sprintf("%s;synthetic %s n%d", r.Name, n.Kind, n.Node)
		}
		if v := n.StepNs / 1e3; v > 0 {
			fmt.Fprintf(w, "%s;step %d\n", frame, v)
		}
		matchOnly := n.MatchNs - n.ProverNs
		if matchOnly < 0 {
			matchOnly = n.MatchNs
		}
		if v := matchOnly / 1e3; v > 0 {
			fmt.Fprintf(w, "%s;match %d\n", frame, v)
		}
		if v := n.ProverNs / 1e3; v > 0 {
			fmt.Fprintf(w, "%s;match;prover %d\n", frame, v)
		}
	}
	return nil
}
