package prof

import (
	"testing"
)

// BenchmarkProfilerDisabled measures the cost of the recording surface
// when profiling is off (nil lanes): the acceptance contract is 0
// allocs/op and a handful of nanoseconds, so the engine can keep its
// recording calls unconditional — the analogue of BenchmarkTracerDisabled.
func BenchmarkProfilerDisabled(b *testing.B) {
	var l *Lanes
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Step(0, 3, 100, 1)
		l.Match(0, 3, 100, 1, 1, 50, true)
		l.Combine(0, 3, i%2 == 0)
		l.GiveUp(0, 3)
		l.TopDemotion(0, 3)
	}
}

// BenchmarkProfilerEnabled is the opt-in cost: plain adds into a private
// lane.
func BenchmarkProfilerEnabled(b *testing.B) {
	l := New().NewLanes(1, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Step(0, 3, 100, 1)
		l.Match(0, 3, 100, 1, 1, 50, true)
		l.Combine(0, 3, i%2 == 0)
	}
}

// TestDisabledZeroAlloc enforces the zero-allocation contract in the
// ordinary test run (benchmarks don't gate CI).
func TestDisabledZeroAlloc(t *testing.T) {
	var l *Lanes
	var p *Profiler
	allocs := testing.AllocsPerRun(1000, func() {
		l.Step(1, 2, 100, 3)
		l.Match(1, 2, 100, 1, 1, 50, false)
		l.Combine(1, 2, true)
		l.WidenFail(1, 2, "a", "b")
		l.GiveUp(1, 2)
		l.TopDemotion(1, 2)
		if p.NewLanes(4, 16) != nil {
			t.Fatal("nil profiler produced lanes")
		}
		p.Commit(nil, nil)
	})
	if allocs != 0 {
		t.Errorf("disabled profiler allocates %v per op, want 0", allocs)
	}
}
