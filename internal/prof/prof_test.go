package prof

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/source"
)

func testGraph() *cfg.Graph {
	span := func(line int) source.Span {
		return source.Span{Start: source.Pos{Line: line, Col: 1}, End: source.Pos{Line: line, Col: 10}}
	}
	return &cfg.Graph{Nodes: []*cfg.Node{
		{ID: 0, Kind: cfg.Entry},
		{ID: 1, Kind: cfg.Assign, AssignName: "x", Span: span(1)},
		{ID: 2, Kind: cfg.Send, Span: span(2)},
		{ID: 3, Kind: cfg.Recv, Span: span(3), Synthetic: true},
	}}
}

func TestCommitMergesLanes(t *testing.T) {
	p := New()
	l := p.NewLanes(2, 4)
	// Two lanes hitting the same node: totals must sum.
	l.Step(0, 1, 100, 2)
	l.Step(1, 1, 50, 1)
	l.Match(2, 2, 300, 2, 1, 120, true)
	l.Combine(0, 2, false)
	l.Combine(1, 2, true)
	l.WidenFail(1, 2, "np - 2", "np - 3")
	l.WidenFail(0, 2, "np - 2", "np - 3")
	l.GiveUp(0, 3)
	l.TopDemotion(0, 3)
	p.Commit(testGraph(), l)

	r := p.Report("test.mpl", "a\nb\nc\n")
	if r.Totals.Steps != 2 || r.Totals.StepNs != 150 || r.Totals.Spawned != 3 {
		t.Errorf("step totals = %+v", r.Totals)
	}
	if r.Totals.Matches != 1 || r.Totals.MemoMisses != 2 || r.Totals.ProverSearches != 1 || r.Totals.ProverNs != 120 {
		t.Errorf("match totals = %+v", r.Totals)
	}
	if r.Totals.Joins != 1 || r.Totals.Widenings != 1 || r.Totals.WidenFailures != 2 {
		t.Errorf("combine totals = %+v", r.Totals)
	}
	if r.Totals.GiveUps != 1 || r.Totals.TopDemotions != 1 {
		t.Errorf("top totals = %+v", r.Totals)
	}
	if len(r.WidenFailures) != 1 {
		t.Fatalf("widen failures = %+v, want one deduped row", r.WidenFailures)
	}
	wf := r.WidenFailures[0]
	if wf.Count != 2 || wf.Node != 2 || wf.Line != 2 || wf.OldBound != "np - 2" {
		t.Errorf("widen failure row = %+v", wf)
	}
	// Node resolution: node 1 resolves to line 1, kind Assign.
	var n1 *NodeProfile
	for i := range r.Nodes {
		if r.Nodes[i].Node == 1 {
			n1 = &r.Nodes[i]
		}
	}
	if n1 == nil || n1.Line != 1 || n1.Kind != "assign" {
		t.Errorf("node 1 profile = %+v", n1)
	}
}

func TestLanesOutOfRangeSafe(t *testing.T) {
	l := New().NewLanes(1, 2)
	// Out-of-range tids and nodes must be dropped, not panic.
	l.Step(-1, 0, 1, 1)
	l.Step(9, 0, 1, 1)
	l.Step(0, -1, 1, 1)
	l.Step(0, 99, 1, 1)
	l.GiveUp(7, 0)
}

func TestReportJSONRoundTrip(t *testing.T) {
	p := New()
	l := p.NewLanes(1, 4)
	l.Step(0, 2, 1500, 1)
	l.WidenFail(0, 2, "a", "b")
	p.Commit(testGraph(), l)
	rep := p.Report("rt.mpl", "line one\nline two\n")

	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Report{rep}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "psdf-profile/1"`) {
		t.Errorf("missing schema marker:\n%s", buf.String())
	}
	jobs, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Name != "rt.mpl" || jobs[0].Totals.Steps != 1 {
		t.Errorf("round trip = %+v", jobs[0])
	}
	if jobs[0].Source != "line one\nline two\n" {
		t.Errorf("source not embedded: %q", jobs[0].Source)
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := []string{
		`{"schema":"other/9","jobs":[]}`,
		`{"jobs":[]}`,
		`{"schema":"psdf-profile/1","jobs":[{"name":""}]}`,
		`{"schema":"psdf-profile/1","jobs":[{"name":"x","nodes":[{"node":-4}]}]}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("ReadJSON(%q) accepted", c)
		}
	}
}

func TestListingAndFolded(t *testing.T) {
	p := New()
	l := p.NewLanes(1, 4)
	l.Step(0, 1, 2000, 1)
	l.Step(0, 2, 9000, 2)
	l.Match(0, 2, 700, 1, 1, 300, true)
	l.GiveUp(0, 3)
	p.Commit(testGraph(), l)
	rep := p.Report("x.mpl", "x = 1\nsend x\nrecv y\n")

	var lst bytes.Buffer
	if err := rep.WriteListing(&lst); err != nil {
		t.Fatal(err)
	}
	out := lst.String()
	for _, want := range []string{"send x", "recv y", "totals:", "2 steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}

	var fold bytes.Buffer
	if err := rep.WriteFolded(&fold); err != nil {
		t.Fatal(err)
	}
	fout := fold.String()
	if !strings.Contains(fout, "x.mpl;L2 send n2;step 9") {
		t.Errorf("folded missing step frame:\n%s", fout)
	}
	for _, line := range strings.Split(strings.TrimSpace(fout), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Errorf("folded line %q not `stack value`", line)
		}
	}

	var top bytes.Buffer
	rep.WriteTop(&top, 1)
	if !strings.Contains(top.String(), "L2") {
		t.Errorf("top-1 should rank line 2 first:\n%s", top.String())
	}
}

func TestSweepAttribution(t *testing.T) {
	a := NewSweepAttribution()
	rep := &Report{
		Name: "p0",
		Nodes: []NodeProfile{
			{Node: 2, Line: 5, Counters: Counters{WidenFailures: 3}},
			{Node: 3, Line: 9, Counters: Counters{GiveUps: 1}},
			{Node: 4, Line: 0, Counters: Counters{TopDemotions: 1}},
		},
		WidenFailures: []WidenFailure{{Node: 2, Line: 5, OldBound: "np - 2", NewBound: "np - 3", Count: 3}},
	}
	ranges := []LineRange{{Label: "shift", Start: 4, End: 6}, {Label: "ring", Start: 8, End: 10}}
	a.Add(rep, ranges, "decor")
	a.Add(rep, ranges, "decor")

	rows := a.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Construct != "shift" || rows[0].WidenFailures != 6 || rows[0].Programs != 2 {
		t.Errorf("top row = %+v", rows[0])
	}
	if rows[0].TopPair() != "np - 2 vs np - 3" {
		t.Errorf("top pair = %q", rows[0].TopPair())
	}
	if rows[1].Construct != "ring" || rows[1].GiveUps != 2 {
		t.Errorf("second row = %+v", rows[1])
	}
	if rows[2].Construct != "decor" || rows[2].TopDemotions != 2 {
		t.Errorf("decor row = %+v", rows[2])
	}

	var tbl bytes.Buffer
	a.WriteTable(&tbl)
	if !strings.Contains(tbl.String(), "shift") || !strings.Contains(tbl.String(), "np - 2 vs np - 3") {
		t.Errorf("table:\n%s", tbl.String())
	}
	var js bytes.Buffer
	if err := a.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), AttrSchema) {
		t.Errorf("attribution json missing schema:\n%s", js.String())
	}
}
