// Package sem implements semantic checking for MPL programs: typing of
// expressions (int vs bool), write-protection of the builtins id and np,
// and collection of program metadata (variables, message tags, whether the
// program reads id — i.e. whether processes can diverge at all).
package sem

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/source"
)

// Builtin variable names of the execution model (Section III).
const (
	IDVar = "id" // this process's rank, in [0 .. np-1]
	NPVar = "np" // total number of processes
)

// Type is the type of an MPL expression.
type Type int

// MPL has just two expression types.
const (
	Int Type = iota
	Bool
	Invalid
)

func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Bool:
		return "bool"
	}
	return "invalid"
}

// Info holds the results of checking a program.
type Info struct {
	// Vars is the sorted list of all integer variables assigned, declared or
	// received into anywhere in the program (excluding builtins).
	Vars []string
	// Tags is the sorted list of message tags appearing on communication
	// statements. The empty tag is not listed.
	Tags []string
	// UsesID reports whether any expression references the builtin id.
	UsesID bool
	// CommCount is the number of communication statements (send, recv,
	// sendrecv each count once).
	CommCount int
}

// Check validates the program and returns its Info. All problems found are
// reported together via the returned error.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		vars: map[string]bool{},
		tags: map[string]bool{},
	}
	c.checkStmts(prog.Stmts)
	info := &Info{UsesID: c.usesID, CommCount: c.commCount}
	for v := range c.vars {
		info.Vars = append(info.Vars, v)
	}
	sort.Strings(info.Vars)
	for t := range c.tags {
		info.Tags = append(info.Tags, t)
	}
	sort.Strings(info.Tags)
	return info, c.diags.Err()
}

type checker struct {
	diags     source.DiagList
	vars      map[string]bool
	tags      map[string]bool
	usesID    bool
	commCount int
}

func (c *checker) defineVar(name string, sp source.Span) {
	if name == IDVar || name == NPVar {
		c.diags.Errorf(sp, "cannot assign to builtin %q", name)
		return
	}
	c.vars[name] = true
}

func (c *checker) checkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.VarDecl:
		for _, n := range x.Names {
			c.defineVar(n, x.Sp)
		}
	case *ast.Assign:
		c.defineVar(x.Name, x.Sp)
		c.wantType(x.Rhs, Int)
	case *ast.If:
		c.wantType(x.Cond, Bool)
		c.checkStmts(x.Then)
		c.checkStmts(x.Else)
	case *ast.While:
		c.wantType(x.Cond, Bool)
		c.checkStmts(x.Body)
	case *ast.For:
		c.defineVar(x.Var, x.Sp)
		c.wantType(x.Lo, Int)
		c.wantType(x.Hi, Int)
		c.checkStmts(x.Body)
	case *ast.Send:
		c.commCount++
		c.wantType(x.Value, Int)
		c.wantType(x.Dest, Int)
		c.noteTag(x.Tag)
	case *ast.Recv:
		c.commCount++
		c.defineVar(x.Name, x.Sp)
		c.wantType(x.Src, Int)
		c.noteTag(x.Tag)
	case *ast.SendRecv:
		c.commCount++
		c.defineVar(x.Name, x.Sp)
		c.wantType(x.Value, Int)
		c.wantType(x.Dest, Int)
		c.wantType(x.Src, Int)
		c.noteTag(x.Tag)
	case *ast.Print:
		c.wantType(x.Arg, Int)
	case *ast.Assume:
		c.wantType(x.Cond, Bool)
	case *ast.Assert:
		c.wantType(x.Cond, Bool)
	case *ast.Skip:
		// nothing to check
	}
}

func (c *checker) noteTag(tag string) {
	if tag != "" {
		c.tags[tag] = true
	}
}

// wantType type-checks e and reports an error unless it has type want.
func (c *checker) wantType(e ast.Expr, want Type) {
	got := c.typeOf(e)
	if got != Invalid && got != want {
		c.diags.Errorf(e.Span(), "expression %s has type %s, want %s", e, got, want)
	}
}

func (c *checker) typeOf(e ast.Expr) Type {
	switch x := e.(type) {
	case *ast.IntLit:
		return Int
	case *ast.BoolLit:
		return Bool
	case *ast.Ident:
		if x.Name == IDVar {
			c.usesID = true
		}
		// All variables are integers; referencing an unassigned variable is
		// allowed (it reads 0), matching the paper's untyped pseudocode.
		return Int
	case *ast.Unary:
		switch x.Op {
		case ast.Neg:
			c.wantType(x.X, Int)
			return Int
		case ast.LNot:
			c.wantType(x.X, Bool)
			return Bool
		}
	case *ast.Binary:
		switch {
		case x.Op.IsArith():
			c.wantType(x.L, Int)
			c.wantType(x.R, Int)
			return Int
		case x.Op.IsComparison():
			c.wantType(x.L, Int)
			c.wantType(x.R, Int)
			return Bool
		case x.Op.IsLogical():
			c.wantType(x.L, Bool)
			c.wantType(x.R, Bool)
			return Bool
		}
	}
	return Invalid
}
