package sem

import (
	"reflect"
	"testing"

	"repro/internal/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.Parse("t.mpl", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return Check(prog)
}

func TestVarsCollected(t *testing.T) {
	info, err := check(t, "var a\nb := 1\nrecv c <- 0\nfor d := 1 to 3 do skip end")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	if !reflect.DeepEqual(info.Vars, want) {
		t.Errorf("Vars = %v, want %v", info.Vars, want)
	}
}

func TestBuiltinsNotAssignable(t *testing.T) {
	for _, src := range []string{"id := 1", "np := 4", "recv id <- 0", "var np", "for id := 1 to 3 do skip end"} {
		if _, err := check(t, src); err == nil {
			t.Errorf("Check(%q) succeeded, want error", src)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	bad := []string{
		"x := 1 < 2",         // bool assigned to int var
		"if 5 then skip end", // int condition
		"print 1 == 2",       // bool print
		"x := (1 < 2) + 3",   // bool in arithmetic
		"if !(x + 1) then skip end",
		"while x do skip end",
		"assume x + 1",
		"send 1 < 2 -> 0",
	}
	for _, src := range bad {
		if _, err := check(t, src); err == nil {
			t.Errorf("Check(%q) succeeded, want type error", src)
		}
	}
}

func TestWellTyped(t *testing.T) {
	good := []string{
		"x := 1 + 2 * np",
		"if id == 0 && np > 1 then send x -> 1 else recv x <- 0 end",
		"assume np >= 2 && np % 2 == 0",
		"assert x == 5 || x > 10",
		"if true then skip end",
	}
	for _, src := range good {
		if _, err := check(t, src); err != nil {
			t.Errorf("Check(%q) error: %v", src, err)
		}
	}
}

func TestUsesID(t *testing.T) {
	info, err := check(t, "x := 1")
	if err != nil {
		t.Fatal(err)
	}
	if info.UsesID {
		t.Error("UsesID = true for id-free program")
	}
	info, err = check(t, "if id == 0 then skip end")
	if err != nil {
		t.Fatal(err)
	}
	if !info.UsesID {
		t.Error("UsesID = false for id-using program")
	}
}

func TestTagsAndCommCount(t *testing.T) {
	info, err := check(t, `
send x -> 1 : halo
recv y <- 0 : halo
send x -> 2 : boundary
sendrecv x -> 1, y <- 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(info.Tags, []string{"boundary", "halo"}) {
		t.Errorf("Tags = %v", info.Tags)
	}
	if info.CommCount != 4 {
		t.Errorf("CommCount = %d, want 4", info.CommCount)
	}
}

func TestReadingUndeclaredIsAllowed(t *testing.T) {
	// MPL mirrors the paper's untyped pseudocode: variables default to 0.
	if _, err := check(t, "x := undeclared + 1"); err != nil {
		t.Errorf("reading undeclared variable should be allowed: %v", err)
	}
}
