package hsm

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sym"
)

func env(pairs ...any) map[string]int64 {
	m := map[string]int64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = int64(pairs[i+1].(int))
	}
	return m
}

func TestEnumerateSimple(t *testing.T) {
	// [11 : 4, 5] = <11,16,21,26> (paper Section VIII-A).
	h := Run(sym.Const(11), sym.Const(4), sym.Const(5))
	got := h.Enumerate(nil, 100)
	want := []int64{11, 16, 21, 26}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("enumerate = %v, want %v", got, want)
	}
}

func TestEnumerateNested(t *testing.T) {
	// [[0 : 2, 10] : 3, 100] = <0,10,100,110,200,210>.
	h := Node(Run(sym.Const(0), sym.Const(2), sym.Const(10)), sym.Const(3), sym.Const(100))
	got := h.Enumerate(nil, 100)
	want := []int64{0, 10, 100, 110, 200, 210}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("enumerate = %v, want %v", got, want)
	}
}

func TestLenAndBounds(t *testing.T) {
	h := Node(Run(sym.Const(2), sym.Const(3), sym.Const(2)), sym.Var("n"), sym.Const(6))
	if h.Len().String() != "3*n" {
		t.Errorf("Len = %v", h.Len())
	}
	min, max := h.Bounds()
	if min.String() != "2" {
		t.Errorf("min = %v", min)
	}
	// max = 2 + 2*2 + 6*(n-1) = 6*n
	if max.String() != "6*n" {
		t.Errorf("max = %v", max)
	}
}

func TestNormalizeAdjacency(t *testing.T) {
	ctx := NewCtx()
	// [[2:3,2]:2,6] == [2:6,2] (paper's adjacency sequence-equality).
	h := Node(Run(sym.Const(2), sym.Const(3), sym.Const(2)), sym.Const(2), sym.Const(6))
	n := ctx.Normalize(h)
	want := Run(sym.Const(2), sym.Const(6), sym.Const(2))
	if !Equal(n, want) {
		t.Errorf("normalize = %v, want %v", n, want)
	}
	// Trivial level collapse: [x : 1, 7] == x.
	h2 := Node(Leaf(sym.Var("x")), sym.Const(1), sym.Const(7))
	if got := ctx.Normalize(h2); !Equal(got, Leaf(sym.Var("x"))) {
		t.Errorf("collapse = %v", got)
	}
}

func TestAddSameShape(t *testing.T) {
	ctx := NewCtx().WithLowerBound("n", 1)
	a := Run(sym.Const(0), sym.Var("n"), sym.Const(1))
	b := Run(sym.Const(5), sym.Var("n"), sym.Const(2))
	s, err := ctx.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := Run(sym.Const(5), sym.Var("n"), sym.Const(3))
	if !Equal(s, want) {
		t.Errorf("sum = %v, want %v", s, want)
	}
}

func TestAddReshape(t *testing.T) {
	ctx := NewCtx().WithLowerBound("n", 1)
	n := sym.Var("n")
	// [0 : n*n, 0] + [[0:n,0]:n,1]: the flat side reshapes to match.
	a := Run(sym.Const(0), sym.Mul(n, n), sym.Zero)
	b := Node(Run(sym.Const(0), n, sym.Zero), n, sym.One)
	s, err := ctx.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	e := env("n", 3)
	got := s.Enumerate(e, 100)
	want := b.Enumerate(e, 100)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestScalarOps(t *testing.T) {
	ctx := NewCtx()
	h := Run(sym.Const(1), sym.Const(3), sym.Const(2)) // <1,3,5>
	m := ctx.MulScalar(h, sym.Const(10))               // <10,30,50>
	if got := m.Enumerate(nil, 10); !reflect.DeepEqual(got, []int64{10, 30, 50}) {
		t.Errorf("mul = %v", got)
	}
	a := ctx.AddScalar(h, sym.Const(100)) // <101,103,105>
	if got := a.Enumerate(nil, 10); !reflect.DeepEqual(got, []int64{101, 103, 105}) {
		t.Errorf("add = %v", got)
	}
}

func TestPaperModExample(t *testing.T) {
	// [12 : 15, 2] % 6 = [[0:3,2]:5,0] = <0,2,4> x5 (Table I example).
	ctx := NewCtx()
	h := Run(sym.Const(12), sym.Const(15), sym.Const(2))
	m, err := ctx.Mod(h, sym.Const(6))
	if err != nil {
		t.Fatal(err)
	}
	got := m.Enumerate(nil, 100)
	var want []int64
	for _, v := range h.Enumerate(nil, 100) {
		want = append(want, v%6)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mod = %v, want %v", got, want)
	}
}

func TestPaperDivExample(t *testing.T) {
	// [20 : 6, 5] / 10 = <2,2,3,3,4,4> (Table I example).
	ctx := NewCtx()
	h := Run(sym.Const(20), sym.Const(6), sym.Const(5))
	d, err := ctx.Div(h, sym.Const(10))
	if err != nil {
		t.Fatal(err)
	}
	got := d.Enumerate(nil, 100)
	want := []int64{2, 2, 3, 3, 4, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("div = %v, want %v", got, want)
	}
}

func TestDivExact(t *testing.T) {
	ctx := NewCtx().WithLowerBound("n", 1)
	n := sym.Var("n")
	// [0 : r, 2n] / n = [0 : r, 2].
	h := Run(sym.Const(0), sym.Var("r"), sym.Scale(n, 2))
	d, err := ctx.Div(h, n)
	if err != nil {
		t.Fatal(err)
	}
	want := Run(sym.Const(0), sym.Var("r"), sym.Const(2))
	if !Equal(d, want) {
		t.Errorf("div = %v, want %v", d, want)
	}
}

// transposeHSM is the paper's square-transpose map [[0:n,n]:n,1].
func transposeHSM(n sym.Expr) *HSM {
	return Node(Run(sym.Const(0), n, n), n, sym.One)
}

func TestSquareGridModDiv(t *testing.T) {
	// Section VIII-A derivation: with np = nrows^2,
	//   id % nrows = [[0:nrows,1]:nrows,0]
	//   id / nrows = [[0:nrows,0]:nrows,1]
	nr := sym.Var("nrows")
	np := sym.Mul(nr, nr)
	ctx := NewCtx().WithLowerBound("nrows", 1)
	id := IDRange(sym.Zero, np)

	m, err := ctx.Mod(id, nr)
	if err != nil {
		t.Fatalf("mod: %v", err)
	}
	wantMod := Node(Run(sym.Const(0), nr, sym.One), nr, sym.Zero)
	if !Equal(m, wantMod) {
		t.Errorf("id %% nrows = %v, want %v", m, wantMod)
	}

	d, err := ctx.Div(id, nr)
	if err != nil {
		t.Fatalf("div: %v", err)
	}
	wantDiv := Node(Run(sym.Const(0), nr, sym.Zero), nr, sym.One)
	if !Equal(d, wantDiv) {
		t.Errorf("id / nrows = %v, want %v", d, wantDiv)
	}

	// (id % nrows)*nrows + id/nrows = [[0:nrows,nrows]:nrows,1].
	prod := ctx.MulScalar(m, nr)
	sum, err := ctx.Add(prod, d)
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	if !Equal(sum, transposeHSM(nr)) {
		t.Errorf("transpose = %v, want %v", sum, transposeHSM(nr))
	}

	// Concrete check at nrows = 4.
	e := env("nrows", 4)
	got := sum.Enumerate(e, 100)
	var want []int64
	for id := int64(0); id < 16; id++ {
		want = append(want, (id%4)*4+id/4)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("transpose enumerate = %v, want %v", got, want)
	}
}

func TestSurjectionSquareTranspose(t *testing.T) {
	// Section VIII-B2: [[0:nrows,nrows]:nrows,1] maps onto [0:np-1].
	nr := sym.Var("nrows")
	ctx := NewCtx().WithLowerBound("nrows", 1)
	p := NewProver(ctx)
	h := transposeHSM(nr)
	idSeq := IDRange(sym.Zero, sym.Mul(nr, nr))
	if !p.SetEqual(h, idSeq) {
		t.Error("transpose surjection not proved")
	}
	if p.SeqEqual(h, idSeq) {
		t.Error("transpose should NOT be sequence-equal to the identity")
	}
}

func TestIdentityCompositionSquareTranspose(t *testing.T) {
	// Section VIII-B1: applying the transpose expression to the transpose
	// HSM yields the identity sequence [0 : np, 1].
	nr := sym.Var("nrows")
	np := sym.Mul(nr, nr)
	ctx := NewCtx().WithLowerBound("nrows", 1)
	h := transposeHSM(nr)

	m, err := ctx.Mod(h, nr)
	if err != nil {
		t.Fatalf("h %% nrows: %v", err)
	}
	d, err := ctx.Div(h, nr)
	if err != nil {
		t.Fatalf("h / nrows: %v", err)
	}
	sum, err := ctx.Add(ctx.MulScalar(m, nr), d)
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	p := NewProver(ctx)
	if !p.SeqEqual(sum, IDRange(sym.Zero, np)) {
		t.Errorf("composition = %v, want identity [0:np,1]", sum)
	}
}

func TestInterleaveSetEquality(t *testing.T) {
	// [[2:3,4]:2,2] ~ [2:6,2] (paper's interleave example:
	// <2,6,10,4,8,12> as a set equals <2,4,6,8,10,12>).
	ctx := NewCtx()
	p := NewProver(ctx)
	a := Node(Run(sym.Const(2), sym.Const(3), sym.Const(4)), sym.Const(2), sym.Const(2))
	b := Run(sym.Const(2), sym.Const(6), sym.Const(2))
	if !p.SetEqual(a, b) {
		t.Error("interleave set-equality not proved")
	}
	if p.SeqEqual(a, b) {
		t.Error("interleaved sequences are not sequence-equal")
	}
}

func TestSwapSetEquality(t *testing.T) {
	// [[1:2,1]:3,10] ~ [[1:3,10]:2,1] (paper's swap example).
	ctx := NewCtx()
	p := NewProver(ctx)
	a := Node(Run(sym.Const(1), sym.Const(2), sym.Const(1)), sym.Const(3), sym.Const(10))
	b := Node(Run(sym.Const(1), sym.Const(3), sym.Const(10)), sym.Const(2), sym.Const(1))
	if !p.SetEqual(a, b) {
		t.Error("swap set-equality not proved")
	}
}

func TestSetEqualRejectsDifferentSets(t *testing.T) {
	ctx := NewCtx()
	p := NewProver(ctx)
	a := Run(sym.Const(0), sym.Const(4), sym.Const(1)) // {0,1,2,3}
	b := Run(sym.Const(0), sym.Const(4), sym.Const(2)) // {0,2,4,6}
	if p.SetEqual(a, b) {
		t.Error("distinct sets proved equal")
	}
	if p.Failures == 0 {
		t.Error("failure not recorded")
	}
}

func TestProverStats(t *testing.T) {
	ctx := NewCtx()
	p := NewProver(ctx)
	a := Run(sym.Const(0), sym.Const(4), sym.Const(1))
	if !p.SetEqual(a, a) {
		t.Fatal("reflexivity failed")
	}
	if p.Proofs != 1 {
		t.Errorf("Proofs = %d", p.Proofs)
	}
}

func TestQuickOpsSemantics(t *testing.T) {
	// Property: when Add/Div/Mod succeed on random constant HSMs, the
	// result enumerates to the exact elementwise operation.
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ctx := NewCtx()
		h := randomHSM(r, 2)
		vals := h.Enumerate(nil, 4096)
		if vals == nil {
			return true
		}
		q := int64(r.Intn(6) + 1)

		if d, err := ctx.Div(h, sym.Const(q)); err == nil {
			got := d.Enumerate(nil, 4096)
			if len(got) != len(vals) {
				return false
			}
			for i, v := range vals {
				if got[i] != v/q {
					return false
				}
			}
		}
		if m, err := ctx.Mod(h, sym.Const(q)); err == nil {
			got := m.Enumerate(nil, 4096)
			if len(got) != len(vals) {
				return false
			}
			for i, v := range vals {
				if got[i] != v%q {
					return false
				}
			}
		}
		k := int64(r.Intn(9) - 4)
		if s := ctx.MulScalar(h, sym.Const(k)); true {
			got := s.Enumerate(nil, 4096)
			for i, v := range vals {
				if got[i] != v*k {
					return false
				}
			}
		}
		h2 := randomHSM(r, 2)
		if a, err := ctx.Add(h, h2); err == nil {
			vals2 := h2.Enumerate(nil, 4096)
			got := a.Enumerate(nil, 4096)
			if len(vals) == len(vals2) {
				for i := range vals {
					if got[i] != vals[i]+vals2[i] {
						return false
					}
				}
			}
		}
		// Normalize preserves the sequence exactly.
		n := ctx.Normalize(h)
		if !reflect.DeepEqual(n.Enumerate(nil, 4096), vals) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSetEqualSound(t *testing.T) {
	// Property: if the prover claims set-equality, the concrete multisets
	// match; and rewrite neighbors always preserve the multiset.
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ctx := NewCtx()
		p := NewProver(ctx)
		a := randomHSM(r, 2)
		for _, nb := range p.neighbors(a) {
			if !sameMultiset(a.Enumerate(nil, 4096), nb.Enumerate(nil, 4096)) {
				return false
			}
		}
		b := randomHSM(r, 2)
		if p.SetEqual(a, b) {
			if !sameMultiset(a.Enumerate(nil, 4096), b.Enumerate(nil, 4096)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func sameMultiset(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append([]int64(nil), a...)
	bc := append([]int64(nil), b...)
	sort.Slice(ac, func(i, j int) bool { return ac[i] < ac[j] })
	sort.Slice(bc, func(i, j int) bool { return bc[i] < bc[j] })
	return reflect.DeepEqual(ac, bc)
}

// randomHSM builds a small random constant HSM (nonnegative strides,
// positive repetitions).
func randomHSM(r *rand.Rand, depth int) *HSM {
	if depth == 0 || r.Intn(3) == 0 {
		return Leaf(sym.Const(int64(r.Intn(20))))
	}
	child := randomHSM(r, depth-1)
	rep := sym.Const(int64(r.Intn(4) + 1))
	stride := sym.Const(int64(r.Intn(8)))
	return Node(child, rep, stride)
}

func TestStringRendering(t *testing.T) {
	h := Node(Run(sym.Const(0), sym.Var("nrows"), sym.Var("nrows")), sym.Var("nrows"), sym.One)
	if h.String() != "[[0:nrows,nrows]:nrows,1]" {
		t.Errorf("String = %q", h.String())
	}
	if Leaf(sym.VarPlus("x", 1)).String() != "x + 1" {
		t.Errorf("leaf String = %q", Leaf(sym.VarPlus("x", 1)).String())
	}
}

func TestCtxInvariants(t *testing.T) {
	nr := sym.Var("nrows")
	ctx := NewCtx().
		WithInvariant("np", sym.Mul(nr, nr)).
		WithLowerBound("nrows", 2)
	// np - nrows*nrows normalizes to 0.
	if !ctx.norm(sym.Sub(sym.Var("np"), sym.Mul(nr, nr))).IsZero() {
		t.Error("invariant not applied")
	}
	if !ctx.ProvePos(sym.Var("nrows")) {
		t.Error("nrows > 0 not proved with lower bound 2")
	}
	if ctx.ProvePos(sym.Sub(sym.Var("nrows"), sym.Var("other"))) {
		t.Error("unsound positivity proof")
	}
	if !ctx.ProveNonNeg(sym.Zero) {
		t.Error("0 >= 0 not proved")
	}
}

func TestProverCache(t *testing.T) {
	ctx := NewCtx()
	p := NewProver(ctx)
	// Interleave set-equality needs a real BFS: [[2:3,4]:2,2] ~ [2:6,2].
	a := Node(Run(sym.Const(2), sym.Const(3), sym.Const(4)), sym.Const(2), sym.Const(2))
	b := Run(sym.Const(2), sym.Const(6), sym.Const(2))
	if !p.SetEqual(a, b) {
		t.Fatal("interleave set-equality failed")
	}
	explored := p.StatesExplored
	if p.CacheHits != 0 {
		t.Fatalf("CacheHits = %d before any repeat", p.CacheHits)
	}
	// Repeat query: answered from the memo, no new states, same decision.
	if !p.SetEqual(a, b) {
		t.Fatal("cached decision flipped")
	}
	// Symmetric argument order hits the same entry.
	if !p.SetEqual(b, a) {
		t.Fatal("symmetric cached decision flipped")
	}
	if p.CacheHits != 2 {
		t.Errorf("CacheHits = %d, want 2", p.CacheHits)
	}
	if p.StatesExplored != explored {
		t.Errorf("cache hit re-ran the search: %d -> %d states", explored, p.StatesExplored)
	}
	if p.Proofs != 3 {
		t.Errorf("Proofs = %d, want 3 (hits still count decisions)", p.Proofs)
	}

	// Negative decisions are cached too (deterministic search).
	c := Run(sym.Const(0), sym.Const(6), sym.Const(1))
	if p.SetEqual(a, c) {
		t.Fatal("unequal sets proved equal")
	}
	failures := p.Failures
	if p.SetEqual(c, a) {
		t.Fatal("cached refutation flipped")
	}
	if p.Failures != failures+1 || p.CacheHits != 3 {
		t.Errorf("refutation not served from cache: failures %d->%d, hits %d", failures, p.Failures, p.CacheHits)
	}

	// SeqEqual decisions are memoized as well.
	if !p.SeqEqual(b, b) {
		t.Fatal("SeqEqual reflexivity failed")
	}
	hits := p.CacheHits
	if !p.SeqEqual(b, b) {
		t.Fatal("cached SeqEqual flipped")
	}
	if p.CacheHits != hits+1 {
		t.Errorf("SeqEqual repeat not cached: hits %d -> %d", hits, p.CacheHits)
	}
}

func TestProverCacheKeyedByContext(t *testing.T) {
	// Same terms under different invariants must not share cache entries:
	// np = n*n makes [0:np,1] ~ [[0:n,1]:n,n*1] reshapeable, an empty
	// context does not.
	a := IDRange(sym.Zero, sym.Var("np"))
	bInner := Node(IDRange(sym.Zero, sym.Var("n")), sym.Var("n"), sym.Var("n"))

	empty := NewProver(NewCtx())
	if empty.SetEqual(a, bInner) {
		t.Fatal("proved set-equality without the np=n*n invariant")
	}
	rich := NewProver(NewCtx().
		WithInvariant("np", sym.Mul(sym.Var("n"), sym.Var("n"))).
		WithLowerBound("n", 1))
	if !rich.SetEqual(a, bInner) {
		t.Fatal("np=n*n reshape not proved")
	}
	// Mutating the context invalidates the old entries by key.
	p := NewProver(NewCtx())
	if p.SetEqual(a, bInner) {
		t.Fatal("empty-context proof unexpectedly succeeded")
	}
	p.Ctx.WithInvariant("np", sym.Mul(sym.Var("n"), sym.Var("n"))).WithLowerBound("n", 1)
	if !p.SetEqual(a, bInner) {
		t.Fatal("stale cached refutation served after context gained the invariant")
	}
	if p.CacheHits != 0 {
		t.Errorf("CacheHits = %d, want 0 (different fingerprints)", p.CacheHits)
	}
}

func TestProverDisableCache(t *testing.T) {
	ctx := NewCtx()
	p := NewProver(ctx)
	p.DisableCache = true
	a := Node(Run(sym.Const(2), sym.Const(3), sym.Const(4)), sym.Const(2), sym.Const(2))
	b := Run(sym.Const(2), sym.Const(6), sym.Const(2))
	if !p.SetEqual(a, b) {
		t.Fatal("interleave set-equality failed")
	}
	// The repeat query must re-decide: no cache hits, another full proof.
	proofs := p.Proofs
	if !p.SetEqual(a, b) {
		t.Fatal("repeat decision flipped with cache disabled")
	}
	if p.CacheHits != 0 {
		t.Errorf("CacheHits = %d with DisableCache, want 0", p.CacheHits)
	}
	if p.Proofs != proofs+1 {
		t.Errorf("Proofs %d -> %d, want +1 per re-decided query", proofs, p.Proofs)
	}
	// Re-enabling the cache starts cold (disabled queries were not stored).
	p.DisableCache = false
	if !p.SetEqual(a, b) {
		t.Fatal("decision flipped after re-enabling cache")
	}
	if p.CacheHits != 0 {
		t.Errorf("disabled-path queries leaked into the cache: hits = %d", p.CacheHits)
	}
	if !p.SetEqual(a, b) || p.CacheHits != 1 {
		t.Errorf("cache did not resume: hits = %d, want 1", p.CacheHits)
	}
}
