package hsm

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/sym"
)

// IDRange returns the HSM mapping the i-th process of a contiguous set of n
// processes starting at lb to its id: [lb : n, 1].
func IDRange(lb, n sym.Expr) *HSM { return Run(lb, n, sym.One) }

// ScalarExpr translates an MPL integer expression that does not reference
// id into a symbolic polynomial (variables become symbols). Division and
// modulus must resolve exactly (e.g. np/2 with the invariant np = 2*nrows).
func (c *Ctx) ScalarExpr(e ast.Expr) (sym.Expr, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return sym.Const(x.Value), nil
	case *ast.Ident:
		if x.Name == sem.IDVar {
			return sym.Zero, fmt.Errorf("hsm: id is not a scalar")
		}
		return c.norm(sym.Var(x.Name)), nil
	case *ast.Unary:
		if x.Op != ast.Neg {
			return sym.Zero, fmt.Errorf("hsm: non-integer unary %v", x.Op)
		}
		v, err := c.ScalarExpr(x.X)
		if err != nil {
			return sym.Zero, err
		}
		return sym.Neg(v), nil
	case *ast.Binary:
		l, err := c.ScalarExpr(x.L)
		if err != nil {
			return sym.Zero, err
		}
		r, err := c.ScalarExpr(x.R)
		if err != nil {
			return sym.Zero, err
		}
		switch x.Op {
		case ast.Add:
			return sym.Add(l, r), nil
		case ast.Sub:
			return sym.Sub(l, r), nil
		case ast.Mul:
			return sym.Mul(l, r), nil
		case ast.Div:
			if q, ok := c.divExact(l, r); ok {
				return q, nil
			}
			if lv, okl := l.IsConst(); okl {
				if rv, okr := r.IsConst(); okr && rv > 0 && lv >= 0 {
					return sym.Const(lv / rv), nil
				}
			}
			return sym.Zero, fmt.Errorf("hsm: inexact scalar division %s / %s", l, r)
		case ast.Mod:
			if _, ok := c.divExact(l, r); ok {
				return sym.Zero, nil
			}
			if lv, okl := l.IsConst(); okl {
				if rv, okr := r.IsConst(); okr && rv > 0 && lv >= 0 {
					return sym.Const(lv % rv), nil
				}
			}
			return sym.Zero, fmt.Errorf("hsm: unresolvable scalar modulus %s %% %s", l, r)
		}
		return sym.Zero, fmt.Errorf("hsm: non-integer operator %v", x.Op)
	}
	return sym.Zero, fmt.Errorf("hsm: unsupported scalar expression %T", e)
}

// Convert builds the HSM describing the value of MPL expression e on each
// process of a set, where idh gives the processes' id values in set order.
// Set-constant subexpressions become scalars; id-dependent subexpressions
// compose through the Table I operations.
func (c *Ctx) Convert(e ast.Expr, idh *HSM) (*HSM, error) {
	if !ast.UsesIdent(e, sem.IDVar) {
		v, err := c.ScalarExpr(e)
		if err != nil {
			return nil, err
		}
		// A scalar is the same value on every process: broadcast.
		return c.normalize(Node(Leaf(v), idh.Len(), sym.Zero)), nil
	}
	switch x := e.(type) {
	case *ast.Ident: // must be id
		return c.Normalize(idh), nil
	case *ast.Unary:
		if x.Op != ast.Neg {
			return nil, fmt.Errorf("hsm: non-integer unary %v", x.Op)
		}
		h, err := c.Convert(x.X, idh)
		if err != nil {
			return nil, err
		}
		return c.MulScalar(h, sym.Const(-1)), nil
	case *ast.Binary:
		lScalar := !ast.UsesIdent(x.L, sem.IDVar)
		rScalar := !ast.UsesIdent(x.R, sem.IDVar)
		switch x.Op {
		case ast.Add, ast.Sub:
			sign := int64(1)
			if x.Op == ast.Sub {
				sign = -1
			}
			if rScalar {
				h, err := c.Convert(x.L, idh)
				if err != nil {
					return nil, err
				}
				k, err := c.ScalarExpr(x.R)
				if err != nil {
					return nil, err
				}
				return c.normalize(c.AddScalar(h, sym.Scale(k, sign))), nil
			}
			if lScalar && x.Op == ast.Add {
				h, err := c.Convert(x.R, idh)
				if err != nil {
					return nil, err
				}
				k, err := c.ScalarExpr(x.L)
				if err != nil {
					return nil, err
				}
				return c.normalize(c.AddScalar(h, k)), nil
			}
			lh, err := c.Convert(x.L, idh)
			if err != nil {
				return nil, err
			}
			rh, err := c.Convert(x.R, idh)
			if err != nil {
				return nil, err
			}
			if x.Op == ast.Sub {
				rh = c.MulScalar(rh, sym.Const(-1))
			}
			return c.Add(lh, rh)
		case ast.Mul:
			if rScalar {
				h, err := c.Convert(x.L, idh)
				if err != nil {
					return nil, err
				}
				k, err := c.ScalarExpr(x.R)
				if err != nil {
					return nil, err
				}
				return c.normalize(c.MulScalar(h, k)), nil
			}
			if lScalar {
				h, err := c.Convert(x.R, idh)
				if err != nil {
					return nil, err
				}
				k, err := c.ScalarExpr(x.L)
				if err != nil {
					return nil, err
				}
				return c.normalize(c.MulScalar(h, k)), nil
			}
			return nil, fmt.Errorf("hsm: product of two id-dependent expressions: %s", e)
		case ast.Div, ast.Mod:
			if !rScalar {
				return nil, fmt.Errorf("hsm: id-dependent divisor: %s", e)
			}
			h, err := c.Convert(x.L, idh)
			if err != nil {
				return nil, err
			}
			k, err := c.ScalarExpr(x.R)
			if err != nil {
				return nil, err
			}
			if x.Op == ast.Div {
				return c.Div(h, k)
			}
			return c.Mod(h, k)
		}
		return nil, fmt.Errorf("hsm: non-integer operator %v in %s", x.Op, e)
	}
	return nil, fmt.Errorf("hsm: unsupported expression %T", e)
}
