package hsm

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/sym"
)

// exprOf parses an MPL expression by wrapping it in an assignment.
func exprOf(t *testing.T, src string) ast.Expr {
	t.Helper()
	prog, err := parser.Parse("expr.mpl", "tmp := "+src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return prog.Stmts[0].(*ast.Assign).Rhs
}

// evalExpr concretely evaluates an MPL integer expression.
func evalExpr(t *testing.T, e ast.Expr, env map[string]int64) int64 {
	t.Helper()
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value
	case *ast.Ident:
		return env[x.Name]
	case *ast.Unary:
		return -evalExpr(t, x.X, env)
	case *ast.Binary:
		l := evalExpr(t, x.L, env)
		r := evalExpr(t, x.R, env)
		switch x.Op {
		case ast.Add:
			return l + r
		case ast.Sub:
			return l - r
		case ast.Mul:
			return l * r
		case ast.Div:
			return l / r
		case ast.Mod:
			return l % r
		}
	}
	t.Fatalf("evalExpr: unsupported %T", e)
	return 0
}

// checkConvert converts src over [0..np-1] and compares elementwise with
// concrete evaluation for each concrete binding in envs.
func checkConvert(t *testing.T, ctx *Ctx, src string, npExpr sym.Expr, envs []map[string]int64) *HSM {
	t.Helper()
	e := exprOf(t, src)
	h, err := ctx.Convert(e, IDRange(sym.Zero, npExpr))
	if err != nil {
		t.Fatalf("Convert(%q): %v", src, err)
	}
	for _, env := range envs {
		np := ctx.norm(npExpr).Eval(env)
		got := h.Enumerate(env, 10000)
		if int64(len(got)) != np {
			t.Fatalf("Convert(%q): length %d, want %d", src, len(got), np)
		}
		for id := int64(0); id < np; id++ {
			cenv := map[string]int64{}
			for k, v := range env {
				cenv[k] = v
			}
			cenv["id"] = id
			cenv["np"] = np
			want := evalExpr(t, e, cenv)
			if got[id] != want {
				t.Fatalf("Convert(%q) at id=%d: got %d, want %d (env %v)", src, id, got[id], want, env)
			}
		}
	}
	return h
}

func squareCtx() *Ctx {
	nr := sym.Var("nrows")
	return NewCtx().
		WithInvariant("np", sym.Mul(nr, nr)).
		WithInvariant("ncols", nr).
		WithLowerBound("nrows", 1)
}

func rectCtx() *Ctx {
	nr := sym.Var("nrows")
	return NewCtx().
		WithInvariant("np", sym.Scale(sym.Mul(nr, nr), 2)).
		WithInvariant("ncols", sym.Scale(nr, 2)).
		WithLowerBound("nrows", 1)
}

func TestConvertSquareTranspose(t *testing.T) {
	ctx := squareCtx()
	envs := []map[string]int64{{"nrows": 2}, {"nrows": 3}, {"nrows": 4}}
	h := checkConvert(t, ctx, "(id % nrows) * nrows + id / nrows", sym.Var("np"), envs)
	if !Equal(h, transposeHSM(sym.Var("nrows"))) {
		t.Errorf("square transpose HSM = %v", h)
	}
}

func TestConvertRectTranspose(t *testing.T) {
	// The ncols = 2*nrows transpose exchange from Section VIII-B:
	// value = id%2 + 2*nrows*((id/2) % nrows) + 2*(id/(2*nrows)).
	ctx := rectCtx()
	envs := []map[string]int64{{"nrows": 2}, {"nrows": 3}}
	h := checkConvert(t, ctx,
		"id % 2 + 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows))",
		sym.Var("np"), envs)

	// Surjection onto [0..np-1] (Section VIII-B2).
	p := NewProver(ctx)
	idSeq := IDRange(sym.Zero, sym.Var("np"))
	if !p.SetEqual(h, idSeq) {
		t.Errorf("rect transpose surjection not proved; h = %v", h)
	}
}

func TestRectTransposeIdentity(t *testing.T) {
	// Composing the rectangular exchange with itself is the identity:
	// apply the same expression with id bound to the send HSM.
	ctx := rectCtx()
	e := exprOf(t, "id % 2 + 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows))")
	h, err := ctx.Convert(e, IDRange(sym.Zero, sym.Var("np")))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := ctx.Convert(e, h)
	if err != nil {
		t.Fatalf("composition: %v", err)
	}
	p := NewProver(ctx)
	if !p.SeqEqual(comp, IDRange(sym.Zero, sym.Var("np"))) {
		t.Errorf("composition = %v, want identity", comp)
	}
}

func TestSquareTransposeIdentityViaConvert(t *testing.T) {
	ctx := squareCtx()
	e := exprOf(t, "(id % nrows) * nrows + id / nrows")
	h, err := ctx.Convert(e, IDRange(sym.Zero, sym.Var("np")))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := ctx.Convert(e, h)
	if err != nil {
		t.Fatalf("composition: %v", err)
	}
	p := NewProver(ctx)
	if !p.SeqEqual(comp, IDRange(sym.Zero, sym.Var("np"))) {
		t.Errorf("composition = %v, want identity", comp)
	}
}

func TestConvertShift(t *testing.T) {
	// Nearest-neighbor shift: id+1 over [0..np-2] maps to [1..np-1].
	ctx := NewCtx().WithLowerBound("np", 2)
	e := exprOf(t, "id + 1")
	h, err := ctx.Convert(e, IDRange(sym.Zero, sym.AddConst(sym.Var("np"), -1)))
	if err != nil {
		t.Fatal(err)
	}
	want := Run(sym.One, sym.AddConst(sym.Var("np"), -1), sym.One)
	if !Equal(h, want) {
		t.Errorf("shift = %v, want %v", h, want)
	}
	// Composition with id-1 is the identity.
	back := exprOf(t, "id - 1")
	comp, err := ctx.Convert(back, h)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProver(ctx)
	if !p.SeqEqual(comp, IDRange(sym.Zero, sym.AddConst(sym.Var("np"), -1))) {
		t.Errorf("comp = %v", comp)
	}
}

func TestConvertScalar(t *testing.T) {
	ctx := NewCtx()
	h, err := ctx.Convert(exprOf(t, "2 * root + 1"), IDRange(sym.Zero, sym.Var("np")))
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]int64{"np": 4, "root": 3}
	got := h.Enumerate(env, 100)
	for _, v := range got {
		if v != 7 {
			t.Fatalf("broadcast = %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("broadcast length = %d", len(got))
	}
}

func TestConvertErrors(t *testing.T) {
	ctx := NewCtx().WithLowerBound("np", 1)
	idh := IDRange(sym.Zero, sym.Var("np"))
	bad := []string{
		"id * id", // product of id-dependent operands
		"np / id", // id-dependent divisor
		"id / 0",  // divisor not positive
		"x / 3",   // inexact scalar division
	}
	for _, src := range bad {
		if _, err := ctx.Convert(exprOf(t, src), idh); err == nil {
			t.Errorf("Convert(%q) succeeded, want error", src)
		}
	}
}

func TestScalarExprResolution(t *testing.T) {
	nr := sym.Var("nrows")
	ctx := NewCtx().WithInvariant("np", sym.Scale(nr, 2)).WithLowerBound("nrows", 1)
	// np / 2 resolves exactly to nrows under the invariant.
	v, err := ctx.ScalarExpr(exprOf(t, "np / 2"))
	if err != nil {
		t.Fatal(err)
	}
	if !sym.Equal(v, nr) {
		t.Errorf("np/2 = %v", v)
	}
	// np % 2 resolves to 0.
	v, err = ctx.ScalarExpr(exprOf(t, "np % 2"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsZero() {
		t.Errorf("np%%2 = %v", v)
	}
	// Constant folding: 7 / 2 = 3, 7 % 2 = 1.
	if v, _ := ctx.ScalarExpr(exprOf(t, "7 / 2")); v.String() != "3" {
		t.Errorf("7/2 = %v", v)
	}
	if v, _ := ctx.ScalarExpr(exprOf(t, "7 % 2")); v.String() != "1" {
		t.Errorf("7%%2 = %v", v)
	}
	if _, err := ctx.ScalarExpr(exprOf(t, "id + 1")); err == nil {
		t.Error("id accepted as scalar")
	}
}
