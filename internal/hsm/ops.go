package hsm

import (
	"errors"
	"fmt"

	"repro/internal/sym"
)

// ErrNoRule indicates no Table I rule applies to the requested operation.
var ErrNoRule = errors.New("hsm: no applicable rule")

func noRule(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrNoRule, fmt.Sprintf(format, args...))
}

// maxOpDepth bounds rule recursion (reshape retries).
const maxOpDepth = 24

// isConstOne reports whether e is the constant 1 (used to skip no-op
// reshapes that would otherwise loop).
func isConstOne(e sym.Expr) bool {
	v, ok := e.IsConst()
	return ok && v == 1
}

// Normalize simplifies an HSM without changing its sequence:
//   - parameters are normalized under the context's invariants,
//   - trivial levels [c : 1, s] collapse to c,
//   - adjacent levels merge when the outer stride equals the inner span
//     ([[e:r,s]:r',r*s] == [e:r*r',s], the sequence-equality of Table I),
//   - a node over a zero-stride node merges when possible.
func (c *Ctx) Normalize(h *HSM) *HSM {
	h = c.Norm(h)
	return c.normalize(h)
}

func (c *Ctx) normalize(h *HSM) *HSM {
	if h.IsLeaf() {
		return h
	}
	child := c.normalize(h.Child)
	r, s := c.norm(h.R), c.norm(h.S)
	// [c : 1, s] == c
	if v, ok := r.IsConst(); ok && v == 1 {
		return child
	}
	if !child.IsLeaf() {
		// Adjacency merge: [[e:ri,si] : r, ri*si] == [e : ri*r, si].
		if c.equal(s, sym.Mul(child.R, child.S)) && !s.IsZero() {
			return c.normalize(Node(child.Child, sym.Mul(child.R, r), child.S))
		}
		// Zero-stride inner with zero outer stride: [[e:ri,0] : r, 0] ==
		// [e : ri*r, 0].
		if s.IsZero() && child.S.IsZero() {
			return c.normalize(Node(child.Child, sym.Mul(child.R, r), sym.Zero))
		}
	}
	return Node(child, r, s)
}

// Add returns the elementwise sum of two equal-length HSMs (Table I
// addition). Shapes are reconciled by splitting flat runs when the top-level
// repetition counts differ by an exact factor.
func (c *Ctx) Add(a, b *HSM) (*HSM, error) {
	return c.add(c.Normalize(a), c.Normalize(b), maxOpDepth)
}

func (c *Ctx) add(a, b *HSM, depth int) (*HSM, error) {
	if depth <= 0 {
		return nil, noRule("add recursion limit on %s + %s", a, b)
	}
	if a.IsLeaf() && b.IsLeaf() {
		return Leaf(sym.Add(a.Base, b.Base)), nil
	}
	if a.IsLeaf() || b.IsLeaf() {
		return nil, noRule("length mismatch: %s + %s", a, b)
	}
	if c.equal(a.R, b.R) {
		child, err := c.add(a.Child, b.Child, depth-1)
		if err != nil {
			return nil, err
		}
		return c.normalize(Node(child, c.norm(a.R), sym.Add(a.S, b.S))), nil
	}
	// Reshape: if a's count factors as b.R * p, split a's top level.
	if p, ok := c.divExact(a.R, b.R); ok && c.ProvePos(p) {
		ra, err := c.reshape(a, p)
		if err == nil {
			return c.add(ra, b, depth-1)
		}
	}
	if p, ok := c.divExact(b.R, a.R); ok && c.ProvePos(p) {
		rb, err := c.reshape(b, p)
		if err == nil {
			return c.add(a, rb, depth-1)
		}
	}
	return nil, noRule("incompatible shapes: %s + %s", a, b)
}

// reshape splits the top level of h = [e : r, s] into [[e : p, s] : r/p, p*s]
// (the adjacency sequence-equality read right to left), so the outer count
// becomes r/p.
func (c *Ctx) reshape(h *HSM, p sym.Expr) (*HSM, error) {
	if h.IsLeaf() {
		return nil, noRule("reshape of leaf %s", h)
	}
	outer, ok := c.divExact(h.R, p)
	if !ok {
		return nil, noRule("reshape: %s not divisible by %s", h.R, p)
	}
	inner := Node(h.Child, c.norm(p), h.S)
	return Node(inner, outer, sym.Mul(p, h.S)), nil
}

// AddScalar adds a set-constant expression to every element.
func (c *Ctx) AddScalar(h *HSM, k sym.Expr) *HSM {
	if h.IsLeaf() {
		return Leaf(sym.Add(h.Base, c.norm(k)))
	}
	return Node(c.AddScalar(h.Child, k), h.R, h.S)
}

// MulScalar multiplies every element by a set-constant expression (Table I
// scalar multiplication): leaf values and all strides scale.
func (c *Ctx) MulScalar(h *HSM, k sym.Expr) *HSM {
	k = c.norm(k)
	if h.IsLeaf() {
		return Leaf(sym.Mul(h.Base, k))
	}
	return Node(c.MulScalar(h.Child, k), h.R, sym.Mul(h.S, k))
}

// divisible reports whether every element of h is exactly divisible by q,
// returning the elementwise quotient.
func (c *Ctx) divisible(h *HSM, q sym.Expr) (*HSM, bool) {
	if h.IsLeaf() {
		d, ok := c.divExact(h.Base, q)
		if !ok {
			return nil, false
		}
		return Leaf(d), true
	}
	child, ok := c.divisible(h.Child, q)
	if !ok {
		return nil, false
	}
	s, ok := c.divExact(h.S, q)
	if !ok {
		return nil, false
	}
	return Node(child, h.R, s), true
}

// Div computes the elementwise integer division h / q for a set-constant
// divisor q > 0 (Table I division). Rules, tried in order on each level:
//
//	A. exact: q divides every element -> scale down.
//	B. block: the child divides exactly and the level's shifts stay inside
//	   one q-block (s*(r-1) < q) -> all copies share the child quotient.
//	C. middle stride: the child's own top stride divides by q and the
//	   residual parts stay inside one q-block -> quotient follows the
//	   child's top-level index.
//	D. reshape: split a level so that the new outer stride is a multiple
//	   of q, then retry.
func (c *Ctx) Div(h *HSM, q sym.Expr) (*HSM, error) {
	q = c.norm(q)
	if !c.ProvePos(q) {
		return nil, noRule("divisor %s not provably positive", q)
	}
	return c.div(c.Normalize(h), q, maxOpDepth)
}

func (c *Ctx) div(h *HSM, q sym.Expr, depth int) (*HSM, error) {
	if depth <= 0 {
		return nil, noRule("div recursion limit on %s / %s", h, q)
	}
	// Rule A: exact division.
	if quot, ok := c.divisible(h, q); ok {
		return c.normalize(quot), nil
	}
	if h.IsLeaf() {
		hv, okh := c.norm(h.Base).IsConst()
		qv, okq := q.IsConst()
		if okh && okq && qv > 0 && hv >= 0 {
			return Leaf(sym.Const(hv / qv)), nil
		}
		return nil, noRule("leaf %s / %s", h, q)
	}
	// Rule A': the level stride alone is divisible by q. Floor division
	// then distributes over the shifts regardless of the child's residues:
	// (c + j*s)/q = c/q + j*(s/q) when q | s.
	if sq, ok := c.divExact(h.S, q); ok {
		if child, err := c.div(h.Child, q, depth-1); err == nil {
			return c.normalize(Node(child, h.R, sq)), nil
		}
	}
	// Rule B: child exactly divisible and shifts confined to one block:
	// (child + j*s)/q == child/q when 0 <= childmax%... here child is a
	// multiple of q so (child + j*s)/q = child/q given j*s <= s*(r-1) < q.
	if quot, ok := c.divisible(h.Child, q); ok {
		span := sym.Sub(q, sym.Mul(h.S, sym.AddConst(h.R, -1)))
		if c.ProvePos(span) {
			return c.normalize(Node(quot, h.R, sym.Zero)), nil
		}
	}
	// Rule C: the quotient follows the child's top-level stride. With
	// child = [cc : cr, cs], elements are cc + t*cs + j*s; if q | cs and
	// max(cc) + s*(r-1) < q and min(cc) >= 0, then the quotient is
	// t*(cs/q), independent of cc and j.
	if !h.Child.IsLeaf() {
		cc, cr, cs := h.Child.Child, h.Child.R, h.Child.S
		if csq, ok := c.divExact(cs, q); ok {
			cmin, cmax := cc.Bounds()
			headroom := sym.Sub(q, sym.Add(cmax, sym.Mul(h.S, sym.AddConst(h.R, -1))))
			if c.ProveNonNeg(cmin) && c.ProvePos(headroom) {
				inner := Node(zeroLike(cc), cr, csq)
				return c.normalize(Node(inner, h.R, sym.Zero)), nil
			}
		}
	}
	// Rule D: reshape so the outer stride becomes s*p with p = q/s.
	if p, ok := c.divExact(q, h.S); ok && c.ProvePos(p) && !isConstOne(p) {
		if re, err := c.reshape(h, p); err == nil {
			// Outer stride of re is q; rule A will now apply at the outer
			// level if the inner block divides down.
			inner, err := c.div(re.Child, q, depth-1)
			if err == nil {
				outerS, ok := c.divExact(re.S, q)
				if ok {
					return c.normalize(Node(inner, re.R, outerS)), nil
				}
			}
		}
	}
	return nil, noRule("%s / %s", h, q)
}

// Mod computes the elementwise h % q for a set-constant modulus q > 0
// (Table I modulus). Rules per level:
//
//	A. q divides every element -> all zeros.
//	B. the level stride is divisible by q -> drop the stride, recurse.
//	C. the child is divisible by q and shifts stay below q -> shifts
//	   survive over a zeroed child.
//	D. reshape so the outer stride becomes a multiple of q, then retry.
func (c *Ctx) Mod(h *HSM, q sym.Expr) (*HSM, error) {
	q = c.norm(q)
	if !c.ProvePos(q) {
		return nil, noRule("modulus %s not provably positive", q)
	}
	return c.mod(c.Normalize(h), q, maxOpDepth)
}

func (c *Ctx) mod(h *HSM, q sym.Expr, depth int) (*HSM, error) {
	if depth <= 0 {
		return nil, noRule("mod recursion limit on %s %% %s", h, q)
	}
	// Rule A: all elements divisible -> zeros, shape collapsed.
	if _, ok := c.divisible(h, q); ok {
		return c.normalize(Node(Leaf(sym.Zero), h.Len(), sym.Zero)), nil
	}
	if h.IsLeaf() {
		hv, okh := c.norm(h.Base).IsConst()
		qv, okq := q.IsConst()
		if okh && okq && qv > 0 && hv >= 0 {
			return Leaf(sym.Const(hv % qv)), nil
		}
		return nil, noRule("leaf %s %% %s", h, q)
	}
	// Rule B: stride divisible by q: (child + j*s) % q == child % q.
	if _, ok := c.divExact(h.S, q); ok {
		child, err := c.mod(h.Child, q, depth-1)
		if err != nil {
			return nil, err
		}
		return c.normalize(Node(child, h.R, sym.Zero)), nil
	}
	// Rule C: child divisible by q and shifts stay below q: result is the
	// shifts over a zeroed child.
	if _, ok := c.divisible(h.Child, q); ok {
		headroom := sym.Sub(q, sym.Mul(h.S, sym.AddConst(h.R, -1)))
		if c.ProvePos(headroom) {
			return c.normalize(Node(zeroLike(h.Child), h.R, h.S)), nil
		}
	}
	// Rule C': child elements all within [0, q) and shifts multiples of q
	// handled by rule B; general in-range child with small shifts:
	cmin, cmax := h.Child.Bounds()
	if c.ProveNonNeg(cmin) {
		headroom := sym.Sub(q, sym.Add(cmax, sym.Mul(h.S, sym.AddConst(h.R, -1))))
		if c.ProvePos(headroom) {
			// Entire level already below q: identity.
			return h, nil
		}
	}
	// Rule D: reshape so outer stride is s*p = q exactly.
	if p, ok := c.divExact(q, h.S); ok && c.ProvePos(p) && !isConstOne(p) {
		if re, err := c.reshape(h, p); err == nil {
			inner, err := c.mod(re.Child, q, depth-1)
			if err == nil {
				return c.normalize(Node(inner, re.R, sym.Zero)), nil
			}
		}
	}
	return nil, noRule("%s %% %s", h, q)
}
