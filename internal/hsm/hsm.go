// Package hsm implements Hierarchical Sequence Maps (Section VIII of the
// paper): descriptors for hierarchies of strided integer sequences, used to
// represent communication expressions over cartesian process grids.
//
// An HSM is either a leaf expression e (the one-element sequence ⟨e⟩) or a
// node [c : r, s] denoting r copies of the sequence c, the j-th copy shifted
// by j*s. All parameters (leaf values, repetition counts, strides) are
// symbolic polynomials (sym.Expr), so a single HSM describes the sequence
// for every value of np, nrows, etc.
//
// The package provides the Table I operations (+, scalar *, /, %), the
// sequence- and set-equality rewrite rules (adjacency, interleaving, level
// swap), and a bounded-search prover for identity and surjectivity of
// send/receive expressions.
package hsm

import (
	"fmt"

	"repro/internal/sym"
)

// HSM is an immutable hierarchical sequence map.
type HSM struct {
	// Leaf case: Base holds the expression; Child is nil.
	Base sym.Expr
	// Node case: Child non-nil, R repetitions (>0), S stride (>=0).
	Child *HSM
	R, S  sym.Expr
}

// Leaf returns the single-element sequence ⟨e⟩.
func Leaf(e sym.Expr) *HSM { return &HSM{Base: e} }

// LeafConst returns ⟨c⟩.
func LeafConst(c int64) *HSM { return Leaf(sym.Const(c)) }

// Node returns [child : r, s].
func Node(child *HSM, r, s sym.Expr) *HSM { return &HSM{Child: child, R: r, S: s} }

// Run returns the flat strided run [e : r, s].
func Run(e, r, s sym.Expr) *HSM { return Node(Leaf(e), r, s) }

// IsLeaf reports whether h is a leaf.
func (h *HSM) IsLeaf() bool { return h.Child == nil }

// Len returns the symbolic sequence length (product of repetition counts).
func (h *HSM) Len() sym.Expr {
	if h.IsLeaf() {
		return sym.One
	}
	return sym.Mul(h.R, h.Child.Len())
}

// String renders the HSM in the paper's syntax, e.g. "[[0:nrows,nrows]:nrows,1]".
func (h *HSM) String() string {
	if h.IsLeaf() {
		return h.Base.String()
	}
	return fmt.Sprintf("[%s:%s,%s]", h.Child, h.R, h.S)
}

// Key returns a canonical map key (same as String; sym rendering is
// deterministic).
func (h *HSM) Key() string { return h.String() }

// Equal reports structural equality of normal-form parameters.
func Equal(a, b *HSM) bool {
	if a.IsLeaf() != b.IsLeaf() {
		return false
	}
	if a.IsLeaf() {
		return sym.Equal(a.Base, b.Base)
	}
	return sym.Equal(a.R, b.R) && sym.Equal(a.S, b.S) && Equal(a.Child, b.Child)
}

// Enumerate lists the concrete sequence under env. It returns nil if the
// total length exceeds limit (guard for property tests).
func (h *HSM) Enumerate(env map[string]int64, limit int) []int64 {
	n := h.Len().Eval(env)
	if n < 0 || n > int64(limit) {
		return nil
	}
	return h.enumerate(env)
}

func (h *HSM) enumerate(env map[string]int64) []int64 {
	if h.IsLeaf() {
		return []int64{h.Base.Eval(env)}
	}
	child := h.Child.enumerate(env)
	r := h.R.Eval(env)
	s := h.S.Eval(env)
	out := make([]int64, 0, int(r)*len(child))
	for j := int64(0); j < r; j++ {
		for _, v := range child {
			out = append(out, v+j*s)
		}
	}
	return out
}

// Map applies fn to every symbolic parameter (leaf bases, repetitions,
// strides), returning a new HSM.
func (h *HSM) Map(fn func(sym.Expr) sym.Expr) *HSM {
	if h.IsLeaf() {
		return Leaf(fn(h.Base))
	}
	return Node(h.Child.Map(fn), fn(h.R), fn(h.S))
}

// zeroLike returns an HSM of the same shape with all leaf values and strides
// zeroed — the elementwise h % m result when m divides every element.
func zeroLike(h *HSM) *HSM {
	if h.IsLeaf() {
		return Leaf(sym.Zero)
	}
	return Node(zeroLike(h.Child), h.R, sym.Zero)
}

// ---------------------------------------------------------------------------
// Context: invariants and assumptions

// Ctx supplies the facts HSM reasoning needs: equality invariants used to
// normalize symbolic parameters (e.g. np = nrows*ncols) and lower bounds on
// size symbols (e.g. nrows >= 1) used to discharge positivity side
// conditions.
type Ctx struct {
	// Subst maps a variable to its replacement, applied to every symbolic
	// parameter before reasoning.
	Subst map[string]sym.Expr
	// LowerBounds gives a known lower bound per symbol; symbols absent
	// default to 0.
	LowerBounds map[string]int64
}

// NewCtx returns an empty context.
func NewCtx() *Ctx {
	return &Ctx{Subst: map[string]sym.Expr{}, LowerBounds: map[string]int64{}}
}

// WithInvariant records var = repl (applied during normalization).
func (c *Ctx) WithInvariant(name string, repl sym.Expr) *Ctx {
	c.Subst[name] = repl
	return c
}

// WithLowerBound records name >= lb.
func (c *Ctx) WithLowerBound(name string, lb int64) *Ctx {
	c.LowerBounds[name] = lb
	return c
}

// norm applies the invariant substitution to an expression.
func (c *Ctx) norm(e sym.Expr) sym.Expr {
	if c == nil || len(c.Subst) == 0 {
		return e
	}
	return sym.SubstAll(e, c.Subst)
}

// Norm applies the invariant substitution throughout an HSM.
func (c *Ctx) Norm(h *HSM) *HSM { return h.Map(c.norm) }

// lowerBound computes a sound lower bound of e under the context's symbol
// bounds: each monomial with a nonnegative coefficient is bounded below by
// evaluating its variables at their (nonnegative) lower bounds; a monomial
// with a negative coefficient and degree >= 1 cannot be bounded without
// upper bounds, so ok=false.
func (c *Ctx) lowerBound(e sym.Expr) (int64, bool) {
	e = c.norm(e)
	var total int64
	for _, t := range e.Terms() {
		if len(t.Vars) == 0 {
			total += t.Coef
			continue
		}
		if t.Coef < 0 {
			return 0, false
		}
		prod := t.Coef
		for _, v := range t.Vars {
			lb := c.LowerBounds[v]
			if lb < 0 {
				return 0, false
			}
			prod *= lb
		}
		total += prod
	}
	return total, true
}

// ProvePos reports whether e > 0 is provable under the context.
func (c *Ctx) ProvePos(e sym.Expr) bool {
	lb, ok := c.lowerBound(e)
	return ok && lb > 0
}

// ProveNonNeg reports whether e >= 0 is provable under the context.
func (c *Ctx) ProveNonNeg(e sym.Expr) bool {
	lb, ok := c.lowerBound(e)
	return ok && lb >= 0
}

// divExact attempts exact division a / b after normalization.
func (c *Ctx) divExact(a, b sym.Expr) (sym.Expr, bool) {
	return sym.Div(c.norm(a), c.norm(b))
}

// equal tests symbolic equality after normalization.
func (c *Ctx) equal(a, b sym.Expr) bool {
	return sym.Equal(c.norm(a), c.norm(b))
}

// ---------------------------------------------------------------------------
// Bounds

// Bounds returns symbolic (min, max) element bounds of h, assuming all
// repetition counts are >= 1 and strides are >= 0 (the HSM well-formedness
// conditions from the paper).
func (h *HSM) Bounds() (min, max sym.Expr) {
	if h.IsLeaf() {
		return h.Base, h.Base
	}
	cmin, cmax := h.Child.Bounds()
	// max shift is S*(R-1).
	shift := sym.Mul(h.S, sym.AddConst(h.R, -1))
	return cmin, sym.Add(cmax, shift)
}
