package hsm

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sym"
)

// Prover decides HSM equalities by bounded heuristic search over the
// Table I rewrite rules, as the paper prescribes ("mechanized by using
// heuristically guided search, a standard technique in automated theorem
// provers").
//
// Two relations are supported:
//
//   - SeqEqual: the HSMs denote the same sequence. Decided by the
//     normalizing rewrites alone (collapse + adjacency merges), which give
//     a canonical form for the sequences arising from Table I operations.
//   - SetEqual: the HSMs denote the same multiset of values in a possibly
//     different order. Decided by breadth-first search over the
//     order-changing rules (level swap, interleaving) combined with the
//     sequence-preserving ones (adjacency, reshape).
type Prover struct {
	Ctx *Ctx
	// MaxStates bounds the BFS frontier; defaults to 4096.
	MaxStates int
	// MaxDepth bounds rewrite distance; defaults to 8.
	MaxDepth int
	// Stats
	StatesExplored int
	Proofs         int
	Failures       int
	// CacheHits counts queries answered from the memo table instead of
	// re-running normalization or the BFS. Proofs/Failures still count
	// cached decisions, so existing stats keep their meaning.
	CacheHits int
	// cache memoizes decided queries. A decision is a pure function of the
	// two terms, the relation, the search bounds and the context facts, so
	// the key fingerprints all of them (the context is mutable via
	// WithInvariant/WithLowerBound, hence the fingerprint rather than an
	// install-time snapshot). Both proofs and refutations are cached: the
	// search is deterministic, so a failure at the same bounds repeats.
	cache map[string]bool
	// DisableCache turns the memo table off: every query re-runs
	// normalization and the BFS, and CacheHits stays 0. The decisions are
	// unchanged (the cache is transparent); only the work and the cache
	// counters move. Used by the bench-history precision-fingerprint
	// fixtures to emulate a broken cache path, and handy when profiling
	// the raw search.
	DisableCache bool
	// Tracer, when non-nil, receives one obs.PhaseProver span per search
	// that misses the memo (cache hits are free and not worth a span). The
	// spans land on the dedicated prover lane (obs.ProverTid) under
	// TracePID's process, with the explored-state count in the detail.
	Tracer   *obs.Tracer
	TracePID int
	// ProfileLabels attaches the psdf_phase=prover pprof goroutine label
	// to memo-missing searches, so CPU profiles attribute normalization
	// and BFS samples to the prover alongside the engine's phase labels.
	// Cache hits stay label-free (they do no search work).
	ProfileLabels bool
	// Searches / SearchNs count memo-missing searches (SeqEqual and
	// SetEqual bodies; cache hits are excluded) and their cumulative wall
	// time. Unlike the plain-int Stats above they are atomics: progress
	// samplers and the engine profiler read them live from other
	// goroutines while the matcher-serialized searches run.
	Searches atomic.Int64
	SearchNs atomic.Int64
}

// timed wraps a memo-missing search body with the search counters.
func (p *Prover) timed(fn func() bool) func() bool {
	return func() bool {
		start := time.Now()
		defer func() {
			p.Searches.Add(1)
			p.SearchNs.Add(time.Since(start).Nanoseconds())
		}()
		return fn()
	}
}

// labeled runs fn under the prover pprof label when ProfileLabels is set.
func (p *Prover) labeled(fn func() bool) bool {
	if !p.ProfileLabels {
		return fn()
	}
	var res bool
	pprof.Do(context.Background(), pprof.Labels("psdf_phase", "prover"),
		func(context.Context) { res = fn() })
	return res
}

// NewProver returns a prover over the context.
func NewProver(ctx *Ctx) *Prover {
	return &Prover{Ctx: ctx, MaxStates: 4096, MaxDepth: 8}
}

// ctxFingerprint renders the context facts that influence decisions, in a
// deterministic order, so cached results survive only as long as the facts
// they were decided under.
func (p *Prover) ctxFingerprint() string {
	c := p.Ctx
	if c == nil {
		return ""
	}
	parts := make([]string, 0, len(c.Subst)+len(c.LowerBounds))
	for v, e := range c.Subst {
		parts = append(parts, v+"="+e.Key())
	}
	for v, lb := range c.LowerBounds {
		parts = append(parts, fmt.Sprintf("%s>=%d", v, lb))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// cacheKey builds the memo key for relation rel over terms with keys ka, kb.
func (p *Prover) cacheKey(rel, ka, kb string) string {
	return fmt.Sprintf("%s\x1f%d\x1f%d\x1f%s\x1f%s\x1f%s",
		rel, p.maxDepth(), p.maxStates(), p.ctxFingerprint(), ka, kb)
}

// lookup consults the memo table, maintaining the decision counters so the
// hit is indistinguishable from a re-run (minus the work).
func (p *Prover) lookup(key string) (bool, bool) {
	if p.DisableCache {
		return false, false
	}
	res, ok := p.cache[key]
	if ok {
		p.CacheHits++
		if res {
			p.Proofs++
		} else {
			p.Failures++
		}
	}
	return res, ok
}

func (p *Prover) store(key string, res bool) {
	if p.DisableCache {
		return
	}
	if p.cache == nil {
		p.cache = map[string]bool{}
	}
	p.cache[key] = res
}

// SeqEqual reports whether a and b provably denote the same sequence.
func (p *Prover) SeqEqual(a, b *HSM) bool {
	ka, kb := a.Key(), b.Key()
	key := p.cacheKey("seq", ka, kb)
	if res, ok := p.lookup(key); ok {
		return res
	}
	return p.labeled(p.timed(func() bool {
		if p.Tracer.Enabled() {
			sp := p.Tracer.Begin(p.TracePID, obs.ProverTid, obs.PhaseProver, ka+" =seq "+kb)
			defer sp.EndDetail("rel=seq")
		}
		na := p.Ctx.Normalize(a)
		nb := p.Ctx.Normalize(b)
		if Equal(na, nb) {
			p.Proofs++
			p.store(key, true)
			return true
		}
		p.Failures++
		p.store(key, false)
		return false
	}))
}

// SetEqual reports whether a and b provably denote the same set of values.
// The relation is symmetric, so the key orders the operands canonically and
// one decision serves both argument orders.
func (p *Prover) SetEqual(a, b *HSM) bool {
	ka, kb := a.Key(), b.Key()
	if kb < ka {
		ka, kb = kb, ka
	}
	key := p.cacheKey("set", ka, kb)
	if res, ok := p.lookup(key); ok {
		return res
	}
	return p.labeled(p.timed(func() bool {
		if p.Tracer.Enabled() {
			sp := p.Tracer.Begin(p.TracePID, obs.ProverTid, obs.PhaseProver, ka+" ~set "+kb)
			before := p.StatesExplored
			res := p.setEqualSearch(a, b)
			sp.EndDetail(fmt.Sprintf("rel=set states=%d", p.StatesExplored-before))
			p.store(key, res)
			return res
		}
		res := p.setEqualSearch(a, b)
		p.store(key, res)
		return res
	}))
}

func (p *Prover) setEqualSearch(a, b *HSM) bool {
	na := p.Ctx.Normalize(a)
	nb := p.Ctx.Normalize(b)
	if Equal(na, nb) {
		p.Proofs++
		return true
	}
	target := nb.Key()
	seen := map[string]bool{na.Key(): true}
	frontier := []*HSM{na}
	for depth := 0; depth < p.maxDepth(); depth++ {
		var next []*HSM
		for _, h := range frontier {
			for _, nh := range p.neighbors(h) {
				k := nh.Key()
				if seen[k] {
					continue
				}
				if k == target {
					p.Proofs++
					return true
				}
				seen[k] = true
				p.StatesExplored++
				if len(seen) > p.maxStates() {
					p.Failures++
					return false
				}
				next = append(next, nh)
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	p.Failures++
	return false
}

func (p *Prover) maxStates() int {
	if p.MaxStates <= 0 {
		return 4096
	}
	return p.MaxStates
}

func (p *Prover) maxDepth() int {
	if p.MaxDepth <= 0 {
		return 8
	}
	return p.MaxDepth
}

// neighbors generates all HSMs one set-preserving rewrite away from h,
// applying rules at every node of the term.
func (p *Prover) neighbors(h *HSM) []*HSM {
	var out []*HSM
	p.rewriteAt(h, func(sub *HSM) []*HSM {
		return p.localRewrites(sub)
	}, func(nh *HSM) {
		out = append(out, p.Ctx.Normalize(nh))
	})
	return out
}

// rewriteAt applies gen to every subterm of h, emitting h with that subterm
// replaced by each generated alternative.
func (p *Prover) rewriteAt(h *HSM, gen func(*HSM) []*HSM, emit func(*HSM)) {
	for _, alt := range gen(h) {
		emit(alt)
	}
	if !h.IsLeaf() {
		p.rewriteAt(h.Child, gen, func(nc *HSM) {
			emit(Node(nc, h.R, h.S))
		})
	}
}

// localRewrites generates single-step rewrites rooted at h.
func (p *Prover) localRewrites(h *HSM) []*HSM {
	if h.IsLeaf() {
		return nil
	}
	c := p.Ctx
	var out []*HSM

	// Level swap (set-equality): [[e:r,s]:r',s'] ~ [[e:r',s']:r,s].
	if !h.Child.IsLeaf() {
		inner := h.Child
		out = append(out, Node(Node(inner.Child, h.R, h.S), inner.R, inner.S))
	}

	// Interleave forward (set-equality): [[e:r,r'*s]:r',s] ~ [e:r*r',s].
	if !h.Child.IsLeaf() {
		inner := h.Child
		if c.equal(inner.S, sym.Mul(h.R, h.S)) {
			out = append(out, Node(inner.Child, sym.Mul(inner.R, h.R), h.S))
		}
	}

	// Interleave backward: [e:R,s] ~ [[e:R/p, p*s]:p, s] for factor p.
	for _, f := range p.factorCandidates(h.R) {
		if r, ok := c.divExact(h.R, f); ok && c.ProvePos(r) && c.ProvePos(f) && !isConstOne(f) {
			inner := Node(h.Child, r, sym.Mul(f, h.S))
			out = append(out, Node(inner, f, h.S))
		}
	}

	// Adjacency backward (reshape; sequence-preserving): [e:R,s] ->
	// [[e:p,s]:R/p, p*s].
	for _, f := range p.factorCandidates(h.R) {
		if re, err := c.reshape(h, f); err == nil {
			out = append(out, re)
		}
	}

	// Adjacency forward is performed by Normalize already; still expose it
	// for subterms whose strides only match after other rewrites.
	if !h.Child.IsLeaf() {
		inner := h.Child
		if c.equal(h.S, sym.Mul(inner.R, inner.S)) {
			out = append(out, Node(inner.Child, sym.Mul(inner.R, h.R), inner.S))
		}
	}
	return out
}

// factorCandidates proposes divisors to try when splitting a repetition
// count: the symbols appearing in it, products with small constants, and
// small constant factors.
func (p *Prover) factorCandidates(r sym.Expr) []sym.Expr {
	r = p.Ctx.norm(r)
	seen := map[string]bool{}
	var out []sym.Expr
	add := func(e sym.Expr) {
		k := e.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	vars := r.Vars()
	sort.Strings(vars)
	for _, v := range vars {
		add(sym.Var(v))
		add(sym.Scale(sym.Var(v), 2))
	}
	for _, k := range []int64{2, 3, 4} {
		add(sym.Const(k))
	}
	if v, ok := r.IsConst(); ok {
		for d := int64(2); d*d <= v; d++ {
			if v%d == 0 {
				add(sym.Const(d))
				add(sym.Const(v / d))
			}
		}
	}
	return out
}
