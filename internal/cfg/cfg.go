// Package cfg builds control-flow graphs for MPL programs.
//
// Each CFG node holds at most one atomic action: an assignment, a branch
// condition, a communication operation, a print, or an assume/assert.
// For-loops are desugared into an initialization, a branch and an increment,
// so downstream analyses only see assignments and branches. The parallel
// dataflow framework (internal/core) runs over tuples of positions in this
// graph — the pCFG of Section V of the paper.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/source"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	Entry NodeKind = iota
	Exit
	Assign   // x := e
	Branch   // two successors: true / false
	Send     // send value -> dest
	Recv     // recv x <- src
	SendRecv // combined exchange
	Print
	Assume
	Assert
	Skip
)

func (k NodeKind) String() string {
	switch k {
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	case Assign:
		return "assign"
	case Branch:
		return "branch"
	case Send:
		return "send"
	case Recv:
		return "recv"
	case SendRecv:
		return "sendrecv"
	case Print:
		return "print"
	case Assume:
		return "assume"
	case Assert:
		return "assert"
	case Skip:
		return "skip"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// EdgeKind classifies CFG edges.
type EdgeKind int

// Edge kinds. Branch nodes have one True and one False successor; all other
// nodes have at most one Seq successor.
const (
	Seq EdgeKind = iota
	True
	False
)

func (k EdgeKind) String() string {
	switch k {
	case Seq:
		return "seq"
	case True:
		return "true"
	case False:
		return "false"
	}
	return fmt.Sprintf("edge(%d)", int(k))
}

// Edge is a directed CFG edge.
type Edge struct {
	From, To *Node
	Kind     EdgeKind
}

// Node is a single CFG node.
type Node struct {
	ID   int
	Kind NodeKind

	// Populated according to Kind:
	AssignName string   // Assign: target variable
	AssignRhs  ast.Expr // Assign: right-hand side
	Cond       ast.Expr // Branch / Assume / Assert: the condition
	Value      ast.Expr // Send/SendRecv: payload expression
	Dest       ast.Expr // Send/SendRecv: destination process expression
	RecvName   string   // Recv/SendRecv: target variable
	Src        ast.Expr // Recv/SendRecv: source process expression
	Arg        ast.Expr // Print: argument
	Tag        string   // Send/Recv/SendRecv: message type tag

	// Synthetic marks nodes created by desugaring (e.g. for-loop
	// initialization and increment) rather than written by the user.
	Synthetic bool

	Span  source.Span
	Succs []*Edge
	Preds []*Edge
}

// IsComm reports whether the node is a communication operation — the
// paper's isCommOp predicate.
func (n *Node) IsComm() bool {
	return n.Kind == Send || n.Kind == Recv || n.Kind == SendRecv
}

// SuccSeq returns the unique sequential successor of a non-branch node, or
// nil for Exit.
func (n *Node) SuccSeq() *Node {
	for _, e := range n.Succs {
		if e.Kind == Seq {
			return e.To
		}
	}
	return nil
}

// SuccBranch returns the True and False successors of a Branch node.
func (n *Node) SuccBranch() (t, f *Node) {
	for _, e := range n.Succs {
		switch e.Kind {
		case True:
			t = e.To
		case False:
			f = e.To
		}
	}
	return t, f
}

// Label renders a short human-readable description of the node's action.
func (n *Node) Label() string {
	switch n.Kind {
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	case Assign:
		return fmt.Sprintf("%s := %s", n.AssignName, n.AssignRhs)
	case Branch:
		return fmt.Sprintf("if %s", n.Cond)
	case Send:
		return fmt.Sprintf("send %s -> %s", n.Value, n.Dest)
	case Recv:
		return fmt.Sprintf("recv %s <- %s", n.RecvName, n.Src)
	case SendRecv:
		return fmt.Sprintf("sendrecv %s -> %s, %s <- %s", n.Value, n.Dest, n.RecvName, n.Src)
	case Print:
		return fmt.Sprintf("print %s", n.Arg)
	case Assume:
		return fmt.Sprintf("assume %s", n.Cond)
	case Assert:
		return fmt.Sprintf("assert %s", n.Cond)
	case Skip:
		return "skip"
	}
	return n.Kind.String()
}

func (n *Node) String() string { return fmt.Sprintf("n%d[%s]", n.ID, n.Label()) }

// Graph is a control-flow graph with unique Entry and Exit nodes.
type Graph struct {
	Nodes []*Node
	Entry *Node
	Exit  *Node
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id int) *Node {
	if id >= 0 && id < len(g.Nodes) {
		return g.Nodes[id]
	}
	return nil
}

// CommNodes returns all communication nodes in ID order.
func (g *Graph) CommNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.IsComm() {
			out = append(out, n)
		}
	}
	return out
}

// Build constructs the CFG for a program.
func Build(prog *ast.Program) *Graph {
	b := &builder{}
	b.g = &Graph{}
	b.g.Entry = b.newNode(Entry, source.Span{})
	exitNode := b.newNode(Exit, source.Span{})
	b.g.Exit = exitNode
	last := b.buildStmts(prog.Stmts, []*pending{{b.g.Entry, Seq}})
	b.connect(last, exitNode)
	return b.g
}

// pending is a dangling edge waiting for its target node.
type pending struct {
	from *Node
	kind EdgeKind
}

type builder struct {
	g *Graph
}

func (b *builder) newNode(kind NodeKind, sp source.Span) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: kind, Span: sp}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) connect(pendings []*pending, to *Node) {
	for _, p := range pendings {
		e := &Edge{From: p.from, To: to, Kind: p.kind}
		p.from.Succs = append(p.from.Succs, e)
		to.Preds = append(to.Preds, e)
	}
}

// buildStmts threads the statement list, returning the dangling edges that
// should connect to whatever follows.
func (b *builder) buildStmts(stmts []ast.Stmt, in []*pending) []*pending {
	cur := in
	for _, s := range stmts {
		cur = b.buildStmt(s, cur)
	}
	return cur
}

func (b *builder) buildStmt(s ast.Stmt, in []*pending) []*pending {
	switch x := s.(type) {
	case *ast.VarDecl:
		// Declarations have no runtime effect (variables start at 0).
		return in
	case *ast.Skip:
		return in
	case *ast.Assign:
		n := b.newNode(Assign, x.Sp)
		n.AssignName, n.AssignRhs = x.Name, x.Rhs
		b.connect(in, n)
		return []*pending{{n, Seq}}
	case *ast.Print:
		n := b.newNode(Print, x.Sp)
		n.Arg = x.Arg
		b.connect(in, n)
		return []*pending{{n, Seq}}
	case *ast.Assume:
		n := b.newNode(Assume, x.Sp)
		n.Cond = x.Cond
		b.connect(in, n)
		return []*pending{{n, Seq}}
	case *ast.Assert:
		n := b.newNode(Assert, x.Sp)
		n.Cond = x.Cond
		b.connect(in, n)
		return []*pending{{n, Seq}}
	case *ast.Send:
		n := b.newNode(Send, x.Sp)
		n.Value, n.Dest, n.Tag = x.Value, x.Dest, x.Tag
		b.connect(in, n)
		return []*pending{{n, Seq}}
	case *ast.Recv:
		n := b.newNode(Recv, x.Sp)
		n.RecvName, n.Src, n.Tag = x.Name, x.Src, x.Tag
		b.connect(in, n)
		return []*pending{{n, Seq}}
	case *ast.SendRecv:
		n := b.newNode(SendRecv, x.Sp)
		n.Value, n.Dest, n.RecvName, n.Src, n.Tag = x.Value, x.Dest, x.Name, x.Src, x.Tag
		b.connect(in, n)
		return []*pending{{n, Seq}}
	case *ast.If:
		br := b.newNode(Branch, x.Sp)
		br.Cond = x.Cond
		b.connect(in, br)
		thenOut := b.buildStmts(x.Then, []*pending{{br, True}})
		elseOut := b.buildStmts(x.Else, []*pending{{br, False}})
		return append(thenOut, elseOut...)
	case *ast.While:
		br := b.newNode(Branch, x.Sp)
		br.Cond = x.Cond
		b.connect(in, br)
		bodyOut := b.buildStmts(x.Body, []*pending{{br, True}})
		b.connect(bodyOut, br) // back edge
		return []*pending{{br, False}}
	case *ast.For:
		// for i := lo to hi do B end
		//   ==>  i := lo; while i <= hi do B; i := i + 1 end
		initN := b.newNode(Assign, x.Sp)
		initN.AssignName, initN.AssignRhs = x.Var, x.Lo
		initN.Synthetic = true
		b.connect(in, initN)

		br := b.newNode(Branch, x.Sp)
		br.Cond = &ast.Binary{
			Op: ast.Le,
			L:  &ast.Ident{Name: x.Var, Sp: x.Sp},
			R:  x.Hi,
			Sp: x.Sp,
		}
		b.connect([]*pending{{initN, Seq}}, br)

		bodyOut := b.buildStmts(x.Body, []*pending{{br, True}})

		inc := b.newNode(Assign, x.Sp)
		inc.AssignName = x.Var
		inc.AssignRhs = &ast.Binary{
			Op: ast.Add,
			L:  &ast.Ident{Name: x.Var, Sp: x.Sp},
			R:  &ast.IntLit{Value: 1, Sp: x.Sp},
			Sp: x.Sp,
		}
		inc.Synthetic = true
		b.connect(bodyOut, inc)
		b.connect([]*pending{{inc, Seq}}, br) // back edge
		return []*pending{{br, False}}
	}
	panic(fmt.Sprintf("cfg: unhandled statement %T", s))
}

// Dot renders the graph in Graphviz dot syntax.
func (g *Graph) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		shape := ""
		if n.Kind == Branch {
			shape = ", shape=diamond"
		}
		if n.IsComm() {
			shape = ", style=bold"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", n.ID, fmt.Sprintf("%d: %s", n.ID, n.Label()), shape)
	}
	for _, n := range g.Nodes {
		edges := append([]*Edge(nil), n.Succs...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].To.ID < edges[j].To.ID })
		for _, e := range edges {
			lbl := ""
			if e.Kind != Seq {
				lbl = fmt.Sprintf(" [label=%q]", e.Kind)
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", e.From.ID, e.To.ID, lbl)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ReachableFrom returns the set of node IDs reachable from start (inclusive).
func (g *Graph) ReachableFrom(start *Node) map[int]bool {
	seen := map[int]bool{}
	var stack []*Node
	stack = append(stack, start)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n.ID] {
			continue
		}
		seen[n.ID] = true
		for _, e := range n.Succs {
			stack = append(stack, e.To)
		}
	}
	return seen
}
