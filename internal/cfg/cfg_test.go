package cfg

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := parser.Parse("t.mpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Build(prog)
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\ny := 2\nprint y")
	// entry -> assign -> assign -> print -> exit
	n := g.Entry.SuccSeq()
	if n.Kind != Assign || n.AssignName != "x" {
		t.Fatalf("first = %v", n)
	}
	n = n.SuccSeq()
	if n.Kind != Assign || n.AssignName != "y" {
		t.Fatalf("second = %v", n)
	}
	n = n.SuccSeq()
	if n.Kind != Print {
		t.Fatalf("third = %v", n)
	}
	if n.SuccSeq() != g.Exit {
		t.Fatalf("print successor = %v, want exit", n.SuccSeq())
	}
}

func TestIfBothBranchesReachExit(t *testing.T) {
	g := build(t, "if id == 0 then x := 1 else x := 2 end\nprint x")
	br := g.Entry.SuccSeq()
	if br.Kind != Branch {
		t.Fatalf("first = %v", br)
	}
	tN, fN := br.SuccBranch()
	if tN == nil || fN == nil {
		t.Fatal("branch missing true/false successors")
	}
	// Both branches converge at print.
	join1 := tN.SuccSeq()
	join2 := fN.SuccSeq()
	if join1 != join2 || join1.Kind != Print {
		t.Errorf("branches do not join at print: %v vs %v", join1, join2)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, "if id == 0 then x := 1 end\nprint x")
	br := g.Entry.SuccSeq()
	tN, fN := br.SuccBranch()
	if fN.Kind != Print {
		t.Errorf("false edge should skip to print, got %v", fN)
	}
	if tN.SuccSeq() != fN {
		t.Errorf("then branch should rejoin at print")
	}
}

func TestWhileLoopShape(t *testing.T) {
	g := build(t, "while i < np do i := i + 1 end\nprint i")
	br := g.Entry.SuccSeq()
	if br.Kind != Branch {
		t.Fatalf("loop head = %v", br)
	}
	body, exit := br.SuccBranch()
	if body.Kind != Assign {
		t.Fatalf("body = %v", body)
	}
	if body.SuccSeq() != br {
		t.Error("body does not loop back to head")
	}
	if exit.Kind != Print {
		t.Errorf("exit = %v", exit)
	}
}

func TestForDesugar(t *testing.T) {
	g := build(t, "for i := 1 to np - 1 do send x -> i end")
	init := g.Entry.SuccSeq()
	if init.Kind != Assign || init.AssignName != "i" || !init.Synthetic {
		t.Fatalf("init = %v synthetic=%v", init, init.Synthetic)
	}
	br := init.SuccSeq()
	if br.Kind != Branch || br.Cond.String() != "i <= np - 1" {
		t.Fatalf("loop head = %v", br)
	}
	body, exit := br.SuccBranch()
	if body.Kind != Send {
		t.Fatalf("body = %v", body)
	}
	inc := body.SuccSeq()
	if inc.Kind != Assign || inc.AssignRhs.String() != "i + 1" || !inc.Synthetic {
		t.Fatalf("inc = %v", inc)
	}
	if inc.SuccSeq() != br {
		t.Error("increment does not loop back")
	}
	if exit != g.Exit {
		t.Errorf("false edge = %v, want exit", exit)
	}
}

func TestCommNodes(t *testing.T) {
	g := build(t, "send x -> 1\nrecv y <- 0\nsendrecv x -> 1, y <- 1\nprint x")
	comm := g.CommNodes()
	if len(comm) != 3 {
		t.Fatalf("CommNodes = %d, want 3", len(comm))
	}
	if comm[0].Kind != Send || comm[1].Kind != Recv || comm[2].Kind != SendRecv {
		t.Errorf("kinds = %v %v %v", comm[0].Kind, comm[1].Kind, comm[2].Kind)
	}
	for _, n := range comm {
		if !n.IsComm() {
			t.Errorf("%v IsComm = false", n)
		}
	}
	if g.Entry.IsComm() {
		t.Error("entry IsComm = true")
	}
}

func TestTagsOnNodes(t *testing.T) {
	g := build(t, "send x -> 1 : halo")
	n := g.Entry.SuccSeq()
	if n.Tag != "halo" {
		t.Errorf("tag = %q", n.Tag)
	}
}

func TestVarDeclAndSkipProduceNoNodes(t *testing.T) {
	g := build(t, "var a, b\nskip\nx := 1")
	n := g.Entry.SuccSeq()
	if n.Kind != Assign {
		t.Errorf("first real node = %v, want assign", n)
	}
}

func TestReachability(t *testing.T) {
	g := build(t, "if id == 0 then send x -> 1 else recv x <- 0 end")
	seen := g.ReachableFrom(g.Entry)
	if len(seen) != len(g.Nodes) {
		t.Errorf("reachable %d of %d nodes", len(seen), len(g.Nodes))
	}
}

func TestDotOutput(t *testing.T) {
	g := build(t, "if id == 0 then send x -> 1 end")
	dot := g.Dot("test")
	for _, want := range []string{"digraph", "send x -> 1", "true", "false"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestNodeLabels(t *testing.T) {
	g := build(t, "x := 5\nsend x -> id + 1\nrecv y <- 0\nprint y\nassume np >= 2\nassert y == 5")
	var labels []string
	for n := g.Entry.SuccSeq(); n != nil && n.Kind != Exit; n = n.SuccSeq() {
		labels = append(labels, n.Label())
	}
	want := []string{"x := 5", "send x -> id + 1", "recv y <- 0", "print y", "assume np >= 2", "assert y == 5"}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("label[%d] = %q, want %q", i, labels[i], want[i])
		}
	}
}

func TestPredEdges(t *testing.T) {
	g := build(t, "if id == 0 then x := 1 else x := 2 end\nprint x")
	var printNode *Node
	for _, n := range g.Nodes {
		if n.Kind == Print {
			printNode = n
		}
	}
	if printNode == nil || len(printNode.Preds) != 2 {
		t.Fatalf("print preds = %v", printNode)
	}
}
