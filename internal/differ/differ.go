// Package differ is the differential-soundness harness: it analyzes an MPL
// program with the pCFG engine (sequentially and with the parallel worklist
// engine) and concretizes the result against the explicit-state baseline
// (internal/modelcheck) at small process counts. The paper's appendix
// proves the baseline exact and interleaving-oblivious, so every
// divergence is a genuine defect, classified as:
//
//   - ClassSoundness — the analysis misses a real communication edge or
//     wrongly proves no configuration admits an np the program runs at;
//     a soundness bug, the worst class.
//   - ClassEngine — a parallel-engine configuration loses soundness the
//     sequential engine keeps: it misses real communication without a
//     covering ⊤, so the parallelization itself is broken. (Byte-level
//     cross-engine equality is deliberately NOT policed here: the engines
//     run different join→widen rungs, and coalesced delivery makes
//     parallel precision interleaving-sensitive on arbitrary programs —
//     only soundness is invariant. The core engine's equivalence suites
//     keep the byte-level promise on the curated workloads.)
//   - ClassPrecision — the analysis over-approximates: a spurious edge or
//     rank, or a ⊤ give-up, on a program the oracle completes cleanly.
//     Sound but imprecise; tracked longitudinally in the bench history.
//
// Programs the oracle cannot judge (deadlocks, runtime errors, failed
// assumptions — expected for gen's deliberately-buggy mode) come back as
// ClassSkipped; harness failures (parse/sem/analysis errors) as
// ClassError.
package differ

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/prof"
	"repro/internal/sem"
	"repro/internal/sim"
	"repro/internal/validate"
)

// Class is the divergence triage verdict, ordered by severity: a larger
// class is worse.
type Class int

// The verdict classes, least to most severe.
const (
	ClassOK        Class = iota
	ClassSkipped         // no oracle verdict (deadlock, runtime error, failed assume)
	ClassPrecision       // sound but imprecise: spurious edge/rank or ⊤
	ClassError           // harness failure: parse/sem/analysis error
	ClassEngine          // a parallel configuration lost soundness sequential keeps
	ClassSoundness       // analysis misses real behavior
)

func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassSkipped:
		return "skipped"
	case ClassPrecision:
		return "precision"
	case ClassError:
		return "error"
	case ClassEngine:
		return "engine"
	case ClassSoundness:
		return "soundness"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass parses a Class name as rendered by String.
func ParseClass(s string) (Class, error) {
	for _, c := range []Class{ClassOK, ClassSkipped, ClassPrecision, ClassError, ClassEngine, ClassSoundness} {
		if c.String() == s {
			return c, nil
		}
	}
	return ClassOK, fmt.Errorf("differ: unknown class %q", s)
}

// Finding is the triage result for one program.
type Finding struct {
	Class Class
	// NP is the process count the divergence was first observed at
	// (0 when np-independent, e.g. engine divergence or a ⊤ give-up).
	NP int
	// Detail is a deterministic, human-readable description of the first
	// (worst) divergence.
	Detail string
}

func (f *Finding) String() string {
	if f.NP > 0 {
		return fmt.Sprintf("%s@np=%d: %s", f.Class, f.NP, f.Detail)
	}
	return fmt.Sprintf("%s: %s", f.Class, f.Detail)
}

// Options tunes one differential check.
type Options struct {
	// NPs are the oracle process counts (default 2..6). Counts below the
	// program's assumed floor (its top-level "assume np >= k") are
	// skipped automatically.
	NPs []int
	// Workers are the parallel-engine worker counts exercised (default
	// {2, 8}): each is checked for run-to-run determinism, worker-count
	// invariance, and oracle soundness. Empty slice with
	// SkipEngineCompare unset still runs the default.
	Workers []int
	// SkipEngineCompare disables the parallel-engine runs entirely (the
	// shrinker uses it when minimizing a pure-oracle divergence).
	SkipEngineCompare bool
	// Env provides concrete values for free symbols when simulating.
	Env map[string]int64
	// Core seeds the analysis options: tuning overrides (JoinVisits,
	// MaxVisits, NonBlockingSends, ...) flow into every engine run.
	// Matcher, Workers and Schedule are managed by the harness.
	Core core.Options
	// Profiler, when non-nil, collects the source-attribution profile of
	// the sequential reference analysis only — the parallel comparison
	// runs stay unprofiled so the attribution is deterministic across
	// sweep repeats (the parallel fixpoints legally vary).
	Profiler *prof.Profiler
}

func (o *Options) fill() {
	if len(o.NPs) == 0 {
		o.NPs = []int{2, 3, 4, 5, 6}
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{2, 8}
	}
}

// Check parses, analyzes and oracle-checks one program, returning its
// triage verdict. It never returns an error: harness failures are
// ClassError findings so sweeps can account for them.
func Check(src string, opts Options) *Finding {
	opts.fill()
	prog, err := parser.Parse("differ.mpl", src)
	if err != nil {
		return &Finding{Class: ClassError, Detail: fmt.Sprintf("parse: %v", err)}
	}
	if _, err := sem.Check(prog); err != nil {
		return &Finding{Class: ClassError, Detail: fmt.Sprintf("sem: %v", err)}
	}

	analyze := func(workers int, schedule string) (*core.Result, error) {
		g := cfg.Build(prog)
		co := opts.Core
		co.Matcher = cartesian.New(core.ScanInvariants(g))
		co.Workers = workers
		co.Schedule = schedule
		if workers == 1 {
			co.Profiler = opts.Profiler
		}
		res, err := core.Analyze(g, co)
		return res, err
	}

	seq, err := analyze(1, "")
	if err != nil {
		return &Finding{Class: ClassError, Detail: fmt.Sprintf("sequential analysis: %v", err)}
	}

	worst := &Finding{Class: ClassOK, Detail: "exact at every checked np"}
	record := func(f *Finding) {
		if f.Class > worst.Class {
			worst = f
		}
	}

	// Parallel-engine runs. Byte-level cross-engine equality is a
	// curated-workload property, not a general invariant: the sequential
	// and parallel engines run different join→widen rungs by design (12
	// fine-grained revision links vs 3 coalesced deliveries), and the
	// *content* reaching the rung under real parallelism depends on how
	// deliveries coalesce — so on arbitrary programs the engines (and even
	// two runs of one parallel configuration) legally converge to
	// different, separately sound fixpoints that differ in precision.
	// Differential fuzzing confirmed this: cleanliness and topology both
	// vary run-to-run on generated programs while every result stays
	// sound. The unconditional cross-engine invariant is therefore
	// soundness itself: ClassEngine fires when a parallel configuration
	// misses real communication (without a covering ⊤) that the oracle
	// observed — the parallelization broke soundness — and each parallel
	// result is screened in the per-np pass below. Byte-level equivalence
	// on the curated workloads stays policed by the core engine's own
	// equivalence and arrival-order suites.
	type parRun struct {
		label string
		res   *core.Result
	}
	var parallels []parRun
	if !opts.SkipEngineCompare {
		for _, w := range opts.Workers {
			for _, sched := range []string{core.ScheduleFIFO, core.ScheduleLIFO} {
				par, err := analyze(w, sched)
				if err != nil {
					record(&Finding{Class: ClassError,
						Detail: fmt.Sprintf("parallel analysis (workers=%d %s): %v", w, sched, err)})
					continue
				}
				parallels = append(parallels, parRun{fmt.Sprintf("workers=%d %s", w, sched), par})
			}
		}
	}

	// Oracle comparison at each admissible np. The sequential result is
	// the reference for the full triage (it is deterministic, so precision
	// rates stay reproducible); parallel results are screened for
	// soundness only — their rung legally trades precision for convergence
	// speed, so a ⊤ or a spurious pair there is tuning noise, but a missed
	// real message without a covering ⊤ is an engine divergence.
	g := cfg.Build(prog)
	minNP := assumedMinNP(prog)
	checked := 0
	for _, np := range opts.NPs {
		if np < minNP {
			continue
		}
		f := checkAtNP(g, seq, np, opts.Env)
		if f.Class == ClassSkipped {
			record(f)
			continue // oracle cannot judge this np for any engine
		}
		checked++
		record(f)
		for _, pr := range parallels {
			if pf := checkAtNP(g, pr.res, np, opts.Env); pf.Class == ClassSoundness {
				record(&Finding{Class: ClassEngine, NP: np,
					Detail: fmt.Sprintf("parallel engine (%s) lost soundness: %s", pr.label, pf.Detail)})
			}
		}
	}
	if checked == 0 && worst.Class == ClassOK {
		return &Finding{Class: ClassSkipped, Detail: "no np admitted an oracle run"}
	}

	// A ⊤ give-up on a program the oracle completed cleanly is precision
	// loss even when some final concretizes exactly (the spurious-⊤ class
	// PR 7's bug belonged to).
	if checked > 0 && len(seq.Tops) > 0 {
		record(&Finding{Class: ClassPrecision,
			Detail: fmt.Sprintf("analysis gave up (⊤): %s", strings.Join(seq.TopReasons(), "; "))})
	}
	return worst
}

// checkAtNP compares the analysis result against the explicit-state
// baseline at one concrete process count.
func checkAtNP(g *cfg.Graph, res *core.Result, np int, env map[string]int64) *Finding {
	simRes, err := sim.Run(g, np, sim.Options{Env: env})
	if err != nil {
		return &Finding{Class: ClassSkipped, NP: np, Detail: fmt.Sprintf("runtime error: %v", err)}
	}
	if len(simRes.Failures) > 0 {
		return &Finding{Class: ClassSkipped, NP: np,
			Detail: fmt.Sprintf("assumption failed at np=%d: %s", np, simRes.Failures[0].Cond)}
	}
	if simRes.Deadlocked {
		return &Finding{Class: ClassSkipped, NP: np, Detail: fmt.Sprintf("deadlocks at np=%d", np)}
	}
	want := validate.FromSim(simRes.Events)

	fullEnv := map[string]int64{"np": int64(np)}
	for k, v := range env {
		fullEnv[k] = v
	}
	consistent := 0
	bestMissing, bestExtra := -1, -1
	var bestDetail string
	for _, fin := range res.Finals {
		if !validate.ConsistentWithNP(fin, np, fullEnv) {
			continue
		}
		consistent++
		got := validate.FromState(fin, fullEnv)
		missing, extra := pairSetDelta(got, want)
		if len(missing) == 0 && len(extra) == 0 {
			return &Finding{Class: ClassOK, NP: np}
		}
		// Track the final closest to the truth: fewest missing ranks, then
		// fewest spurious ones.
		if bestMissing < 0 || len(missing) < bestMissing ||
			(len(missing) == bestMissing && len(extra) < bestExtra) {
			bestMissing, bestExtra = len(missing), len(extra)
			bestDetail = deltaDetail(missing, extra)
		}
	}
	switch {
	case consistent == 0 && len(res.Tops) > 0:
		return &Finding{Class: ClassPrecision, NP: np,
			Detail: fmt.Sprintf("gave up (⊤) and no final admits np=%d: %s", np, strings.Join(res.TopReasons(), "; "))}
	case consistent == 0:
		return &Finding{Class: ClassSoundness, NP: np,
			Detail: fmt.Sprintf("no final configuration admits np=%d (oracle saw %d messages)", np, simRes.Steps)}
	case bestMissing == 0:
		return &Finding{Class: ClassPrecision, NP: np,
			Detail: fmt.Sprintf("spurious communication at np=%d: %s", np, bestDetail)}
	case len(res.Tops) > 0:
		// The surviving finals miss real behavior, but the analysis also
		// gave up on part of the state space: the ⊤ configurations cover
		// the missing pairs, so the result is sound-but-imprecise, not a
		// soundness hole.
		return &Finding{Class: ClassPrecision, NP: np,
			Detail: fmt.Sprintf("finals incomplete at np=%d (⊤ covers the rest): %s", np, bestDetail)}
	default:
		return &Finding{Class: ClassSoundness, NP: np,
			Detail: fmt.Sprintf("analysis misses real communication at np=%d: %s", np, bestDetail)}
	}
}

// pairSetDelta compares a concretized analysis topology against the
// oracle's, returning the facts only the oracle saw (missing — a
// soundness hole) and the facts only the analysis claims (extra — a
// precision loss). Facts are rendered deterministically.
func pairSetDelta(got, want *validate.PairSet) (missing, extra []string) {
	edges := map[[2]int]bool{}
	for e := range got.Senders {
		edges[e] = true
	}
	for e := range want.Senders {
		edges[e] = true
	}
	ordered := make([][2]int, 0, len(edges))
	for e := range edges {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i][0] != ordered[j][0] {
			return ordered[i][0] < ordered[j][0]
		}
		return ordered[i][1] < ordered[j][1]
	})
	for _, e := range ordered {
		for _, side := range []struct {
			name      string
			got, want map[int64]bool
		}{
			{"senders", got.Senders[e], want.Senders[e]},
			{"receivers", got.Receivers[e], want.Receivers[e]},
		} {
			onlyWant := setMinus(side.want, side.got)
			onlyGot := setMinus(side.got, side.want)
			if len(onlyWant) > 0 {
				missing = append(missing, fmt.Sprintf("n%d->n%d %s %v", e[0], e[1], side.name, onlyWant))
			}
			if len(onlyGot) > 0 {
				extra = append(extra, fmt.Sprintf("n%d->n%d %s %v", e[0], e[1], side.name, onlyGot))
			}
		}
	}
	return missing, extra
}

func setMinus(a, b map[int64]bool) []int64 {
	var out []int64
	for v := range a {
		if !b[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func deltaDetail(missing, extra []string) string {
	var parts []string
	if len(missing) > 0 {
		parts = append(parts, "missing "+strings.Join(missing, ", "))
	}
	if len(extra) > 0 {
		parts = append(parts, "spurious "+strings.Join(extra, ", "))
	}
	return strings.Join(parts, "; ")
}

// assumedMinNP extracts the np floor from the program's top-level
// "assume np >= k" / "assume np > k" statements, so the oracle only runs
// process counts the program was written for.
func assumedMinNP(prog *ast.Program) int {
	min := 1
	ast.WalkStmts(prog.Stmts, func(s ast.Stmt) bool {
		a, ok := s.(*ast.Assume)
		if !ok {
			return true
		}
		if b, ok := a.Cond.(*ast.Binary); ok {
			if id, ok := b.L.(*ast.Ident); ok && id.Name == "np" {
				if lit, ok := b.R.(*ast.IntLit); ok {
					switch b.Op {
					case ast.Ge:
						if int(lit.Value) > min {
							min = int(lit.Value)
						}
					case ast.Gt:
						if int(lit.Value)+1 > min {
							min = int(lit.Value) + 1
						}
					}
				}
			}
		}
		return true
	})
	return min
}

// ---------------------------------------------------------------------------
// Sweeps

// SweepOptions configures a generated-program sweep.
type SweepOptions struct {
	// Seed is the base seed: program i is generated from the deterministic
	// sub-seed Seed + i*1000003, so any single program is reproducible
	// from (Seed, i) alone.
	Seed int64
	// N is how many programs to generate and check.
	N int
	// Gen configures the generator (zero value: defaults).
	Gen gen.Config
	// BuggyFraction is the fraction of programs generated with a deliberate
	// defect (oracle-skipped; exercises the lint-facing surface). 0 = all
	// safe.
	BuggyFraction float64
	// Differ configures each check.
	Differ Options
	// Progress, when non-nil, is called after each program with the index
	// and its finding (the psdf fuzz CLI uses it for -v output).
	Progress func(i int, p gen.Program, f *Finding)
	// Attribute turns on per-construct precision attribution: each
	// program's sequential reference run is profiled, and its widening
	// failures / give-ups / ⊤ demotions are attributed to the generator
	// phase (by source line range) that emitted the blamed statement.
	// The aggregate lands in SweepResult.Attribution.
	Attribute bool
}

// SweepFinding is one divergent program from a sweep.
type SweepFinding struct {
	Index   int
	Seed    int64
	Program gen.Program
	Finding *Finding
}

// SweepResult aggregates a sweep.
type SweepResult struct {
	Programs int
	Counts   map[Class]int
	// Findings holds every program whose class is worse than ClassSkipped
	// (precision, error, engine, soundness), in sweep order.
	Findings []SweepFinding
	// Attribution is the ranked per-construct precision-loss aggregate
	// (nil unless SweepOptions.Attribute).
	Attribution *prof.SweepAttribution
}

// Count reports how many programs landed in class c.
func (r *SweepResult) Count(c Class) int { return r.Counts[c] }

// PrecisionRate is the fraction of oracle-checked (non-skipped) programs
// with a precision-loss finding.
func (r *SweepResult) PrecisionRate() float64 {
	checked := r.Programs - r.Counts[ClassSkipped]
	if checked <= 0 {
		return 0
	}
	return float64(r.Counts[ClassPrecision]) / float64(checked)
}

// ProgramSeed returns the deterministic sub-seed of program i in a sweep
// with base seed.
func ProgramSeed(seed int64, i int) int64 { return seed + int64(i)*1000003 }

// phaseRanges converts the generator's phase line records into the
// profiler's neutral construct ranges.
func phaseRanges(p gen.Program) []prof.LineRange {
	out := make([]prof.LineRange, 0, len(p.PhaseLines))
	for _, pl := range p.PhaseLines {
		out = append(out, prof.LineRange{Label: string(pl.Family), Start: pl.Start, End: pl.End})
	}
	return out
}

// Sweep generates N programs and triages each one.
func Sweep(opts SweepOptions) *SweepResult {
	res := &SweepResult{Counts: map[Class]int{}}
	if opts.Attribute {
		res.Attribution = prof.NewSweepAttribution()
	}
	for i := 0; i < opts.N; i++ {
		r := rand.New(rand.NewSource(ProgramSeed(opts.Seed, i)))
		cfg := opts.Gen
		if opts.BuggyFraction > 0 && r.Float64() < opts.BuggyFraction {
			bugs := gen.Bugs()
			cfg.Bug = bugs[r.Intn(len(bugs))]
		}
		p := gen.New(r, cfg)
		do := opts.Differ
		do.Env = p.Env
		var pr *prof.Profiler
		if opts.Attribute {
			pr = prof.New()
			do.Profiler = pr
		}
		f := Check(p.Src, do)
		if opts.Attribute {
			rep := pr.Report(fmt.Sprintf("program-%d", i), p.Src)
			res.Attribution.Add(rep, phaseRanges(p), "decor")
		}
		res.Programs++
		res.Counts[f.Class]++
		if f.Class > ClassSkipped {
			res.Findings = append(res.Findings, SweepFinding{
				Index: i, Seed: ProgramSeed(opts.Seed, i), Program: p, Finding: f,
			})
		}
		if opts.Progress != nil {
			opts.Progress(i, p, f)
		}
	}
	return res
}
