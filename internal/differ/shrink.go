// Delta-debugging shrinker: given a program with a divergence finding,
// minimize it while preserving the finding's class. The shrinker works on
// the AST in two alternating passes until a fixpoint:
//
//   - statement-level: remove contiguous statement chunks (halving chunk
//     sizes, classic ddmin) from every block, and hoist control-flow
//     bodies over their headers (if/while/for → body);
//   - expression-level: replace expressions with strictly smaller ones
//     (a subexpression, or the literals 0 and 1).
//
// Every candidate is re-checked with the differential harness and kept
// only when the triage class is unchanged, so a minimized soundness
// repro still demonstrates a soundness bug, not some easier-to-trigger
// precision loss. Semantic breakage self-rejects: deleting a VarDecl
// whose variable is still used flips the class to ClassError and the
// candidate is discarded.
package differ

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/parser"
)

// ShrinkOptions configures a minimization run.
type ShrinkOptions struct {
	// Differ configures the class-preservation oracle. When the original
	// finding is not ClassEngine the parallel-engine runs are skipped
	// automatically (they cannot affect the other classes and triple the
	// per-candidate cost).
	Differ Options
	// MaxChecks caps the number of differential checks spent (0 = 800).
	// When the budget runs out the best program found so far is returned.
	MaxChecks int
	// Keep, when non-nil, replaces the default acceptance predicate
	// (class equality). Class-preserving ddmin can "slip" onto an easier
	// finding of the same class; a Keep that also pins part of the
	// finding detail keeps the minimized repro demonstrating the same
	// bug shape. Keep must accept the original program's finding.
	Keep func(*Finding) bool
}

// ShrinkResult is the outcome of a minimization.
type ShrinkResult struct {
	// Src is the minimized program.
	Src string
	// Finding is the (re-checked) finding of the minimized program; its
	// Class equals the original program's class.
	Finding *Finding
	// Stmts counts statements in the minimized program.
	Stmts int
	// Checks is how many differential checks the minimization spent.
	Checks int
}

// CountStmts counts every statement in src, at any nesting depth.
// It returns 0 for unparsable input.
func CountStmts(src string) int {
	prog, err := parser.Parse("count.mpl", src)
	if err != nil {
		return 0
	}
	n := 0
	ast.WalkStmts(prog.Stmts, func(ast.Stmt) bool { n++; return true })
	return n
}

// Shrink minimizes src while preserving its triage class. It returns an
// error when src has no finding to preserve (ClassOK / ClassSkipped) or
// does not parse.
func Shrink(src string, o ShrinkOptions) (*ShrinkResult, error) {
	orig := Check(src, o.Differ)
	if orig.Class <= ClassSkipped {
		return nil, fmt.Errorf("differ: nothing to shrink: program triages %s", orig.Class)
	}
	keep := o.Keep
	if keep == nil {
		class := orig.Class
		keep = func(f *Finding) bool { return f.Class == class }
	} else if !keep(orig) {
		return nil, fmt.Errorf("differ: Keep rejects the original finding %s", orig)
	}
	opts := o.Differ
	if orig.Class != ClassEngine {
		// The engine runs only matter for ClassEngine; skipping them
		// cannot change any other class.
		opts.SkipEngineCompare = true
	}
	s := &shrinker{opts: opts, keep: keep, max: o.MaxChecks}
	if s.max <= 0 {
		s.max = 800
	}
	prog, err := parser.Parse("shrink.mpl", src)
	if err != nil {
		return nil, fmt.Errorf("differ: shrink parse: %v", err)
	}
	for {
		changed := s.stmtPass(prog)
		changed = s.exprPass(prog) || changed
		if !changed || s.checks >= s.max {
			break
		}
	}
	out := ast.Format(prog.Stmts)
	return &ShrinkResult{
		Src:     out,
		Finding: Check(out, o.Differ),
		Stmts:   CountStmts(out),
		Checks:  s.checks,
	}, nil
}

type shrinker struct {
	opts   Options
	keep   func(*Finding) bool
	checks int
	max    int
}

// keeps reports whether the candidate program still satisfies the
// acceptance predicate (and burns one check from the budget).
func (s *shrinker) keeps(prog *ast.Program) bool {
	if s.checks >= s.max {
		return false
	}
	s.checks++
	return s.keep(Check(ast.Format(prog.Stmts), s.opts))
}

// blocks returns a pointer to every statement list in the program, outer
// blocks first, recomputed fresh each pass because accepted mutations
// replace slice headers.
func blocks(prog *ast.Program) []*[]ast.Stmt {
	out := []*[]ast.Stmt{&prog.Stmts}
	for i := 0; i < len(out); i++ {
		for _, st := range *out[i] {
			switch x := st.(type) {
			case *ast.If:
				out = append(out, &x.Then)
				if x.Else != nil {
					out = append(out, &x.Else)
				}
			case *ast.While:
				out = append(out, &x.Body)
			case *ast.For:
				out = append(out, &x.Body)
			}
		}
	}
	return out
}

// stmtPass runs chunked removal and body-hoisting over every block until
// neither makes progress. Returns whether anything was removed.
func (s *shrinker) stmtPass(prog *ast.Program) bool {
	any := false
	for {
		changed := false
		for _, blk := range blocks(prog) {
			// ddmin-style chunk removal: large chunks first so one check
			// can delete a whole irrelevant region.
			for size := len(*blk); size >= 1; size /= 2 {
				for i := 0; i+size <= len(*blk); {
					old := *blk
					cand := make([]ast.Stmt, 0, len(old)-size)
					cand = append(cand, old[:i]...)
					cand = append(cand, old[i+size:]...)
					*blk = cand
					if s.keeps(prog) {
						changed, any = true, true
						// Stay at i: the next chunk shifted into place.
					} else {
						*blk = old
						i++
					}
					if s.checks >= s.max {
						return any
					}
				}
			}
			// Hoisting: replace a control statement with its body. This
			// both deletes the header and un-nests the interesting part so
			// later removal rounds see it at top level.
			for i := 0; i < len(*blk); i++ {
				var body []ast.Stmt
				switch x := (*blk)[i].(type) {
				case *ast.If:
					body = x.Then
				case *ast.While:
					body = x.Body
				case *ast.For:
					body = x.Body
				default:
					continue
				}
				old := *blk
				cand := make([]ast.Stmt, 0, len(old)-1+len(body))
				cand = append(cand, old[:i]...)
				cand = append(cand, body...)
				cand = append(cand, old[i+1:]...)
				*blk = cand
				if s.keeps(prog) {
					changed, any = true, true
				} else {
					*blk = old
				}
				if s.checks >= s.max {
					return any
				}
			}
		}
		if !changed {
			return any
		}
	}
}

// exprSite is one mutable expression slot in the AST.
type exprSite struct {
	get func() ast.Expr
	set func(ast.Expr)
}

// exprSites enumerates every expression slot in the program.
func exprSites(prog *ast.Program) []exprSite {
	var out []exprSite
	slot := func(get func() ast.Expr, set func(ast.Expr)) {
		out = append(out, exprSite{get, set})
	}
	ast.WalkStmts(prog.Stmts, func(st ast.Stmt) bool {
		switch x := st.(type) {
		case *ast.Assign:
			slot(func() ast.Expr { return x.Rhs }, func(e ast.Expr) { x.Rhs = e })
		case *ast.If:
			slot(func() ast.Expr { return x.Cond }, func(e ast.Expr) { x.Cond = e })
		case *ast.While:
			slot(func() ast.Expr { return x.Cond }, func(e ast.Expr) { x.Cond = e })
		case *ast.For:
			slot(func() ast.Expr { return x.Lo }, func(e ast.Expr) { x.Lo = e })
			slot(func() ast.Expr { return x.Hi }, func(e ast.Expr) { x.Hi = e })
		case *ast.Send:
			slot(func() ast.Expr { return x.Value }, func(e ast.Expr) { x.Value = e })
			slot(func() ast.Expr { return x.Dest }, func(e ast.Expr) { x.Dest = e })
		case *ast.Recv:
			slot(func() ast.Expr { return x.Src }, func(e ast.Expr) { x.Src = e })
		case *ast.SendRecv:
			slot(func() ast.Expr { return x.Value }, func(e ast.Expr) { x.Value = e })
			slot(func() ast.Expr { return x.Dest }, func(e ast.Expr) { x.Dest = e })
			slot(func() ast.Expr { return x.Src }, func(e ast.Expr) { x.Src = e })
		case *ast.Print:
			slot(func() ast.Expr { return x.Arg }, func(e ast.Expr) { x.Arg = e })
		case *ast.Assume:
			slot(func() ast.Expr { return x.Cond }, func(e ast.Expr) { x.Cond = e })
		case *ast.Assert:
			slot(func() ast.Expr { return x.Cond }, func(e ast.Expr) { x.Cond = e })
		}
		return true
	})
	return out
}

// exprSize counts nodes, the strictly-decreasing measure of the
// expression pass.
func exprSize(e ast.Expr) int {
	n := 0
	ast.Walk(e, func(ast.Expr) bool { n++; return true })
	return n
}

// exprPass tries to replace every expression with a strictly smaller
// one: a direct subexpression, then the literals 0 and 1. Returns
// whether anything shrank.
func (s *shrinker) exprPass(prog *ast.Program) bool {
	any := false
	for {
		changed := false
		for _, site := range exprSites(prog) {
			cur := site.get()
			var cands []ast.Expr
			switch x := cur.(type) {
			case *ast.Binary:
				cands = append(cands, x.L, x.R)
			case *ast.Unary:
				cands = append(cands, x.X)
			}
			if exprSize(cur) > 1 {
				cands = append(cands,
					&ast.IntLit{Value: 0, Sp: cur.Span()},
					&ast.IntLit{Value: 1, Sp: cur.Span()})
			}
			for _, cand := range cands {
				if exprSize(cand) >= exprSize(cur) {
					continue
				}
				site.set(cand)
				if s.keeps(prog) {
					changed, any = true, true
					cur = cand
				} else {
					site.set(cur)
				}
				if s.checks >= s.max {
					return any
				}
			}
		}
		if !changed {
			return any
		}
	}
}
