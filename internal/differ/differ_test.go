package differ

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
)

// TestKnownProgramsAreOK pins the harness itself: the repository's known
// clean patterns must triage as ok, and classic divergences land in their
// documented class.
func TestKnownProgramsAreOK(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want Class
	}{
		{"exchange", `
assume np >= 3
if id == 0 then
  x := 5
  send x -> 1
  recv y <- 1
else
  if id == 1 then
    recv y <- 0
    send y -> 0
  end
end
`, ClassOK},
		{"shift", `
assume np >= 4
if id == 0 then
  send x -> id + 1
elif id <= np - 2 then
  recv y <- id - 1
  send y -> id + 1
else
  recv y <- id - 1
end
`, ClassOK},
		{"deadlock-skipped", `
assume np >= 2
if id == 0 then
  recv y <- 1
end
`, ClassSkipped},
		{"nonaffine-top-precision", `
assume np >= 2
if id * id == 0 then
  send x -> 1
end
if id == 1 then
  recv y <- 0
end
`, ClassPrecision},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := Check(tc.src, Options{})
			if f.Class != tc.want {
				t.Fatalf("class = %v, want %v (finding: %s)", f.Class, tc.want, f)
			}
		})
	}
}

// TestTuningOverrideSeedsPrecision proves the tuning-override hook can
// seed a divergence: starving the visit budget forces a ⊤ give-up on a
// loopy program the default configuration analyzes exactly.
func TestTuningOverrideSeedsPrecision(t *testing.T) {
	src := `
assume np >= 4
if id == 0 then
  for i := 1 to np - 1 do
    send x -> i
    recv y <- i
  end
else
  recv y <- 0
  send y -> 0
end
`
	if f := Check(src, Options{}); f.Class != ClassOK {
		t.Fatalf("default tuning: class = %v, want ok (%s)", f.Class, f)
	}
	starved := Options{Core: core.Options{MaxVisits: 3}}
	if f := Check(src, starved); f.Class != ClassPrecision {
		t.Fatalf("starved tuning: class = %v, want precision (%s)", f.Class, f)
	}
}

// TestDifferSweep is the bounded differential sweep: every generated safe
// program must triage ok (or at worst a known precision loss — never a
// soundness or engine divergence). CI runs a slice under -race; the
// full-acceptance 2000-program sweep runs via `psdf fuzz` (see the CI
// workflow) and PSDF_DIFF_ITERS scales this test up to it.
func TestDifferSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	n := 25
	if s := os.Getenv("PSDF_DIFF_ITERS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad PSDF_DIFF_ITERS %q: %v", s, err)
		}
		n = v
	}
	res := Sweep(SweepOptions{Seed: 1, N: n})
	for _, f := range res.Findings {
		switch f.Finding.Class {
		case ClassSoundness, ClassEngine, ClassError:
			t.Errorf("program %d (seed %d): %s\n%s", f.Index, f.Seed, f.Finding, f.Program.Src)
		case ClassPrecision:
			t.Logf("program %d (seed %d): %s", f.Index, f.Seed, f.Finding)
		}
	}
	t.Logf("sweep: %d programs: ok=%d precision=%d skipped=%d soundness=%d engine=%d error=%d",
		res.Programs, res.Counts[ClassOK], res.Counts[ClassPrecision], res.Counts[ClassSkipped],
		res.Counts[ClassSoundness], res.Counts[ClassEngine], res.Counts[ClassError])
}

// TestSweepDeterminism: the same (seed, N) sweep reproduces byte-identical
// findings — the property the fixed-seed CI gate and the bench-history
// fuzz block rely on.
func TestSweepDeterminism(t *testing.T) {
	a := Sweep(SweepOptions{Seed: 7, N: 10})
	b := Sweep(SweepOptions{Seed: 7, N: 10})
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		fa, fb := a.Findings[i], b.Findings[i]
		if fa.Program.Src != fb.Program.Src || fa.Finding.String() != fb.Finding.String() {
			t.Errorf("finding %d differs between identical sweeps", i)
		}
	}
	for c, n := range a.Counts {
		if b.Counts[c] != n {
			t.Errorf("count[%v] = %d vs %d", c, n, b.Counts[c])
		}
	}
}

// TestBuggyProgramsAreSkipped: deliberately-buggy programs must never be
// classified as soundness/engine findings — the oracle skips what it
// cannot judge (deadlocks, runtime errors), and leaks/tag mismatches are
// lint territory.
func TestBuggyProgramsAreSkipped(t *testing.T) {
	res := Sweep(SweepOptions{Seed: 3, N: 12, BuggyFraction: 1})
	for _, f := range res.Findings {
		if f.Finding.Class == ClassSoundness || f.Finding.Class == ClassEngine || f.Finding.Class == ClassError {
			t.Errorf("buggy program %d (bug %s) triaged %s:\n%s",
				f.Index, f.Program.Bug, f.Finding, f.Program.Src)
		}
	}
	t.Logf("buggy sweep counts: %v", res.Counts)
}
