package differ

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestShrinkTuningOverride is the shrinker's end-to-end demo: a decorated
// program that triages ok under default tuning is driven to a precision
// divergence by starving the visit budget, and the shrinker must minimize
// it to a small class-preserving repro.
func TestShrinkTuningOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinker demo skipped in -short mode")
	}
	src := `
assume np >= 4
var t1
t1 := 3 + 4
print t1
var t2
for k1 := 1 to 3 do
  t2 := t2 + k1
end
if id == 0 then
  for i := 1 to np - 1 do
    send t1 -> i
    recv y <- i
  end
else
  recv y <- 0
  send y -> 0
end
assert np >= 2
skip
print t2 + 1
`
	if f := Check(src, Options{}); f.Class != ClassOK {
		t.Fatalf("default tuning: class = %v, want ok (%s)", f.Class, f)
	}
	starved := Options{Core: core.Options{MaxVisits: 3}}
	if f := Check(src, starved); f.Class != ClassPrecision {
		t.Fatalf("starved tuning: class = %v, want precision (%s)", f.Class, f)
	}
	sr, err := Shrink(src, ShrinkOptions{Differ: starved})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Finding.Class != ClassPrecision {
		t.Errorf("minimized finding class = %v, want precision (%s)", sr.Finding.Class, sr.Finding)
	}
	if orig := CountStmts(src); sr.Stmts >= orig {
		t.Errorf("shrinker made no progress: %d statements, original %d", sr.Stmts, orig)
	}
	if sr.Stmts > 15 {
		t.Errorf("minimized repro has %d statements, want <= 15:\n%s", sr.Stmts, sr.Src)
	}
	// The minimized program must still parse and reproduce on its own.
	if f := Check(sr.Src, starved); f.Class != ClassPrecision {
		t.Errorf("re-checked minimized repro: class = %v, want precision", f.Class)
	}
}

// TestShrinkKeepPinsDetail: a Keep predicate that pins part of the finding
// detail prevents ddmin slippage onto an easier same-class finding.
func TestShrinkKeepPinsDetail(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinker test skipped in -short mode")
	}
	// Generated program 520 of the seed-1 sweep: its divergence is the
	// stale-match-witness demotion, a specific precision shape.
	src := sweepProgram(t, 520001561)
	want := "stale match witness"
	f := Check(src, Options{})
	if f.Class != ClassPrecision || !strings.Contains(f.Detail, want) {
		t.Fatalf("seed program finding changed: %s", f)
	}
	sr, err := Shrink(src, ShrinkOptions{
		Differ: Options{},
		Keep: func(f *Finding) bool {
			return f.Class == ClassPrecision && strings.Contains(f.Detail, want)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sr.Finding.Detail, want) {
		t.Errorf("minimized finding lost the pinned detail: %s", sr.Finding)
	}
	if orig := CountStmts(src); sr.Stmts >= orig {
		t.Errorf("shrinker made no progress: %d statements, original %d", sr.Stmts, orig)
	}
}

// TestShrinkRejectsCleanPrograms: nothing to minimize on an ok program.
func TestShrinkRejectsCleanPrograms(t *testing.T) {
	src := "assume np >= 2\nskip\n"
	if _, err := Shrink(src, ShrinkOptions{}); err == nil {
		t.Fatal("Shrink accepted a clean program")
	}
}

// sweepProgram regenerates the program a sweep would produce at sub-seed s.
func sweepProgram(t *testing.T, s int64) string {
	t.Helper()
	res := Sweep(SweepOptions{Seed: s, N: 1})
	if res.Programs != 1 {
		t.Fatalf("sweep produced %d programs", res.Programs)
	}
	if len(res.Findings) == 1 {
		return res.Findings[0].Program.Src
	}
	t.Fatalf("sub-seed %d no longer produces a finding", s)
	return ""
}

// corpusSpec describes one regression repro regenerated from its sweep
// sub-seed by TestRegenDiffbugsCorpus (run with PSDF_REGEN_CORPUS=1).
type corpusSpec struct {
	name string
	seed int64
	// keepDetail pins a substring of the finding detail during
	// minimization so ddmin cannot slip onto an unrelated finding of the
	// same class ("" = class-only preservation).
	keepDetail string
}

var corpusSpecs = []corpusSpec{
	// A stale equality witness (constant vs constant, {-28,0}) baked into
	// a match bound by enrichment and orphaned by a graph join; the final
	// must be demoted to ⊤, never reported as a clean wrong topology.
	{"stale_witness_const", 520001561, "stale match witness"},
	// Same bug shape with a parametric witness ({np - 2, 2}): coherent at
	// np = 4 but wrong for np >= 5, so only the coherence certification
	// catches it — Contradictory() alone cannot.
	{"stale_witness_paramnp", 557001672, "stale match witness"},
	// A widening mismatch on a decorated broadcast: stays a ⊤ precision
	// loss; before the concretization fix the validator misread it as
	// spurious negative ranks (a false soundness verdict).
	{"widen_mismatch_broadcast", 181000514, "widening failed: no common bound expressions"},
}

// TestReplayDiffbugsCorpus replays every committed minimized repro in
// testdata/diffbugs and asserts its triage class never regresses past the
// recorded "# max-class:" ceiling. Soundness holes that were fixed must
// stay fixed; a precision repro may improve to ok but never worsen.
func TestReplayDiffbugsCorpus(t *testing.T) {
	dir := filepath.Join(repoRoot(t), "testdata", "diffbugs")
	files, err := filepath.Glob(filepath.Join(dir, "*.mpl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no corpus files in %s", dir)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(b)
			maxClass := ClassOK
			found := false
			for _, line := range strings.Split(src, "\n") {
				if rest, ok := strings.CutPrefix(line, "# max-class: "); ok {
					maxClass, err = ParseClass(strings.TrimSpace(rest))
					if err != nil {
						t.Fatal(err)
					}
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s has no '# max-class:' header", path)
			}
			f := Check(src, Options{})
			if f.Class > maxClass {
				t.Errorf("class regressed to %v (max %v): %s", f.Class, maxClass, f)
			}
		})
	}
}

// TestRegenDiffbugsCorpus rewrites testdata/diffbugs from the recorded
// sweep sub-seeds, re-minimizing each repro against the current engine.
// Guarded because it is slow and mutates the tree: run with
// PSDF_REGEN_CORPUS=1 after an intentional engine change, then review the
// diff like any other golden update.
func TestRegenDiffbugsCorpus(t *testing.T) {
	if os.Getenv("PSDF_REGEN_CORPUS") == "" {
		t.Skip("set PSDF_REGEN_CORPUS=1 to regenerate testdata/diffbugs")
	}
	dir := filepath.Join(repoRoot(t), "testdata", "diffbugs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, spec := range corpusSpecs {
		src := sweepProgram(t, spec.seed)
		orig := Check(src, Options{})
		keep := func(f *Finding) bool {
			return f.Class == orig.Class &&
				(spec.keepDetail == "" || strings.Contains(f.Detail, spec.keepDetail))
		}
		sr, err := Shrink(src, ShrinkOptions{Differ: Options{}, Keep: keep})
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		header := fmt.Sprintf("# max-class: %s\n# origin: sweep sub-seed %d, minimized to %d statements (%d checks)\n# finding: %s\n",
			sr.Finding.Class, spec.seed, sr.Stmts, sr.Checks, sr.Finding)
		path := filepath.Join(dir, spec.name+".mpl")
		if err := os.WriteFile(path, []byte(header+sr.Src), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %d statements, finding %s", spec.name, sr.Stmts, sr.Finding)
	}
}
