package procset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cg"
	"repro/internal/sym"
	"repro/internal/tri"
)

// ctxWith builds a context with the given facts applied.
func ctxWith(facts func(*cg.Graph)) Ctx {
	g := cg.NewDefault()
	if facts != nil {
		facts(g)
	}
	return Ctx{G: g}
}

func npCtx() Ctx {
	return ctxWith(func(g *cg.Graph) {
		g.AddLE(cg.ZeroVar, "np", -2) // np >= 2
	})
}

func TestEmptyAndSingleton(t *testing.T) {
	ctx := npCtx()
	all := Range(sym.Const(0), sym.VarPlus("np", -1))
	if got := all.Empty(ctx); got != tri.False {
		t.Errorf("[0..np-1] Empty = %v with np>=2", got)
	}
	one := Singleton(sym.Const(0))
	if got := one.Empty(ctx); got != tri.False {
		t.Errorf("[0] Empty = %v", got)
	}
	if got := one.IsSingleton(ctx); got != tri.True {
		t.Errorf("[0] IsSingleton = %v", got)
	}
	empty := Range(sym.Const(5), sym.Const(3))
	if got := empty.Empty(ctx); got != tri.True {
		t.Errorf("[5..3] Empty = %v", got)
	}
	// [1..np-1] nonempty requires np >= 2: true here.
	rest := Range(sym.Const(1), sym.VarPlus("np", -1))
	if got := rest.Empty(ctx); got != tri.False {
		t.Errorf("[1..np-1] Empty = %v with np>=2", got)
	}
	// Without facts, emptiness of [1..np-1] is unknown.
	noCtx := ctxWith(nil)
	if got := rest.Empty(noCtx); got != tri.Unknown {
		t.Errorf("[1..np-1] Empty = %v without facts", got)
	}
}

func TestContains(t *testing.T) {
	ctx := ctxWith(func(g *cg.Graph) {
		g.AddLE(cg.ZeroVar, "np", -3) // np >= 3
		g.SetConst("i", 1)
		g.AddLE("i", "np", -1) // i <= np-1
	})
	rest := Range(sym.Const(1), sym.VarPlus("np", -1))
	if got := rest.Contains(ctx, sym.Var("i")); got != tri.True {
		t.Errorf("i in [1..np-1] = %v with i=1", got)
	}
	if got := rest.Contains(ctx, sym.Const(0)); got != tri.False {
		t.Errorf("0 in [1..np-1] = %v", got)
	}
	if got := rest.Contains(ctx, sym.Var("np")); got != tri.False {
		t.Errorf("np in [1..np-1] = %v", got)
	}
}

func TestContainsSet(t *testing.T) {
	ctx := npCtx()
	all := Range(sym.Const(0), sym.VarPlus("np", -1))
	sub := Range(sym.Const(1), sym.VarPlus("np", -1))
	if got := all.ContainsSet(ctx, sub); got != tri.True {
		t.Errorf("[1..np-1] ⊆ [0..np-1] = %v", got)
	}
	if got := sub.ContainsSet(ctx, all); got != tri.False {
		t.Errorf("[0..np-1] ⊆ [1..np-1] = %v", got)
	}
	empty := Range(sym.Const(3), sym.Const(2))
	if got := sub.ContainsSet(ctx, empty); got != tri.True {
		t.Errorf("∅ ⊆ s = %v", got)
	}
}

func TestRemovePoint(t *testing.T) {
	ctx := ctxWith(func(g *cg.Graph) {
		g.AddLE(cg.ZeroVar, "np", -4)
		g.SetConst("i", 1)
	})
	rest := Range(sym.Const(1), sym.VarPlus("np", -1))
	left, mid, right := rest.RemovePoint(sym.Var("i"))
	if got := left.Empty(ctx); got != tri.True {
		t.Errorf("left %v Empty = %v with i=1", left, got)
	}
	if mid.String() != "[i]" {
		t.Errorf("mid = %v", mid)
	}
	if right.String() != "[i + 1..np - 1]" {
		t.Errorf("right = %v", right)
	}
}

func TestSplitBelow(t *testing.T) {
	all := Range(sym.Const(0), sym.VarPlus("np", -1))
	lt, ge := all.SplitBelow(sym.Const(1))
	if lt.String() != "[0..0]" && lt.String() != "[0]" {
		t.Errorf("lt = %v", lt)
	}
	if ge.String() != "[1..np - 1]" {
		t.Errorf("ge = %v", ge)
	}
}

func TestUnionAdjacent(t *testing.T) {
	ctx := ctxWith(func(g *cg.Graph) {
		g.AddLE(cg.ZeroVar, "np", -4)
		g.SetConst("i", 2)
	})
	a := Range(sym.Const(0), sym.VarPlus("i", -1)) // [0..i-1] = [0..1]
	b := Singleton(sym.Var("i"))                   // [2]
	u, ok := a.UnionAdjacent(ctx, b)
	if !ok {
		t.Fatal("adjacent union failed")
	}
	if u.String() != "[0..i]" {
		t.Errorf("union = %v", u)
	}
	// Gap: [0..0] ∪ [2..2] must fail with i=2 unknown... here use consts.
	c := Singleton(sym.Const(0))
	d := Singleton(sym.Const(2))
	if _, ok := c.UnionAdjacent(ctx, d); ok {
		t.Error("union across gap succeeded")
	}
	// Union with empty is identity.
	empty := Range(sym.Const(5), sym.Const(3))
	u2, ok := c.UnionAdjacent(ctx, empty)
	if !ok || u2.String() != c.String() {
		t.Errorf("union with empty = %v, %v", u2, ok)
	}
}

func TestEnrichAndWiden(t *testing.T) {
	// Reproduces the Fig 5 widening: [1..1] with i=1 widened against
	// [1..2] with i=2 gives [1..i].
	ctx1 := ctxWith(func(g *cg.Graph) { g.SetConst("i", 1) })
	s1 := Range(sym.Const(1), sym.Const(1)).Enrich(ctx1)

	ctx2 := ctxWith(func(g *cg.Graph) { g.SetConst("i", 2) })
	s2 := Range(sym.Const(1), sym.Const(2)).Enrich(ctx2)

	w, ok := s1.Widen(s2)
	if !ok {
		t.Fatal("widening failed")
	}
	if w.String() != "[1..i]" {
		t.Errorf("widened = %v, want [1..i]", w)
	}
}

func TestWidenFailsWithoutCommonAtom(t *testing.T) {
	s1 := Singleton(sym.Const(1))
	s2 := Singleton(sym.Const(2))
	if _, ok := s1.Widen(s2); ok {
		t.Error("widening [1] vs [2] without witnesses should fail")
	}
}

func TestSubstOnIncrement(t *testing.T) {
	// After i := i + 1, a range [1..i] expressed pre-increment becomes
	// [1..i-1]: substitute i -> i-1.
	s := Range(sym.Const(1), sym.Var("i"))
	ns := s.Subst("i", sym.VarPlus("i", -1))
	if ns.String() != "[1..i - 1]" {
		t.Errorf("subst = %v", ns)
	}
	if !s.Uses("i") || ns.Uses("j") {
		t.Error("Uses wrong")
	}
}

func TestOffset(t *testing.T) {
	s := Range(sym.Const(0), sym.VarPlus("np", -2))
	o := s.Offset(1)
	if o.String() != "[1..np - 1]" {
		t.Errorf("offset = %v", o)
	}
}

func TestConcreteSlice(t *testing.T) {
	s := Range(sym.Const(1), sym.VarPlus("np", -1))
	env := map[string]int64{"np": 4}
	got := s.ConcreteSlice(env)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("slice = %v", got)
	}
	empty := Range(sym.Const(3), sym.Const(1))
	if len(empty.ConcreteSlice(env)) != 0 {
		t.Error("empty slice not empty")
	}
}

func TestBoundOps(t *testing.T) {
	b := NewBound(sym.Const(1), sym.Var("i"), sym.Const(1))
	if len(b.Atoms()) != 2 {
		t.Errorf("dedup failed: %v", b.Atoms())
	}
	if b.Primary().String() != "1" {
		t.Errorf("primary = %v (want const preferred)", b.Primary())
	}
	if b.StringAll() != "{1,i}" {
		t.Errorf("StringAll = %q", b.StringAll())
	}
	drop := b.DropUses("i")
	if len(drop.Atoms()) != 1 {
		t.Errorf("DropUses = %v", drop.Atoms())
	}
	var invalid Bound
	if invalid.IsValid() || invalid.String() != "?" {
		t.Error("invalid bound misbehaves")
	}
}

func TestSameRange(t *testing.T) {
	ctx := ctxWith(func(g *cg.Graph) { g.SetConst("i", 3) })
	a := Range(sym.Const(0), sym.Var("i"))
	b := Range(sym.Const(0), sym.Const(3))
	if got := a.SameRange(ctx, b); got != tri.True {
		t.Errorf("SameRange = %v", got)
	}
	c := Range(sym.Const(0), sym.Const(4))
	if got := a.SameRange(ctx, c); got != tri.False {
		t.Errorf("SameRange = %v", got)
	}
}

func TestQuickConcreteAgreement(t *testing.T) {
	// Property: symbolic decisions, when definite, agree with concrete
	// evaluation over random environments and constant ranges.
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo1, hi1 := int64(r.Intn(10)), int64(r.Intn(10))
		lo2, hi2 := int64(r.Intn(10)), int64(r.Intn(10))
		ctx := ctxWith(nil)
		s1 := Range(sym.Const(lo1), sym.Const(hi1))
		s2 := Range(sym.Const(lo2), sym.Const(hi2))
		env := map[string]int64{}
		set1 := s1.ConcreteSlice(env)
		set2 := s2.ConcreteSlice(env)

		if got := s1.Empty(ctx); got != tri.FromBool(len(set1) == 0) {
			return false
		}
		contains := func(xs []int64, v int64) bool {
			for _, x := range xs {
				if x == v {
					return true
				}
			}
			return false
		}
		probe := int64(r.Intn(10))
		if got := s1.Contains(ctx, sym.Const(probe)); got != tri.Unknown {
			if (got == tri.True) != contains(set1, probe) {
				return false
			}
		}
		sub := true
		for _, v := range set2 {
			if !contains(set1, v) {
				sub = false
			}
		}
		if got := s1.ContainsSet(ctx, s2); got != tri.Unknown {
			if (got == tri.True) != sub {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRemovePointPartitions(t *testing.T) {
	// Property: RemovePoint partitions the concrete set.
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo := int64(r.Intn(5))
		hi := lo + int64(r.Intn(6))
		x := lo + int64(r.Intn(int(hi-lo+1)))
		s := Range(sym.Const(lo), sym.Const(hi))
		left, mid, right := s.RemovePoint(sym.Const(x))
		env := map[string]int64{}
		var union []int64
		union = append(union, left.ConcreteSlice(env)...)
		union = append(union, mid.ConcreteSlice(env)...)
		union = append(union, right.ConcreteSlice(env)...)
		want := s.ConcreteSlice(env)
		if len(union) != len(want) {
			return false
		}
		for i := range want {
			if union[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
