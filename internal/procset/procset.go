// Package procset implements the symbolic process-set representation of the
// paper's Section VII-B: contiguous ranges [lb..ub] whose bounds are *sets of
// equivalent expressions* (e.g. {1, i} when the constraint state knows i=1).
// Range emptiness, membership, splitting and widening are all decided
// relative to a constraint graph carrying the currently known facts.
package procset

import (
	"fmt"
	"strings"

	"repro/internal/cg"
	"repro/internal/sym"
	"repro/internal/tri"
)

// Bound is one end of a range: a non-empty set of expressions that are all
// known to be equal to the bound's value. Atoms are deduplicated by
// canonical key and kept sorted for deterministic output.
type Bound struct {
	atoms []sym.Expr
}

// NewBound builds a bound from one or more equivalent expressions.
func NewBound(atoms ...sym.Expr) Bound {
	b := Bound{}
	for _, a := range atoms {
		b = b.Insert(a)
	}
	return b
}

// maxAtoms caps the number of equivalent expressions kept per bound.
// Dropping extra atoms loses precision only (they are all equal), and the
// cap keeps bound comparisons from degrading quadratically when enrichment
// keeps finding witnesses.
const maxAtoms = 8

// Insert returns a bound extended with another equivalent expression.
// Atoms stay sorted by key, so membership and position come from one pass
// of allocation-free key comparisons instead of rendered key strings.
func (b Bound) Insert(e sym.Expr) Bound {
	pos := len(b.atoms)
	for i, a := range b.atoms {
		c := a.CompareKey(e)
		if c == 0 {
			return b
		}
		if c > 0 {
			pos = i
			break
		}
	}
	if len(b.atoms) >= maxAtoms {
		return b
	}
	atoms := make([]sym.Expr, 0, len(b.atoms)+1)
	atoms = append(atoms, b.atoms[:pos]...)
	atoms = append(atoms, e)
	atoms = append(atoms, b.atoms[pos:]...)
	return Bound{atoms: atoms}
}

// Atoms returns the equivalent expressions (do not mutate).
func (b Bound) Atoms() []sym.Expr { return b.atoms }

// IsValid reports whether the bound has at least one atom.
func (b Bound) IsValid() bool { return len(b.atoms) > 0 }

// Primary returns a representative atom: prefer a constant, then the
// lexicographically smallest expression.
func (b Bound) Primary() sym.Expr {
	for _, a := range b.atoms {
		if _, ok := a.IsConst(); ok {
			return a
		}
	}
	if len(b.atoms) == 0 {
		return sym.Zero
	}
	return b.atoms[0]
}

// Offset returns the bound shifted by constant c (applied to every atom).
func (b Bound) Offset(c int64) Bound {
	out := Bound{}
	for _, a := range b.atoms {
		out = out.Insert(sym.AddConst(a, c))
	}
	return out
}

// Subst applies a variable substitution to every atom, dropping atoms that
// stop being affine var+c forms.
func (b Bound) Subst(name string, repl sym.Expr) Bound {
	out := Bound{}
	for _, a := range b.atoms {
		na := sym.Subst(a, name, repl)
		if _, _, ok := na.AsVarPlusConst(); ok {
			out = out.Insert(na)
		}
	}
	return out
}

// SubstAll applies a simultaneous substitution to every atom, dropping
// atoms that stop being affine var+c forms.
func (b Bound) SubstAll(env map[string]sym.Expr) Bound {
	out := Bound{}
	for _, a := range b.atoms {
		na := sym.SubstAll(a, env)
		if _, _, ok := na.AsVarPlusConst(); ok {
			out = out.Insert(na)
		}
	}
	return out
}

// Uses reports whether any atom references the variable.
func (b Bound) Uses(name string) bool {
	for _, a := range b.atoms {
		if a.Uses(name) {
			return true
		}
	}
	return false
}

// DropUses removes atoms referencing name. The result may be invalid.
func (b Bound) DropUses(name string) Bound {
	out := Bound{}
	for _, a := range b.atoms {
		if !a.Uses(name) {
			out = out.Insert(a)
		}
	}
	return out
}

// Intersect keeps atoms present in both bounds (by key) — the paper's
// widening of bounds. The result may be invalid (no common atom).
func (b Bound) Intersect(o Bound) Bound {
	out := Bound{}
	for _, a := range b.atoms {
		for _, oa := range o.atoms {
			if a.CompareKey(oa) == 0 {
				out = out.Insert(a)
				break
			}
		}
	}
	return out
}

func (b Bound) String() string {
	if len(b.atoms) == 0 {
		return "?"
	}
	return b.Primary().String()
}

// StringAll renders every atom, e.g. "{1,i}".
func (b Bound) StringAll() string {
	if len(b.atoms) <= 1 {
		return b.String()
	}
	parts := make([]string, len(b.atoms))
	for i, a := range b.atoms {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ---------------------------------------------------------------------------
// Comparisons relative to a constraint context

// Ctx wraps the facts needed to compare symbolic bounds: a difference
// constraint graph over the same variable namespace as the bound atoms.
type Ctx struct {
	G *cg.Graph
}

// cmpAtoms decides a ? b for two var+c atoms using the context.
// Returns (a <= b + slack) entailment.
func (ctx Ctx) leqAtoms(a, b sym.Expr, slack int64) tri.Bool {
	if d, ok := sym.Cmp(a, b); ok { // a - b constant
		return tri.FromBool(d <= slack)
	}
	va, ca, oka := a.AsVarPlusConst()
	vb, cb, okb := b.AsVarPlusConst()
	if !oka || !okb || ctx.G == nil {
		return tri.Unknown
	}
	na, nb := va, vb
	if na == "" {
		na = cg.ZeroVar
	}
	if nb == "" {
		nb = cg.ZeroVar
	}
	// a <= b + slack  <=>  na - nb <= cb - ca + slack
	if ctx.G.Entails(na, nb, cb-ca+slack) {
		return tri.True
	}
	// Refute: b + slack < a  <=>  nb - na <= ca - cb - slack - 1
	if ctx.G.Entails(nb, na, ca-cb-slack-1) {
		return tri.False
	}
	return tri.Unknown
}

// LeqBound decides lhs <= rhs + slack, trying all atom pairs.
func (ctx Ctx) LeqBound(lhs, rhs Bound, slack int64) tri.Bool {
	res := tri.Unknown
	for _, a := range lhs.atoms {
		for _, b := range rhs.atoms {
			switch ctx.leqAtoms(a, b, slack) {
			case tri.True:
				return tri.True
			case tri.False:
				res = tri.False
			}
		}
	}
	return res
}

// EqBound decides lhs == rhs + slack.
func (ctx Ctx) EqBound(lhs, rhs Bound, slack int64) tri.Bool {
	le := ctx.LeqBound(lhs, rhs, slack)
	ge := ctx.LeqBound(rhs, lhs, -slack)
	return le.And(ge)
}

// Contradictory reports whether the bound's atom class is provably broken:
// two atoms that are supposed to witness the same value are strictly ordered
// under the context. Such a class arises when a witness goes stale — the
// constraint that justified it was weakened by a graph join/widen and a later
// path re-pinned the variable to a different value. Every atom-picking proof
// over a contradictory class is unreliable (LeqBound may prove both a <= x
// and x <= b from different atoms), so callers folding or comparing ranges
// must treat such bounds as unusable.
func (ctx Ctx) Contradictory(b Bound) bool {
	for i := 0; i < len(b.atoms); i++ {
		for j := i + 1; j < len(b.atoms); j++ {
			if ctx.leqAtoms(b.atoms[i], b.atoms[j], -1) == tri.True ||
				ctx.leqAtoms(b.atoms[j], b.atoms[i], -1) == tri.True {
				return true
			}
		}
	}
	return false
}

// ContradictorySet reports whether either bound of s has a broken atom class.
func (ctx Ctx) ContradictorySet(s Set) bool {
	return ctx.Contradictory(s.LB) || ctx.Contradictory(s.UB)
}

// Coherent reports whether every comparable pair of atoms in the class is
// provably equal under the context — the class invariant (all atoms
// witness one value) is certified rather than assumed. A sound fixpoint
// leaves only coherent classes, but a stale witness can survive a graph
// join/widen without being provably Contradictory: {np - 2, 2} under
// np >= 4 admits np = 4 (equal) yet breaks at np = 5. Pairs with no
// finite difference bound between their variables at all (e.g. a loop
// counter projected away when its frame left the loop) are skipped: such
// atoms are inert — no proof can pick them and concretization never
// binds them — so demanding a proof about them would reject legitimate
// results. Terminal match records failing this check cannot be certified.
func (ctx Ctx) Coherent(b Bound) bool {
	for i := 0; i < len(b.atoms); i++ {
		for j := i + 1; j < len(b.atoms); j++ {
			if !ctx.comparableAtoms(b.atoms[i], b.atoms[j]) {
				continue
			}
			if ctx.leqAtoms(b.atoms[i], b.atoms[j], 0) != tri.True ||
				ctx.leqAtoms(b.atoms[j], b.atoms[i], 0) != tri.True {
				return false
			}
		}
	}
	return true
}

// comparableAtoms reports whether the context relates a and b at all: a
// syntactic constant difference, or a finite difference bound between
// their variables in either direction.
func (ctx Ctx) comparableAtoms(a, b sym.Expr) bool {
	if _, ok := sym.Cmp(a, b); ok {
		return true
	}
	va, _, oka := a.AsVarPlusConst()
	vb, _, okb := b.AsVarPlusConst()
	if !oka || !okb || ctx.G == nil {
		return false
	}
	na, nb := va, vb
	if na == "" {
		na = cg.ZeroVar
	}
	if nb == "" {
		nb = cg.ZeroVar
	}
	if !ctx.G.HasVar(na) || !ctx.G.HasVar(nb) {
		return false
	}
	if _, ok := ctx.G.DiffBound(na, nb); ok {
		return true
	}
	_, ok := ctx.G.DiffBound(nb, na)
	return ok
}

// CoherentSet reports whether both bounds of s have certified atom classes.
func (ctx Ctx) CoherentSet(s Set) bool {
	return ctx.Coherent(s.LB) && ctx.Coherent(s.UB)
}

// Enrich adds to b every var+c expression the context proves equal to it.
func (ctx Ctx) Enrich(b Bound) Bound {
	if ctx.G == nil || !b.IsValid() {
		return b
	}
	out := b
	for _, a := range b.atoms {
		v, c, ok := a.AsVarPlusConst()
		if !ok {
			continue
		}
		name := v
		if name == "" {
			name = cg.ZeroVar
		}
		if !ctx.G.HasVar(name) {
			continue
		}
		for _, w := range ctx.G.EqualWitnesses(name) {
			// name = w.Var + w.C, so a = name + c = w.Var + w.C + c.
			if w.Var == cg.ZeroVar {
				out = out.Insert(sym.Const(w.C + c))
			} else {
				out = out.Insert(sym.VarPlus(w.Var, w.C+c))
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Sets

// Set is a contiguous symbolic range [LB..UB] of process IDs. A set with
// LB > UB (per the context) is empty. The zero Set is invalid.
type Set struct {
	LB, UB Bound
}

// Range builds [lb..ub].
func Range(lb, ub sym.Expr) Set { return Set{NewBound(lb), NewBound(ub)} }

// Singleton builds [e..e].
func Singleton(e sym.Expr) Set { return Range(e, e) }

// IsValid reports whether both bounds carry at least one atom.
func (s Set) IsValid() bool { return s.LB.IsValid() && s.UB.IsValid() }

// Empty decides whether the set is empty (LB > UB) in the context.
func (s Set) Empty(ctx Ctx) tri.Bool {
	// Empty iff NOT (LB <= UB).
	return ctx.LeqBound(s.LB, s.UB, 0).Not()
}

// Singleton decides whether the set has exactly one element (LB == UB).
func (s Set) IsSingleton(ctx Ctx) tri.Bool { return ctx.EqBound(s.LB, s.UB, 0) }

// Contains decides whether expression e lies within [LB..UB].
func (s Set) Contains(ctx Ctx, e sym.Expr) tri.Bool {
	b := NewBound(e)
	lo := ctx.LeqBound(s.LB, b, 0)
	hi := ctx.LeqBound(b, s.UB, 0)
	return lo.And(hi)
}

// ContainsSet decides whether o ⊆ s.
func (s Set) ContainsSet(ctx Ctx, o Set) tri.Bool {
	if o.Empty(ctx) == tri.True {
		return tri.True
	}
	lo := ctx.LeqBound(s.LB, o.LB, 0)
	hi := ctx.LeqBound(o.UB, s.UB, 0)
	return lo.And(hi)
}

// SameRange decides whether s and o denote the same range.
func (s Set) SameRange(ctx Ctx, o Set) tri.Bool {
	return ctx.EqBound(s.LB, o.LB, 0).And(ctx.EqBound(s.UB, o.UB, 0))
}

// Offset translates the whole range by constant c.
func (s Set) Offset(c int64) Set { return Set{s.LB.Offset(c), s.UB.Offset(c)} }

// OffsetExpr translates the range by a symbolic amount, keeping only atoms
// that remain in var+c form. The result may be invalid if no atom survives.
func (s Set) OffsetExpr(ofs sym.Expr) Set {
	return Set{s.LB.OffsetExpr(ofs), s.UB.OffsetExpr(ofs)}
}

// OffsetExpr shifts the bound by a symbolic amount, keeping affine atoms.
func (b Bound) OffsetExpr(ofs sym.Expr) Bound {
	out := Bound{}
	for _, a := range b.atoms {
		na := sym.Add(a, ofs)
		if _, _, ok := na.AsVarPlusConst(); ok {
			out = out.Insert(na)
		}
	}
	return out
}

// RemovePoint splits s around a member x, returning the (possibly empty)
// left part [LB..x-1], the singleton [x..x], and right part [x+1..UB].
// The caller is responsible for having checked Contains(x).
func (s Set) RemovePoint(x sym.Expr) (left, mid, right Set) {
	xb := NewBound(x)
	left = Set{s.LB, xb.Offset(-1)}
	mid = Set{xb, xb}
	right = Set{xb.Offset(1), s.UB}
	return left, mid, right
}

// SplitBelow splits s at pivot x into [LB..x-1] and [x..UB] (elements < x
// and elements >= x).
func (s Set) SplitBelow(x sym.Expr) (lt, ge Set) {
	xb := NewBound(x)
	return Set{s.LB, xb.Offset(-1)}, Set{xb, s.UB}
}

// UnionAdjacent merges s and o when they are adjacent or overlapping
// contiguous ranges (s before o). ok=false when adjacency cannot be proved.
func (s Set) UnionAdjacent(ctx Ctx, o Set) (Set, bool) {
	if s.Empty(ctx) == tri.True {
		return o, true
	}
	if o.Empty(ctx) == tri.True {
		return s, true
	}
	// s.UB + 1 >= o.LB (no gap) and s.LB <= o.LB (ordering).
	noGap := ctx.LeqBound(o.LB, s.UB, 1)
	ordered := ctx.LeqBound(s.LB, o.LB, 0)
	if noGap != tri.True || ordered != tri.True {
		return Set{}, false
	}
	// New upper bound = max(s.UB, o.UB); prove one side dominates.
	if ctx.LeqBound(s.UB, o.UB, 0) == tri.True {
		return Set{s.LB, o.UB}, true
	}
	if ctx.LeqBound(o.UB, s.UB, 0) == tri.True {
		return Set{s.LB, s.UB}, true
	}
	return Set{}, false
}

// Intersect computes the intersection of two contiguous ranges:
// [max(lb1,lb2)..min(ub1,ub2)], requiring the bound order to be provable in
// the context.
func Intersect(ctx Ctx, a, b Set) (Set, bool) {
	lb, ok := pickGreater(ctx, a.LB, b.LB)
	if !ok {
		return Set{}, false
	}
	ub, ok := pickLesser(ctx, a.UB, b.UB)
	if !ok {
		return Set{}, false
	}
	return Set{LB: lb, UB: ub}, true
}

func pickGreater(ctx Ctx, a, b Bound) (Bound, bool) {
	if ctx.LeqBound(a, b, 0) == tri.True {
		return b, true
	}
	if ctx.LeqBound(b, a, 0) == tri.True {
		return a, true
	}
	return Bound{}, false
}

func pickLesser(ctx Ctx, a, b Bound) (Bound, bool) {
	if ctx.LeqBound(a, b, 0) == tri.True {
		return a, true
	}
	if ctx.LeqBound(b, a, 0) == tri.True {
		return b, true
	}
	return Bound{}, false
}

// Subtract computes whole \ part for a contiguous part of a contiguous
// whole, returning the leftover pieces (at most two). The caller must have
// established part ⊆ whole and part non-empty for the result to be exact.
func Subtract(ctx Ctx, whole, part Set) ([]Set, bool) {
	if whole.SameRange(ctx, part) == tri.True {
		return nil, true
	}
	if whole.ContainsSet(ctx, part) != tri.True {
		return nil, false
	}
	var rests []Set
	if ctx.EqBound(whole.LB, part.LB, 0) != tri.True {
		rests = append(rests, Set{LB: whole.LB, UB: part.LB.Offset(-1)})
	}
	if ctx.EqBound(part.UB, whole.UB, 0) != tri.True {
		rests = append(rests, Set{LB: part.UB.Offset(1), UB: whole.UB})
	}
	return rests, true
}

// Widen intersects the bound atom sets pairwise (Section VII-D). Both sides
// should be Enriched first. ok=false when either intersection is empty.
func (s Set) Widen(o Set) (Set, bool) {
	lb := s.LB.Intersect(o.LB)
	ub := s.UB.Intersect(o.UB)
	if !lb.IsValid() || !ub.IsValid() {
		return Set{}, false
	}
	return Set{lb, ub}, true
}

// Subst rewrites variable name to repl in both bounds. The result may be
// invalid if every atom mentioned the variable in a non-affine way.
func (s Set) Subst(name string, repl sym.Expr) Set {
	return Set{s.LB.Subst(name, repl), s.UB.Subst(name, repl)}
}

// SubstAll applies a simultaneous substitution to both bounds.
func (s Set) SubstAll(env map[string]sym.Expr) Set {
	return Set{s.LB.SubstAll(env), s.UB.SubstAll(env)}
}

// Uses reports whether either bound references the variable.
func (s Set) Uses(name string) bool { return s.LB.Uses(name) || s.UB.Uses(name) }

// Enrich expands both bounds with context-equal atoms.
func (s Set) Enrich(ctx Ctx) Set {
	return Set{ctx.Enrich(s.LB), ctx.Enrich(s.UB)}
}

// ConcreteSlice enumerates the set's members under a concrete environment
// (for testing against the simulator). Each bound is evaluated through an
// atom whose variables env all binds — the atoms are equality witnesses, so
// any fully-bound one is exact, while Eval on an atom with an unbound
// variable (an internal ps-var witness, say) would silently read it as 0 and
// concretize a wildly wrong range.
func (s Set) ConcreteSlice(env map[string]int64) []int64 {
	lo, okL := evalBound(s.LB, env)
	hi, okH := evalBound(s.UB, env)
	if !okL || !okH || hi < lo {
		return nil
	}
	out := make([]int64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

// Concretizable reports whether both bounds carry an atom fully bound by env.
func (s Set) Concretizable(env map[string]int64) bool {
	_, okL := evalBound(s.LB, env)
	_, okH := evalBound(s.UB, env)
	return okL && okH
}

// evalBound evaluates the bound through its first atom whose variables are
// all bound in env. ok=false when no atom qualifies.
func evalBound(b Bound, env map[string]int64) (int64, bool) {
	for _, a := range b.atoms {
		bound := true
		for _, v := range a.Vars() {
			if _, ok := env[v]; !ok {
				bound = false
				break
			}
		}
		if bound {
			return a.Eval(env), true
		}
	}
	return 0, false
}

func (s Set) String() string {
	if !s.IsValid() {
		return "[invalid]"
	}
	if len(s.LB.atoms) == 1 && len(s.UB.atoms) == 1 && s.LB.atoms[0].CompareKey(s.UB.atoms[0]) == 0 {
		return fmt.Sprintf("[%s]", s.LB)
	}
	return fmt.Sprintf("[%s..%s]", s.LB, s.UB)
}

// StringAll renders both bounds with all atoms.
func (s Set) StringAll() string {
	return fmt.Sprintf("[%s..%s]", s.LB.StringAll(), s.UB.StringAll())
}
