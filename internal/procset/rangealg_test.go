package procset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cg"
	"repro/internal/sym"
	"repro/internal/tri"
)

func TestIntersectConst(t *testing.T) {
	ctx := Ctx{}
	cases := []struct {
		a, b [2]int64
		want string
		ok   bool
	}{
		{[2]int64{0, 5}, [2]int64{3, 9}, "[3..5]", true},
		{[2]int64{3, 9}, [2]int64{0, 5}, "[3..5]", true},
		{[2]int64{0, 9}, [2]int64{2, 4}, "[2..4]", true},
		{[2]int64{0, 2}, [2]int64{5, 9}, "[5..2]", true}, // empty but exact
	}
	for _, c := range cases {
		a := Range(sym.Const(c.a[0]), sym.Const(c.a[1]))
		b := Range(sym.Const(c.b[0]), sym.Const(c.b[1]))
		got, ok := Intersect(ctx, a, b)
		if ok != c.ok {
			t.Errorf("Intersect(%v,%v) ok=%v", a, b, ok)
			continue
		}
		if ok && got.String() != c.want {
			t.Errorf("Intersect(%v,%v) = %v, want %v", a, b, got, c.want)
		}
	}
}

func TestIntersectSymbolic(t *testing.T) {
	g := cg.NewDefault()
	g.AddLE(cg.ZeroVar, "np", -4) // np >= 4
	ctx := Ctx{G: g}
	a := Range(sym.Const(0), sym.VarPlus("np", -1))
	b := Range(sym.Const(2), sym.VarPlus("np", -2))
	got, ok := Intersect(ctx, a, b)
	if !ok || got.String() != "[2..np - 2]" {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	// Unknown ordering fails.
	c := Range(sym.Var("a"), sym.Var("b"))
	if _, ok := Intersect(ctx, a, c); ok {
		t.Error("unknown ordering intersect succeeded")
	}
}

func TestSubtractExactness(t *testing.T) {
	ctx := Ctx{}
	whole := Range(sym.Const(0), sym.Const(9))
	// Middle.
	rests, ok := Subtract(ctx, whole, Range(sym.Const(4), sym.Const(6)))
	if !ok || len(rests) != 2 || rests[0].String() != "[0..3]" || rests[1].String() != "[7..9]" {
		t.Errorf("middle: %v %v", rests, ok)
	}
	// Whole.
	rests, ok = Subtract(ctx, whole, whole)
	if !ok || len(rests) != 0 {
		t.Errorf("whole: %v %v", rests, ok)
	}
	// Suffix.
	rests, ok = Subtract(ctx, whole, Range(sym.Const(7), sym.Const(9)))
	if !ok || len(rests) != 1 || rests[0].String() != "[0..6]" {
		t.Errorf("suffix: %v %v", rests, ok)
	}
	// Not provably contained.
	if _, ok := Subtract(ctx, whole, Range(sym.Var("x"), sym.Var("y"))); ok {
		t.Error("unprovable containment subtract succeeded")
	}
}

func TestQuickIntersectSubtractSemantics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ctx := Ctx{}
		mk := func() Set {
			lo := int64(r.Intn(12))
			return Range(sym.Const(lo), sym.Const(lo+int64(r.Intn(8))-2))
		}
		toSet := func(s Set) map[int64]bool {
			m := map[int64]bool{}
			for _, v := range s.ConcreteSlice(nil) {
				m[v] = true
			}
			return m
		}
		a, b := mk(), mk()
		if in, ok := Intersect(ctx, a, b); ok {
			want := map[int64]bool{}
			bs := toSet(b)
			for v := range toSet(a) {
				if bs[v] {
					want[v] = true
				}
			}
			got := toSet(in)
			if len(got) != len(want) {
				return false
			}
			for v := range want {
				if !got[v] {
					return false
				}
			}
		}
		// Subtract: whole ⊇ part by construction.
		whole := Range(sym.Const(0), sym.Const(9))
		lo := int64(r.Intn(10))
		hi := lo + int64(r.Intn(int(10-lo)))
		part := Range(sym.Const(lo), sym.Const(hi))
		if rests, ok := Subtract(ctx, whole, part); ok {
			got := map[int64]bool{}
			for _, rs := range rests {
				for v := range toSet(rs) {
					got[v] = true
				}
			}
			ps := toSet(part)
			for v := range toSet(whole) {
				if ps[v] == got[v] {
					return false // must be exactly the complement
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOffsetExpr(t *testing.T) {
	s := Range(sym.Const(0), sym.VarPlus("k", 0))
	o := s.OffsetExpr(sym.Var("nx"))
	// 0 + nx = nx stays affine; k + nx does not.
	if !o.LB.IsValid() {
		t.Error("const+var offset should stay valid")
	}
	if o.UB.IsValid() {
		t.Errorf("var+var bound should be dropped, got %v", o.UB)
	}
	o2 := s.OffsetExpr(sym.Const(3))
	if o2.String() != "[3..k + 3]" {
		t.Errorf("const offset = %v", o2)
	}
}

func TestBoundAtomCap(t *testing.T) {
	b := NewBound(sym.Const(0))
	for i := 1; i < 40; i++ {
		b = b.Insert(sym.VarPlus("v"+string(rune('a'+i%20)), int64(i)))
	}
	if len(b.Atoms()) > maxAtoms {
		t.Errorf("atom cap exceeded: %d", len(b.Atoms()))
	}
	// The first atom survives.
	if b.Primary().String() != "0" {
		t.Errorf("primary = %v", b.Primary())
	}
}

func TestWidenRespectsCap(t *testing.T) {
	// Widening after heavy enrichment still terminates and stays bounded.
	g := cg.NewDefault()
	g.SetConst("i", 3)
	ctx := Ctx{G: g}
	s := Range(sym.Const(3), sym.Const(3)).Enrich(ctx)
	if len(s.LB.Atoms()) > maxAtoms {
		t.Errorf("enrich exceeded cap: %d", len(s.LB.Atoms()))
	}
	w, ok := s.Widen(s)
	if !ok || !w.IsValid() {
		t.Error("self-widen failed")
	}
}

func TestEqBoundAndSameRangeTri(t *testing.T) {
	ctx := Ctx{}
	a := Range(sym.Const(2), sym.Const(5))
	if got := a.SameRange(ctx, a); got != tri.True {
		t.Errorf("SameRange self = %v", got)
	}
	b := Range(sym.Var("u"), sym.Const(5))
	if got := a.SameRange(ctx, b); got != tri.Unknown {
		t.Errorf("SameRange unknown = %v", got)
	}
}
