package verify

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/clients/symbolic"
	"repro/internal/core"
	"repro/internal/parser"
)

func checkSrc(t *testing.T, src string) (*Report, *core.Result) {
	t.Helper()
	prog, err := parser.Parse("t.mpl", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := cfg.Build(prog)
	res, err := core.Analyze(g, core.Options{Matcher: &symbolic.Matcher{}})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return Check(g, res), res
}

func TestCleanProgram(t *testing.T) {
	rep, _ := checkSrc(t, `
assume np >= 3
if id == 0 then
  send x -> 1
elif id == 1 then
  recv y <- 0
end`)
	if !rep.OK() {
		t.Errorf("findings on clean program:\n%s", rep)
	}
	if rep.String() != "verify: ok" {
		t.Errorf("String = %q", rep.String())
	}
}

func TestOrphanRecvIsDeadlock(t *testing.T) {
	rep, _ := checkSrc(t, `
assume np >= 2
if id == 0 then
  recv y <- 1
end`)
	if rep.OK() {
		t.Fatal("no findings for orphan recv")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == PotentialDeadlock {
			found = true
		}
	}
	if !found {
		t.Errorf("no deadlock finding:\n%s", rep)
	}
}

func TestOrphanSendIsLeak(t *testing.T) {
	rep, _ := checkSrc(t, `
assume np >= 2
if id == 0 then
  send x -> 1
end`)
	if rep.OK() {
		t.Fatal("no findings for orphan send")
	}
	foundLeak := false
	for _, f := range rep.Findings {
		if f.Kind == MessageLeak {
			foundLeak = true
			if !strings.Contains(f.Message, "never received") {
				t.Errorf("message = %q", f.Message)
			}
		}
	}
	if !foundLeak {
		t.Errorf("no leak finding:\n%s", rep)
	}
}

func TestTypeMismatchOnMatchedPair(t *testing.T) {
	rep, _ := checkSrc(t, `
assume np >= 2
if id == 0 then
  send x -> 1 : halo
elif id == 1 then
  recv y <- 0 : data
end`)
	found := false
	for _, f := range rep.Findings {
		if f.Kind == TypeMismatch {
			found = true
			if f.Other < 0 {
				t.Error("type mismatch missing partner node")
			}
		}
	}
	if !found {
		t.Errorf("type mismatch not found:\n%s", rep)
	}
}

func TestMatchingTagsAreFine(t *testing.T) {
	rep, _ := checkSrc(t, `
assume np >= 2
if id == 0 then
  send x -> 1 : halo
elif id == 1 then
  recv y <- 0 : halo
end`)
	for _, f := range rep.Findings {
		if f.Kind == TypeMismatch {
			t.Errorf("spurious type mismatch:\n%s", rep)
		}
	}
}

func TestUntaggedPairsNotFlagged(t *testing.T) {
	rep, _ := checkSrc(t, `
assume np >= 2
if id == 0 then
  send x -> 1 : halo
elif id == 1 then
  recv y <- 0
end`)
	for _, f := range rep.Findings {
		if f.Kind == TypeMismatch {
			t.Errorf("one-sided tag flagged:\n%s", rep)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := MessageLeak; k <= AnalysisIncomplete; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("missing string for kind %d", int(k))
		}
	}
}
