// Package verify implements the error-detection client analyses the paper
// motivates (Section I): message leaks (sends that can never be received),
// potential deadlocks (receives with no matching send), and type mismatches
// between matched senders and receivers (via MPL's message tags).
package verify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/core"
)

// Finding is one verification result.
type Finding struct {
	Kind    Kind
	Node    int // primary CFG node
	Other   int // secondary node (matches); -1 otherwise
	Message string
}

// Kind classifies findings.
type Kind int

// Finding kinds.
const (
	// MessageLeak: a send operation that blocks forever (no matching
	// receive exists on any path the analysis completed).
	MessageLeak Kind = iota
	// PotentialDeadlock: a receive blocked with no matching send.
	PotentialDeadlock
	// TypeMismatch: a matched send/recv pair disagrees on the message tag.
	TypeMismatch
	// AnalysisIncomplete: the framework reached ⊤ for another reason; the
	// program may still be correct.
	AnalysisIncomplete
)

func (k Kind) String() string {
	switch k {
	case MessageLeak:
		return "message-leak"
	case PotentialDeadlock:
		return "potential-deadlock"
	case TypeMismatch:
		return "type-mismatch"
	case AnalysisIncomplete:
		return "analysis-incomplete"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Report holds all findings for a program.
type Report struct {
	Findings []Finding
}

// OK reports whether no problems were found.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

func (r *Report) String() string {
	if r.OK() {
		return "verify: ok"
	}
	var b strings.Builder
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%s: %s\n", f.Kind, f.Message)
	}
	return b.String()
}

// Check inspects a completed analysis for communication errors.
func Check(g *cfg.Graph, res *core.Result) *Report {
	rep := &Report{}

	// Type mismatches on established matches.
	for _, m := range res.Matches {
		sn, rn := g.Node(m.SendNode), g.Node(m.RecvNode)
		if sn == nil || rn == nil {
			continue
		}
		if sn.Tag != "" && rn.Tag != "" && sn.Tag != rn.Tag {
			rep.Findings = append(rep.Findings, Finding{
				Kind:  TypeMismatch,
				Node:  m.SendNode,
				Other: m.RecvNode,
				Message: fmt.Sprintf("send at n%d has type %q but matches recv at n%d with type %q",
					m.SendNode, sn.Tag, m.RecvNode, rn.Tag),
			})
		}
	}

	// Leftover pending sends in final configurations are exact
	// message-leak witnesses (non-blocking mode): the message is in flight
	// forever.
	for _, fin := range res.Finals {
		for _, p := range fin.Pending {
			rep.Findings = append(rep.Findings, Finding{
				Kind:  MessageLeak,
				Node:  p.Node,
				Other: -1,
				Message: fmt.Sprintf("message(s) from processes %s sent at n%d [%s] are never received",
					p.Senders, p.Node, g.Node(p.Node).Label()),
			})
		}
	}

	// ⊤ configurations: inspect which operations were blocked.
	for _, t := range res.Tops {
		classified := false
		for _, ps := range t.Sets {
			if !ps.Blocked {
				continue
			}
			switch ps.Node.Kind {
			case cfg.Send, cfg.SendRecv:
				rep.Findings = append(rep.Findings, Finding{
					Kind:  MessageLeak,
					Node:  ps.Node.ID,
					Other: -1,
					Message: fmt.Sprintf("send at n%d [%s] by processes %s is never received",
						ps.Node.ID, ps.Node.Label(), ps.Range),
				})
				classified = true
			case cfg.Recv:
				rep.Findings = append(rep.Findings, Finding{
					Kind:  PotentialDeadlock,
					Node:  ps.Node.ID,
					Other: -1,
					Message: fmt.Sprintf("recv at n%d [%s] by processes %s has no matching send",
						ps.Node.ID, ps.Node.Label(), ps.Range),
				})
				classified = true
			}
		}
		if !classified {
			rep.Findings = append(rep.Findings, Finding{
				Kind:    AnalysisIncomplete,
				Node:    -1,
				Other:   -1,
				Message: t.TopWhy,
			})
		}
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Kind != rep.Findings[j].Kind {
			return rep.Findings[i].Kind < rep.Findings[j].Kind
		}
		return rep.Findings[i].Node < rep.Findings[j].Node
	})
	return rep
}
