package topology

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
)

func runTopology(t *testing.T, wName string) *Report {
	t.Helper()
	var g *cfg.Graph
	for _, w := range bench.All() {
		if w.Name == wName {
			_, g = w.Parse()
		}
	}
	if g == nil {
		t.Fatalf("workload %q not found", wName)
	}
	m := cartesian.New(core.ScanInvariants(g))
	res, err := core.Analyze(g, core.Options{Matcher: m})
	if err != nil {
		t.Fatal(err)
	}
	return Build(g, res)
}

func TestExchangeWithRootPattern(t *testing.T) {
	rep := runTopology(t, "fig5_exchange_root")
	if !rep.Clean {
		t.Fatalf("not clean: %v", rep.TopReasons)
	}
	if rep.Overall != ExchangeWithRoot {
		t.Errorf("overall = %v, want exchange-with-root\n%s", rep.Overall, rep)
	}
	kinds := map[Pattern]int{}
	for _, e := range rep.Edges {
		kinds[e.Kind]++
	}
	if kinds[Broadcast] != 1 || kinds[Gather] != 1 {
		t.Errorf("edge kinds = %v, want one broadcast + one gather", kinds)
	}
}

func TestBroadcastPattern(t *testing.T) {
	rep := runTopology(t, "fanout")
	if rep.Overall != Broadcast {
		t.Errorf("overall = %v, want broadcast\n%s", rep.Overall, rep)
	}
}

func TestGatherPattern(t *testing.T) {
	rep := runTopology(t, "gather")
	if rep.Overall != Gather {
		t.Errorf("overall = %v, want gather\n%s", rep.Overall, rep)
	}
}

func TestShiftPattern(t *testing.T) {
	rep := runTopology(t, "fig7_shift")
	if rep.Overall != Shift {
		t.Errorf("overall = %v, want shift\n%s", rep.Overall, rep)
	}
}

func TestPermutationPattern(t *testing.T) {
	rep := runTopology(t, "nascg_square")
	if rep.Overall != Permutation {
		t.Errorf("overall = %v, want permutation\n%s", rep.Overall, rep)
	}
}

func TestPointToPointPattern(t *testing.T) {
	rep := runTopology(t, "fig2_exchange")
	if rep.Overall != PointToPoint {
		t.Errorf("overall = %v, want point-to-point\n%s", rep.Overall, rep)
	}
}

func TestReportRendering(t *testing.T) {
	rep := runTopology(t, "fig5_exchange_root")
	s := rep.String()
	if !strings.Contains(s, "exchange-with-root") {
		t.Errorf("report missing pattern:\n%s", s)
	}
	dot := rep.Dot("fig5")
	for _, want := range []string{"digraph", "[0]", "np - 1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
}

func TestPatternStrings(t *testing.T) {
	for p := Unknown; p <= Permutation; p++ {
		if p.String() == "" {
			t.Errorf("empty string for pattern %d", int(p))
		}
	}
}
