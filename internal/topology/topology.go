// Package topology turns the analysis's send-receive matches into a
// communication-topology report: a graph over symbolic process ranges with
// recognition of the collective patterns the paper motivates (Section I's
// mdcask example, where an exchange-with-root can be condensed into
// broadcast + gather collectives).
package topology

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/procset"
	"repro/internal/tri"
)

// Pattern classifies a recognized communication structure.
type Pattern int

// Recognized patterns.
const (
	Unknown Pattern = iota
	PointToPoint
	Broadcast // one -> many (fan-out)
	Gather    // many -> one (fan-in)
	ExchangeWithRoot
	Shift // many -> many at a uniform rank offset
	Permutation
)

func (p Pattern) String() string {
	switch p {
	case PointToPoint:
		return "point-to-point"
	case Broadcast:
		return "broadcast"
	case Gather:
		return "gather"
	case ExchangeWithRoot:
		return "exchange-with-root"
	case Shift:
		return "shift"
	case Permutation:
		return "permutation"
	}
	return "unknown"
}

// Edge is one topology edge: a matched send/recv node pair with the
// symbolic process ranges, classified in isolation.
type Edge struct {
	SendNode, RecvNode int
	SendLabel          string
	RecvLabel          string
	Sender             string
	Receiver           string
	Kind               Pattern
}

// Report is the full topology of a program.
type Report struct {
	Edges []Edge
	// Overall is the program-level classification.
	Overall Pattern
	// Clean reflects whether the analysis completed without ⊤.
	Clean bool
	// TopReasons carries analysis give-up reasons when not clean.
	TopReasons []string
}

// Build classifies a completed analysis result.
func Build(g *cfg.Graph, res *core.Result) *Report {
	r := &Report{Clean: res.Clean(), TopReasons: res.TopReasons()}
	var haveBroadcast, haveGather, haveShift, havePerm, haveP2P bool
	for _, m := range res.Matches {
		e := Edge{
			SendNode:  m.SendNode,
			RecvNode:  m.RecvNode,
			SendLabel: g.Node(m.SendNode).Label(),
			RecvLabel: g.Node(m.RecvNode).Label(),
			Sender:    m.Sender.String(),
			Receiver:  m.Receiver.String(),
			Kind:      classify(m),
		}
		switch e.Kind {
		case Broadcast:
			haveBroadcast = true
		case Gather:
			haveGather = true
		case Shift:
			haveShift = true
		case Permutation:
			havePerm = true
		case PointToPoint:
			haveP2P = true
		}
		r.Edges = append(r.Edges, e)
	}
	switch {
	case haveBroadcast && haveGather:
		r.Overall = ExchangeWithRoot
	case haveBroadcast:
		r.Overall = Broadcast
	case haveGather:
		r.Overall = Gather
	case havePerm:
		r.Overall = Permutation
	case haveShift:
		r.Overall = Shift
	case haveP2P:
		r.Overall = PointToPoint
	default:
		r.Overall = Unknown
	}
	return r
}

// classify categorizes one match record by the shapes of its ranges.
// Comparisons are purely syntactic (an empty constraint context), which is
// enough for the final enriched ranges.
func classify(m *core.Match) Pattern {
	ctx := procset.Ctx{}
	sSingle := m.Sender.IsSingleton(ctx) == tri.True || looksSingleton(m.Sender.String())
	rSingle := m.Receiver.IsSingleton(ctx) == tri.True || looksSingleton(m.Receiver.String())
	switch {
	case sSingle && rSingle:
		return PointToPoint
	case sSingle && !rSingle:
		return Broadcast
	case !sSingle && rSingle:
		return Gather
	case m.Sender.String() == m.Receiver.String():
		return Permutation
	default:
		return Shift
	}
}

// looksSingleton detects singleton renderings like "[0]" (no "..").
func looksSingleton(s string) bool {
	return strings.HasPrefix(s, "[") && !strings.Contains(s, "..")
}

// String renders a human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology: %s", r.Overall)
	if !r.Clean {
		fmt.Fprintf(&b, " (incomplete: %s)", strings.Join(r.TopReasons, "; "))
	}
	b.WriteString("\n")
	edges := append([]Edge(nil), r.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].SendNode != edges[j].SendNode {
			return edges[i].SendNode < edges[j].SendNode
		}
		return edges[i].RecvNode < edges[j].RecvNode
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %-18s %s %s -> %s %s  [n%d -> n%d]\n",
			e.Kind, e.Sender, e.SendLabel, e.Receiver, e.RecvLabel, e.SendNode, e.RecvNode)
	}
	return b.String()
}

// Dot renders the topology as a Graphviz digraph over process ranges.
func (r *Report) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  node [shape=ellipse, fontname=\"monospace\"];\n")
	ids := map[string]int{}
	nodeID := func(rng string) int {
		if id, ok := ids[rng]; ok {
			return id
		}
		id := len(ids)
		ids[rng] = id
		fmt.Fprintf(&b, "  p%d [label=%q];\n", id, rng)
		return id
	}
	for _, e := range r.Edges {
		s := nodeID(e.Sender)
		t := nodeID(e.Receiver)
		fmt.Fprintf(&b, "  p%d -> p%d [label=%q];\n", s, t, fmt.Sprintf("%s (n%d->n%d)", e.Kind, e.SendNode, e.RecvNode))
	}
	b.WriteString("}\n")
	return b.String()
}
