// Package gen is a seeded, grammar-driven generator of MPL programs for
// the differential-soundness harness (internal/differ). It covers the full
// language surface the analysis supports — rank and environment
// conditionals, for/while loops, arithmetic destination and value
// expressions, tagged multi-channel sends, and the shape families the
// paper's workloads are built from (pairs, broadcast, gather, shift,
// window shift, ring, pairwise exchange, root exchange) — behind two modes:
//
//   - deadlock-freedom-by-construction (the default): every emitted phase
//     is a complete communication pattern whose sends and receives pair up
//     on every np admitted by the program's assume, so the concrete
//     simulator never deadlocks and modelcheck.Check is a total oracle;
//   - deliberately-buggy (Config.Bug != BugNone): a safe program is
//     generated and then broken in one classified way (message leak,
//     stuck receive, tag mismatch, out-of-range rank) to exercise the
//     lint passes and the differ's triage of non-clean programs.
//
// Generation is a pure function of the *rand.Rand stream and the Config,
// so a (seed, config) pair is a complete reproducer for any program.
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Family names one communication shape the generator can emit as a phase.
type Family string

// The shape families. All are deadlock-free by construction for every
// np >= the program's assumed minimum.
const (
	// FamilyPairs: disjoint rank pairs exchange 1-2 tagged messages each,
	// optionally with a reply leg (recv-then-reply, so blocking-send
	// analyzable).
	FamilyPairs Family = "pairs"
	// FamilyBroadcast: rank 0 loop-sends to a contiguous subrange; the
	// range's upper end may be the symbolic np-1.
	FamilyBroadcast Family = "broadcast"
	// FamilyGather: a contiguous subrange sends to rank 0, which
	// loop-receives.
	FamilyGather Family = "gather"
	// FamilyShift: the paper's Fig 7 nearest-neighbor shift starting at a
	// random rank (send / recv-then-send middles / final recv).
	FamilyShift Family = "shift"
	// FamilyWindow: an offset shift — ranks [a, a+w-1] send to id+k, the
	// disjoint window [a+k, a+k+w-1] receives from id-k (arithmetic dest
	// and source expressions).
	FamilyWindow Family = "window"
	// FamilyRing: a sendrecv ring — every rank in [0, np-1] exchanges with
	// its cyclic neighbors via sendrecv role branches. Deadlock-free under
	// the simulator's non-blocking sends, but the cyclic dependency is ⊤
	// by design under the blocking analysis semantics, so it is not part
	// of SafeFamilies(); request it explicitly to exercise the ⊤ paths.
	FamilyRing Family = "ring"
	// FamilyPairwise: disjoint rank pairs exchange simultaneously via
	// sendrecv (the stencil building block).
	FamilyPairwise Family = "pairwise"
	// FamilyRootExchange: the mdcask pattern — rank 0 sends to and
	// receives from every rank in [1, np-1] in a loop; the others
	// recv-then-reply.
	FamilyRootExchange Family = "rootx"
)

// SafeFamilies lists every family that is both deadlock-free by
// construction and analyzable without a by-design ⊤ (FamilyRing is
// excluded: cyclic sendrecv is inherently ⊤ under blocking semantics).
func SafeFamilies() []Family {
	return []Family{
		FamilyPairs, FamilyBroadcast, FamilyGather, FamilyShift,
		FamilyWindow, FamilyPairwise, FamilyRootExchange,
	}
}

// minNP returns the smallest process count the family needs to be
// well-formed.
func (f Family) minNP() int {
	switch f {
	case FamilyPairs, FamilyPairwise:
		return 2
	case FamilyBroadcast, FamilyGather, FamilyRing, FamilyWindow:
		return 3
	case FamilyShift, FamilyRootExchange:
		return 4
	}
	return 2
}

// BugKind classifies the deliberate defect injected in buggy mode.
type BugKind string

// The injectable defects. Each corresponds to a lint pass (PSDF-E001,
// E002, E003, E004 respectively).
const (
	BugNone        BugKind = ""
	BugLeak        BugKind = "leak"         // extra send nobody receives
	BugStuckRecv   BugKind = "stuck-recv"   // extra receive nobody sends to
	BugTagMismatch BugKind = "tag-mismatch" // matched channel, different tags
	BugRankBounds  BugKind = "rank-bounds"  // send destination out of [0, np-1]
)

// Bugs lists the injectable defect kinds.
func Bugs() []BugKind {
	return []BugKind{BugLeak, BugStuckRecv, BugTagMismatch, BugRankBounds}
}

// Config sets the generator's size and shape knobs. The zero value is
// usable: defaults are filled in by New.
type Config struct {
	// MinNP is the process-count floor the program assumes (assume np >=
	// MinNP). It is raised to the largest floor any chosen family needs.
	// Default 4.
	MinNP int
	// Phases is how many family instances to compose sequentially.
	// Default: 1 or 2, chosen randomly.
	Phases int
	// Decor is the decoration budget: how many pure-compute statements
	// (assignments, prints, asserts, loops, rank/env conditionals) to
	// sprinkle between phases. Default 3. Set -1 for none.
	Decor int
	// Families restricts the shape families drawn from. Default:
	// SafeFamilies().
	Families []Family
	// EnvSymbol, when set, introduces a free environment symbol "w"
	// (assume-bounded to [1,3]) used by decorations; the concrete value
	// the differ should simulate with is returned in Program.Env.
	EnvSymbol bool
	// Bug, when not BugNone, injects the given defect into the otherwise
	// safe program.
	Bug BugKind
}

// Program is one generated MPL program plus the metadata the differ needs
// to oracle-check it.
type Program struct {
	// Src is the program text (always parseable and sem-checkable).
	Src string
	// Families lists the phases emitted, in order.
	Families []Family
	// MinNP is the assumed process-count floor: only simulate with
	// np >= MinNP.
	MinNP int
	// Env holds concrete values for free symbols (empty unless
	// Config.EnvSymbol).
	Env map[string]int64
	// Bug is the injected defect kind (BugNone for safe programs).
	Bug BugKind
	// PhaseLines records, in emission order, the 1-based inclusive line
	// range each phase's statements occupy in Src — the construct map the
	// profiler's sweep attribution joins widening failures against. Lines
	// outside every range are decoration (or the bug-injection epilogue).
	PhaseLines []PhaseLines
}

// PhaseLines is one phase's source line range (1-based, inclusive).
type PhaseLines struct {
	Family Family
	Start  int
	End    int
}

// New generates one program from the rand stream under cfg.
func New(r *rand.Rand, cfg Config) Program {
	if cfg.MinNP <= 0 {
		cfg.MinNP = 4
	}
	if cfg.Phases <= 0 {
		cfg.Phases = 1 + r.Intn(2)
	}
	if cfg.Decor == 0 {
		cfg.Decor = 3
	} else if cfg.Decor < 0 {
		cfg.Decor = 0
	}
	if len(cfg.Families) == 0 {
		cfg.Families = SafeFamilies()
	}

	b := &builder{r: r, cfg: cfg, env: map[string]int64{}}
	var fams []Family
	for i := 0; i < cfg.Phases; i++ {
		f := cfg.Families[r.Intn(len(cfg.Families))]
		fams = append(fams, f)
		if m := f.minNP(); m > cfg.MinNP {
			cfg.MinNP = m
		}
	}
	b.cfg = cfg
	b.np = cfg.MinNP

	fmt.Fprintf(&b.out, "assume np >= %d\n", cfg.MinNP)
	if cfg.EnvSymbol {
		b.envSym = "w"
		b.env["w"] = int64(1 + r.Intn(3))
		b.out.WriteString("assume w >= 1\nassume w <= 3\n")
	}
	b.decorate()
	var phaseLines []PhaseLines
	// Every emitted line ends in a newline, so the next line number is
	// always newline-count + 1.
	nextLine := func() int { return 1 + strings.Count(b.out.String(), "\n") }
	for _, f := range fams {
		start := nextLine()
		b.emitFamily(f)
		phaseLines = append(phaseLines, PhaseLines{Family: f, Start: start, End: nextLine() - 1})
		b.afterPhase = true
		b.decorate()
	}
	if cfg.Bug != BugNone {
		b.emitBug(cfg.Bug)
	}

	return Program{
		Src:        b.out.String(),
		Families:   fams,
		MinNP:      cfg.MinNP,
		Env:        b.env,
		Bug:        cfg.Bug,
		PhaseLines: phaseLines,
	}
}

// builder accumulates one program.
type builder struct {
	r      *rand.Rand
	cfg    Config
	out    strings.Builder
	np     int // assumed floor; rank constants stay in [0, np-1]
	temps  int // declared temp variables
	tags   int // allocated tag names
	envSym string
	env    map[string]int64
	// afterPhase flips once the first communication phase is emitted:
	// from then on the process sets carry symbolic (np-relative) bounds,
	// and splitting them on an absolute rank constant (id == 3 on
	// [np-2..np-1]) is undecidable — an unconditional ⊤ — so rank-cond
	// decorations are confined to the constant-bound prefix.
	afterPhase bool
	// lastChannel remembers a (sender, receiver, tagged) channel of the
	// last phase so bug injection can break it.
	lastSender, lastReceiver int
	lastTagged               bool
}

func (b *builder) line(depth int, format string, args ...any) {
	b.out.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(&b.out, format, args...)
	b.out.WriteByte('\n')
}

// freshTemp declares and returns a new temp variable at depth.
func (b *builder) freshTemp(depth int) string {
	b.temps++
	name := fmt.Sprintf("t%d", b.temps)
	b.line(depth, "var %s", name)
	return name
}

// freshTag returns a new message tag name.
func (b *builder) freshTag() string {
	b.tags++
	return fmt.Sprintf("tag%d", b.tags)
}

// tagSuffix randomly attaches a fresh tag to a communication statement.
func (b *builder) tagSuffix() string {
	if b.r.Intn(2) == 0 {
		return ""
	}
	return " : " + b.freshTag()
}

// intExpr builds a random integer-valued arithmetic expression of the
// given depth over id, np, constants, the env symbol and a temp name.
func (b *builder) intExpr(depth int, temp string) string {
	if depth <= 0 {
		switch b.r.Intn(5) {
		case 0:
			return "id"
		case 1:
			return "np"
		case 2:
			if temp != "" {
				return temp
			}
			return fmt.Sprint(b.r.Intn(7))
		case 3:
			if b.envSym != "" {
				return b.envSym
			}
			return fmt.Sprint(1 + b.r.Intn(5))
		default:
			return fmt.Sprint(b.r.Intn(9))
		}
	}
	l := b.intExpr(depth-1, temp)
	r := b.intExpr(depth-1, temp)
	switch b.r.Intn(5) {
	case 0:
		return fmt.Sprintf("%s + %s", l, r)
	case 1:
		return fmt.Sprintf("%s - %s", l, r)
	case 2:
		return fmt.Sprintf("%s * %s", l, r)
	case 3:
		// Divisor/modulus are nonzero constants: the simulator errors on
		// division by zero, so generated arithmetic stays total.
		return fmt.Sprintf("%s / %d", l, 1+b.r.Intn(4))
	default:
		return fmt.Sprintf("%s %% %d", l, 1+b.r.Intn(4))
	}
}

// rankCond builds an affine rank condition (the splittable fragment).
func (b *builder) rankCond() string {
	switch b.r.Intn(4) {
	case 0:
		return fmt.Sprintf("id == %d", b.r.Intn(b.np))
	case 1:
		return fmt.Sprintf("id >= %d", b.r.Intn(b.np))
	case 2:
		return fmt.Sprintf("id <= %d", b.r.Intn(b.np))
	default:
		return fmt.Sprintf("id <= np - %d", 1+b.r.Intn(2))
	}
}

// envCond builds a condition over the environment symbol (id-independent,
// so it never splits process sets).
func (b *builder) envCond() string {
	op := []string{"==", "<=", ">=", "!="}[b.r.Intn(4)]
	return fmt.Sprintf("%s %s %d", b.envSym, op, 1+b.r.Intn(3))
}

// decorate emits up to the decoration budget of pure-compute statements:
// no communication, so phases stay deadlock-free around them.
func (b *builder) decorate() {
	for i := 0; i < b.cfg.Decor; i++ {
		if b.r.Intn(2) == 0 {
			continue // spend the budget sparsely
		}
		b.decorStmt(0)
	}
}

func (b *builder) decorStmt(depth int) {
	switch b.r.Intn(7) {
	case 0:
		t := b.freshTemp(depth)
		b.line(depth, "%s := %s", t, b.intExpr(1+b.r.Intn(2), ""))
	case 1:
		b.line(depth, "print %s", b.intExpr(1, ""))
	case 2:
		b.line(depth, "assert np >= %d", b.cfg.MinNP-b.r.Intn(2))
	case 3:
		t := b.freshTemp(depth)
		lo := b.r.Intn(3)
		b.line(depth, "for k%d := %d to %d do", b.temps, lo, lo+1+b.r.Intn(3))
		b.line(depth+1, "%s := %s + k%d", t, t, b.temps)
		b.line(depth, "end")
	case 4:
		t := b.freshTemp(depth)
		b.line(depth, "%s := 0", t)
		b.line(depth, "while %s < %d do", t, 1+b.r.Intn(4))
		b.line(depth+1, "%s := %s + 1", t, t)
		b.line(depth, "end")
	case 5:
		if depth == 0 && !b.afterPhase {
			b.line(depth, "if %s then", b.rankCond())
			b.decorStmt(depth + 1)
			b.line(depth, "end")
		} else {
			b.line(depth, "skip")
		}
	default:
		if b.envSym != "" && depth == 0 {
			b.line(depth, "if %s then", b.envCond())
			b.decorStmt(depth + 1)
			b.line(depth, "end")
		} else {
			b.line(depth, "print %s", b.intExpr(1, ""))
		}
	}
}

// emitFamily writes one phase of the given family.
func (b *builder) emitFamily(f Family) {
	switch f {
	case FamilyPairs:
		b.emitPairs()
	case FamilyBroadcast:
		b.emitBroadcast()
	case FamilyGather:
		b.emitGather()
	case FamilyShift:
		b.emitShift()
	case FamilyWindow:
		b.emitWindow()
	case FamilyRing:
		b.emitRing()
	case FamilyPairwise:
		b.emitPairwise()
	case FamilyRootExchange:
		b.emitRootExchange()
	default:
		panic(fmt.Sprintf("gen: unknown family %q", f))
	}
}

// emitPairs: disjoint rank pairs exchange tagged messages; roughly the
// paper's point-to-point microbenchmark. Multi-channel: each pair may
// exchange two messages with distinct tags, and may add a reply leg.
func (b *builder) emitPairs() {
	ranks := b.r.Perm(b.np)
	nPairs := 1 + b.r.Intn(b.np/2)
	for i := 0; i < nPairs; i++ {
		s, d := ranks[2*i], ranks[2*i+1]
		nMsgs := 1 + b.r.Intn(2)
		reply := b.r.Intn(2) == 0
		// Multi-channel: each message in the pair gets its own (possibly
		// empty) tag, consistent between the two ends.
		tags := make([]string, nMsgs)
		for m := range tags {
			tags[m] = b.tagSuffix()
		}
		b.line(0, "if id == %d then", s)
		for m := 0; m < nMsgs; m++ {
			b.line(1, "send %s -> %d%s", b.valueExpr(), d, tags[m])
		}
		if reply {
			b.line(1, "recv rr <- %d", d)
		}
		b.line(0, "elif id == %d then", d)
		for m := 0; m < nMsgs; m++ {
			b.line(1, "recv y%d <- %d%s", m, s, tags[m])
		}
		if reply {
			b.line(1, "send y0 -> %d", s)
		}
		b.line(0, "end")
		b.lastSender, b.lastReceiver, b.lastTagged = s, d, tags[0] != ""
	}
}

// valueExpr builds the payload of a send: arbitrary arithmetic is fine
// here (payloads never steer matching).
func (b *builder) valueExpr() string {
	if b.r.Intn(3) == 0 {
		return b.intExpr(1, "")
	}
	return fmt.Sprint(b.r.Intn(100))
}

// emitBroadcast: rank 0 loop-sends to [lo, hi]; hi is either a constant
// below the floor or the symbolic np-1.
func (b *builder) emitBroadcast() {
	lo := 1 + b.r.Intn(b.np-2)
	hi, hiCond := b.subrangeHi(lo)
	tag := b.tagSuffix()
	b.line(0, "if id == 0 then")
	b.line(1, "for i := %d to %s do", lo, hi)
	b.line(2, "send %s -> i%s", b.valueExpr(), tag)
	b.line(1, "end")
	b.line(0, "elif id >= %d then", lo)
	if hiCond != "" {
		b.line(1, "if %s then", hiCond)
		b.line(2, "recv y <- 0%s", tag)
		b.line(1, "end")
	} else {
		b.line(1, "recv y <- 0%s", tag)
	}
	b.line(0, "end")
	b.lastSender, b.lastReceiver, b.lastTagged = 0, lo, tag != ""
}

// subrangeHi picks the upper end of a [lo, …] subrange: a constant (with
// its receiver-side guard) or the symbolic np-1 (no guard needed beyond
// id >= lo).
func (b *builder) subrangeHi(lo int) (hi, guard string) {
	if b.r.Intn(2) == 0 {
		return "np - 1", ""
	}
	h := lo + b.r.Intn(b.np-lo)
	return fmt.Sprint(h), fmt.Sprintf("id <= %d", h)
}

// emitGather: [lo, hi] send to rank 0, which loop-receives.
func (b *builder) emitGather() {
	lo := 1 + b.r.Intn(b.np-2)
	hi, hiCond := b.subrangeHi(lo)
	tag := b.tagSuffix()
	b.line(0, "if id == 0 then")
	b.line(1, "for i := %d to %s do", lo, hi)
	b.line(2, "recv y <- i%s", tag)
	b.line(1, "end")
	b.line(0, "elif id >= %d then", lo)
	if hiCond != "" {
		b.line(1, "if %s then", hiCond)
		b.line(2, "send %s -> 0%s", b.valueExpr(), tag)
		b.line(1, "end")
	} else {
		b.line(1, "send %s -> 0%s", b.valueExpr(), tag)
	}
	b.line(0, "end")
	b.lastSender, b.lastReceiver, b.lastTagged = lo, 0, tag != ""
}

// emitShift: the Fig 7 nearest-neighbor shift offset to start at a random
// rank (first sender / recv-then-send middles / last receiver).
func (b *builder) emitShift() {
	lo := b.r.Intn(b.np - 3)
	b.line(0, "if id == %d then", lo)
	b.line(1, "send %s -> id + 1", b.valueExpr())
	b.line(0, "elif id >= %d then", lo+1)
	b.line(1, "if id <= np - 2 then")
	b.line(2, "recv y <- id - 1")
	b.line(2, "send y -> id + 1")
	b.line(1, "else")
	b.line(2, "recv y <- id - 1")
	b.line(1, "end")
	b.line(0, "end")
	b.lastSender, b.lastReceiver, b.lastTagged = lo, lo+1, false
}

// emitWindow: ranks [a, a+w-1] send to id+k; the disjoint window
// [a+k, a+k+w-1] receives from id-k. Exercises arithmetic dest/source
// expressions with a non-unit offset.
func (b *builder) emitWindow() {
	w := 1 + b.r.Intn(b.np/2)
	k := w + b.r.Intn(b.np-2*w+1)
	a := b.r.Intn(b.np - w - k + 1)
	tag := b.tagSuffix()
	b.line(0, "if id >= %d then", a)
	b.line(1, "if id <= %d then", a+w-1)
	b.line(2, "send %s -> id + %d%s", b.valueExpr(), k, tag)
	b.line(1, "end")
	b.line(0, "end")
	b.line(0, "if id >= %d then", a+k)
	b.line(1, "if id <= %d then", a+k+w-1)
	b.line(2, "recv y <- id - %d%s", k, tag)
	b.line(1, "end")
	b.line(0, "end")
	b.lastSender, b.lastReceiver, b.lastTagged = a, a+k, tag != ""
}

// emitRing: every rank exchanges with its cyclic neighbors by sendrecv;
// the wraparound ranks get explicit role branches so every partner
// expression stays affine.
func (b *builder) emitRing() {
	b.line(0, "if id == 0 then")
	b.line(1, "sendrecv %s -> id + 1, y <- np - 1", b.valueExpr())
	b.line(0, "elif id <= np - 2 then")
	b.line(1, "sendrecv %s -> id + 1, y <- id - 1", b.valueExpr())
	b.line(0, "else")
	b.line(1, "sendrecv %s -> 0, y <- id - 1", b.valueExpr())
	b.line(0, "end")
	b.lastSender, b.lastReceiver, b.lastTagged = 0, 1, false
}

// emitPairwise: disjoint rank pairs exchange simultaneously via sendrecv
// (the deadlock-free stencil building block).
func (b *builder) emitPairwise() {
	ranks := b.r.Perm(b.np)
	nPairs := 1 + b.r.Intn(b.np/2)
	for i := 0; i < nPairs; i++ {
		s, d := ranks[2*i], ranks[2*i+1]
		tag := b.tagSuffix()
		b.line(0, "if id == %d then", s)
		b.line(1, "sendrecv %s -> %d, y <- %d%s", b.valueExpr(), d, d, tag)
		b.line(0, "elif id == %d then", d)
		b.line(1, "sendrecv %s -> %d, y <- %d%s", b.valueExpr(), s, s, tag)
		b.line(0, "end")
		b.lastSender, b.lastReceiver, b.lastTagged = s, d, tag != ""
	}
}

// emitRootExchange: the mdcask pattern (paper Fig 1/5) — rank 0 sends to
// and receives from every rank in [1, np-1]; the others recv-then-reply.
func (b *builder) emitRootExchange() {
	b.line(0, "if id == 0 then")
	b.line(1, "for i := 1 to np - 1 do")
	b.line(2, "send %s -> i", b.valueExpr())
	b.line(2, "recv y <- i")
	b.line(1, "end")
	b.line(0, "else")
	b.line(1, "recv y <- 0")
	b.line(1, "send y -> 0")
	b.line(0, "end")
	b.lastSender, b.lastReceiver, b.lastTagged = 0, 1, false
}

// emitBug appends (or notes) the deliberate defect. The base program is
// safe; each defect is a minimal, classified breakage.
func (b *builder) emitBug(kind BugKind) {
	s := b.r.Intn(b.np)
	d := (s + 1 + b.r.Intn(b.np-1)) % b.np
	switch kind {
	case BugLeak:
		// A send nobody receives: the message leaks (the concrete model's
		// sends are non-blocking, so no deadlock — just an undelivered
		// message).
		b.line(0, "if id == %d then", s)
		b.line(1, "send %s -> %d", b.valueExpr(), d)
		b.line(0, "end")
	case BugStuckRecv:
		// A receive nobody sends to: rank d blocks forever.
		b.line(0, "if id == %d then", d)
		b.line(1, "recv zz <- %d", s)
		b.line(0, "end")
	case BugTagMismatch:
		// A matched channel whose two ends disagree on the message tag.
		b.line(0, "if id == %d then", s)
		b.line(1, "send %s -> %d : %s", b.valueExpr(), d, b.freshTag())
		b.line(0, "elif id == %d then", d)
		b.line(1, "recv zz <- %d : %s", s, b.freshTag())
		b.line(0, "end")
	case BugRankBounds:
		// A send destination provably outside [0, np-1].
		b.line(0, "if id == %d then", s)
		b.line(1, "send %s -> np + %d", b.valueExpr(), b.r.Intn(3))
		b.line(0, "end")
	default:
		panic(fmt.Sprintf("gen: unknown bug kind %q", kind))
	}
}
