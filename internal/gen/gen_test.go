package gen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/lint"
	"repro/internal/parser"
	"repro/internal/sem"
)

// TestDeterminism: generation is a pure function of the seed and config —
// the reproducibility contract every sweep seed, shrunk repro, and CI gate
// depends on.
func TestDeterminism(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := New(rand.New(rand.NewSource(seed)), Config{})
		b := New(rand.New(rand.NewSource(seed)), Config{})
		if a.Src != b.Src {
			t.Fatalf("seed %d: two generations differ:\n--- a\n%s\n--- b\n%s", seed, a.Src, b.Src)
		}
		if a.MinNP != b.MinNP || a.Bug != b.Bug || len(a.Families) != len(b.Families) {
			t.Fatalf("seed %d: metadata differs", seed)
		}
	}
}

// TestGeneratedProgramsAreWellFormed: every generated program — safe or
// buggy, decorated or not — parses and passes the semantic checker. The
// generator's validity promise is what lets sweep failures always blame
// the analysis, never the input.
func TestGeneratedProgramsAreWellFormed(t *testing.T) {
	configs := []Config{
		{},
		{Phases: 3, Decor: 6},
		{Decor: -1},
		{EnvSymbol: true},
		{Families: []Family{FamilyRing}},
		{Bug: BugLeak},
		{Bug: BugStuckRecv},
		{Bug: BugTagMismatch},
		{Bug: BugRankBounds},
	}
	for _, cfg := range configs {
		for seed := int64(0); seed < 40; seed++ {
			p := New(rand.New(rand.NewSource(seed)), cfg)
			prog, err := parser.Parse("gen.mpl", p.Src)
			if err != nil {
				t.Fatalf("config %+v seed %d: parse: %v\n%s", cfg, seed, err, p.Src)
			}
			if _, err := sem.Check(prog); err != nil {
				t.Fatalf("config %+v seed %d: sem: %v\n%s", cfg, seed, err, p.Src)
			}
			if p.MinNP < 2 {
				t.Fatalf("config %+v seed %d: MinNP = %d", cfg, seed, p.MinNP)
			}
			if !strings.Contains(p.Src, "assume np >=") {
				t.Fatalf("config %+v seed %d: missing np floor assume\n%s", cfg, seed, p.Src)
			}
		}
	}
}

// TestFamilyCoverage: over a modest seed range the default config draws
// every safe family — the sweep actually exercises the whole grammar.
func TestFamilyCoverage(t *testing.T) {
	seen := map[Family]bool{}
	for seed := int64(0); seed < 200; seed++ {
		p := New(rand.New(rand.NewSource(seed)), Config{})
		for _, f := range p.Families {
			seen[f] = true
		}
	}
	for _, f := range SafeFamilies() {
		if !seen[f] {
			t.Errorf("family %s never drawn in 200 seeds", f)
		}
	}
	if seen[FamilyRing] {
		t.Error("FamilyRing drawn by default config; it must be opt-in")
	}
}

// TestMinNPRespectsFamilies: the assumed floor covers the neediest phase,
// so the differ never simulates an np the shapes are ill-formed at.
func TestMinNPRespectsFamilies(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := New(rand.New(rand.NewSource(seed)), Config{})
		for _, f := range p.Families {
			if p.MinNP < f.minNP() {
				t.Fatalf("seed %d: MinNP %d below %s floor %d", seed, p.MinNP, f, f.minNP())
			}
		}
	}
}

// TestBuggyModeTriggersLint: every injected defect kind is caught by the
// corresponding lint pass on at least most seeds — the buggy mode earns
// its keep as a lint-surface exerciser.
func TestBuggyModeTriggersLint(t *testing.T) {
	if testing.Short() {
		t.Skip("lint sweep skipped in -short mode")
	}
	for _, bug := range Bugs() {
		caught := 0
		const trials = 15
		for seed := int64(0); seed < trials; seed++ {
			p := New(rand.New(rand.NewSource(seed)), Config{Bug: bug})
			if p.Bug != bug {
				t.Fatalf("bug %s seed %d: Program.Bug = %q", bug, seed, p.Bug)
			}
			target, err := lint.Load("gen.mpl", p.Src, core.Options{})
			if err != nil {
				t.Fatalf("bug %s seed %d: lint load: %v\n%s", bug, seed, err, p.Src)
			}
			rep := lint.Run(target, lint.Options{})
			if len(rep.Diags) > 0 {
				caught++
			}
		}
		// The injected defect can occasionally be masked by a surrounding
		// safe phase (e.g. a leak destination that another phase happens
		// to read); require a strong majority, not perfection.
		if caught < trials*2/3 {
			t.Errorf("bug %s: lint caught only %d/%d seeds", bug, caught, trials)
		}
	}
}

// TestSafeProgramsAnalyzeWithoutError: the analysis itself (not its
// precision) must never fail on generated safe programs — errors are
// harness bugs, and the differ classifies them as ClassError.
func TestSafeProgramsAnalyzeWithoutError(t *testing.T) {
	if testing.Short() {
		t.Skip("analysis sweep skipped in -short mode")
	}
	for seed := int64(0); seed < 30; seed++ {
		p := New(rand.New(rand.NewSource(seed)), Config{})
		prog, err := parser.Parse("gen.mpl", p.Src)
		if err != nil {
			t.Fatal(err)
		}
		g := cfg.Build(prog)
		if _, err := core.Analyze(g, core.Options{Matcher: cartesian.New(core.ScanInvariants(g))}); err != nil {
			t.Errorf("seed %d: analysis error: %v\n%s", seed, err, p.Src)
		}
	}
}

// TestPhaseLines: the recorded per-phase line ranges are in order,
// in bounds, non-overlapping, and aligned with Families — the contract
// the profiler's per-construct sweep attribution joins against.
func TestPhaseLines(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := New(rand.New(rand.NewSource(seed)), Config{Phases: 3, Decor: 4})
		if len(p.PhaseLines) != len(p.Families) {
			t.Fatalf("seed %d: %d phase ranges for %d families", seed, len(p.PhaseLines), len(p.Families))
		}
		nLines := strings.Count(p.Src, "\n")
		prevEnd := 0
		lines := strings.Split(p.Src, "\n")
		for i, pl := range p.PhaseLines {
			if pl.Family != p.Families[i] {
				t.Fatalf("seed %d: range %d family %q, Families[%d] %q", seed, i, pl.Family, i, p.Families[i])
			}
			if pl.Start <= prevEnd || pl.End < pl.Start || pl.End > nLines {
				t.Fatalf("seed %d: bad range %d [%d,%d] after end %d (src %d lines)\n%s",
					seed, i, pl.Start, pl.End, prevEnd, nLines, p.Src)
			}
			// A phase is communication: its range must contain a comm stmt.
			comm := false
			for ln := pl.Start; ln <= pl.End; ln++ {
				text := lines[ln-1]
				if strings.Contains(text, "send") || strings.Contains(text, "recv") ||
					strings.Contains(text, "sendrecv") {
					comm = true
					break
				}
			}
			if !comm {
				t.Fatalf("seed %d: range %d [%d,%d] (%s) holds no comm statement\n%s",
					seed, i, pl.Start, pl.End, pl.Family, p.Src)
			}
			prevEnd = pl.End
		}
	}
}
