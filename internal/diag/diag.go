// Package diag defines the structured diagnostics model shared by the lint
// passes and the psdf CLI: stable codes (PSDF-Exxx / PSDF-Wxxx), severities,
// primary and related source spans, explanations and fix hints, plus a rule
// registry that the output formatters (text, JSON, SARIF) render from.
package diag

import (
	"fmt"
	"sort"

	"repro/internal/source"
)

// Severity classifies a diagnostic. Errors drive nonzero exit codes in the
// CLI; warnings and infos do not.
type Severity int

// Severities, most severe first.
const (
	Error Severity = iota
	Warning
	Info
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Info:
		return "info"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// sarifLevel maps a severity onto the SARIF result level vocabulary.
func (s Severity) sarifLevel() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "note"
}

// Rule is the registry entry behind a diagnostic code: the stable identity
// reported to users and machine consumers.
type Rule struct {
	// Code is the stable identifier, e.g. "PSDF-E001". E-codes default to
	// Error severity, W-codes to Warning.
	Code string
	// Name is the short kebab-case rule name, e.g. "message-leak".
	Name string
	// DefaultSeverity is the severity diagnostics of this rule carry unless
	// a pass overrides it.
	DefaultSeverity Severity
	// Summary is a one-line description of what the rule checks.
	Summary string
	// Help explains the underlying analysis and how to fix findings.
	Help string
}

// The diagnostic codes emitted by the bundled lint passes.
const (
	CodeMessageLeak    = "PSDF-E001"
	CodeDeadlock       = "PSDF-E002"
	CodeTagMismatch    = "PSDF-E003"
	CodeRankBounds     = "PSDF-E004"
	CodeAnalysisGaveUp = "PSDF-E005"
	CodeBoundsUnproven = "PSDF-W004"
	CodeDeadCode       = "PSDF-W006"
)

// registry holds the known rules in registration order.
var registry = []Rule{
	{
		Code: CodeMessageLeak, Name: "message-leak", DefaultSeverity: Error,
		Summary: "a sent message is never received",
		Help: "The dataflow analysis found a terminal configuration in which a send " +
			"has no matching receive: the message stays in the channel forever. " +
			"Check the destination expression and the receiver's guard conditions.",
	},
	{
		Code: CodeDeadlock, Name: "potential-deadlock", DefaultSeverity: Error,
		Summary: "processes may block forever on a receive",
		Help: "A process set is blocked at a receive operation with no possible " +
			"matching send. If the analysis also gave up, the block may instead " +
			"reflect lost precision; the ⊤-blame trace shows which.",
	},
	{
		Code: CodeTagMismatch, Name: "tag-mismatch", DefaultSeverity: Error,
		Summary: "matched send and receive use different message tags",
		Help: "The communication topology matches these operations structurally, " +
			"but their tags differ, so a tag-checking runtime would not deliver " +
			"the message. Align the tag annotations on both sides.",
	},
	{
		Code: CodeRankBounds, Name: "rank-out-of-bounds", DefaultSeverity: Error,
		Summary: "a communication target is provably outside [0, np-1]",
		Help: "The constraint-graph client proved that some process in the range " +
			"computes a partner rank below 0 or above np-1 — the classic " +
			"unguarded id±1 boundary bug. Guard the operation so boundary " +
			"processes skip it (e.g. `if id <= np - 2 then send ... end`).",
	},
	{
		Code: CodeAnalysisGaveUp, Name: "analysis-gave-up", DefaultSeverity: Error,
		Summary: "the dataflow analysis reached ⊤ and cannot verify this program",
		Help: "The pCFG exploration hit a configuration it cannot represent " +
			"(failed widening, unsupported rank-dependent condition, or no " +
			"representable match). The blame trace shows the first operation " +
			"that forced the give-up; restructuring it usually restores precision.",
	},
	{
		Code: CodeBoundsUnproven, Name: "rank-bounds-unproven", DefaultSeverity: Warning,
		Summary: "a communication target could not be proved inside [0, np-1]",
		Help: "The target expression is outside the affine difference-constraint " +
			"fragment (or the needed facts are missing), so in-bounds could not " +
			"be proved — nor refuted. Reported only in strict mode.",
	},
	{
		Code: CodeDeadCode, Name: "unreachable-code", DefaultSeverity: Warning,
		Summary: "no process can ever execute this statement",
		Help: "The process set reaching this program point is provably empty for " +
			"every np (for example a branch on `id >= np`). The code is dead; " +
			"remove it or fix the guard.",
	},
}

var byCode = func() map[string]Rule {
	m := make(map[string]Rule, len(registry))
	for _, r := range registry {
		m[r.Code] = r
	}
	return m
}()

// Rules returns all registered rules in code order.
func Rules() []Rule {
	out := append([]Rule(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// RuleFor looks up a rule by code; ok=false for unknown codes.
func RuleFor(code string) (Rule, bool) {
	r, ok := byCode[code]
	return r, ok
}

// Related is a secondary location attached to a diagnostic (the other end of
// a match, a step of a blame trace, ...).
type Related struct {
	Span    source.Span
	Message string
}

// Diagnostic is one lint finding: a coded, located, explained message.
type Diagnostic struct {
	Code     string
	Severity Severity
	Path     string      // source file the finding is in
	Span     source.Span // primary location (may be invalid for whole-program findings)
	Message  string      // one-line statement of the finding
	Explain  string      // optional longer explanation (analysis evidence)
	Hint     string      // optional fix suggestion
	Related  []Related   // secondary locations
}

// New builds a diagnostic for a registered code with the rule's default
// severity.
func New(code, path string, span source.Span, message string) Diagnostic {
	sev := Error
	if r, ok := byCode[code]; ok {
		sev = r.DefaultSeverity
	}
	return Diagnostic{Code: code, Severity: sev, Path: path, Span: span, Message: message}
}

// Sort orders diagnostics for deterministic output: by path, then span start,
// then code, then message.
func Sort(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Span.Start != b.Span.Start {
			if a.Span.Start.Line != b.Span.Start.Line {
				return a.Span.Start.Line < b.Span.Start.Line
			}
			return a.Span.Start.Col < b.Span.Start.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any diagnostic has Error severity.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}
