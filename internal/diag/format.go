package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/source"
)

// WriteText renders diagnostics in the classic compiler style:
//
//	path:line:col: error[PSDF-E004]: process np - 1 sends to np
//	    send x -> id + 1
//	         ^~~~~~~~~~~
//	  note: ...
//	  hint: guard the send so the last rank skips it
//
// files maps a diagnostic's Path to its source.File for line excerpts;
// missing entries simply omit the excerpt.
func WriteText(w io.Writer, files map[string]*source.File, ds []Diagnostic) {
	for _, d := range ds {
		loc := d.Path
		if d.Span.IsValid() {
			loc = fmt.Sprintf("%s:%d:%d", d.Path, d.Span.Start.Line, d.Span.Start.Col)
		}
		fmt.Fprintf(w, "%s: %s[%s]: %s\n", loc, d.Severity, d.Code, d.Message)
		writeExcerpt(w, files[d.Path], d.Span)
		if d.Explain != "" {
			fmt.Fprintf(w, "  = %s\n", d.Explain)
		}
		for _, r := range d.Related {
			if r.Span.IsValid() {
				fmt.Fprintf(w, "  note: %d:%d: %s\n", r.Span.Start.Line, r.Span.Start.Col, r.Message)
			} else {
				fmt.Fprintf(w, "  note: %s\n", r.Message)
			}
		}
		if d.Hint != "" {
			fmt.Fprintf(w, "  hint: %s\n", d.Hint)
		}
	}
}

// writeExcerpt prints the source line under a span with a caret underline.
func writeExcerpt(w io.Writer, f *source.File, sp source.Span) {
	if f == nil || !sp.IsValid() {
		return
	}
	line := f.Line(sp.Start.Line)
	if line == "" {
		return
	}
	fmt.Fprintf(w, "    %s\n", line)
	start := sp.Start.Col - 1
	if start < 0 || start >= len(line) {
		return
	}
	end := start + 1
	if sp.End.IsValid() && sp.End.Line == sp.Start.Line && sp.End.Col-1 > start {
		end = sp.End.Col - 1
		if end > len(line) {
			end = len(line)
		}
	}
	// Tabs in the prefix must stay tabs so the caret lines up.
	pad := make([]byte, start)
	for i := 0; i < start; i++ {
		if line[i] == '\t' {
			pad[i] = '\t'
		} else {
			pad[i] = ' '
		}
	}
	marks := "^" + strings.Repeat("~", end-start-1)
	fmt.Fprintf(w, "    %s%s\n", pad, marks)
}

// jsonPos/jsonSpan/jsonRelated/jsonDiag mirror the diagnostic model with
// stable field names for the -format json output.
type jsonPos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

type jsonSpan struct {
	Start jsonPos  `json:"start"`
	End   *jsonPos `json:"end,omitempty"`
}

type jsonRelated struct {
	Span    *jsonSpan `json:"span,omitempty"`
	Message string    `json:"message"`
}

type jsonDiag struct {
	Code     string        `json:"code"`
	Rule     string        `json:"rule,omitempty"`
	Severity string        `json:"severity"`
	Path     string        `json:"path"`
	Span     *jsonSpan     `json:"span,omitempty"`
	Message  string        `json:"message"`
	Explain  string        `json:"explain,omitempty"`
	Hint     string        `json:"hint,omitempty"`
	Related  []jsonRelated `json:"related,omitempty"`
}

func toJSONSpan(sp source.Span) *jsonSpan {
	if !sp.IsValid() {
		return nil
	}
	out := &jsonSpan{Start: jsonPos{sp.Start.Line, sp.Start.Col}}
	if sp.End.IsValid() && sp.End != sp.Start {
		out.End = &jsonPos{sp.End.Line, sp.End.Col}
	}
	return out
}

// WriteJSON renders diagnostics as a JSON object {"diagnostics": [...]}.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	out := struct {
		Diagnostics []jsonDiag `json:"diagnostics"`
	}{Diagnostics: []jsonDiag{}}
	for _, d := range ds {
		jd := jsonDiag{
			Code:     d.Code,
			Severity: d.Severity.String(),
			Path:     d.Path,
			Span:     toJSONSpan(d.Span),
			Message:  d.Message,
			Explain:  d.Explain,
			Hint:     d.Hint,
		}
		if r, ok := RuleFor(d.Code); ok {
			jd.Rule = r.Name
		}
		for _, rel := range d.Related {
			jd.Related = append(jd.Related, jsonRelated{Span: toJSONSpan(rel.Span), Message: rel.Message})
		}
		out.Diagnostics = append(out.Diagnostics, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0 (the subset code-scanning UIs consume)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version,omitempty"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	Name             string        `json:"name,omitempty"`
	ShortDescription *sarifMessage `json:"shortDescription,omitempty"`
	FullDescription  *sarifMessage `json:"fullDescription,omitempty"`
	DefaultConfig    *sarifConfig  `json:"defaultConfiguration,omitempty"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID           string          `json:"ruleId"`
	RuleIndex        int             `json:"ruleIndex"`
	Level            string          `json:"level"`
	Message          sarifMessage    `json:"message"`
	Locations        []sarifLocation `json:"locations,omitempty"`
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

func toSarifLocation(path string, sp source.Span, msg string) sarifLocation {
	loc := sarifLocation{PhysicalLocation: sarifPhysical{ArtifactLocation: sarifArtifact{URI: path}}}
	if sp.IsValid() {
		r := &sarifRegion{StartLine: sp.Start.Line, StartColumn: sp.Start.Col}
		if sp.End.IsValid() && sp.End != sp.Start {
			r.EndLine = sp.End.Line
			r.EndColumn = sp.End.Col
		}
		loc.PhysicalLocation.Region = r
	}
	if msg != "" {
		loc.Message = &sarifMessage{Text: msg}
	}
	return loc
}

// WriteSARIF renders diagnostics as a single-run SARIF 2.1.0 log. The rules
// array lists every registered rule (in code order), so ruleIndex values are
// stable across runs regardless of which findings occur.
func WriteSARIF(w io.Writer, toolVersion string, ds []Diagnostic) error {
	rules := Rules()
	ruleIdx := map[string]int{}
	sr := make([]sarifRule, len(rules))
	for i, r := range rules {
		ruleIdx[r.Code] = i
		sr[i] = sarifRule{
			ID:               r.Code,
			Name:             r.Name,
			ShortDescription: &sarifMessage{Text: r.Summary},
			FullDescription:  &sarifMessage{Text: r.Help},
			DefaultConfig:    &sarifConfig{Level: r.DefaultSeverity.sarifLevel()},
		}
	}
	results := []sarifResult{}
	for _, d := range ds {
		msg := d.Message
		if d.Explain != "" {
			msg += ". " + d.Explain
		}
		if d.Hint != "" {
			msg += ". Hint: " + d.Hint
		}
		res := sarifResult{
			RuleID:    d.Code,
			RuleIndex: ruleIdx[d.Code],
			Level:     d.Severity.sarifLevel(),
			Message:   sarifMessage{Text: msg},
			Locations: []sarifLocation{toSarifLocation(d.Path, d.Span, "")},
		}
		for _, rel := range d.Related {
			res.RelatedLocations = append(res.RelatedLocations, toSarifLocation(d.Path, rel.Span, rel.Message))
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "psdf-lint", Version: toolVersion, Rules: sr}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
