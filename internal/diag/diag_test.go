package diag_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/source"
)

func sampleDiags() []diag.Diagnostic {
	d := diag.New(diag.CodeRankBounds, "prog.mpl",
		source.Span{Start: source.Pos{Line: 2, Col: 11}, End: source.Pos{Line: 2, Col: 17}},
		"process np - 1 sends to np, beyond the last rank np - 1")
	d.Explain = "the constraint-graph client proved the violation for range [0..np - 1]"
	d.Hint = "guard the send so the last rank skips it"
	d.Related = []diag.Related{{
		Span:    source.Span{Start: source.Pos{Line: 3, Col: 11}},
		Message: "the matching receive is here",
	}}
	w := diag.New(diag.CodeDeadCode, "prog.mpl",
		source.Span{Start: source.Pos{Line: 5, Col: 3}},
		"no process can execute this statement")
	return []diag.Diagnostic{d, w}
}

func TestRegistry(t *testing.T) {
	rules := diag.Rules()
	if len(rules) < 7 {
		t.Fatalf("expected at least 7 registered rules, got %d", len(rules))
	}
	for i := 1; i < len(rules); i++ {
		if rules[i-1].Code >= rules[i].Code {
			t.Errorf("rules not sorted: %s before %s", rules[i-1].Code, rules[i].Code)
		}
	}
	r, ok := diag.RuleFor(diag.CodeMessageLeak)
	if !ok || r.Name != "message-leak" || r.DefaultSeverity != diag.Error {
		t.Errorf("CodeMessageLeak lookup wrong: %+v ok=%v", r, ok)
	}
	if w, ok := diag.RuleFor(diag.CodeDeadCode); !ok || w.DefaultSeverity != diag.Warning {
		t.Errorf("CodeDeadCode should default to warning: %+v", w)
	}
	if _, ok := diag.RuleFor("PSDF-X999"); ok {
		t.Error("unknown code should not resolve")
	}
}

func TestNewUsesDefaultSeverity(t *testing.T) {
	if d := diag.New(diag.CodeDeadCode, "f", source.Span{}, "m"); d.Severity != diag.Warning {
		t.Errorf("severity = %v, want Warning", d.Severity)
	}
	if d := diag.New(diag.CodeDeadlock, "f", source.Span{}, "m"); d.Severity != diag.Error {
		t.Errorf("severity = %v, want Error", d.Severity)
	}
}

func TestSortAndHasErrors(t *testing.T) {
	ds := []diag.Diagnostic{
		diag.New(diag.CodeDeadCode, "b.mpl", source.Span{Start: source.Pos{Line: 1, Col: 1}}, "x"),
		diag.New(diag.CodeMessageLeak, "a.mpl", source.Span{Start: source.Pos{Line: 9, Col: 1}}, "y"),
		diag.New(diag.CodeDeadlock, "a.mpl", source.Span{Start: source.Pos{Line: 2, Col: 5}}, "z"),
	}
	diag.Sort(ds)
	if ds[0].Path != "a.mpl" || ds[0].Span.Start.Line != 2 || ds[2].Path != "b.mpl" {
		t.Errorf("sort order wrong: %+v", ds)
	}
	if !diag.HasErrors(ds) {
		t.Error("HasErrors should see the E-codes")
	}
	if diag.HasErrors(ds[2:]) {
		t.Error("warning-only list should report no errors")
	}
}

func TestWriteText(t *testing.T) {
	content := "assume np >= 2\nsend x -> id + 1\nrecv y <- id - 1\n\n  x := 1\n"
	files := map[string]*source.File{"prog.mpl": source.NewFile("prog.mpl", content)}
	var b strings.Builder
	diag.WriteText(&b, files, sampleDiags())
	out := b.String()
	for _, want := range []string{
		"prog.mpl:2:11: error[PSDF-E004]: process np - 1 sends to np",
		"send x -> id + 1",
		"^~~~~~",
		"= the constraint-graph client proved",
		"note: 3:11: the matching receive is here",
		"hint: guard the send",
		"prog.mpl:5:3: warning[PSDF-W006]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := diag.WriteJSON(&b, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Diagnostics []struct {
			Code     string `json:"code"`
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
			Span     *struct {
				Start struct{ Line, Col int } `json:"start"`
			} `json:"span"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(decoded.Diagnostics) != 2 {
		t.Fatalf("want 2 diagnostics, got %d", len(decoded.Diagnostics))
	}
	d := decoded.Diagnostics[0]
	if d.Code != "PSDF-E004" || d.Rule != "rank-out-of-bounds" || d.Severity != "error" {
		t.Errorf("first diagnostic wrong: %+v", d)
	}
	if d.Span == nil || d.Span.Start.Line != 2 || d.Span.Start.Col != 11 {
		t.Errorf("span wrong: %+v", d.Span)
	}
}

func TestWriteSARIF(t *testing.T) {
	var b strings.Builder
	if err := diag.WriteSARIF(&b, "test", sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region *struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				RelatedLocations []struct {
					Message *struct {
						Text string `json:"text"`
					} `json:"message"`
				} `json:"relatedLocations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(b.String()), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("log header wrong: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "psdf-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(diag.Rules()) {
		t.Errorf("rules array should list every registered rule")
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "PSDF-E004" || r.Level != "error" {
		t.Errorf("result wrong: %+v", r)
	}
	if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
		t.Errorf("ruleIndex %d does not point at %s", r.RuleIndex, r.RuleID)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "prog.mpl" || loc.Region == nil || loc.Region.StartLine != 2 {
		t.Errorf("location wrong: %+v", loc)
	}
	if len(r.RelatedLocations) != 1 || r.RelatedLocations[0].Message.Text != "the matching receive is here" {
		t.Errorf("related locations wrong: %+v", r.RelatedLocations)
	}
}
