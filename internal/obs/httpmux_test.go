package obs

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func sseTracker() *ProgressTracker {
	tracker := NewProgressTracker()
	tracker.Register(1, func() Progress {
		return Progress{Job: 1, Name: "job", Steps: 42}
	})
	return tracker
}

// TestStreamStatuszHeaders asserts the SSE hardening headers: no-store
// (never cache a stream) and X-Accel-Buffering (no proxy buffering).
func TestStreamStatuszHeaders(t *testing.T) {
	srv := httptest.NewServer(NewHTTPMux(nil, sseTracker(), nil, nil))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/statusz/stream?interval_ms=50", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", got)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", got)
	}
	if got := resp.Header.Get("X-Accel-Buffering"); got != "no" {
		t.Errorf("X-Accel-Buffering = %q, want no", got)
	}
	// First event arrives immediately.
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			if !strings.Contains(sc.Text(), `"jobs"`) {
				t.Errorf("first event %q carries no jobs field", sc.Text())
			}
			return
		}
	}
	t.Fatalf("no data event before stream end: %v", sc.Err())
}

// TestStreamStatuszHeartbeat asserts the periodic `: heartbeat` comment
// keeps flowing between data events.
func TestStreamStatuszHeartbeat(t *testing.T) {
	srv := httptest.NewServer(NewHTTPMux(nil, sseTracker(), nil, nil))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Data events far apart, heartbeats at the floor: the next line after
	// the first event should be a heartbeat comment.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/statusz/stream?interval_ms=5000&heartbeat_ms=50", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ": heartbeat") {
			return
		}
	}
	t.Fatalf("no heartbeat comment before stream end: %v", sc.Err())
}

// TestStreamStatuszClientDisconnect proves the handler goroutine exits
// when the client goes away: Server.Close blocks until every outstanding
// handler returns, so a leaked stream goroutine turns into a test
// timeout (and a leaked ticker into a race-detector report).
func TestStreamStatuszClientDisconnect(t *testing.T) {
	srv := httptest.NewServer(NewHTTPMux(nil, sseTracker(), nil, nil))

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/statusz/stream?interval_ms=50&heartbeat_ms=50", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one event so the handler is demonstrably inside its loop.
	sc := bufio.NewScanner(resp.Body)
	seen := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatalf("no data event before stream end: %v", sc.Err())
	}

	// Drop the client.
	cancel()
	resp.Body.Close()

	done := make(chan struct{})
	go func() {
		srv.Close() // waits for outstanding handlers
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server close timed out: stream handler leaked after client disconnect")
	}
}

// TestStreamStatuszBadParams covers the 400 paths for both interval knobs.
func TestStreamStatuszBadParams(t *testing.T) {
	srv := httptest.NewServer(NewHTTPMux(nil, sseTracker(), nil, nil))
	defer srv.Close()
	for _, q := range []string{"interval_ms=bogus", "interval_ms=-1", "heartbeat_ms=bogus", "heartbeat_ms=-1"} {
		resp, err := http.Get(srv.URL + "/statusz/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}
