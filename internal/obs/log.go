package obs

// Structured logging construction shared by the cmd binaries. The engines
// take a *slog.Logger through core.Options and nil-guard every call site,
// so "off" maps to a nil logger rather than a discard handler: disabled
// logging costs exactly one pointer comparison on the hot paths, the same
// contract the nil *Tracer already keeps.

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog logger writing to w. level is one of "off",
// "debug", "info", "warn", "error" (case-insensitive; "" means "off");
// format is "text" or "json" ("" means "text"). A nil return with a nil
// error means logging is disabled — callers pass the nil logger straight
// into core.Options.Log.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "off", "none":
		return nil, nil
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want off, debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
