package obs

import (
	"fmt"
	"sort"
	"time"
)

// PhaseCost is one row of a trace summary: the accumulated self time of a
// phase (span time minus time spent in spans nested inside it) next to its
// inclusive total.
type PhaseCost struct {
	Phase     Phase
	Count     int64
	Self      time.Duration // exclusive: nested spans subtracted
	Inclusive time.Duration
}

// KeyCost attributes cost to one configuration (pCFG-node shape key).
type KeyCost struct {
	Key   string
	Count int64
	Self  time.Duration
}

// Summary is the digest `psdf trace` prints: wall-clock extent, per-phase
// self/inclusive costs, and the hottest configurations by self time.
type Summary struct {
	Wall     time.Duration
	Events   int
	Phases   []PhaseCost // sorted by Self descending
	HotKeys  []KeyCost   // sorted by Self descending (all keys; callers cap)
	SelfSum  time.Duration
	Coverage float64 // SelfSum / sum of per-lane extents, in [0,1]
}

// Summarize computes self times with a per-lane span stack: events are
// walked in SortEvents order (start ascending, enclosing spans first), and
// each span's duration is charged to itself minus its children, so
// overlapping nested spans are never double-counted. Lanes at or above
// ProverTid are excluded from self-time accounting (worker-lane match spans
// already enclose prover time; see ProverTid).
func Summarize(evs []Event) Summary {
	evs = append([]Event(nil), evs...)
	SortEvents(evs)

	var (
		phSelf  [numPhases]time.Duration
		phIncl  [numPhases]time.Duration
		phCount [numPhases]int64
		keys                  = map[string]*KeyCost{}
		minS    time.Duration = -1
		maxE    time.Duration
		laneExt = map[[2]int]time.Duration{} // lane -> covered extent
	)

	type frame struct {
		end   time.Duration
		idx   int // event index
		child time.Duration
	}
	var stack []frame
	flush := func(f frame) {
		ev := &evs[f.idx]
		self := ev.Dur - f.child
		if self < 0 {
			self = 0
		}
		phSelf[ev.Phase] += self
		if ev.Key != "" {
			kc := keys[ev.Key]
			if kc == nil {
				kc = &KeyCost{Key: ev.Key}
				keys[ev.Key] = kc
			}
			kc.Count++
			kc.Self += self
		}
	}

	prevLane := [2]int{-1 << 30, 0}
	var laneStart, laneEnd time.Duration
	closeLane := func() {
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			flush(f)
			if len(stack) > 0 {
				stack[len(stack)-1].child += evs[f.idx].Dur
			}
		}
		if prevLane[0] != -1<<30 && prevLane[1] < ProverTid && laneEnd > laneStart {
			laneExt[prevLane] += laneEnd - laneStart
		}
	}

	for i := range evs {
		ev := &evs[i]
		if minS < 0 || ev.Start < minS {
			minS = ev.Start
		}
		if ev.End() > maxE {
			maxE = ev.End()
		}
		phIncl[ev.Phase] += ev.Dur
		phCount[ev.Phase]++
		lane := [2]int{ev.Pid, ev.Tid}
		if lane != prevLane {
			closeLane()
			prevLane = lane
			laneStart, laneEnd = ev.Start, ev.End()
		} else {
			if ev.End() > laneEnd {
				laneEnd = ev.End()
			}
		}
		if ev.Tid >= ProverTid {
			continue // attributed separately; inclusive totals above suffice
		}
		// Pop frames this span does not nest inside.
		for len(stack) > 0 && stack[len(stack)-1].end <= ev.Start {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			flush(f)
			if len(stack) > 0 {
				stack[len(stack)-1].child += evs[f.idx].Dur
			}
		}
		stack = append(stack, frame{end: ev.End(), idx: i})
	}
	closeLane()

	s := Summary{Events: len(evs)}
	if minS >= 0 {
		s.Wall = maxE - minS
	}
	for i := 0; i < numPhases; i++ {
		if phCount[i] == 0 {
			continue
		}
		s.Phases = append(s.Phases, PhaseCost{
			Phase: Phase(i), Count: phCount[i],
			Self: phSelf[i], Inclusive: phIncl[i],
		})
		s.SelfSum += phSelf[i]
	}
	sort.Slice(s.Phases, func(i, j int) bool {
		if s.Phases[i].Self != s.Phases[j].Self {
			return s.Phases[i].Self > s.Phases[j].Self
		}
		return s.Phases[i].Phase < s.Phases[j].Phase
	})
	for _, kc := range keys {
		s.HotKeys = append(s.HotKeys, *kc)
	}
	sort.Slice(s.HotKeys, func(i, j int) bool {
		if s.HotKeys[i].Self != s.HotKeys[j].Self {
			return s.HotKeys[i].Self > s.HotKeys[j].Self
		}
		return s.HotKeys[i].Key < s.HotKeys[j].Key
	})
	var ext time.Duration
	for _, e := range laneExt {
		ext += e
	}
	if ext > 0 {
		s.Coverage = float64(s.SelfSum) / float64(ext)
	}
	return s
}

// TotalsByPid splits a retained event stream into per-job (pid) phase
// totals — how AnalyzeAll callers that share one retaining tracer across
// jobs recover a per-job breakdown.
func TotalsByPid(evs []Event) map[int]PhaseTotals {
	out := map[int]PhaseTotals{}
	for i := range evs {
		ev := &evs[i]
		t := out[ev.Pid]
		if t == nil {
			t = PhaseTotals{}
			out[ev.Pid] = t
		}
		s := t[ev.Phase.String()]
		s.Count++
		s.Total += ev.Dur
		t[ev.Phase.String()] = s
	}
	return out
}

// Check validates a trace's internal consistency, returning a list of
// problems (empty = valid). It verifies spans are non-negative and within
// the trace extent, nesting is well-formed per lane (no partial overlap),
// and self-time coverage of the engine lanes is at least minCoverage
// (0 disables the coverage check).
func Check(evs []Event, minCoverage float64) []string {
	var probs []string
	evs = append([]Event(nil), evs...)
	SortEvents(evs)
	if len(evs) == 0 {
		return []string{"trace contains no span events"}
	}
	type open struct {
		end time.Duration
		i   int
	}
	var stack []open
	prevLane := [2]int{-1 << 30, 0}
	for i := range evs {
		ev := &evs[i]
		if ev.Dur < 0 || ev.Start < 0 {
			probs = append(probs, fmt.Sprintf("event %d (%s pid=%d tid=%d): negative start or duration", i, ev.Phase, ev.Pid, ev.Tid))
		}
		lane := [2]int{ev.Pid, ev.Tid}
		if lane != prevLane {
			stack = stack[:0]
			prevLane = lane
		}
		for len(stack) > 0 && stack[len(stack)-1].end <= ev.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 && ev.End() > stack[len(stack)-1].end {
			p := &evs[stack[len(stack)-1].i]
			probs = append(probs, fmt.Sprintf(
				"event %d (%s pid=%d tid=%d [%v,%v]) partially overlaps %s [%v,%v] on the same lane",
				i, ev.Phase, ev.Pid, ev.Tid, ev.Start, ev.End(), p.Phase, p.Start, p.End()))
		}
		stack = append(stack, open{end: ev.End(), i: i})
	}
	if minCoverage > 0 {
		s := Summarize(evs)
		if s.Coverage < minCoverage {
			probs = append(probs, fmt.Sprintf(
				"self-time coverage %.1f%% of engine-lane extent is below the %.1f%% floor",
				s.Coverage*100, minCoverage*100))
		}
	}
	return probs
}
