package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock drives a tracer deterministically: each call to now() returns
// the next scripted instant.
type fakeClock struct {
	at time.Duration
}

func (c *fakeClock) set(d time.Duration) { c.at = d }
func (c *fakeClock) now() time.Duration  { return c.at }

func newTestTracer() (*Tracer, *fakeClock) {
	t := NewTracer()
	c := &fakeClock{}
	t.clock = c.now
	return t, c
}

func TestPhaseNamesRoundTrip(t *testing.T) {
	for i := 0; i < numPhases; i++ {
		p := Phase(i)
		got, ok := PhaseFromName(p.String())
		if !ok || got != p {
			t.Errorf("PhaseFromName(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := PhaseFromName("bogus"); ok {
		t.Error("PhaseFromName accepted an unknown name")
	}
	if Phase(200).String() != "unknown" {
		t.Errorf("out-of-range phase = %q", Phase(200).String())
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.Retaining() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.Begin(1, 2, PhaseMatch, "k")
	if d := sp.End(); d != 0 {
		t.Errorf("nil span End = %v", d)
	}
	if tr.Totals() != nil || tr.Events() != nil || tr.EventCount() != 0 {
		t.Error("nil tracer returned data")
	}
}

func TestTracerTotalsAndEvents(t *testing.T) {
	tr, clk := newTestTracer()
	clk.set(10 * time.Millisecond)
	sp := tr.Begin(1, 0, PhaseStep, "cfg-a")
	clk.set(25 * time.Millisecond)
	inner := tr.Begin(1, 0, PhaseMatch, "cfg-a")
	clk.set(30 * time.Millisecond)
	inner.EndDetail("pairs=3")
	sp.End()

	tot := tr.Totals()
	if got := tot["step"]; got.Count != 1 || got.Total != 20*time.Millisecond {
		t.Errorf("step total = %+v", got)
	}
	if got := tot["match"]; got.Count != 1 || got.Total != 5*time.Millisecond {
		t.Errorf("match total = %+v", got)
	}
	if _, ok := tot["widen"]; ok {
		t.Error("unbegun phase present in totals")
	}

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	// Enclosing span sorts first (same start? no — step starts earlier).
	if evs[0].Phase != PhaseStep || evs[1].Phase != PhaseMatch {
		t.Errorf("event order: %v, %v", evs[0].Phase, evs[1].Phase)
	}
	if evs[1].Detail != "pairs=3" || evs[1].Key != "cfg-a" {
		t.Errorf("inner event = %+v", evs[1])
	}
	if tr.EventCount() != 2 {
		t.Errorf("EventCount = %d", tr.EventCount())
	}
}

func TestAggregateTracerRetainsNothing(t *testing.T) {
	tr := NewAggregate()
	tr.clock = (&fakeClock{}).now
	tr.Begin(0, 0, PhaseJoin, "").End()
	if tr.EventCount() != 0 {
		t.Errorf("aggregate tracer retained %d events", tr.EventCount())
	}
	if got := tr.Totals()["join"]; got.Count != 1 {
		t.Errorf("aggregate totals = %+v", tr.Totals())
	}
	if tr.Retaining() {
		t.Error("aggregate tracer claims to retain")
	}
}

func TestNegativeClockClampedToZero(t *testing.T) {
	tr, clk := newTestTracer()
	clk.set(5 * time.Millisecond)
	sp := tr.Begin(0, 0, PhaseStep, "")
	clk.set(0) // clock went backwards
	if d := sp.End(); d != 0 {
		t.Errorf("dur = %v, want 0", d)
	}
}

func mkEvent(ph Phase, pid, tid int, start, dur time.Duration, key string) Event {
	return Event{Phase: ph, Pid: pid, Tid: tid, Start: start, Dur: dur, Key: key}
}

func TestSummarizeSelfTime(t *testing.T) {
	ms := time.Millisecond
	evs := []Event{
		// Lane (1,0): analyze [0,100] > step [10,40] > match [20,30];
		// second step [50,90] > transfer [55,65].
		mkEvent(PhaseAnalyze, 1, 0, 0, 100*ms, "job"),
		mkEvent(PhaseStep, 1, 0, 10*ms, 30*ms, "a"),
		mkEvent(PhaseMatch, 1, 0, 20*ms, 10*ms, "a"),
		mkEvent(PhaseStep, 1, 0, 50*ms, 40*ms, "b"),
		mkEvent(PhaseTransfer, 1, 0, 55*ms, 10*ms, "b"),
		// Prover lane: excluded from self-time and coverage accounting.
		mkEvent(PhaseProver, 1, ProverTid, 21*ms, 5*ms, "a"),
	}
	s := Summarize(evs)
	if s.Wall != 100*ms {
		t.Errorf("wall = %v", s.Wall)
	}
	want := map[Phase]time.Duration{
		PhaseAnalyze:  30 * ms, // 100 - 30 - 40
		PhaseStep:     50 * ms, // (30-10) + (40-10)
		PhaseMatch:    10 * ms,
		PhaseTransfer: 10 * ms,
	}
	for _, pc := range s.Phases {
		if pc.Phase == PhaseProver {
			if pc.Self != 0 || pc.Inclusive != 5*ms {
				t.Errorf("prover cost = %+v", pc)
			}
			continue
		}
		if pc.Self != want[pc.Phase] {
			t.Errorf("%v self = %v, want %v", pc.Phase, pc.Self, want[pc.Phase])
		}
	}
	if s.SelfSum != 100*ms {
		t.Errorf("self sum = %v, want 100ms", s.SelfSum)
	}
	if s.Coverage < 0.999 || s.Coverage > 1.001 {
		t.Errorf("coverage = %v, want ~1", s.Coverage)
	}
	// Hottest key: "b" has 30ms step-self + 10ms transfer = 40ms;
	// "a" has 20 + 10 = 30ms; "job" 30ms (ties broken by key).
	if s.HotKeys[0].Key != "b" || s.HotKeys[0].Self != 40*ms {
		t.Errorf("hot key = %+v", s.HotKeys[0])
	}
}

func TestSummarizeMultiLaneCoverage(t *testing.T) {
	ms := time.Millisecond
	evs := []Event{
		// Two worker lanes, each half covered.
		mkEvent(PhaseStep, 1, 0, 0, 50*ms, "a"),
		mkEvent(PhaseStep, 1, 1, 0, 50*ms, "b"),
		mkEvent(PhaseDequeue, 1, 1, 60*ms, 40*ms, ""),
	}
	s := Summarize(evs)
	// Lane (1,0) extent 50ms fully covered; lane (1,1) extent 100ms with
	// 90ms covered. Coverage = 140/150.
	if got := s.Coverage; got < 0.93 || got > 0.94 {
		t.Errorf("coverage = %v, want ~0.933", got)
	}
}

func TestTotalsByPid(t *testing.T) {
	ms := time.Millisecond
	evs := []Event{
		mkEvent(PhaseStep, 1, 0, 0, 10*ms, "a"),
		mkEvent(PhaseStep, 1, 0, 20*ms, 5*ms, "b"),
		mkEvent(PhaseMatch, 2, 1, 0, 7*ms, "c"),
	}
	byPid := TotalsByPid(evs)
	if len(byPid) != 2 {
		t.Fatalf("pids = %d, want 2", len(byPid))
	}
	if s := byPid[1][PhaseStep.String()]; s.Count != 2 || s.Total != 15*ms {
		t.Errorf("pid 1 step = %+v", s)
	}
	if s := byPid[2][PhaseMatch.String()]; s.Count != 1 || s.Total != 7*ms {
		t.Errorf("pid 2 match = %+v", s)
	}
	if _, ok := byPid[1][PhaseMatch.String()]; ok {
		t.Error("pid 1 has a match entry from pid 2")
	}
}

func TestCheckDetectsProblems(t *testing.T) {
	ms := time.Millisecond
	if probs := Check(nil, 0); len(probs) != 1 || !strings.Contains(probs[0], "no span events") {
		t.Errorf("empty trace check = %v", probs)
	}
	good := []Event{
		mkEvent(PhaseAnalyze, 1, 0, 0, 100*ms, "job"),
		mkEvent(PhaseStep, 1, 0, 10*ms, 20*ms, "a"),
	}
	if probs := Check(good, 0.5); len(probs) != 0 {
		t.Errorf("valid trace flagged: %v", probs)
	}
	// Partial overlap on one lane is malformed nesting.
	bad := []Event{
		mkEvent(PhaseStep, 1, 0, 0, 20*ms, "a"),
		mkEvent(PhaseMatch, 1, 0, 10*ms, 20*ms, "a"),
	}
	if probs := Check(bad, 0); len(probs) == 0 {
		t.Error("partial overlap not detected")
	}
	// Same intervals on different lanes are fine.
	twoLanes := []Event{
		mkEvent(PhaseStep, 1, 0, 0, 20*ms, "a"),
		mkEvent(PhaseMatch, 1, 1, 10*ms, 20*ms, "a"),
	}
	if probs := Check(twoLanes, 0); len(probs) != 0 {
		t.Errorf("cross-lane overlap flagged: %v", probs)
	}
	// Coverage floor: a lane with a big uncovered gap.
	sparse := []Event{
		mkEvent(PhaseStep, 1, 0, 0, 10*ms, "a"),
		mkEvent(PhaseStep, 1, 0, 90*ms, 10*ms, "b"),
	}
	probs := Check(sparse, 0.95)
	if len(probs) != 1 || !strings.Contains(probs[0], "coverage") {
		t.Errorf("sparse trace check = %v", probs)
	}
}
