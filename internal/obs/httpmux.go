package obs

// The live-introspection HTTP surface: one explicit mux carrying the
// Prometheus renderer, the /statusz progress snapshot (plus its SSE
// stream), the flight recorder and the pprof handlers. Explicit so that
// binaries do not leak handlers onto http.DefaultServeMux, and so that the
// psdf serve daemon can mount the same surface later.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// NewHTTPMux assembles the introspection mux:
//
//	/metrics         Prometheus text format (reg)
//	/statusz         progress snapshot JSON (tracker)
//	/statusz/stream  the same snapshot as a Server-Sent-Events stream
//	                 (?interval_ms=N, default 500, floor 50)
//	/flightz         flight-recorder contents as JSON lines (rec)
//	/debug/pprof/*   the standard pprof handlers
//	/quitquitquit    POST: invoke quit (for -http-linger shutdown)
//
// Any nil component's endpoints respond 404.
func NewHTTPMux(reg *Registry, tracker *ProgressTracker, rec *FlightRecorder, quit func()) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = reg.WritePrometheus(w)
		})
	}
	if tracker != nil {
		mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = tracker.WriteStatusz(w)
		})
		mux.HandleFunc("/statusz/stream", func(w http.ResponseWriter, r *http.Request) {
			streamStatusz(w, r, tracker)
		})
	}
	if rec != nil {
		mux.HandleFunc("/flightz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/jsonl")
			_ = rec.Dump(w)
		})
	}
	if quit != nil {
		mux.HandleFunc("/quitquitquit", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			fmt.Fprintln(w, "bye")
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			quit()
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// streamStatusz serves the progress snapshot as an SSE stream: one
// `data: {...}` event immediately, then one per interval until the client
// disconnects. Between events a `: heartbeat` comment keeps intermediaries
// from timing the connection out (?heartbeat_ms=N overrides the 10s
// default, floor 50 — mostly for tests). The handler returns as soon as
// the request context is canceled, so a dropped client never leaks the
// goroutine.
func streamStatusz(w http.ResponseWriter, r *http.Request, tracker *ProgressTracker) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	queryInterval := func(name string, def time.Duration) (time.Duration, bool) {
		v := r.URL.Query().Get(name)
		if v == "" {
			return def, true
		}
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			return 0, false
		}
		if ms < 50 {
			ms = 50
		}
		return time.Duration(ms) * time.Millisecond, true
	}
	interval, ok := queryInterval("interval_ms", 500*time.Millisecond)
	if !ok {
		http.Error(w, "bad interval_ms", http.StatusBadRequest)
		return
	}
	heartbeat, ok := queryInterval("heartbeat_ms", 10*time.Second)
	if !ok {
		http.Error(w, "bad heartbeat_ms", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	// no-store (not just no-cache): an SSE stream must never be served
	// from or written into a cache. X-Accel-Buffering disables response
	// buffering in nginx-style reverse proxies, which would otherwise sit
	// on events past any flush.
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.Header().Set("Connection", "keep-alive")
	send := func() bool {
		s := Statusz{NowUnixNs: time.Now().UnixNano(), Jobs: tracker.Snapshot()}
		if s.Jobs == nil {
			s.Jobs = []Progress{}
		}
		data, err := json.Marshal(s)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !send() {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	hb := time.NewTicker(heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
			if !send() {
				return
			}
		case <-hb.C:
			// SSE comment line: ignored by clients, keeps the pipe warm.
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
