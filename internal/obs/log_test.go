package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerOff(t *testing.T) {
	for _, level := range []string{"", "off", "none", "OFF"} {
		lg, err := NewLogger(&bytes.Buffer{}, level, "text")
		if err != nil {
			t.Fatalf("level %q: %v", level, err)
		}
		if lg != nil {
			t.Fatalf("level %q: want nil logger", level)
		}
	}
}

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("quiet", "k", 1)
	if buf.Len() != 0 {
		t.Fatalf("info leaked through warn level: %s", buf.String())
	}
	lg.Warn("loud", "job", 3)
	if !strings.Contains(buf.String(), "loud") || !strings.Contains(buf.String(), "job=3") {
		t.Fatalf("warn output wrong: %s", buf.String())
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "worker", 2)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler output not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["worker"] != float64(2) {
		t.Fatalf("json record wrong: %v", rec)
	}
}

func TestNewLoggerErrors(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "loudest", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "info", "yaml"); err == nil {
		t.Fatal("bad format accepted")
	}
}
