package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func goldenEvents() []Event {
	ms := time.Millisecond
	return []Event{
		mkEvent(PhaseAnalyze, 1, 0, 0, 10*ms, "shift1d"),
		{Phase: PhaseStep, Pid: 1, Tid: 0, Start: 1 * ms, Dur: 3 * ms, Key: "cfg|a"},
		{Phase: PhaseMatch, Pid: 1, Tid: 0, Start: 2 * ms, Dur: 1 * ms, Key: "cfg|a", Detail: "pairs=2"},
		mkEvent(PhaseProver, 1, ProverTid, 2*ms, 500*time.Microsecond, "cfg|a"),
	}
}

const chromeGolden = `[
{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"shift1d"}}
,{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"worker 0"}}
,{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1000,"args":{"name":"prover"}}
,{"name":"analyze","cat":"psdf","ph":"X","ts":0,"dur":10000,"pid":1,"tid":0,"args":{"key":"shift1d"}}
,{"name":"step","cat":"psdf","ph":"X","ts":1000,"dur":3000,"pid":1,"tid":0,"args":{"key":"cfg|a"}}
,{"name":"match","cat":"psdf","ph":"X","ts":2000,"dur":1000,"pid":1,"tid":0,"args":{"detail":"pairs=2","key":"cfg|a"}}
,{"name":"prover","cat":"psdf","ph":"X","ts":2000,"dur":500,"pid":1,"tid":1000,"args":{"key":"cfg|a"}}
]
`

const jsonlGolden = `{"phase":"analyze","pid":1,"tid":0,"start_ns":0,"dur_ns":10000000,"key":"shift1d"}
{"phase":"step","pid":1,"tid":0,"start_ns":1000000,"dur_ns":3000000,"key":"cfg|a"}
{"phase":"match","pid":1,"tid":0,"start_ns":2000000,"dur_ns":1000000,"key":"cfg|a","detail":"pairs=2"}
{"phase":"prover","pid":1,"tid":1000,"start_ns":2000000,"dur_ns":500000,"key":"cfg|a"}
`

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents(), map[int]string{1: "shift1d"}); err != nil {
		t.Fatal(err)
	}
	got := normalizeChromeLines(buf.String())
	want := normalizeChromeLines(chromeGolden)
	if got != want {
		t.Errorf("chrome trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// Round-trip: parsing recovers the span events (µs precision).
	evs, err := ReadChromeTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("round-trip events = %d, want 4", len(evs))
	}
	if evs[2].Detail != "pairs=2" || evs[2].Phase != PhaseMatch {
		t.Errorf("round-trip event = %+v", evs[2])
	}
	if evs[3].Tid != ProverTid || evs[3].Dur != 500*time.Microsecond {
		t.Errorf("round-trip prover event = %+v", evs[3])
	}
}

// normalizeChromeLines strips the leading comma continuation style so the
// comparison is insensitive to where the separator sits.
func normalizeChromeLines(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimSuffix(strings.TrimPrefix(l, ","), ",")
	}
	return strings.Join(lines, "\n")
}

func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != jsonlGolden {
		t.Errorf("jsonl mismatch:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), jsonlGolden)
	}
	evs, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("round-trip events = %d", len(evs))
	}
	// JSONL keeps nanosecond precision exactly.
	want := goldenEvents()
	SortEvents(want)
	for i := range evs {
		if evs[i] != want[i] {
			t.Errorf("event %d: got %+v want %+v", i, evs[i], want[i])
		}
	}
}

func TestReadJSONLRejectsUnknownPhase(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader(`{"phase":"warp","pid":0,"tid":0,"start_ns":0,"dur_ns":1}`))
	if err == nil || !strings.Contains(err.Error(), "unknown phase") {
		t.Errorf("err = %v", err)
	}
}

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("psdf_engine_steps_total", "total engine propagate steps")
	c.Add(12)
	r.NewCounterVec("psdf_match_memo_total", "match memo lookups", Labels("result", "hit")).Add(9)
	r.NewCounterVec("psdf_match_memo_total", "match memo lookups", Labels("result", "miss")).Add(3)
	g := r.NewGauge("psdf_sched_queue_depth_max", "scheduler queue high-water mark")
	g.Set(17)
	h := r.NewHistogram("psdf_prover_states", "states explored per prover search", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)

	const want = `# HELP psdf_engine_steps_total total engine propagate steps
# TYPE psdf_engine_steps_total counter
psdf_engine_steps_total 12
# HELP psdf_match_memo_total match memo lookups
# TYPE psdf_match_memo_total counter
psdf_match_memo_total{result="hit"} 9
psdf_match_memo_total{result="miss"} 3
# HELP psdf_prover_states states explored per prover search
# TYPE psdf_prover_states histogram
psdf_prover_states_bucket{le="10"} 1
psdf_prover_states_bucket{le="100"} 2
psdf_prover_states_bucket{le="+Inf"} 2
psdf_prover_states_sum 55
psdf_prover_states_count 2
# HELP psdf_sched_queue_depth_max scheduler queue high-water mark
# TYPE psdf_sched_queue_depth_max gauge
psdf_sched_queue_depth_max 17
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("prometheus mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
	// Rendering is deterministic.
	var sb2 strings.Builder
	_ = r.WritePrometheus(&sb2)
	if sb.String() != sb2.String() {
		t.Error("render not deterministic")
	}
}
