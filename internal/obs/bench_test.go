package obs

import (
	"testing"
)

// BenchmarkTracerDisabled measures the cost of instrumentation when
// tracing is off (nil tracer): the acceptance contract is 0 allocs/op and
// a handful of nanoseconds, so the engine can keep its spans unconditional.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(1, 0, PhaseStep, "key")
		sp.End()
	}
}

// BenchmarkTracerAggregate is the always-on per-job mode: totals only.
func BenchmarkTracerAggregate(b *testing.B) {
	tr := NewAggregate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(1, 0, PhaseStep, "key")
		sp.End()
	}
}

// BenchmarkTracerRetained is full tracing (event retention) — the
// expensive mode users opt into with -trace.
func BenchmarkTracerRetained(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(1, 0, PhaseStep, "key")
		sp.End()
	}
}

// TestDisabledZeroAlloc enforces the zero-allocation contract in the
// ordinary test run (benchmarks don't gate CI).
func TestDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(1, 0, PhaseMatch, "key")
		sp.End()
		_ = tr.Totals()
		_ = tr.Enabled()
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates %v per op, want 0", allocs)
	}
}
