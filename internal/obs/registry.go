package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a unified metrics registry: counters, gauges, histograms and
// function-backed variants, rendered in the Prometheus text exposition
// format. All methods are safe for concurrent use, and every method on the
// nil *Registry is a no-op so call sites never need to guard.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every series sharing a metric name (one HELP/TYPE header).
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // keyed by rendered label string
}

type series struct {
	labels string // pre-rendered `{k="v",...}` or ""
	// Exactly one of the following is active, per the family kind.
	val  atomic.Uint64 // counter: integer count; gauge: math.Float64bits
	fn   func() float64
	hist *Histogram
}

// Labels renders a label set deterministically (sorted by key). Use the
// result with the *Vec registration methods.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs.Labels: odd number of arguments")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], escapeLabel(kv[i+1])))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

func escapeLabel(v string) string {
	// %q handles \ and "; Prometheus additionally wants \n escaped, which
	// %q also does. Strip the quotes %q adds since Labels adds its own.
	q := fmt.Sprintf("%q", v)
	return q[1 : len(q)-1]
}

func (r *Registry) fam(name, help string, kind metricKind) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (f *family) get(labels string) *series {
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels}
		f.series[labels] = s
	}
	return s
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ s *series }

// Add increments the counter; negative deltas are ignored. Nil-safe.
func (c Counter) Add(delta int64) {
	if c.s == nil || delta < 0 {
		return
	}
	c.s.val.Add(uint64(delta))
}

// Inc adds one. Nil-safe.
func (c Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c Counter) Value() int64 {
	if c.s == nil {
		return 0
	}
	return int64(c.s.val.Load())
}

// Gauge is a settable float metric.
type Gauge struct{ s *series }

// Set stores the gauge value. Nil-safe.
func (g Gauge) Set(v float64) {
	if g.s == nil {
		return
	}
	g.s.val.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v is larger (high-water mark). Nil-safe.
func (g Gauge) SetMax(v float64) {
	if g.s == nil {
		return
	}
	for {
		old := g.s.val.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.s.val.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reports the current gauge value.
func (g Gauge) Value() float64 {
	if g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.val.Load())
}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // Float64bits accumulated via CAS
	count  atomic.Int64
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// NewCounter registers (or fetches) an unlabelled counter. Nil-safe: the
// returned Counter is inert when r is nil.
func (r *Registry) NewCounter(name, help string) Counter {
	return r.NewCounterVec(name, help, "")
}

// NewCounterVec registers (or fetches) a counter series with the given
// rendered labels (see Labels).
func (r *Registry) NewCounterVec(name, help, labels string) Counter {
	if r == nil {
		return Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Counter{s: r.fam(name, help, kindCounter).get(labels)}
}

// NewGauge registers (or fetches) an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) Gauge {
	return r.NewGaugeVec(name, help, "")
}

// NewGaugeVec registers (or fetches) a gauge series with labels.
func (r *Registry) NewGaugeVec(name, help, labels string) Gauge {
	if r == nil {
		return Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Gauge{s: r.fam(name, help, kindGauge).get(labels)}
}

// CounterFunc registers a counter whose value is fetched at render time.
// The function must be safe to call concurrently with the instrumented
// code (e.g. it reads atomics).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.counterOrGaugeFunc(name, help, "", kindCounter, fn)
}

// CounterFuncVec registers a labelled counter evaluated at render time. The
// function must be monotonically non-decreasing for the rendered series to
// be a valid Prometheus counter.
func (r *Registry) CounterFuncVec(name, help, labels string, fn func() float64) {
	r.counterOrGaugeFunc(name, help, labels, kindCounter, fn)
}

// GaugeFunc registers a gauge evaluated at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.counterOrGaugeFunc(name, help, "", kindGauge, fn)
}

// GaugeFuncVec registers a labelled gauge evaluated at render time.
func (r *Registry) GaugeFuncVec(name, help, labels string, fn func() float64) {
	r.counterOrGaugeFunc(name, help, labels, kindGauge, fn)
}

func (r *Registry) counterOrGaugeFunc(name, help, labels string, kind metricKind, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fam(name, help, kind).get(labels).fn = fn
}

// NewHistogram registers (or fetches) a histogram with the given ascending
// upper bucket bounds (a final +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.fam(name, help, kindHistogram).get("")
	if s.hist == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		s.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}
	return s.hist
}

// famSnap is a point-in-time copy of one family taken under the registry
// lock: the header fields plus the sorted series (pointer and fn). The
// registration methods mutate family.series and series.fn under r.mu, so a
// render must not touch either outside the lock; series *values* stay live
// (atomics) and are read at format time.
type famSnap struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	fns    []func() float64
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, deterministically: families sorted by name, series by label
// string. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]famSnap, len(names))
	for i, n := range names {
		f := r.fams[n]
		snap := famSnap{name: f.name, help: f.help, kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			snap.series = append(snap.series, s)
			snap.fns = append(snap.fns, s.fn)
		}
		fams[i] = snap
	}
	r.mu.Unlock()

	// Format outside the lock: fns may be arbitrarily slow (or re-enter the
	// registry), and atomics make the value reads safe.
	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for i, s := range f.series {
			switch {
			case f.kind == kindHistogram && s.hist != nil:
				writeHistogram(&b, f.name, s)
			case f.fns[i] != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(f.fns[i]()))
			case f.kind == kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, int64(s.val.Load()))
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(math.Float64frombits(s.val.Load())))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	var cum int64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatFloat(ub), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
