package obs

import (
	"sync/atomic"
	"testing"
	"time"
)

// wdClock is a manually-advanced time source for deterministic watchdog
// tests.
type wdClock struct{ now time.Time }

func (c *wdClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func TestWatchdogFiresOnceOnStall(t *testing.T) {
	clock := &wdClock{now: time.Unix(1000, 0)}
	var progress atomic.Int64
	var fired []StallReport
	w := NewWatchdog(100*time.Millisecond, progress.Load, func(r StallReport) {
		fired = append(fired, r)
	})
	w.SetClock(func() time.Time { return clock.now })

	if w.Check() {
		t.Fatal("arming check fired")
	}
	// Progress moving: deadline keeps re-arming.
	for i := 0; i < 5; i++ {
		progress.Add(1)
		clock.advance(90 * time.Millisecond)
		if w.Check() {
			t.Fatalf("fired while progress was moving (iteration %d)", i)
		}
	}
	// Progress stops: below the timeout, still quiet.
	clock.advance(99 * time.Millisecond)
	if w.Check() {
		t.Fatal("fired before the timeout elapsed")
	}
	// Past the timeout: fires exactly once.
	clock.advance(2 * time.Millisecond)
	if !w.Check() {
		t.Fatal("did not fire after the no-progress deadline")
	}
	if !w.Fired() {
		t.Fatal("Fired() false after firing")
	}
	select {
	case <-w.FiredChan():
	default:
		t.Fatal("FiredChan not closed after firing")
	}
	clock.advance(time.Hour)
	if w.Check() {
		t.Fatal("fired twice")
	}
	if len(fired) != 1 {
		t.Fatalf("onStall ran %d times, want 1", len(fired))
	}
	rep := fired[0]
	if rep.Progress != 5 {
		t.Fatalf("report progress %d, want 5", rep.Progress)
	}
	if rep.Stalled < 100*time.Millisecond {
		t.Fatalf("report stalled %v, want >= timeout", rep.Stalled)
	}
}

func TestWatchdogNeverFiresWhileProgressing(t *testing.T) {
	clock := &wdClock{now: time.Unix(0, 0)}
	var progress atomic.Int64
	w := NewWatchdog(50*time.Millisecond, progress.Load, func(StallReport) {
		t.Error("watchdog fired on a progressing counter")
	})
	w.SetClock(func() time.Time { return clock.now })
	for i := 0; i < 1000; i++ {
		progress.Add(1)
		clock.advance(time.Hour) // any gap is fine as long as progress moved
		w.Check()
	}
	if w.Fired() {
		t.Fatal("fired")
	}
}

func TestWatchdogStartStop(t *testing.T) {
	var progress atomic.Int64
	firedc := make(chan struct{})
	w := NewWatchdog(5*time.Millisecond, progress.Load, func(StallReport) { close(firedc) })
	w.Start(time.Millisecond)
	select {
	case <-firedc:
	case <-time.After(5 * time.Second):
		t.Fatal("polling watchdog did not fire on a frozen counter")
	}
	w.Stop() // must not hang or double-fire
	w.Stop() // idempotent
}

func TestWatchdogNilInert(t *testing.T) {
	var w *Watchdog
	if w.Check() || w.Fired() {
		t.Fatal("nil watchdog not inert")
	}
	w.Start(time.Millisecond)
	w.Stop()
}
