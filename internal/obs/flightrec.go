package obs

// The flight recorder is the engine's crash/stall black box: a bounded
// ring buffer of recent scheduler, step and commit events, recorded
// continuously at low cost and dumped only when something goes wrong (the
// stall watchdog fires, or the step budget aborts a run). Unlike the span
// tracer — which retains everything and is sized for offline analysis —
// the recorder keeps a fixed window of the most recent events, so it can
// stay armed for the whole lifetime of a long-running service.

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FlightEvent is one recorded engine event. Seq is a global, gapless
// sequence number (wraparound drops the oldest events but never reorders
// or renumbers survivors); AtNs is nanoseconds since the recorder was
// created.
type FlightEvent struct {
	Seq    uint64 `json:"seq"`
	AtNs   int64  `json:"at_ns"`
	Kind   string `json:"kind"` // dequeue, step, commit, widen, giveup, stall, dump, ...
	Job    int    `json:"job"`
	Worker int    `json:"worker"`
	Key    string `json:"key,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is a fixed-capacity ring buffer of FlightEvents, safe for
// concurrent use. The nil recorder is valid and free: Record on nil is a
// no-op, so engine call sites need no enable flag.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightEvent // ring storage, len == cap once full
	next  uint64        // next sequence number == total events recorded
	epoch time.Time
	clock func() time.Duration // injectable for deterministic tests
}

// NewFlightRecorder returns a recorder keeping the most recent `capacity`
// events (<= 0 selects 4096; the floor is 16).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	if capacity < 16 {
		capacity = 16
	}
	r := &FlightRecorder{buf: make([]FlightEvent, 0, capacity), epoch: time.Now()}
	r.clock = func() time.Duration { return time.Since(r.epoch) }
	return r
}

// SetClock replaces the recorder's time source (nanosecond offsets from an
// arbitrary origin). Test hook; call before recording.
func (r *FlightRecorder) SetClock(clock func() time.Duration) { r.clock = clock }

// Record appends one event, evicting the oldest when the ring is full.
// No-op on a nil recorder.
func (r *FlightRecorder) Record(kind string, job, worker int, key, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev := FlightEvent{Seq: r.next, AtNs: int64(r.clock()), Kind: kind,
		Job: job, Worker: worker, Key: key, Detail: detail}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next%uint64(cap(r.buf))] = ev
	}
	r.next++
	r.mu.Unlock()
}

// Total reports how many events were ever recorded (including evicted
// ones).
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Cap reports the ring capacity.
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Snapshot returns the retained events oldest-first. The result is a copy:
// concurrent recording cannot mutate it.
func (r *FlightRecorder) Snapshot() []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightEvent, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		out = append(out, r.buf...)
		return out
	}
	// Full ring: the oldest event sits at the next write position.
	head := int(r.next % uint64(cap(r.buf)))
	out = append(out, r.buf[head:]...)
	out = append(out, r.buf[:head]...)
	return out
}

// Dump writes the retained events as JSON lines, oldest first, in a single
// w.Write call (so dumps from concurrent analyses sharing one file do not
// interleave mid-line). Dumping does not drain the ring.
func (r *FlightRecorder) Dump(w io.Writer) error {
	if r == nil {
		return nil
	}
	evs := r.Snapshot()
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return err
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}
