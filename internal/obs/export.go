package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SortEvents orders events by (Pid, Tid, Start), longer spans first on
// equal starts so enclosing spans precede the spans they contain. This is
// the canonical order for export and summarization.
func SortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		return a.Phase < b.Phase
	})
}

// chromeEvent is one entry in the Chrome trace-event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// complete events ("ph":"X") carry microsecond ts/dur; metadata events
// ("ph":"M") name the lanes. Perfetto loads this format directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders events as a Chrome trace-event JSON array.
// laneNames optionally maps a pid to a process name (e.g. the analysis job
// name) emitted as process_name metadata; thread lanes are named after
// their role (worker N / prover).
func WriteChromeTrace(w io.Writer, evs []Event, laneNames map[int]string) error {
	evs = append([]Event(nil), evs...)
	SortEvents(evs)

	type lane struct{ pid, tid int }
	seenPid := map[int]bool{}
	seenLane := map[lane]bool{}
	var out []chromeEvent
	for i := range evs {
		ev := &evs[i]
		seenPid[ev.Pid] = true
		seenLane[lane{ev.Pid, ev.Tid}] = true
		args := map[string]any{}
		if ev.Key != "" {
			args["key"] = ev.Key
		}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		if len(args) == 0 {
			args = nil
		}
		out = append(out, chromeEvent{
			Name: ev.Phase.String(),
			Cat:  "psdf",
			Ph:   "X",
			Ts:   float64(ev.Start) / float64(time.Microsecond),
			Dur:  float64(ev.Dur) / float64(time.Microsecond),
			Pid:  ev.Pid,
			Tid:  ev.Tid,
			Args: args,
		})
	}

	// Metadata events: deterministic order (sorted pids, then lanes).
	var meta []chromeEvent
	pids := make([]int, 0, len(seenPid))
	for p := range seenPid {
		pids = append(pids, p)
	}
	sort.Ints(pids)
	for _, p := range pids {
		name := laneNames[p]
		if name == "" {
			name = fmt.Sprintf("job %d", p)
		}
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: p,
			Args: map[string]any{"name": name},
		})
	}
	lanes := make([]lane, 0, len(seenLane))
	for l := range seenLane {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].pid != lanes[j].pid {
			return lanes[i].pid < lanes[j].pid
		}
		return lanes[i].tid < lanes[j].tid
	})
	for _, l := range lanes {
		name := fmt.Sprintf("worker %d", l.tid)
		if l.tid >= ProverTid {
			name = "prover"
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: l.pid, Tid: l.tid,
			Args: map[string]any{"name": name},
		})
	}

	// Hand-rolled array: one compact line per event keeps diffs and goldens
	// stable across encoder versions.
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	all := append(meta, out...)
	for i, ce := range all {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if i < len(all)-1 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// jsonlEvent is the line schema for WriteJSONL/ReadJSONL.
type jsonlEvent struct {
	Phase   string `json:"phase"`
	Pid     int    `json:"pid"`
	Tid     int    `json:"tid"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Key     string `json:"key,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// WriteJSONL renders events one JSON object per line (machine-friendly
// alternative to the Chrome format; nanosecond precision).
func WriteJSONL(w io.Writer, evs []Event) error {
	evs = append([]Event(nil), evs...)
	SortEvents(evs)
	bw := bufio.NewWriter(w)
	for i := range evs {
		ev := &evs[i]
		b, err := json.Marshal(jsonlEvent{
			Phase: ev.Phase.String(), Pid: ev.Pid, Tid: ev.Tid,
			StartNs: int64(ev.Start), DurNs: int64(ev.Dur),
			Key: ev.Key, Detail: ev.Detail,
		})
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace back into events. Lines with unknown
// phases are rejected so schema drift surfaces loudly.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", line, err)
		}
		ph, ok := PhaseFromName(je.Phase)
		if !ok {
			return nil, fmt.Errorf("jsonl line %d: unknown phase %q", line, je.Phase)
		}
		out = append(out, Event{
			Phase: ph, Pid: je.Pid, Tid: je.Tid,
			Start: time.Duration(je.StartNs), Dur: time.Duration(je.DurNs),
			Key: je.Key, Detail: je.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	SortEvents(out)
	return out, nil
}

// ReadChromeTrace parses a Chrome trace-event JSON array (as written by
// WriteChromeTrace) back into events; metadata events are skipped and
// unknown span names rejected.
func ReadChromeTrace(r io.Reader) ([]Event, error) {
	var raw []chromeEvent
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("chrome trace: %w", err)
	}
	var out []Event
	for i := range raw {
		ce := &raw[i]
		if ce.Ph != "X" {
			continue
		}
		ph, ok := PhaseFromName(ce.Name)
		if !ok {
			return nil, fmt.Errorf("chrome trace event %d: unknown phase %q", i, ce.Name)
		}
		ev := Event{
			Phase: ph, Pid: ce.Pid, Tid: ce.Tid,
			Start: time.Duration(ce.Ts * float64(time.Microsecond)),
			Dur:   time.Duration(ce.Dur * float64(time.Microsecond)),
		}
		if s, ok := ce.Args["key"].(string); ok {
			ev.Key = s
		}
		if s, ok := ce.Args["detail"].(string); ok {
			ev.Detail = s
		}
		out = append(out, ev)
	}
	SortEvents(out)
	return out, nil
}
