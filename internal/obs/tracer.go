// Package obs is the engine observability layer: a span tracer for the
// parallel fixpoint engine's phases, a unified metrics registry with a
// Prometheus text renderer, exporters for JSONL and the Chrome trace-event
// format (loadable in Perfetto), and a trace summarizer that turns a
// recorded run into per-phase and per-configuration cost tables.
//
// The tracer is nil-safe and compiles to near-zero cost when disabled: a
// nil *Tracer's Begin returns the zero Span, End on the zero Span is a
// no-op, and neither allocates (BenchmarkTracerDisabled asserts 0
// allocs/op). Tracing only observes — it never influences engine
// decisions — so analyses produce byte-identical results with tracing on
// and off.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one instrumented engine phase. The taxonomy follows the
// paper's Fig 4 framework loop: configurations are dequeued, stepped
// (transfer, send-receive matching, emptiness splits), and their successors
// merged back into the table (join/widen); deferred give-ups commit at
// convergence, and the HSM prover's heuristic search is attributed
// separately because it serializes across workers.
type Phase uint8

// Instrumented phases.
const (
	// PhaseDequeue is time a parallel worker spends popping the scheduler,
	// including blocking waits for work (idle time).
	PhaseDequeue Phase = iota
	// PhaseStep covers one whole propagate step of a configuration
	// (snapshot + transfer/match/split); the sub-phases nest inside it.
	PhaseStep
	// PhaseTransfer is the client transfer function: advancing an unblocked
	// process set through a sequential node (including normalization).
	PhaseTransfer
	// PhaseMatch is send-receive matching: pending-send matches, pairwise
	// matches and whole-set self-matches (matchSendsRecvs).
	PhaseMatch
	// PhaseSplit is the emptiness case-split on possibly-empty blocked sets
	// (splitPSet).
	PhaseSplit
	// PhaseInsert is merging a step's successor configurations into the
	// table: canonicalization, key interning and entry revision. Join and
	// widen spans nest inside it.
	PhaseInsert
	// PhaseJoin is combining an incoming state with a table entry on the
	// join side of the join→widen ladder.
	PhaseJoin
	// PhaseWiden is the same combine after the ladder switched to widening.
	PhaseWiden
	// PhaseCommit is the parallel engine's batched shard-commit critical
	// section: one table-shard lock acquisition under which a whole step's
	// successors for that shard are revised and their scheduler pushes
	// collected. Join and widen spans nest inside it.
	PhaseCommit
	// PhaseGiveupCommit is the deferred give-up commit at convergence
	// (commitStuckTops).
	PhaseGiveupCommit
	// PhaseFinish is the deterministic finish post-pass (classification,
	// sorting, match collection), with the give-up commit nested inside.
	PhaseFinish
	// PhaseProver is one HSM prover search (SeqEqual/SetEqual on a memo
	// miss); the span detail records the rewrite steps explored.
	PhaseProver
	// PhaseAnalyze is one whole analysis job (AnalyzeAll wraps each job in
	// an analyze span; everything else nests inside it).
	PhaseAnalyze

	numPhases = int(PhaseAnalyze) + 1
)

var phaseNames = [numPhases]string{
	"dequeue", "step", "transfer", "match", "split", "insert",
	"join", "widen", "commit", "giveup-commit", "finish", "prover", "analyze",
}

func (p Phase) String() string {
	if int(p) < numPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseFromName maps a phase name back to its enum (used by trace parsers);
// ok is false for names outside the taxonomy.
func PhaseFromName(name string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == name {
			return Phase(i), true
		}
	}
	return 0, false
}

// ProverTid is the trace lane (Chrome trace tid) HSM prover spans are
// attributed to. Prover searches serialize behind the matcher's prover
// mutex, so a dedicated lane makes the serialization visible in Perfetto;
// worker-lane match spans already enclose the prover time, so summaries
// that tile worker lanes exclude lanes at or above ProverTid.
const ProverTid = 1000

// Event is one recorded span: a phase execution attributed to a trace lane
// (Pid = analysis job, Tid = worker goroutine or ProverTid).
type Event struct {
	Phase  Phase
	Pid    int
	Tid    int
	Start  time.Duration // offset from the tracer's epoch
	Dur    time.Duration
	Key    string // configuration shape key (or job name for analyze spans)
	Detail string // phase-specific annotation (e.g. prover rewrite counts)
}

// End returns the event's end offset.
func (e *Event) End() time.Duration { return e.Start + e.Dur }

type phaseTotal struct {
	ns    atomic.Int64
	count atomic.Int64
}

const eventShards = 16

type eventShard struct {
	mu     sync.Mutex
	events []Event
}

// Tracer records phase spans. Safe for concurrent use: per-phase totals are
// atomic and event retention is sharded by lane. The zero *Tracer (nil) is
// the disabled tracer: every method is a cheap no-op.
type Tracer struct {
	epoch  time.Time
	clock  func() time.Duration // test hook; defaults to time.Since(epoch)
	retain bool
	totals [numPhases]phaseTotal
	shards [eventShards]eventShard
}

// NewTracer returns a tracer that retains every span for export (full
// tracing mode, used by psdf-run -trace).
func NewTracer() *Tracer {
	t := &Tracer{epoch: time.Now(), retain: true}
	t.clock = func() time.Duration { return time.Since(t.epoch) }
	return t
}

// NewAggregate returns a tracer that accumulates per-phase totals only,
// without retaining events: constant memory, suitable for always-on phase
// timing (AnalyzeAll attaches one per job by default).
func NewAggregate() *Tracer {
	t := NewTracer()
	t.retain = false
	return t
}

// Enabled reports whether the tracer records anything. Guard span-argument
// construction (key rendering, fmt) behind it so the disabled path stays
// allocation-free.
func (t *Tracer) Enabled() bool { return t != nil }

// Retaining reports whether events are retained for export.
func (t *Tracer) Retaining() bool { return t != nil && t.retain }

// Span is an in-flight phase measurement. It is a value type: the disabled
// path (nil tracer) passes a zero Span through Begin/End without touching
// the heap.
type Span struct {
	t     *Tracer
	start time.Duration
	phase Phase
	pid   int32
	tid   int32
	key   string
}

// Begin opens a span for phase on lane (pid, tid). On a nil tracer it
// returns the zero Span and performs no work.
func (t *Tracer) Begin(pid, tid int, phase Phase, key string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: t.clock(), phase: phase, pid: int32(pid), tid: int32(tid), key: key}
}

// End closes the span, recording its duration, and returns it. A zero Span
// returns 0 and does nothing.
func (s Span) End() time.Duration { return s.EndDetail("") }

// EndDetail closes the span with a phase-specific annotation. Build the
// detail string only when the tracer is Enabled — argument construction on
// the disabled path would allocate for nothing.
func (s Span) EndDetail(detail string) time.Duration {
	if s.t == nil {
		return 0
	}
	dur := s.t.clock() - s.start
	if dur < 0 {
		dur = 0
	}
	tot := &s.t.totals[s.phase]
	tot.ns.Add(int64(dur))
	tot.count.Add(1)
	if s.t.retain {
		sh := &s.t.shards[uint32(s.tid)%eventShards]
		sh.mu.Lock()
		sh.events = append(sh.events, Event{
			Phase: s.phase, Pid: int(s.pid), Tid: int(s.tid),
			Start: s.start, Dur: dur, Key: s.key, Detail: detail,
		})
		sh.mu.Unlock()
	}
	return dur
}

// PhaseStat is the accumulated cost of one phase.
type PhaseStat struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
}

// PhaseTotals maps phase names to accumulated costs.
type PhaseTotals map[string]PhaseStat

// Totals snapshots the per-phase totals. Nil-safe (returns nil when
// disabled). Phases never begun are omitted.
func (t *Tracer) Totals() PhaseTotals {
	if t == nil {
		return nil
	}
	out := PhaseTotals{}
	for i := range t.totals {
		n, c := t.totals[i].ns.Load(), t.totals[i].count.Load()
		if c > 0 {
			out[Phase(i).String()] = PhaseStat{Count: c, Total: time.Duration(n)}
		}
	}
	return out
}

// Events snapshots every retained span, sorted by (Pid, Tid, Start) with
// longer spans first on ties so parents precede their children. Nil-safe.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.events...)
		sh.mu.Unlock()
	}
	SortEvents(out)
	return out
}

// EventCount reports the number of retained spans. Nil-safe.
func (t *Tracer) EventCount() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.events)
		sh.mu.Unlock()
	}
	return n
}
