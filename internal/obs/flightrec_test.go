package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(16)
	r.SetClock(func() time.Duration { return 0 })
	for i := 0; i < 40; i++ {
		r.Record("step", 1, 2, fmt.Sprintf("k%d", i), "")
	}
	if got := r.Total(); got != 40 {
		t.Fatalf("Total = %d, want 40", got)
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("snapshot kept %d events, want capacity 16", len(evs))
	}
	// The survivors are exactly the last 16 records, oldest first, with
	// their original sequence numbers.
	for i, ev := range evs {
		wantSeq := uint64(24 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, wantSeq)
		}
		if wantKey := fmt.Sprintf("k%d", wantSeq); ev.Key != wantKey {
			t.Fatalf("event %d: key %q, want %q", i, ev.Key, wantKey)
		}
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	r := NewFlightRecorder(16)
	for i := 0; i < 5; i++ {
		r.Record("commit", 0, 0, "", "")
	}
	evs := r.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("snapshot kept %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d: seq %d", i, ev.Seq)
		}
	}
}

func TestFlightRecorderDumpDeterminism(t *testing.T) {
	r := NewFlightRecorder(16)
	r.SetClock(func() time.Duration { return 42 * time.Nanosecond })
	for i := 0; i < 30; i++ {
		r.Record("dequeue", 3, 1, "key", "d")
	}
	var a, b bytes.Buffer
	if err := r.Dump(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two dumps of an idle recorder differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 16 {
		t.Fatalf("dump has %d lines, want 16", len(lines))
	}
	var prev uint64
	for i, ln := range lines {
		var ev FlightEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if i > 0 && ev.Seq != prev+1 {
			t.Fatalf("line %d: seq %d after %d (want gapless ascending)", i, ev.Seq, prev)
		}
		if ev.AtNs != 42 || ev.Kind != "dequeue" || ev.Job != 3 || ev.Worker != 1 {
			t.Fatalf("line %d: unexpected event %+v", i, ev)
		}
		prev = ev.Seq
	}
}

// TestFlightRecorderConcurrent hammers Record from several goroutines while
// snapshots run; with -race this is the recorder's thread-safety gate. The
// invariant checked: every snapshot is gapless ascending and bounded by the
// capacity.
func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				r.Record("step", g, i, "k", "")
			}
		}(g)
	}
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			evs := r.Snapshot()
			if len(evs) > 64 {
				t.Errorf("snapshot exceeds capacity: %d", len(evs))
				return
			}
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq != evs[i-1].Seq+1 {
					t.Errorf("snapshot not gapless: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-snapDone
	if r.Total() != 2000 {
		t.Fatalf("Total = %d, want 2000", r.Total())
	}
}

// TestFlightRecorderNilFree pins the disabled contract: recording through a
// nil recorder allocates nothing.
func TestFlightRecorderNilFree(t *testing.T) {
	var r *FlightRecorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record("step", 1, 2, "key", "")
	})
	if allocs != 0 {
		t.Fatalf("nil FlightRecorder.Record allocates %.1f/op, want 0", allocs)
	}
	if r.Snapshot() != nil || r.Total() != 0 || r.Cap() != 0 {
		t.Fatal("nil recorder accessors not inert")
	}
	if err := r.Dump(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}
